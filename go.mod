module webgpu

go 1.22
