// Command webgpu-server runs a complete WebGPU deployment: the web tier,
// database, and an in-process worker fleet, in either the v1 (push) or v2
// (broker) architecture. Students point a browser or API client at it.
//
// Usage:
//
//	webgpu-server -addr :8080 -arch v2 -workers 4 -course HPP
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"webgpu/internal/labs"
	"webgpu/internal/platform"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	arch := flag.String("arch", "v2", "architecture: v1 (push) or v2 (broker)")
	workers := flag.Int("workers", 2, "initial worker count")
	gpus := flag.Int("gpus", 2, "simulated GPUs per worker")
	course := flag.String("course", "HPP", "course: HPP, 408, 598, or PUMPS")
	cacheDir := flag.String("cache-dir", os.Getenv("WEBGPU_CACHE_DIR"),
		"durable artifact store directory (default $WEBGPU_CACHE_DIR; empty = memory-only)")
	preload := flag.Int("preload-hottest", envInt("WEBGPU_CACHE_PRELOAD", 256),
		"eagerly warm-start the store's N hottest programs at boot (0 = lazy only)")
	cacheMax := flag.Int64("cache-max-bytes", envInt64("WEBGPU_CACHE_MAX_BYTES", 0),
		"artifact store size bound in bytes (0 = unbounded)")
	flag.Parse()

	a := platform.V2
	if *arch == "v1" {
		a = platform.V1
	}
	p := platform.New(platform.Options{
		Arch:           a,
		Workers:        *workers,
		GPUsPerWorker:  *gpus,
		Course:         labs.Course(*course),
		CacheDir:       *cacheDir,
		CacheMaxBytes:  *cacheMax,
		PreloadHottest: *preload,
	})
	defer p.Close()
	if store := p.ArtifactStore(); store != nil {
		st := p.ProgCache().Stats()
		log.Printf("artifact store: %s (%d objects on disk, %d programs preloaded)",
			store.Dir(), store.Stats().Objects, st.Preloaded)
	}

	// Default deadlines: weekly Thursdays from now, one per lab, matching
	// the 2015 offering's cadence.
	deadline := nextWeekday(time.Now(), time.Thursday)
	for i, l := range labs.ForCourse(labs.Course(*course)) {
		p.Server.SetDeadline(l.ID, deadline.AddDate(0, 0, 7*i))
	}

	// The administrator dashboard (§VI-A) sits next to the student API.
	mux := http.NewServeMux()
	mux.Handle("/", p.Handler())
	mux.HandleFunc("GET /admin/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(p.Status().Render()))
	})

	log.Printf("WebGPU %s: course %s, %d workers x %d GPUs, listening on %s",
		p.Arch, *course, p.Workers(), *gpus, *addr)
	log.Printf("labs: %d available; POST /api/register to begin; GET /admin/status for the dashboard",
		len(labs.ForCourse(labs.Course(*course))))
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}

// envInt reads an integer environment variable, falling back on absence
// or a parse failure.
func envInt(name string, def int) int {
	if v, err := strconv.Atoi(os.Getenv(name)); err == nil {
		return v
	}
	return def
}

func envInt64(name string, def int64) int64 {
	if v, err := strconv.ParseInt(os.Getenv(name), 10, 64); err == nil {
		return v
	}
	return def
}

func nextWeekday(from time.Time, wd time.Weekday) time.Time {
	d := (int(wd) - int(from.Weekday()) + 7) % 7
	if d == 0 {
		d = 7
	}
	day := from.AddDate(0, 0, d)
	return time.Date(day.Year(), day.Month(), day.Day(), 23, 59, 0, 0, day.Location())
}
