// Command webgpu-bench regenerates every table and figure of the WebGPU
// paper plus the derived ablations, and runs the whole-pipeline macro
// benchmark suite. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	webgpu-bench -list
//	webgpu-bench -exp table1
//	webgpu-bench -exp all
//	webgpu-bench -macro list
//	webgpu-bench -macro all -out BENCH_macro.json -benchfmt macro.txt
//	webgpu-bench -macro chaos-spike -seed 42
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"webgpu/internal/experiments"
	"webgpu/internal/macrobench"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and macro scenarios")
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	macro := flag.String("macro", "", "macro scenario to run, 'all', or 'list'")
	seed := flag.Int64("seed", 0, "macro: override every scenario's seed (0 = scenario defaults)")
	out := flag.String("out", "", "macro: write the BENCH_macro.json trajectory here")
	benchfmt := flag.String("benchfmt", "", "macro: also write Go benchmark format (for benchstat) here")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Name)
		}
		fmt.Println("macro scenarios (-macro):")
		listMacro(os.Stdout)
		return
	}

	if *macro != "" {
		runMacro(*macro, *seed, *out, *benchfmt)
		return
	}

	id := *exp
	if id == "" {
		id = "all"
	}
	run := func(e experiments.Experiment) {
		start := time.Now()
		out := e.Run()
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if id == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e := experiments.ByID(id)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
		os.Exit(1)
	}
	run(*e)
}

// listMacro prints the scenario table shared by -list and -macro list.
func listMacro(w io.Writer) {
	for _, s := range macrobench.Scenarios(0) {
		mode := fmt.Sprintf("chaos=%v", s.Chaos)
		if s.Restart {
			mode = "restart (durable artifact store)"
		}
		fmt.Fprintf(w, "  %-14s %.0f× capacity, %d readers, %d drafters, %s\n",
			s.Name, s.Multiplier, s.Readers, s.Drafters, mode)
	}
	fmt.Fprintf(w, "  %-14s run every scenario above\n", "all")
}

// runMacro executes the selected macro scenarios and writes the JSON
// trajectory (and optional benchfmt lines). A failed scenario prints its
// replayable error and exits nonzero; the trajectory written so far is
// still flushed, so CI archives the partial evidence. An unknown scenario
// name is a usage error: exit 2 with the valid names.
func runMacro(name string, seed int64, outPath, benchPath string) {
	if name == "list" {
		fmt.Println("macro scenarios:")
		listMacro(os.Stdout)
		return
	}
	var scenarios []macrobench.Scenario
	if name == "all" {
		scenarios = macrobench.Scenarios(seed)
	} else {
		s, ok := macrobench.ByName(name, seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown macro scenario %q; valid scenarios:\n", name)
			listMacro(os.Stderr)
			os.Exit(2)
		}
		scenarios = []macrobench.Scenario{s}
	}

	file := macrobench.File{Schema: macrobench.Schema, Note: macrobench.Note()}
	failed := false
	for _, s := range scenarios {
		start := time.Now()
		res, err := macrobench.Run(s)
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
		}
		file.Scenarios = append(file.Scenarios, res)
		fmt.Printf("%s\n[%s completed in %v]\n\n",
			res, s.Name, time.Since(start).Round(time.Millisecond))
	}

	flush := func(path string, data []byte) {
		if path == "" {
			return
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			failed = true
		}
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal trajectory: %v\n", err)
		os.Exit(1)
	}
	flush(outPath, append(data, '\n'))
	flush(benchPath, []byte(macrobench.Benchfmt(file)))
	if failed {
		os.Exit(1)
	}
}
