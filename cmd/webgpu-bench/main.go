// Command webgpu-bench regenerates every table and figure of the WebGPU
// paper plus the derived ablations. See DESIGN.md for the experiment
// index and EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	webgpu-bench -list
//	webgpu-bench -exp table1
//	webgpu-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"webgpu/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Name)
		}
		return
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		out := e.Run()
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e := experiments.ByID(*exp)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(*e)
}
