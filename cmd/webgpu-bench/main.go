// Command webgpu-bench regenerates every table and figure of the WebGPU
// paper plus the derived ablations, and runs the whole-pipeline macro
// benchmark suite. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	webgpu-bench -list
//	webgpu-bench -exp table1
//	webgpu-bench -exp all
//	webgpu-bench -macro all -out BENCH_macro.json -benchfmt macro.txt
//	webgpu-bench -macro chaos-spike -seed 42
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"webgpu/internal/experiments"
	"webgpu/internal/macrobench"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and macro scenarios")
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	macro := flag.String("macro", "", "macro scenario to run, or 'all'")
	seed := flag.Int64("seed", 0, "macro: override every scenario's seed (0 = scenario defaults)")
	out := flag.String("out", "", "macro: write the BENCH_macro.json trajectory here")
	benchfmt := flag.String("benchfmt", "", "macro: also write Go benchmark format (for benchstat) here")
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Name)
		}
		fmt.Println("macro scenarios (-macro):")
		for _, s := range macrobench.Scenarios(0) {
			fmt.Printf("  %-14s %d submitters (%.0f× capacity), %d readers, %d drafters, chaos=%v\n",
				s.Name, s.Submissions, s.Multiplier, s.Readers, s.Drafters, s.Chaos)
		}
		return
	}

	if *macro != "" {
		runMacro(*macro, *seed, *out, *benchfmt)
		return
	}

	id := *exp
	if id == "" {
		id = "all"
	}
	run := func(e experiments.Experiment) {
		start := time.Now()
		out := e.Run()
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if id == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e := experiments.ByID(id)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
		os.Exit(1)
	}
	run(*e)
}

// runMacro executes the selected macro scenarios and writes the JSON
// trajectory (and optional benchfmt lines). A failed scenario prints its
// replayable error and exits nonzero; the trajectory written so far is
// still flushed, so CI archives the partial evidence.
func runMacro(name string, seed int64, outPath, benchPath string) {
	var scenarios []macrobench.Scenario
	if name == "all" {
		scenarios = macrobench.Scenarios(seed)
	} else {
		s, ok := macrobench.ByName(name, seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown macro scenario %q; use -list\n", name)
			os.Exit(1)
		}
		scenarios = []macrobench.Scenario{s}
	}

	file := macrobench.File{Schema: macrobench.Schema, Note: macrobench.Note()}
	failed := false
	for _, s := range scenarios {
		start := time.Now()
		res, err := macrobench.Run(s)
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
		}
		file.Scenarios = append(file.Scenarios, res)
		fmt.Printf("%s\n[%s completed in %v]\n\n",
			res, s.Name, time.Since(start).Round(time.Millisecond))
	}

	flush := func(path string, data []byte) {
		if path == "" {
			return
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			failed = true
		}
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal trajectory: %v\n", err)
		os.Exit(1)
	}
	flush(outPath, append(data, '\n'))
	flush(benchPath, []byte(macrobench.Benchfmt(file)))
	if failed {
		os.Exit(1)
	}
}
