// Command webgpu-worker runs a standalone worker fleet against an
// in-process broker under a synthetic job stream — the load-testing rig
// used to size worker fleets before a deadline week (§III: "We increased
// the number of GPUs available to WebGPU the day before the deadline").
//
// Usage:
//
//	webgpu-worker -workers 4 -jobs 100 -lab tiled-matmul
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"webgpu/internal/castore"
	"webgpu/internal/labs"
	"webgpu/internal/progcache"
	"webgpu/internal/queue"
	"webgpu/internal/worker"
)

func main() {
	workers := flag.Int("workers", 2, "worker drivers to run")
	gpus := flag.Int("gpus", 2, "simulated GPUs per worker")
	jobs := flag.Int("jobs", 50, "jobs to push through the broker")
	labID := flag.String("lab", "vector-add", "lab whose reference solution to run")
	dataset := flag.Int("dataset", 0, "dataset index (-1 = all)")
	cacheDir := flag.String("cache-dir", os.Getenv("WEBGPU_CACHE_DIR"),
		"durable artifact store directory shared with other fleets (default $WEBGPU_CACHE_DIR; empty = memory-only)")
	flag.Parse()

	l := labs.ByID(*labID)
	if l == nil {
		log.Fatalf("unknown lab %q", *labID)
	}

	// The fleet shares one program cache; with -cache-dir it reads
	// through to the durable store, so a fleet restarted against a warm
	// directory never recompiles the lab's working set.
	progs := progcache.New(progcache.DefaultCapacity, nil)
	var store *castore.Store
	if *cacheDir != "" {
		var err error
		store, err = castore.Open(*cacheDir, castore.Options{})
		if err != nil {
			log.Fatalf("artifact store: %v", err)
		}
		defer store.Close()
		progs.SetStore(store)
	}

	broker := queue.NewBroker()
	cfgSrv := worker.NewConfigServer(worker.DefaultConfig())
	fleet := worker.NewFleet(broker, cfgSrv, func(id string) *worker.Node {
		cfg := worker.DefaultNodeConfig(id)
		cfg.GPUs = *gpus
		cfg.ProgCache = progs
		return worker.NewNode(cfg)
	})
	fleet.Scale(*workers)
	defer fleet.Stop()

	start := time.Now()
	for i := 0; i < *jobs; i++ {
		job := &worker.Job{
			ID:           fmt.Sprintf("job-%05d", i),
			LabID:        l.ID,
			UserID:       fmt.Sprintf("load-user-%03d", i%97),
			Source:       l.Reference,
			DatasetID:    *dataset,
			Requirements: l.Requirements,
		}
		if _, err := broker.Publish(worker.TopicJobs, worker.EncodeJob(job), l.Requirements...); err != nil {
			log.Fatal(err)
		}
	}

	caps := map[string]bool{}
	correct, failed := 0, 0
	for done := 0; done < *jobs; {
		d, ok, err := broker.Poll(worker.TopicResults, "collector", caps, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		res, err := worker.DecodeResult(d.Msg.Payload)
		if err != nil {
			_ = d.Nack()
			continue
		}
		if res.Correct() {
			correct++
		} else {
			failed++
			fmt.Fprintf(os.Stderr, "job %s failed: %s\n", res.JobID, res.Error)
		}
		_ = d.Ack()
		done++
	}
	elapsed := time.Since(start)

	fmt.Printf("lab:        %s (%s)\n", l.Name, l.ID)
	fmt.Printf("fleet:      %d workers x %d GPUs\n", *workers, *gpus)
	fmt.Printf("jobs:       %d total, %d correct, %d failed\n", *jobs, correct, failed)
	fmt.Printf("wall time:  %v (%.1f jobs/s)\n", elapsed.Round(time.Millisecond),
		float64(*jobs)/elapsed.Seconds())
	fmt.Printf("broker:     %+v\n", broker.Stats())
	cs := progs.Stats()
	fmt.Printf("prog cache: %d hits, %d misses, %d compiles, %d disk hits\n",
		cs.Hits, cs.Misses, cs.Compiles, cs.DiskHits)
	if store != nil {
		fmt.Printf("artifacts:  %+v\n", store.Stats())
	}
}
