// Command minicuda is the toolchain front end: it compiles a CUDA (or
// OpenCL) source file the way a WebGPU worker node would, reporting
// diagnostics, kernel signatures, and shared-memory usage — and, with
// -lab, runs the file as a submission against a lab's datasets (the
// offline-development path of §IV-C).
//
// Usage:
//
//	minicuda solution.cu
//	minicuda -dialect opencl kernel.cl
//	minicuda -lab tiled-matmul -dataset -1 solution.cu
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"webgpu/internal/labs"
	"webgpu/internal/minicuda"
)

func main() {
	dialect := flag.String("dialect", "cuda", "source dialect: cuda, opencl, or openacc")
	labID := flag.String("lab", "", "run the file as a submission for this lab")
	dataset := flag.Int("dataset", -1, "dataset index (-1 = all datasets)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicuda [-dialect cuda|opencl] [-lab id [-dataset n]] file.cu")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	if *labID != "" {
		runAsSubmission(*labID, string(src), *dataset)
		return
	}

	d := minicuda.DialectCUDA
	switch *dialect {
	case "opencl":
		d = minicuda.DialectOpenCL
	case "openacc":
		d = minicuda.DialectOpenACC
	}
	prog, err := minicuda.Compile(string(src), d)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	fmt.Printf("%s: compiled OK (%s dialect)\n", flag.Arg(0), d)
	for _, name := range prog.Kernels() {
		fn := prog.Kernel(name)
		fmt.Printf("  kernel %s: %d parameter(s), %d bytes static __shared__\n",
			name, len(fn.Params), fn.SharedUse)
	}
	if prog.ConstSize() > 0 {
		fmt.Printf("  __constant__ memory: %d bytes\n", prog.ConstSize())
	}
}

func runAsSubmission(labID, src string, dataset int) {
	l := labs.ByID(labID)
	if l == nil {
		log.Fatalf("unknown lab %q (see webgpu-bench -exp table2 for the catalog)", labID)
	}
	gpus := l.NumGPUs
	if gpus == 0 {
		gpus = 1
	}
	devices := labs.NewDeviceSet(gpus)
	run := func(ds int) bool {
		o := labs.Run(context.Background(), l, src, ds, devices, 0)
		switch {
		case !o.Compiled:
			fmt.Printf("dataset %d: COMPILE ERROR: %s\n", ds, o.CompileError)
		case o.RuntimeError != "":
			fmt.Printf("dataset %d: RUNTIME ERROR: %s\n", ds, o.RuntimeError)
		case o.Correct:
			fmt.Printf("dataset %d: PASS (%s; simulated GPU time %v)\n", ds, o.CheckMessage, o.SimTime)
		default:
			fmt.Printf("dataset %d: FAIL: %s\n", ds, o.CheckMessage)
		}
		return o.Correct
	}
	if dataset >= 0 {
		if !run(dataset) {
			os.Exit(1)
		}
		return
	}
	pass := 0
	for ds := 0; ds < l.NumDatasets; ds++ {
		if run(ds) {
			pass++
		}
	}
	fmt.Printf("%d/%d datasets passed\n", pass, l.NumDatasets)
	if pass != l.NumDatasets {
		os.Exit(1)
	}
}
