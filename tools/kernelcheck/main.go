// Command kernelcheck runs the static kernel analyzer on .cu/.cl files
// from the command line — the same passes the worker runs at submit time
// (barrier divergence, shared-memory races, bounds, coalescing/bank
// advisories, hygiene), usable locally before pushing a lab or example.
//
// Usage: kernelcheck [-dialect auto|cuda|opencl] [-fail-on error|warn|never] <file|dir>...
//
// Directories are walked for .cu and .cl files. The exit code is 1 when
// any file produces a diagnostic at or above the -fail-on severity
// (default: error), 2 on usage or I/O problems. Compile errors always
// fail: a kernel that does not compile cannot be analyzed.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"webgpu/internal/kernelcheck"
	"webgpu/internal/minicuda"
)

func main() {
	dialectFlag := flag.String("dialect", "auto",
		"kernel dialect: auto (by extension/content), cuda, or opencl")
	failOn := flag.String("fail-on", "error",
		"minimum severity that makes the exit code nonzero: error, warn, or never")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: kernelcheck [-dialect auto|cuda|opencl] [-fail-on error|warn|never] <file|dir>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var threshold int
	switch *failOn {
	case "error":
		threshold = 3
	case "warn":
		threshold = 2
	case "never":
		threshold = 4 // above every real severity
	default:
		fmt.Fprintf(os.Stderr, "kernelcheck: unknown -fail-on %q\n", *failOn)
		os.Exit(2)
	}

	files, err := collect(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kernelcheck:", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "kernelcheck: no .cu or .cl files found")
		os.Exit(2)
	}

	failed := false
	total := 0
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kernelcheck:", err)
			os.Exit(2)
		}
		src := string(raw)
		diags, err := kernelcheck.AnalyzeSource(src, pickDialect(*dialectFlag, path, src))
		if err != nil {
			fmt.Printf("%s: compile error: %v\n", path, err)
			failed = true
			continue
		}
		total += len(diags)
		for _, d := range diags {
			fmt.Printf("%s:%s\n", path, d)
			if severityRank(d.Severity) >= threshold {
				failed = true
			}
		}
	}
	fmt.Printf("kernelcheck: %d file(s), %d diagnostic(s)\n", len(files), total)
	if failed {
		os.Exit(1)
	}
}

// collect expands the arguments into a sorted, de-duplicated list of
// kernel files, walking directories for .cu/.cl.
func collect(args []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && kernelExt(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

func kernelExt(p string) bool {
	switch filepath.Ext(p) {
	case ".cu", ".cl":
		return true
	}
	return false
}

func pickDialect(flagVal, path, src string) minicuda.Dialect {
	switch flagVal {
	case "cuda":
		return minicuda.DialectCUDA
	case "opencl":
		return minicuda.DialectOpenCL
	}
	if filepath.Ext(path) == ".cl" || strings.Contains(src, "__kernel") {
		return minicuda.DialectOpenCL
	}
	return minicuda.DialectCUDA
}

func severityRank(s kernelcheck.Severity) int {
	switch s {
	case kernelcheck.SevError:
		return 3
	case kernelcheck.SevWarn:
		return 2
	default:
		return 1
	}
}
