// Command kernelcheck runs the static kernel analyzer on .cu/.cl files
// from the command line — the same passes the worker runs at submit time
// (barrier divergence, shared-memory races, bounds, coalescing/bank
// advisories, hygiene), usable locally before pushing a lab or example.
//
// Usage: kernelcheck [-dialect auto|cuda|opencl] [-fail-on error|warn|never]
// [-json] [-interprocedural=false] <file|dir>...
//
// Directories are walked for .cu and .cl files. -json prints one JSON
// object per file (stable field order: file, compile_error, diagnostics;
// each diagnostic carries its rule ID, severity, and position) instead
// of the human lines. -interprocedural=false falls back to treating
// device-function calls opaquely, for triaging whether a finding depends
// on effect-summary substitution.
//
// The exit code is 1 when any file fails to compile or produces a
// diagnostic at or above the -fail-on severity (default: error), 2 on
// usage or I/O problems (unknown flags, unreadable paths, no kernel
// files found).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"webgpu/internal/kernelcheck"
	"webgpu/internal/minicuda"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fileResult is one file's outcome in -json mode. Diagnostics is never
// null so consumers can always range over it.
type fileResult struct {
	File         string                   `json:"file"`
	CompileError string                   `json:"compile_error,omitempty"`
	Diagnostics  []kernelcheck.Diagnostic `json:"diagnostics"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("kernelcheck", flag.ContinueOnError)
	fl.SetOutput(stderr)
	dialectFlag := fl.String("dialect", "auto",
		"kernel dialect: auto (by extension/content), cuda, or opencl")
	failOn := fl.String("fail-on", "error",
		"minimum severity that makes the exit code nonzero: error, warn, or never")
	jsonOut := fl.Bool("json", false,
		"emit one JSON object per file instead of human-readable lines")
	interp := fl.Bool("interprocedural", true,
		"analyze device-function calls through effect summaries (false: calls are opaque)")
	fl.Usage = func() {
		fmt.Fprintln(stderr, "usage: kernelcheck [-dialect auto|cuda|opencl] [-fail-on error|warn|never] [-json] [-interprocedural=false] <file|dir>...")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if fl.NArg() == 0 {
		fl.Usage()
		return 2
	}
	var threshold int
	switch *failOn {
	case "error":
		threshold = 3
	case "warn":
		threshold = 2
	case "never":
		threshold = 4 // above every real severity
	default:
		fmt.Fprintf(stderr, "kernelcheck: unknown -fail-on %q\n", *failOn)
		return 2
	}

	files, err := collect(fl.Args())
	if err != nil {
		fmt.Fprintln(stderr, "kernelcheck:", err)
		return 2
	}
	if len(files) == 0 {
		fmt.Fprintln(stderr, "kernelcheck: no .cu or .cl files found")
		return 2
	}

	enc := json.NewEncoder(stdout)
	failed := false
	total := 0
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "kernelcheck:", err)
			return 2
		}
		src := string(raw)
		diags, err := analyzeSource(src, pickDialect(*dialectFlag, path, src), *interp)
		if *jsonOut {
			res := fileResult{File: path, Diagnostics: diags}
			if res.Diagnostics == nil {
				res.Diagnostics = []kernelcheck.Diagnostic{}
			}
			if err != nil {
				res.CompileError = err.Error()
			}
			if eerr := enc.Encode(res); eerr != nil {
				fmt.Fprintln(stderr, "kernelcheck:", eerr)
				return 2
			}
		}
		if err != nil {
			if !*jsonOut {
				fmt.Fprintf(stdout, "%s: compile error: %v\n", path, err)
			}
			failed = true
			continue
		}
		total += len(diags)
		for _, d := range diags {
			if !*jsonOut {
				fmt.Fprintf(stdout, "%s:%s\n", path, d)
			}
			if severityRank(d.Severity) >= threshold {
				failed = true
			}
		}
	}
	if !*jsonOut {
		fmt.Fprintf(stdout, "kernelcheck: %d file(s), %d diagnostic(s)\n", len(files), total)
	}
	if failed {
		return 1
	}
	return 0
}

// analyzeSource compiles and analyzes one source, interprocedurally or
// with opaque calls.
func analyzeSource(src string, dialect minicuda.Dialect, interp bool) ([]kernelcheck.Diagnostic, error) {
	if interp {
		return kernelcheck.AnalyzeSource(src, dialect)
	}
	prog, err := minicuda.Compile(src, dialect)
	if err != nil {
		return nil, err
	}
	return kernelcheck.AnalyzeIntra(prog), nil
}

// collect expands the arguments into a sorted, de-duplicated list of
// kernel files, walking directories for .cu/.cl.
func collect(args []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && kernelExt(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

func kernelExt(p string) bool {
	switch filepath.Ext(p) {
	case ".cu", ".cl":
		return true
	}
	return false
}

func pickDialect(flagVal, path, src string) minicuda.Dialect {
	switch flagVal {
	case "cuda":
		return minicuda.DialectCUDA
	case "opencl":
		return minicuda.DialectOpenCL
	}
	if filepath.Ext(path) == ".cl" || strings.Contains(src, "__kernel") {
		return minicuda.DialectOpenCL
	}
	return minicuda.DialectCUDA
}

func severityRank(s kernelcheck.Severity) int {
	switch s {
	case kernelcheck.SevError:
		return 3
	case kernelcheck.SevWarn:
		return 2
	default:
		return 1
	}
}
