package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// interpRaceSrc hides both racing accesses inside device helpers, so
// only the interprocedural mode can prove the race.
const interpRaceSrc = `__device__ void store(float *p, int i, float v) {
  p[i] = v;
}

__device__ float loadShift(float *p, int i) {
  return p[i + 1];
}

__global__ void shift(float *in, float *out, int n) {
  __shared__ float s[17];
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  store(s, tx, in[i]);
  out[i] = loadShift(s, tx);
}
`

const cleanSrc = `__global__ void vecAdd(float *a, float *b, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    b[i] = a[i] + b[i];
  }
}
`

func writeKernel(t *testing.T, name, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanFileExitsZero(t *testing.T) {
	p := writeKernel(t, "clean.cu", cleanSrc)
	code, out, _ := runCLI(t, p)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "1 file(s), 0 diagnostic(s)") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

func TestInterproceduralRaceFails(t *testing.T) {
	p := writeKernel(t, "race.cu", interpRaceSrc)
	code, out, _ := runCLI(t, p)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "error[KC-RACE-CALL]") {
		t.Fatalf("expected KC-RACE-CALL in output:\n%s", out)
	}
}

func TestInterproceduralToggle(t *testing.T) {
	p := writeKernel(t, "race.cu", interpRaceSrc)
	code, out, _ := runCLI(t, "-interprocedural=false", p)
	if strings.Contains(out, "KC-RACE-CALL") {
		t.Fatalf("-interprocedural=false still reported a call race:\n%s", out)
	}
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (opaque calls cannot prove the race); output:\n%s", code, out)
	}
}

func TestJSONOutput(t *testing.T) {
	p := writeKernel(t, "race.cu", interpRaceSrc)
	code, out, _ := runCLI(t, "-json", p)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var res struct {
		File         string `json:"file"`
		CompileError string `json:"compile_error"`
		Diagnostics  []struct {
			ID       string `json:"id"`
			Severity string `json:"severity"`
			Pos      string `json:"pos"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("not one JSON object per line: %v\n%s", err, out)
	}
	if res.File != p || len(res.Diagnostics) == 0 {
		t.Fatalf("json result = %+v", res)
	}
	d := res.Diagnostics[0]
	if d.ID != "KC-RACE-CALL" || d.Severity != "error" || d.Pos == "" {
		t.Fatalf("diagnostic = %+v", d)
	}
	// Field order is part of the contract (stable for diffing in CI logs).
	if !strings.HasPrefix(out, `{"file":`) {
		t.Fatalf("file field not first:\n%s", out)
	}
	idIdx := strings.Index(out, `"id":`)
	sevIdx := strings.Index(out, `"severity":`)
	posIdx := strings.Index(out, `"pos":`)
	if idIdx < 0 || sevIdx < idIdx || posIdx < sevIdx {
		t.Fatalf("diagnostic field order not id,severity,...,pos:\n%s", out)
	}
}

func TestJSONCompileError(t *testing.T) {
	p := writeKernel(t, "broken.cu", "__global__ void f(") // parse failure
	code, out, _ := runCLI(t, "-json", p)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (compile failures fail the run)", code)
	}
	var res struct {
		CompileError string          `json:"compile_error"`
		Diagnostics  json.RawMessage `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad json: %v\n%s", err, out)
	}
	if res.CompileError == "" {
		t.Fatalf("compile_error empty:\n%s", out)
	}
	if string(res.Diagnostics) != "[]" {
		t.Fatalf("diagnostics = %s, want [] (never null)", res.Diagnostics)
	}
}

func TestUsageAndIOExitTwo(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-fail-on", "bogus", "x.cu"); code != 2 {
		t.Fatalf("bad -fail-on: exit = %d, want 2", code)
	}
	if code, _, _ := runCLI(t, filepath.Join(t.TempDir(), "missing.cu")); code != 2 {
		t.Fatalf("unreadable path: exit = %d, want 2", code)
	}
	if code, _, _ := runCLI(t, t.TempDir()); code != 2 {
		t.Fatalf("dir with no kernels: exit = %d, want 2", code)
	}
}

func TestFailOnThreshold(t *testing.T) {
	// A divergent-barrier call is warn severity: passes at the default
	// threshold, fails at -fail-on warn.
	src := `__device__ void sync() {
  __syncthreads();
}

__global__ void k(float *in, float *out, int n) {
  int tx = threadIdx.x;
  if (tx < 8) {
    sync();
  }
  out[tx] = in[tx];
}
`
	p := writeKernel(t, "warn.cu", src)
	if code, out, _ := runCLI(t, p); code != 0 {
		t.Fatalf("default threshold: exit = %d, want 0\n%s", code, out)
	}
	code, out, _ := runCLI(t, "-fail-on", "warn", p)
	if code != 1 {
		t.Fatalf("-fail-on warn: exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "warn[KC-BARRIER-CALL-DIV]") {
		t.Fatalf("expected KC-BARRIER-CALL-DIV:\n%s", out)
	}
}
