package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: webgpu/internal/minicuda
cpu: Intel(R) Xeon(R) Processor
BenchmarkInterpretTiledMatMul32-8    	     300	   4000000 ns/op
BenchmarkInterpretTiledMatMul32-8    	     320	   3800000 ns/op
BenchmarkWarpVsVMMatMul/warp-8       	     300	   3700000 ns/op
BenchmarkWarpVsVMMatMul/vm-8         	      80	  13000000 ns/op
PASS
`

func TestParseBenchBestOfN(t *testing.T) {
	results, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	// -count>1 keeps the fastest run; the -8 GOMAXPROCS suffix is stripped.
	if got := results["BenchmarkInterpretTiledMatMul32"]; got != 3800000 {
		t.Errorf("TiledMatMul32 = %v, want best-of-n 3800000", got)
	}
	if got := results["BenchmarkWarpVsVMMatMul/warp"]; got != 3700000 {
		t.Errorf("warp sub-benchmark = %v, want 3700000", got)
	}
}

func TestGateWithinCeilings(t *testing.T) {
	base := baseline{Benchmarks: map[string]float64{
		"BenchmarkInterpretTiledMatMul32": 8000000,
		"BenchmarkWarpVsVMMatMul/warp":    8000000,
	}}
	results, _ := parseBench(strings.NewReader(benchOutput))
	var sb strings.Builder
	if gate(base, results, &sb) {
		t.Fatalf("gate tripped within ceilings:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "ok") {
		t.Errorf("output missing ok lines:\n%s", sb.String())
	}
}

func TestGateRegression(t *testing.T) {
	base := baseline{Benchmarks: map[string]float64{
		"BenchmarkWarpVsVMMatMul/vm": 1000000, // far below the 13ms result
	}}
	results, _ := parseBench(strings.NewReader(benchOutput))
	var sb strings.Builder
	if !gate(base, results, &sb) {
		t.Fatal("gate did not trip on a regression")
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("output missing REGRESSED:\n%s", sb.String())
	}
}

func TestGateMissingBenchmarkFails(t *testing.T) {
	// A baseline entry with no result (renamed or deleted benchmark) must
	// fail the gate, not silently skip.
	base := baseline{Benchmarks: map[string]float64{
		"BenchmarkInterpretTiledMatMul32": 8000000,
		"BenchmarkRenamedAway":            5000000,
	}}
	results, _ := parseBench(strings.NewReader(benchOutput))
	var sb strings.Builder
	if !gate(base, results, &sb) {
		t.Fatal("gate did not trip on a missing benchmark")
	}
	if !strings.Contains(sb.String(), "MISSING") || !strings.Contains(sb.String(), "BenchmarkRenamedAway") {
		t.Errorf("output missing MISSING line:\n%s", sb.String())
	}
}

// ---- Macro mode ----------------------------------------------------------------

const macroTrajectory = `{
  "schema": "webgpu-macro/v1",
  "scenarios": [
    {"name": "warm-submit", "submit_ok": 4, "submit_shed": 0, "lost_jobs": 0,
     "dead_letters": 0, "p50_ms": 8.1, "p99_ms": 12.4},
    {"name": "chaos-spike", "submit_ok": 56, "submit_shed": 0, "lost_jobs": 0,
     "dead_letters": 0, "p50_ms": 90.0, "p99_ms": 220.0}
  ]
}`

func mustParseMacro(t *testing.T, raw string) macroFile {
	t.Helper()
	mf, err := parseMacro([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return mf
}

func TestMacroGateWithinCeilings(t *testing.T) {
	base := baseline{Macro: map[string]macroCeiling{
		"warm-submit": {P50Ms: 200, P99Ms: 500},
		"chaos-spike": {P50Ms: 2000, P99Ms: 5000},
	}}
	var sb strings.Builder
	if gateMacro(base, mustParseMacro(t, macroTrajectory), &sb) {
		t.Fatalf("macro gate tripped within ceilings:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "macro/warm-submit") {
		t.Errorf("output missing per-scenario ok line:\n%s", sb.String())
	}
}

func TestMacroGateMissingScenarioFails(t *testing.T) {
	// A baselined scenario absent from the trajectory (renamed, or the
	// bench silently stopped running it) must fail, not skip.
	base := baseline{Macro: map[string]macroCeiling{
		"deadline-spike": {P99Ms: 5000},
	}}
	var sb strings.Builder
	if !gateMacro(base, mustParseMacro(t, macroTrajectory), &sb) {
		t.Fatal("macro gate did not trip on a missing scenario")
	}
	if !strings.Contains(sb.String(), "MISSING") || !strings.Contains(sb.String(), "deadline-spike") {
		t.Errorf("output missing MISSING line:\n%s", sb.String())
	}
}

func TestMacroGateP99CeilingTrip(t *testing.T) {
	base := baseline{Macro: map[string]macroCeiling{
		"chaos-spike": {P50Ms: 2000, P99Ms: 100}, // far below the 220ms result
	}}
	var sb strings.Builder
	if !gateMacro(base, mustParseMacro(t, macroTrajectory), &sb) {
		t.Fatal("macro gate did not trip on a p99 regression")
	}
	if !strings.Contains(sb.String(), "REGRESSED") || !strings.Contains(sb.String(), "p99") {
		t.Errorf("output missing p99 REGRESSED line:\n%s", sb.String())
	}
}

func TestMacroGateLostJobsAndShedAreHardZero(t *testing.T) {
	lossy := `{
  "schema": "webgpu-macro/v1",
  "scenarios": [
    {"name": "chaos-spike", "submit_ok": 50, "submit_shed": 3, "lost_jobs": 2,
     "dead_letters": 1, "p50_ms": 10, "p99_ms": 20}
  ]
}`
	base := baseline{Macro: map[string]macroCeiling{
		"chaos-spike": {P50Ms: 2000, P99Ms: 5000}, // latency fine; invariants not
	}}
	var sb strings.Builder
	if !gateMacro(base, mustParseMacro(t, lossy), &sb) {
		t.Fatal("macro gate did not trip on shed submissions / lost jobs")
	}
	for _, want := range []string{"submit_shed", "lost_jobs", "dead_letters"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %s trip:\n%s", want, sb.String())
		}
	}
}

func TestMacroGateRecompilesAreHardZero(t *testing.T) {
	// The restart-storm contract: latency may be fine, but a rebooted
	// platform recompiling cached sources trips the gate.
	storm := `{
  "schema": "webgpu-macro/v1",
  "scenarios": [
    {"name": "restart-storm", "submit_ok": 8, "recompiles": 8,
     "p50_ms": 10, "p99_ms": 20}
  ]
}`
	base := baseline{Macro: map[string]macroCeiling{
		"restart-storm": {P50Ms: 2000, P99Ms: 5000, MaxRecompiles: 0},
	}}
	var sb strings.Builder
	if !gateMacro(base, mustParseMacro(t, storm), &sb) {
		t.Fatal("macro gate did not trip on post-restart recompiles")
	}
	if !strings.Contains(sb.String(), "recompiles") {
		t.Errorf("output missing recompiles trip:\n%s", sb.String())
	}
}

func TestParseMacroRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"truncated JSON": `{"schema": "webgpu-macro/v1", "scenarios": [`,
		"wrong schema":   `{"schema": "webgpu-macro/v999", "scenarios": [{"name": "x"}]}`,
		"no scenarios":   `{"schema": "webgpu-macro/v1", "scenarios": []}`,
		"unnamed row":    `{"schema": "webgpu-macro/v1", "scenarios": [{"p50_ms": 1}]}`,
	}
	for name, raw := range cases {
		if _, err := parseMacro([]byte(raw)); err == nil {
			t.Errorf("%s: parseMacro accepted malformed input", name)
		}
	}
}

func TestMacroGateUnknownScenarioPassesThrough(t *testing.T) {
	// Trajectory rows without a baseline entry are not gated: adding a
	// scenario must not demand a lockstep baseline edit.
	base := baseline{Macro: map[string]macroCeiling{
		"warm-submit": {P50Ms: 200, P99Ms: 500},
	}}
	var sb strings.Builder
	if gateMacro(base, mustParseMacro(t, macroTrajectory), &sb) {
		t.Fatalf("macro gate tripped on an un-baselined scenario:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "chaos-spike") {
		t.Errorf("un-baselined scenario appeared in gate output:\n%s", sb.String())
	}
}
