package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: webgpu/internal/minicuda
cpu: Intel(R) Xeon(R) Processor
BenchmarkInterpretTiledMatMul32-8    	     300	   4000000 ns/op
BenchmarkInterpretTiledMatMul32-8    	     320	   3800000 ns/op
BenchmarkWarpVsVMMatMul/warp-8       	     300	   3700000 ns/op
BenchmarkWarpVsVMMatMul/vm-8         	      80	  13000000 ns/op
PASS
`

func TestParseBenchBestOfN(t *testing.T) {
	results, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	// -count>1 keeps the fastest run; the -8 GOMAXPROCS suffix is stripped.
	if got := results["BenchmarkInterpretTiledMatMul32"]; got != 3800000 {
		t.Errorf("TiledMatMul32 = %v, want best-of-n 3800000", got)
	}
	if got := results["BenchmarkWarpVsVMMatMul/warp"]; got != 3700000 {
		t.Errorf("warp sub-benchmark = %v, want 3700000", got)
	}
}

func TestGateWithinCeilings(t *testing.T) {
	base := baseline{Benchmarks: map[string]float64{
		"BenchmarkInterpretTiledMatMul32": 8000000,
		"BenchmarkWarpVsVMMatMul/warp":    8000000,
	}}
	results, _ := parseBench(strings.NewReader(benchOutput))
	var sb strings.Builder
	if gate(base, results, &sb) {
		t.Fatalf("gate tripped within ceilings:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "ok") {
		t.Errorf("output missing ok lines:\n%s", sb.String())
	}
}

func TestGateRegression(t *testing.T) {
	base := baseline{Benchmarks: map[string]float64{
		"BenchmarkWarpVsVMMatMul/vm": 1000000, // far below the 13ms result
	}}
	results, _ := parseBench(strings.NewReader(benchOutput))
	var sb strings.Builder
	if !gate(base, results, &sb) {
		t.Fatal("gate did not trip on a regression")
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("output missing REGRESSED:\n%s", sb.String())
	}
}

func TestGateMissingBenchmarkFails(t *testing.T) {
	// A baseline entry with no result (renamed or deleted benchmark) must
	// fail the gate, not silently skip.
	base := baseline{Benchmarks: map[string]float64{
		"BenchmarkInterpretTiledMatMul32": 8000000,
		"BenchmarkRenamedAway":            5000000,
	}}
	results, _ := parseBench(strings.NewReader(benchOutput))
	var sb strings.Builder
	if !gate(base, results, &sb) {
		t.Fatal("gate did not trip on a missing benchmark")
	}
	if !strings.Contains(sb.String(), "MISSING") || !strings.Contains(sb.String(), "BenchmarkRenamedAway") {
		t.Errorf("output missing MISSING line:\n%s", sb.String())
	}
}
