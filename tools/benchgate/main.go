// Command benchgate is the soft performance gate used by the CI bench job.
// It parses `go test -bench` output and compares each benchmark's ns/op
// against the ceilings committed in BENCH_baseline.json. Ceilings are
// deliberately generous (roughly 2x a warm local run) so the gate only
// trips on order-of-magnitude regressions, not machine noise; the CI job
// runs it with continue-on-error so a trip annotates the run rather than
// blocking the merge.
//
// A benchmark listed in the baseline but absent from the output is a
// failure, not a skip: a renamed or deleted benchmark must force a
// baseline update instead of quietly un-gating itself.
//
// Usage: benchgate <baseline.json> <bench-output.txt>
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	Note       string             `json:"note"`
	Benchmarks map[string]float64 `json:"benchmarks"` // name -> ns/op ceiling
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchgate <baseline.json> <bench-output.txt>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: parse baseline:", err)
		os.Exit(2)
	}

	results, err := parseBenchFile(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	if gate(base, results, os.Stdout) {
		fmt.Println("benchgate: soft gate tripped — investigate before merging")
		os.Exit(1)
	}
	fmt.Println("benchgate: all benchmarks within ceilings")
}

// gate compares results against the baseline ceilings, writing one status
// line per gated benchmark (in name order, so runs diff cleanly) and
// reporting whether anything regressed or went missing.
func gate(base baseline, results map[string]float64, w io.Writer) (failed bool) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ceiling := base.Benchmarks[name]
		got, ok := results[name]
		if !ok {
			fmt.Fprintf(w, "benchgate: MISSING  %-45s (no result; ceiling %.0f ns/op)\n", name, ceiling)
			failed = true
			continue
		}
		status := "ok"
		if got > ceiling {
			status = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(w, "benchgate: %-9s %-45s %12.0f ns/op (ceiling %.0f)\n", status, name, got, ceiling)
	}
	return failed
}

func parseBenchFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// parseBench extracts {name -> best ns/op} from go test -bench output. The
// trailing -N GOMAXPROCS suffix is stripped; with -count > 1 the fastest
// run wins, which rejects scheduling noise rather than averaging it in.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	return out, sc.Err()
}
