// Command benchgate is the soft performance gate used by the CI bench
// jobs. It has two modes:
//
// Micro (default): parses `go test -bench` output and compares each
// benchmark's ns/op against the ceilings committed in BENCH_baseline.json.
//
// Macro (-macro): parses the BENCH_macro.json trajectory emitted by
// `webgpu-bench -macro` and gates each scenario's end-to-end submission
// latency quantiles plus its hard invariants — shed submissions and lost
// jobs, which have ceilings of zero: an overload spike may slow the
// system down, it may never lose work.
//
// Ceilings are deliberately generous (roughly 2x a warm local run) so the
// gate only trips on order-of-magnitude regressions, not machine noise;
// the CI jobs run it with continue-on-error so a trip annotates the run
// rather than blocking the merge.
//
// A benchmark or scenario listed in the baseline but absent from the
// output is a failure, not a skip: a renamed or deleted entry must force
// a baseline update instead of quietly un-gating itself.
//
// Usage:
//
//	benchgate <baseline.json> <bench-output.txt>
//	benchgate -macro <baseline.json> <BENCH_macro.json>
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// macroCeiling is the committed bound for one macro scenario. Latency
// ceilings are soft (noise-tolerant, 0 = ungated); SubmitShed/LostJobs
// default to a hard zero — the overload layer's whole contract.
type macroCeiling struct {
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxSubmitShed  int     `json:"max_submit_shed"`
	MaxLostJobs    int64   `json:"max_lost_jobs"`
	MaxDeadLetters int     `json:"max_dead_letters"`
	// MaxRecompiles gates the restart-storm scenario's durable-store
	// contract: a rebooted deployment recompiling cached sources is the
	// recompile storm the store exists to kill, so the ceiling is zero.
	MaxRecompiles int64 `json:"max_recompiles"`
}

type baseline struct {
	Note       string                  `json:"note"`
	Benchmarks map[string]float64      `json:"benchmarks"` // name -> ns/op ceiling
	Macro      map[string]macroCeiling `json:"macro"`      // scenario -> bounds
}

// macroFile mirrors macrobench.File / macrobench.Result. The shape is
// duplicated here deliberately: the gate must keep parsing old trajectory
// files even if the bench package's types move on, and a schema mismatch
// must be an explicit failure.
type macroFile struct {
	Schema    string        `json:"schema"`
	Scenarios []macroResult `json:"scenarios"`
}

type macroResult struct {
	Name        string  `json:"name"`
	SubmitOK    int     `json:"submit_ok"`
	SubmitShed  int     `json:"submit_shed"`
	LostJobs    int64   `json:"lost_jobs"`
	DeadLetters int     `json:"dead_letters"`
	Recompiles  int64   `json:"recompiles"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// macroSchema is the trajectory layout this gate understands.
const macroSchema = "webgpu-macro/v1"

func main() {
	macro := flag.Bool("macro", false, "gate a BENCH_macro.json trajectory instead of go test -bench output")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-macro] <baseline.json> <results-file>")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: parse baseline:", err)
		os.Exit(2)
	}

	var failed bool
	if *macro {
		mf, err := parseMacroFile(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		failed = gateMacro(base, mf, os.Stdout)
	} else {
		results, err := parseBenchFile(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		failed = gate(base, results, os.Stdout)
	}
	if failed {
		fmt.Println("benchgate: soft gate tripped — investigate before merging")
		os.Exit(1)
	}
	fmt.Println("benchgate: all benchmarks within ceilings")
}

// gate compares results against the baseline ceilings, writing one status
// line per gated benchmark (in name order, so runs diff cleanly) and
// reporting whether anything regressed or went missing.
func gate(base baseline, results map[string]float64, w io.Writer) (failed bool) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ceiling := base.Benchmarks[name]
		got, ok := results[name]
		if !ok {
			fmt.Fprintf(w, "benchgate: MISSING  %-45s (no result; ceiling %.0f ns/op)\n", name, ceiling)
			failed = true
			continue
		}
		status := "ok"
		if got > ceiling {
			status = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(w, "benchgate: %-9s %-45s %12.0f ns/op (ceiling %.0f)\n", status, name, got, ceiling)
	}
	return failed
}

// gateMacro checks every baselined scenario of the trajectory: latency
// quantiles against their soft ceilings, shed/lost/dead counts against
// their (normally zero) hard bounds. Scenarios in the trajectory but not
// in the baseline pass through ungated — adding a scenario should not
// require a lockstep baseline edit — but a baselined scenario missing
// from the trajectory fails.
func gateMacro(base baseline, mf macroFile, w io.Writer) (failed bool) {
	byName := map[string]macroResult{}
	for _, r := range mf.Scenarios {
		byName[r.Name] = r
	}
	names := make([]string, 0, len(base.Macro))
	for name := range base.Macro {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := base.Macro[name]
		r, ok := byName[name]
		if !ok {
			fmt.Fprintf(w, "benchgate: MISSING   macro/%-35s (no scenario in trajectory)\n", name)
			failed = true
			continue
		}
		var trips []string
		trip := func(format string, args ...interface{}) {
			trips = append(trips, fmt.Sprintf(format, args...))
		}
		if c.P50Ms > 0 && r.P50Ms > c.P50Ms {
			trip("p50 %.1fms exceeds ceiling %.1fms", r.P50Ms, c.P50Ms)
		}
		if c.P99Ms > 0 && r.P99Ms > c.P99Ms {
			trip("p99 %.1fms exceeds ceiling %.1fms", r.P99Ms, c.P99Ms)
		}
		if r.SubmitShed > c.MaxSubmitShed {
			trip("submit_shed %d exceeds max %d (submissions must not shed)", r.SubmitShed, c.MaxSubmitShed)
		}
		if r.LostJobs > c.MaxLostJobs {
			trip("lost_jobs %d exceeds max %d (work was lost)", r.LostJobs, c.MaxLostJobs)
		}
		if r.DeadLetters > c.MaxDeadLetters {
			trip("dead_letters %d exceeds max %d (redrive left work parked)", r.DeadLetters, c.MaxDeadLetters)
		}
		if r.Recompiles > c.MaxRecompiles {
			trip("recompiles %d exceeds max %d (restart recompiled cached sources)", r.Recompiles, c.MaxRecompiles)
		}
		if len(trips) > 0 {
			failed = true
			for _, msg := range trips {
				fmt.Fprintf(w, "benchgate: REGRESSED macro/%-35s %s\n", name, msg)
			}
			continue
		}
		fmt.Fprintf(w, "benchgate: ok        macro/%-35s p50 %.1fms p99 %.1fms shed %d lost %d\n",
			name, r.P50Ms, r.P99Ms, r.SubmitShed, r.LostJobs)
	}
	return failed
}

func parseMacroFile(path string) (macroFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return macroFile{}, err
	}
	return parseMacro(raw)
}

// parseMacro decodes and validates a trajectory. Unknown schemas and
// structurally broken files are hard (exit 2) errors: a gate that shrugs
// at garbage input is not gating anything.
func parseMacro(raw []byte) (macroFile, error) {
	var mf macroFile
	if err := json.Unmarshal(raw, &mf); err != nil {
		return macroFile{}, fmt.Errorf("parse macro trajectory: %w", err)
	}
	if mf.Schema != macroSchema {
		return macroFile{}, fmt.Errorf("macro trajectory schema %q, want %q", mf.Schema, macroSchema)
	}
	if len(mf.Scenarios) == 0 {
		return macroFile{}, fmt.Errorf("macro trajectory has no scenarios")
	}
	for i, s := range mf.Scenarios {
		if s.Name == "" {
			return macroFile{}, fmt.Errorf("macro trajectory scenario %d has no name", i)
		}
	}
	return mf, nil
}

func parseBenchFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

// parseBench extracts {name -> best ns/op} from go test -bench output. The
// trailing -N GOMAXPROCS suffix is stripped; with -count > 1 the fastest
// run wins, which rejects scheduling noise rather than averaging it in.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	return out, sc.Err()
}
