package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a fake repo under a temp dir and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runLint(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	if stderr.Len() > 0 {
		t.Logf("stderr: %s", stderr.String())
	}
	return code, stdout.String()
}

func TestClockCallFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/overload/bad.go": `package overload

import "time"

func f() time.Time { return time.Now() }

func g(t0 time.Time) time.Duration { return time.Since(t0) }
`,
	})
	code, out := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if n := strings.Count(out, "deterministic-clock package"); n != 2 {
		t.Fatalf("want 2 clock findings, got %d:\n%s", n, out)
	}
}

func TestClockValueReferenceAllowed(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/devsession/ok.go": `package devsession

import "time"

type cfg struct{ Clock func() time.Time }

func defaults(c cfg) cfg {
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}
`,
	})
	if code, out := runLint(t, root); code != 0 {
		t.Fatalf("value reference flagged: exit = %d\n%s", code, out)
	}
}

func TestClockRuleScopedToListedPackages(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/other/fine.go": `package other

import "time"

func f() time.Time { return time.Now() }
`,
	})
	if code, out := runLint(t, root); code != 0 {
		t.Fatalf("unlisted package flagged: exit = %d\n%s", code, out)
	}
}

func TestTestFilesExempt(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/overload/clock_test.go": `package overload

import "time"

var t0 = time.Now()
`,
	})
	if code, out := runLint(t, root); code != 0 {
		t.Fatalf("test file flagged: exit = %d\n%s", code, out)
	}
}

func TestHotpathSprintfAndRegexpFlagged(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/kernelcheck/hot.go": `//kernelcheck:hotpath
package kernelcheck

import (
	"fmt"
	"regexp"
)

var re = regexp.MustCompile("x+")

func f(n int) string { return fmt.Sprintf("%d", n) }
`,
	})
	code, out := runLint(t, root)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "regexp imported") || !strings.Contains(out, "fmt.Sprintf call") {
		t.Fatalf("missing hotpath findings:\n%s", out)
	}
}

func TestHotpathRuleNeedsMarker(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/kernelcheck/cold.go": `package kernelcheck

import "fmt"

func f(n int) string { return fmt.Sprintf("%d", n) }
`,
	})
	if code, out := runLint(t, root); code != 0 {
		t.Fatalf("unmarked file flagged: exit = %d\n%s", code, out)
	}
}

func TestBadPathExitsTwo(t *testing.T) {
	if code, _ := runLint(t, filepath.Join(t.TempDir(), "missing")); code != 2 {
		t.Fatal("unreadable root should exit 2")
	}
}

// TestRepoIsClean runs the linter over the actual repository, which is
// the check CI performs: the tree itself must stay lint-clean.
func TestRepoIsClean(t *testing.T) {
	code, out := runLint(t, "../..")
	if code != 0 {
		t.Fatalf("repository has repolint findings:\n%s", out)
	}
}
