// Command repolint enforces repo-local invariants the general Go
// toolchain cannot express, using only the stdlib go/ast parser:
//
//   - Deterministic clocks: packages that model time through an injected
//     clock (internal/overload, internal/devsession, internal/macrobench)
//     must not call time.Now or time.Since directly in non-test files.
//     Storing the function value (`c.Clock = time.Now`) is allowed —
//     that IS the seam; calling it directly bypasses the seam and makes
//     rate limits, eviction, and benchmark trajectories untestable.
//
//   - Hot paths: files marked //kernelcheck:hotpath (the analyzer's
//     per-expression core) must not call fmt.Sprintf or import regexp;
//     both allocate or backtrack in code that runs per AST node per
//     draft keystroke.
//
// Usage: repolint [dir]... (default "."). Directories are walked for
// .go files; testdata and vendor trees are skipped. Exit code 1 when
// any finding is reported, 2 on usage or I/O problems.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// clockPkgs are the directories (matched as path segments) where direct
// wall-clock calls are banned in favor of the package's clock seam.
var clockPkgs = []string{
	"internal/overload",
	"internal/devsession",
	"internal/macrobench",
}

const hotpathMarker = "//kernelcheck:hotpath"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type finding struct {
	pos token.Position
	msg string
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		args = []string{"."}
	}
	var files []string
	for _, root := range args {
		err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case "testdata", "vendor", ".git":
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	}
	sort.Strings(files)

	var all []finding
	for _, path := range files {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
		all = append(all, lintFile(fset, f, path)...)
	}
	for _, fd := range all {
		fmt.Fprintf(stdout, "%s: %s\n", fd.pos, fd.msg)
	}
	if len(all) > 0 {
		fmt.Fprintf(stdout, "repolint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

func lintFile(fset *token.FileSet, f *ast.File, path string) []finding {
	var out []finding
	slash := filepath.ToSlash(path)
	if inClockPkg(slash) {
		out = append(out, checkClockCalls(fset, f)...)
	}
	if isHotpath(f) {
		out = append(out, checkHotpath(fset, f)...)
	}
	return out
}

func inClockPkg(slash string) bool {
	for _, pkg := range clockPkgs {
		if strings.Contains(slash, pkg+"/") || strings.HasSuffix(filepath.Dir(slash), pkg) {
			return true
		}
	}
	return false
}

// importName returns the identifier a file refers to importPath by, or
// "" if the file does not import it.
func importName(f *ast.File, importPath string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// checkClockCalls flags direct time.Now()/time.Since() call expressions.
// A bare reference (assigning time.Now to a clock field) does not match:
// only the CallExpr form defeats the injected clock.
func checkClockCalls(fset *token.FileSet, f *ast.File) []finding {
	timeName := importName(f, "time")
	if timeName == "" {
		return nil
	}
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != timeName || id.Obj != nil {
			return true
		}
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			out = append(out, finding{
				pos: fset.Position(call.Pos()),
				msg: fmt.Sprintf("direct time.%s call in a deterministic-clock package; route it through the package's clock seam", sel.Sel.Name),
			})
		}
		return true
	})
	return out
}

func isHotpath(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == hotpathMarker {
				return true
			}
		}
	}
	return false
}

// checkHotpath flags fmt.Sprintf calls and any regexp import in files
// carrying the hotpath marker.
func checkHotpath(fset *token.FileSet, f *ast.File) []finding {
	var out []finding
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == "regexp" {
			out = append(out, finding{
				pos: fset.Position(imp.Pos()),
				msg: "regexp imported in a //kernelcheck:hotpath file; hand-roll the scan instead",
			})
		}
	}
	fmtName := importName(f, "fmt")
	if fmtName == "" {
		return out
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != fmtName || id.Obj != nil {
			return true
		}
		if sel.Sel.Name == "Sprintf" {
			out = append(out, finding{
				pos: fset.Position(call.Pos()),
				msg: "fmt.Sprintf call in a //kernelcheck:hotpath file; build the string with strconv/Builder",
			})
		}
		return true
	})
	return out
}
