package feedback

import (
	"context"
	"strings"
	"testing"

	"webgpu/internal/labs"
)

func runAttempt(t *testing.T, labID, src string) *labs.Outcome {
	t.Helper()
	l := labs.ByID(labID)
	n := l.NumGPUs
	if n == 0 {
		n = 1
	}
	return labs.Run(context.Background(), l, src, 0, labs.NewDeviceSet(n), 200000)
}

func hintCodes(hints []Hint) []string {
	out := make([]string, len(hints))
	for i, h := range hints {
		out[i] = h.Code
	}
	return out
}

func requireHint(t *testing.T, hints []Hint, code string) Hint {
	t.Helper()
	for _, h := range hints {
		if h.Code == code {
			return h
		}
	}
	t.Fatalf("hint %q not found in %v", code, hintCodes(hints))
	return Hint{}
}

func TestNilOutcome(t *testing.T) {
	hints := Analyze(labs.ByID("vector-add"), "x", nil)
	requireHint(t, hints, "run-first")
}

func TestMissingBoundsCheckHint(t *testing.T) {
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = in1[i] + in2[i];
}`
	o := runAttempt(t, "vector-add", src)
	if o.RuntimeError == "" {
		t.Fatal("expected an OOB fault")
	}
	h := requireHint(t, Analyze(labs.ByID("vector-add"), src, o), "missing-bounds-check")
	if h.Confidence < 0.9 {
		t.Errorf("no-guard kernel should give high confidence, got %v", h.Confidence)
	}
	if !strings.Contains(h.Detail, "if (i < len)") {
		t.Errorf("detail = %q", h.Detail)
	}
}

func TestBoundsHintLowerConfidenceWithGuard(t *testing.T) {
	// Has a guard but still faults (guard uses the wrong variable).
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (len < 100000) {
    out[i] = in1[i] + in2[i];
  }
}`
	o := runAttempt(t, "vector-add", src)
	if o.RuntimeError == "" {
		t.Fatal("expected an OOB fault")
	}
	h := requireHint(t, Analyze(labs.ByID("vector-add"), src, o), "missing-bounds-check")
	if h.Confidence >= 0.9 {
		t.Errorf("guarded source should lower confidence, got %v", h.Confidence)
	}
}

func TestDivergentSyncthreadsHint(t *testing.T) {
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    __syncthreads();
    out[i] = in1[i] + in2[i];
  }
}`
	o := runAttempt(t, "vector-add", src)
	if o.RuntimeError == "" || !strings.Contains(o.RuntimeError, "divergence") {
		t.Fatalf("expected divergence, got %q", o.RuntimeError)
	}
	h := requireHint(t, Analyze(labs.ByID("vector-add"), src, o), "divergent-syncthreads")
	if h.Confidence < 0.9 {
		t.Errorf("confidence = %v", h.Confidence)
	}
}

func TestTimeLimitHint(t *testing.T) {
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  float x = 0.0f;
  while (1) { x += 1.0f; }
  out[0] = x;
}`
	o := runAttempt(t, "vector-add", src)
	h := requireHint(t, Analyze(labs.ByID("vector-add"), src, o), "time-limit")
	if !strings.Contains(h.Detail, "while (1)") {
		t.Errorf("detail = %q", h.Detail)
	}
}

func TestCompileHints(t *testing.T) {
	cases := []struct {
		src  string
		code string
	}{
		{`__global__ void vecAdd(float *a, float *b, float *c, int n) { int i = blockIdx.x * blockDim.x + threadIdx.x  c[i] = 0.0f; }`,
			"missing-semicolon"},
		{`__global__ void vecAdd(float *a, float *b, float *c, int n) { syncthreads(); }`,
			"undeclared-identifier"},
		{`__global__ void vecAdd(float *a, float *b, float *c, int n) { int i = get_global_id(0); }`,
			"wrong-dialect"},
		{`__global__ void vecAdd(float *a, float *b, float *c, int n) { int i = threadIdx; }`,
			"dim3-member"},
	}
	for _, c := range cases {
		o := runAttempt(t, "vector-add", c.src)
		if o.Compiled {
			t.Fatalf("%q compiled", c.src)
		}
		hints := Analyze(labs.ByID("vector-add"), c.src, o)
		requireHint(t, hints, c.code)
		// The raw diagnostic is always included as a fallback.
		requireHint(t, hints, "compile-error")
	}
}

func TestSyncthreadsSpellingHint(t *testing.T) {
	src := `__global__ void vecAdd(float *a, float *b, float *c, int n) { syncthreads(); }`
	o := runAttempt(t, "vector-add", src)
	h := requireHint(t, Analyze(labs.ByID("vector-add"), src, o), "undeclared-identifier")
	if !strings.Contains(h.Detail, "__syncthreads()") {
		t.Errorf("detail = %q", h.Detail)
	}
}

func TestWrongAnswerBoundaryHint(t *testing.T) {
	// Off-by-one: last element never written (stays zero).
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len - 1) out[i] = in1[i] + in2[i];
  else if (i < len) out[i] = 0.0f;
}`
	o := runAttempt(t, "vector-add", src)
	if o.Correct || o.RuntimeError != "" {
		t.Fatalf("outcome = %+v", o)
	}
	hints := Analyze(labs.ByID("vector-add"), src, o)
	requireHint(t, hints, "boundary-wrong")
}

func TestWrongAnswerFormulaHint(t *testing.T) {
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) out[i] = in1[i] - in2[i];
}`
	o := runAttempt(t, "vector-add", src)
	hints := Analyze(labs.ByID("vector-add"), src, o)
	requireHint(t, hints, "first-element-wrong")
}

func TestMissingSyncthreadsOnSharedUse(t *testing.T) {
	// Tiled matmul without barriers: wrong results, shared memory in use.
	src := strings.ReplaceAll(labs.ByID("tiled-matmul").Reference, "__syncthreads();", "")
	o := runAttempt(t, "tiled-matmul", src)
	if o.Correct {
		t.Skip("racy tile read happened to pass; heuristic untestable this run")
	}
	hints := Analyze(labs.ByID("tiled-matmul"), src, o)
	requireHint(t, hints, "missing-syncthreads")
}

func TestCorrectGetsPositiveFeedback(t *testing.T) {
	l := labs.ByID("vector-add")
	o := runAttempt(t, "vector-add", l.Reference)
	if !o.Correct {
		t.Fatalf("reference failed: %+v", o)
	}
	hints := Analyze(l, l.Reference, o)
	requireHint(t, hints, "correct")
}

func TestTilingSuggestedForNaiveTiledLabSolution(t *testing.T) {
	// A correct but untiled solution to the tiled lab: passes datasets,
	// gets the performance hint.
	src := `__global__ void matrixMultiplyShared(float *A, float *B, float *C,
                               int numARows, int numACols, int numBCols) {
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  if (row < numARows && col < numBCols) {
    float acc = 0.0f;
    for (int k = 0; k < numACols; k++)
      acc += A[row * numACols + k] * B[k * numBCols + col];
    C[row * numBCols + col] = acc;
  }
}`
	o := runAttempt(t, "tiled-matmul", src)
	if !o.Correct {
		t.Fatalf("naive solution should be correct: %+v", o)
	}
	hints := Analyze(labs.ByID("tiled-matmul"), src, o)
	h := requireHint(t, hints, "consider-tiling")
	if !strings.Contains(h.Detail, "__shared__") {
		t.Errorf("detail = %q", h.Detail)
	}
}

func TestDivByZeroHint(t *testing.T) {
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int z = len - len;
  out[0] = (float)(7 / z);
}`
	o := runAttempt(t, "vector-add", src)
	requireHint(t, Analyze(labs.ByID("vector-add"), src, o), "div-by-zero")
}

func TestWrongKernelNameHint(t *testing.T) {
	src := `__global__ void myVectorAdd(float *a, float *b, float *c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) c[i] = a[i] + b[i];
}`
	o := runAttempt(t, "vector-add", src)
	h := requireHint(t, Analyze(labs.ByID("vector-add"), src, o), "wrong-kernel-name")
	if !strings.Contains(h.Detail, "skeleton") {
		t.Errorf("detail = %q", h.Detail)
	}
}

func TestConstWriteHint(t *testing.T) {
	src := `__constant__ float M[5];
__global__ void conv1d(float *in, float *out, int n) {
  M[0] = 1.0f;
  out[0] = in[0];
}`
	o := runAttempt(t, "convolution-2d", src) // lab harness rejects first on kernel name
	_ = o
	// Drive it via a lab whose harness launches our kernel name: use the
	// conv lab signature instead.
	src2 := `#define MASK_WIDTH 5
__constant__ float M[MASK_WIDTH][MASK_WIDTH];
__global__ void convolution2D(float *in, float *out, int height, int width) {
  M[0][0] = 1.0f;
  out[0] = in[0];
}`
	o2 := runAttempt(t, "convolution-2d", src2)
	if o2.RuntimeError == "" {
		t.Fatalf("write to constant memory not faulted: %+v", o2)
	}
	requireHint(t, Analyze(labs.ByID("convolution-2d"), src2, o2), "const-write")
}

func TestUncoalescedHint(t *testing.T) {
	// Correct tiled-matmul-lab submission whose shared-memory staging is
	// column-strided: correct results, shared ops present, and global
	// loads spread across segments.
	src := `__global__ void matrixMultiplyShared(float *A, float *B, float *C,
                               int numARows, int numACols, int numBCols) {
  __shared__ float stage[16];
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  stage[threadIdx.y] = A[0];
  if (row < numARows && col < numBCols) {
    float acc = 0.0f;
    for (int k = 0; k < numACols; k++)
      acc += A[row * numACols + k] * B[k * numBCols + col];
    C[row * numBCols + col] = acc + 0.0f * stage[threadIdx.y];
  }
}`
	o := runAttempt(t, "tiled-matmul", src)
	if !o.Correct {
		t.Skipf("variant not correct this run: %+v", o)
	}
	hints := Analyze(labs.ByID("tiled-matmul"), src, o)
	// Either the uncoalesced or the broader performance analysis fires;
	// the submission must not be left with zero feedback.
	if len(hints) == 0 {
		t.Fatal("no hints for a slow-but-correct submission")
	}
}

func TestHintsSortedByConfidence(t *testing.T) {
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = in1[i] + in2[i];
}`
	o := runAttempt(t, "vector-add", src)
	hints := Analyze(labs.ByID("vector-add"), src, o)
	for i := 1; i < len(hints); i++ {
		if hints[i].Confidence > hints[i-1].Confidence {
			t.Fatalf("hints not sorted: %v", hintCodes(hints))
		}
	}
}

func TestKernelStatsPopulated(t *testing.T) {
	l := labs.ByID("tiled-matmul")
	o := runAttempt(t, "tiled-matmul", l.Reference)
	if len(o.Kernels) == 0 {
		t.Fatal("no kernel stats recorded")
	}
	k := o.Kernels[0]
	if k.Name == "" || k.Threads == 0 || k.SharedOps == 0 || k.Barriers == 0 {
		t.Errorf("stats = %+v", k)
	}
}
