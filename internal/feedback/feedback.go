// Package feedback implements the paper's stated future work (§VIII):
// "automated feedback to students and on-demand help/hints during
// development". It analyzes a failed (or slow) attempt — the compiler
// diagnostic, the runtime fault, the correctness mismatch, the source
// text, and the kernel performance counters — and produces ranked,
// student-facing hints. The analyzer is deliberately heuristic: it points
// at the class of mistake (the pedagogy) without writing the fix.
package feedback

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"webgpu/internal/labs"
	"webgpu/internal/minicuda"
)

// Hint is one piece of automated feedback.
type Hint struct {
	Code       string  `json:"code"`  // stable identifier, e.g. "missing-bounds-check"
	Title      string  `json:"title"` // one-line summary
	Detail     string  `json:"detail"`
	Confidence float64 `json:"confidence"` // 0..1; hints are sorted by it
}

// Analyze inspects an attempt outcome and returns hints, most confident
// first. A nil outcome (no attempt yet) yields guidance to run first.
func Analyze(l *labs.Lab, source string, o *labs.Outcome) []Hint {
	if o == nil {
		return []Hint{{
			Code:       "run-first",
			Title:      "Run your code against a dataset",
			Detail:     "Hints are generated from compile, run, and correctness results. Use Compile & Run on a dataset first.",
			Confidence: 1,
		}}
	}
	var hints []Hint
	add := func(h Hint) { hints = append(hints, h) }

	clean := minicuda.StripComments(source)

	switch {
	case !o.Compiled:
		hints = append(hints, compileHints(o.CompileError)...)
	case o.RuntimeError != "":
		hints = append(hints, runtimeHints(l, clean, o)...)
	case !o.Correct:
		hints = append(hints, wrongAnswerHints(l, clean, o)...)
	default:
		hints = append(hints, performanceHints(l, clean, o)...)
		if len(hints) == 0 {
			add(Hint{
				Code:       "correct",
				Title:      "Solution is correct",
				Detail:     "This dataset passes. Run the remaining datasets, answer the questions, and submit for grading.",
				Confidence: 1,
			})
		}
	}

	sort.SliceStable(hints, func(i, j int) bool { return hints[i].Confidence > hints[j].Confidence })
	return hints
}

// ---- Compile diagnostics ---------------------------------------------------------

var identRe = regexp.MustCompile(`undeclared (identifier|function) "([^"]+)"`)

func compileHints(msg string) []Hint {
	var hints []Hint
	low := strings.ToLower(msg)
	switch {
	case identRe.MatchString(msg):
		m := identRe.FindStringSubmatch(msg)
		detail := fmt.Sprintf("The compiler does not know %q. Check the spelling, or declare it before use.", m[2])
		if strings.Contains(m[2], "syncthread") {
			detail = "Did you mean __syncthreads()? Note the double underscores and the trailing s."
		}
		hints = append(hints, Hint{
			Code: "undeclared-identifier", Title: "Undeclared identifier",
			Detail: detail, Confidence: 0.95,
		})
	case strings.Contains(low, `expected ";"`):
		hints = append(hints, Hint{
			Code: "missing-semicolon", Title: "Missing semicolon",
			Detail:     "A statement before the reported position is missing its terminating semicolon: " + msg,
			Confidence: 0.9,
		})
	case strings.Contains(low, "expected") && strings.Contains(low, `")"`):
		hints = append(hints, Hint{
			Code: "unbalanced-parens", Title: "Unbalanced parentheses",
			Detail:     "Check for a missing closing parenthesis near the reported position: " + msg,
			Confidence: 0.85,
		})
	case strings.Contains(low, "opencl builtin"):
		hints = append(hints, Hint{
			Code: "wrong-dialect", Title: "OpenCL function in a CUDA lab",
			Detail:     "This lab compiles with the CUDA toolchain. Use blockIdx/blockDim/threadIdx instead of the get_*_id functions.",
			Confidence: 0.95,
		})
	case strings.Contains(low, "cuda builtin"):
		hints = append(hints, Hint{
			Code: "wrong-dialect", Title: "CUDA function in an OpenCL lab",
			Detail:     "This lab compiles with the OpenCL toolchain. Use get_global_id(0) and friends instead of CUDA builtins.",
			Confidence: 0.95,
		})
	case strings.Contains(low, ".x/.y/.z"):
		hints = append(hints, Hint{
			Code: "dim3-member", Title: "threadIdx needs a component",
			Detail:     "threadIdx, blockIdx, blockDim, and gridDim are 3-component vectors: write threadIdx.x (or .y/.z).",
			Confidence: 0.95,
		})
	}
	hints = append(hints, Hint{
		Code: "compile-error", Title: "Compilation failed",
		Detail: msg, Confidence: 0.5,
	})
	return hints
}

// ---- Runtime faults ---------------------------------------------------------------

func runtimeHints(l *labs.Lab, clean string, o *labs.Outcome) []Hint {
	var hints []Hint
	msg := o.RuntimeError
	low := strings.ToLower(msg)
	switch {
	case strings.Contains(low, "constant memory is read-only"):
		hints = append(hints, Hint{
			Code: "const-write", Title: "Write to __constant__ memory",
			Detail: "Constant memory is read-only from device code; the host loads it before launch. " +
				"Write your results to the output buffer instead.",
			Confidence: 0.95,
		})
	case strings.Contains(low, "illegal memory access"):
		conf := 0.7
		detail := "A thread read or wrote outside an allocation. The most common cause is a missing " +
			"boundary check: the grid usually launches more threads than there are elements, so " +
			"guard your accesses with something like `if (i < len)`."
		if !hasBoundsGuard(clean) {
			conf = 0.95
			detail = "Your kernel indexes global memory without any boundary check, but the grid is " +
				"rounded up to whole blocks — the extra threads run too. Compute the global index and " +
				"guard the body with `if (i < len)` (see the lecture on thread-to-data mapping)."
		}
		hints = append(hints, Hint{
			Code: "missing-bounds-check", Title: "Out-of-bounds memory access",
			Detail: detail, Confidence: conf,
		})
	case strings.Contains(low, "barrier divergence"):
		conf := 0.7
		detail := "__syncthreads() must be reached by every thread of the block."
		if syncInsideBranch(clean) {
			conf = 0.95
			detail = "You call __syncthreads() inside a conditional (or return before it on some " +
				"threads). Every thread of the block must reach every barrier: hoist the " +
				"__syncthreads() out of the divergent branch and make boundary threads participate " +
				"with neutral work (e.g. loading 0 into the shared tile)."
		}
		hints = append(hints, Hint{
			Code: "divergent-syncthreads", Title: "Barrier divergence",
			Detail: detail, Confidence: conf,
		})
	case strings.Contains(low, "time limit"):
		detail := "Your kernel exceeded the execution time limit (§III-C sets one per lab). " +
			"Check loop exit conditions — does every loop make progress toward termination?"
		if strings.Contains(clean, "while (1)") || strings.Contains(clean, "while(1)") ||
			strings.Contains(clean, "while (true)") {
			detail = "Your kernel contains an unconditional loop (`while (1)`). On WebGPU the " +
				"execution time limit terminates it; make the loop condition depend on data that changes."
		}
		hints = append(hints, Hint{
			Code: "time-limit", Title: "Execution time limit exceeded",
			Detail: detail, Confidence: 0.9,
		})
	case strings.Contains(low, "division by zero"):
		hints = append(hints, Hint{
			Code: "div-by-zero", Title: "Integer division by zero",
			Detail: "An integer division or modulo had a zero divisor. Check block/grid arithmetic " +
				"and any histogram-bucket or stride computations.",
			Confidence: 0.9,
		})
	case strings.Contains(low, "must define a __global__ kernel"):
		hints = append(hints, Hint{
			Code: "wrong-kernel-name", Title: "Kernel name does not match the lab harness",
			Detail:     msg + " — keep the kernel signature from the skeleton; the harness launches it by name.",
			Confidence: 0.95,
		})
	}
	hints = append(hints, Hint{
		Code: "runtime-error", Title: "Kernel execution failed",
		Detail: msg, Confidence: 0.4,
	})
	return hints
}

// ---- Wrong answers ------------------------------------------------------------------

var elementRe = regexp.MustCompile(`element (\d+)`)

func wrongAnswerHints(l *labs.Lab, clean string, o *labs.Outcome) []Hint {
	var hints []Hint
	if m := elementRe.FindStringSubmatch(o.CheckMessage); m != nil {
		idx, _ := strconv.Atoi(m[1])
		total := totalFromTrace(o.Trace)
		switch {
		case idx == 0:
			hints = append(hints, Hint{
				Code: "first-element-wrong", Title: "Output is wrong from the first element",
				Detail: "Element 0 already mismatches, so the core formula (not the boundaries) is " +
					"likely wrong. Re-derive the expression for one output element by hand and compare.",
				Confidence: 0.8,
			})
		case total > 0 && idx >= total*9/10:
			hints = append(hints, Hint{
				Code: "boundary-wrong", Title: "Mismatch near the end of the output",
				Detail: fmt.Sprintf("The first wrong value is element %d of ~%d — a boundary problem. "+
					"Check the guard on the last partial block and any halo/ghost-cell handling.", idx, total),
				Confidence: 0.85,
			})
		default:
			hints = append(hints, Hint{
				Code: "interior-wrong", Title: "Mismatch in the interior of the output",
				Detail: fmt.Sprintf("First mismatch at element %d. If boundaries are right but the "+
					"interior is wrong, suspect the index arithmetic (row/column swapped?) or a "+
					"missing __syncthreads() between writing and reading shared memory.", idx),
				Confidence: 0.6,
			})
		}
	}
	if usesShared(clean) && !strings.Contains(clean, "__syncthreads") && l.Dialect.String() == "CUDA" {
		hints = append(hints, Hint{
			Code: "missing-syncthreads", Title: "Shared memory without __syncthreads()",
			Detail: "You stage data in __shared__ memory but never synchronize. Threads read tiles " +
				"before their neighbours finish writing them; add __syncthreads() after the load and " +
				"after the use.",
			Confidence: 0.9,
		})
	}
	hints = append(hints, Hint{
		Code: "wrong-answer", Title: "Output does not match the expected results",
		Detail: o.CheckMessage, Confidence: 0.3,
	})
	return hints
}

// ---- Performance -------------------------------------------------------------------

func performanceHints(l *labs.Lab, clean string, o *labs.Outcome) []Hint {
	var hints []Hint
	wantsShared := false
	for _, kw := range l.Rubric.Keywords {
		if kw == "__shared__" {
			wantsShared = true
		}
	}
	var gTx, sOps int64
	for _, k := range o.Kernels {
		gTx += k.GlobalTx
		sOps += k.SharedOps
	}
	if wantsShared && !usesShared(clean) {
		hints = append(hints, Hint{
			Code: "consider-tiling", Title: "Correct, but no shared-memory tiling",
			Detail: fmt.Sprintf("This lab's rubric awards points for __shared__ usage, and your kernel "+
				"issued %d global memory transactions with no shared-memory traffic. Stage reused "+
				"data in a __shared__ tile to cut global traffic (the lecture predicts ~TILE_WIDTH×).", gTx),
			Confidence: 0.85,
		})
	}
	if gTx > 0 && sOps > 0 {
		// Rough coalescing check: far more transactions than loads/32
		// suggests strided access.
		var loads int64
		for _, k := range o.Kernels {
			loads += k.GlobalLoads + k.GlobalStores
		}
		if loads > 0 && gTx*8 > loads {
			hints = append(hints, Hint{
				Code: "uncoalesced-access", Title: "Global accesses look uncoalesced",
				Detail: fmt.Sprintf("Your kernels issued %d global transactions for %d accesses "+
					"(~%.1f accesses per 128-byte transaction; coalesced code reaches ~32). Make "+
					"consecutive threads touch consecutive addresses.", gTx, loads, float64(loads)/float64(gTx)),
				Confidence: 0.6,
			})
		}
	}
	return hints
}

// ---- Source heuristics ----------------------------------------------------------------

var boundsGuardRe = regexp.MustCompile(`if\s*\([^)]*[<>]=?[^)]*\)`)

// hasBoundsGuard reports whether the source contains any comparison-guarded
// if — the shape of a boundary check.
func hasBoundsGuard(clean string) bool {
	return boundsGuardRe.MatchString(clean) ||
		regexp.MustCompile(`if\s*\([^)]*[<>]`).MatchString(clean)
}

// usesShared reports whether the source declares shared memory.
func usesShared(clean string) bool {
	return strings.Contains(clean, "__shared__") || strings.Contains(clean, "__local")
}

var syncAfterIfRe = regexp.MustCompile(`if\s*\([^{;]*\)\s*__syncthreads`)

// syncInsideBranch detects a __syncthreads() call lexically inside a block
// opened by an if/else — the divergent-barrier pattern the tiled labs warn
// about. It is a heuristic: a barrier after an early `return;` in the same
// function also counts.
func syncInsideBranch(clean string) bool {
	if syncAfterIfRe.MatchString(clean) {
		return true // braceless `if (...) __syncthreads();`
	}
	type frame struct{ conditional bool }
	var stack []frame
	for i := 0; i < len(clean); i++ {
		switch clean[i] {
		case '{':
			stack = append(stack, frame{conditional: openedByConditional(clean, i)})
		case '}':
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case '_':
			if strings.HasPrefix(clean[i:], "__syncthreads") {
				for _, f := range stack {
					if f.conditional {
						return true
					}
				}
			}
		}
	}
	// Early return before a later barrier also diverges when only some
	// threads take it.
	retPos := strings.Index(clean, "return;")
	syncPos := strings.LastIndex(clean, "__syncthreads")
	return retPos >= 0 && syncPos >= 0 && retPos < syncPos
}

// openedByConditional reports whether the '{' at bracePos follows an
// if (...) header or an else keyword.
func openedByConditional(s string, bracePos int) bool {
	i := bracePos - 1
	for i >= 0 && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r') {
		i--
	}
	if i < 0 {
		return false
	}
	if s[i] == ')' {
		// Walk back over the condition to its '(' and read the keyword.
		depth := 0
		for ; i >= 0; i-- {
			if s[i] == ')' {
				depth++
			} else if s[i] == '(' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		return lastWordBefore(s, i) == "if"
	}
	return lastWordBefore(s, i+1) == "else"
}

// lastWordBefore returns the identifier ending immediately before pos
// (skipping trailing whitespace).
func lastWordBefore(s string, pos int) string {
	i := pos - 1
	for i >= 0 && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r') {
		i--
	}
	end := i + 1
	for i >= 0 && (s[i] >= 'a' && s[i] <= 'z' || s[i] >= 'A' && s[i] <= 'Z' || s[i] == '_') {
		i--
	}
	return s[i+1 : end]
}

// totalFromTrace extracts the input length from the wbLog line "The input
// length is N" when present, to judge whether a mismatch is near the end.
var lengthRe = regexp.MustCompile(`input length is (\d+)`)

func totalFromTrace(trace string) int {
	if m := lengthRe.FindStringSubmatch(trace); m != nil {
		n, _ := strconv.Atoi(m[1])
		return n
	}
	return 0
}
