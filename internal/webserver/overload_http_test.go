package webserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"webgpu/internal/db"
	"webgpu/internal/grader"
	"webgpu/internal/labs"
	"webgpu/internal/overload"
	"webgpu/internal/peerreview"
	"webgpu/internal/sandbox"
	"webgpu/internal/worker"
)

// overloadFixture builds a server with an injectable-pressure admission
// controller, so tests steer the shed decisions deterministically. The
// clock and the broker-backlog signal are mutex-guarded: background
// devsession loops read them concurrently with the test mutating them.
type overloadFixture struct {
	*fixture
	ctrl  *overload.Controller
	mu    sync.Mutex
	depth int
}

func (f *overloadFixture) clock() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *overloadFixture) advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func (f *overloadFixture) setDepth(n int) {
	f.mu.Lock()
	f.depth = n
	f.mu.Unlock()
}

func newOverloadFixture(t *testing.T, limits map[overload.Class]overload.ClassLimit) *overloadFixture {
	of := &overloadFixture{}
	of.fixture = &fixture{t: t, now: time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC), tokens: map[string]string{}}
	of.ctrl = overload.New(overload.Config{
		Clock:  of.clock,
		Limits: limits,
		QueueDepth: func() int {
			of.mu.Lock()
			defer of.mu.Unlock()
			return of.depth
		},
		QueueDepthLimit: 100,
	})
	lim := sandbox.DefaultLimits()
	lim.SubmitInterval = time.Millisecond // keep the §III-C limiter out of the way
	of.srv = New(Config{
		DB:         db.New(),
		Dispatcher: fakeDispatcher(),
		Gradebook:  grader.NewCourseraBook("test"),
		Reviews:    peerreview.NewStore(0.10),
		Course:     labs.CourseHPP,
		Limits:     lim,
		Clock:      of.clock,
		Overload:   of.ctrl,
	})
	of.ts = newTestServer(t, of.srv)
	return of
}

// assertShedEnvelope checks the full shed contract on a response: 429,
// a Retry-After header of at least one second, and the unified
// {"error":{"code","message"}} envelope with the expected machine code.
func assertShedEnvelope(t *testing.T, code int, headers http.Header, body []byte, wantCode string) {
	t.Helper()
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", code, body)
	}
	ra := headers.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", ra)
	}
	var env ErrorBody
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("shed body is not the unified envelope: %v (%s)", err, body)
	}
	if env.Error.Code != wantCode {
		t.Fatalf("error code = %q, want %q (message %q)", env.Error.Code, wantCode, env.Error.Message)
	}
	if env.Error.Message == "" {
		t.Fatal("shed envelope has an empty message")
	}
}

// reqFull is f.req plus response headers, which the shed contract needs.
func (f *overloadFixture) reqFull(method, path, token string, body interface{}) (int, http.Header, []byte) {
	f.t.Helper()
	var rd io.Reader
	if body != nil {
		b, _ := json.Marshal(body)
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, f.ts.URL+path, rd)
	if err != nil {
		f.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, buf
}

// TestShedPathsReturnUnifiedEnvelope drives every distinct shed path —
// backpressure, saturation, per-tenant rate limit, devsession pressure
// shed — through real HTTP and asserts the full contract on each.
func TestShedPathsReturnUnifiedEnvelope(t *testing.T) {
	cases := []struct {
		name     string
		limits   map[overload.Class]overload.ClassLimit
		wantCode string
		run      func(t *testing.T, f *overloadFixture) (int, http.Header, []byte)
	}{
		{
			name:     "read backpressure shed",
			wantCode: ErrCodeOverloaded,
			run: func(t *testing.T, f *overloadFixture) (int, http.Header, []byte) {
				f.setDepth(60) // pressure 0.6 >= read's 0.5
				tok := f.register("bp@test.edu", "student")
				return f.reqFull("GET", "/api/v1/labs/vector-add/history", tok, nil)
			},
		},
		{
			name:     "draft backpressure shed",
			wantCode: ErrCodeOverloaded,
			run: func(t *testing.T, f *overloadFixture) (int, http.Header, []byte) {
				tok := f.register("draft@test.edu", "student")
				code, body := f.req("POST", "/api/v1/labs/vector-add/session", tok, nil)
				if code != http.StatusCreated {
					t.Fatalf("open session: %d %s", code, body)
				}
				var sess struct {
					ID string `json:"session_id"`
				}
				_ = json.Unmarshal(body, &sess)
				f.setDepth(80) // pressure 0.8 >= draft's 0.75
				return f.reqFull("POST", "/api/v1/sessions/"+sess.ID+"/draft", tok,
					map[string]string{"source": "__global__ void k() {}"})
			},
		},
		{
			name: "read saturation shed-before-queue",
			limits: map[overload.Class]overload.ClassLimit{
				overload.ClassRead: {MaxConcurrent: 1},
			},
			wantCode: ErrCodeOverloaded,
			run: func(t *testing.T, f *overloadFixture) (int, http.Header, []byte) {
				// Hold the read gate's only slot by admitting directly, then
				// hit a read route: it must shed synchronously, never queue.
				tk, err := f.ctrl.Admit(context.Background(), overload.ClassRead)
				if err != nil {
					t.Fatal(err)
				}
				defer tk.Release()
				tok := f.register("sat@test.edu", "student")
				return f.reqFull("GET", "/api/v1/labs/vector-add/attempts", tok, nil)
			},
		},
		{
			name: "per-tenant rate limit keeps rate_limited code",
			limits: map[overload.Class]overload.ClassLimit{
				overload.ClassRead: {MaxConcurrent: 64, TenantBurst: 1, TenantInterval: time.Minute},
			},
			wantCode: ErrCodeRateLimited,
			run: func(t *testing.T, f *overloadFixture) (int, http.Header, []byte) {
				tok := f.register("tenant@test.edu", "student")
				if code, _, body := f.reqFull("GET", "/api/v1/labs/vector-add/history", tok, nil); code != http.StatusOK {
					t.Fatalf("first read within burst: %d %s", code, body)
				}
				// Same clock instant: the bucket cannot have refilled.
				return f.reqFull("GET", "/api/v1/labs/vector-add/history", tok, nil)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newOverloadFixture(t, tc.limits)
			code, headers, body := tc.run(t, f)
			assertShedEnvelope(t, code, headers, body, tc.wantCode)
		})
	}
}

// TestPriorityClassOrdering proves the degradation order end to end over
// HTTP: as pressure rises, reads shed first, then drafts, and submissions
// keep succeeding throughout.
func TestPriorityClassOrdering(t *testing.T) {
	f := newOverloadFixture(t, nil)
	tok := f.register("order@test.edu", "student")
	src := labs.ByID("vector-add").Reference
	if code, body := f.req("POST", "/api/v1/labs/vector-add/save", tok,
		map[string]string{"source": src}); code != http.StatusOK {
		t.Fatalf("save: %d %s", code, body)
	}
	code, body := f.req("POST", "/api/v1/labs/vector-add/session", tok, nil)
	if code != http.StatusCreated {
		t.Fatalf("open session: %d %s", code, body)
	}
	var sess struct {
		ID string `json:"session_id"`
	}
	_ = json.Unmarshal(body, &sess)
	draftBody := map[string]string{"source": src}

	read := func() int {
		c, _, _ := f.reqFull("GET", "/api/v1/labs/vector-add/history", tok, nil)
		return c
	}
	draft := func() int {
		c, _, _ := f.reqFull("POST", "/api/v1/sessions/"+sess.ID+"/draft", tok, draftBody)
		return c
	}
	submit := func() int {
		f.advance(time.Second) // stay ahead of the §III-C limiter
		c, _, b := f.reqFull("POST", "/api/v1/labs/vector-add/submit", tok, nil)
		if c != http.StatusOK {
			t.Logf("submit body: %s", b)
		}
		return c
	}

	// Calm: everything succeeds.
	f.setDepth(0)
	if c := read(); c != http.StatusOK {
		t.Fatalf("read at pressure 0 = %d, want 200", c)
	}
	if c := draft(); c != http.StatusAccepted {
		t.Fatalf("draft at pressure 0 = %d, want 202", c)
	}
	if c := submit(); c != http.StatusOK {
		t.Fatalf("submit at pressure 0 = %d, want 200", c)
	}

	// Pressure 0.6: reads shed, drafts and submissions still succeed.
	f.setDepth(60)
	if c := read(); c != http.StatusTooManyRequests {
		t.Fatalf("read at pressure 0.6 = %d, want 429", c)
	}
	if c := draft(); c != http.StatusAccepted {
		t.Fatalf("draft at pressure 0.6 = %d, want 202 (drafts shed at 0.75, not 0.5)", c)
	}
	if c := submit(); c != http.StatusOK {
		t.Fatalf("submit at pressure 0.6 = %d, want 200", c)
	}

	// Pressure 0.9: reads and drafts shed, submissions STILL succeed —
	// the whole point of the priority ordering.
	f.setDepth(90)
	if c := read(); c != http.StatusTooManyRequests {
		t.Fatalf("read at pressure 0.9 = %d, want 429", c)
	}
	if c := draft(); c != http.StatusTooManyRequests {
		t.Fatalf("draft at pressure 0.9 = %d, want 429", c)
	}
	if c := submit(); c != http.StatusOK {
		t.Fatalf("submit at pressure 0.9 = %d, want 200", c)
	}

	// Pressure recedes: all classes recover.
	f.setDepth(0)
	if c := read(); c != http.StatusOK {
		t.Fatalf("read after recovery = %d, want 200", c)
	}
	if c := draft(); c != http.StatusAccepted {
		t.Fatalf("draft after recovery = %d, want 202", c)
	}
}

// TestSubmissionsQueueWhileReadsShed holds the submission gate saturated
// with a blocking dispatcher and proves concurrent submissions queue (and
// eventually succeed) rather than shed, while reads shed immediately.
func TestSubmissionsQueueWhileReadsShed(t *testing.T) {
	release := make(chan struct{})
	var blocking sync.Once
	node := worker.NewNode(worker.DefaultNodeConfig("blocking-worker"))
	blockingDispatch := DispatcherFunc(func(ctx context.Context, job *worker.Job) (*worker.Result, error) {
		var wait bool
		blocking.Do(func() { wait = true })
		if wait {
			<-release // first job parks in the worker, holding its slot
		}
		return node.Execute(ctx, job), nil
	})

	f := &fixture{t: t, now: time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC), tokens: map[string]string{}}
	ctrl := overload.New(overload.Config{
		Clock: time.Now, // queued-waiter timing is real goroutine scheduling
		Limits: map[overload.Class]overload.ClassLimit{
			overload.ClassSubmission: {MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 30 * time.Second},
			overload.ClassRead:       {MaxConcurrent: 64, ShedAt: 0.05},
		},
	})
	lim := sandbox.DefaultLimits()
	lim.SubmitInterval = time.Nanosecond
	f.srv = New(Config{
		DB:         db.New(),
		Dispatcher: blockingDispatch,
		Gradebook:  grader.NewCourseraBook("test"),
		Reviews:    peerreview.NewStore(0.10),
		Course:     labs.CourseHPP,
		Limits:     lim,
		Clock:      func() time.Time { return f.now },
		Overload:   ctrl,
	})
	f.ts = newTestServer(t, f.srv)

	alice := f.register("alice@test.edu", "student")
	bob := f.register("bob@test.edu", "student")
	src := labs.ByID("vector-add").Reference
	for _, tok := range []string{alice, bob} {
		if code, body := f.req("POST", "/api/labs/vector-add/save", tok,
			map[string]string{"source": src}); code != http.StatusOK {
			t.Fatalf("save: %d %s", code, body)
		}
	}

	// First submission occupies the only submission slot (blocked worker).
	firstDone := make(chan int, 1)
	go func() {
		code, _ := f.req("POST", "/api/v1/labs/vector-add/compile", alice, nil)
		firstDone <- code
	}()
	waitForCond(t, func() bool {
		return ctrl.SLOStatuses()[0].Inflight == 1
	})

	// Second submission-class request queues behind it instead of shedding.
	secondDone := make(chan int, 1)
	go func() {
		code, _ := f.req("POST", "/api/v1/labs/vector-add/compile", bob, nil)
		secondDone <- code
	}()
	waitForCond(t, func() bool {
		// Queued waiter raises submission queue fill above read's ShedAt.
		return ctrl.Pressure() > 0.05
	})

	// A read under that queue pressure sheds with the overloaded code.
	var of overloadFixture
	of.fixture = f
	code, headers, body := of.reqFull("GET", "/api/v1/labs/vector-add/history", alice, nil)
	assertShedEnvelope(t, code, headers, body, ErrCodeOverloaded)

	// Unblock the worker: both submissions complete successfully.
	close(release)
	for i, ch := range []chan int{firstDone, secondDone} {
		select {
		case code := <-ch:
			if code != http.StatusOK {
				t.Fatalf("submission %d = %d, want 200", i, code)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("submission %d never completed", i)
		}
	}
}

// TestHealthzReportsOverload checks the /healthz overload component and
// the per-class SLO block.
func TestHealthzReportsOverload(t *testing.T) {
	f := newOverloadFixture(t, nil)
	code, body := f.req("GET", "/healthz", "", nil)
	if code != http.StatusOK {
		t.Fatalf("healthz = %d %s", code, body)
	}
	var health struct {
		Components map[string]ComponentHealth `json:"components"`
		SLO        []overload.SLOStatus       `json:"slo"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if got := health.Components["overload"].Status; got != "ok" {
		t.Fatalf("overload component = %q, want ok", got)
	}
	if len(health.SLO) != 3 {
		t.Fatalf("slo block has %d classes, want 3", len(health.SLO))
	}
	for i, name := range []string{"submission", "draft", "read"} {
		if health.SLO[i].Name != name {
			t.Fatalf("slo[%d] = %q, want %q", i, health.SLO[i].Name, name)
		}
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
