// Package webserver implements WebGPU's web tier (§III-A, §IV): the HTTP
// interface through which students edit, compile, run, and submit lab
// code and instructors manage the roster and grades. It persists every
// code save (the History view), every attempt (the Attempts view), and
// all grades in the database, dispatches compilation/execution jobs to
// the worker tier through a pluggable dispatcher (push in v1, broker in
// v2), and enforces the submission rate limits of §III-C.
package webserver

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webgpu/internal/castore"
	"webgpu/internal/db"
	"webgpu/internal/devsession"
	"webgpu/internal/grader"
	"webgpu/internal/kernelcheck"
	"webgpu/internal/labs"
	"webgpu/internal/metrics"
	"webgpu/internal/overload"
	"webgpu/internal/peerreview"
	"webgpu/internal/progcache"
	"webgpu/internal/queue"
	"webgpu/internal/sandbox"
	"webgpu/internal/trace"
	"webgpu/internal/worker"
)

// Dispatcher sends a job to the worker tier and waits for its result;
// v1 pushes to a registry, v2 publishes to the broker. The context
// carries the request's trace and its cancellation: when the student
// disconnects or a deadline passes, the worker tier stops launching
// further datasets instead of burning simulated-GPU time.
type Dispatcher interface {
	Dispatch(ctx context.Context, job *worker.Job) (*worker.Result, error)
}

// DispatcherFunc adapts a function to the Dispatcher interface.
type DispatcherFunc func(ctx context.Context, job *worker.Job) (*worker.Result, error)

// Dispatch implements Dispatcher.
func (f DispatcherFunc) Dispatch(ctx context.Context, job *worker.Job) (*worker.Result, error) {
	return f(ctx, job)
}

// QueueAdmin is the slice of the broker the admin API needs: inspecting
// and redriving dead letters. v1 deployments have no broker and leave it
// nil, which renders the endpoints as 501s.
type QueueAdmin interface {
	DeadLetters() []*queue.Message
	RedriveDeadLetters() int
}

// Config wires a server's dependencies.
type Config struct {
	DB         *db.DB
	Dispatcher Dispatcher
	Gradebook  grader.Gradebook
	Reviews    *peerreview.Store
	Course     labs.Course
	Limits     sandbox.Limits
	Clock      func() time.Time

	// Metrics is the shared registry /api/admin/metrics dumps; nil
	// creates a private one. Traces is the ring of recent job traces
	// behind /api/admin/traces; nil creates one with default capacity.
	Metrics *metrics.Registry
	Traces  *trace.Store

	// Queue backs the dead-letter admin endpoints (v2 only; nil = 501).
	Queue QueueAdmin

	// ProgCache backs the live development loop's incremental compiles.
	// Deployments pass the cache their workers share, so a draft the
	// student later submits is already compiled and analyzed; nil creates
	// a private cache.
	ProgCache *progcache.Cache

	// Artifacts is the durable artifact store under ProgCache, reported
	// as a /healthz component; nil reports it absent (memory-only cache).
	Artifacts *castore.Store

	// DevSessions overrides the live-session manager (tests tune its
	// debounce/limits); nil builds one from ProgCache/Metrics/Traces/Clock
	// (with overload pressure wired so drafts shed before submissions).
	DevSessions *devsession.Manager

	// Overload is the admission controller every classed route passes
	// through: priority-class load shedding (submissions > drafts >
	// reads), per-tenant rate limits, and burn-rate SLOs. Nil builds one
	// with the default (generous) limits on the shared Metrics/Clock.
	Overload *overload.Controller

	// SSEHeartbeat is the interval between keepalive comments on event
	// streams (0 = 15s).
	SSEHeartbeat time.Duration
}

// Server is the WebGPU web tier.
type Server struct {
	db           *db.DB
	dispatch     Dispatcher
	gradebook    grader.Gradebook
	reviews      *peerreview.Store
	course       labs.Course
	limiter      *sandbox.RateLimiter
	clock        func() time.Time
	mux          *http.ServeMux
	nextID       atomic.Int64
	deadlines    map[string]time.Time
	metrics      *metrics.Registry
	traces       *trace.Store
	queue        QueueAdmin
	progs        *progcache.Cache
	artifacts    *castore.Store
	devsessions  *devsession.Manager
	overload     *overload.Controller
	sseHeartbeat time.Duration

	// policies maps lab ID → analysis policy (worker.Analysis*). Unlike
	// deadlines (set once at course setup), instructors flip these at
	// runtime through the API, so access is mutex-guarded.
	polMu    sync.RWMutex
	policies map[string]string
}

// New builds a server.
func New(cfg Config) *Server {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Limits.SubmitInterval == 0 {
		cfg.Limits = sandbox.DefaultLimits()
	}
	if cfg.Reviews == nil {
		cfg.Reviews = peerreview.NewStore(0)
	}
	if cfg.Course == "" {
		cfg.Course = labs.CourseHPP
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Traces == nil {
		cfg.Traces = trace.NewStore(0)
	}
	if cfg.ProgCache == nil {
		cfg.ProgCache = progcache.New(progcache.DefaultCapacity, nil)
	}
	if cfg.Overload == nil {
		cfg.Overload = overload.New(overload.Config{
			Clock:   cfg.Clock,
			Metrics: cfg.Metrics,
		})
	}
	if cfg.DevSessions == nil {
		cfg.DevSessions = devsession.NewManager(devsession.Config{
			Cache:    cfg.ProgCache,
			Metrics:  cfg.Metrics,
			Traces:   cfg.Traces,
			Clock:    cfg.Clock,
			Pressure: cfg.Overload.Pressure,
		})
	}
	if cfg.SSEHeartbeat <= 0 {
		cfg.SSEHeartbeat = 15 * time.Second
	}
	s := &Server{
		db:           cfg.DB,
		dispatch:     cfg.Dispatcher,
		gradebook:    cfg.Gradebook,
		reviews:      cfg.Reviews,
		course:       cfg.Course,
		limiter:      sandbox.NewRateLimiter(cfg.Limits.SubmitInterval),
		clock:        cfg.Clock,
		deadlines:    map[string]time.Time{},
		policies:     map[string]string{},
		metrics:      cfg.Metrics,
		traces:       cfg.Traces,
		queue:        cfg.Queue,
		progs:        cfg.ProgCache,
		artifacts:    cfg.Artifacts,
		devsessions:  cfg.DevSessions,
		overload:     cfg.Overload,
		sseHeartbeat: cfg.SSEHeartbeat,
	}
	// Live sessions are a backpressure signal: a wall of open draft loops
	// raises pressure, which sheds reads first, then drafts themselves.
	s.overload.SetDraftLoad(s.devsessions.Active)
	s.limiter.SetClock(cfg.Clock)
	s.db.CreateIndex("users", "email")
	s.routes()
	return s
}

// SetDeadline configures a lab's deadline; attempts may be shared publicly
// only after it passes (§IV-B), and submissions after it are flagged.
func (s *Server) SetDeadline(labID string, t time.Time) { s.deadlines[labID] = t }

// SetAnalysisPolicy configures what the worker does with static-analysis
// findings for a lab's jobs: worker.AnalysisWarn (the default — attach
// diagnostics, never block), worker.AnalysisFailFast (provable bugs
// block execution), or worker.AnalysisOff. An empty policy resets the
// lab to the default.
func (s *Server) SetAnalysisPolicy(labID, policy string) error {
	if !worker.ValidAnalysisPolicy(policy) {
		return fmt.Errorf("webserver: unknown analysis policy %q (want %q, %q, or %q)",
			policy, worker.AnalysisWarn, worker.AnalysisFailFast, worker.AnalysisOff)
	}
	s.polMu.Lock()
	defer s.polMu.Unlock()
	if policy == "" {
		delete(s.policies, labID)
		return nil
	}
	s.policies[labID] = policy
	return nil
}

// AnalysisPolicy reports a lab's configured analysis policy (the warn
// default when unset).
func (s *Server) AnalysisPolicy(labID string) string {
	s.polMu.RLock()
	defer s.polMu.RUnlock()
	if p, ok := s.policies[labID]; ok {
		return p
	}
	return worker.AnalysisWarn
}

// SetClock replaces the server's time source (tests).
func (s *Server) SetClock(clock func() time.Time) {
	s.clock = clock
	s.limiter.SetClock(clock)
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// DevSessions exposes the live-session manager (deployments close it on
// shutdown; tests inspect it).
func (s *Server) DevSessions() *devsession.Manager { return s.devsessions }

// Overload exposes the admission controller (deployments wire its
// backpressure signals; tests inspect its counters).
func (s *Server) Overload() *overload.Controller { return s.overload }

// APIVersionHeader names the response header stamping which API surface
// served the request ("v1", or "legacy" on the deprecated unversioned
// aliases).
const APIVersionHeader = "X-WebGPU-API-Version"

// apiRoute is one entry of the API route table. Pattern is the path under
// the API prefix — the same handler is mounted at /api/v1/<pattern> and,
// unless V1Only, at the deprecated legacy alias /api/<pattern>.
type apiRoute struct {
	Method  string
	Pattern string
	V1Only  bool // v1-native endpoints (streaming sessions) have no legacy alias
	handler http.HandlerFunc
}

// apiRoutes is the single route table both API surfaces are generated
// from. Adding a route here mounts it under /api/v1 and (unless V1Only)
// under the legacy /api alias, and enrolls it in the route-conformance
// tests.
func (s *Server) apiRoutes() []apiRoute {
	return []apiRoute{
		{Method: "POST", Pattern: "register", handler: s.handleRegister},
		{Method: "POST", Pattern: "login", handler: s.handleLogin},
		{Method: "GET", Pattern: "labs", handler: s.auth(s.handleListLabs)},
		{Method: "GET", Pattern: "labs/{lab}", handler: s.auth(s.handleGetLab)},
		{Method: "POST", Pattern: "labs/{lab}/save", handler: s.auth(s.handleSave)},
		{Method: "GET", Pattern: "labs/{lab}/code", handler: s.auth(s.handleGetCode)},
		{Method: "GET", Pattern: "labs/{lab}/history", handler: s.auth(s.classed(overload.ClassRead, s.handleHistory))},
		{Method: "POST", Pattern: "labs/{lab}/compile", handler: s.auth(s.classed(overload.ClassSubmission, s.handleCompile))},
		{Method: "POST", Pattern: "labs/{lab}/attempt", handler: s.auth(s.classed(overload.ClassSubmission, s.handleAttempt))},
		{Method: "GET", Pattern: "labs/{lab}/attempts", handler: s.auth(s.classed(overload.ClassRead, s.handleAttempts))},
		{Method: "POST", Pattern: "labs/{lab}/questions", handler: s.auth(s.handleAnswerQuestions)},
		{Method: "POST", Pattern: "labs/{lab}/submit", handler: s.auth(s.classed(overload.ClassSubmission, s.handleSubmit))},
		{Method: "GET", Pattern: "labs/{lab}/grade", handler: s.auth(s.classed(overload.ClassRead, s.handleGetGrade))},
		{Method: "GET", Pattern: "labs/{lab}/hints", handler: s.auth(s.handleHints)},
		{Method: "POST", Pattern: "attempts/{attempt}/share", handler: s.auth(s.handleShare)},
		{Method: "GET", Pattern: "share/{token}", handler: s.handleViewShare},
		{Method: "GET", Pattern: "reviews", handler: s.auth(s.classed(overload.ClassRead, s.handleMyReviews))},
		{Method: "POST", Pattern: "reviews/complete", handler: s.auth(s.classed(overload.ClassRead, s.handleCompleteReview))},
		{Method: "GET", Pattern: "instructor/roster/{lab}", handler: s.instructor(s.handleRoster)},
		{Method: "GET", Pattern: "instructor/student/{user}/{lab}", handler: s.instructor(s.handleStudentDetail)},
		{Method: "POST", Pattern: "instructor/override", handler: s.instructor(s.handleOverride)},
		{Method: "POST", Pattern: "instructor/comment", handler: s.instructor(s.handleComment)},
		{Method: "POST", Pattern: "instructor/reviews/assign/{lab}", handler: s.instructor(s.handleAssignReviews)},
		{Method: "POST", Pattern: "instructor/labs/{lab}/analysis", handler: s.instructor(s.handleSetAnalysisPolicy)},
		{Method: "GET", Pattern: "instructor/labs/{lab}/analysis", handler: s.instructor(s.handleGetAnalysisPolicy)},
		{Method: "GET", Pattern: "instructor/export", handler: s.instructor(s.handleExport)},
		{Method: "GET", Pattern: "admin/metrics", handler: s.instructor(s.handleAdminMetrics)},
		{Method: "GET", Pattern: "admin/traces", handler: s.instructor(s.handleAdminTraces)},
		{Method: "GET", Pattern: "admin/traces/{id}", handler: s.instructor(s.handleAdminTrace)},
		{Method: "GET", Pattern: "admin/deadletters", handler: s.instructor(s.handleAdminDeadLetters)},
		{Method: "POST", Pattern: "admin/deadletters/redrive", handler: s.instructor(s.handleAdminRedrive)},

		// Live development loop (v1-native: streaming has no legacy alias).
		{Method: "POST", Pattern: "labs/{lab}/session", V1Only: true, handler: s.auth(s.handleOpenSession)},
		{Method: "GET", Pattern: "sessions/{id}/events", V1Only: true, handler: s.auth(s.handleSessionEvents)},
		{Method: "POST", Pattern: "sessions/{id}/draft", V1Only: true, handler: s.auth(s.classed(overload.ClassDraft, s.handleSessionDraft))},
		{Method: "DELETE", Pattern: "sessions/{id}", V1Only: true, handler: s.auth(s.handleCloseSession)},
	}
}

// versioned stamps the API-version header; deprecated aliases additionally
// advertise their successor per RFC 8594/draft-ietf-httpapi-deprecation.
func versioned(version string, deprecated bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hd := w.Header()
		hd.Set(APIVersionHeader, version)
		if deprecated {
			hd.Set("Deprecation", "true")
			hd.Set("Link", `</api/v1>; rel="successor-version"`)
		}
		h(w, r)
	}
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	for _, rt := range s.apiRoutes() {
		s.mux.HandleFunc(rt.Method+" /api/v1/"+rt.Pattern, versioned("v1", false, rt.handler))
		if !rt.V1Only {
			s.mux.HandleFunc(rt.Method+" /api/"+rt.Pattern, versioned("legacy", true, rt.handler))
		}
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /labs/{lab}/view", s.auth(s.handleLabPage))
}

// ComponentHealth is one subsystem's line in the /healthz report.
type ComponentHealth struct {
	Status string `json:"status"` // ok | degraded | absent
	Detail string `json:"detail,omitempty"`
}

// handleHealthz reports per-component health as JSON: the database, the
// dispatcher, the broker (absent on v1 push deployments), the program
// cache, and the live-session registry. Any degraded component turns the
// top-level status degraded and the HTTP status 503, so load balancers
// and probes need only the status code.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	comps := map[string]ComponentHealth{}
	degraded := false
	mark := func(name string, c ComponentHealth) {
		if c.Status == "degraded" {
			degraded = true
		}
		comps[name] = c
	}

	if s.db == nil {
		mark("db", ComponentHealth{Status: "degraded", Detail: "not configured"})
	} else if err := s.db.View(func(tx *db.Tx) error { return nil }); err != nil {
		mark("db", ComponentHealth{Status: "degraded", Detail: err.Error()})
	} else {
		mark("db", ComponentHealth{Status: "ok"})
	}

	if s.dispatch == nil {
		mark("dispatcher", ComponentHealth{Status: "degraded", Detail: "no worker dispatcher"})
	} else {
		mark("dispatcher", ComponentHealth{Status: "ok"})
	}

	if s.queue == nil {
		mark("broker", ComponentHealth{Status: "absent", Detail: "v1 push dispatch has no broker"})
	} else {
		mark("broker", ComponentHealth{Status: "ok",
			Detail: fmt.Sprintf("%d dead letters", len(s.queue.DeadLetters()))})
	}

	st := s.progs.Stats()
	mark("progcache", ComponentHealth{Status: "ok",
		Detail: fmt.Sprintf("%d entries, %d hits, %d misses", st.Size, st.Hits, st.Misses)})

	// Durable artifact tier: absent is normal for memory-only
	// deployments; degraded means quarantined corruption or a full disk —
	// both survivable (entries recompile) but worth an operator's look.
	castatus, cadetail := s.artifacts.Health()
	mark("castore", ComponentHealth{Status: castatus, Detail: cadetail})

	mark("devsessions", ComponentHealth{Status: "ok",
		Detail: fmt.Sprintf("%d active", s.devsessions.Active())})

	// Overload: degraded when the submission class is burning its fast
	// error budget faster than 1× — the signal pagers alert on. Reads and
	// drafts shedding is the system working as designed, not ill health.
	slos := s.overload.SLOStatuses()
	oh := ComponentHealth{Status: "ok",
		Detail: fmt.Sprintf("pressure %.2f", s.overload.Pressure())}
	for _, st := range slos {
		if st.Class == overload.ClassSubmission && st.FastBurn > 1 {
			oh = ComponentHealth{Status: "degraded",
				Detail: fmt.Sprintf("submission fast burn %.1f× budget", st.FastBurn)}
		}
	}
	mark("overload", oh)

	status := "ok"
	code := http.StatusOK
	if degraded {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]interface{}{
		"status":     status,
		"components": comps,
		"slo":        slos,
	})
}

// ---- Records ------------------------------------------------------------------

// User is a registered account.
type User struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Email  string `json:"email"`
	Role   string `json:"role"` // "student" or "instructor"
	Joined string `json:"joined"`
}

type sessionRec struct {
	Token  string `json:"token"`
	UserID string `json:"user_id"`
}

// CodeRec is the current editor contents for (user, lab).
type CodeRec struct {
	UserID  string    `json:"user_id"`
	LabID   string    `json:"lab_id"`
	Source  string    `json:"source"`
	Rev     int       `json:"rev"`
	SavedAt time.Time `json:"saved_at"`
}

// AttemptRec is one compile or dataset run (the Attempts view).
type AttemptRec struct {
	ID        string        `json:"id"`
	UserID    string        `json:"user_id"`
	LabID     string        `json:"lab_id"`
	DatasetID int           `json:"dataset_id"`
	Source    string        `json:"source"`
	Outcome   *labs.Outcome `json:"outcome"`
	At        time.Time     `json:"at"`
	Shared    bool          `json:"shared,omitempty"`
	ShareTok  string        `json:"share_token,omitempty"`
	TraceID   string        `json:"trace_id,omitempty"`

	// Diagnostics are the static-analyzer findings for the attempted
	// source, so the Attempts view can show them next to the outcome.
	Diagnostics []kernelcheck.Diagnostic `json:"diagnostics,omitempty"`
}

// SubmissionRec is a final graded submission.
type SubmissionRec struct {
	ID       string          `json:"id"`
	UserID   string          `json:"user_id"`
	LabID    string          `json:"lab_id"`
	Source   string          `json:"source"`
	Outcomes []*labs.Outcome `json:"outcomes"`
	Grade    *grader.Grade   `json:"grade"`
	Late     bool            `json:"late,omitempty"`
	At       time.Time       `json:"at"`
	TraceID  string          `json:"trace_id,omitempty"`

	// Diagnostics are the static-analyzer findings for the submitted
	// source; AnalysisBlocked marks a fail-fast submission the analyzer
	// stopped before execution.
	Diagnostics     []kernelcheck.Diagnostic `json:"diagnostics,omitempty"`
	AnalysisBlocked bool                     `json:"analysis_blocked,omitempty"`
}

// AnswersRec stores short-answer responses (§IV-A action 4).
type AnswersRec struct {
	UserID  string    `json:"user_id"`
	LabID   string    `json:"lab_id"`
	Answers []string  `json:"answers"`
	At      time.Time `json:"at"`
}

// CommentRec is an instructor comment on a student's lab (§IV-F).
type CommentRec struct {
	ID         string    `json:"id"`
	UserID     string    `json:"user_id"`
	LabID      string    `json:"lab_id"`
	Instructor string    `json:"instructor"`
	Text       string    `json:"text"`
	At         time.Time `json:"at"`
}

// ---- Helpers ------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Stable machine-readable error codes: clients switch on these, the
// human-readable message may change freely.
const (
	ErrCodeBadRequest        = "bad_request"
	ErrCodeBadDataset        = "bad_dataset"
	ErrCodeUnauthorized      = "unauthorized"
	ErrCodeForbidden         = "forbidden"
	ErrCodeNotFound          = "not_found"
	ErrCodeConflict          = "conflict"
	ErrCodeRateLimited       = "rate_limited"
	ErrCodeOverloaded        = "overloaded"
	ErrCodeWorkerUnavailable = "worker_unavailable"
	ErrCodeInternal          = "internal"
	ErrCodeNotImplemented    = "not_implemented"
)

// ErrorBody is the unified error envelope every handler returns:
// {"error":{"code":"...","message":"..."}}.
type ErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeErr renders the unified error envelope with a stable machine code.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	var body ErrorBody
	body.Error.Code = code
	body.Error.Message = fmt.Sprintf(format, args...)
	writeJSON(w, status, body)
}

// page describes limit/offset pagination parsed from the query string.
type page struct {
	Limit  int
	Offset int
}

// DefaultPageLimit bounds history/attempts responses when the client
// does not pass an explicit limit — the unbounded listings were a
// deadline-spike DoS on the web tier.
const DefaultPageLimit = 50

// parsePage reads limit/offset (strictly — a malformed value is a 400,
// not a silent default). Reports ok=false after writing the error.
func parsePage(w http.ResponseWriter, r *http.Request) (page, bool) {
	p := page{Limit: DefaultPageLimit}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "invalid limit %q", v)
			return p, false
		}
		p.Limit = n
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "invalid offset %q", v)
			return p, false
		}
		p.Offset = n
	}
	return p, true
}

// paginated renders a limit/offset window over items with the total count.
func paginated[T any](items []T, p page) map[string]interface{} {
	total := len(items)
	lo := p.Offset
	if lo > total {
		lo = total
	}
	hi := total
	if p.Limit > 0 && lo+p.Limit < hi {
		hi = lo + p.Limit
	}
	window := items[lo:hi]
	if window == nil {
		window = []T{}
	}
	return map[string]interface{}{
		"total":  total,
		"limit":  p.Limit,
		"offset": p.Offset,
		"items":  window,
	}
}

func readJSON(r *http.Request, v interface{}) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}

func (s *Server) newID(prefix string) string {
	return fmt.Sprintf("%s-%06d", prefix, s.nextID.Add(1))
}

func randToken() string {
	b := make([]byte, 16)
	if _, err := rand.Read(b); err != nil {
		panic(err)
	}
	return hex.EncodeToString(b)
}

type authedHandler func(w http.ResponseWriter, r *http.Request, u *User)

// auth resolves the Authorization bearer token to a user.
func (s *Server) auth(h authedHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if token == "" {
			writeErr(w, http.StatusUnauthorized, ErrCodeUnauthorized, "missing bearer token")
			return
		}
		var sess sessionRec
		var u User
		err := s.db.View(func(tx *db.Tx) error {
			if err := tx.Get("sessions", token, &sess); err != nil {
				return err
			}
			return tx.Get("users", sess.UserID, &u)
		})
		if err != nil {
			writeErr(w, http.StatusUnauthorized, ErrCodeUnauthorized, "invalid session")
			return
		}
		h(w, r, &u)
	}
}

// classed passes an authenticated handler through the admission
// controller: the request is charged against the caller's and the
// course's token buckets and holds a priority-class concurrency slot for
// its duration. A shed renders the unified envelope as 429 with a
// Retry-After hint; per-tenant bucket sheds keep the rate_limited code
// (the client's own fault), every other shed is overloaded (the
// system's state).
func (s *Server) classed(cl overload.Class, h authedHandler) authedHandler {
	return func(w http.ResponseWriter, r *http.Request, u *User) {
		ticket, err := s.overload.Admit(r.Context(), cl, "user:"+u.ID, "course:"+string(s.course))
		if err != nil {
			s.writeShed(w, err)
			return
		}
		defer ticket.Release()
		h(w, r, u)
	}
}

// writeShed renders one shed decision: 429, Retry-After, unified envelope.
func (s *Server) writeShed(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(overload.RetryAfterSeconds(err)))
	code := ErrCodeOverloaded
	var se *overload.ShedError
	if errors.As(err, &se) && se.Reason == overload.ReasonRateLimited {
		code = ErrCodeRateLimited
	}
	writeErr(w, http.StatusTooManyRequests, code, "%v", err)
}

// instructor additionally requires the instructor role.
func (s *Server) instructor(h authedHandler) http.HandlerFunc {
	return s.auth(func(w http.ResponseWriter, r *http.Request, u *User) {
		if u.Role != "instructor" {
			writeErr(w, http.StatusForbidden, ErrCodeForbidden, "instructor role required")
			return
		}
		h(w, r, u)
	})
}

// labFromPath resolves the {lab} path parameter, restricted to the
// server's course.
func (s *Server) labFromPath(w http.ResponseWriter, r *http.Request) *labs.Lab {
	id := r.PathValue("lab")
	l := labs.ByID(id)
	if l == nil || !l.UsedBy(s.course) {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no lab %q in course %s", id, s.course)
		return nil
	}
	return l
}

func codeKey(userID, labID string) string { return userID + "|" + labID }

func histKey(userID, labID string, rev int) string {
	return fmt.Sprintf("%s|%s|%08d", userID, labID, rev)
}

// loadSource returns the student's current saved code, or the skeleton.
func (s *Server) loadSource(userID string, l *labs.Lab) string {
	var rec CodeRec
	err := s.db.View(func(tx *db.Tx) error {
		return tx.Get("code", codeKey(userID, l.ID), &rec)
	})
	if errors.Is(err, db.ErrNotFound) {
		return l.Skeleton
	}
	return rec.Source
}
