package webserver

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"webgpu/internal/db"
	"webgpu/internal/grader"
	"webgpu/internal/labs"
	"webgpu/internal/peerreview"
	"webgpu/internal/sandbox"
	"webgpu/internal/worker"
)

// fakeDispatcher executes jobs inline on a single node (no queue, no
// registry) so webserver behaviour can be tested in isolation.
func fakeDispatcher() Dispatcher {
	node := worker.NewNode(worker.DefaultNodeConfig("test-worker"))
	return DispatcherFunc(func(ctx context.Context, job *worker.Job) (*worker.Result, error) {
		return node.Execute(ctx, job), nil
	})
}

type fixture struct {
	t      *testing.T
	srv    *Server
	ts     *httptest.Server
	now    time.Time
	tokens map[string]string
}

func newFixture(t *testing.T) *fixture {
	f := &fixture{t: t, now: time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC), tokens: map[string]string{}}
	f.srv = New(Config{
		DB:         db.New(),
		Dispatcher: fakeDispatcher(),
		Gradebook:  grader.NewCourseraBook("test"),
		Reviews:    peerreview.NewStore(0.10),
		Course:     labs.CourseHPP,
		Limits:     sandbox.DefaultLimits(),
		Clock:      func() time.Time { return f.now },
	})
	f.ts = httptest.NewServer(f.srv.Handler())
	t.Cleanup(f.ts.Close)
	return f
}

// newTestServer wraps httptest for fixtures built outside newFixture.
func newTestServer(t *testing.T, srv *Server) *httptest.Server {
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// reqRaw sends a raw (possibly malformed) body.
func (f *fixture) reqRaw(method, path, token, raw string) (int, []byte) {
	f.t.Helper()
	req, err := http.NewRequest(method, f.ts.URL+path, strings.NewReader(raw))
	if err != nil {
		f.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func (f *fixture) req(method, path, token string, body interface{}) (int, []byte) {
	f.t.Helper()
	var rd bytes.Reader
	if body != nil {
		b, _ := json.Marshal(body)
		rd = *bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, f.ts.URL+path, &rd)
	if err != nil {
		f.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func (f *fixture) register(email, role string) string {
	f.t.Helper()
	code, body := f.req("POST", "/api/register", "",
		map[string]string{"name": email, "email": email, "role": role})
	if code != http.StatusCreated {
		f.t.Fatalf("register: %d %s", code, body)
	}
	var resp struct {
		Token string `json:"token"`
	}
	_ = json.Unmarshal(body, &resp)
	f.tokens[email] = resp.Token
	return resp.Token
}

func TestAuthRequired(t *testing.T) {
	f := newFixture(t)
	if code, _ := f.req("GET", "/api/labs", "", nil); code != http.StatusUnauthorized {
		t.Errorf("no token = %d", code)
	}
	if code, _ := f.req("GET", "/api/labs", "bogus-token", nil); code != http.StatusUnauthorized {
		t.Errorf("bad token = %d", code)
	}
}

func TestInvalidRole(t *testing.T) {
	f := newFixture(t)
	code, _ := f.req("POST", "/api/register", "",
		map[string]string{"name": "x", "email": "x@x", "role": "superuser"})
	if code != http.StatusBadRequest {
		t.Errorf("bad role = %d", code)
	}
}

func TestSubmitRateLimited(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	src := labs.ByID("vector-add").Reference
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})

	code, _ := f.req("POST", "/api/labs/vector-add/submit", tok, nil)
	if code != http.StatusOK {
		t.Fatalf("first submit = %d", code)
	}
	// Immediate resubmit hits the §III-C rate limit.
	code, body := f.req("POST", "/api/labs/vector-add/submit", tok, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("resubmit = %d %s", code, body)
	}
	// After the interval passes it works again.
	f.now = f.now.Add(time.Minute)
	if code, _ := f.req("POST", "/api/labs/vector-add/submit", tok, nil); code != http.StatusOK {
		t.Fatalf("post-interval submit = %d", code)
	}
}

func TestShareOnlyAfterDeadline(t *testing.T) {
	f := newFixture(t)
	deadline := f.now.Add(24 * time.Hour)
	f.srv.SetDeadline("vector-add", deadline)
	tok := f.register("a@x", "student")
	src := labs.ByID("vector-add").Reference
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
	code, body := f.req("POST", "/api/labs/vector-add/attempt?dataset=0", tok, nil)
	if code != http.StatusOK {
		t.Fatalf("attempt = %d %s", code, body)
	}
	var att AttemptRec
	_ = json.Unmarshal(body, &att)

	// Before the deadline: sharing forbidden (§IV-B).
	code, _ = f.req("POST", "/api/attempts/"+att.ID+"/share", tok, nil)
	if code != http.StatusForbidden {
		t.Fatalf("pre-deadline share = %d", code)
	}
	// After the deadline: a public link is issued and world-readable.
	f.now = deadline.Add(time.Hour)
	code, body = f.req("POST", "/api/attempts/"+att.ID+"/share", tok, nil)
	if code != http.StatusOK {
		t.Fatalf("post-deadline share = %d %s", code, body)
	}
	var share map[string]string
	_ = json.Unmarshal(body, &share)
	code, body = f.req("GET", share["url"], "", nil) // no auth: public
	if code != http.StatusOK || !strings.Contains(string(body), att.ID) {
		t.Errorf("public view = %d %s", code, body)
	}
}

func TestShareSomeoneElsesAttempt(t *testing.T) {
	f := newFixture(t)
	tokA := f.register("a@x", "student")
	tokB := f.register("b@x", "student")
	src := labs.ByID("vector-add").Reference
	f.req("POST", "/api/labs/vector-add/save", tokA, map[string]string{"source": src})
	_, body := f.req("POST", "/api/labs/vector-add/attempt?dataset=0", tokA, nil)
	var att AttemptRec
	_ = json.Unmarshal(body, &att)
	if code, _ := f.req("POST", "/api/attempts/"+att.ID+"/share", tokB, nil); code != http.StatusForbidden {
		t.Errorf("cross-user share = %d", code)
	}
}

func TestLateSubmissionFlagged(t *testing.T) {
	f := newFixture(t)
	f.srv.SetDeadline("vector-add", f.now.Add(-time.Hour)) // already past
	tok := f.register("a@x", "student")
	src := labs.ByID("vector-add").Reference
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
	_, body := f.req("POST", "/api/labs/vector-add/submit", tok, nil)
	var sub SubmissionRec
	_ = json.Unmarshal(body, &sub)
	if !sub.Late {
		t.Error("late submission not flagged")
	}
}

func TestCompileErrorSurfaced(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	code, body := f.req("POST", "/api/labs/vector-add/compile", tok,
		map[string]string{"source": "__global__ void vecAdd( {"})
	if code != http.StatusOK {
		t.Fatalf("compile = %d", code)
	}
	var res worker.Result
	_ = json.Unmarshal(body, &res)
	if len(res.Outcomes) != 1 || res.Outcomes[0].Compiled {
		t.Fatalf("outcomes = %+v", res.Outcomes)
	}
	if !strings.Contains(res.Outcomes[0].CompileError, "error") {
		t.Errorf("compile error = %q", res.Outcomes[0].CompileError)
	}
}

func TestBlacklistRejectionSurfaced(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	code, body := f.req("POST", "/api/labs/vector-add/compile", tok,
		map[string]string{"source": `__global__ void vecAdd(float*a,float*b,float*c,int n){ asm("x"); }`})
	if code != http.StatusOK {
		t.Fatalf("compile = %d", code)
	}
	var res worker.Result
	_ = json.Unmarshal(body, &res)
	if !res.Rejected {
		t.Fatalf("blacklisted source not rejected: %+v", res)
	}
}

func TestQuestionsValidation(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	code, _ := f.req("POST", "/api/labs/vector-add/questions", tok,
		map[string][]string{"answers": {"1", "2", "3", "4", "5"}})
	if code != http.StatusBadRequest {
		t.Errorf("too many answers = %d", code)
	}
}

func TestUnknownLab404(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	if code, _ := f.req("GET", "/api/labs/not-a-lab", tok, nil); code != http.StatusNotFound {
		t.Errorf("unknown lab = %d", code)
	}
}

func TestPeerReviewEndpoints(t *testing.T) {
	f := newFixture(t)
	// Three students submit; the instructor assigns 1 review each.
	emails := []string{"a@x", "b@x", "c@x"}
	src := labs.ByID("vector-add").Reference
	for i, e := range emails {
		tok := f.register(e, "student")
		f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
		if code, body := f.req("POST", "/api/labs/vector-add/submit", tok, nil); code != 200 {
			t.Fatalf("submit %d: %d %s", i, code, body)
		}
	}
	prof := f.register("p@x", "instructor")
	code, body := f.req("POST", "/api/instructor/reviews/assign/vector-add", prof,
		map[string]interface{}{"per_student": 1, "seed": 42})
	if code != http.StatusOK {
		t.Fatalf("assign = %d %s", code, body)
	}
	var assigned map[string]int
	_ = json.Unmarshal(body, &assigned)
	if assigned["assignments"] != 3 {
		t.Fatalf("assignments = %+v", assigned)
	}
	// Student A completes their review.
	_, body = f.req("GET", "/api/reviews", f.tokens["a@x"], nil)
	var mine struct {
		Assignments []peerreview.Assignment `json:"assignments"`
		Weight      float64                 `json:"weight"`
	}
	_ = json.Unmarshal(body, &mine)
	if len(mine.Assignments) != 1 || mine.Weight != 0.10 {
		t.Fatalf("my reviews = %+v", mine)
	}
	code, body = f.req("POST", "/api/reviews/complete", f.tokens["a@x"],
		map[string]string{"lab_id": "vector-add", "author": mine.Assignments[0].Author,
			"text": "looks right"})
	if code != http.StatusOK {
		t.Fatalf("complete = %d %s", code, body)
	}
	var done struct {
		Completion float64 `json:"completion"`
		Bonus      float64 `json:"bonus"`
	}
	_ = json.Unmarshal(body, &done)
	if done.Completion != 1 || done.Bonus != 0.10 {
		t.Errorf("completion = %+v", done)
	}
	// Completing an unassigned review fails.
	code, _ = f.req("POST", "/api/reviews/complete", f.tokens["a@x"],
		map[string]string{"lab_id": "vector-add", "author": "nobody"})
	if code != http.StatusBadRequest {
		t.Errorf("bogus review completion = %d", code)
	}
	_ = rand.Int // keep math/rand import meaningful if assignments change
}

func TestStudentDetailView(t *testing.T) {
	f := newFixture(t)
	tok := f.register("ada@x", "student")
	src := labs.ByID("vector-add").Reference
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": "// draft"})
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
	f.req("POST", "/api/labs/vector-add/attempt?dataset=0", tok, nil)
	f.req("POST", "/api/labs/vector-add/questions", tok,
		map[string][]string{"answers": {"two flops"}})
	f.req("POST", "/api/labs/vector-add/submit", tok, nil)

	// Find ada's user id via the roster.
	prof := f.register("prof@x", "instructor")
	_, rosterBody := f.req("GET", "/api/instructor/roster/vector-add", prof, nil)
	var roster []RosterRow
	_ = json.Unmarshal(rosterBody, &roster)
	if len(roster) != 1 {
		t.Fatalf("roster = %+v", roster)
	}
	f.req("POST", "/api/instructor/comment", prof,
		map[string]string{"user_id": roster[0].UserID, "lab_id": "vector-add", "text": "tidy"})

	code, body := f.req("GET", "/api/instructor/student/"+roster[0].UserID+"/vector-add", prof, nil)
	if code != http.StatusOK {
		t.Fatalf("detail = %d %s", code, body)
	}
	var detail struct {
		Student     User            `json:"student"`
		History     []CodeRec       `json:"history"`
		Submissions []SubmissionRec `json:"submissions"`
		Attempts    []AttemptRec    `json:"attempts"`
		Answers     AnswersRec      `json:"answers"`
		Grade       *struct {
			Total int `json:"total"`
		} `json:"grade"`
		Comments []CommentRec `json:"comments"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Student.Email != "ada@x" {
		t.Errorf("student = %+v", detail.Student)
	}
	// The submit also saved code implicitly? No — two explicit saves.
	if len(detail.History) != 2 {
		t.Errorf("history = %d revisions", len(detail.History))
	}
	if len(detail.Submissions) != 1 || len(detail.Attempts) != 1 {
		t.Errorf("submissions=%d attempts=%d", len(detail.Submissions), len(detail.Attempts))
	}
	if len(detail.Answers.Answers) != 1 || detail.Grade == nil || detail.Grade.Total == 0 {
		t.Errorf("answers=%+v grade=%+v", detail.Answers, detail.Grade)
	}
	if len(detail.Comments) != 1 || detail.Comments[0].Text != "tidy" {
		t.Errorf("comments = %+v", detail.Comments)
	}
	// Unknown student 404s; students may not access it.
	if code, _ := f.req("GET", "/api/instructor/student/ghost/vector-add", prof, nil); code != http.StatusNotFound {
		t.Errorf("ghost = %d", code)
	}
	if code, _ := f.req("GET", "/api/instructor/student/"+roster[0].UserID+"/vector-add", tok, nil); code != http.StatusForbidden {
		t.Errorf("student access = %d", code)
	}
}

func TestHintsEndpoint(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")

	// No attempt yet: the analyzer says to run first.
	code, body := f.req("GET", "/api/labs/vector-add/hints", tok, nil)
	if code != http.StatusOK {
		t.Fatalf("hints = %d %s", code, body)
	}
	var resp struct {
		Attempt string `json:"attempt"`
		Hints   []struct {
			Code   string `json:"code"`
			Detail string `json:"detail"`
		} `json:"hints"`
	}
	_ = json.Unmarshal(body, &resp)
	if len(resp.Hints) == 0 || resp.Hints[0].Code != "run-first" {
		t.Fatalf("hints = %+v", resp.Hints)
	}

	// A buggy attempt: the missing-bounds-check hint appears on demand.
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = in1[i] + in2[i];
}`
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
	f.req("POST", "/api/labs/vector-add/attempt?dataset=0", tok, nil)
	_, body = f.req("GET", "/api/labs/vector-add/hints", tok, nil)
	resp.Hints = nil
	_ = json.Unmarshal(body, &resp)
	if len(resp.Hints) == 0 || resp.Hints[0].Code != "missing-bounds-check" {
		t.Fatalf("hints after buggy attempt = %+v", resp.Hints)
	}
	if resp.Attempt == "" {
		t.Error("hint response does not reference the analyzed attempt")
	}
}

func TestAttemptStoredOnWorkerError(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	// Out-of-bounds kernel: runtime error surfaces in the attempt outcome.
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = in1[i] + in2[i];
}`
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
	code, body := f.req("POST", "/api/labs/vector-add/attempt?dataset=0", tok, nil)
	if code != http.StatusOK {
		t.Fatalf("attempt = %d", code)
	}
	var att AttemptRec
	_ = json.Unmarshal(body, &att)
	if att.Outcome == nil || att.Outcome.RuntimeError == "" {
		t.Fatalf("runtime error not recorded: %+v", att.Outcome)
	}
}

func TestHistoryPagination(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	for _, src := range []string{"// v1", "// v2", "// v3"} {
		f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
	}
	type histPage struct {
		Total  int       `json:"total"`
		Limit  int       `json:"limit"`
		Offset int       `json:"offset"`
		Items  []CodeRec `json:"items"`
	}
	code, body := f.req("GET", "/api/labs/vector-add/history?limit=2&offset=1", tok, nil)
	if code != http.StatusOK {
		t.Fatalf("history = %d %s", code, body)
	}
	var page histPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 3 || page.Limit != 2 || page.Offset != 1 {
		t.Fatalf("page meta = %+v", page)
	}
	if len(page.Items) != 2 || page.Items[0].Rev != 2 || page.Items[1].Rev != 3 {
		t.Fatalf("page items = %+v", page.Items)
	}

	// Offset past the end yields an empty (not null) window.
	_, body = f.req("GET", "/api/labs/vector-add/history?offset=99", tok, nil)
	page = histPage{}
	_ = json.Unmarshal(body, &page)
	if page.Total != 3 || page.Items == nil || len(page.Items) != 0 {
		t.Fatalf("past-the-end page = %+v", page)
	}

	// Malformed paging parameters are rejected with the error envelope.
	for _, q := range []string{"limit=banana", "offset=-2", "limit=-1"} {
		code, body := f.req("GET", "/api/labs/vector-add/history?"+q, tok, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400 (%s)", q, code, body)
			continue
		}
		var env ErrorBody
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != ErrCodeBadRequest {
			t.Errorf("%s envelope = %s", q, body)
		}
	}
}

func TestAttemptCarriesTraceID(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	src := labs.ByID("vector-add").Reference
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
	code, body := f.req("POST", "/api/labs/vector-add/attempt?dataset=0", tok, nil)
	if code != http.StatusOK {
		t.Fatalf("attempt = %d", code)
	}
	var att AttemptRec
	_ = json.Unmarshal(body, &att)
	if att.TraceID == "" {
		t.Errorf("attempt has no trace_id: %s", body)
	}
}
