package webserver

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"webgpu/internal/db"
	"webgpu/internal/devsession"
	"webgpu/internal/grader"
	"webgpu/internal/labs"
	"webgpu/internal/metrics"
	"webgpu/internal/minicuda"
	"webgpu/internal/peerreview"
	"webgpu/internal/progcache"
	"webgpu/internal/sandbox"
)

// devFixture is the webserver fixture plus handles on the live-session
// plumbing (registry, cache, manager) the SSE tests instrument.
type devFixture struct {
	*fixture
	reg   *metrics.Registry
	cache *progcache.Cache
	mgr   *devsession.Manager
}

// newDevFixture builds a server around a test-tuned devsession manager.
// The manager runs on the real clock (SSE timing is what's under test);
// the rest of the server keeps the frozen fixture clock.
func newDevFixture(t *testing.T, dcfg devsession.Config) *devFixture {
	f := &fixture{t: t, now: time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC), tokens: map[string]string{}}
	reg := metrics.NewRegistry()
	if dcfg.Cache == nil {
		dcfg.Cache = progcache.New(64, nil)
	}
	dcfg.Metrics = reg
	mgr := devsession.NewManager(dcfg)
	t.Cleanup(mgr.CloseAll)
	f.srv = New(Config{
		DB:           db.New(),
		Dispatcher:   fakeDispatcher(),
		Gradebook:    grader.NewCourseraBook("test"),
		Reviews:      peerreview.NewStore(0.10),
		Course:       labs.CourseHPP,
		Limits:       sandbox.DefaultLimits(),
		Clock:        func() time.Time { return f.now },
		Metrics:      reg,
		ProgCache:    dcfg.Cache,
		DevSessions:  mgr,
		SSEHeartbeat: 50 * time.Millisecond,
	})
	f.ts = newTestServer(t, f.srv)
	return &devFixture{fixture: f, reg: reg, cache: dcfg.Cache, mgr: mgr}
}

// openSession opens a live session over HTTP and returns its URLs.
func (df *devFixture) openSession(tok, lab string) (id, eventsURL, draftURL string) {
	df.t.Helper()
	code, body := df.req("POST", "/api/v1/labs/"+lab+"/session", tok, nil)
	if code != http.StatusCreated {
		df.t.Fatalf("open session = %d %s", code, body)
	}
	var resp struct {
		SessionID string `json:"session_id"`
		EventsURL string `json:"events_url"`
		DraftURL  string `json:"draft_url"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		df.t.Fatal(err)
	}
	return resp.SessionID, resp.EventsURL, resp.DraftURL
}

// pushDraft pushes one draft over HTTP and returns its sequence number.
func (df *devFixture) pushDraft(tok, draftURL, source string) (seq int64, coalesced bool) {
	df.t.Helper()
	code, body := df.req("POST", draftURL, tok, map[string]string{"source": source})
	if code != http.StatusAccepted {
		df.t.Fatalf("push draft = %d %s", code, body)
	}
	var resp struct {
		Draft     int64 `json:"draft"`
		Coalesced bool  `json:"coalesced"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		df.t.Fatal(err)
	}
	return resp.Draft, resp.Coalesced
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	ID   int64
	Type string
	Ev   devsession.Event
	Data map[string]interface{} // the event's data object, decoded generically
}

// sseStream reads a live event stream in a goroutine.
type sseStream struct {
	Events <-chan sseEvent
	cancel context.CancelFunc
}

// Close drops the client connection (simulating a disconnect).
func (st *sseStream) Close() { st.cancel() }

// Next returns the next event within the timeout.
func (st *sseStream) Next(t *testing.T, what string) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-st.Events:
		if !ok {
			t.Fatalf("stream closed waiting for %s", what)
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
	panic("unreachable")
}

// NextOfType skips events until one of the wanted type arrives.
func (st *sseStream) NextOfType(t *testing.T, typ string) sseEvent {
	t.Helper()
	for {
		ev := st.Next(t, typ+" event")
		if ev.Type == typ {
			return ev
		}
	}
}

// openSSE connects to an event stream. Heartbeat comment lines are
// swallowed; each real event is parsed off the wire (id, event, data).
func openSSE(t *testing.T, url, token, lastEventID string) *sseStream {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		cancel()
		t.Fatalf("SSE connect = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		cancel()
		t.Fatalf("SSE content-type = %q", ct)
	}

	out := make(chan sseEvent, 64)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var cur sseEvent
		var data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if data != "" {
					_ = json.Unmarshal([]byte(data), &cur.Ev)
					var full struct {
						Data map[string]interface{} `json:"data"`
					}
					_ = json.Unmarshal([]byte(data), &full)
					cur.Data = full.Data
					out <- cur
				}
				cur, data = sseEvent{}, ""
			case strings.HasPrefix(line, ":"): // heartbeat comment
			case strings.HasPrefix(line, "id: "):
				cur.ID, _ = strconv.ParseInt(line[4:], 10, 64)
			case strings.HasPrefix(line, "event: "):
				cur.Type = line[7:]
			case strings.HasPrefix(line, "data: "):
				data = line[6:]
			}
		}
	}()
	t.Cleanup(cancel)
	return &sseStream{Events: out, cancel: cancel}
}

// TestSSEStreamsDraftEvents: the basic live loop over HTTP — open, attach
// the stream, push a draft, watch compile + diagnostics arrive as typed
// events.
func TestSSEStreamsDraftEvents(t *testing.T) {
	df := newDevFixture(t, devsession.Config{Debounce: -1, DraftInterval: -1})
	tok := df.register("live@x", "student")
	_, eventsURL, draftURL := df.openSession(tok, "vector-add")

	st := openSSE(t, df.ts.URL+eventsURL, tok, "")
	if ev := st.NextOfType(t, "status"); ev.Data["state"] != "open" {
		t.Fatalf("first status = %v", ev.Data)
	}
	seq, coalesced := df.pushDraft(tok, draftURL, labs.ByID("vector-add").Reference)
	if coalesced {
		t.Fatal("first draft reported coalesced")
	}
	comp := st.NextOfType(t, "compile")
	if int64(comp.Data["draft"].(float64)) != seq || comp.Data["ok"] != true {
		t.Fatalf("compile event = %v", comp.Data)
	}
	diag := st.NextOfType(t, "diagnostics")
	if int64(diag.Data["draft"].(float64)) != seq {
		t.Fatalf("diagnostics event = %v", diag.Data)
	}
	if diag.ID <= comp.ID {
		t.Fatalf("diagnostics id %d not after compile id %d", diag.ID, comp.ID)
	}
}

// TestSSEDisconnectCancelsInflightAnalysis: dropping the SSE connection
// mid-analysis cancels the in-flight draft (the tentpole's cancellation
// criterion; the CI race matrix runs this under -race).
func TestSSEDisconnectCancelsInflightAnalysis(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	defer close(release)
	cache := progcache.New(16, nil)
	cache.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		started <- struct{}{}
		<-release
		return minicuda.Compile(src, d)
	})
	df := newDevFixture(t, devsession.Config{Cache: cache, Debounce: -1, DraftInterval: -1})
	tok := df.register("gone@x", "student")
	_, eventsURL, draftURL := df.openSession(tok, "vector-add")

	st := openSSE(t, df.ts.URL+eventsURL, tok, "")
	st.NextOfType(t, "status") // stream is attached
	df.pushDraft(tok, draftURL, labs.ByID("vector-add").Reference)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("analysis never started")
	}

	st.Close() // client disconnects mid-analysis

	deadline := time.Now().Add(5 * time.Second)
	for df.reg.Counter("devsession_draft_cancelled") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect did not cancel the in-flight analysis")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSSELastEventIDResume: a reconnecting client presents Last-Event-ID
// and receives exactly the buffered suffix.
func TestSSELastEventIDResume(t *testing.T) {
	df := newDevFixture(t, devsession.Config{Debounce: -1, DraftInterval: -1})
	tok := df.register("resume@x", "student")
	_, eventsURL, draftURL := df.openSession(tok, "vector-add")

	// First connection sees open(1) + compile(2) + diagnostics(3).
	st := openSSE(t, df.ts.URL+eventsURL, tok, "")
	st.NextOfType(t, "status")
	seq, _ := df.pushDraft(tok, draftURL, labs.ByID("vector-add").Reference)
	comp := st.NextOfType(t, "compile")
	diag := st.NextOfType(t, "diagnostics")
	st.Close()

	// Reconnect claiming we saw through the compile event.
	st2 := openSSE(t, df.ts.URL+eventsURL, tok, strconv.FormatInt(comp.ID, 10))
	got := st2.Next(t, "replayed event")
	if got.ID != diag.ID || got.Type != "diagnostics" {
		t.Fatalf("resume replayed (%d, %s), want (%d, diagnostics)", got.ID, got.Type, diag.ID)
	}
	if int64(got.Data["draft"].(float64)) != seq {
		t.Fatalf("replayed diagnostics for draft %v, want %d", got.Data["draft"], seq)
	}
	st2.Close()

	// A malformed Last-Event-ID is rejected with the envelope.
	req, _ := http.NewRequest("GET", df.ts.URL+eventsURL, nil)
	req.Header.Set("Authorization", "Bearer "+tok)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID = %d, want 400", resp.StatusCode)
	}
	var env ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != ErrCodeBadRequest {
		t.Fatalf("bad Last-Event-ID envelope: %v %+v", err, env)
	}
}

// TestDraftCoalescingOverHTTP: a rapid burst of pushes inside the debounce
// window triggers exactly one analysis — of the last draft.
func TestDraftCoalescingOverHTTP(t *testing.T) {
	var mu sync.Mutex
	var compiled []string
	cache := progcache.New(16, nil)
	cache.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		mu.Lock()
		compiled = append(compiled, src)
		mu.Unlock()
		return minicuda.Compile(src, d)
	})
	df := newDevFixture(t, devsession.Config{Cache: cache, Debounce: 250 * time.Millisecond, DraftInterval: -1})
	tok := df.register("burst@x", "student")
	_, eventsURL, draftURL := df.openSession(tok, "vector-add")
	st := openSSE(t, df.ts.URL+eventsURL, tok, "")
	st.NextOfType(t, "status")

	ref := labs.ByID("vector-add").Reference
	var lastSeq int64
	var lastSrc string
	for i := 0; i < 4; i++ {
		src := ref + strings.Repeat("\n", i)
		seq, coalesced := df.pushDraft(tok, draftURL, src)
		if wantCo := i > 0; coalesced != wantCo {
			t.Fatalf("push %d coalesced = %v, want %v", i, coalesced, wantCo)
		}
		lastSeq, lastSrc = seq, src
	}

	comp := st.NextOfType(t, "compile")
	if int64(comp.Data["draft"].(float64)) != lastSeq {
		t.Fatalf("analyzed draft %v, want the latest (%d)", comp.Data["draft"], lastSeq)
	}
	st.NextOfType(t, "diagnostics")

	mu.Lock()
	defer mu.Unlock()
	if len(compiled) != 1 || compiled[0] != lastSrc {
		t.Fatalf("compiled %d sources, want exactly the latest once", len(compiled))
	}
	if c := df.reg.Counter("devsession_draft_coalesced"); c != 3 {
		t.Fatalf("devsession_draft_coalesced = %v, want 3", c)
	}
}

// TestWarmIncrementalLatencyBudget: with the progcache hot, a repeated
// draft must round-trip push → diagnostics event in under 50ms, end to end
// over HTTP. Best-of-three damps scheduler noise.
func TestWarmIncrementalLatencyBudget(t *testing.T) {
	df := newDevFixture(t, devsession.Config{Debounce: -1, DraftInterval: -1})
	tok := df.register("warm@x", "student")
	_, eventsURL, draftURL := df.openSession(tok, "vector-add")
	st := openSSE(t, df.ts.URL+eventsURL, tok, "")
	st.NextOfType(t, "status")

	ref := labs.ByID("vector-add").Reference
	// Cold draft: compiles and analyzes for real, warming the cache.
	df.pushDraft(tok, draftURL, ref)
	st.NextOfType(t, "diagnostics")

	best := time.Hour
	for i := 0; i < 3; i++ {
		start := time.Now()
		seq, _ := df.pushDraft(tok, draftURL, ref)
		for {
			ev := st.NextOfType(t, "diagnostics")
			if int64(ev.Data["draft"].(float64)) == seq {
				break
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	t.Logf("warm draft → diagnostics: %v", best)
	if best >= 50*time.Millisecond {
		t.Fatalf("warm incremental draft check took %v, budget is 50ms", best)
	}

	// The warm path must actually be a cache hit, not a recompile.
	seq, _ := df.pushDraft(tok, draftURL, ref)
	for {
		ev := st.NextOfType(t, "compile")
		if int64(ev.Data["draft"].(float64)) != seq {
			continue
		}
		if ev.Data["cache"] != "hit" {
			t.Fatalf("warm compile cache status = %v, want hit", ev.Data["cache"])
		}
		break
	}
}

// TestSessionOwnershipAndValidation covers the error surface of the
// session endpoints.
func TestSessionOwnershipAndValidation(t *testing.T) {
	df := newDevFixture(t, devsession.Config{Debounce: -1, DraftInterval: -1})
	alice := df.register("alice@x", "student")
	mallory := df.register("mallory@x", "student")

	if code, _ := df.req("POST", "/api/v1/labs/no-such-lab/session", alice, nil); code != http.StatusNotFound {
		t.Fatalf("open on bogus lab = %d, want 404", code)
	}
	id, _, draftURL := df.openSession(alice, "vector-add")

	// Wrong owner: 403 with the envelope.
	code, body := df.req("POST", draftURL, mallory, map[string]string{"source": "x"})
	if code != http.StatusForbidden {
		t.Fatalf("cross-user draft = %d %s", code, body)
	}
	var env ErrorBody
	if json.Unmarshal(body, &env) != nil || env.Error.Code != ErrCodeForbidden {
		t.Fatalf("cross-user draft envelope = %s", body)
	}

	// Unknown session: 404.
	if code, _ := df.req("POST", "/api/v1/sessions/no-such-id/draft", alice, map[string]string{"source": "x"}); code != http.StatusNotFound {
		t.Fatalf("draft to unknown session = %d, want 404", code)
	}

	// Explicit close, then drafts conflict.
	if code, _ := df.req("DELETE", "/api/v1/sessions/"+id, alice, nil); code != http.StatusOK {
		t.Fatalf("close session = %d", code)
	}
	if code, _ := df.req("POST", draftURL, alice, map[string]string{"source": "x"}); code != http.StatusNotFound {
		// The registry forgets closed sessions, so the id no longer resolves.
		t.Fatalf("draft to closed session = %d, want 404", code)
	}
}

// TestSessionLimitOverHTTP: the per-user session bound surfaces as 429
// with the rate_limited code.
func TestSessionLimitOverHTTP(t *testing.T) {
	df := newDevFixture(t, devsession.Config{MaxPerUser: 1, Debounce: -1, DraftInterval: -1})
	tok := df.register("bound@x", "student")
	df.openSession(tok, "vector-add")
	code, body := df.req("POST", "/api/v1/labs/vector-add/session", tok, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second session = %d %s, want 429", code, body)
	}
	var env ErrorBody
	if json.Unmarshal(body, &env) != nil || env.Error.Code != ErrCodeRateLimited {
		t.Fatalf("session-limit envelope = %s", body)
	}
}
