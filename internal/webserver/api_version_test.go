package webserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"webgpu/internal/labs"
)

// samplePath substitutes concrete values for a route pattern's path
// parameters so the conformance tables can issue real requests.
func samplePath(pattern string) string {
	return strings.NewReplacer(
		"{lab}", "vector-add",
		"{attempt}", "att-000001",
		"{token}", "no-such-token",
		"{user}", "u-000001",
		"{id}", "no-such-id",
	).Replace(pattern)
}

// doRaw issues a request and returns status, headers, and body.
func (f *fixture) doRaw(method, path, token string) (int, http.Header, []byte) {
	f.t.Helper()
	req, err := http.NewRequest(method, f.ts.URL+path, strings.NewReader(""))
	if err != nil {
		f.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// TestEveryRouteServedUnderV1 walks the whole route table: every route
// must resolve under /api/v1 (a JSON response from our handlers, never the
// mux's plain-text 404) and stamp the v1 version header; every non-V1Only
// route must also resolve at its legacy /api alias with the deprecation
// headers, and serve a byte-identical status and body there.
func TestEveryRouteServedUnderV1(t *testing.T) {
	f := newFixture(t)
	for _, rt := range f.srv.apiRoutes() {
		name := rt.Method + " " + rt.Pattern
		p := samplePath(rt.Pattern)

		code, hdr, body := f.doRaw(rt.Method, "/api/v1/"+p, "")
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("%s: /api/v1 content-type = %q (mux fell through?), body %q", name, ct, body)
			continue
		}
		if v := hdr.Get(APIVersionHeader); v != "v1" {
			t.Errorf("%s: v1 %s = %q, want \"v1\"", name, APIVersionHeader, v)
		}
		if d := hdr.Get("Deprecation"); d != "" {
			t.Errorf("%s: v1 route carries Deprecation header %q", name, d)
		}

		if rt.V1Only {
			// The legacy surface must NOT serve v1-native routes.
			legacyCode, legacyHdr, _ := f.doRaw(rt.Method, "/api/"+p, "")
			if legacyHdr.Get(APIVersionHeader) != "" {
				t.Errorf("%s: v1-only route reachable at legacy alias (status %d)", name, legacyCode)
			}
			continue
		}

		legacyCode, legacyHdr, legacyBody := f.doRaw(rt.Method, "/api/"+p, "")
		if v := legacyHdr.Get(APIVersionHeader); v != "legacy" {
			t.Errorf("%s: legacy %s = %q, want \"legacy\"", name, APIVersionHeader, v)
		}
		if d := legacyHdr.Get("Deprecation"); d != "true" {
			t.Errorf("%s: legacy Deprecation = %q, want \"true\"", name, d)
		}
		if l := legacyHdr.Get("Link"); !strings.Contains(l, "successor-version") {
			t.Errorf("%s: legacy Link = %q, want a successor-version link", name, l)
		}
		if legacyCode != code || !bytes.Equal(legacyBody, body) {
			t.Errorf("%s: legacy (%d, %s) != v1 (%d, %s)", name, legacyCode, legacyBody, code, body)
		}
	}
}

// TestV1LegacyEquivalenceAuthed compares authenticated happy-path
// responses across the two surfaces: same token, same deterministic state
// (frozen clock), byte-identical bodies.
func TestV1LegacyEquivalenceAuthed(t *testing.T) {
	f := newFixture(t)
	tok := f.register("eq@x", "student")
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": "// draft"})

	for _, path := range []string{
		"/labs",
		"/labs/vector-add",
		"/labs/vector-add/code",
		"/labs/vector-add/history",
		"/labs/vector-add/attempts",
		"/labs/no-such-lab", // error path equivalence
	} {
		legacyCode, _, legacyBody := f.doRaw("GET", "/api"+path, tok)
		v1Code, _, v1Body := f.doRaw("GET", "/api/v1"+path, tok)
		if legacyCode != v1Code || !bytes.Equal(legacyBody, v1Body) {
			t.Errorf("GET %s: legacy (%d, %s) != v1 (%d, %s)",
				path, legacyCode, legacyBody, v1Code, v1Body)
		}
	}
}

// TestErrorEnvelopeConformance drives every route in the table down an
// error path (no credentials, unknown resources, empty bodies) and asserts
// the response is the unified {"error":{"code","message"}} envelope with a
// stable non-empty code.
func TestErrorEnvelopeConformance(t *testing.T) {
	f := newFixture(t)
	for _, rt := range f.srv.apiRoutes() {
		name := rt.Method + " " + rt.Pattern
		code, hdr, body := f.doRaw(rt.Method, "/api/v1/"+samplePath(rt.Pattern), "")
		if code < 400 {
			t.Errorf("%s: unauthenticated empty-body request = %d, expected an error", name, code)
			continue
		}
		if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("%s: error content-type = %q", name, ct)
			continue
		}
		var env ErrorBody
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: error body is not the envelope: %v (%s)", name, err, body)
			continue
		}
		if env.Error.Code == "" || env.Error.Message == "" {
			t.Errorf("%s: envelope missing code/message: %s", name, body)
		}
		// Codes are a closed machine-readable set.
		switch env.Error.Code {
		case ErrCodeBadRequest, ErrCodeBadDataset, ErrCodeUnauthorized, ErrCodeForbidden,
			ErrCodeNotFound, ErrCodeConflict, ErrCodeRateLimited, ErrCodeWorkerUnavailable,
			ErrCodeInternal, ErrCodeNotImplemented:
		default:
			t.Errorf("%s: unknown error code %q", name, env.Error.Code)
		}
	}
}

// TestShareBeforeDeadlineEnvelope pins the handleShare deadline error to
// the envelope (it used to drop the machine code).
func TestShareBeforeDeadlineEnvelope(t *testing.T) {
	f := newFixture(t)
	tok := f.register("dl@x", "student")
	f.srv.SetDeadline("vector-add", f.now.Add(24*time.Hour))
	f.req("POST", "/api/labs/vector-add/save", tok,
		map[string]string{"source": labs.ByID("vector-add").Reference})
	code, body := f.req("POST", "/api/labs/vector-add/attempt", tok, map[string]int{"dataset_id": 0})
	if code != http.StatusOK {
		t.Fatalf("attempt = %d %s", code, body)
	}
	var att struct {
		ID string `json:"id"`
	}
	_ = json.Unmarshal(body, &att)

	code, body = f.req("POST", "/api/attempts/"+att.ID+"/share", tok, nil)
	if code != http.StatusForbidden {
		t.Fatalf("share before deadline = %d %s", code, body)
	}
	var env ErrorBody
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("share error not enveloped: %v (%s)", err, body)
	}
	if env.Error.Code != ErrCodeForbidden {
		t.Fatalf("share error code = %q, want %q", env.Error.Code, ErrCodeForbidden)
	}
	if !strings.Contains(env.Error.Message, "deadline") {
		t.Fatalf("share error message = %q", env.Error.Message)
	}
}

// TestHealthzComponents: /healthz reports per-component JSON health and is
// part of the served route surface.
func TestHealthzComponents(t *testing.T) {
	f := newFixture(t)
	code, hdr, body := f.doRaw("GET", "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("healthz content-type = %q", ct)
	}
	var rep struct {
		Status     string                     `json:"status"`
		Components map[string]ComponentHealth `json:"components"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("healthz body: %v (%s)", err, body)
	}
	if rep.Status != "ok" {
		t.Fatalf("healthz status = %q, want ok", rep.Status)
	}
	for _, comp := range []string{"db", "dispatcher", "broker", "progcache", "castore", "devsessions"} {
		c, ok := rep.Components[comp]
		if !ok {
			t.Errorf("healthz missing component %q", comp)
			continue
		}
		if comp == "broker" || comp == "castore" {
			// The test fixture is a v1 deployment with a memory-only
			// cache: no broker and no artifact store, and neither
			// absence may degrade the deployment.
			if c.Status != "absent" {
				t.Errorf("%s status = %q, want absent", comp, c.Status)
			}
			continue
		}
		if c.Status != "ok" {
			t.Errorf("component %s status = %q, want ok", comp, c.Status)
		}
	}
}
