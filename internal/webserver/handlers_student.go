package webserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"time"

	"webgpu/internal/db"
	"webgpu/internal/feedback"
	"webgpu/internal/grader"
	"webgpu/internal/labs"
	"webgpu/internal/markdown"
	"webgpu/internal/sandbox"
	"webgpu/internal/trace"
	"webgpu/internal/worker"
)

// ---- Accounts ------------------------------------------------------------------

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name  string `json:"name"`
		Email string `json:"email"`
		Role  string `json:"role"`
	}
	if err := readJSON(r, &req); err != nil || req.Email == "" {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "name and email required")
		return
	}
	if req.Role == "" {
		req.Role = "student"
	}
	if req.Role != "student" && req.Role != "instructor" {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "invalid role %q", req.Role)
		return
	}
	var token string
	var user User
	err := s.db.Update(func(tx *db.Tx) error {
		if keys := tx.IndexLookup("users", "email", req.Email); len(keys) > 0 {
			return fmt.Errorf("email already registered")
		}
		user = User{
			ID:     s.newID("user"),
			Name:   req.Name,
			Email:  req.Email,
			Role:   req.Role,
			Joined: s.clock().Format(time.RFC3339),
		}
		if err := tx.Put("users", user.ID, user); err != nil {
			return err
		}
		token = randToken()
		return tx.Put("sessions", token, sessionRec{Token: token, UserID: user.ID})
	})
	if err != nil {
		writeErr(w, http.StatusConflict, ErrCodeConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]interface{}{"user": user, "token": token})
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Email string `json:"email"`
	}
	if err := readJSON(r, &req); err != nil || req.Email == "" {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "email required")
		return
	}
	var token string
	var user User
	err := s.db.Update(func(tx *db.Tx) error {
		keys := tx.IndexLookup("users", "email", req.Email)
		if len(keys) == 0 {
			return db.ErrNotFound
		}
		if err := tx.Get("users", keys[0], &user); err != nil {
			return err
		}
		token = randToken()
		return tx.Put("sessions", token, sessionRec{Token: token, UserID: user.ID})
	})
	if errors.Is(err, db.ErrNotFound) {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no account for %s", req.Email)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"user": user, "token": token})
}

// ---- Labs -----------------------------------------------------------------------

func (s *Server) handleListLabs(w http.ResponseWriter, r *http.Request, u *User) {
	type labInfo struct {
		ID          string `json:"id"`
		Number      int    `json:"number"`
		Name        string `json:"name"`
		Summary     string `json:"summary"`
		NumDatasets int    `json:"num_datasets"`
		MaxPoints   int    `json:"max_points"`
		Deadline    string `json:"deadline,omitempty"`
	}
	var out []labInfo
	for _, l := range labs.ForCourse(s.course) {
		info := labInfo{ID: l.ID, Number: l.Number, Name: l.Name, Summary: l.Summary,
			NumDatasets: l.NumDatasets, MaxPoints: l.MaxPoints()}
		if dl, ok := s.deadlines[l.ID]; ok {
			info.Deadline = dl.Format(time.RFC3339)
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetLab(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	datasets := make([]string, l.NumDatasets)
	for i := range datasets {
		datasets[i] = fmt.Sprintf("Dataset %d", i)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":              l.ID,
		"name":            l.Name,
		"description_md":  l.Description,
		"description":     markdown.Render(l.Description),
		"code":            s.loadSource(u.ID, l),
		"skeleton":        l.Skeleton,
		"datasets":        datasets,
		"questions":       l.Questions,
		"dialect":         l.Dialect.String(),
		"rubric":          l.Rubric,
		"max_points":      l.MaxPoints(),
		"analysis_policy": s.AnalysisPolicy(l.ID),
	})
}

// handleLabPage renders the Code view as HTML (the paper's Figure 3).
func (s *Server) handleLabPage(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><title>WebGPU — %s</title></head>
<body>
<nav>Description | Code | Questions | Attempts | History</nav>
<section id="description">%s</section>
<section id="code">
<div class="controls">
  <button id="compile">Compile</button>
  <select id="dataset">`, html.EscapeString(l.Name), markdown.Render(l.Description))
	for i := 0; i < l.NumDatasets; i++ {
		fmt.Fprintf(w, `<option value="%d">Dataset %d</option>`, i, i)
	}
	fmt.Fprintf(w, `</select>
  <button id="run">Compile &amp; Run</button>
  <button id="submit">Submit for grading</button>
</div>
<textarea id="editor" rows="30" cols="100">%s</textarea>
</section>
</body></html>
`, html.EscapeString(s.loadSource(u.ID, l)))
}

// ---- Code editing (§IV-A action 1: autosave + history) ---------------------------

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	var req struct {
		Source string `json:"source"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "bad request: %v", err)
		return
	}
	var rec CodeRec
	err := s.db.Update(func(tx *db.Tx) error {
		key := codeKey(u.ID, l.ID)
		if err := tx.Get("code", key, &rec); err != nil && !errors.Is(err, db.ErrNotFound) {
			return err
		}
		rec.UserID, rec.LabID = u.ID, l.ID
		rec.Rev++
		rec.Source = req.Source
		rec.SavedAt = s.clock()
		if err := tx.Put("code", key, rec); err != nil {
			return err
		}
		// Every save is kept: "It automatically saves all student code ...
		// so that a user can backtrack to earlier versions" (§III-A).
		return tx.Put("history", histKey(u.ID, l.ID, rec.Rev), rec)
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"rev": rec.Rev, "saved_at": rec.SavedAt})
}

func (s *Server) handleGetCode(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"source": s.loadSource(u.ID, l)})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	p, ok := parsePage(w, r)
	if !ok {
		return
	}
	var out []CodeRec
	_ = s.db.View(func(tx *db.Tx) error {
		prefix := u.ID + "|" + l.ID + "|"
		for _, k := range tx.Keys("history") {
			if len(k) > len(prefix) && k[:len(prefix)] == prefix {
				var rec CodeRec
				if err := tx.Get("history", k, &rec); err == nil {
					out = append(out, rec)
				}
			}
		}
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Rev < out[j].Rev })
	writeJSON(w, http.StatusOK, paginated(out, p))
}

// ---- Compile / attempt / submit ---------------------------------------------------

// currentSource prefers the request body's source (saving it as a new
// revision) and falls back to the last save.
func (s *Server) currentSource(r *http.Request, u *User, l *labs.Lab) (string, error) {
	var req struct {
		Source    string   `json:"source"`
		DatasetID *int     `json:"dataset_id"`
		Answers   []string `json:"answers"`
	}
	if r.Body != nil {
		_ = readJSON(r, &req) // empty body is fine
	}
	if req.Source == "" {
		return s.loadSource(u.ID, l), nil
	}
	err := s.db.Update(func(tx *db.Tx) error {
		key := codeKey(u.ID, l.ID)
		var rec CodeRec
		if err := tx.Get("code", key, &rec); err != nil && !errors.Is(err, db.ErrNotFound) {
			return err
		}
		rec.UserID, rec.LabID = u.ID, l.ID
		rec.Rev++
		rec.Source = req.Source
		rec.SavedAt = s.clock()
		if err := tx.Put("code", key, rec); err != nil {
			return err
		}
		return tx.Put("history", histKey(u.ID, l.ID, rec.Rev), rec)
	})
	return req.Source, err
}

// startTrace opens the request's end-to-end trace, registers it in the
// admin ring, and stamps the response with the X-WebGPU-Trace header.
// The returned context carries both the trace and the request's
// cancellation (a disconnecting student cancels the job downstream).
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) (context.Context, *trace.Trace) {
	tr := s.traces.NewTrace()
	w.Header().Set("X-WebGPU-Trace", tr.ID())
	return trace.NewContext(r.Context(), tr), tr
}

func (s *Server) runJob(ctx context.Context, u *User, l *labs.Lab, source string, datasetID int) (*worker.Result, error) {
	tr := trace.FromContext(ctx)
	job := &worker.Job{
		ID:             s.newID("job"),
		LabID:          l.ID,
		UserID:         u.ID,
		Source:         source,
		DatasetID:      datasetID,
		Requirements:   l.Requirements,
		TraceID:        tr.ID(),
		AnalysisPolicy: s.AnalysisPolicy(l.ID),
	}
	sp := tr.StartSpan("dispatch", "job", job.ID, "lab", l.ID)
	res, err := s.dispatch.Dispatch(ctx, job)
	sp.End()
	s.metrics.Inc("web_jobs_dispatched", 1)
	if err != nil {
		s.metrics.Inc("web_dispatch_errors", 1)
	}
	if res != nil {
		// On the v2 path the worker's spans arrive on the result; fold
		// them into the canonical trace and strip them from the HTTP body.
		tr.AddAll(res.Spans)
		res.Spans = nil
		if res.TraceID == "" {
			res.TraceID = tr.ID()
		}
	}
	return res, err
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	ctx, tr := s.startTrace(w, r)
	defer tr.Finish()
	source, err := s.currentSource(r, u, l)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	res, err := s.runJob(ctx, u, l, source, worker.DatasetCompileOnly)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, ErrCodeWorkerUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleAttempt(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	datasetID := 0
	if raw := r.URL.Query().Get("dataset"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, ErrCodeBadDataset,
				"invalid dataset %q: want a non-negative integer", raw)
			return
		}
		datasetID = n
	}
	ctx, tr := s.startTrace(w, r)
	defer tr.Finish()
	source, err := s.currentSource(r, u, l)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	res, err := s.runJob(ctx, u, l, source, datasetID)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, ErrCodeWorkerUnavailable, "%v", err)
		return
	}
	att := AttemptRec{
		ID:          s.newID("att"),
		UserID:      u.ID,
		LabID:       l.ID,
		DatasetID:   datasetID,
		Source:      source,
		At:          s.clock(),
		TraceID:     res.TraceID,
		Diagnostics: res.Diagnostics,
	}
	if len(res.Outcomes) > 0 {
		att.Outcome = res.Outcomes[0]
	} else if res.Error != "" {
		att.Outcome = &labs.Outcome{LabID: l.ID, DatasetID: datasetID, CompileError: res.Error}
	}
	if err := s.db.Update(func(tx *db.Tx) error {
		return tx.Put("attempts", att.ID, att)
	}); err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, att)
}

func (s *Server) handleAttempts(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	p, ok := parsePage(w, r)
	if !ok {
		return
	}
	out := s.attemptsFor(u.ID, l.ID)
	writeJSON(w, http.StatusOK, paginated(out, p))
}

func (s *Server) attemptsFor(userID, labID string) []AttemptRec {
	var out []AttemptRec
	_ = s.db.View(func(tx *db.Tx) error {
		tx.Scan("attempts", func(k string, raw json.RawMessage) bool {
			var a AttemptRec
			if err := json.Unmarshal(raw, &a); err == nil && a.UserID == userID && a.LabID == labID {
				out = append(out, a)
			}
			return true
		})
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *Server) handleAnswerQuestions(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	var req struct {
		Answers []string `json:"answers"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	if len(req.Answers) > len(l.Questions) {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "lab has %d questions, got %d answers",
			len(l.Questions), len(req.Answers))
		return
	}
	rec := AnswersRec{UserID: u.ID, LabID: l.ID, Answers: req.Answers, At: s.clock()}
	if err := s.db.Update(func(tx *db.Tx) error {
		return tx.Put("answers", codeKey(u.ID, l.ID), rec)
	}); err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	// Submission rate limiting (§III-C).
	if err := s.limiter.Admit(u.ID); err != nil {
		if errors.Is(err, sandbox.ErrRateLimited) {
			writeErr(w, http.StatusTooManyRequests, ErrCodeRateLimited, "%v", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	ctx, tr := s.startTrace(w, r)
	defer tr.Finish()
	source, err := s.currentSource(r, u, l)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	res, err := s.runJob(ctx, u, l, source, worker.DatasetAll)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, ErrCodeWorkerUnavailable, "%v", err)
		return
	}

	// Count answered questions for the rubric.
	answered := 0
	_ = s.db.View(func(tx *db.Tx) error {
		var rec AnswersRec
		if err := tx.Get("answers", codeKey(u.ID, l.ID), &rec); err == nil {
			for _, a := range rec.Answers {
				if a != "" {
					answered++
				}
			}
		}
		return nil
	})

	gradeSpan := tr.StartSpan("grade")
	g := grader.Score(l, source, res.Outcomes, answered)
	grader.AttachDiagnostics(g, res.Diagnostics)
	gradeSpan.EndAttrs("total", strconv.Itoa(g.Total), "max", strconv.Itoa(g.Max))
	g.UserID = u.ID
	sub := SubmissionRec{
		ID:              s.newID("sub"),
		UserID:          u.ID,
		LabID:           l.ID,
		Source:          source,
		Outcomes:        res.Outcomes,
		Grade:           g,
		At:              s.clock(),
		TraceID:         res.TraceID,
		Diagnostics:     res.Diagnostics,
		AnalysisBlocked: res.AnalysisBlocked,
	}
	g.SubmissionID = sub.ID
	if dl, ok := s.deadlines[l.ID]; ok && sub.At.After(dl) {
		sub.Late = true
	}
	if err := s.db.Update(func(tx *db.Tx) error {
		if err := tx.Put("submissions", sub.ID, sub); err != nil {
			return err
		}
		return tx.Put("grades", codeKey(u.ID, l.ID), g)
	}); err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	// Automatic write-back to the external gradebook (§IV-F).
	if s.gradebook != nil {
		if err := s.gradebook.Record(g); err != nil {
			writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "gradebook: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, sub)
}

func (s *Server) handleGetGrade(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	var g grader.Grade
	err := s.db.View(func(tx *db.Tx) error {
		return tx.Get("grades", codeKey(u.ID, l.ID), &g)
	})
	if errors.Is(err, db.ErrNotFound) {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no grade yet")
		return
	}
	writeJSON(w, http.StatusOK, g)
}

// handleHints implements the paper's §VIII future work — "on-demand
// help/hints during development": the automated-feedback analyzer is run
// over the student's current code and most recent attempt.
func (s *Server) handleHints(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	source := s.loadSource(u.ID, l)
	attempts := s.attemptsFor(u.ID, l.ID)
	var last *labs.Outcome
	var lastAttemptID string
	if len(attempts) > 0 {
		last = attempts[len(attempts)-1].Outcome
		lastAttemptID = attempts[len(attempts)-1].ID
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"attempt": lastAttemptID,
		"hints":   feedback.Analyze(l, source, last),
	})
}

// ---- Sharing (§IV-B: public link after the deadline) ------------------------------

func (s *Server) handleShare(w http.ResponseWriter, r *http.Request, u *User) {
	attID := r.PathValue("attempt")
	var att AttemptRec
	err := s.db.View(func(tx *db.Tx) error { return tx.Get("attempts", attID, &att) })
	if err != nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no attempt %q", attID)
		return
	}
	if att.UserID != u.ID {
		writeErr(w, http.StatusForbidden, ErrCodeForbidden, "not your attempt")
		return
	}
	dl, ok := s.deadlines[att.LabID]
	if ok && s.clock().Before(dl) {
		writeErr(w, http.StatusForbidden, ErrCodeForbidden,
			"attempts can be shared only after the lab deadline (%s)", dl.Format(time.RFC3339))
		return
	}
	att.Shared = true
	att.ShareTok = randToken()
	if err := s.db.Update(func(tx *db.Tx) error {
		if err := tx.Put("attempts", att.ID, att); err != nil {
			return err
		}
		return tx.Put("shares", att.ShareTok, map[string]string{"attempt": att.ID})
	}); err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"url": "/api/share/" + att.ShareTok})
}

func (s *Server) handleViewShare(w http.ResponseWriter, r *http.Request) {
	token := r.PathValue("token")
	var ref map[string]string
	var att AttemptRec
	err := s.db.View(func(tx *db.Tx) error {
		if err := tx.Get("shares", token, &ref); err != nil {
			return err
		}
		return tx.Get("attempts", ref["attempt"], &att)
	})
	if err != nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no such share")
		return
	}
	writeJSON(w, http.StatusOK, att)
}

// ---- Peer reviews (§IV-D) ----------------------------------------------------------

func (s *Server) handleMyReviews(w http.ResponseWriter, r *http.Request, u *User) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"assignments": s.reviews.For(u.ID),
		"weight":      s.reviews.Weight(),
		"bonus":       s.reviews.GradeBonus(u.ID),
	})
}

func (s *Server) handleCompleteReview(w http.ResponseWriter, r *http.Request, u *User) {
	var req struct {
		LabID  string `json:"lab_id"`
		Author string `json:"author"`
		Text   string `json:"text"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	if err := s.reviews.Complete(req.LabID, u.ID, req.Author); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"completion": s.reviews.CompletionFraction(u.ID),
		"bonus":      s.reviews.GradeBonus(u.ID),
	})
}
