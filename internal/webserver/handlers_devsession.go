package webserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"webgpu/internal/devsession"
)

// The live development loop (ROADMAP item 4): a session-scoped streaming
// compile+analysis API. A session is opened per (student, lab); the client
// pushes keystroke-debounced drafts to the draft endpoint and receives
// typed compile/diagnostics/status events over a server-sent-event stream.
// These endpoints are v1-native: they exist only under /api/v1.

// handleOpenSession creates a live development session for the lab.
func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	sess, err := s.devsessions.Open(u.ID, l.ID, l.Dialect)
	switch {
	case errors.Is(err, devsession.ErrSessionLimit),
		errors.Is(err, devsession.ErrUserSessionLimit):
		writeErr(w, http.StatusTooManyRequests, ErrCodeRateLimited, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"session_id": sess.ID,
		"lab_id":     l.ID,
		"user_id":    u.ID,
		"dialect":    l.Dialect.String(),
		"events_url": "/api/v1/sessions/" + sess.ID + "/events",
		"draft_url":  "/api/v1/sessions/" + sess.ID + "/draft",
	})
}

// sessionFromPath resolves {id} to a session owned by the caller.
func (s *Server) sessionFromPath(w http.ResponseWriter, r *http.Request, u *User) *devsession.Session {
	id := r.PathValue("id")
	sess := s.devsessions.Get(id)
	if sess == nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no session %q (expired or never opened)", id)
		return nil
	}
	if sess.UserID != u.ID {
		writeErr(w, http.StatusForbidden, ErrCodeForbidden, "not your session")
		return nil
	}
	return sess
}

// handleSessionDraft accepts one debounced source push. Drafts are
// coalesced latest-wins server-side, so clients may push optimistically;
// 202 means the draft is queued (its events arrive on the stream), and
// coalesced=true means it replaced an earlier queued draft.
func (s *Server) handleSessionDraft(w http.ResponseWriter, r *http.Request, u *User) {
	sess := s.sessionFromPath(w, r, u)
	if sess == nil {
		return
	}
	var req struct {
		Source string `json:"source"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "bad request: %v", err)
		return
	}
	seq, coalesced, err := sess.PushDraft(req.Source)
	switch {
	case errors.Is(err, devsession.ErrShed):
		// Overload: the draft was shed to protect submission capacity.
		w.Header().Set("Retry-After", "2")
		writeErr(w, http.StatusTooManyRequests, ErrCodeOverloaded, "%v", err)
		return
	case errors.Is(err, devsession.ErrRateLimited):
		writeErr(w, http.StatusTooManyRequests, ErrCodeRateLimited, "%v", err)
		return
	case errors.Is(err, devsession.ErrClosed):
		writeErr(w, http.StatusConflict, ErrCodeConflict, "session %s is closed", sess.ID)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]interface{}{
		"session_id": sess.ID,
		"draft":      seq,
		"coalesced":  coalesced,
	})
}

// handleCloseSession tears a session down explicitly (idle eviction
// handles clients that just disappear).
func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request, u *User) {
	sess := s.sessionFromPath(w, r, u)
	if sess == nil {
		return
	}
	s.devsessions.Close(sess.ID)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"session_id": sess.ID,
		"closed":     true,
	})
}

// handleSessionEvents is the session's server-sent-event stream
// (text/event-stream). Every event carries its sequence number as the SSE
// id field; a reconnecting client sends Last-Event-ID and the buffered
// suffix replays before live events resume. Comment-line heartbeats keep
// proxies from reaping quiet streams, and a dropped client cancels the
// session's in-flight analysis via the request context.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request, u *User) {
	sess := s.sessionFromPath(w, r, u)
	if sess == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal,
			"response writer does not support streaming")
		return
	}
	afterSeq := int64(0)
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id")
	}
	if lastID != "" {
		n, err := strconv.ParseInt(lastID, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "invalid Last-Event-ID %q", lastID)
			return
		}
		afterSeq = n
	}
	replay, ch, unsubscribe, err := sess.Subscribe(afterSeq)
	if err != nil {
		writeErr(w, http.StatusConflict, ErrCodeConflict, "session %s is closed", sess.ID)
		return
	}
	defer unsubscribe()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // nginx: do not buffer the stream
	w.WriteHeader(http.StatusOK)
	for _, ev := range replay {
		writeSSEEvent(w, ev)
	}
	fl.Flush()

	heartbeat := s.sseHeartbeat
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			// Client gone: unsubscribe (deferred) cancels any in-flight
			// analysis and drops the pending draft.
			return
		case ev, open := <-ch:
			if !open {
				// Session closed, or this subscriber fell behind and was
				// kicked; the client reconnects with Last-Event-ID.
				return
			}
			writeSSEEvent(w, ev)
			fl.Flush()
		case <-ticker.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		}
	}
}

// writeSSEEvent renders one event in the SSE wire format. The JSON body
// is single-line, so the one data: field never needs splitting.
func writeSSEEvent(w http.ResponseWriter, ev devsession.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"seq":%d,"type":"status","data":{"state":"encode_error"}}`, ev.Seq))
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
}
