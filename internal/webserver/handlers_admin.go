package webserver

import (
	"net/http"
	"strconv"
	"time"

	"webgpu/internal/worker"
)

// Admin observability endpoints (instructor-gated): the Prometheus-style
// metrics dump and the recent-trace ring that together answer "where did
// submission X spend its 4 seconds?" — the operational blind spot that
// motivated the v2 architecture (§IV).

// handleAdminMetrics dumps the shared metrics registry in the Prometheus
// text exposition format. Registered collectors (program cache, broker,
// fleet) refresh their gauges on each scrape.
func (s *Server) handleAdminMetrics(w http.ResponseWriter, r *http.Request, u *User) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(s.metrics.PrometheusText()))
}

// handleAdminTraces lists recent job traces, newest first. ?limit=N
// bounds the listing (default 20).
func (s *Server) handleAdminTraces(w http.ResponseWriter, r *http.Request, u *User) {
	limit := 20
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "invalid limit %q", v)
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"total":  s.traces.Len(),
		"traces": s.traces.Recent(limit),
	})
}

// deadLetterView is the admin rendering of one dead-lettered message:
// enough to see which job poisoned the queue without dumping raw payloads.
type deadLetterView struct {
	ID       string    `json:"id"`
	Topic    string    `json:"topic"`
	JobID    string    `json:"job_id,omitempty"`
	Tags     []string  `json:"tags,omitempty"`
	Attempts int       `json:"attempts"`
	Enqueued time.Time `json:"enqueued"`
}

// handleAdminDeadLetters lists the broker's dead-letter queue — jobs that
// exhausted their delivery attempts and need an operator's eye before a
// redrive puts them back in rotation.
func (s *Server) handleAdminDeadLetters(w http.ResponseWriter, r *http.Request, u *User) {
	if s.queue == nil {
		writeErr(w, http.StatusNotImplemented, ErrCodeNotImplemented,
			"this deployment has no message broker (v1 push dispatch)")
		return
	}
	msgs := s.queue.DeadLetters()
	views := make([]deadLetterView, 0, len(msgs))
	for _, m := range msgs {
		v := deadLetterView{ID: m.ID, Topic: m.Topic, Tags: m.Tags,
			Attempts: m.Attempts, Enqueued: m.Enqueued}
		if job, err := worker.DecodeJob(m.Payload); err == nil {
			v.JobID = job.ID
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"total":        len(views),
		"dead_letters": views,
	})
}

// handleAdminRedrive requeues every dead letter onto its original topic
// with a fresh attempt budget (the SQS-style operator remedy after the
// underlying fault is fixed).
func (s *Server) handleAdminRedrive(w http.ResponseWriter, r *http.Request, u *User) {
	if s.queue == nil {
		writeErr(w, http.StatusNotImplemented, ErrCodeNotImplemented,
			"this deployment has no message broker (v1 push dispatch)")
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"redriven": s.queue.RedriveDeadLetters(),
	})
}

// handleAdminTrace returns one trace by ID with all its spans.
func (s *Server) handleAdminTrace(w http.ResponseWriter, r *http.Request, u *User) {
	id := r.PathValue("id")
	tr := s.traces.Get(id)
	if tr == nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no trace %q (the ring keeps the most recent %d)",
			id, s.traces.Len())
		return
	}
	writeJSON(w, http.StatusOK, tr.Snapshot())
}
