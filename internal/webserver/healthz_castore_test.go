package webserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"webgpu/internal/castore"
	"webgpu/internal/db"
	"webgpu/internal/grader"
	"webgpu/internal/labs"
	"webgpu/internal/peerreview"
	"webgpu/internal/sandbox"
)

// castoreFixture is newFixture plus an attached durable artifact store.
func castoreFixture(t *testing.T, store *castore.Store) *fixture {
	t.Helper()
	f := &fixture{t: t, now: time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC), tokens: map[string]string{}}
	f.srv = New(Config{
		DB:         db.New(),
		Dispatcher: fakeDispatcher(),
		Gradebook:  grader.NewCourseraBook("test"),
		Reviews:    peerreview.NewStore(0.10),
		Course:     labs.CourseHPP,
		Limits:     sandbox.DefaultLimits(),
		Clock:      func() time.Time { return f.now },
		Artifacts:  store,
	})
	f.ts = newTestServer(t, f.srv)
	return f
}

func healthzReport(t *testing.T, f *fixture) (int, string, map[string]ComponentHealth) {
	t.Helper()
	code, body := f.req("GET", "/healthz", "", nil)
	var rep struct {
		Status     string                     `json:"status"`
		Components map[string]ComponentHealth `json:"components"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("healthz body: %v (%s)", err, body)
	}
	return code, rep.Status, rep.Components
}

// TestHealthzCastoreComponent covers the durable store's /healthz line:
// ok while intact, degraded (and 503) once corruption is quarantined.
func TestHealthzCastoreComponent(t *testing.T) {
	dir := t.TempDir()
	store, err := castore.Open(dir, castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	key := fmt.Sprintf("%064x", 1)
	if err := store.Put(key, "prog", []byte("artifact")); err != nil {
		t.Fatal(err)
	}

	f := castoreFixture(t, store)
	code, status, comps := healthzReport(t, f)
	if code != http.StatusOK || status != "ok" {
		t.Fatalf("healthz with intact store = %d %q", code, status)
	}
	if c := comps["castore"]; c.Status != "ok" {
		t.Fatalf("castore component = %+v, want ok", c)
	}

	// Corrupt the artifact on disk; the next read quarantines it and the
	// component (and deployment) degrade.
	path := filepath.Join(dir, "objects", key[:2], key+".prog")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(key, "prog"); ok {
		t.Fatal("corrupt artifact served")
	}

	code, status, comps = healthzReport(t, f)
	if code != http.StatusServiceUnavailable || status != "degraded" {
		t.Fatalf("healthz with quarantined corruption = %d %q, want 503 degraded", code, status)
	}
	if c := comps["castore"]; c.Status != "degraded" {
		t.Fatalf("castore component = %+v, want degraded", c)
	}
}
