package webserver

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"webgpu/internal/kernelcheck"
	"webgpu/internal/labs"
)

// racyVecAdd is a compiling vector-add with a provable shared-memory
// race (store s[tx], read s[tx+1], no barrier) plus an unused variable.
const racyVecAdd = `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  __shared__ float s[257];
  int spare = len;
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  s[tx] = in1[i];
  out[i] = s[tx + 1] + in2[i];
}
`

// TestAttemptCarriesDiagnostics: an attempt's response and its stored
// record include the analyzer findings for the submitted source.
func TestAttemptCarriesDiagnostics(t *testing.T) {
	f := newFixture(t)
	tok := f.register("s@x", "student")
	code, body := f.req("POST", "/api/labs/vector-add/attempt?dataset=0", tok,
		map[string]string{"source": racyVecAdd})
	if code != http.StatusOK {
		t.Fatalf("attempt: %d %s", code, body)
	}
	var att AttemptRec
	if err := json.Unmarshal(body, &att); err != nil {
		t.Fatal(err)
	}
	if len(att.Diagnostics) == 0 {
		t.Fatal("attempt response has no diagnostics")
	}
	found := false
	for _, d := range att.Diagnostics {
		if d.ID == kernelcheck.RuleRace {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics missing %s: %+v", kernelcheck.RuleRace, att.Diagnostics)
	}

	// The stored attempt (Attempts view / attempt history API) carries
	// them too.
	code, body = f.req("GET", "/api/labs/vector-add/attempts", tok, nil)
	if code != http.StatusOK {
		t.Fatalf("attempts: %d %s", code, body)
	}
	var page struct {
		Items []AttemptRec `json:"items"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 1 || len(page.Items[0].Diagnostics) == 0 {
		t.Errorf("stored attempt lost its diagnostics: %+v", page.Items)
	}
}

// TestSubmitFeedbackAndFailFast: a submission's grade feedback includes
// the diagnostics; flipping the lab to fail-fast blocks the next
// submission of the racy source.
func TestSubmitFeedbackAndFailFast(t *testing.T) {
	f := newFixture(t)
	stok := f.register("s@x", "student")
	itok := f.register("i@x", "instructor")

	code, body := f.req("POST", "/api/labs/vector-add/submit", stok,
		map[string]string{"source": racyVecAdd})
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sub SubmissionRec
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.AnalysisBlocked {
		t.Error("warn-policy submission was blocked")
	}
	if len(sub.Diagnostics) == 0 {
		t.Fatal("submission has no diagnostics")
	}
	if sub.Grade == nil || len(sub.Grade.Feedback) == 0 {
		t.Fatalf("grade carries no feedback: %+v", sub.Grade)
	}
	raceInFeedback := false
	for _, line := range sub.Grade.Feedback {
		if strings.Contains(line, kernelcheck.RuleRace) {
			raceInFeedback = true
		}
	}
	if !raceInFeedback {
		t.Errorf("grade feedback missing the race finding: %v", sub.Grade.Feedback)
	}

	// Instructor flips the lab to fail-fast; policy round-trips via GET.
	code, body = f.req("POST", "/api/instructor/labs/vector-add/analysis", itok,
		map[string]string{"policy": "fail-fast"})
	if code != http.StatusOK {
		t.Fatalf("set policy: %d %s", code, body)
	}
	code, body = f.req("GET", "/api/instructor/labs/vector-add/analysis", itok, nil)
	if code != http.StatusOK || !strings.Contains(string(body), "fail-fast") {
		t.Fatalf("get policy: %d %s", code, body)
	}

	// Students cannot set the policy.
	if code, _ := f.req("POST", "/api/instructor/labs/vector-add/analysis", stok,
		map[string]string{"policy": "off"}); code != http.StatusForbidden {
		t.Errorf("student set policy = %d, want 403", code)
	}
	// An unknown policy is rejected.
	if code, _ := f.req("POST", "/api/instructor/labs/vector-add/analysis", itok,
		map[string]string{"policy": "strict"}); code != http.StatusBadRequest {
		t.Errorf("bogus policy = %d, want 400", code)
	}

	// The next submission of the same racy source is blocked before
	// execution and the outcomes explain why.
	f.now = f.now.Add(time.Hour) // clear the submit rate limit
	code, body = f.req("POST", "/api/labs/vector-add/submit", stok,
		map[string]string{"source": racyVecAdd})
	if code != http.StatusOK {
		t.Fatalf("fail-fast submit: %d %s", code, body)
	}
	var blocked SubmissionRec
	if err := json.Unmarshal(body, &blocked); err != nil {
		t.Fatal(err)
	}
	if !blocked.AnalysisBlocked {
		t.Fatalf("fail-fast submission was not blocked: %+v", blocked.Diagnostics)
	}
	if blocked.Grade.Datasets != 0 {
		t.Errorf("blocked submission earned dataset points: %+v", blocked.Grade)
	}
	if len(blocked.Outcomes) == 0 || !strings.Contains(blocked.Outcomes[0].RuntimeError, "fail-fast") {
		t.Errorf("blocked outcomes missing the policy explanation: %+v", blocked.Outcomes)
	}
}

// TestFailFastCleanSubmission: fail-fast does not block a correct,
// race-free submission.
func TestFailFastCleanSubmission(t *testing.T) {
	f := newFixture(t)
	stok := f.register("s@x", "student")
	itok := f.register("i@x", "instructor")
	if code, body := f.req("POST", "/api/instructor/labs/vector-add/analysis", itok,
		map[string]string{"policy": "fail-fast"}); code != http.StatusOK {
		t.Fatalf("set policy: %d %s", code, body)
	}
	code, body := f.req("POST", "/api/labs/vector-add/submit", stok,
		map[string]string{"source": labs.ByID("vector-add").Reference})
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	var sub SubmissionRec
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.AnalysisBlocked {
		t.Fatal("clean submission blocked under fail-fast")
	}
	if sub.Grade.Datasets == 0 {
		t.Errorf("clean submission earned no dataset points: %+v", sub.Grade)
	}
}
