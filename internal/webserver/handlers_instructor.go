package webserver

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"sort"

	"webgpu/internal/db"
	"webgpu/internal/grader"
	"webgpu/internal/peerreview"
)

// Instructor tools (§IV-F): the roster view of Figure 5, grade override,
// comments on student work, peer-review assignment, and gradebook export.
// Unlike lab *creation* (§IV-E, which required a terminal), these are all
// web-accessible.

// RosterRow is one student's line in the roster view: attempts, grades,
// and short-answer status for a lab (Figure 5).
type RosterRow struct {
	UserID        string        `json:"user_id"`
	Name          string        `json:"name"`
	Email         string        `json:"email"`
	Attempts      int           `json:"attempts"`
	Submissions   int           `json:"submissions"`
	ProgramGrade  int           `json:"program_grade"`
	QuestionGrade int           `json:"question_grade"`
	TotalGrade    int           `json:"total_grade"`
	MaxGrade      int           `json:"max_grade"`
	LastSubmitted string        `json:"last_submitted,omitempty"`
	Grade         *grader.Grade `json:"grade,omitempty"`
}

func (s *Server) handleRoster(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	rows := map[string]*RosterRow{}
	err := s.db.View(func(tx *db.Tx) error {
		// Seed rows from attempts and submissions so only students with
		// activity appear (the paper: "all students with a submission
		// attempt for the Lab").
		tx.Scan("attempts", func(k string, raw json.RawMessage) bool {
			var a AttemptRec
			if json.Unmarshal(raw, &a) == nil && a.LabID == l.ID {
				row := rows[a.UserID]
				if row == nil {
					row = &RosterRow{UserID: a.UserID, MaxGrade: l.MaxPoints()}
					rows[a.UserID] = row
				}
				row.Attempts++
			}
			return true
		})
		tx.Scan("submissions", func(k string, raw json.RawMessage) bool {
			var sub SubmissionRec
			if json.Unmarshal(raw, &sub) == nil && sub.LabID == l.ID {
				row := rows[sub.UserID]
				if row == nil {
					row = &RosterRow{UserID: sub.UserID, MaxGrade: l.MaxPoints()}
					rows[sub.UserID] = row
				}
				row.Submissions++
				row.LastSubmitted = sub.At.Format("2006-01-02 15:04:05")
			}
			return true
		})
		for uid, row := range rows {
			var usr User
			if err := tx.Get("users", uid, &usr); err == nil {
				row.Name, row.Email = usr.Name, usr.Email
			}
			var g grader.Grade
			if err := tx.Get("grades", codeKey(uid, l.ID), &g); err == nil {
				row.Grade = &g
				row.ProgramGrade = g.Compile + g.Datasets + g.Keywords
				row.QuestionGrade = g.Questions
				row.TotalGrade = g.Total
			}
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	out := make([]*RosterRow, 0, len(rows))
	for _, row := range rows {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	writeJSON(w, http.StatusOK, out)
}

// handleStudentDetail is the drill-down behind a roster row (§IV-F): the
// instructor reviews one student's code history, submission history,
// grade, short-answer responses, and the comments left so far.
func (s *Server) handleStudentDetail(w http.ResponseWriter, r *http.Request, u *User) {
	userID := r.PathValue("user")
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	var student User
	var history []CodeRec
	var submissions []SubmissionRec
	var answers AnswersRec
	var grade *grader.Grade
	var comments []CommentRec
	err := s.db.View(func(tx *db.Tx) error {
		if err := tx.Get("users", userID, &student); err != nil {
			return err
		}
		prefix := userID + "|" + l.ID + "|"
		for _, k := range tx.Keys("history") {
			if len(k) > len(prefix) && k[:len(prefix)] == prefix {
				var rec CodeRec
				if err := tx.Get("history", k, &rec); err == nil {
					history = append(history, rec)
				}
			}
		}
		tx.Scan("submissions", func(k string, raw json.RawMessage) bool {
			var sub SubmissionRec
			if json.Unmarshal(raw, &sub) == nil && sub.UserID == userID && sub.LabID == l.ID {
				submissions = append(submissions, sub)
			}
			return true
		})
		_ = tx.Get("answers", codeKey(userID, l.ID), &answers)
		var g grader.Grade
		if err := tx.Get("grades", codeKey(userID, l.ID), &g); err == nil {
			grade = &g
		}
		tx.Scan("comments", func(k string, raw json.RawMessage) bool {
			var c CommentRec
			if json.Unmarshal(raw, &c) == nil && c.UserID == userID && c.LabID == l.ID {
				comments = append(comments, c)
			}
			return true
		})
		return nil
	})
	if errors.Is(err, db.ErrNotFound) {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no such student %q", userID)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	sort.Slice(history, func(i, j int) bool { return history[i].Rev < history[j].Rev })
	sort.Slice(submissions, func(i, j int) bool { return submissions[i].ID < submissions[j].ID })
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"student":     student,
		"lab":         l.ID,
		"history":     history,
		"submissions": submissions,
		"attempts":    s.attemptsFor(userID, l.ID),
		"answers":     answers,
		"grade":       grade,
		"comments":    comments,
		"questions":   l.Questions,
	})
}

func (s *Server) handleOverride(w http.ResponseWriter, r *http.Request, u *User) {
	var req struct {
		UserID  string `json:"user_id"`
		LabID   string `json:"lab_id"`
		Total   int    `json:"total"`
		Comment string `json:"comment"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	var g grader.Grade
	err := s.db.Update(func(tx *db.Tx) error {
		if err := tx.Get("grades", codeKey(req.UserID, req.LabID), &g); err != nil {
			return err
		}
		grader.Override(&g, u.ID, req.Total, req.Comment)
		return tx.Put("grades", codeKey(req.UserID, req.LabID), g)
	})
	if errors.Is(err, db.ErrNotFound) {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, "no grade for %s on %s", req.UserID, req.LabID)
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	if s.gradebook != nil {
		_ = s.gradebook.Record(&g)
	}
	writeJSON(w, http.StatusOK, g)
}

func (s *Server) handleComment(w http.ResponseWriter, r *http.Request, u *User) {
	var req struct {
		UserID string `json:"user_id"`
		LabID  string `json:"lab_id"`
		Text   string `json:"text"`
	}
	if err := readJSON(r, &req); err != nil || req.Text == "" {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "user_id, lab_id, text required")
		return
	}
	c := CommentRec{
		ID:         s.newID("cmt"),
		UserID:     req.UserID,
		LabID:      req.LabID,
		Instructor: u.ID,
		Text:       req.Text,
		At:         s.clock(),
	}
	if err := s.db.Update(func(tx *db.Tx) error {
		return tx.Put("comments", c.ID, c)
	}); err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, c)
}

func (s *Server) handleAssignReviews(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	var req struct {
		PerStudent int   `json:"per_student"`
		Seed       int64 `json:"seed"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	if req.PerStudent <= 0 {
		req.PerStudent = 3 // the paper's second offering
	}
	var students []string
	_ = s.db.View(func(tx *db.Tx) error {
		seen := map[string]bool{}
		tx.Scan("submissions", func(k string, raw json.RawMessage) bool {
			var sub SubmissionRec
			if json.Unmarshal(raw, &sub) == nil && sub.LabID == l.ID && !seen[sub.UserID] {
				seen[sub.UserID] = true
				students = append(students, sub.UserID)
			}
			return true
		})
		return nil
	})
	sort.Strings(students)
	as, err := peerreview.AssignRandom(l.ID, students, req.PerStudent, rand.New(rand.NewSource(req.Seed)))
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	s.reviews.Load(as)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"students":    len(students),
		"assignments": len(as),
	})
}

// handleSetAnalysisPolicy lets an instructor choose, per lab, what the
// worker does with static-analysis findings: attach them as warnings
// (the default), block execution on provable bugs (fail-fast), or skip
// the analyzer.
func (s *Server) handleSetAnalysisPolicy(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	var req struct {
		Policy string `json:"policy"`
	}
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	if err := s.SetAnalysisPolicy(l.ID, req.Policy); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"lab": l.ID, "policy": s.AnalysisPolicy(l.ID)})
}

func (s *Server) handleGetAnalysisPolicy(w http.ResponseWriter, r *http.Request, u *User) {
	l := s.labFromPath(w, r)
	if l == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"lab": l.ID, "policy": s.AnalysisPolicy(l.ID)})
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request, u *User) {
	book, ok := s.gradebook.(*grader.CourseraBook)
	if !ok {
		writeErr(w, http.StatusNotImplemented, ErrCodeNotImplemented, "gradebook does not support export")
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_, _ = w.Write([]byte(book.Export()))
}
