package webserver

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"webgpu/internal/db"
	"webgpu/internal/grader"
	"webgpu/internal/labs"
	"webgpu/internal/peerreview"
	"webgpu/internal/sandbox"
	"webgpu/internal/worker"
)

// failingDispatcher simulates the worker tier being down.
func failingDispatcher() Dispatcher {
	return DispatcherFunc(func(ctx context.Context, job *worker.Job) (*worker.Result, error) {
		return nil, errors.New("no workers available")
	})
}

type nullGradebook struct{}

func (nullGradebook) Record(*grader.Grade) error { return nil }
func (nullGradebook) Lookup(string, string) (*grader.Grade, error) {
	return nil, grader.ErrNoSuchGrade
}

func newBrokenFixture(t *testing.T) *fixture {
	f := &fixture{t: t, now: time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC), tokens: map[string]string{}}
	f.srv = New(Config{
		DB:         db.New(),
		Dispatcher: failingDispatcher(),
		Gradebook:  nullGradebook{},
		Reviews:    peerreview.NewStore(0.1),
		Course:     labs.CourseHPP,
		Limits:     sandbox.DefaultLimits(),
		Clock:      func() time.Time { return f.now },
	})
	f.ts = newTestServer(t, f.srv)
	return f
}

func TestWorkerTierDownReturns503(t *testing.T) {
	f := newBrokenFixture(t)
	tok := f.register("a@x", "student")
	for _, path := range []string{
		"/api/labs/vector-add/compile",
		"/api/labs/vector-add/attempt?dataset=0",
		"/api/labs/vector-add/submit",
	} {
		if code, _ := f.req("POST", path, tok, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s = %d, want 503", path, code)
		}
	}
}

func TestExportWithoutCourseraBook(t *testing.T) {
	f := newBrokenFixture(t)
	prof := f.register("p@x", "instructor")
	if code, _ := f.req("GET", "/api/instructor/export", prof, nil); code != http.StatusNotImplemented {
		t.Errorf("export = %d, want 501", code)
	}
}

func TestMalformedBodies(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	cases := []struct {
		method, path string
	}{
		{"POST", "/api/labs/vector-add/save"},
		{"POST", "/api/labs/vector-add/questions"},
		{"POST", "/api/reviews/complete"},
	}
	for _, c := range cases {
		if code, _ := f.reqRaw(c.method, c.path, tok, "{not json"); code != http.StatusBadRequest {
			t.Errorf("%s %s with garbage = %d, want 400", c.method, c.path, code)
		}
	}
	if code, _ := f.reqRaw("POST", "/api/register", "", "{not json"); code != http.StatusBadRequest {
		t.Errorf("register garbage = %d", code)
	}
	if code, _ := f.reqRaw("POST", "/api/login", "", "{}"); code != http.StatusBadRequest {
		t.Errorf("empty login = %d", code)
	}
}

func TestLoginUnknownEmail(t *testing.T) {
	f := newFixture(t)
	if code, _ := f.req("POST", "/api/login", "",
		map[string]string{"email": "ghost@x"}); code != http.StatusNotFound {
		t.Errorf("ghost login = %d", code)
	}
}

func TestAssignReviewsTooFewStudents(t *testing.T) {
	f := newFixture(t)
	tok := f.register("only@x", "student")
	src := labs.ByID("vector-add").Reference
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
	f.req("POST", "/api/labs/vector-add/submit", tok, nil)
	prof := f.register("p@x", "instructor")
	code, _ := f.req("POST", "/api/instructor/reviews/assign/vector-add", prof,
		map[string]interface{}{"per_student": 3})
	if code != http.StatusBadRequest {
		t.Errorf("assign with 1 student = %d, want 400", code)
	}
}

func TestShareUnknownAttempt(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	if code, _ := f.req("POST", "/api/attempts/att-999999/share", tok, nil); code != http.StatusNotFound {
		t.Errorf("unknown attempt share = %d", code)
	}
	if code, _ := f.req("GET", "/api/share/bogus-token", "", nil); code != http.StatusNotFound {
		t.Errorf("bogus share token = %d", code)
	}
}

func TestGetCodeDefaultsToSkeleton(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	code, body := f.req("GET", "/api/labs/vector-add/code", tok, nil)
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if want := "Insert code to implement vector addition"; !contains(body, want) {
		t.Errorf("default code is not the skeleton: %s", body)
	}
}

func TestGradeBeforeSubmit404(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	if code, _ := f.req("GET", "/api/labs/vector-add/grade", tok, nil); code != http.StatusNotFound {
		t.Errorf("grade before submit = %d", code)
	}
}

func TestBadDatasetQueryRejected(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	src := labs.ByID("vector-add").Reference
	f.req("POST", "/api/labs/vector-add/save", tok, map[string]string{"source": src})
	for _, bad := range []string{"banana", "-1", "1.5"} {
		code, body := f.req("POST", "/api/labs/vector-add/attempt?dataset="+bad, tok, nil)
		if code != http.StatusBadRequest {
			t.Errorf("attempt with dataset=%q = %d, want 400 (%s)", bad, code, body)
			continue
		}
		var env ErrorBody
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("dataset=%q: body is not the error envelope: %v (%s)", bad, err, body)
		}
		if env.Error.Code != ErrCodeBadDataset || env.Error.Message == "" {
			t.Errorf("dataset=%q envelope = %+v, want code %q", bad, env, ErrCodeBadDataset)
		}
	}
}

// TestErrorEnvelopeShape pins the machine-readable error contract: every
// error response carries {"error":{"code","message"}} with a stable code.
func TestErrorEnvelopeShape(t *testing.T) {
	f := newFixture(t)
	tok := f.register("a@x", "student")
	cases := []struct {
		method, path, token string
		wantStatus          int
		wantCode            string
	}{
		{"GET", "/api/labs", "", http.StatusUnauthorized, ErrCodeUnauthorized},
		{"GET", "/api/labs/not-a-lab", tok, http.StatusNotFound, ErrCodeNotFound},
		{"GET", "/api/instructor/roster/vector-add", tok, http.StatusForbidden, ErrCodeForbidden},
	}
	for _, c := range cases {
		code, body := f.req(c.method, c.path, c.token, nil)
		if code != c.wantStatus {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, code, c.wantStatus)
			continue
		}
		var env ErrorBody
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s %s: not an envelope: %v (%s)", c.method, c.path, err, body)
			continue
		}
		if env.Error.Code != c.wantCode {
			t.Errorf("%s %s code = %q, want %q", c.method, c.path, env.Error.Code, c.wantCode)
		}
	}
}

func TestOverrideUnknownGrade(t *testing.T) {
	f := newFixture(t)
	prof := f.register("p@x", "instructor")
	code, _ := f.req("POST", "/api/instructor/override", prof,
		map[string]interface{}{"user_id": "ghost", "lab_id": "vector-add", "total": 10})
	if code != http.StatusNotFound {
		t.Errorf("override missing grade = %d", code)
	}
}

func TestCommentValidation(t *testing.T) {
	f := newFixture(t)
	prof := f.register("p@x", "instructor")
	code, _ := f.req("POST", "/api/instructor/comment", prof,
		map[string]string{"user_id": "u", "lab_id": "vector-add"})
	if code != http.StatusBadRequest {
		t.Errorf("empty comment = %d", code)
	}
}

func contains(b []byte, sub string) bool { return strings.Contains(string(b), sub) }
