package macrobench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/labs"
	"webgpu/internal/worker"
)

// benchLab is the lab every macro job runs — same as the chaos soak, its
// reference solution compiles and grades quickly.
const benchLab = "vector-add"

// client is one authenticated student driving the platform over HTTP.
type client struct {
	base  string
	token string
	http  *http.Client
}

// apiError is the unified error envelope every non-2xx response carries.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// do issues one JSON request and decodes the envelope on failure.
func (c *client) do(method, path string, body interface{}) (int, string, []byte, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, "", nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, "", nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", nil, err
	}
	code := ""
	if resp.StatusCode >= 400 {
		var ae apiError
		if json.Unmarshal(data, &ae) == nil {
			code = ae.Error.Code
		}
	}
	return resp.StatusCode, code, data, nil
}

// register creates an account and returns an authenticated client.
func register(base string, hc *http.Client, name string) (*client, error) {
	c := &client{base: base, http: hc}
	status, code, data, err := c.do("POST", "/api/v1/register", map[string]string{
		"name":  name,
		"email": name + "@macrobench.invalid",
	})
	if err != nil {
		return nil, err
	}
	if status != http.StatusCreated {
		return nil, fmt.Errorf("register %s: status %d code %q", name, status, code)
	}
	var out struct {
		Token string `json:"token"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	c.token = out.Token
	return c, nil
}

// Run executes one scenario against a freshly booted platform and
// reports the measured Result. Chaos scenarios finish with the
// chaostest-style drain: faults off, dead letters redriven, queues
// empty, then the broker conservation check. The returned error carries
// the seed for replay.
func Run(s Scenario) (Result, error) {
	s = s.withDefaults()
	if s.Restart {
		return runRestartStorm(s)
	}
	res := Result{
		Name:        s.Name,
		Seed:        s.Seed,
		Arch:        s.Arch.String(),
		Capacity:    s.Capacity(),
		Submissions: s.Submissions,
		Chaos:       s.Chaos,
		FaultRate:   s.FaultRate,
	}
	fail := func(reg *faultinject.Registry, format string, args ...interface{}) (Result, error) {
		detail := ""
		if reg != nil {
			detail = "; " + reg.String()
		}
		return res, fmt.Errorf("%s: %s (replay with seed=%d%s)",
			s.Name, fmt.Sprintf(format, args...), s.Seed, detail)
	}

	reg := faultinject.New(s.Seed)
	p := newPlatform(s, reg)
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	hc := ts.Client()
	hc.Timeout = s.Timeout

	deadline := now().Add(s.Timeout)
	ref := labs.ByID(benchLab).Reference

	// Population: one account per submitter/reader/drafter, registered
	// before chaos arms so setup cannot flake.
	submitters := make([]*client, s.Submissions)
	for i := range submitters {
		c, err := register(ts.URL, hc, fmt.Sprintf("%s-sub-%04d", s.Name, i))
		if err != nil {
			return fail(nil, "setup: %v", err)
		}
		submitters[i] = c
	}
	readers := make([]*client, s.Readers)
	for i := range readers {
		c, err := register(ts.URL, hc, fmt.Sprintf("%s-read-%02d", s.Name, i))
		if err != nil {
			return fail(nil, "setup: %v", err)
		}
		readers[i] = c
	}
	drafters := make([]*client, s.Drafters)
	for i := range drafters {
		c, err := register(ts.URL, hc, fmt.Sprintf("%s-draft-%02d", s.Name, i))
		if err != nil {
			return fail(nil, "setup: %v", err)
		}
		drafters[i] = c
	}

	// Warm the compiled-program cache through the real pipeline, so the
	// timed submissions measure the steady-state (cache-hit) path.
	if s.WarmCache && len(submitters) > 0 {
		status, code, _, err := submitters[0].do("POST", "/api/v1/labs/"+benchLab+"/submit",
			map[string]string{"source": ref})
		if err != nil || status != http.StatusOK {
			return fail(reg, "warmup submit: status %d code %q err %v", status, code, err)
		}
	}

	var (
		readOK, readShed, draftOK, draftShed int64
		submitShed, submitRetries            int64
	)
	stopBG := make(chan struct{})
	var bg sync.WaitGroup

	// Background readers: history polls, the lowest-priority class.
	for _, c := range readers {
		bg.Add(1)
		go func(c *client) {
			defer bg.Done()
			for {
				select {
				case <-stopBG:
					return
				default:
				}
				status, code, _, err := c.do("GET", "/api/v1/labs/"+benchLab+"/history", nil)
				switch {
				case err != nil:
					// Transport errors (server shutting down) end the loop.
					return
				case status == http.StatusOK:
					atomic.AddInt64(&readOK, 1)
				case status == http.StatusTooManyRequests && code == ErrCodeOverloaded:
					atomic.AddInt64(&readShed, 1)
				}
				time.Sleep(time.Millisecond)
			}
		}(c)
	}

	// Background drafters: live-session pushes, the middle class.
	for _, c := range drafters {
		bg.Add(1)
		go func(c *client) {
			defer bg.Done()
			status, _, data, err := c.do("POST", "/api/v1/labs/"+benchLab+"/session", nil)
			if err != nil || status != http.StatusCreated {
				return
			}
			var sess struct {
				DraftURL string `json:"draft_url"`
			}
			if json.Unmarshal(data, &sess) != nil || sess.DraftURL == "" {
				return
			}
			n := 0
			for {
				select {
				case <-stopBG:
					return
				default:
				}
				n++
				status, code, _, err := c.do("POST", sess.DraftURL,
					map[string]string{"source": fmt.Sprintf("// draft %d\n%s", n, ref)})
				switch {
				case err != nil:
					return
				case status == http.StatusAccepted:
					atomic.AddInt64(&draftOK, 1)
				case status == http.StatusTooManyRequests && code == ErrCodeOverloaded:
					atomic.AddInt64(&draftShed, 1)
				}
				time.Sleep(time.Millisecond)
			}
		}(c)
	}

	// The spike: chaos (if any) arms only now, and every submitter fires
	// after its seeded front-loaded jitter. A submission retries transient
	// failures (worker_unavailable under chaos, §III-C limiter residue)
	// until it lands or the deadline passes; the measured latency is the
	// whole retry span — what the student experienced, not one attempt.
	if s.Chaos {
		arm(reg, s.FaultRate)
	}
	offsets := jitters(s.Seed, len(submitters), 25*time.Millisecond)
	latencies := make([]time.Duration, len(submitters))
	errs := make([]error, len(submitters))
	start := now()
	var wg sync.WaitGroup
	for i, c := range submitters {
		wg.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			time.Sleep(offsets[i])
			t0 := now()
			for {
				status, code, _, err := c.do("POST", "/api/v1/labs/"+benchLab+"/submit",
					map[string]string{"source": ref})
				switch {
				case err != nil:
					errs[i] = err
				case status == http.StatusOK:
					latencies[i] = now().Sub(t0)
					errs[i] = nil
					return
				case status == http.StatusTooManyRequests && code == ErrCodeOverloaded:
					// A shed submission is an acceptance failure; record it
					// and keep retrying so the drain below still converges.
					atomic.AddInt64(&submitShed, 1)
					errs[i] = fmt.Errorf("submission shed (code %s)", code)
				default:
					errs[i] = fmt.Errorf("status %d code %q", status, code)
				}
				if now().After(deadline) {
					return
				}
				atomic.AddInt64(&submitRetries, 1)
				time.Sleep(5 * time.Millisecond)
			}
		}(i, c)
	}
	wg.Wait()
	close(stopBG)
	bg.Wait()
	res.DurationMs = float64(now().Sub(start)) / float64(time.Millisecond)

	for _, err := range errs {
		if err == nil {
			res.SubmitOK++
		}
	}
	res.SubmitShed = int(atomic.LoadInt64(&submitShed))
	res.SubmitRetries = int(atomic.LoadInt64(&submitRetries))
	res.ReadOK = int(atomic.LoadInt64(&readOK))
	res.ReadShed = int(atomic.LoadInt64(&readShed))
	res.DraftOK = int(atomic.LoadInt64(&draftOK))
	res.DraftShed = int(atomic.LoadInt64(&draftShed))

	ok := make([]time.Duration, 0, len(latencies))
	for i, d := range latencies {
		if errs[i] == nil {
			ok = append(ok, d)
		}
	}
	res.summarize(ok)

	// Drain: chaos off, redrive whatever dead-lettered, wait for empty
	// queues, then check conservation. v1 has no broker — conservation is
	// vacuous there; the submit counts above already prove delivery.
	reg.DisableAll()
	if p.Broker != nil {
		for {
			p.Broker.RedriveDeadLetters()
			if p.Broker.Depth(worker.TopicJobs) == 0 &&
				p.Broker.Depth(worker.TopicResults) == 0 &&
				len(p.Broker.DeadLetters()) == 0 {
				break
			}
			if now().After(deadline) {
				return fail(reg, "drain stalled: jobs depth=%d, results depth=%d, dead=%d",
					p.Broker.Depth(worker.TopicJobs), p.Broker.Depth(worker.TopicResults),
					len(p.Broker.DeadLetters()))
			}
			time.Sleep(5 * time.Millisecond)
		}
		// Leases for redriven/abandoned jobs may still be settling.
		for p.Broker.Unaccounted() != 0 && !now().After(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		res.LostJobs = p.Broker.Unaccounted()
		res.DeadLetters = len(p.Broker.DeadLetters())
	}
	res.DuplicateResults = p.ResultDuplicates()

	for i, err := range errs {
		if err != nil {
			return fail(reg, "submitter %d never landed: %v (%d/%d ok)",
				i, err, res.SubmitOK, s.Submissions)
		}
	}
	if res.LostJobs != 0 {
		return fail(reg, "broker counters unbalanced by %d (positive = lost, negative = double-counted)",
			res.LostJobs)
	}
	return res, nil
}

// ErrCodeOverloaded mirrors webserver.ErrCodeOverloaded without the
// import cycle risk (macrobench already imports platform, which imports
// webserver — the constant keeps the client's string comparisons local).
const ErrCodeOverloaded = "overloaded"

// Benchfmt renders the trajectory in Go test benchmark format, one
// latency quantile per line, for benchstat comparison in CI:
//
//	BenchmarkMacro/<scenario>/p50 1 <ns> ns/op
func Benchfmt(f File) string {
	var b bytes.Buffer
	for _, r := range f.Scenarios {
		for _, q := range []struct {
			name string
			ms   float64
		}{{"p50", r.P50Ms}, {"p95", r.P95Ms}, {"p99", r.P99Ms}} {
			fmt.Fprintf(&b, "BenchmarkMacro/%s/%s 1 %.0f ns/op\n",
				r.Name, q.name, q.ms*float64(time.Millisecond))
		}
	}
	return b.String()
}

// Note describes the calibration for the JSON trajectory's note field.
func Note() string {
	return fmt.Sprintf(
		"spike multiplier %.1f = Figure 1 peak/trough activity ratio; Table I scale ~36k registrants/offering",
		SpikeMultiplier())
}
