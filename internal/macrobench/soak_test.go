package macrobench

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// soakSeeds returns the seeds to run: CHAOS_SEED=<n> replays exactly one
// (the loop a failing CI run tells you to do), otherwise a fixed pair so
// the suite is deterministic run to run.
func soakSeeds(t *testing.T) []int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q is not an integer: %v", v, err)
		}
		return []int64{n}
	}
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2}
}

// TestOverloadSoak is the overload-survival acceptance run: a chaos-soaked
// deadline spike at 10×+ worker capacity, with reader and drafter
// populations competing for admission. The platform must
//
//   - land every submission (zero shed, zero lost — the broker's
//     conservation invariant holds after the drain),
//   - shed only the sheddable classes (reads and drafts both observe
//     429s while the spike saturates the pool),
//   - keep the end-to-end submission p99 bounded.
//
// Every decision flows from the seed; a failure replays with
// CHAOS_SEED=<seed> go test ./internal/macrobench -run TestOverloadSoak.
func TestOverloadSoak(t *testing.T) {
	if testing.Short() && os.Getenv("CHAOS_SEED") == "" {
		t.Skip("full-platform soak; skipped in -short unless CHAOS_SEED replays it")
	}
	for _, seed := range soakSeeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			s, ok := ByName("chaos-spike", seed)
			if !ok {
				t.Fatal("chaos-spike scenario missing from the standard suite")
			}
			res, err := Run(s)
			if err != nil {
				t.Fatalf("%v\nreplay with CHAOS_SEED=%d", err, seed)
			}
			t.Logf("soak: %s", res)

			if s.Multiplier < 10 {
				t.Errorf("spike multiplier %.1f is below the 10× survival bar", s.Multiplier)
			}
			if res.SubmitOK != res.Submissions {
				t.Errorf("submit_ok = %d, want %d; replay with CHAOS_SEED=%d",
					res.SubmitOK, res.Submissions, seed)
			}
			if res.SubmitShed != 0 {
				t.Errorf("submission class shed %d requests; submissions must never shed (CHAOS_SEED=%d)",
					res.SubmitShed, seed)
			}
			if res.LostJobs != 0 {
				t.Errorf("lost_jobs = %d, want 0: broker conservation violated (CHAOS_SEED=%d)",
					res.LostJobs, seed)
			}
			if res.DeadLetters != 0 {
				t.Errorf("dead_letters = %d after redrive, want 0 (CHAOS_SEED=%d)",
					res.DeadLetters, seed)
			}
			if res.ReadShed == 0 {
				t.Errorf("read class never shed: the spike did not exercise admission control (CHAOS_SEED=%d)", seed)
			}
			if res.DraftShed == 0 {
				t.Errorf("draft class never shed: the spike did not exercise admission control (CHAOS_SEED=%d)", seed)
			}
			// Bounded queue wait: the whole spike is M× capacity of
			// ~10ms jobs, so even the last-admitted submission should
			// clear in well under M×10ms×capacity. 5s is an order of
			// magnitude of slack on top of any observed run — tripping
			// it means queueing went quadratic or a retry spiral hid
			// behind the latency numbers.
			if maxWait := 5 * time.Second; res.P99Ms > float64(maxWait/time.Millisecond) {
				t.Errorf("submission p99 = %.1fms, want < %v (CHAOS_SEED=%d)",
					res.P99Ms, maxWait, seed)
			}
		})
	}
}

// TestDeadlineSpikeNoChaos runs the fault-free spike: same load shape,
// no injected faults, so a regression here isolates the admission layer
// from the redelivery machinery.
func TestDeadlineSpikeNoChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full-platform spike; skipped in -short")
	}
	s, ok := ByName("deadline-spike", 1)
	if !ok {
		t.Fatal("deadline-spike scenario missing from the standard suite")
	}
	res, err := Run(s)
	if err != nil {
		t.Fatalf("%v", err)
	}
	t.Logf("spike: %s", res)
	if res.SubmitOK != res.Submissions || res.SubmitShed != 0 || res.LostJobs != 0 {
		t.Errorf("spike outcome: ok=%d/%d shed=%d lost=%d; want all-ok/0/0",
			res.SubmitOK, res.Submissions, res.SubmitShed, res.LostJobs)
	}
	if res.SubmitRetries != 0 {
		t.Errorf("submit_retries = %d without chaos, want 0 (nothing should 503)", res.SubmitRetries)
	}
	if res.ReadShed == 0 || res.DraftShed == 0 {
		t.Errorf("read_shed=%d draft_shed=%d; the spike must shed both low classes",
			res.ReadShed, res.DraftShed)
	}
}

// TestScenarioDefaults pins the suite's calibration so a stray edit to
// the workload model or scenario table shows up as a test diff, not as a
// silently weaker benchmark.
func TestScenarioDefaults(t *testing.T) {
	if m := SpikeMultiplier(); m < 10 {
		t.Errorf("SpikeMultiplier() = %.1f, want >= 10 (Figure 1 peak/trough)", m)
	}
	names := map[string]bool{}
	for _, s := range Scenarios(0) {
		names[s.Name] = true
		if s.Seed == 0 {
			t.Errorf("scenario %s has no default seed", s.Name)
		}
	}
	for _, want := range []string{"cold-submit", "warm-submit", "deadline-spike", "chaos-spike", "restart-storm"} {
		if !names[want] {
			t.Errorf("standard suite is missing %q", want)
		}
	}
	if _, ok := ByName("no-such-scenario", 0); ok {
		t.Error("ByName returned a scenario for an unknown name")
	}
	s, ok := ByName("chaos-spike", 77)
	if !ok || s.Seed != 77 {
		t.Errorf("ByName seed override: got seed %d ok=%v, want 77 true", s.Seed, ok)
	}
	if !s.Chaos || s.FaultRate <= 0 {
		t.Errorf("chaos-spike must arm faults: chaos=%v rate=%v", s.Chaos, s.FaultRate)
	}
}

// TestBenchfmt pins the benchstat-compatible emission format.
func TestBenchfmt(t *testing.T) {
	f := File{Schema: Schema, Scenarios: []Result{{Name: "x", P50Ms: 1, P95Ms: 2, P99Ms: 3}}}
	got := Benchfmt(f)
	want := "BenchmarkMacro/x/p50 1 1000000 ns/op\n" +
		"BenchmarkMacro/x/p95 1 2000000 ns/op\n" +
		"BenchmarkMacro/x/p99 1 3000000 ns/op\n"
	if got != want {
		t.Errorf("Benchfmt:\n got %q\nwant %q", got, want)
	}
}
