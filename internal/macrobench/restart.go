package macrobench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"webgpu/internal/labs"
)

// runRestartStorm measures the cold-restart recompile storm end to end:
// boot a platform against a durable artifact store, warm the store with
// real submission traffic, tear the whole deployment down, boot a second
// platform on the same directory, and drive the same working set through
// it. A deployment without the store would recompile every source after
// the restart (the storm); with it, the reboot must recompile nothing
// and serve near-warm latency — both are hard assertions here, so the
// scenario fails (and trips benchgate) if durability regresses.
func runRestartStorm(s Scenario) (Result, error) {
	res := Result{
		Name:        s.Name,
		Seed:        s.Seed,
		Arch:        s.Arch.String(),
		Capacity:    s.Capacity(),
		Submissions: s.Submissions,
	}
	fail := func(format string, args ...interface{}) (Result, error) {
		return res, fmt.Errorf("%s: %s (replay with seed=%d)",
			s.Name, fmt.Sprintf(format, args...), s.Seed)
	}

	dir := s.CacheDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "webgpu-restart-storm-")
		if err != nil {
			return fail("cache dir: %v", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// The working set: one distinct source per submitter, each the
	// reference solution under a distinguishing comment, so every
	// submission compiles to its own cache key but still grades correct.
	ref := labs.ByID(benchLab).Reference
	sources := make([]string, s.Submissions)
	for i := range sources {
		sources[i] = fmt.Sprintf("// restart-storm variant %d\n%s", i, ref)
	}
	preload := s.PreloadHottest
	if preload == 0 {
		preload = len(sources) / 2
	}

	deadline := now().Add(s.Timeout)
	start := now()

	// Phase A: first boot. The cold pass compiles and persists every
	// program; the warm re-pass sets the pre-restart latency baseline
	// (memory-cache hits, the steady state the reboot must match).
	sA := s
	sA.CacheDir = dir
	sA.PreloadHottest = 0
	p1 := newPlatform(sA, nil)
	ts1 := httptest.NewServer(p1.Handler())
	hc1 := ts1.Client()
	hc1.Timeout = s.Timeout
	closed1 := false
	close1 := func() {
		if !closed1 {
			closed1 = true
			ts1.Close()
			p1.Close()
		}
	}
	defer close1()
	if p1.ArtifactStore() == nil {
		return fail("first boot has no artifact store at %s", dir)
	}

	clientsA, err := registerClients(ts1.URL, hc1, s.Name+"-a", len(sources))
	if err != nil {
		return fail("setup: %v", err)
	}
	cold, err := submitWave(clientsA, sources, s.Seed, deadline)
	if err != nil {
		return fail("cold pass: %v", err)
	}
	warm, err := submitWave(clientsA, sources, s.Seed+1, deadline)
	if err != nil {
		return fail("warm pass: %v", err)
	}
	persisted := p1.ArtifactStore().Stats().Objects
	close1()

	// Phase B: the restart. A fresh platform on the same store directory
	// eagerly preloads half the working set and lazily reads through for
	// the rest; either way, nothing may recompile.
	sB := s
	sB.CacheDir = dir
	sB.PreloadHottest = preload
	p2 := newPlatform(sB, nil)
	defer p2.Close()
	ts2 := httptest.NewServer(p2.Handler())
	defer ts2.Close()
	hc2 := ts2.Client()
	hc2.Timeout = s.Timeout
	if p2.ArtifactStore() == nil {
		return fail("rebooted platform has no artifact store at %s", dir)
	}

	clientsB, err := registerClients(ts2.URL, hc2, s.Name+"-b", len(sources))
	if err != nil {
		return fail("restart setup: %v", err)
	}
	post, err := submitWave(clientsB, sources, s.Seed+2, deadline)
	if err != nil {
		return fail("post-restart pass: %v", err)
	}

	stats := p2.ProgCache().Stats()
	res.SubmitOK = len(post)
	res.Recompiles = stats.Compiles
	res.DiskHits = stats.DiskHits
	res.ColdP50Ms = p50ms(cold)
	res.PreRestartP50Ms = p50ms(warm)
	res.PostRestartP50Ms = p50ms(post)
	res.summarize(post)
	res.DurationMs = float64(now().Sub(start)) / float64(time.Millisecond)

	if res.Recompiles != 0 {
		return fail("rebooted platform recompiled %d sources (want 0; %d disk hits, %d preloaded, %d objects persisted)",
			res.Recompiles, res.DiskHits, stats.Preloaded, persisted)
	}
	if stats.DiskHits+stats.Preloaded == 0 {
		return fail("rebooted platform never touched the durable store (%d objects persisted)", persisted)
	}
	// Near-warm bound: 2× the pre-restart warm median, with a small
	// absolute floor so sub-millisecond medians don't flake the ratio.
	bound := 2 * res.PreRestartP50Ms
	if floor := res.PreRestartP50Ms + 25; floor > bound {
		bound = floor
	}
	if res.PostRestartP50Ms > bound {
		return fail("post-restart p50 %.1fms exceeds near-warm bound %.1fms (pre-restart warm p50 %.1fms, cold p50 %.1fms)",
			res.PostRestartP50Ms, bound, res.PreRestartP50Ms, res.ColdP50Ms)
	}
	return res, nil
}

// registerClients creates n authenticated accounts.
func registerClients(base string, hc *http.Client, prefix string, n int) ([]*client, error) {
	out := make([]*client, n)
	for i := range out {
		c, err := register(base, hc, fmt.Sprintf("%s-%04d", prefix, i))
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// submitWave fires client i's source i after its seeded jitter, retrying
// transient failures until the deadline, and returns the per-submitter
// latencies (the whole retry span, as the student experienced it).
func submitWave(clients []*client, sources []string, seed int64, deadline time.Time) ([]time.Duration, error) {
	offsets := jitters(seed, len(clients), 25*time.Millisecond)
	latencies := make([]time.Duration, len(clients))
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			time.Sleep(offsets[i])
			t0 := now()
			for {
				status, code, _, err := c.do("POST", "/api/v1/labs/"+benchLab+"/submit",
					map[string]string{"source": sources[i]})
				switch {
				case err != nil:
					errs[i] = err
				case status == http.StatusOK:
					latencies[i] = now().Sub(t0)
					errs[i] = nil
					return
				default:
					errs[i] = fmt.Errorf("status %d code %q", status, code)
				}
				if now().After(deadline) {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("submitter %d never landed: %v", i, err)
		}
	}
	return latencies, nil
}

// p50ms reads the median from raw durations, in milliseconds.
func p50ms(latencies []time.Duration) float64 {
	ms := make([]float64, len(latencies))
	for i, d := range latencies {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	sort.Float64s(ms)
	return quantile(ms, 0.50)
}
