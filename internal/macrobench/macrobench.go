// Package macrobench is the whole-pipeline macro-benchmark suite behind
// `webgpu-bench -macro` (ROADMAP item 5: continuous perf CI). Where the
// micro-benchmarks time one kernel in one engine, a macro scenario boots
// a full platform — web tier, admission control, broker, worker fleet,
// grader — and drives it over real HTTP with a population of submitters,
// readers, and live-draft pushers, recording the end-to-end latency
// distribution and the overload layer's shed decisions.
//
// Scenarios are seeded and deterministic in their decisions (arrival
// jitter, chaos faults), dolt-style: every run emits a JSON trajectory
// (`BENCH_macro.json`, schema webgpu-macro/v1) that tools/benchgate
// compares against checked-in ceilings, so a PR that regresses p99
// submit latency or loses a job under spike load fails CI the same way a
// kernel slowdown does.
//
// The deadline-spike scenarios are calibrated against the paper's
// workload models: Table I enrollment (~36k registrants/offering) and
// the Figure 1 activity envelope, whose Wednesday peak runs ~10× the
// series mean — that peak-to-mean ratio is the spike multiplier.
package macrobench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/overload"
	"webgpu/internal/platform"
	"webgpu/internal/sandbox"
	"webgpu/internal/workload"
)

// now is the wall-clock seam: scenario timing flows through it so tests
// can pin it, and tools/repolint bans direct time.Now calls in this
// package to keep every duration measurement on the seam.
var now = time.Now

// Schema identifies the BENCH_macro.json layout for benchgate.
const Schema = "webgpu-macro/v1"

// Scenario configures one macro run.
type Scenario struct {
	Name          string
	Seed          int64
	Arch          platform.Architecture
	Workers       int
	GPUsPerWorker int

	// Submissions is the number of distinct students submitting once
	// each; zero derives it as Capacity × Multiplier.
	Submissions int
	// Multiplier scales submissions relative to worker capacity
	// (Workers × GPUsPerWorker). The deadline spike uses the Figure 1
	// peak-to-mean ratio (~10×).
	Multiplier float64

	// Readers / Drafters are the low-priority background populations:
	// each reader loops history GETs and each drafter pushes live-session
	// drafts while the spike runs, so the scenario records what the
	// admission layer sheds to protect the submissions.
	Readers  int
	Drafters int

	// Chaos arms the fault-injection registry (chaostest-style points and
	// ratios) at FaultRate for the duration of the spike; the run then
	// disables faults, redrives dead letters, and drains before checking
	// the conservation invariant.
	Chaos     bool
	FaultRate float64

	// WarmCache pre-submits the reference solution once before timing, so
	// every measured job hits the program cache (the steady-state path).
	WarmCache bool

	// Restart arms the restart-storm flow: boot against a durable artifact
	// store, warm it with real traffic, tear the platform down, boot a
	// second platform on the same directory, and measure the post-restart
	// submit path. The scenario fails if the rebooted deployment
	// recompiles any cached source.
	Restart bool
	// CacheDir is the durable artifact store directory (empty: restart
	// scenarios use a fresh temp dir removed after the run; others stay
	// memory-only).
	CacheDir string
	// PreloadHottest eagerly warm-starts this many programs at boot
	// (restart scenarios default to half the working set, so both the
	// eager-preload and lazy read-through paths are exercised).
	PreloadHottest int

	Timeout time.Duration
}

func (s Scenario) withDefaults() Scenario {
	if s.Arch == 0 {
		s.Arch = platform.V2
	}
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.GPUsPerWorker <= 0 {
		s.GPUsPerWorker = 2
	}
	if s.Multiplier <= 0 {
		s.Multiplier = 1
	}
	if s.Submissions <= 0 {
		s.Submissions = int(math.Ceil(float64(s.Workers*s.GPUsPerWorker) * s.Multiplier))
	}
	if s.Chaos && s.FaultRate <= 0 {
		s.FaultRate = 0.05
	}
	if s.Timeout <= 0 {
		s.Timeout = 120 * time.Second
	}
	return s
}

// Capacity is the worker pool's concurrent-job capacity.
func (s Scenario) Capacity() int { return s.Workers * s.GPUsPerWorker }

// Result is one scenario's measured outcome — the JSON row of
// BENCH_macro.json.
type Result struct {
	Name        string  `json:"name"`
	Seed        int64   `json:"seed"`
	Arch        string  `json:"arch"`
	Capacity    int     `json:"capacity"`
	Submissions int     `json:"submissions"`
	Chaos       bool    `json:"chaos,omitempty"`
	FaultRate   float64 `json:"fault_rate,omitempty"`

	// Submission-class outcomes: every submission must eventually
	// succeed; retries count transient 503s absorbed by the client.
	SubmitOK      int `json:"submit_ok"`
	SubmitShed    int `json:"submit_shed"`
	SubmitRetries int `json:"submit_retries"`

	// Low-priority-class outcomes: sheds here are the overload layer
	// working, not a failure.
	ReadOK    int `json:"read_ok"`
	ReadShed  int `json:"read_shed"`
	DraftOK   int `json:"draft_ok"`
	DraftShed int `json:"draft_shed"`

	// Conservation: LostJobs is Broker.Unaccounted() after the drain
	// (0 = every published job is accounted for), DeadLetters what
	// remained parked after redrive (must be 0).
	LostJobs         int64 `json:"lost_jobs"`
	DeadLetters      int   `json:"dead_letters"`
	DuplicateResults int64 `json:"duplicate_results"`

	// Restart-storm phases: submit latency medians for the first boot's
	// cold pass, its warm re-pass (the pre-restart baseline), and the
	// rebooted platform's pass against the same store directory — plus how
	// many cached sources the reboot recompiled (must be 0) and how many
	// it served from the durable store instead.
	ColdP50Ms        float64 `json:"cold_p50_ms,omitempty"`
	PreRestartP50Ms  float64 `json:"pre_restart_p50_ms,omitempty"`
	PostRestartP50Ms float64 `json:"post_restart_p50_ms,omitempty"`
	Recompiles       int64   `json:"recompiles,omitempty"`
	DiskHits         int64   `json:"disk_hits,omitempty"`

	// End-to-end submission latency over HTTP, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	DurationMs float64 `json:"duration_ms"`
}

func (r Result) String() string {
	return fmt.Sprintf("%s: %d/%d submits ok (p50 %.1fms p99 %.1fms max %.1fms), %d read shed, %d draft shed, %d lost, %d retries, %.0fms total",
		r.Name, r.SubmitOK, r.Submissions, r.P50Ms, r.P99Ms, r.MaxMs,
		r.ReadShed, r.DraftShed, r.LostJobs, r.SubmitRetries, r.DurationMs)
}

// File is the BENCH_macro.json trajectory.
type File struct {
	Schema    string   `json:"schema"`
	Note      string   `json:"note,omitempty"`
	Scenarios []Result `json:"scenarios"`
}

// SpikeMultiplier is the Figure 1 peak-to-trough activity ratio: the
// factor by which the Wednesday-evening deadline rush (112 active
// students) exceeds the late-course quiet level (8) the cluster is
// provisioned for. The deadline-spike scenarios submit at this multiple
// of worker capacity (14× for the paper's model — comfortably past the
// 10× survival bar).
func SpikeMultiplier() float64 {
	m := workload.Figure1Model()
	if m.Trough <= 0 || m.Peak <= m.Trough {
		return 10
	}
	return m.Peak / m.Trough
}

// Scenarios returns the standard suite, smallest first. seed 0 keeps
// each scenario's own default seed.
func Scenarios(seed int64) []Scenario {
	spike := SpikeMultiplier()
	base := func(name string, s Scenario) Scenario {
		s.Name = name
		if seed != 0 {
			s.Seed = seed
		} else if s.Seed == 0 {
			s.Seed = 2015 // the paper's offering year, like workload's default
		}
		return s
	}
	return []Scenario{
		base("cold-submit", Scenario{Workers: 2, GPUsPerWorker: 2, Multiplier: 1}),
		base("warm-submit", Scenario{Workers: 2, GPUsPerWorker: 2, Multiplier: 1, WarmCache: true}),
		base("deadline-spike", Scenario{Workers: 2, GPUsPerWorker: 2,
			Multiplier: spike, Readers: 3, Drafters: 3, WarmCache: true}),
		base("chaos-spike", Scenario{Workers: 2, GPUsPerWorker: 2,
			Multiplier: spike, Readers: 3, Drafters: 3, WarmCache: true,
			Chaos: true, FaultRate: 0.05}),
		base("restart-storm", Scenario{Workers: 2, GPUsPerWorker: 2,
			Multiplier: 2, Restart: true}),
	}
}

// ByName returns the named standard scenario, or false.
func ByName(name string, seed int64) (Scenario, bool) {
	for _, s := range Scenarios(seed) {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// newPlatform builds the deployment under test: overload limits sized to
// the scenario (pressure 1.0 = backlog at 2× capacity, so a 10× spike
// drives reads and drafts into shedding), the §III-C per-user limiter
// shortened out of the measurement's way, and chaos faults if requested.
func newPlatform(s Scenario, reg *faultinject.Registry) *platform.Platform {
	lim := sandbox.DefaultLimits()
	lim.SubmitInterval = time.Millisecond
	return platform.New(platform.Options{
		Arch:           s.Arch,
		Workers:        s.Workers,
		GPUsPerWorker:  s.GPUsPerWorker,
		Faults:         reg,
		Limits:         lim,
		CacheDir:       s.CacheDir,
		PreloadHottest: s.PreloadHottest,
		DispatchWait:   5 * time.Second,        // chaos: bound a lost dispatch, client retries
		Visibility:     250 * time.Millisecond, // fast redelivery of crash-abandoned leases
		Overload: &overload.Config{
			// Backlog at one full pool's worth of jobs = saturated: while
			// the spike keeps the workers busy the broker backlog pins
			// pressure at ~1.0, so reads (ShedAt 0.5) and drafts (0.75)
			// shed for the whole saturated stretch.
			QueueDepthLimit: s.Capacity(),
			Limits: map[overload.Class]overload.ClassLimit{
				// Submissions: the gate admits ahead of the pool (keeping
				// the broker fed — and its backlog honest) and the queue
				// holds the entire spike. Nothing sheds; everything waits
				// its turn.
				overload.ClassSubmission: {
					MaxConcurrent: 2 * s.Capacity(),
					MaxQueue:      s.Submissions,
					QueueTimeout:  s.Timeout,
				},
			},
		},
	})
}

// arm enables the chaostest fault points at the scenario's rate.
func arm(reg *faultinject.Registry, rate float64) {
	reg.Enable(faultinject.PointQueuePublish, faultinject.Fault{Prob: rate * 0.5})
	reg.Enable(faultinject.PointQueueAck, faultinject.Fault{Prob: rate * 0.5})
	reg.Enable(faultinject.PointQueuePoll, faultinject.Fault{Prob: rate * 0.2})
	reg.Enable(faultinject.PointDriverCrashBeforeAck, faultinject.Fault{Prob: rate * 0.3})
	reg.Enable(faultinject.PointDriverCrashAfterPublish, faultinject.Fault{Prob: rate * 0.3})
	reg.Enable(faultinject.PointDriverPublishResult, faultinject.Fault{Prob: rate * 0.3})
	reg.Enable(faultinject.PointNodeCompile, faultinject.Fault{Prob: rate * 0.3})
	reg.Enable(faultinject.PointNodeExec, faultinject.Fault{Prob: rate * 0.5})
}

// quantile reads the q-quantile from a sorted millisecond slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// summarize fills the latency fields from raw per-submit durations.
func (r *Result) summarize(latencies []time.Duration) {
	ms := make([]float64, len(latencies))
	for i, d := range latencies {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	sort.Float64s(ms)
	r.P50Ms = quantile(ms, 0.50)
	r.P95Ms = quantile(ms, 0.95)
	r.P99Ms = quantile(ms, 0.99)
	if n := len(ms); n > 0 {
		r.MaxMs = ms[n-1]
	}
}

// jitters derives the per-submitter arrival offsets from the seed: the
// spike is front-loaded (most arrivals in the first quarter window) the
// way a deadline rush is, and fully replayable.
func jitters(seed int64, n int, window time.Duration) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		// Square the uniform draw: density piles up near zero.
		u := rng.Float64()
		out[i] = time.Duration(u * u * float64(window))
	}
	return out
}
