package macrobench

import (
	"testing"
)

// TestRestartStorm is the durable-store acceptance run: a platform warms
// a store directory with real traffic, restarts against it, and must
// serve the whole working set with zero recompiles at near-warm latency.
// The zero-recompile and latency-bound assertions live inside Run — an
// error here IS the regression.
func TestRestartStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("two full platform boots; skipped in -short")
	}
	for _, seed := range soakSeeds(t) {
		s, ok := ByName("restart-storm", seed)
		if !ok {
			t.Fatal("restart-storm scenario missing from the standard suite")
		}
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%v\nreplay with CHAOS_SEED=%d", err, seed)
		}
		t.Logf("restart-storm: cold p50 %.1fms, pre-restart warm p50 %.1fms, post-restart p50 %.1fms, %d recompiles, %d disk hits",
			res.ColdP50Ms, res.PreRestartP50Ms, res.PostRestartP50Ms, res.Recompiles, res.DiskHits)

		if res.SubmitOK != res.Submissions {
			t.Errorf("submit_ok = %d, want %d (seed %d)", res.SubmitOK, res.Submissions, seed)
		}
		if res.Recompiles != 0 {
			t.Errorf("recompiles = %d after restart, want 0 (seed %d)", res.Recompiles, seed)
		}
		if res.DiskHits == 0 {
			t.Errorf("disk_hits = 0: the rebooted platform never read the store (seed %d)", seed)
		}
		if res.ColdP50Ms == 0 || res.PostRestartP50Ms == 0 {
			t.Errorf("phase medians missing: cold %.2f post %.2f (seed %d)",
				res.ColdP50Ms, res.PostRestartP50Ms, seed)
		}
	}
}
