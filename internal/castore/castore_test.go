package castore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"webgpu/internal/faultinject"
	"webgpu/internal/metrics"
)

// soakSeeds mirrors the chaos-test convention: a deterministic default
// set, overridable with CHAOS_SEED for replaying a CI failure.
func soakSeeds(t *testing.T) []int64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		return []int64{seed}
	}
	return []int64{1, 2, 42}
}

func key(i int) string {
	return fmt.Sprintf("%064x", i)
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	payload := []byte("compiled program artifact bytes")
	if err := s.Put(key(1), "prog", payload); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok := s.Get(key(1), "prog")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get = %q, %v; want payload back", got, ok)
	}
	if _, ok := s.Get(key(2), "prog"); ok {
		t.Fatal("get of absent key reported a hit")
	}
	if _, ok := s.Get(key(1), "diag"); ok {
		t.Fatal("get of absent blob reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.Objects != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesRead != int64(len(payload)) || st.BytesWritten != int64(len(payload)) {
		t.Fatalf("byte counters = %+v", st)
	}
}

func TestRejectsHostileNames(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, bad := range []struct{ key, blob string }{
		{"../../etc/passwd", "prog"},
		{"ABCDEF", "prog"}, // uppercase hex is not a progcache key
		{key(1), "PROG"},
		{key(1), "p/../../x"},
		{key(1), ""},
		{"a", "prog"}, // too short for fanout
	} {
		if err := s.Put(bad.key, bad.blob, []byte("x")); err == nil {
			t.Fatalf("put accepted hostile name %q.%q", bad.key, bad.blob)
		}
		if _, ok := s.Get(bad.key, bad.blob); ok {
			t.Fatalf("get accepted hostile name %q.%q", bad.key, bad.blob)
		}
	}
}

// TestSurvivesReopen is the restart story in miniature: a second store on
// the same directory serves the first store's artifacts.
func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := s1.Put(key(i), "prog", []byte(fmt.Sprintf("artifact %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()

	s2 := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		got, ok := s2.Get(key(i), "prog")
		if !ok || string(got) != fmt.Sprintf("artifact %d", i) {
			t.Fatalf("entry %d did not survive reopen: %q, %v", i, got, ok)
		}
	}
	if st := s2.Stats(); st.Objects != 10 || st.DiskBytes == 0 {
		t.Fatalf("reopened stats = %+v", st)
	}
}

// TestSharedDirectory runs two live stores over one directory — the
// two-shards-one-store topology — and checks writes from one are
// readable by the other with no coordination.
func TestSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	b := mustOpen(t, dir, Options{})
	if err := a.Put(key(7), "prog", []byte("from a")); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Get(key(7), "prog"); !ok || string(got) != "from a" {
		t.Fatalf("store b did not see a's write: %q, %v", got, ok)
	}
	// Identical-content double write is benign last-write-wins.
	if err := b.Put(key(7), "prog", []byte("from a")); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get(key(7), "prog"); !ok || string(got) != "from a" {
		t.Fatalf("double write broke the entry: %q, %v", got, ok)
	}
}

// TestCorruptionQuarantine flips bytes in stored files — header, hash,
// and payload regions — and requires every corruption to degrade to a
// miss with the file quarantined, never a wrong payload.
func TestCorruptionQuarantine(t *testing.T) {
	for _, seed := range soakSeeds(t) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s := mustOpen(t, dir, Options{})
			const n = 32
			for i := 0; i < n; i++ {
				if err := s.Put(key(i), "prog", []byte(fmt.Sprintf("payload-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			corrupted := map[int]bool{}
			for i := 0; i < n; i++ {
				if rng.Intn(2) == 0 {
					continue
				}
				corrupted[i] = true
				path := filepath.Join(dir, "objects", key(i)[:2], key(i)+".prog")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				switch rng.Intn(3) {
				case 0: // bit rot anywhere in the file
					data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
				case 1: // torn write: truncated tail
					data = data[:rng.Intn(len(data))]
				default: // torn write: partial final block replaced by zeros
					for j := len(data) - 1 - rng.Intn(len(data)/2+1); j < len(data); j++ {
						data[j] = 0
					}
					// Zeroing may be a no-op on zero bytes; flip one to be sure.
					data[len(data)-1] ^= 0xff
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				got, ok := s.Get(key(i), "prog")
				want := fmt.Sprintf("payload-%d", i)
				if corrupted[i] {
					if ok {
						t.Fatalf("seed %d: corrupt entry %d was served (%q); replay with CHAOS_SEED=%d",
							seed, i, got, seed)
					}
				} else if !ok || string(got) != want {
					t.Fatalf("seed %d: intact entry %d broken: %q, %v; replay with CHAOS_SEED=%d",
						seed, i, got, ok, seed)
				}
			}
			st := s.Stats()
			if int(st.Corruptions) != len(corrupted) || int(st.Quarantined) != len(corrupted) {
				t.Fatalf("corruptions=%d quarantined=%d, want %d each",
					st.Corruptions, st.Quarantined, len(corrupted))
			}
			if len(corrupted) > 0 {
				if status, _ := s.Health(); status != "degraded" {
					t.Fatalf("health = %q after corruption, want degraded", status)
				}
				ents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
				if err != nil || len(ents) != len(corrupted) {
					t.Fatalf("quarantine dir has %d entries, want %d (err %v)", len(ents), len(corrupted), err)
				}
				// A corrupt entry must be re-persistable after recompile.
				for i := range corrupted {
					if err := s.Put(key(i), "prog", []byte(fmt.Sprintf("payload-%d", i))); err != nil {
						t.Fatal(err)
					}
					if got, ok := s.Get(key(i), "prog"); !ok || string(got) != fmt.Sprintf("payload-%d", i) {
						t.Fatalf("re-put after quarantine broken: %q, %v", got, ok)
					}
				}
			} else if status, _ := s.Health(); status != "ok" {
				t.Fatalf("health = %q with no corruption", status)
			}
		})
	}
}

// TestCrashMidWrite simulates a writer dying between temp-file creation
// and rename: the next Open sweeps the temp file and the entry is a miss.
func TestCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(key(1), "prog", []byte("good")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// A torn .tmp beside a good object.
	fan := filepath.Join(dir, "objects", key(2)[:2])
	if err := os.MkdirAll(fan, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(fan, key(2)+".prog.12345.tmp")
	if err := os.WriteFile(tmp, []byte("WGCA\x01partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover temp file not swept on open")
	}
	if _, ok := s2.Get(key(2), "prog"); ok {
		t.Fatal("torn write became a servable entry")
	}
	if got, ok := s2.Get(key(1), "prog"); !ok || string(got) != "good" {
		t.Fatalf("intact neighbour lost: %q, %v", got, ok)
	}
}

// TestFaultInjection arms the castore points: read faults degrade to
// misses, write faults drop the artifact without corrupting the store.
func TestFaultInjection(t *testing.T) {
	for _, seed := range soakSeeds(t) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			faults := faultinject.New(seed)
			faults.Enable(faultinject.PointCAStoreRead, faultinject.Fault{Prob: 0.5})
			faults.Enable(faultinject.PointCAStoreWrite, faultinject.Fault{Prob: 0.5})
			s := mustOpen(t, t.TempDir(), Options{Faults: faults})
			written := map[int]bool{}
			for i := 0; i < 64; i++ {
				if err := s.Put(key(i), "prog", []byte(fmt.Sprintf("p%d", i))); err == nil {
					written[i] = true
				}
			}
			if len(written) == 0 || len(written) == 64 {
				t.Fatalf("write faults did not exercise both paths: %d/64 written", len(written))
			}
			for i := 0; i < 64; i++ {
				got, ok := s.Get(key(i), "prog")
				if ok && (!written[i] || string(got) != fmt.Sprintf("p%d", i)) {
					t.Fatalf("seed %d: wrong artifact for %d: %q; replay with CHAOS_SEED=%d",
						seed, i, got, seed)
				}
			}
			if faults.Fired(faultinject.PointCAStoreRead) == 0 ||
				faults.Fired(faultinject.PointCAStoreWrite) == 0 {
				t.Fatal("fault points never fired")
			}
			faults.DisableAll()
			// With faults off, everything that was written is servable.
			for i := range written {
				if got, ok := s.Get(key(i), "prog"); !ok || string(got) != fmt.Sprintf("p%d", i) {
					t.Fatalf("written entry %d lost after faults disabled: %q, %v", i, got, ok)
				}
			}
		})
	}
}

// TestGCBound fills the store past MaxBytes and checks the least
// recently accessed entries go first while hot entries survive.
func TestGCBound(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 1000)
	perEntry := int64(len(payload) + headerSize)
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 10 * perEntry})
	for i := 0; i < 10; i++ {
		if err := s.Put(key(i), "prog", payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the first three so they are the most recently accessed.
	for i := 0; i < 3; i++ {
		if _, ok := s.Get(key(i), "prog"); !ok {
			t.Fatalf("warm get %d missed", i)
		}
	}
	// Five more puts force five evictions.
	for i := 10; i < 15; i++ {
		if err := s.Put(key(i), "prog", payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.DiskBytes > 10*perEntry {
		t.Fatalf("disk bytes %d over budget %d", st.DiskBytes, 10*perEntry)
	}
	if st.GCRemoved == 0 {
		t.Fatal("GC never ran")
	}
	for i := 0; i < 3; i++ {
		if _, ok := s.Get(key(i), "prog"); !ok {
			t.Fatalf("recently accessed entry %d was evicted", i)
		}
	}
	for i := 10; i < 15; i++ {
		if _, ok := s.Get(key(i), "prog"); !ok {
			t.Fatalf("fresh entry %d was evicted", i)
		}
	}
}

// TestHottestKeys checks manifest-driven heat ordering survives reopen.
func TestHottestKeys(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(key(i), "prog", []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	// Heat: key 3 hottest, then 1, then the rest.
	for i := 0; i < 5; i++ {
		s.Get(key(3), "prog")
	}
	for i := 0; i < 3; i++ {
		s.Get(key(1), "prog")
	}
	want := []string{key(3), key(1)}
	got := s.HottestKeys(2)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("hottest = %v, want %v", got, want)
	}
	s.Close()
	// Reopen: heat comes from manifest replay.
	s2 := mustOpen(t, dir, Options{})
	got = s2.HottestKeys(2)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("hottest after reopen = %v, want %v", got, want)
	}
}

// TestTornManifestTail: a crash mid-append leaves a partial line; replay
// must skip it and keep every whole record.
func TestTornManifestTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(key(1), "prog", []byte("p")); err != nil {
		t.Fatal(err)
	}
	s.Get(key(1), "prog")
	s.Close()
	mf, err := os.OpenFile(filepath.Join(dir, "manifest.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mf.WriteString("get " + key(1)[:17]); err != nil { // no newline, torn key
		t.Fatal(err)
	}
	mf.Close()
	s2 := mustOpen(t, dir, Options{})
	if got := s2.HottestKeys(1); len(got) != 1 || got[0] != key(1) {
		t.Fatalf("replay with torn tail = %v", got)
	}
	if got, ok := s2.Get(key(1), "prog"); !ok || string(got) != "p" {
		t.Fatalf("entry lost after torn manifest: %q, %v", got, ok)
	}
}

// TestConcurrentAccess hammers one store from many goroutines; run under
// -race in CI.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(i % 20)
				if i%3 == 0 {
					if err := s.Put(k, "prog", []byte(fmt.Sprintf("v-%d", i%20))); err != nil {
						t.Errorf("put: %v", err)
					}
				} else if got, ok := s.Get(k, "prog"); ok {
					if string(got) != fmt.Sprintf("v-%d", i%20) {
						t.Errorf("wrong payload %q for %s", got, k)
					}
				}
				s.HottestKeys(5)
				s.Stats()
				s.Health()
			}
		}(g)
	}
	wg.Wait()
}

func TestMetricsCollector(t *testing.T) {
	reg := metrics.NewRegistry()
	s := mustOpen(t, t.TempDir(), Options{Metrics: reg})
	if err := s.Put(key(1), "prog", []byte("p")); err != nil {
		t.Fatal(err)
	}
	s.Get(key(1), "prog")
	s.Get(key(2), "prog")
	reg.Collect()
	if reg.Gauge("castore_hits") != 1 || reg.Gauge("castore_misses") != 1 ||
		reg.Gauge("castore_puts") != 1 || reg.Gauge("castore_objects") != 1 {
		t.Fatalf("gauges: hits=%v misses=%v puts=%v objects=%v",
			reg.Gauge("castore_hits"), reg.Gauge("castore_misses"),
			reg.Gauge("castore_puts"), reg.Gauge("castore_objects"))
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if err := s.Put(key(1), "prog", []byte("p")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(1), "prog"); ok {
		t.Fatal("nil store hit")
	}
	s.Discard(key(1), "prog")
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if status, _ := s.Health(); status != "absent" {
		t.Fatalf("nil health = %q", status)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscard(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put(key(1), "prog", []byte("old codec version")); err != nil {
		t.Fatal(err)
	}
	s.Discard(key(1), "prog")
	if _, ok := s.Get(key(1), "prog"); ok {
		t.Fatal("discarded entry still served")
	}
	st := s.Stats()
	if st.Discards != 1 || st.Objects != 0 {
		t.Fatalf("stats after discard = %+v", st)
	}
	if status, _ := s.Health(); status != "ok" {
		t.Fatalf("discard degraded health: %q", status)
	}
}
