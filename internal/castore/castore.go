// Package castore is the durable content-addressed artifact store behind
// progcache: a dolt-inspired on-disk object store keyed by the same
// content hash progcache already computes, so compiled programs and
// kernel diagnostics survive process restarts and can be shared by every
// platform (or shard) pointed at the same directory.
//
// Layout under the store root:
//
//	objects/<key[:2]>/<key>.<blob>   one artifact file per (key, blob)
//	quarantine/<name>                hash-mismatched files, moved aside
//	manifest.log                     append-only access log driving GC
//
// Durability and integrity:
//
//   - Writes go to a temp file in the final fanout directory and are
//     renamed into place, so readers only ever observe complete files and
//     a crash mid-write leaves a .tmp that Open sweeps away.
//   - Every file carries a header with the payload's SHA-256; reads verify
//     it. The store key hashes the *source*, not the artifact, so this
//     header is what catches torn writes and bit rot. A failed check
//     quarantines the file and reports a miss — corruption degrades to a
//     recompile, never a crash or a wrong artifact.
//   - The manifest is opened O_APPEND; records are small enough that
//     concurrent appenders (two platforms on one directory) interleave
//     whole lines on any POSIX filesystem, and replay skips torn tails.
//
// Garbage collection is least-recently-accessed: when a Put pushes the
// object bytes over Options.MaxBytes, the store drops the
// longest-unaccessed entries until it is back under budget. Access order
// and heat come from replaying the manifest at Open and tracking gets in
// memory afterwards; HottestKeys exposes the most-accessed keys so a
// booting worker can eagerly warm the entries most likely to be hit.
package castore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"webgpu/internal/faultinject"
	"webgpu/internal/metrics"
)

const (
	fileMagic   = "WGCA"
	fileVersion = 1
	// headerSize = magic + version byte + sha256 + 8-byte payload length.
	headerSize = 4 + 1 + sha256.Size + 8
)

// Options configures a store.
type Options struct {
	// MaxBytes bounds the objects directory; 0 disables GC.
	MaxBytes int64
	// Metrics, when set, gets castore_* gauges registered as a collector.
	Metrics *metrics.Registry
	// Faults arms the castore.read / castore.write injection points.
	Faults *faultinject.Registry
}

// Stats is a snapshot of store counters since Open.
type Stats struct {
	Hits         int64 // verified reads served
	Misses       int64 // absent entries (and injected read faults)
	Puts         int64 // artifacts persisted
	Discards     int64 // entries dropped by the caller (codec skew etc.)
	Corruptions  int64 // hash/header verification failures
	Quarantined  int64 // corrupt files successfully moved aside
	BytesRead    int64 // payload bytes served
	BytesWritten int64 // payload bytes persisted
	DiskBytes    int64 // current objects/ footprint (headers included)
	GCRemoved    int64 // entries evicted by the size bound
	Objects      int64 // current entry count
}

// access is the per-entry recency/heat record behind GC and preloading.
type access struct {
	seq   int64 // last access order; higher = hotter recency
	count int64 // total accesses over the manifest's lifetime
}

// Store is a persistent content-addressed artifact store. All methods are
// safe for concurrent use; a nil *Store is inert (reads miss, writes drop).
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	manifest *os.File
	seq      int64
	accesses map[string]*access // keyed "key.blob"
	sizes    map[string]int64   // on-disk size per "key.blob"
	stats    Stats
	diskFull bool
	closed   bool
}

// Open opens (creating if needed) a store rooted at dir, sweeps leftover
// temp files from crashed writers, and replays the access manifest.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("castore: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return nil, fmt.Errorf("castore: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		accesses: map[string]*access{},
		sizes:    map[string]int64{},
	}
	// Inventory the objects tree: footprint for the GC budget, and sweep
	// temp files a crashed writer left behind.
	err := filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if strings.HasSuffix(path, ".tmp") {
			return os.Remove(path)
		}
		s.sizes[filepath.Base(path)] = info.Size()
		s.stats.DiskBytes += info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("castore: scan objects: %w", err)
	}
	s.stats.Objects = int64(len(s.sizes))
	s.replayManifest()
	mf, err := os.OpenFile(filepath.Join(dir, "manifest.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("castore: open manifest: %w", err)
	}
	s.manifest = mf
	if opts.Metrics != nil {
		opts.Metrics.AddCollector(func(r *metrics.Registry) {
			st := s.Stats()
			r.Set("castore_hits", float64(st.Hits))
			r.Set("castore_misses", float64(st.Misses))
			r.Set("castore_puts", float64(st.Puts))
			r.Set("castore_discards", float64(st.Discards))
			r.Set("castore_corruptions", float64(st.Corruptions))
			r.Set("castore_quarantined", float64(st.Quarantined))
			r.Set("castore_bytes_read", float64(st.BytesRead))
			r.Set("castore_bytes_written", float64(st.BytesWritten))
			r.Set("castore_disk_bytes", float64(st.DiskBytes))
			r.Set("castore_gc_removed", float64(st.GCRemoved))
			r.Set("castore_objects", float64(st.Objects))
		})
	}
	return s, nil
}

// replayManifest rebuilds access order and heat. Torn tails (a crashed
// appender) and records for since-deleted entries are skipped silently.
func (s *Store) replayManifest() {
	data, err := os.ReadFile(filepath.Join(s.dir, "manifest.log"))
	if err != nil {
		return
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || (fields[0] != "get" && fields[0] != "put") {
			continue
		}
		s.seq++
		a := s.accesses[fields[1]]
		if a == nil {
			a = &access{}
			s.accesses[fields[1]] = a
		}
		a.seq = s.seq
		a.count++
	}
}

// entryName is the manifest/size-map key for one artifact file.
func entryName(key, blob string) string { return key + "." + blob }

// validName rejects anything that could escape the fanout layout; keys
// are progcache content hashes (lowercase hex), blobs short ASCII words
// (lowercase letters, digits, hyphens — version-suffixed names like
// "diag-kc2" are valid).
func validName(key, blob string) bool {
	if len(key) < 2 || len(key) > 128 || blob == "" || len(blob) > 32 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	for _, c := range blob {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

func (s *Store) objectPath(key, blob string) string {
	return filepath.Join(s.dir, "objects", key[:2], entryName(key, blob))
}

// note records an access (under s.mu) and appends it to the manifest.
func (s *Store) note(op, key, blob string) {
	s.seq++
	name := entryName(key, blob)
	a := s.accesses[name]
	if a == nil {
		a = &access{}
		s.accesses[name] = a
	}
	a.seq = s.seq
	a.count++
	if s.manifest != nil {
		// An append failure (disk full) only costs manifest history —
		// GC order degrades, correctness doesn't.
		fmt.Fprintf(s.manifest, "%s %s\n", op, name)
	}
}

// Get returns the payload stored under (key, blob). The second result is
// false on a miss; a file that fails hash verification is quarantined and
// reported as a miss, so the caller's only fallback path is "recompile".
func (s *Store) Get(key, blob string) ([]byte, bool) {
	if s == nil || !validName(key, blob) {
		return nil, false
	}
	if err := s.opts.Faults.Fire(faultinject.PointCAStoreRead); err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	path := s.objectPath(key, blob)
	data, err := os.ReadFile(path)
	if err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	payload, verr := verify(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if verr != nil {
		s.stats.Corruptions++
		s.quarantineLocked(key, blob, path)
		return nil, false
	}
	s.stats.Hits++
	s.stats.BytesRead += int64(len(payload))
	s.note("get", key, blob)
	return payload, true
}

// verify checks the file header and payload hash, returning the payload.
func verify(data []byte) ([]byte, error) {
	if len(data) < headerSize || string(data[:4]) != fileMagic {
		return nil, errors.New("bad magic")
	}
	if data[4] != fileVersion {
		return nil, fmt.Errorf("unsupported file version %d", data[4])
	}
	want := data[5 : 5+sha256.Size]
	n := binary.BigEndian.Uint64(data[5+sha256.Size : headerSize])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("payload length %d, header says %d", len(payload), n)
	}
	got := sha256.Sum256(payload)
	for i := range got {
		if got[i] != want[i] {
			return nil, errors.New("payload hash mismatch")
		}
	}
	return payload, nil
}

// quarantineLocked moves a corrupt file aside (never deletes: the bytes
// are evidence) under a name unique enough for repeat offenders.
func (s *Store) quarantineLocked(key, blob, path string) {
	dst := filepath.Join(s.dir, "quarantine",
		fmt.Sprintf("%s.%d", entryName(key, blob), s.stats.Corruptions))
	if err := os.Rename(path, dst); err != nil {
		// Already quarantined by a racing reader, or the file vanished;
		// either way it is no longer servable.
		if !os.IsNotExist(err) {
			os.Remove(path)
		}
	} else {
		s.stats.Quarantined++
	}
	s.dropEntryLocked(entryName(key, blob))
}

func (s *Store) dropEntryLocked(name string) {
	if sz, ok := s.sizes[name]; ok {
		s.stats.DiskBytes -= sz
		s.stats.Objects--
		delete(s.sizes, name)
	}
	delete(s.accesses, name)
}

// Put persists payload under (key, blob) with an atomic temp-file +
// rename. Identical keys hold identical content by construction, so a
// concurrent double-write is benign last-write-wins. Errors are returned
// for observability but callers treat the store as best-effort.
func (s *Store) Put(key, blob string, payload []byte) error {
	if s == nil {
		return nil
	}
	if !validName(key, blob) {
		return fmt.Errorf("castore: invalid entry name %q.%q", key, blob)
	}
	if err := s.opts.Faults.Fire(faultinject.PointCAStoreWrite); err != nil {
		return err
	}
	dir := filepath.Join(s.dir, "objects", key[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return s.writeFailed(err)
	}
	buf := make([]byte, headerSize, headerSize+len(payload))
	copy(buf, fileMagic)
	buf[4] = fileVersion
	sum := sha256.Sum256(payload)
	copy(buf[5:], sum[:])
	binary.BigEndian.PutUint64(buf[5+sha256.Size:], uint64(len(payload)))
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(dir, entryName(key, blob)+".*.tmp")
	if err != nil {
		return s.writeFailed(err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return s.writeFailed(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return s.writeFailed(err)
	}
	if err := os.Rename(tmp.Name(), s.objectPath(key, blob)); err != nil {
		os.Remove(tmp.Name())
		return s.writeFailed(err)
	}

	name := entryName(key, blob)
	s.mu.Lock()
	if old, ok := s.sizes[name]; ok {
		s.stats.DiskBytes -= old
		s.stats.Objects--
	}
	s.sizes[name] = int64(len(buf))
	s.stats.DiskBytes += int64(len(buf))
	s.stats.Objects++
	s.stats.Puts++
	s.stats.BytesWritten += int64(len(payload))
	s.diskFull = false
	s.note("put", key, blob)
	s.gcLocked()
	s.mu.Unlock()
	return nil
}

// writeFailed notes a failed write, flagging disk-full for /healthz.
func (s *Store) writeFailed(err error) error {
	if errors.Is(err, syscall.ENOSPC) {
		s.mu.Lock()
		s.diskFull = true
		s.mu.Unlock()
	}
	return fmt.Errorf("castore: write: %w", err)
}

// Discard removes an entry that verified but could not be used — a codec
// version skew after a deploy, say. Unlike corruption this is an expected
// lifecycle event and does not degrade health.
func (s *Store) Discard(key, blob string) {
	if s == nil || !validName(key, blob) {
		return
	}
	path := s.objectPath(key, blob)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(path); err == nil || os.IsNotExist(err) {
		s.stats.Discards++
		s.dropEntryLocked(entryName(key, blob))
	}
}

// gcLocked enforces the MaxBytes budget by evicting the least recently
// accessed entries. Entries present on disk but absent from the manifest
// (history lost) count as oldest.
func (s *Store) gcLocked() {
	if s.opts.MaxBytes <= 0 || s.stats.DiskBytes <= s.opts.MaxBytes {
		return
	}
	type victim struct {
		name string
		seq  int64
	}
	victims := make([]victim, 0, len(s.sizes))
	for name := range s.sizes {
		var seq int64
		if a := s.accesses[name]; a != nil {
			seq = a.seq
		}
		victims = append(victims, victim{name, seq})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq < victims[j].seq })
	for _, v := range victims {
		if s.stats.DiskBytes <= s.opts.MaxBytes || v.seq == s.seq {
			break // under budget, or down to the entry just written
		}
		path := filepath.Join(s.dir, "objects", v.name[:2], v.name)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			continue
		}
		s.stats.GCRemoved++
		s.dropEntryLocked(v.name)
	}
}

// HottestKeys returns up to n distinct store keys ordered by total access
// count (ties broken by recency), for eager warm-start preloading.
func (s *Store) HottestKeys(n int) []string {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	type heat struct {
		key        string
		count, seq int64
	}
	byKey := map[string]*heat{}
	for name, a := range s.accesses {
		if _, ok := s.sizes[name]; !ok {
			continue // manifest record for a deleted entry
		}
		dot := strings.IndexByte(name, '.')
		if dot <= 0 {
			continue
		}
		key := name[:dot]
		h := byKey[key]
		if h == nil {
			h = &heat{key: key}
			byKey[key] = h
		}
		h.count += a.count
		if a.seq > h.seq {
			h.seq = a.seq
		}
	}
	s.mu.Unlock()
	heats := make([]*heat, 0, len(byKey))
	for _, h := range byKey {
		heats = append(heats, h)
	}
	sort.Slice(heats, func(i, j int) bool {
		if heats[i].count != heats[j].count {
			return heats[i].count > heats[j].count
		}
		return heats[i].seq > heats[j].seq
	})
	if len(heats) > n {
		heats = heats[:n]
	}
	keys := make([]string, len(heats))
	for i, h := range heats {
		keys[i] = h.key
	}
	return keys
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Health reports the component status for /healthz: degraded when
// corruption has been quarantined (the artifacts recompile fine, but the
// disk deserves a look) or the last write hit disk-full.
func (s *Store) Health() (status, detail string) {
	if s == nil {
		return "absent", "no store configured"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.diskFull:
		return "degraded", fmt.Sprintf("disk full; %d objects, %d B", s.stats.Objects, s.stats.DiskBytes)
	case s.stats.Corruptions > 0:
		return "degraded", fmt.Sprintf("%d corrupt entries quarantined; %d objects, %d hits, %d misses",
			s.stats.Corruptions, s.stats.Objects, s.stats.Hits, s.stats.Misses)
	default:
		return "ok", fmt.Sprintf("%d objects, %d B, %d hits, %d misses",
			s.stats.Objects, s.stats.DiskBytes, s.stats.Hits, s.stats.Misses)
	}
}

// Dir returns the store root.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Close flushes and closes the manifest. The store must not be used after.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.manifest == nil {
		return nil
	}
	s.closed = true
	return s.manifest.Close()
}
