package grader

import (
	"context"
	"errors"
	"strings"
	"testing"

	"webgpu/internal/labs"
)

func runReference(t *testing.T, labID string) (*labs.Lab, []*labs.Outcome) {
	t.Helper()
	l := labs.ByID(labID)
	devs := labs.NewDeviceSet(1)
	if l.NumGPUs > 1 {
		devs = labs.NewDeviceSet(l.NumGPUs)
	}
	return l, labs.RunAll(context.Background(), l, l.Reference, devs, 0)
}

func TestScoreFullMarks(t *testing.T) {
	l, outs := runReference(t, "vector-add")
	g := Score(l, l.Reference, outs, len(l.Questions))
	if g.Total != g.Max {
		t.Fatalf("reference scored %d of %d: %+v", g.Total, g.Max, g)
	}
	if g.Compile != l.Rubric.CompilePoints {
		t.Errorf("compile = %d", g.Compile)
	}
	for i, pass := range g.DatasetPass {
		if !pass {
			t.Errorf("dataset %d failed", i)
		}
	}
}

func TestScorePartial(t *testing.T) {
	l := labs.ByID("vector-add")
	// A wrong answer compiles and runs but fails every dataset.
	src := `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) out[i] = in1[i] - in2[i];
}`
	outs := labs.RunAll(context.Background(), l, src, labs.NewDeviceSet(1), 0)
	g := Score(l, src, outs, 1)
	if g.Datasets != 0 {
		t.Errorf("dataset points = %d", g.Datasets)
	}
	if g.Compile != l.Rubric.CompilePoints {
		t.Errorf("compile points = %d", g.Compile)
	}
	if g.Questions != l.Rubric.QuestionPoints {
		t.Errorf("question points = %d", g.Questions)
	}
	if g.Total >= g.Max {
		t.Errorf("partial credit %d >= max %d", g.Total, g.Max)
	}
}

func TestScoreCompileFailure(t *testing.T) {
	l := labs.ByID("vector-add")
	outs := labs.RunAll(context.Background(), l, "__global__ void vecAdd(", labs.NewDeviceSet(1), 0)
	g := Score(l, "__global__ void vecAdd(", outs, 0)
	if g.Compile != 0 || g.Datasets != 0 {
		t.Errorf("broken source earned compile=%d datasets=%d", g.Compile, g.Datasets)
	}
}

func TestScoreQuestionClamping(t *testing.T) {
	l, outs := runReference(t, "vector-add")
	over := Score(l, l.Reference, outs, 99)
	exact := Score(l, l.Reference, outs, len(l.Questions))
	if over.Questions != exact.Questions {
		t.Errorf("question points not clamped: %d vs %d", over.Questions, exact.Questions)
	}
	neg := Score(l, l.Reference, outs, -5)
	if neg.Questions != 0 {
		t.Errorf("negative answers earned %d", neg.Questions)
	}
}

func TestScoreMonotoneInDatasets(t *testing.T) {
	// Property: passing more datasets never lowers the total.
	l, outs := runReference(t, "scatter-to-gather")
	prevTotal := -1
	for k := 0; k <= len(outs); k++ {
		subset := make([]*labs.Outcome, len(outs))
		for i := range outs {
			cp := *outs[i]
			if i >= k {
				cp.Correct = false
			}
			subset[i] = &cp
		}
		g := Score(l, l.Reference, subset, 0)
		if g.Total < prevTotal {
			t.Fatalf("total decreased at k=%d: %d < %d", k, g.Total, prevTotal)
		}
		prevTotal = g.Total
	}
}

func TestOverride(t *testing.T) {
	l, outs := runReference(t, "vector-add")
	g := Score(l, l.Reference, outs, 0)
	Override(g, "prof-hwu", 100, "regraded after appeal")
	if !g.Overridden || g.Total != 100 || g.OverrideBy != "prof-hwu" {
		t.Errorf("override: %+v", g)
	}
}

func TestCourseraBook(t *testing.T) {
	b := NewCourseraBook("hpp-2015")
	g := &Grade{UserID: "u1", LabID: "vector-add", Total: 80, Max: 100}
	if err := b.Record(g); err != nil {
		t.Fatal(err)
	}
	got, err := b.Lookup("u1", "vector-add")
	if err != nil || got.Total != 80 {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	// Re-record replaces (regrade).
	g.Total = 95
	_ = b.Record(g)
	got, _ = b.Lookup("u1", "vector-add")
	if got.Total != 95 {
		t.Errorf("regrade total = %d", got.Total)
	}
	if b.Writes() != 2 {
		t.Errorf("writes = %d", b.Writes())
	}
	if _, err := b.Lookup("u2", "vector-add"); !errors.Is(err, ErrNoSuchGrade) {
		t.Errorf("missing lookup = %v", err)
	}
	if err := b.Record(&Grade{}); err == nil {
		t.Error("empty grade recorded")
	}
}

func TestExportCSV(t *testing.T) {
	b := NewCourseraBook("hpp")
	_ = b.Record(&Grade{UserID: "u2", LabID: "l1", Total: 50, Max: 100})
	_ = b.Record(&Grade{UserID: "u1", LabID: "l1", Total: 70, Max: 100})
	out := b.Export()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || lines[0] != "user,lab,total,max" {
		t.Fatalf("export = %q", out)
	}
	if !strings.HasPrefix(lines[1], "u1,") || !strings.HasPrefix(lines[2], "u2,") {
		t.Errorf("export not sorted: %q", out)
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	b := NewCourseraBook("hpp")
	_ = b.Record(&Grade{UserID: "u1", LabID: "l1", Total: 10, Max: 100})
	got, _ := b.Lookup("u1", "l1")
	got.Total = 999
	again, _ := b.Lookup("u1", "l1")
	if again.Total != 10 {
		t.Error("lookup leaked internal state")
	}
}
