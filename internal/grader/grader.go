// Package grader implements WebGPU's automatic grading (§IV-F): when a
// student submits, the system runs every dataset, applies the lab's
// rubric — points for compilation, per-dataset correctness, required
// keywords, and answered short-answer questions — records the grade, and
// writes it back to the course gradebook (Coursera in the paper).
// Instructors can override grades and leave comments through the
// instructor tools.
package grader

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"webgpu/internal/kernelcheck"
	"webgpu/internal/labs"
)

// ErrNoSuchGrade is returned when an override targets a missing grade.
var ErrNoSuchGrade = errors.New("grader: no such grade")

// Grade is the rubric breakdown of one submission.
type Grade struct {
	UserID       string    `json:"user_id"`
	LabID        string    `json:"lab_id"`
	SubmissionID string    `json:"submission_id"`
	Compile      int       `json:"compile_points"`
	Datasets     int       `json:"dataset_points"`
	Keywords     int       `json:"keyword_points"`
	Questions    int       `json:"question_points"`
	Total        int       `json:"total"`
	Max          int       `json:"max"`
	DatasetPass  []bool    `json:"dataset_pass"`
	KeywordsHit  []string  `json:"keywords_hit"`
	Overridden   bool      `json:"overridden,omitempty"`
	OverrideBy   string    `json:"override_by,omitempty"`
	Comment      string    `json:"comment,omitempty"`
	GradedAt     time.Time `json:"graded_at"`

	// Feedback is student-facing commentary attached alongside the score
	// — today the static-analyzer findings for the submitted kernel.
	Feedback []string `json:"feedback,omitempty"`
}

// Score applies a lab's rubric to the outcomes of a full submission run.
// questionsAnswered counts the short-answer questions the student filled
// in (they are not auto-graded — §IV-B: "There is no system for automatic
// grading of questions" — so completion earns the points).
func Score(l *labs.Lab, source string, outcomes []*labs.Outcome, questionsAnswered int) *Grade {
	g := &Grade{LabID: l.ID, Max: l.MaxPoints(), GradedAt: time.Now()}
	compiled := len(outcomes) > 0
	for _, o := range outcomes {
		if !o.Compiled {
			compiled = false
		}
	}
	if compiled {
		g.Compile = l.Rubric.CompilePoints
	}
	g.DatasetPass = make([]bool, len(outcomes))
	for i, o := range outcomes {
		if o.Correct {
			g.DatasetPass[i] = true
			g.Datasets += l.Rubric.DatasetPoints
		}
	}
	g.KeywordsHit = labs.KeywordsPresent(l, source)
	g.Keywords = len(g.KeywordsHit) * l.Rubric.KeywordPoints
	if questionsAnswered > len(l.Questions) {
		questionsAnswered = len(l.Questions)
	}
	if questionsAnswered < 0 {
		questionsAnswered = 0
	}
	g.Questions = questionsAnswered * l.Rubric.QuestionPoints
	g.Total = g.Compile + g.Datasets + g.Keywords + g.Questions
	return g
}

// AttachDiagnostics appends the static analyzer's findings to the
// grade's student-facing feedback, most severe first (the order Analyze
// already guarantees within a position). Grading points are unaffected:
// the analyzer informs, the rubric decides.
func AttachDiagnostics(g *Grade, diags []kernelcheck.Diagnostic) {
	for _, d := range diags {
		g.Feedback = append(g.Feedback, d.String())
	}
}

// Override replaces a grade's total with an instructor-assigned value and
// records who did it (§IV-F: "Instructors are provided an interface to
// override a grade").
func Override(g *Grade, instructor string, total int, comment string) {
	g.Total = total
	g.Overridden = true
	g.OverrideBy = instructor
	g.Comment = comment
}

// Gradebook is where final grades are recorded; the paper's deployment
// wrote them back to Coursera.
type Gradebook interface {
	Record(g *Grade) error
	Lookup(userID, labID string) (*Grade, error)
}

// CourseraBook is the simulated external gradebook connector: an ordered,
// last-write-wins record store with an export format matching what course
// platforms ingest.
type CourseraBook struct {
	mu      sync.Mutex
	grades  map[string]*Grade // userID+"\x00"+labID
	writes  int64
	courses string
}

// NewCourseraBook creates an empty connector for the named course.
func NewCourseraBook(course string) *CourseraBook {
	return &CourseraBook{grades: map[string]*Grade{}, courses: course}
}

// Record stores (or replaces) a grade.
func (b *CourseraBook) Record(g *Grade) error {
	if g.UserID == "" || g.LabID == "" {
		return fmt.Errorf("grader: grade missing user or lab id")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := *g
	b.grades[g.UserID+"\x00"+g.LabID] = &cp
	b.writes++
	return nil
}

// Lookup fetches a recorded grade.
func (b *CourseraBook) Lookup(userID, labID string) (*Grade, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.grades[userID+"\x00"+labID]
	if !ok {
		return nil, ErrNoSuchGrade
	}
	cp := *g
	return &cp, nil
}

// Writes reports how many gradebook writes occurred.
func (b *CourseraBook) Writes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.writes
}

// Export renders "user,lab,total,max" CSV lines sorted by key, the bulk
// format course platforms import.
func (b *CourseraBook) Export() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys := make([]string, 0, len(b.grades))
	for k := range b.grades {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "user,lab,total,max\n"
	for _, k := range keys {
		g := b.grades[k]
		out += fmt.Sprintf("%s,%s,%d,%d\n", g.UserID, g.LabID, g.Total, g.Max)
	}
	return out
}

var _ Gradebook = (*CourseraBook)(nil)
