package peerreview

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func students(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%03d", i)
	}
	return out
}

func TestAssignRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ss := students(50)
	as, err := AssignRandom("lab1", ss, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 50*3 {
		t.Fatalf("assignments = %d, want 150", len(as))
	}
	perReviewer := map[string]map[string]bool{}
	for _, a := range as {
		if a.Reviewer == a.Author {
			t.Fatalf("self review: %+v", a)
		}
		if perReviewer[a.Reviewer] == nil {
			perReviewer[a.Reviewer] = map[string]bool{}
		}
		if perReviewer[a.Reviewer][a.Author] {
			t.Fatalf("duplicate pair: %+v", a)
		}
		perReviewer[a.Reviewer][a.Author] = true
	}
	for r, set := range perReviewer {
		if len(set) != 3 {
			t.Errorf("reviewer %s has %d assignments", r, len(set))
		}
	}
}

func TestAssignRandomTooFew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := AssignRandom("lab1", students(3), 3, rng); !errors.Is(err, ErrTooFewStudents) {
		t.Errorf("err = %v", err)
	}
	if as, err := AssignRandom("lab1", students(10), 0, rng); err != nil || as != nil {
		t.Errorf("zero reviews: %v %v", as, err)
	}
}

// The §IV-D phenomenon: with the paper's ~3% completion rate, almost every
// active student's reviewers have dropped out, so active students starve
// for reviews. With high retention, starvation is rare.
func TestStarvationGrowsWithDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ss := students(1000)
	as, err := AssignRandom("lab1", ss, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	starvationAt := func(activeFrac float64) float64 {
		active := map[string]bool{}
		for i, s := range ss {
			if float64(i) < activeFrac*float64(len(ss)) {
				active[s] = true
			}
		}
		// Shuffle-independent: activity is by index, assignment was random.
		return Starvation(as, active).StarvationRate
	}
	low := starvationAt(0.90)  // healthy course
	mid := starvationAt(0.30)  // mid-course
	high := starvationAt(0.05) // MOOC reality (Table I: ~3% complete)
	if !(low < mid && mid < high) {
		t.Fatalf("starvation not monotone in dropout: %.3f %.3f %.3f", low, mid, high)
	}
	if high < 0.5 {
		t.Errorf("at 5%% retention starvation = %.3f, expected severe (>0.5)", high)
	}
	if low > 0.1 {
		t.Errorf("at 90%% retention starvation = %.3f, expected rare (<0.1)", low)
	}
}

func TestStarvationStats(t *testing.T) {
	as := []Assignment{
		{LabID: "l", Reviewer: "a", Author: "b"},
		{LabID: "l", Reviewer: "b", Author: "a"},
		{LabID: "l", Reviewer: "c", Author: "a"}, // c dropped
	}
	active := map[string]bool{"a": true, "b": true}
	s := Starvation(as, active)
	if s.Students != 3 || s.Active != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.ReviewsByActive != 2 {
		t.Errorf("reviews by active = %d", s.ReviewsByActive)
	}
	if s.ActiveGettingNone != 0 {
		t.Errorf("both a and b receive reviews: %+v", s)
	}
}

func TestStoreCompletionAndBonus(t *testing.T) {
	st := NewStore(0.10)
	rng := rand.New(rand.NewSource(3))
	as, _ := AssignRandom("lab1", students(10), 3, rng)
	st.Load(as)
	mine := st.For("s000")
	if len(mine) != 3 {
		t.Fatalf("assignments = %d", len(mine))
	}
	if err := st.Complete("lab1", "s000", mine[0].Author); err != nil {
		t.Fatal(err)
	}
	if err := st.Complete("lab1", "s000", mine[1].Author); err != nil {
		t.Fatal(err)
	}
	if got := st.CompletionFraction("s000"); got < 0.66 || got > 0.67 {
		t.Errorf("completion = %v", got)
	}
	if got := st.GradeBonus("s000"); got < 0.066 || got > 0.067 {
		t.Errorf("bonus = %v", got)
	}
	// Completing an unassigned review fails.
	if err := st.Complete("lab1", "s000", "s000"); !errors.Is(err, ErrNotAssigned) {
		t.Errorf("err = %v", err)
	}
}

// The weight trajectory the paper describes: 10% in offering two, 5%
// after complaints, then phased out.
func TestWeightPhaseOut(t *testing.T) {
	st := NewStore(0.10)
	if st.Weight() != 0.10 {
		t.Fatal("initial weight")
	}
	st.SetWeight(0.05)
	if st.Weight() != 0.05 {
		t.Fatal("reduced weight")
	}
	st.SetWeight(0)
	rng := rand.New(rand.NewSource(3))
	as, _ := AssignRandom("lab1", students(10), 1, rng)
	st.Load(as)
	mine := st.For("s001")
	_ = st.Complete("lab1", "s001", mine[0].Author)
	if st.GradeBonus("s001") != 0 {
		t.Error("phased-out reviews still earn grade")
	}
}

func TestCompletionFractionNoAssignments(t *testing.T) {
	st := NewStore(0.1)
	if st.CompletionFraction("ghost") != 0 {
		t.Error("ghost reviewer has completion")
	}
}
