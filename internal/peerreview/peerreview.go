// Package peerreview implements the peer-review workflow of §IV-D: each
// student is randomly assigned a number of other students' lab
// submissions to review, with a slice of the lab grade awarded for
// completing reviews (not for their content, which WebGPU cannot judge).
// The package also models the failure mode the paper reports: with heavy
// early drop-out, random assignment pairs active students with inactive
// reviewers, so "many students were offering reviews without receiving
// them" — which forced the weight from 10% to 5% and then removal.
package peerreview

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Errors.
var (
	ErrTooFewStudents = errors.New("peerreview: not enough students to assign reviews")
	ErrNotAssigned    = errors.New("peerreview: review was not assigned")
)

// Assignment pairs a reviewer with the author whose submission they must
// review.
type Assignment struct {
	LabID    string
	Reviewer string
	Author   string
	Done     bool
}

// AssignRandom assigns each student perStudent other students' labs,
// uniformly at random without self-review and without duplicate
// (reviewer, author) pairs. This is the paper's scheme ("each student was
// assigned three other random students' labs").
func AssignRandom(labID string, students []string, perStudent int, rng *rand.Rand) ([]Assignment, error) {
	if perStudent <= 0 {
		return nil, nil
	}
	if len(students) <= perStudent {
		return nil, fmt.Errorf("%w: %d students for %d reviews each",
			ErrTooFewStudents, len(students), perStudent)
	}
	var out []Assignment
	for _, reviewer := range students {
		seen := map[string]bool{reviewer: true}
		for len(seen)-1 < perStudent {
			author := students[rng.Intn(len(students))]
			if seen[author] {
				continue
			}
			seen[author] = true
			out = append(out, Assignment{LabID: labID, Reviewer: reviewer, Author: author})
		}
	}
	return out, nil
}

// Stats summarizes review coverage for a population where only some
// students are still active (§IV-D's starvation analysis).
type Stats struct {
	Students          int
	Active            int
	AssignmentsTotal  int
	ReviewsByActive   int     // reviews whose reviewer is active (these get done)
	ActiveGettingNone int     // active students who receive no review from an active reviewer
	StarvationRate    float64 // ActiveGettingNone / Active
}

// Starvation computes, given the assignment set and the set of
// still-active students, how many active students will never receive a
// review: their assigned reviewers have all dropped the course.
func Starvation(assignments []Assignment, active map[string]bool) Stats {
	s := Stats{AssignmentsTotal: len(assignments)}
	students := map[string]bool{}
	received := map[string]int{}
	for _, a := range assignments {
		students[a.Reviewer] = true
		students[a.Author] = true
		if active[a.Reviewer] {
			s.ReviewsByActive++
			received[a.Author]++
		}
	}
	s.Students = len(students)
	for st := range students {
		if !active[st] {
			continue
		}
		s.Active++
		if received[st] == 0 {
			s.ActiveGettingNone++
		}
	}
	if s.Active > 0 {
		s.StarvationRate = float64(s.ActiveGettingNone) / float64(s.Active)
	}
	return s
}

// Store tracks assignments and completions for a lab offering.
type Store struct {
	mu          sync.Mutex
	assignments map[string][]*Assignment // reviewer -> assignments
	byPair      map[string]*Assignment
	weight      float64 // fraction of the lab grade awarded for completion
}

// NewStore creates a store with the given grade weight (0.10 in the
// second offering, 0.05 in the third, 0 once phased out).
func NewStore(weight float64) *Store {
	return &Store{
		assignments: map[string][]*Assignment{},
		byPair:      map[string]*Assignment{},
		weight:      weight,
	}
}

// Weight returns the configured grade weight.
func (s *Store) Weight() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.weight
}

// SetWeight adjusts the grade weight (the paper's 10% → 5% → 0 sequence).
func (s *Store) SetWeight(w float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.weight = w
}

// Load registers assignments.
func (s *Store) Load(as []Assignment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range as {
		a := as[i]
		cp := &a
		s.assignments[a.Reviewer] = append(s.assignments[a.Reviewer], cp)
		s.byPair[a.LabID+"\x00"+a.Reviewer+"\x00"+a.Author] = cp
	}
}

// For returns a reviewer's assignments.
func (s *Store) For(reviewer string) []Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Assignment, 0, len(s.assignments[reviewer]))
	for _, a := range s.assignments[reviewer] {
		out = append(out, *a)
	}
	return out
}

// Complete marks a review done; points are for completion only (§IV-D:
// "points were assigned for completing the peer review and did not impact
// student's grade" accuracy-wise).
func (s *Store) Complete(labID, reviewer, author string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.byPair[labID+"\x00"+reviewer+"\x00"+author]
	if !ok {
		return fmt.Errorf("%w: %s reviewing %s", ErrNotAssigned, reviewer, author)
	}
	a.Done = true
	return nil
}

// CompletionFraction reports the share of a reviewer's assignments done.
func (s *Store) CompletionFraction(reviewer string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	as := s.assignments[reviewer]
	if len(as) == 0 {
		return 0
	}
	done := 0
	for _, a := range as {
		if a.Done {
			done++
		}
	}
	return float64(done) / float64(len(as))
}

// GradeBonus returns the grade fraction earned by a reviewer: weight ×
// completion fraction.
func (s *Store) GradeBonus(reviewer string) float64 {
	return s.Weight() * s.CompletionFraction(reviewer)
}
