package mpi

import (
	"errors"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("halo"))
		}
		b, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(b) != "halo" {
			t.Errorf("recv = %q", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagReordering(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("first")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("second"))
		}
		// Receive in the opposite tag order.
		b2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		b1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(b1) != "first" || string(b2) != "second" {
			t.Errorf("got %q, %q", b1, b2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	w, _ := NewWorld(2)
	xs := []float32{1.5, -2.25, 3e7}
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.SendFloat32s(1, 0, xs)
		}
		got, err := c.RecvFloat32s(0, 0)
		if err != nil {
			return err
		}
		for i := range xs {
			if got[i] != xs[i] {
				t.Errorf("elem %d = %v", i, got[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	w, _ := NewWorld(4)
	counter := make(chan int, 8)
	err := w.Run(func(c *Comm) error {
		counter <- 1
		if err := c.Barrier(); err != nil {
			return err
		}
		// After the barrier, all 4 pre-barrier sends must be visible.
		if len(counter) < 4 {
			t.Errorf("rank %d passed barrier with %d arrivals", c.Rank(), len(counter))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	w, _ := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		got, err := c.AllreduceSum(float64(c.Rank() + 1))
		if err != nil {
			return err
		}
		if got != 15 {
			t.Errorf("rank %d: allreduce = %v, want 15", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w, _ := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		parts, err := c.GatherFloat32s(0, 0, []float32{float32(c.Rank())})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				if parts[r][0] != float32(r) {
					t.Errorf("part[%d] = %v", r, parts[r])
				}
			}
		} else if parts != nil {
			t.Errorf("non-root rank got parts")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeout(t *testing.T) {
	w, _ := NewWorld(2)
	w.SetTimeout(50 * time.Millisecond)
	c, _ := w.Comm(1)
	if _, err := c.Recv(0, 0); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestRankRange(t *testing.T) {
	w, _ := NewWorld(2)
	c, _ := w.Comm(0)
	if err := c.Send(5, 0, nil); !errors.Is(err, ErrRankRange) {
		t.Errorf("send err = %v", err)
	}
	if _, err := c.Recv(-1, 0); !errors.Is(err, ErrRankRange) {
		t.Errorf("recv err = %v", err)
	}
	if _, err := w.Comm(9); !errors.Is(err, ErrRankRange) {
		t.Errorf("comm err = %v", err)
	}
	if _, err := NewWorld(0); err == nil {
		t.Error("zero-size world accepted")
	}
}

func TestFinalize(t *testing.T) {
	w, _ := NewWorld(2)
	c, _ := w.Comm(0)
	w.Finalize()
	if err := c.Send(1, 0, nil); !errors.Is(err, ErrFinalized) {
		t.Errorf("err = %v, want ErrFinalized", err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("student bug")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not propagated")
	}
}

func TestHaloExchangePattern(t *testing.T) {
	// The pattern the Multi-GPU Stencil lab performs: each rank owns a
	// strip and exchanges one-element halos with neighbours.
	const ranks, local = 4, 8
	w, _ := NewWorld(ranks)
	results := make([][]float32, ranks)
	err := w.Run(func(c *Comm) error {
		r := c.Rank()
		strip := make([]float32, local)
		for i := range strip {
			strip[i] = float32(r*local + i)
		}
		left, right := float32(-1), float32(-1)
		if r > 0 {
			if err := c.SendFloat32s(r-1, 0, strip[:1]); err != nil {
				return err
			}
		}
		if r < ranks-1 {
			if err := c.SendFloat32s(r+1, 1, strip[local-1:]); err != nil {
				return err
			}
		}
		if r > 0 {
			h, err := c.RecvFloat32s(r-1, 1)
			if err != nil {
				return err
			}
			left = h[0]
		}
		if r < ranks-1 {
			h, err := c.RecvFloat32s(r+1, 0)
			if err != nil {
				return err
			}
			right = h[0]
		}
		results[r] = []float32{left, right}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		wantLeft, wantRight := float32(-1), float32(-1)
		if r > 0 {
			wantLeft = float32(r*local - 1)
		}
		if r < ranks-1 {
			wantRight = float32((r + 1) * local)
		}
		if results[r][0] != wantLeft || results[r][1] != wantRight {
			t.Errorf("rank %d halos = %v, want [%v %v]", r, results[r], wantLeft, wantRight)
		}
	}
}
