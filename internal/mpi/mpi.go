// Package mpi is an in-process message-passing substrate standing in for
// the MPI installation the paper's Multi-GPU Stencil lab requires on its
// worker nodes. Ranks run as goroutines within one process and exchange
// typed messages over channels; the API mirrors the MPI subset the lab
// harness uses (point-to-point send/recv, barrier, allreduce, gather).
package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Errors.
var (
	ErrRankRange = errors.New("mpi: rank out of range")
	ErrTimeout   = errors.New("mpi: operation timed out (deadlock?)")
	ErrFinalized = errors.New("mpi: world has been finalized")
)

// DefaultTimeout bounds blocking operations so a deadlocked student
// harness is reported instead of hanging a worker node.
const DefaultTimeout = 10 * time.Second

type message struct {
	tag  int
	data []byte
}

// World is a communicator of Size ranks.
type World struct {
	size    int
	timeout time.Duration
	chans   [][]chan message // chans[from][to]

	mu        sync.Mutex
	finalized bool

	barrier struct {
		mu      sync.Mutex
		cond    *sync.Cond
		arrived int
		gen     int
	}

	reduce struct {
		mu     sync.Mutex
		cond   *sync.Cond
		vals   []float64
		count  int
		gen    int
		result float64
	}
}

// NewWorld creates a communicator with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: invalid world size %d", size)
	}
	w := &World{size: size, timeout: DefaultTimeout}
	w.chans = make([][]chan message, size)
	for i := range w.chans {
		w.chans[i] = make([]chan message, size)
		for j := range w.chans[i] {
			w.chans[i][j] = make(chan message, 64)
		}
	}
	w.barrier.cond = sync.NewCond(&w.barrier.mu)
	w.reduce.cond = sync.NewCond(&w.reduce.mu)
	w.reduce.vals = make([]float64, 0, size)
	return w, nil
}

// SetTimeout adjusts the blocking-operation timeout.
func (w *World) SetTimeout(d time.Duration) { w.timeout = d }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the communicator handle for one rank.
func (w *World) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("%w: %d of %d", ErrRankRange, rank, w.size)
	}
	return &Comm{w: w, rank: rank}, nil
}

// Run launches fn for every rank and waits for all to finish, returning
// the first error. This is the mpirun equivalent the lab harness calls.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		c, err := w.Comm(r)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(r int, c *Comm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, rec)
				}
			}()
			errs[r] = fn(c)
		}(r, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Finalize shuts the world down; subsequent operations fail.
func (w *World) Finalize() {
	w.mu.Lock()
	w.finalized = true
	w.mu.Unlock()
}

func (w *World) ok() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.finalized {
		return ErrFinalized
	}
	return nil
}

// Comm is one rank's endpoint in a World.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Send delivers data to rank `to` with a message tag.
func (c *Comm) Send(to, tag int, data []byte) error {
	if err := c.w.ok(); err != nil {
		return err
	}
	if to < 0 || to >= c.w.size {
		return fmt.Errorf("%w: send to %d", ErrRankRange, to)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	select {
	case c.w.chans[c.rank][to] <- message{tag: tag, data: cp}:
		return nil
	case <-time.After(c.w.timeout):
		return fmt.Errorf("%w: rank %d send to %d", ErrTimeout, c.rank, to)
	}
}

// Recv receives the next message from rank `from` with the given tag.
// Messages with other tags from the same sender are delivered in order to
// subsequent matching Recv calls (a small reorder buffer handles the
// mismatch, as real MPI does with its unexpected-message queue).
func (c *Comm) Recv(from, tag int) ([]byte, error) {
	if err := c.w.ok(); err != nil {
		return nil, err
	}
	if from < 0 || from >= c.w.size {
		return nil, fmt.Errorf("%w: recv from %d", ErrRankRange, from)
	}
	ch := c.w.chans[from][c.rank]
	deadline := time.After(c.w.timeout)
	var stash []message
	defer func() {
		// Requeue non-matching messages in order.
		for _, m := range stash {
			ch <- m
		}
	}()
	for {
		select {
		case m := <-ch:
			if m.tag == tag {
				return m.data, nil
			}
			stash = append(stash, m)
		case <-deadline:
			return nil, fmt.Errorf("%w: rank %d recv from %d tag %d", ErrTimeout, c.rank, from, tag)
		}
	}
}

// SendFloat32s sends a float32 slice.
func (c *Comm) SendFloat32s(to, tag int, xs []float32) error {
	b := make([]byte, 4*len(xs))
	for i, x := range xs {
		putU32(b[i*4:], math.Float32bits(x))
	}
	return c.Send(to, tag, b)
}

// RecvFloat32s receives a float32 slice.
func (c *Comm) RecvFloat32s(from, tag int) ([]float32, error) {
	b, err := c.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	xs := make([]float32, len(b)/4)
	for i := range xs {
		xs[i] = math.Float32frombits(getU32(b[i*4:]))
	}
	return xs, nil
}

// Barrier blocks until all ranks arrive.
func (c *Comm) Barrier() error {
	if err := c.w.ok(); err != nil {
		return err
	}
	b := &c.w.barrier
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == c.w.size {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return nil
	}
	deadline := time.Now().Add(c.w.timeout)
	for gen == b.gen {
		if time.Now().After(deadline) {
			b.mu.Unlock()
			return fmt.Errorf("%w: rank %d barrier", ErrTimeout, c.rank)
		}
		waitCondTimeout(b.cond, 10*time.Millisecond)
	}
	b.mu.Unlock()
	return nil
}

// AllreduceSum returns the sum of each rank's contribution, delivered to
// all ranks.
func (c *Comm) AllreduceSum(v float64) (float64, error) {
	if err := c.w.ok(); err != nil {
		return 0, err
	}
	r := &c.w.reduce
	r.mu.Lock()
	gen := r.gen
	r.vals = append(r.vals, v)
	r.count++
	if r.count == c.w.size {
		var sum float64
		for _, x := range r.vals {
			sum += x
		}
		r.result = sum
		r.vals = r.vals[:0]
		r.count = 0
		r.gen++
		r.cond.Broadcast()
		res := r.result
		r.mu.Unlock()
		return res, nil
	}
	deadline := time.Now().Add(c.w.timeout)
	for gen == r.gen {
		if time.Now().After(deadline) {
			r.mu.Unlock()
			return 0, fmt.Errorf("%w: rank %d allreduce", ErrTimeout, c.rank)
		}
		waitCondTimeout(r.cond, 10*time.Millisecond)
	}
	res := r.result
	r.mu.Unlock()
	return res, nil
}

// GatherFloat32s collects each rank's slice at root, concatenated in rank
// order; non-root ranks receive nil.
func (c *Comm) GatherFloat32s(root, tag int, xs []float32) ([][]float32, error) {
	if c.rank == root {
		parts := make([][]float32, c.w.size)
		parts[root] = xs
		for r := 0; r < c.w.size; r++ {
			if r == root {
				continue
			}
			p, err := c.RecvFloat32s(r, tag)
			if err != nil {
				return nil, err
			}
			parts[r] = p
		}
		return parts, nil
	}
	return nil, c.SendFloat32s(root, tag, xs)
}

// waitCondTimeout waits on cond with a wakeup tick so callers can poll
// deadlines. The caller must hold the condition's lock.
func waitCondTimeout(cond *sync.Cond, d time.Duration) {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(d):
			cond.Broadcast()
		}
	}()
	cond.Wait()
	close(done)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
