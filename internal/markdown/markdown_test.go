package markdown

import (
	"strings"
	"testing"
)

func TestHeadings(t *testing.T) {
	got := Render("# Title\n## Sub\n")
	if !strings.Contains(got, "<h1>Title</h1>") || !strings.Contains(got, "<h2>Sub</h2>") {
		t.Errorf("got %q", got)
	}
}

func TestParagraphJoining(t *testing.T) {
	got := Render("line one\nline two\n\nnext para")
	if !strings.Contains(got, "<p>line one line two</p>") {
		t.Errorf("got %q", got)
	}
	if strings.Count(got, "<p>") != 2 {
		t.Errorf("paragraph count wrong: %q", got)
	}
}

func TestCodeFence(t *testing.T) {
	got := Render("```c\nint x = a < b;\n```\n")
	if !strings.Contains(got, `<pre><code class="language-c">`) {
		t.Errorf("got %q", got)
	}
	if !strings.Contains(got, "a &lt; b") {
		t.Errorf("code not escaped: %q", got)
	}
}

func TestUnterminatedFence(t *testing.T) {
	got := Render("```\ncode here")
	if !strings.Contains(got, "code here") {
		t.Errorf("got %q", got)
	}
}

func TestInlineSpans(t *testing.T) {
	got := Render("use `vecAdd` with **bold** and *italic* and [a link](http://x.test/page)")
	for _, want := range []string{
		"<code>vecAdd</code>", "<strong>bold</strong>", "<em>italic</em>",
		`<a href="http://x.test/page">a link</a>`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestImages(t *testing.T) {
	got := Render("![tile diagram](img/tile.png)")
	if !strings.Contains(got, `<img src="img/tile.png" alt="tile diagram">`) {
		t.Errorf("got %q", got)
	}
}

func TestLists(t *testing.T) {
	got := Render("* one\n* two\n\n1. first\n2. second\n")
	if !strings.Contains(got, "<ul>") || strings.Count(got, "<li>") != 4 {
		t.Errorf("got %q", got)
	}
	if !strings.Contains(got, "<ol>") {
		t.Errorf("ordered list missing: %q", got)
	}
}

func TestBlockquote(t *testing.T) {
	got := Render("> remember __syncthreads\n> applies to all threads")
	if !strings.Contains(got, "<blockquote>") {
		t.Errorf("got %q", got)
	}
}

func TestRawHTMLEscaped(t *testing.T) {
	got := Render("<script>alert(1)</script>")
	if strings.Contains(got, "<script>") {
		t.Fatalf("raw html passed through: %q", got)
	}
	if !strings.Contains(got, "&lt;script&gt;") {
		t.Errorf("got %q", got)
	}
}

func TestLabDescriptionRenders(t *testing.T) {
	src := `# Vector Addition

Implement a kernel.

## Objectives

* learn indexing
* guard bounds

` + "```c\n__global__ void vecAdd();\n```"
	got := Render(src)
	for _, want := range []string{"<h1>", "<h2>", "<ul>", "<pre><code"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	if got := Render(""); got != "" {
		t.Errorf("empty input → %q", got)
	}
}
