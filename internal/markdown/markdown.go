// Package markdown renders the subset of Markdown that WebGPU lab
// descriptions use (§IV-E: "a file in markdown format. This description
// can include any text, images, and external links") into HTML for the
// Description view.
//
// Supported: ATX headings, paragraphs, fenced code blocks, inline code,
// bold, italics, links, images, unordered and ordered lists, and
// blockquotes. Raw HTML in the source is escaped, not passed through.
package markdown

import (
	"fmt"
	"html"
	"regexp"
	"strings"
)

var (
	linkRe  = regexp.MustCompile(`\[([^\]]*)\]\(([^)\s]+)\)`)
	imageRe = regexp.MustCompile(`!\[([^\]]*)\]\(([^)\s]+)\)`)
	boldRe  = regexp.MustCompile(`\*\*([^*]+)\*\*`)
	italRe  = regexp.MustCompile(`\*([^*]+)\*`)
	codeRe  = regexp.MustCompile("`([^`]*)`")
)

// Render converts markdown source to HTML.
func Render(src string) string {
	var out strings.Builder
	lines := strings.Split(src, "\n")
	i := 0
	var para []string

	flushPara := func() {
		if len(para) == 0 {
			return
		}
		out.WriteString("<p>")
		out.WriteString(renderInline(strings.Join(para, " ")))
		out.WriteString("</p>\n")
		para = nil
	}

	for i < len(lines) {
		line := lines[i]
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "":
			flushPara()
			i++
		case strings.HasPrefix(trimmed, "```"):
			flushPara()
			lang := strings.TrimSpace(strings.TrimPrefix(trimmed, "```"))
			i++
			var code []string
			for i < len(lines) && !strings.HasPrefix(strings.TrimSpace(lines[i]), "```") {
				code = append(code, lines[i])
				i++
			}
			if i < len(lines) {
				i++ // closing fence
			}
			if lang != "" {
				fmt.Fprintf(&out, "<pre><code class=\"language-%s\">", html.EscapeString(lang))
			} else {
				out.WriteString("<pre><code>")
			}
			out.WriteString(html.EscapeString(strings.Join(code, "\n")))
			out.WriteString("</code></pre>\n")
		case strings.HasPrefix(trimmed, "#"):
			flushPara()
			level := 0
			for level < len(trimmed) && trimmed[level] == '#' && level < 6 {
				level++
			}
			text := strings.TrimSpace(trimmed[level:])
			fmt.Fprintf(&out, "<h%d>%s</h%d>\n", level, renderInline(text), level)
			i++
		case strings.HasPrefix(trimmed, "> "):
			flushPara()
			var quote []string
			for i < len(lines) && strings.HasPrefix(strings.TrimSpace(lines[i]), "> ") {
				quote = append(quote, strings.TrimPrefix(strings.TrimSpace(lines[i]), "> "))
				i++
			}
			out.WriteString("<blockquote><p>")
			out.WriteString(renderInline(strings.Join(quote, " ")))
			out.WriteString("</p></blockquote>\n")
		case strings.HasPrefix(trimmed, "* ") || strings.HasPrefix(trimmed, "- "):
			flushPara()
			out.WriteString("<ul>\n")
			for i < len(lines) {
				t := strings.TrimSpace(lines[i])
				if !strings.HasPrefix(t, "* ") && !strings.HasPrefix(t, "- ") {
					break
				}
				fmt.Fprintf(&out, "<li>%s</li>\n", renderInline(t[2:]))
				i++
			}
			out.WriteString("</ul>\n")
		case isOrderedItem(trimmed):
			flushPara()
			out.WriteString("<ol>\n")
			for i < len(lines) && isOrderedItem(strings.TrimSpace(lines[i])) {
				t := strings.TrimSpace(lines[i])
				dot := strings.Index(t, ". ")
				fmt.Fprintf(&out, "<li>%s</li>\n", renderInline(t[dot+2:]))
				i++
			}
			out.WriteString("</ol>\n")
		default:
			para = append(para, trimmed)
			i++
		}
	}
	flushPara()
	return out.String()
}

func isOrderedItem(s string) bool {
	dot := strings.Index(s, ". ")
	if dot <= 0 {
		return false
	}
	for _, c := range s[:dot] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// renderInline escapes HTML then applies inline markdown spans.
func renderInline(s string) string {
	// Protect code spans from further formatting by rendering them first
	// on the escaped text.
	s = html.EscapeString(s)
	s = codeRe.ReplaceAllString(s, "<code>$1</code>")
	s = imageRe.ReplaceAllString(s, `<img src="$2" alt="$1">`)
	s = linkRe.ReplaceAllString(s, `<a href="$2">$1</a>`)
	s = boldRe.ReplaceAllString(s, "<strong>$1</strong>")
	s = italRe.ReplaceAllString(s, "<em>$1</em>")
	return s
}
