package sandbox

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestBlacklistRejectsAsm(t *testing.T) {
	s := NewScanner(nil, ScanRaw)
	src := `__global__ void k(float *a) { asm("nop"); }`
	vs := s.Scan(src)
	if len(vs) != 1 || vs[0].Word != "asm" {
		t.Fatalf("violations = %v", vs)
	}
	if err := s.Check(src); !errors.Is(err, ErrBlacklisted) {
		t.Errorf("Check = %v", err)
	}
}

func TestBlacklistCleanSourcePasses(t *testing.T) {
	s := NewScanner(nil, ScanRaw)
	src := `__global__ void vecAdd(float *a, float *b, float *c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) c[i] = a[i] + b[i];
}`
	if err := s.Check(src); err != nil {
		t.Errorf("clean source rejected: %v", err)
	}
}

// The paper: "This method rejects code which contains the black listed
// functions even within comments" (raw mode), which preprocessed mode
// fixes — the exact ablation of experiment D5.
func TestRawModeFalsePositiveInComment(t *testing.T) {
	src := "// do not use asm here\n__global__ void k(float *a) { a[0] = 1.0f; }"
	raw := NewScanner(nil, ScanRaw)
	if err := raw.Check(src); !errors.Is(err, ErrBlacklisted) {
		t.Errorf("raw mode should flag commented asm: %v", err)
	}
	pp := NewScanner(nil, ScanPreprocessed)
	if err := pp.Check(src); err != nil {
		t.Errorf("preprocessed mode flagged a comment: %v", err)
	}
}

func TestBlacklistWordBoundaries(t *testing.T) {
	s := NewScanner(nil, ScanRaw)
	// "asmx" and "myasm" must not match "asm"; "systematic" not "system".
	if vs := s.Scan("int asmx; int myasm; float systematic;"); len(vs) != 0 {
		t.Errorf("substring matches: %v", vs)
	}
}

func TestBlacklistPositions(t *testing.T) {
	s := NewScanner(nil, ScanRaw)
	vs := s.Scan("int a;\n  system(0);")
	if len(vs) != 1 || vs[0].Line != 2 || vs[0].Col != 3 {
		t.Errorf("violation = %+v", vs)
	}
}

func TestCustomBlacklist(t *testing.T) {
	s := NewScanner([]string{"printf"}, ScanRaw)
	if len(s.Scan("printf(x); asm();")) != 1 {
		t.Error("custom list not honoured")
	}
}

func TestPolicyAllowDeny(t *testing.T) {
	p := DefaultPolicy()
	if err := p.Check("write"); err != nil {
		t.Errorf("write denied: %v", err)
	}
	if err := p.Check("execve"); !errors.Is(err, ErrSyscallDenied) {
		t.Errorf("execve allowed: %v", err)
	}
	p.Allow("execve")
	if err := p.Check("execve"); err != nil {
		t.Errorf("allowed call denied: %v", err)
	}
}

func TestMonitorKillDisposition(t *testing.T) {
	m := NewMonitor(NewPolicy([]string{"read"}, ActionKill))
	if err := m.Call("read"); err != nil {
		t.Fatal(err)
	}
	if err := m.Call("socket"); !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("socket = %v", err)
	}
	if !m.Killed() {
		t.Fatal("job not killed")
	}
	// After kill, even whitelisted calls fail.
	if err := m.Call("read"); err == nil {
		t.Fatal("call after kill succeeded")
	}
	calls, denied := m.Stats()
	if calls["read"] != 1 || calls["socket"] != 1 || denied["socket"] != 1 {
		t.Errorf("stats: calls=%v denied=%v", calls, denied)
	}
}

func TestMonitorErrnoDisposition(t *testing.T) {
	m := NewMonitor(NewPolicy([]string{"read"}, ActionErrno))
	if err := m.Call("socket"); !errors.Is(err, ErrSyscallDenied) {
		t.Fatal("socket allowed")
	}
	if m.Killed() {
		t.Fatal("errno disposition killed the job")
	}
	if err := m.Call("read"); err != nil {
		t.Fatalf("read after errno-denied call: %v", err)
	}
}

func TestRateLimiter(t *testing.T) {
	rl := NewRateLimiter(10 * time.Second)
	now := time.Unix(1000, 0)
	rl.SetClock(func() time.Time { return now })
	if err := rl.Admit("alice"); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if err := rl.Admit("alice"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("immediate resubmit: %v", err)
	}
	// A different user is unaffected.
	if err := rl.Admit("bob"); err != nil {
		t.Fatalf("other user: %v", err)
	}
	now = now.Add(11 * time.Second)
	if err := rl.Admit("alice"); err != nil {
		t.Fatalf("after interval: %v", err)
	}
}

func TestLimitsClampOutput(t *testing.T) {
	l := Limits{MaxOutputBytes: 10}
	out, truncated := l.ClampOutput("0123456789ABCDEF")
	if !truncated || !strings.Contains(out, "truncated") {
		t.Errorf("out = %q truncated = %v", out, truncated)
	}
	out, truncated = l.ClampOutput("short")
	if truncated || out != "short" {
		t.Errorf("short output mangled: %q %v", out, truncated)
	}
}

func TestWorkspaceIsolation(t *testing.T) {
	wm := NewWorkspaceManager()
	ws := wm.Create("jobuser1")
	if err := ws.Write("jobuser1", "solution.cu", []byte("code")); err != nil {
		t.Fatal(err)
	}
	got, err := ws.Read("jobuser1", "solution.cu")
	if err != nil || string(got) != "code" {
		t.Fatalf("read = %q, %v", got, err)
	}
	// Another user may not touch it.
	if err := ws.Write("jobuser2", "x", nil); !errors.Is(err, ErrNotOwner) {
		t.Errorf("cross-user write = %v", err)
	}
	if _, err := ws.Read("jobuser2", "solution.cu"); !errors.Is(err, ErrNotOwner) {
		t.Errorf("cross-user read = %v", err)
	}
	// Paths may not escape.
	if err := ws.Write("jobuser1", "../etc/passwd", nil); !errors.Is(err, ErrNotOwner) {
		t.Errorf("path escape = %v", err)
	}
	if err := ws.Write("jobuser1", "/abs", nil); !errors.Is(err, ErrNotOwner) {
		t.Errorf("absolute path = %v", err)
	}
}

func TestWorkspaceLifecycle(t *testing.T) {
	wm := NewWorkspaceManager()
	a := wm.Create("u1")
	b := wm.Create("u1")
	if a.ID == b.ID {
		t.Error("workspace ids collide")
	}
	if wm.LiveCount() != 2 {
		t.Errorf("live = %d", wm.LiveCount())
	}
	wm.Destroy(a)
	if wm.LiveCount() != 1 {
		t.Errorf("live after destroy = %d", wm.LiveCount())
	}
	if err := a.Write("u1", "f", nil); err == nil {
		t.Error("write to destroyed workspace succeeded")
	}
}

func TestDefaultLimitsSane(t *testing.T) {
	l := DefaultLimits()
	if l.MaxSteps <= 0 || l.RunTimeout <= 0 || l.SubmitInterval <= 0 {
		t.Errorf("defaults: %+v", l)
	}
}
