// Package sandbox implements WebGPU's security model (§III-D): a
// compile-time blacklist of dangerous constructs scanned over student
// source, a runtime whitelist of permitted system calls (the seccomp-bpf
// analogue, instructor-configurable per lab), per-job resource limits, and
// per-job isolated workspaces owned by an unprivileged user (the setuid
// analogue).
package sandbox

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"webgpu/internal/minicuda"
)

// Errors.
var (
	ErrBlacklisted   = errors.New("sandbox: source contains blacklisted construct")
	ErrSyscallDenied = errors.New("sandbox: system call not in whitelist")
	ErrRateLimited   = errors.New("sandbox: submission rate limit exceeded")
	ErrOutputLimit   = errors.New("sandbox: output size limit exceeded")
	ErrNotOwner      = errors.New("sandbox: workspace access by wrong user")
)

// ---- Compile-time blacklist -------------------------------------------------

// ScanMode selects whether the blacklist scan runs on the raw source text
// or on the preprocessed (comment-stripped) text. The paper notes the raw
// scan "rejects code which contains the black listed functions even within
// comments"; preprocessed mode avoids those false positives.
type ScanMode int

// Scan modes.
const (
	ScanRaw ScanMode = iota
	ScanPreprocessed
)

// DefaultBlacklist is the construct list WebGPU ships with. `asm` is the
// example the paper gives (inline assembly can escape any sandbox); the
// rest close the common escape hatches of a C-family toolchain.
var DefaultBlacklist = []string{
	"asm", "__asm", "__asm__",
	"system", "exec", "execve", "execl", "popen", "fork", "vfork", "clone",
	"fopen", "open", "unlink", "remove", "chmod", "chown",
	"socket", "connect", "bind", "listen", "accept",
	"dlopen", "dlsym", "mmap", "mprotect", "syscall", "ptrace",
	"setuid", "setgid", "environ", "getenv", "setenv",
}

// Violation is one blacklist hit.
type Violation struct {
	Word string
	Line int
	Col  int
}

func (v Violation) String() string {
	return fmt.Sprintf("%d:%d: use of blacklisted identifier %q", v.Line, v.Col, v.Word)
}

// Scanner checks source against a blacklist.
type Scanner struct {
	words map[string]bool
	mode  ScanMode
}

// NewScanner builds a scanner over the given blacklist (nil uses
// DefaultBlacklist).
func NewScanner(words []string, mode ScanMode) *Scanner {
	if words == nil {
		words = DefaultBlacklist
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return &Scanner{words: m, mode: mode}
}

// Scan returns all blacklist violations in the source. In ScanRaw mode
// identifiers inside comments are matched too (the paper's false-positive
// behaviour); in ScanPreprocessed mode comments are stripped first.
func (s *Scanner) Scan(src string) []Violation {
	text := src
	if s.mode == ScanPreprocessed {
		text = minicuda.StripComments(src)
	}
	var out []Violation
	line, col := 1, 1
	i := 0
	for i < len(text) {
		c := text[i]
		if c == '\n' {
			line++
			col = 1
			i++
			continue
		}
		if isIdentStart(c) {
			j := i
			for j < len(text) && isIdentChar(text[j]) {
				j++
			}
			word := text[i:j]
			if s.words[word] {
				out = append(out, Violation{Word: word, Line: line, Col: col})
			}
			col += j - i
			i = j
			continue
		}
		col++
		i++
	}
	return out
}

// Check returns ErrBlacklisted (wrapped with the first violation) when the
// source fails the scan.
func (s *Scanner) Check(src string) error {
	if vs := s.Scan(src); len(vs) > 0 {
		return fmt.Errorf("%w: %s", ErrBlacklisted, vs[0])
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// ---- Runtime syscall whitelist ------------------------------------------------

// Action is what the policy does on a non-whitelisted call.
type Action int

// Policy actions, mirroring seccomp's SECCOMP_RET_* dispositions.
const (
	ActionKill  Action = iota // terminate the job
	ActionErrno               // fail the call with EPERM but continue
)

// Policy is the per-lab syscall whitelist the instructor provides
// (§III-D: "The whitelist is provided by the instructor on a per lab
// basis").
type Policy struct {
	Allowed map[string]bool
	OnDeny  Action
}

// DefaultPolicy permits the calls the lab harness itself needs.
func DefaultPolicy() *Policy {
	return NewPolicy([]string{
		"read", "write", "close", "fstat", "mmap_anon", "brk",
		"exit", "exit_group", "clock_gettime", "futex", "rt_sigreturn",
	}, ActionKill)
}

// NewPolicy builds a policy from an allow list.
func NewPolicy(allowed []string, onDeny Action) *Policy {
	m := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		m[a] = true
	}
	return &Policy{Allowed: m, OnDeny: onDeny}
}

// Allow adds a call to the whitelist.
func (p *Policy) Allow(call string) { p.Allowed[call] = true }

// Check evaluates one call. A denied call returns ErrSyscallDenied; the
// caller consults OnDeny to decide whether the job dies (Kill) or the call
// merely fails (Errno).
func (p *Policy) Check(call string) error {
	if p.Allowed[call] {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrSyscallDenied, call)
}

// Monitor wraps a policy and records the calls a job attempted, for the
// administrator dashboard.
type Monitor struct {
	policy *Policy
	mu     sync.Mutex
	calls  map[string]int
	denied map[string]int
	killed bool
}

// NewMonitor wraps a policy.
func NewMonitor(p *Policy) *Monitor {
	return &Monitor{policy: p, calls: map[string]int{}, denied: map[string]int{}}
}

// Call evaluates a syscall under the policy, recording it. After a Kill
// disposition fires, every subsequent call fails.
func (m *Monitor) Call(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return fmt.Errorf("%w: job killed", ErrSyscallDenied)
	}
	m.calls[name]++
	if err := m.policy.Check(name); err != nil {
		m.denied[name]++
		if m.policy.OnDeny == ActionKill {
			m.killed = true
		}
		return err
	}
	return nil
}

// Killed reports whether the job was killed by the policy.
func (m *Monitor) Killed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.killed
}

// Stats returns copies of the attempted and denied call counts.
func (m *Monitor) Stats() (calls, denied map[string]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	calls = make(map[string]int, len(m.calls))
	denied = make(map[string]int, len(m.denied))
	for k, v := range m.calls {
		calls[k] = v
	}
	for k, v := range m.denied {
		denied[k] = v
	}
	return calls, denied
}

// ---- Resource limits ------------------------------------------------------------

// Limits are the per-lab execution bounds (§III-C: "time limits are placed
// on the submission rate and on the duration of the compilation and
// execution of user code. The time limits can be adjusted on a per lab
// basis").
type Limits struct {
	CompileTimeout time.Duration
	RunTimeout     time.Duration
	MaxSteps       int64 // per-thread interpreter budget (the run timeout's deterministic form)
	MaxOutputBytes int
	MaxMemoryBytes int
	SubmitInterval time.Duration // minimum time between submissions per user
}

// DefaultLimits returns the platform defaults.
func DefaultLimits() Limits {
	return Limits{
		CompileTimeout: 10 * time.Second,
		RunTimeout:     30 * time.Second,
		MaxSteps:       4 << 20,
		MaxOutputBytes: 1 << 20,
		MaxMemoryBytes: 1 << 30,
		SubmitInterval: 10 * time.Second,
	}
}

// ClampOutput truncates job output to the limit, appending a marker, and
// reports whether truncation happened.
func (l Limits) ClampOutput(out string) (string, bool) {
	if l.MaxOutputBytes <= 0 || len(out) <= l.MaxOutputBytes {
		return out, false
	}
	return out[:l.MaxOutputBytes] + "\n[output truncated]", true
}

// RateLimiter enforces the per-user submission interval.
type RateLimiter struct {
	interval time.Duration
	mu       sync.Mutex
	last     map[string]time.Time
	clock    func() time.Time
}

// NewRateLimiter creates a limiter with the given minimum interval.
func NewRateLimiter(interval time.Duration) *RateLimiter {
	return &RateLimiter{interval: interval, last: map[string]time.Time{}, clock: time.Now}
}

// SetClock overrides the time source (tests).
func (r *RateLimiter) SetClock(clock func() time.Time) { r.clock = clock }

// Admit records a submission attempt by user; it returns ErrRateLimited
// (with the remaining wait) if the user submitted too recently.
func (r *RateLimiter) Admit(user string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	if last, ok := r.last[user]; ok {
		if wait := r.interval - now.Sub(last); wait > 0 {
			return fmt.Errorf("%w: retry in %v", ErrRateLimited, wait.Round(time.Second))
		}
	}
	r.last[user] = now
	return nil
}

// ---- Per-job workspaces -----------------------------------------------------------

// Workspace models the unique temporary directory each compilation runs
// in, writable only by the unprivileged job user (§III-D setuid model).
type Workspace struct {
	ID    string
	Owner string
	mu    sync.Mutex
	files map[string][]byte
	freed bool
}

// WorkspaceManager creates and tears down per-job workspaces.
type WorkspaceManager struct {
	mu     sync.Mutex
	nextID int
	live   map[string]*Workspace
}

// NewWorkspaceManager creates an empty manager.
func NewWorkspaceManager() *WorkspaceManager {
	return &WorkspaceManager{live: map[string]*Workspace{}}
}

// Create makes a fresh workspace owned by the given (unprivileged) user.
func (wm *WorkspaceManager) Create(owner string) *Workspace {
	wm.mu.Lock()
	defer wm.mu.Unlock()
	wm.nextID++
	ws := &Workspace{
		ID:    fmt.Sprintf("/tmp/webgpu-job-%06d", wm.nextID),
		Owner: owner,
		files: map[string][]byte{},
	}
	wm.live[ws.ID] = ws
	return ws
}

// Destroy removes a workspace and all its files.
func (wm *WorkspaceManager) Destroy(ws *Workspace) {
	wm.mu.Lock()
	delete(wm.live, ws.ID)
	wm.mu.Unlock()
	ws.mu.Lock()
	ws.freed = true
	ws.files = nil
	ws.mu.Unlock()
}

// LiveCount reports how many workspaces exist (leak detection between
// jobs).
func (wm *WorkspaceManager) LiveCount() int {
	wm.mu.Lock()
	defer wm.mu.Unlock()
	return len(wm.live)
}

// Write stores a file; only the owner may write, and paths may not escape
// the workspace.
func (ws *Workspace) Write(user, name string, data []byte) error {
	if user != ws.Owner {
		return fmt.Errorf("%w: %s writing to %s's workspace", ErrNotOwner, user, ws.Owner)
	}
	if strings.Contains(name, "..") || strings.HasPrefix(name, "/") {
		return fmt.Errorf("%w: path %q escapes the workspace", ErrNotOwner, name)
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.freed {
		return errors.New("sandbox: workspace destroyed")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	ws.files[name] = cp
	return nil
}

// Read retrieves a file; only the owner may read.
func (ws *Workspace) Read(user, name string) ([]byte, error) {
	if user != ws.Owner {
		return nil, fmt.Errorf("%w: %s reading %s's workspace", ErrNotOwner, user, ws.Owner)
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	data, ok := ws.files[name]
	if !ok {
		return nil, fmt.Errorf("sandbox: no such file %q", name)
	}
	return data, nil
}
