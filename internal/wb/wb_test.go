package wb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestVectorRoundTrip(t *testing.T) {
	f := func(xs []float32) bool {
		for i, x := range xs {
			if x != x { // drop NaN: text format round-trips numbers only
				xs[i] = 0
			}
		}
		got, err := ParseVector(VectorBytes(xs))
		if err != nil {
			return false
		}
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntVectorRoundTrip(t *testing.T) {
	f := func(xs []int32) bool {
		got, err := ParseIntVector(IntVectorBytes(xs))
		if err != nil || len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	m := []float32{1, 2.5, -3, 0, 1e-5, 7}
	got, r, c, err := ParseMatrix(MatrixBytes(m, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 || c != 3 {
		t.Errorf("dims = %dx%d", r, c)
	}
	for i := range m {
		if got[i] != m[i] {
			t.Errorf("elem %d = %v, want %v", i, got[i], m[i])
		}
	}
}

func TestMatrixSizeMismatch(t *testing.T) {
	var sb strings.Builder
	if err := ExportMatrix(&sb, []float32{1, 2, 3}, 2, 2); err == nil {
		t.Error("size mismatch not detected")
	}
}

func TestImageRoundTrip(t *testing.T) {
	pix := make([]byte, 16*9)
	for i := range pix {
		pix[i] = byte(i * 3)
	}
	got, w, h, err := ParseImage(ImageBytes(pix, 16, 9))
	if err != nil {
		t.Fatal(err)
	}
	if w != 16 || h != 9 {
		t.Errorf("dims = %dx%d", w, h)
	}
	for i := range pix {
		if got[i] != pix[i] {
			t.Fatalf("pixel %d = %d, want %d", i, got[i], pix[i])
		}
	}
}

func TestImageBadMaxval(t *testing.T) {
	if _, _, _, err := ParseImage([]byte("2 2 128\n0 0\n0 0\n")); err == nil {
		t.Error("bad maxval accepted")
	}
}

func TestCSRRoundTripAndMulVec(t *testing.T) {
	m := &CSR{
		Rows: 3, Cols: 3,
		RowPtr: []int32{0, 2, 3, 5},
		ColIdx: []int32{0, 2, 1, 0, 2},
		Vals:   []float32{1, 2, 3, 4, 5},
	}
	got, err := ParseCSR(CSRBytes(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 3 || len(got.Vals) != 5 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	y := got.MulVec([]float32{1, 2, 3})
	want := []float32{1*1 + 2*3, 3 * 2, 4*1 + 5*3}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestImportVectorErrors(t *testing.T) {
	cases := []string{"", "abc", "3\n1.0 2.0", "-1"}
	for _, c := range cases {
		if _, err := ParseVector([]byte(c)); err == nil {
			t.Errorf("ParseVector(%q) succeeded", c)
		}
	}
}

func TestCompareFloats(t *testing.T) {
	want := []float32{1, 2, 3}
	if r := CompareFloats([]float32{1, 2, 3}, want, DefaultTolerance); !r.Correct {
		t.Errorf("exact match flagged wrong: %+v", r)
	}
	if r := CompareFloats([]float32{1, 2.0001, 3}, want, DefaultTolerance); !r.Correct {
		t.Errorf("within tolerance flagged wrong: %+v", r)
	}
	r := CompareFloats([]float32{1, 5, 9}, want, DefaultTolerance)
	if r.Correct || r.Mismatches != 2 || r.FirstBad != 1 {
		t.Errorf("mismatch detection: %+v", r)
	}
	if !strings.Contains(r.Message, "element 1") {
		t.Errorf("message = %q", r.Message)
	}
	if r := CompareFloats([]float32{1, 2}, want, DefaultTolerance); r.Correct {
		t.Error("length mismatch accepted")
	}
	nan := float32(0)
	nan /= nan
	if r := CompareFloats([]float32{nan, 2, 3}, want, DefaultTolerance); r.Correct {
		t.Error("NaN accepted")
	}
}

func TestCompareFloatsRelativeTolerance(t *testing.T) {
	// Large values get proportionally more slack.
	want := []float32{1e6}
	if r := CompareFloats([]float32{1e6 + 5000}, want, DefaultTolerance); !r.Correct {
		t.Errorf("relative tolerance not applied: %+v", r)
	}
	if r := CompareFloats([]float32{1e6 + 50000}, want, DefaultTolerance); r.Correct {
		t.Error("far-off large value accepted")
	}
}

func TestCompareInts(t *testing.T) {
	if r := CompareInts([]int32{1, 2}, []int32{1, 2}); !r.Correct {
		t.Error("exact ints flagged wrong")
	}
	if r := CompareInts([]int32{1, 3}, []int32{1, 2}); r.Correct {
		t.Error("wrong ints accepted")
	}
}

func TestCompareBytesSlack(t *testing.T) {
	if r := CompareBytes([]byte{100}, []byte{101}, 1); !r.Correct {
		t.Error("within-slack byte flagged wrong")
	}
	if r := CompareBytes([]byte{100}, []byte{103}, 1); r.Correct {
		t.Error("out-of-slack byte accepted")
	}
}

func TestDatasetInput(t *testing.T) {
	d := &Dataset{Inputs: []File{{Name: "input0.raw", Data: []byte("x")}}}
	if got := d.Input("input0.raw"); string(got) != "x" {
		t.Errorf("Input = %q", got)
	}
	if got := d.Input("missing"); got != nil {
		t.Errorf("missing input = %q", got)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	now := time.Unix(0, 0)
	tr.SetClock(func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	})
	tr.Logf(LevelTrace, "The input length is %d", 64)
	tr.Start(TimeGPU, "Allocating GPU memory")
	tr.Stop(TimeGPU, "Allocating GPU memory")
	tr.RecordSpan(TimeCompute, "Performing CUDA computation", 5*time.Millisecond)
	tr.Stop(TimeCopy, "never started") // lenient zero-length span

	logs := tr.Logs()
	if len(logs) != 1 || !strings.Contains(logs[0].Message, "64") {
		t.Errorf("logs = %+v", logs)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Elapsed <= 0 {
		t.Errorf("span elapsed = %v", spans[0].Elapsed)
	}
	if spans[2].Elapsed != 0 {
		t.Errorf("unstarted span elapsed = %v", spans[2].Elapsed)
	}
	out := tr.String()
	for _, want := range []string{"[TRACE]", "input length", "[TIME] GPU", "Performing CUDA computation"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			for j := 0; j < 100; j++ {
				tr.Logf(LevelInfo, "goroutine %d iter %d", i, j)
			}
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := len(tr.Logs()); got != 800 {
		t.Errorf("logs = %d, want 800", got)
	}
}

func TestLargeVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float32, 10000)
	for i := range xs {
		xs[i] = rng.Float32()*200 - 100
	}
	got, err := ParseVector(VectorBytes(xs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("elem %d differs", i)
		}
	}
}
