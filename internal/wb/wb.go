// Package wb is the Go equivalent of libwb, the WebGPU support library
// (https://github.com/abduld/libwb) that course lab harnesses link against.
// It provides the dataset file formats instructors ship with labs, import
// and export helpers, the wbTime/wbLog instrumentation students see in
// their lab output, and tolerance-based solution checking.
package wb

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// File is a named dataset file (input or expected output).
type File struct {
	Name string
	Data []byte
}

// Dataset is one test dataset of a lab: instructor-provided inputs plus the
// expected output used for correctness checking (§IV-E).
type Dataset struct {
	ID       int
	Name     string
	Inputs   []File
	Expected File
}

// Input returns the named input file's bytes, or nil.
func (d *Dataset) Input(name string) []byte {
	for _, f := range d.Inputs {
		if f.Name == name {
			return f.Data
		}
	}
	return nil
}

// ---- Raw text formats --------------------------------------------------------

// ExportVector writes a float vector in the .raw format: a count line then
// one value per line.
func ExportVector(w io.Writer, xs []float32) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(xs))
	for _, x := range xs {
		fmt.Fprintf(bw, "%g\n", x)
	}
	return bw.Flush()
}

// ImportVector reads a .raw float vector.
func ImportVector(r io.Reader) ([]float32, error) {
	sc := newScanner(r)
	n, err := sc.int()
	if err != nil {
		return nil, fmt.Errorf("wb: vector header: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("wb: negative vector length %d", n)
	}
	xs := make([]float32, n)
	for i := range xs {
		f, err := sc.float()
		if err != nil {
			return nil, fmt.Errorf("wb: vector element %d: %w", i, err)
		}
		xs[i] = f
	}
	return xs, nil
}

// ExportMatrix writes a row-major float matrix with a "rows cols" header.
func ExportMatrix(w io.Writer, m []float32, rows, cols int) error {
	if len(m) != rows*cols {
		return fmt.Errorf("wb: matrix data %d != %d x %d", len(m), rows, cols)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%g", m[r*cols+c])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ImportMatrix reads a row-major float matrix, returning data and its
// dimensions.
func ImportMatrix(r io.Reader) ([]float32, int, int, error) {
	sc := newScanner(r)
	rows, err := sc.int()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wb: matrix rows: %w", err)
	}
	cols, err := sc.int()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wb: matrix cols: %w", err)
	}
	if rows < 0 || cols < 0 {
		return nil, 0, 0, fmt.Errorf("wb: negative matrix dims %dx%d", rows, cols)
	}
	m := make([]float32, rows*cols)
	for i := range m {
		f, err := sc.float()
		if err != nil {
			return nil, 0, 0, fmt.Errorf("wb: matrix element %d: %w", i, err)
		}
		m[i] = f
	}
	return m, rows, cols, nil
}

// ExportImage writes a grayscale 8-bit image in a PPM-like text format:
// "width height 255" then one pixel value per whitespace-separated token.
func ExportImage(w io.Writer, pix []byte, width, height int) error {
	if len(pix) != width*height {
		return fmt.Errorf("wb: image data %d != %d x %d", len(pix), width, height)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d 255\n", width, height)
	for i, p := range pix {
		if i > 0 {
			if i%width == 0 {
				bw.WriteByte('\n')
			} else {
				bw.WriteByte(' ')
			}
		}
		fmt.Fprintf(bw, "%d", p)
	}
	bw.WriteByte('\n')
	return bw.Flush()
}

// ImportImage reads the grayscale image format.
func ImportImage(r io.Reader) ([]byte, int, int, error) {
	sc := newScanner(r)
	w, err := sc.int()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wb: image width: %w", err)
	}
	h, err := sc.int()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wb: image height: %w", err)
	}
	maxV, err := sc.int()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wb: image maxval: %w", err)
	}
	if maxV != 255 {
		return nil, 0, 0, fmt.Errorf("wb: unsupported image maxval %d", maxV)
	}
	pix := make([]byte, w*h)
	for i := range pix {
		v, err := sc.int()
		if err != nil {
			return nil, 0, 0, fmt.Errorf("wb: pixel %d: %w", i, err)
		}
		if v < 0 || v > 255 {
			return nil, 0, 0, fmt.Errorf("wb: pixel %d out of range: %d", i, v)
		}
		pix[i] = byte(v)
	}
	return pix, w, h, nil
}

// ExportIntVector writes an int32 vector (count header then values).
func ExportIntVector(w io.Writer, xs []int32) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(xs))
	for _, x := range xs {
		fmt.Fprintf(bw, "%d\n", x)
	}
	return bw.Flush()
}

// ImportIntVector reads an int32 vector.
func ImportIntVector(r io.Reader) ([]int32, error) {
	sc := newScanner(r)
	n, err := sc.int()
	if err != nil {
		return nil, fmt.Errorf("wb: int vector header: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("wb: negative vector length %d", n)
	}
	xs := make([]int32, n)
	for i := range xs {
		v, err := sc.int()
		if err != nil {
			return nil, fmt.Errorf("wb: int element %d: %w", i, err)
		}
		xs[i] = int32(v)
	}
	return xs, nil
}

// CSR is a sparse matrix in compressed-sparse-row form, as used by the
// SPMV lab.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // len Rows+1
	ColIdx     []int32 // len nnz
	Vals       []float32
}

// ExportCSR writes the CSR text format: "rows cols nnz" then the three
// arrays, one per line group.
func ExportCSR(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, len(m.Vals))
	for _, v := range m.RowPtr {
		fmt.Fprintf(bw, "%d ", v)
	}
	bw.WriteByte('\n')
	for _, v := range m.ColIdx {
		fmt.Fprintf(bw, "%d ", v)
	}
	bw.WriteByte('\n')
	for _, v := range m.Vals {
		fmt.Fprintf(bw, "%g ", v)
	}
	bw.WriteByte('\n')
	return bw.Flush()
}

// ImportCSR reads the CSR text format.
func ImportCSR(r io.Reader) (*CSR, error) {
	sc := newScanner(r)
	rows, err := sc.int()
	if err != nil {
		return nil, fmt.Errorf("wb: csr rows: %w", err)
	}
	cols, err := sc.int()
	if err != nil {
		return nil, fmt.Errorf("wb: csr cols: %w", err)
	}
	nnz, err := sc.int()
	if err != nil {
		return nil, fmt.Errorf("wb: csr nnz: %w", err)
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("wb: invalid csr header %d %d %d", rows, cols, nnz)
	}
	m := &CSR{Rows: rows, Cols: cols,
		RowPtr: make([]int32, rows+1), ColIdx: make([]int32, nnz), Vals: make([]float32, nnz)}
	for i := range m.RowPtr {
		v, err := sc.int()
		if err != nil {
			return nil, fmt.Errorf("wb: csr rowptr %d: %w", i, err)
		}
		m.RowPtr[i] = int32(v)
	}
	for i := range m.ColIdx {
		v, err := sc.int()
		if err != nil {
			return nil, fmt.Errorf("wb: csr colidx %d: %w", i, err)
		}
		m.ColIdx[i] = int32(v)
	}
	for i := range m.Vals {
		v, err := sc.float()
		if err != nil {
			return nil, fmt.Errorf("wb: csr val %d: %w", i, err)
		}
		m.Vals[i] = v
	}
	return m, nil
}

// MulVec multiplies the CSR matrix by x (the SPMV oracle).
func (m *CSR) MulVec(x []float32) []float32 {
	y := make([]float32, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var acc float32
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			acc += m.Vals[i] * x[m.ColIdx[i]]
		}
		y[r] = acc
	}
	return y
}

// ---- Token scanner -------------------------------------------------------------

type scanner struct {
	sc *bufio.Scanner
}

func newScanner(r io.Reader) *scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	sc.Split(bufio.ScanWords)
	return &scanner{sc: sc}
}

func (s *scanner) word() (string, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	return s.sc.Text(), nil
}

func (s *scanner) int() (int, error) {
	w, err := s.word()
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(w)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", w)
	}
	return v, nil
}

func (s *scanner) float() (float32, error) {
	w, err := s.word()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(w, 32)
	if err != nil {
		return 0, fmt.Errorf("bad float %q", w)
	}
	return float32(v), nil
}

// ---- Solution checking ----------------------------------------------------------

// DefaultTolerance mirrors libwb's wbSolution threshold.
const DefaultTolerance = 1e-2

// CheckResult reports the outcome of comparing a program's output to the
// expected dataset.
type CheckResult struct {
	Correct    bool
	Total      int
	Mismatches int
	FirstBad   int    // index of the first mismatch, -1 if none
	Message    string // student-facing explanation
}

// CompareFloats checks got against want element-wise with a combined
// absolute/relative tolerance.
func CompareFloats(got, want []float32, tol float64) CheckResult {
	if len(got) != len(want) {
		return CheckResult{
			Correct:  false,
			Total:    len(want),
			FirstBad: -1,
			Message: fmt.Sprintf("The solution has %d elements but the expected output has %d.",
				len(got), len(want)),
		}
	}
	res := CheckResult{Correct: true, Total: len(want), FirstBad: -1}
	for i := range want {
		a, b := float64(got[i]), float64(want[i])
		if math.IsNaN(a) || math.Abs(a-b) > tol+tol*math.Abs(b) {
			res.Mismatches++
			if res.FirstBad < 0 {
				res.FirstBad = i
				res.Message = fmt.Sprintf(
					"The solution did not match the expected results at element %d: got %g, expected %g.",
					i, got[i], want[i])
			}
			res.Correct = false
		}
	}
	if res.Correct {
		res.Message = "Solution is correct."
	}
	return res
}

// CompareInts checks int32 outputs exactly.
func CompareInts(got, want []int32) CheckResult {
	if len(got) != len(want) {
		return CheckResult{
			Correct:  false,
			Total:    len(want),
			FirstBad: -1,
			Message: fmt.Sprintf("The solution has %d elements but the expected output has %d.",
				len(got), len(want)),
		}
	}
	res := CheckResult{Correct: true, Total: len(want), FirstBad: -1}
	for i := range want {
		if got[i] != want[i] {
			res.Mismatches++
			if res.FirstBad < 0 {
				res.FirstBad = i
				res.Message = fmt.Sprintf(
					"The solution did not match the expected results at element %d: got %d, expected %d.",
					i, got[i], want[i])
			}
			res.Correct = false
		}
	}
	if res.Correct {
		res.Message = "Solution is correct."
	}
	return res
}

// CompareBytes checks byte outputs (images) with a +-1 quantization slack,
// as image equalization results may round differently.
func CompareBytes(got, want []byte, slack int) CheckResult {
	if len(got) != len(want) {
		return CheckResult{
			Correct:  false,
			Total:    len(want),
			FirstBad: -1,
			Message: fmt.Sprintf("The solution has %d elements but the expected output has %d.",
				len(got), len(want)),
		}
	}
	res := CheckResult{Correct: true, Total: len(want), FirstBad: -1}
	for i := range want {
		d := int(got[i]) - int(want[i])
		if d < -slack || d > slack {
			res.Mismatches++
			if res.FirstBad < 0 {
				res.FirstBad = i
				res.Message = fmt.Sprintf(
					"The solution did not match the expected results at element %d: got %d, expected %d.",
					i, got[i], want[i])
			}
			res.Correct = false
		}
	}
	if res.Correct {
		res.Message = "Solution is correct."
	}
	return res
}

// ParseVector is a convenience wrapper over ImportVector for in-memory data.
func ParseVector(data []byte) ([]float32, error) {
	return ImportVector(strings.NewReader(string(data)))
}

// ParseIntVector parses an in-memory int vector file.
func ParseIntVector(data []byte) ([]int32, error) {
	return ImportIntVector(strings.NewReader(string(data)))
}

// ParseMatrix parses an in-memory matrix file.
func ParseMatrix(data []byte) ([]float32, int, int, error) {
	return ImportMatrix(strings.NewReader(string(data)))
}

// ParseImage parses an in-memory image file.
func ParseImage(data []byte) ([]byte, int, int, error) {
	return ImportImage(strings.NewReader(string(data)))
}

// ParseCSR parses an in-memory CSR file.
func ParseCSR(data []byte) (*CSR, error) {
	return ImportCSR(strings.NewReader(string(data)))
}

// VectorBytes renders a float vector to the .raw format in memory.
func VectorBytes(xs []float32) []byte {
	var sb strings.Builder
	_ = ExportVector(&sb, xs)
	return []byte(sb.String())
}

// IntVectorBytes renders an int vector to the .raw format in memory.
func IntVectorBytes(xs []int32) []byte {
	var sb strings.Builder
	_ = ExportIntVector(&sb, xs)
	return []byte(sb.String())
}

// MatrixBytes renders a matrix to the .raw format in memory.
func MatrixBytes(m []float32, rows, cols int) []byte {
	var sb strings.Builder
	_ = ExportMatrix(&sb, m, rows, cols)
	return []byte(sb.String())
}

// ImageBytes renders an image to its text format in memory.
func ImageBytes(pix []byte, w, h int) []byte {
	var sb strings.Builder
	_ = ExportImage(&sb, pix, w, h)
	return []byte(sb.String())
}

// CSRBytes renders a CSR matrix to its text format in memory.
func CSRBytes(m *CSR) []byte {
	var sb strings.Builder
	_ = ExportCSR(&sb, m)
	return []byte(sb.String())
}
