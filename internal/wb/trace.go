package wb

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Timer categories, mirroring libwb's wbTime tags.
const (
	TimeGeneric = "Generic"
	TimeGPU     = "GPU"
	TimeCopy    = "Copy"
	TimeCompute = "Compute"
)

// Log levels, mirroring wbLog.
const (
	LevelTrace = "TRACE"
	LevelDebug = "DEBUG"
	LevelInfo  = "INFO"
	LevelWarn  = "WARN"
	LevelError = "ERROR"
)

// LogEvent is one wbLog line.
type LogEvent struct {
	Level   string
	Message string
	At      time.Time
}

// TimerSpan is one wbTime start/stop pair.
type TimerSpan struct {
	Category string
	Message  string
	Elapsed  time.Duration
}

// Trace collects the wbLog/wbTime output of one lab run; it is returned to
// the student alongside the correctness result. Safe for concurrent use.
type Trace struct {
	mu     sync.Mutex
	logs   []LogEvent
	spans  []TimerSpan
	opened map[string]time.Time
	clock  func() time.Time
}

// NewTrace creates an empty trace.
func NewTrace() *Trace {
	return &Trace{opened: make(map[string]time.Time), clock: time.Now}
}

// SetClock overrides the time source (tests).
func (t *Trace) SetClock(clock func() time.Time) { t.clock = clock }

// Logf records a log line at the given level.
func (t *Trace) Logf(level, format string, args ...interface{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.logs = append(t.logs, LogEvent{Level: level, Message: fmt.Sprintf(format, args...), At: t.clock()})
}

// Start opens a timer span, keyed by category+message as in wbTime_start.
func (t *Trace) Start(category, message string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.opened[category+"\x00"+message] = t.clock()
}

// Stop closes a timer span and records its duration. Stopping a span that
// was never started records a zero-length span (matching libwb's lenient
// behaviour).
func (t *Trace) Stop(category, message string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := category + "\x00" + message
	var elapsed time.Duration
	if start, ok := t.opened[key]; ok {
		elapsed = t.clock().Sub(start)
		delete(t.opened, key)
	}
	t.spans = append(t.spans, TimerSpan{Category: category, Message: message, Elapsed: elapsed})
}

// RecordSpan records an externally-measured span, e.g. the simulated GPU
// time of a kernel launch.
func (t *Trace) RecordSpan(category, message string, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, TimerSpan{Category: category, Message: message, Elapsed: elapsed})
}

// Logs returns a copy of the recorded log events.
func (t *Trace) Logs() []LogEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]LogEvent, len(t.logs))
	copy(out, t.logs)
	return out
}

// Spans returns a copy of the recorded timer spans.
func (t *Trace) Spans() []TimerSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimerSpan, len(t.spans))
	copy(out, t.spans)
	return out
}

// String renders the trace the way lab output is shown in the Attempts
// view.
func (t *Trace) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sb strings.Builder
	for _, l := range t.logs {
		fmt.Fprintf(&sb, "[%s] %s\n", l.Level, l.Message)
	}
	for _, s := range t.spans {
		fmt.Fprintf(&sb, "[TIME] %s: %v (%s)\n", s.Category, s.Elapsed, s.Message)
	}
	return sb.String()
}
