package worker

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/labs"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Aliases and helpers for the transient OpenACC lab used in
// TestNodeSelectsOpenACCImage, keeping the test body readable.

type (
	wbDataset = wb.Dataset
	wbFile    = wb.File
)

func wbVectorBytes(xs []float32) []byte { return wb.VectorBytes(xs) }

func minicudaOpenACC() minicuda.Dialect { return minicuda.DialectOpenACC }

// accSaxpyHarness runs the translated saxpy kernel: y = 2x + y.
func accSaxpyHarness(rc *labs.RunContext) (wb.CheckResult, error) {
	x, err := wb.ParseVector(rc.Dataset.Input("x.raw"))
	if err != nil {
		return wb.CheckResult{}, err
	}
	y, err := wb.ParseVector(rc.Dataset.Input("y.raw"))
	if err != nil {
		return wb.CheckResult{}, err
	}
	dev := rc.Dev()
	xP, err := dev.MallocFloat32(len(x), x)
	if err != nil {
		return wb.CheckResult{}, err
	}
	yP, err := dev.MallocFloat32(len(y), y)
	if err != nil {
		return wb.CheckResult{}, err
	}
	n := len(x)
	if _, err := rc.Program.Launch(dev, "saxpy",
		rc.Opts(gpusim.D1((n+63)/64), gpusim.D1(64)),
		minicuda.FloatPtr(xP), minicuda.FloatPtr(yP), minicuda.Int(n)); err != nil {
		return wb.CheckResult{}, err
	}
	got, err := dev.ReadFloat32(yP, n)
	if err != nil {
		return wb.CheckResult{}, err
	}
	want, err := wb.ParseVector(rc.Dataset.Expected.Data)
	if err != nil {
		return wb.CheckResult{}, err
	}
	return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
}
