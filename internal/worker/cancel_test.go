package worker

import (
	"context"
	"errors"
	"testing"
	"time"

	"webgpu/internal/labs"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// registerGatedLab installs a lab whose harness blocks on a channel, so a
// test can cancel the job while dataset 0 is mid-flight and observe which
// datasets never launch.
func registerGatedLab(t *testing.T, id string, datasets int, started chan struct{}, proceed chan struct{}) *labs.Lab {
	t.Helper()
	l := &labs.Lab{
		ID:          id,
		Number:      900,
		Name:        "Cancellation probe",
		Description: "test-only lab with a gated harness",
		Dialect:     minicuda.DialectCUDA,
		Skeleton: `__global__ void noop(int n) {
}
`,
		Reference: `__global__ void noop(int n) {
}
`,
		NumDatasets: datasets,
		Generate: func(dsID int) (*wb.Dataset, error) {
			return &wb.Dataset{ID: dsID, Name: "gate"}, nil
		},
		Harness: func(rc *labs.RunContext) (wb.CheckResult, error) {
			started <- struct{}{}
			<-proceed
			return wb.CheckResult{Correct: true}, nil
		},
	}
	if err := labs.Register(l); err != nil {
		t.Fatalf("register gated lab: %v", err)
	}
	t.Cleanup(func() { labs.Unregister(id) })
	return l
}

// TestCancelMidRunAllStopsDatasets cancels a grading job while its first
// dataset is executing: the remaining datasets must never launch, the
// result must be marked Canceled, and the v1 dispatch path must surface
// context.Canceled to the caller.
func TestCancelMidRunAllStopsDatasets(t *testing.T) {
	started := make(chan struct{}, 8)
	proceed := make(chan struct{})
	l := registerGatedLab(t, "cancel-probe", 4, started, proceed)

	// One GPU per container: RunAllCompiled takes the serial path, so
	// datasets launch strictly in order.
	cfg := DefaultNodeConfig("cancel-worker")
	cfg.GPUs = 1
	reg := NewRegistry(DefaultHealthTTL)
	reg.Register(NewNode(cfg))

	ctx, cancel := context.WithCancel(context.Background())
	type dispatched struct {
		res *Result
		err error
	}
	done := make(chan dispatched, 1)
	go func() {
		res, err := reg.Dispatch(ctx, &Job{
			ID: "j-cancel", LabID: l.ID, Source: l.Reference, DatasetID: DatasetAll,
		})
		done <- dispatched{res, err}
	}()

	// Dataset 0's harness is now running; cancel the job, then let the
	// in-flight harness finish.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("dataset 0 never started")
	}
	cancel()
	close(proceed)

	var d dispatched
	select {
	case d = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("dispatch did not return after cancellation")
	}
	if !errors.Is(d.err, context.Canceled) {
		t.Fatalf("dispatch err = %v, want context.Canceled", d.err)
	}
	if d.res == nil || !d.res.Canceled {
		t.Fatalf("result = %+v, want Canceled", d.res)
	}
	if got := len(d.res.Outcomes); got != 4 {
		t.Fatalf("outcomes = %d, want one per dataset", got)
	}
	// Only dataset 0 reached the harness.
	if n := len(started); n != 0 {
		t.Errorf("%d extra datasets launched after cancellation", n+1)
	}
	for i, o := range d.res.Outcomes[1:] {
		if !o.Canceled || o.Ran {
			t.Errorf("outcome %d = %+v, want Canceled and not Ran", i+1, o)
		}
	}
}

// TestCancelBeforeAdmission cancels a job that is still queued at the
// node's admission semaphore: it must return without executing.
func TestCancelBeforeAdmission(t *testing.T) {
	started := make(chan struct{}, 8)
	proceed := make(chan struct{})
	l := registerGatedLab(t, "cancel-admission-probe", 1, started, proceed)

	cfg := DefaultNodeConfig("adm-worker")
	cfg.MaxConcurrent = 1
	n := NewNode(cfg)

	// Occupy the single admission slot.
	first := make(chan *Result, 1)
	go func() {
		first <- n.Execute(context.Background(), &Job{
			ID: "j-hold", LabID: l.ID, Source: l.Reference, DatasetID: 0,
		})
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("holder job never started")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := n.Execute(ctx, &Job{ID: "j-queued", LabID: l.ID, Source: l.Reference, DatasetID: 0})
	if !res.Canceled || res.Error == "" {
		t.Fatalf("queued result = %+v, want Canceled with an error", res)
	}

	close(proceed)
	if res := <-first; res.Canceled || len(res.Outcomes) != 1 || !res.Outcomes[0].Correct {
		t.Fatalf("holder result = %+v", res)
	}
}
