package worker

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"webgpu/internal/labs"
	"webgpu/internal/queue"
	"webgpu/internal/sandbox"
)

func refJob(id, labID string, dataset int) *Job {
	l := labs.ByID(labID)
	return &Job{ID: id, LabID: labID, UserID: "u1", SubmissionID: "s1",
		Source: l.Reference, DatasetID: dataset}
}

func TestNodeExecutesReference(t *testing.T) {
	n := NewNode(DefaultNodeConfig("w1"))
	res := n.Execute(context.Background(), refJob("j1", "vector-add", 0))
	if res.Error != "" || res.Rejected {
		t.Fatalf("result = %+v", res)
	}
	if !res.Correct() {
		t.Fatalf("reference incorrect: %+v", res.Outcomes[0])
	}
	if res.Image == "" || !strings.Contains(res.Image, "cuda") {
		t.Errorf("image = %q", res.Image)
	}
}

func TestNodeCompileOnly(t *testing.T) {
	n := NewNode(DefaultNodeConfig("w1"))
	res := n.Execute(context.Background(), refJob("j1", "vector-add", DatasetCompileOnly))
	if len(res.Outcomes) != 1 || !res.Outcomes[0].Compiled || res.Outcomes[0].Ran {
		t.Fatalf("outcomes = %+v", res.Outcomes)
	}
}

func TestNodeRunAll(t *testing.T) {
	n := NewNode(DefaultNodeConfig("w1"))
	res := n.Execute(context.Background(), refJob("j1", "scatter-to-gather", DatasetAll))
	want := labs.ByID("scatter-to-gather").NumDatasets
	if len(res.Outcomes) != want {
		t.Fatalf("outcomes = %d, want %d", len(res.Outcomes), want)
	}
	if !res.Correct() {
		t.Fatal("reference failed")
	}
}

func TestNodeRejectsBlacklistedSource(t *testing.T) {
	n := NewNode(DefaultNodeConfig("w1"))
	job := refJob("j1", "vector-add", 0)
	job.Source = `__global__ void vecAdd(float *a, float *b, float *c, int n) { asm("nop"); }`
	res := n.Execute(context.Background(), job)
	if !res.Rejected {
		t.Fatalf("blacklisted source not rejected: %+v", res)
	}
	if !strings.Contains(res.Error, "asm") {
		t.Errorf("error = %q", res.Error)
	}
}

func TestNodeScanModeConfigurable(t *testing.T) {
	cfg := DefaultNodeConfig("w1")
	cfg.ScanMode = sandbox.ScanPreprocessed
	n := NewNode(cfg)
	job := refJob("j1", "vector-add", 0)
	job.Source = "// asm in a comment is fine\n" + labs.ByID("vector-add").Reference
	if res := n.Execute(context.Background(), job); res.Rejected {
		t.Fatalf("preprocessed scanner flagged a comment: %s", res.Error)
	}
	raw := NewNode(DefaultNodeConfig("w2"))
	if res := raw.Execute(context.Background(), job); !res.Rejected {
		t.Fatal("raw scanner missed the commented asm (paper behaviour)")
	}
}

func TestNodeSelectsOpenCLImage(t *testing.T) {
	n := NewNode(DefaultNodeConfig("w1"))
	res := n.Execute(context.Background(), refJob("j1", "opencl-vector-add", 0))
	if !res.Correct() {
		t.Fatalf("opencl job failed: %+v", res)
	}
	if !strings.Contains(res.Image, "opencl") {
		t.Errorf("image = %q", res.Image)
	}
}

func TestNodeSelectsOpenACCImage(t *testing.T) {
	// Register a transient OpenACC lab; the node must pick the PGI image
	// and the translated kernels must pass.
	acc := &labs.Lab{
		ID:          "test-openacc-saxpy",
		Number:      900,
		Name:        "OpenACC SAXPY",
		Summary:     "OpenACC",
		Description: "# OpenACC SAXPY\n\npragma-annotated loop.",
		Dialect:     minicudaOpenACC(),
		Skeleton: `void saxpy(float *x, float *y, int n) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    y[i] = y[i];
  }
}`,
		Reference: `void saxpy(float *x, float *y, int n) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    y[i] = 2.0f * x[i] + y[i];
  }
}`,
		Courses:     []labs.Course{labs.CourseHPP},
		NumDatasets: 1,
		Rubric:      labs.Rubric{CompilePoints: 10, DatasetPoints: 40},
		Generate: func(id int) (*wbDataset, error) {
			n := 64
			x := make([]float32, n)
			y := make([]float32, n)
			want := make([]float32, n)
			for i := range x {
				x[i] = float32(i)
				y[i] = 1
				want[i] = 2*x[i] + 1
			}
			return &wbDataset{
				ID:   id,
				Name: "saxpy",
				Inputs: []wbFile{
					{Name: "x.raw", Data: wbVectorBytes(x)},
					{Name: "y.raw", Data: wbVectorBytes(y)},
				},
				Expected: wbFile{Name: "out.raw", Data: wbVectorBytes(want)},
			}, nil
		},
		Harness: accSaxpyHarness,
	}
	if err := labs.Register(acc); err != nil {
		t.Fatal(err)
	}
	defer labs.Unregister(acc.ID)

	n := NewNode(DefaultNodeConfig("w-acc"))
	res := n.Execute(context.Background(), &Job{ID: "j", LabID: acc.ID, Source: acc.Reference, DatasetID: 0})
	if !res.Correct() {
		t.Fatalf("openacc job failed: error=%q outcomes=%+v", res.Error, res.Outcomes)
	}
	if !strings.Contains(res.Image, "pgi-openacc") {
		t.Errorf("image = %q, want the PGI OpenACC image", res.Image)
	}
}

func TestNodeMultiGPUJob(t *testing.T) {
	cfg := DefaultNodeConfig("wbig")
	cfg.GPUs = 2
	n := NewNode(cfg)
	if !n.Tags[labs.ReqMultiGPU] || !n.Tags[labs.ReqMPI] {
		t.Fatalf("tags = %v", n.Tags)
	}
	res := n.Execute(context.Background(), refJob("j1", "mpi-stencil", 0))
	if !res.Correct() {
		t.Fatalf("mpi job failed: error=%q outcome=%+v", res.Error, res.Outcomes)
	}
	if !strings.Contains(res.Image, "mpi") {
		t.Errorf("image = %q", res.Image)
	}
}

func TestNodeCanServe(t *testing.T) {
	small := NewNode(DefaultNodeConfig("w1"))
	if small.CanServe(refJob("j", "mpi-stencil", 0)) {
		t.Error("1-GPU node claims the multi-GPU job")
	}
	if !small.CanServe(refJob("j", "vector-add", 0)) {
		t.Error("node refuses a plain job")
	}
	cfg := DefaultNodeConfig("w2")
	cfg.GPUs = 2
	big := NewNode(cfg)
	if !big.CanServe(refJob("j", "mpi-stencil", 0)) {
		t.Error("2-GPU MPI node refuses the MPI job")
	}
}

func TestNodeUnknownLab(t *testing.T) {
	n := NewNode(DefaultNodeConfig("w1"))
	res := n.Execute(context.Background(), &Job{ID: "j", LabID: "nope", Source: "x"})
	if res.Error == "" {
		t.Fatal("unknown lab accepted")
	}
}

func TestContainerPoolRecycles(t *testing.T) {
	n := NewNode(DefaultNodeConfig("w1"))
	for i := 0; i < 5; i++ {
		res := n.Execute(context.Background(), refJob("j", "vector-add", 0))
		if !res.Correct() {
			t.Fatalf("run %d failed", i)
		}
	}
	created, destroyed, _ := n.Pool().Stats()
	if destroyed != 5 {
		t.Errorf("destroyed = %d, want 5 (container per job)", destroyed)
	}
	if created < destroyed {
		t.Errorf("created = %d < destroyed = %d: pool not replenished", created, destroyed)
	}
	if n.Pool().FreeCount("webgpu/cuda:7.0") == 0 {
		t.Error("warm pool empty after recycling")
	}
}

func TestPoolColdStart(t *testing.T) {
	p := NewPool(DefaultImages(), 1, 1)
	a, _ := p.Acquire("webgpu/cuda:7.0")
	b, _ := p.Acquire("webgpu/cuda:7.0") // pool empty: cold start
	_, _, cold := p.Stats()
	if cold != 1 {
		t.Errorf("cold starts = %d", cold)
	}
	p.Release(a)
	p.Release(b)
	p.Release(b) // double release safe
	if _, err := p.Acquire("missing:img"); !errors.Is(err, ErrNoImage) {
		t.Errorf("missing image = %v", err)
	}
}

func TestPoolImageSelection(t *testing.T) {
	p := NewPool(DefaultImages(), 1, 1)
	img, err := p.SelectImage([]string{"cuda"})
	if err != nil || img != "webgpu/cuda:7.0" {
		t.Errorf("cuda image = %q, %v (want the smallest satisfying image)", img, err)
	}
	img, err = p.SelectImage([]string{"cuda", "mpi"})
	if err != nil || img != "webgpu/cuda-mpi:7.0" {
		t.Errorf("mpi image = %q, %v", img, err)
	}
	if _, err := p.SelectImage([]string{"fortran"}); !errors.Is(err, ErrNoImage) {
		t.Errorf("fortran = %v", err)
	}
}

// ---- v1 push model ------------------------------------------------------------

func TestRegistryDispatch(t *testing.T) {
	r := NewRegistry(time.Minute)
	r.Register(NewNode(DefaultNodeConfig("w1")))
	r.Register(NewNode(DefaultNodeConfig("w2")))
	res, err := r.Dispatch(context.Background(), refJob("j1", "vector-add", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct() {
		t.Fatalf("dispatch result: %+v", res)
	}
	if r.Size() != 2 {
		t.Errorf("size = %d", r.Size())
	}
}

func TestRegistryEvictsSilentWorkers(t *testing.T) {
	r := NewRegistry(30 * time.Second)
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { return now })
	r.Register(NewNode(DefaultNodeConfig("w1")))
	r.Register(NewNode(DefaultNodeConfig("w2")))
	now = now.Add(20 * time.Second)
	r.Beat("w1") // only w1 stays healthy
	now = now.Add(20 * time.Second)
	alive := r.Alive()
	if len(alive) != 1 || alive[0] != "w1" {
		t.Fatalf("alive = %v", alive)
	}
	if r.Evictions() != 1 {
		t.Errorf("evictions = %d", r.Evictions())
	}
}

func TestRegistryHeartbeatsKeepWorkersAlive(t *testing.T) {
	r := NewRegistry(60 * time.Millisecond)
	r.Register(NewNode(DefaultNodeConfig("w1")))
	stop := r.StartHeartbeats(10 * time.Millisecond)
	defer stop()
	time.Sleep(150 * time.Millisecond) // > 2x TTL
	if got := r.Size(); got != 1 {
		t.Fatalf("worker evicted despite heartbeats: size = %d", got)
	}
	stop()
	stop() // idempotent
	time.Sleep(150 * time.Millisecond)
	if got := r.Size(); got != 0 {
		t.Fatalf("worker survived after heartbeats stopped: size = %d", got)
	}
}

func TestRegistryNoCapableWorker(t *testing.T) {
	r := NewRegistry(time.Minute)
	r.Register(NewNode(DefaultNodeConfig("w1"))) // 1 GPU, no MPI-capable GPUs count
	_, err := r.Dispatch(context.Background(), refJob("j1", "mpi-stencil", 0))
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryEmptyPool(t *testing.T) {
	r := NewRegistry(time.Minute)
	if _, err := r.Dispatch(context.Background(), refJob("j", "vector-add", 0)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v", err)
	}
}

// ---- v2 poll model ------------------------------------------------------------

func TestDriverProcessesJobs(t *testing.T) {
	b := queue.NewBroker()
	cs := NewConfigServer(DefaultConfig())
	d := NewDriver(NewNode(DefaultNodeConfig("w1")), b, cs)
	d.Start()
	defer d.Stop()

	for i := 0; i < 3; i++ {
		if _, err := b.Publish(TopicJobs, EncodeJob(refJob("j", "vector-add", 0))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.Stats().Acked < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := d.JobsDone(); got != 3 {
		t.Fatalf("jobs done = %d", got)
	}
	// Results landed on the results topic.
	if depth := b.Depth(TopicResults); depth != 3 {
		t.Fatalf("results depth = %d", depth)
	}
	del, ok, _ := b.Poll(TopicResults, "web", map[string]bool{}, time.Minute)
	if !ok {
		t.Fatal("no result")
	}
	res, err := DecodeResult(del.Msg.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct() || res.WorkerID != "w1" {
		t.Errorf("result = %+v", res)
	}
}

func TestDriverSkipsJobsItCannotServe(t *testing.T) {
	b := queue.NewBroker()
	cs := NewConfigServer(DefaultConfig())
	// Single-GPU worker; the MPI job is tagged and must not be taken.
	d := NewDriver(NewNode(DefaultNodeConfig("w1")), b, cs)
	d.Start()
	defer d.Stop()

	l := labs.ByID("mpi-stencil")
	job := refJob("jm", "mpi-stencil", 0)
	if _, err := b.Publish(TopicJobs, EncodeJob(job), l.Requirements...); err != nil {
		t.Fatal(err)
	}
	_, _ = b.Publish(TopicJobs, EncodeJob(refJob("jp", "vector-add", 0)))

	deadline := time.Now().Add(10 * time.Second)
	for d.JobsDone() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d.JobsDone() != 1 {
		t.Fatalf("jobs done = %d", d.JobsDone())
	}
	if b.Backlog(TopicJobs) != 1 {
		t.Fatalf("mpi job should remain queued, backlog = %d", b.Backlog(TopicJobs))
	}

	// A capable worker joins and drains it.
	cfg := DefaultNodeConfig("w2")
	cfg.GPUs = 2
	d2 := NewDriver(NewNode(cfg), b, cs)
	d2.Start()
	defer d2.Stop()
	deadline = time.Now().Add(20 * time.Second)
	for d2.JobsDone() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if d2.JobsDone() != 1 {
		t.Fatalf("capable worker did not take the mpi job")
	}
}

func TestDriverConfigRestart(t *testing.T) {
	b := queue.NewBroker()
	cs := NewConfigServer(DefaultConfig())
	d := NewDriver(NewNode(DefaultNodeConfig("w1")), b, cs)
	d.Start()
	defer d.Stop()
	cfg, _ := cs.Get()
	cfg.PollInterval = time.Millisecond
	cs.Update(cfg)
	deadline := time.Now().Add(5 * time.Second)
	for d.Restarts() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.Restarts() == 0 {
		t.Fatal("config change did not restart the driver")
	}
}

func TestFleetScale(t *testing.T) {
	b := queue.NewBroker()
	cs := NewConfigServer(DefaultConfig())
	f := NewFleet(b, cs, nil)
	f.Scale(3)
	if f.Size() != 3 {
		t.Fatalf("size = %d", f.Size())
	}
	for i := 0; i < 6; i++ {
		_, _ = b.Publish(TopicJobs, EncodeJob(refJob("j", "vector-add", 0)))
	}
	deadline := time.Now().Add(20 * time.Second)
	for f.JobsDone() < 6 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if f.JobsDone() != 6 {
		t.Fatalf("fleet completed %d of 6", f.JobsDone())
	}
	f.Scale(1)
	if f.Size() != 1 {
		t.Errorf("after scale down: %d", f.Size())
	}
	f.Stop()
	if f.Size() != 0 {
		t.Errorf("after stop: %d", f.Size())
	}
}

func TestJobRoundTrip(t *testing.T) {
	j := refJob("j9", "spmv", 2)
	j.Requirements = []string{"cuda"}
	got, err := DecodeJob(EncodeJob(j))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != j.ID || got.LabID != j.LabID || got.DatasetID != 2 || got.Source != j.Source {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if _, err := DecodeJob([]byte("not json")); err == nil {
		t.Error("garbage decoded")
	}
}
