package worker

import (
	"context"
	"errors"
	"sync"
	"time"

	"webgpu/internal/trace"
)

// v1 architecture (§III, Figure 2): the web server *pushes* jobs to a
// worker it selects from the pool, and workers send periodic health
// checks; "the web-server would evict the worker from the pool of workers
// if a health check is not received within an allotted time."

// ErrNoWorkers is returned when the registry has no live worker able to
// serve a job.
var ErrNoWorkers = errors.New("worker: no live worker can serve this job")

// DefaultHealthTTL is how long a worker may go silent before eviction.
const DefaultHealthTTL = 30 * time.Second

// Registry is the web server's view of the v1 worker pool.
type Registry struct {
	mu     sync.Mutex
	ttl    time.Duration
	clock  func() time.Time
	nodes  map[string]*registered
	rrSeq  int
	evicts int64
}

type registered struct {
	node     *Node
	lastBeat time.Time
	inflight int
}

// NewRegistry creates a registry with the given health-check TTL.
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultHealthTTL
	}
	return &Registry{ttl: ttl, clock: time.Now, nodes: map[string]*registered{}}
}

// SetClock overrides the time source (tests).
func (r *Registry) SetClock(clock func() time.Time) { r.clock = clock }

// Register adds a worker to the pool (its registration counts as a beat).
func (r *Registry) Register(n *Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes[n.ID] = &registered{node: n, lastBeat: r.clock()}
}

// Deregister removes a worker.
func (r *Registry) Deregister(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.nodes, id)
}

// Beat records a health check from a worker.
func (r *Registry) Beat(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg, ok := r.nodes[id]; ok {
		reg.lastBeat = r.clock()
	}
}

// evictStaleLocked drops workers whose last health check is too old.
func (r *Registry) evictStaleLocked(now time.Time) {
	for id, reg := range r.nodes {
		if now.Sub(reg.lastBeat) > r.ttl {
			delete(r.nodes, id)
			r.evicts++
		}
	}
}

// Alive returns the IDs of live workers, after evicting stale ones.
func (r *Registry) Alive() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictStaleLocked(r.clock())
	out := make([]string, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	return out
}

// Evictions reports how many workers were evicted for missing health
// checks.
func (r *Registry) Evictions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicts
}

// Size reports the live pool size.
func (r *Registry) Size() int { return len(r.Alive()) }

// StartHeartbeats runs the workers' periodic health checks (§III-C: "the
// worker node [sends] regular health checks to the web-server"): every
// interval, each registered in-process node reports in. Returns a stop
// function. Nodes registered later are picked up automatically.
func (r *Registry) StartHeartbeats(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = r.ttl / 3
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				r.mu.Lock()
				now := r.clock()
				for _, reg := range r.nodes {
					reg.lastBeat = now
				}
				r.mu.Unlock()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Dispatch pushes a job to a live, capable, least-loaded worker and runs
// it synchronously, returning the worker's result. This is the v1 flow:
// "the web-server acts as an intermediary, dispatching jobs to a node in
// the pool of workers and relaying the results" (§III-A). The context
// carries the job's trace (the node writes spans straight into it) and
// cancellation: a job cancelled mid-flight returns its partial result
// alongside ctx's error.
func (r *Registry) Dispatch(ctx context.Context, job *Job) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.Lock()
	now := r.clock()
	r.evictStaleLocked(now)
	var pick *registered
	for _, reg := range r.nodes {
		if !reg.node.CanServe(job) {
			continue
		}
		if pick == nil || reg.inflight < pick.inflight {
			pick = reg
		}
	}
	if pick == nil {
		r.mu.Unlock()
		return nil, ErrNoWorkers
	}
	pick.inflight++
	r.mu.Unlock()

	dispatchStart := time.Now()
	res := pick.node.Execute(ctx, job)

	// The push path reports queue wait too, so Figure 2 comparisons no
	// longer under-report v1 latency: everything between dispatch and the
	// start of execution — worker selection plus the node's admission
	// wait — is queueing, not execution.
	if wait := time.Since(dispatchStart) - res.ExecDuration; wait > res.QueueWait {
		res.QueueWait = wait
	}
	if tr := trace.FromContext(ctx); tr != nil {
		tr.Add(trace.Span{Name: "queue_wait", Start: dispatchStart, Dur: res.QueueWait,
			Attrs: map[string]string{"worker": res.WorkerID, "arch": "v1"}})
	}

	r.mu.Lock()
	pick.inflight--
	r.mu.Unlock()
	if res.Canceled && ctx.Err() != nil {
		return res, ctx.Err()
	}
	return res, nil
}
