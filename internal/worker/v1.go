package worker

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/trace"
)

// v1 architecture (§III, Figure 2): the web server *pushes* jobs to a
// worker it selects from the pool, and workers send periodic health
// checks; "the web-server would evict the worker from the pool of workers
// if a health check is not received within an allotted time."

// ErrNoWorkers is returned when the registry has no live worker able to
// serve a job.
var ErrNoWorkers = errors.New("worker: no live worker can serve this job")

// DefaultHealthTTL is how long a worker may go silent before eviction.
const DefaultHealthTTL = 30 * time.Second

// v1 has no broker to lean on for redelivery, so the push dispatch itself
// retries: up to DefaultDispatchRetries extra attempts with exponential
// backoff starting at DefaultRetryBackoff (plus jitter, capped at
// maxRetryBackoff per wait).
const (
	DefaultDispatchRetries = 3
	DefaultRetryBackoff    = 2 * time.Millisecond
	maxRetryBackoff        = 250 * time.Millisecond
)

// Registry is the web server's view of the v1 worker pool.
type Registry struct {
	mu     sync.Mutex
	ttl    time.Duration
	clock  func() time.Time
	nodes  map[string]*registered
	rrSeq  int
	evicts int64

	faults       *faultinject.Registry
	maxRetries   int
	retryBackoff time.Duration
	retries      int64 // dispatch attempts beyond the first
}

type registered struct {
	node     *Node
	lastBeat time.Time
	inflight int
}

// NewRegistry creates a registry with the given health-check TTL.
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultHealthTTL
	}
	return &Registry{
		ttl:          ttl,
		clock:        time.Now,
		nodes:        map[string]*registered{},
		maxRetries:   DefaultDispatchRetries,
		retryBackoff: DefaultRetryBackoff,
	}
}

// SetClock overrides the time source (tests).
func (r *Registry) SetClock(clock func() time.Time) { r.clock = clock }

// SetFaults attaches a fault-injection registry to the push path.
func (r *Registry) SetFaults(f *faultinject.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = f
}

// SetRetry reconfigures the dispatch retry budget: up to max extra
// attempts, waiting base·2^(n−1) plus jitter before attempt n. A negative
// max disables retries; a zero base keeps the default.
func (r *Registry) SetRetry(max int, base time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if max < 0 {
		max = 0
	}
	r.maxRetries = max
	if base > 0 {
		r.retryBackoff = base
	}
}

// Retries reports how many dispatch attempts beyond the first were made.
func (r *Registry) Retries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// Register adds a worker to the pool (its registration counts as a beat).
func (r *Registry) Register(n *Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes[n.ID] = &registered{node: n, lastBeat: r.clock()}
}

// Deregister removes a worker.
func (r *Registry) Deregister(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.nodes, id)
}

// Beat records a health check from a worker.
func (r *Registry) Beat(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg, ok := r.nodes[id]; ok {
		reg.lastBeat = r.clock()
	}
}

// evictStaleLocked drops workers whose last health check is too old.
func (r *Registry) evictStaleLocked(now time.Time) {
	for id, reg := range r.nodes {
		if now.Sub(reg.lastBeat) > r.ttl {
			delete(r.nodes, id)
			r.evicts++
		}
	}
}

// Alive returns the IDs of live workers, after evicting stale ones.
func (r *Registry) Alive() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictStaleLocked(r.clock())
	out := make([]string, 0, len(r.nodes))
	for id := range r.nodes {
		out = append(out, id)
	}
	return out
}

// Evictions reports how many workers were evicted for missing health
// checks.
func (r *Registry) Evictions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicts
}

// Size reports the live pool size.
func (r *Registry) Size() int { return len(r.Alive()) }

// StartHeartbeats runs the workers' periodic health checks (§III-C: "the
// worker node [sends] regular health checks to the web-server"): every
// interval, each registered in-process node reports in. Returns a stop
// function. Nodes registered later are picked up automatically.
func (r *Registry) StartHeartbeats(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = r.ttl / 3
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				r.mu.Lock()
				now := r.clock()
				for _, reg := range r.nodes {
					reg.lastBeat = now
				}
				r.mu.Unlock()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Dispatch pushes a job to a live, capable, least-loaded worker and runs
// it synchronously, returning the worker's result. This is the v1 flow:
// "the web-server acts as an intermediary, dispatching jobs to a node in
// the pool of workers and relaying the results" (§III-A). The context
// carries the job's trace (the node writes spans straight into it) and
// cancellation: a job cancelled mid-flight returns its partial result
// alongside ctx's error.
//
// Unlike v2, there is no broker to redeliver a failed job, so Dispatch
// retries transient failures itself — an empty pool, a failed push, a
// worker reporting an infrastructure fault — with exponential backoff and
// jitter before giving up. The give-up error wraps the last failure, so
// errors.Is(err, ErrNoWorkers) still identifies a pool that stayed empty.
func (r *Registry) Dispatch(ctx context.Context, job *Job) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.Lock()
	maxRetries, base := r.maxRetries, r.retryBackoff
	r.mu.Unlock()

	var lastRes *Result
	var lastErr error
	for attempt := 1; ; attempt++ {
		res, err, retryable := r.dispatchOnce(ctx, job)
		if !retryable {
			return res, err
		}
		lastRes, lastErr = res, err
		if attempt > maxRetries {
			return lastRes, fmt.Errorf("worker: dispatch gave up after %d attempts: %w", attempt, lastErr)
		}
		r.mu.Lock()
		r.retries++
		r.mu.Unlock()
		if !sleepCtx(ctx, retryDelay(base, attempt)) {
			return lastRes, ctx.Err()
		}
	}
}

// dispatchOnce makes a single push attempt. retryable reports whether the
// failure is transient (empty pool, injected push fault, worker-side
// infrastructure failure) rather than a final outcome.
func (r *Registry) dispatchOnce(ctx context.Context, job *Job) (res *Result, err error, retryable bool) {
	r.mu.Lock()
	faults := r.faults
	now := r.clock()
	r.evictStaleLocked(now)
	var pick *registered
	for _, reg := range r.nodes {
		if !reg.node.CanServe(job) {
			continue
		}
		if pick == nil || reg.inflight < pick.inflight {
			pick = reg
		}
	}
	if pick == nil {
		r.mu.Unlock()
		return nil, ErrNoWorkers, true
	}
	pick.inflight++
	r.mu.Unlock()

	release := func() {
		r.mu.Lock()
		pick.inflight--
		r.mu.Unlock()
	}
	if ferr := faults.Fire(faultinject.PointV1Push); ferr != nil {
		release()
		return nil, fmt.Errorf("worker: push to %s failed: %w", pick.node.ID, ferr), true
	}

	dispatchStart := time.Now()
	res = pick.node.Execute(ctx, job)

	// The push path reports queue wait too, so Figure 2 comparisons no
	// longer under-report v1 latency: everything between dispatch and the
	// start of execution — worker selection plus the node's admission
	// wait — is queueing, not execution.
	if wait := time.Since(dispatchStart) - res.ExecDuration; wait > res.QueueWait {
		res.QueueWait = wait
	}
	if tr := trace.FromContext(ctx); tr != nil {
		tr.Add(trace.Span{Name: "queue_wait", Start: dispatchStart, Dur: res.QueueWait,
			Attrs: map[string]string{"worker": res.WorkerID, "arch": "v1"}})
	}

	release()
	if res.Canceled && ctx.Err() != nil {
		return res, ctx.Err(), false
	}
	if res.Transient {
		return res, fmt.Errorf("worker: transient failure on %s: %s", res.WorkerID, res.Error), true
	}
	return res, nil, false
}

// retryDelay returns base·2^(attempt−1) capped at maxRetryBackoff, plus up
// to 50% jitter so synchronized retries fan out.
func retryDelay(base time.Duration, attempt int) time.Duration {
	d := base << uint(attempt-1)
	if d <= 0 || d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleepCtx waits d, returning false if ctx expires first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
