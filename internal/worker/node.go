package worker

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/kernelcheck"
	"webgpu/internal/labs"
	"webgpu/internal/metrics"
	"webgpu/internal/minicuda"
	"webgpu/internal/progcache"
	"webgpu/internal/sandbox"
	"webgpu/internal/trace"
)

// Node is the execution core shared by the v1 (push) and v2 (poll)
// workers: it owns the GPUs, the container pool, the security scanner,
// the program cache, and the per-job pipeline.
type Node struct {
	ID      string
	GPUs    int
	Tags    map[string]bool
	pool    *Pool
	scanner *sandbox.Scanner
	limits  sandbox.Limits
	metrics *metrics.Registry
	progs   *progcache.Cache
	faults  *faultinject.Registry

	// Per-container admission: each pooled container owns its own
	// simulated device set, so up to cap(sem) jobs execute concurrently —
	// a node with k pooled containers runs k jobs at once instead of
	// serializing behind a node-wide mutex.
	sem        chan struct{}
	inflight   atomic.Int32
	inflightHW atomic.Int32 // high-water mark of concurrent jobs
}

// NodeConfig configures a worker node.
type NodeConfig struct {
	ID       string
	GPUs     int // simulated GPUs per container
	Images   []Image
	PerImage int // warm containers per image
	Tags     []string
	ScanMode sandbox.ScanMode
	Limits   sandbox.Limits

	// MaxConcurrent bounds jobs in flight; 0 sizes it to the warm-pool
	// capacity (PerImage × images, min 1) — the paper's container-pool
	// unit of worker concurrency.
	MaxConcurrent int

	// ProgCache is the compiled-program cache the node's pipeline uses;
	// nil uses the process-wide progcache.Default.
	ProgCache *progcache.Cache

	// Metrics is the registry the node reports into; nil creates a
	// private one. The platform passes its shared registry so every
	// node's counters land in one /api/admin/metrics dump.
	Metrics *metrics.Registry

	// Faults is the fault-injection registry for chaos testing; nil (the
	// default) makes every fault point a no-op.
	Faults *faultinject.Registry
}

// DefaultNodeConfig returns a single-GPU CUDA worker configuration.
func DefaultNodeConfig(id string) NodeConfig {
	return NodeConfig{
		ID:       id,
		GPUs:     1,
		Images:   DefaultImages(),
		PerImage: 2,
		Tags:     []string{"cuda", "opencl"},
		ScanMode: sandbox.ScanRaw,
		Limits:   sandbox.DefaultLimits(),
	}
}

// NewNode builds a node from its configuration.
func NewNode(cfg NodeConfig) *Node {
	gpus := cfg.GPUs
	if gpus <= 0 {
		gpus = 1
	}
	tags := map[string]bool{}
	for _, t := range cfg.Tags {
		tags[t] = true
	}
	if gpus > 1 {
		tags[labs.ReqMultiGPU] = true
	}
	// PerImage 0 defaults to one warm container; a negative value means
	// "no warm pool" (every acquisition is a cold start — the Figure 7
	// ablation).
	perImage := cfg.PerImage
	if perImage == 0 {
		perImage = 1
	}
	if perImage < 0 {
		perImage = 0
	}
	images := cfg.Images
	if images == nil {
		images = DefaultImages()
	}
	// A node advertises "mpi" when one of its images carries the MPI
	// toolchain.
	for _, img := range images {
		if img.Toolchains["mpi"] {
			tags["mpi"] = true
		}
	}
	limits := cfg.Limits
	if limits.MaxSteps == 0 {
		limits = sandbox.DefaultLimits()
	}
	maxConc := cfg.MaxConcurrent
	if maxConc <= 0 {
		maxConc = perImage * len(images)
	}
	if maxConc < 1 {
		maxConc = 1
	}
	progs := cfg.ProgCache
	if progs == nil {
		progs = progcache.Default
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	// Pre-register every kernelcheck rule's fire counter at zero so the
	// admin metrics dump carries the full series set from node start
	// instead of rules popping into existence at their first finding.
	for _, r := range kernelcheck.Rules() {
		reg.Inc(kernelcheck.MetricName(r.ID), 0)
	}
	return &Node{
		ID:      cfg.ID,
		GPUs:    gpus,
		Tags:    tags,
		pool:    NewPool(images, gpus, perImage),
		scanner: sandbox.NewScanner(nil, cfg.ScanMode),
		limits:  limits,
		metrics: reg,
		progs:   progs,
		faults:  cfg.Faults,
		sem:     make(chan struct{}, maxConc),
	}
}

// Capabilities returns the node's tag set (for broker polling).
func (n *Node) Capabilities() map[string]bool {
	caps := map[string]bool{}
	for t := range n.Tags {
		caps[t] = true
	}
	return caps
}

// Metrics exposes the node's registry (health dashboard).
func (n *Node) Metrics() *metrics.Registry { return n.metrics }

// Pool exposes the container pool (tests and the dashboard).
func (n *Node) Pool() *Pool { return n.pool }

// ProgCache exposes the node's program cache.
func (n *Node) ProgCache() *progcache.Cache { return n.progs }

// MaxConcurrent reports how many jobs the node admits at once.
func (n *Node) MaxConcurrent() int { return cap(n.sem) }

// InflightHighWater reports the largest number of jobs the node has
// executed concurrently.
func (n *Node) InflightHighWater() int { return int(n.inflightHW.Load()) }

// Execute runs one job through the full pipeline: admission, security
// scan, image selection, container acquisition, cached compile, run,
// container teardown. Result.QueueWait carries the time the job spent
// blocked on admission (a loaded node queues jobs at its semaphore the
// way the v1 web tier queued them behind busy workers).
//
// The context carries both cancellation (a done ctx aborts admission
// waits, compile waits, and the per-dataset fan-out) and, on the v1
// in-process path, the job's trace. On the v2 path the job arrives with
// only a TraceID; the node then builds a local span collector and ships
// the spans back on the Result.
func (n *Node) Execute(ctx context.Context, job *Job) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{JobID: job.ID, WorkerID: n.ID, TraceID: job.TraceID}
	tr := trace.FromContext(ctx)
	owned := false // we built the collector, so we must export its spans
	if tr == nil && job.TraceID != "" {
		tr = trace.New(job.TraceID)
		owned = true
	}
	if res.TraceID == "" {
		res.TraceID = tr.ID()
	}
	exportSpans := func() {
		if owned {
			res.Spans = tr.Spans()
		}
	}

	enqueued := time.Now()
	adm := tr.StartSpan("admission", "worker", n.ID)
	if done := ctx.Done(); done == nil {
		n.sem <- struct{}{} // uncancellable ctx: skip the select fast path
	} else {
		select {
		case n.sem <- struct{}{}:
		case <-done:
			res.QueueWait = time.Since(enqueued)
			res.Canceled = true
			res.Error = "worker: " + ctx.Err().Error()
			res.CompletedAt = time.Now()
			adm.EndAttrs("canceled", "true")
			n.metrics.Inc("jobs_canceled", 1)
			exportSpans()
			return res
		}
	}
	defer func() { <-n.sem }()
	res.QueueWait = time.Since(enqueued)
	adm.End()
	n.metrics.ObserveDuration("stage_admission_ms", res.QueueWait)

	cur := n.inflight.Add(1)
	defer n.inflight.Add(-1)
	for {
		hw := n.inflightHW.Load()
		if cur <= hw || n.inflightHW.CompareAndSwap(hw, cur) {
			break
		}
	}

	start := time.Now()
	defer func() {
		res.ExecDuration = time.Since(start)
		res.CompletedAt = time.Now()
		n.metrics.Inc("jobs_total", 1)
		n.metrics.ObserveDuration("job_exec_ms", res.ExecDuration)
		n.metrics.ObserveDuration("job_queue_wait_ms", res.QueueWait)
		exportSpans()
	}()

	lab := labs.ByID(job.LabID)
	if lab == nil {
		res.Error = fmt.Sprintf("worker: unknown lab %q", job.LabID)
		n.metrics.Inc("jobs_unknown_lab", 1)
		return res
	}

	// Compile-time blacklist (§III-D).
	scan := tr.StartSpan("scan")
	err := n.scanner.Check(job.Source)
	if scan != nil {
		scan.EndAttrs("rejected", strconv.FormatBool(err != nil))
	}
	if err != nil {
		res.Rejected = true
		res.Error = err.Error()
		n.metrics.Inc("jobs_rejected", 1)
		return res
	}

	// Reject out-of-range datasets before any compile work is spent.
	if job.DatasetID != DatasetAll && job.DatasetID != DatasetCompileOnly &&
		(job.DatasetID < 0 || job.DatasetID >= lab.NumDatasets) {
		res.Outcomes = []*labs.Outcome{{LabID: lab.ID, DatasetID: job.DatasetID,
			RuntimeError: fmt.Sprintf("labs: dataset %d out of range [0,%d)", job.DatasetID, lab.NumDatasets)}}
		n.metrics.Inc("outcomes_incorrect", 1)
		return res
	}

	// Toolchain-based image selection (§VI-B).
	toolchains := []string{"cuda"}
	switch lab.Dialect.String() {
	case "OpenCL":
		toolchains = []string{"opencl"}
	case "OpenACC":
		toolchains = []string{"openacc"}
	}
	for _, r := range lab.Requirements {
		if r == labs.ReqMPI {
			toolchains = append(toolchains, "mpi")
		}
	}
	image, err := n.pool.SelectImage(toolchains)
	if err != nil {
		res.Error = err.Error()
		n.metrics.Inc("jobs_no_image", 1)
		return res
	}
	res.Image = image
	ctr, err := n.pool.Acquire(image)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	defer n.pool.Release(ctr)

	maxSteps := job.MaxSteps
	if maxSteps <= 0 {
		maxSteps = n.limits.MaxSteps
	}

	// Transient compile-infrastructure failure (chaos testing): the
	// submission is fine, the worker is not — report it retryable.
	if ferr := n.faults.Fire(faultinject.PointNodeCompile); ferr != nil {
		res.Error = ferr.Error()
		res.Transient = true
		n.metrics.Inc("jobs_faulted", 1)
		return res
	}

	// Compile exactly once per job through the content-addressed program
	// cache — identical sources across jobs compile once per process.
	compileStart := time.Now()
	prog, status, cerr := n.compileSubmission(ctx, job.Source, lab.Dialect)
	compileWall := time.Since(compileStart)
	cacheAttr := "miss"
	switch status {
	case progcache.Hit:
		cacheAttr = "hit"
		n.metrics.Inc("progcache_hits", 1)
	case progcache.Coalesced:
		cacheAttr = "coalesced"
		n.metrics.Inc("progcache_coalesced", 1)
	default:
		n.metrics.Inc("progcache_misses", 1)
	}
	if tr != nil { // skip building the attr map on untraced jobs
		tr.Add(trace.Span{Name: "compile", Start: compileStart, Dur: compileWall,
			Attrs: map[string]string{"cache": cacheAttr, "ok": strconv.FormatBool(cerr == nil)}})
	}
	n.metrics.ObserveDuration("stage_compile_ms", compileWall)

	// Static kernel analysis (kernelcheck). Diagnostics are a derived
	// artifact cached on the program-cache entry, so repeat submissions
	// skip re-analysis the same way they skip re-compilation. Under
	// fail-fast the analyzer gates execution, so it runs inline; under the
	// default warn policy the findings only ride the result, so the
	// analysis overlaps dataset execution instead of extending the job's
	// critical path (both only read the compiled program).
	joinAnalysis := func() {}
	if cerr == nil && job.AnalysisPolicy != AnalysisOff {
		kcStart := time.Now()
		var diags []kernelcheck.Diagnostic
		var aerr error
		var kcWall time.Duration
		finish := func() {
			n.metrics.ObserveDuration("stage_kernelcheck_ms", kcWall)
			if aerr == nil {
				res.Diagnostics = diags
				for _, dg := range diags {
					n.metrics.Inc(kernelcheck.MetricName(dg.ID), 1)
				}
			}
			if tr != nil {
				tr.Add(trace.Span{Name: "kernelcheck", Start: kcStart, Dur: kcWall,
					Attrs: map[string]string{
						"findings": strconv.Itoa(len(res.Diagnostics)),
						"errors":   strconv.Itoa(kernelcheck.ErrorCount(res.Diagnostics)),
						"policy":   analysisPolicyName(job.AnalysisPolicy),
					}})
			}
		}
		if job.AnalysisPolicy == AnalysisFailFast {
			diags, aerr = n.progs.Diagnostics(job.Source, lab.Dialect)
			kcWall = time.Since(kcStart)
			finish()
			if kernelcheck.ErrorCount(res.Diagnostics) > 0 {
				res.AnalysisBlocked = true
				res.Outcomes = analysisBlockedOutcomes(lab, job.DatasetID, res.Diagnostics, kcWall)
				n.metrics.Inc("jobs_analysis_blocked", 1)
				n.metrics.Inc("outcomes_incorrect", float64(len(res.Outcomes)))
				return res
			}
		} else {
			done := make(chan struct{})
			go func() {
				defer close(done)
				diags, aerr = n.progs.Diagnostics(job.Source, lab.Dialect)
				kcWall = time.Since(kcStart)
			}()
			joinAnalysis = func() {
				<-done
				finish()
			}
		}
	}

	// Transient execution-infrastructure failure (chaos testing).
	if ferr := n.faults.Fire(faultinject.PointNodeExec); ferr != nil {
		joinAnalysis()
		res.Error = ferr.Error()
		res.Transient = true
		n.metrics.Inc("jobs_faulted", 1)
		return res
	}

	execStart := time.Now()
	switch {
	case cerr != nil:
		res.Outcomes = compileErrorOutcomes(lab, job.DatasetID, cerr, compileWall)
	case job.DatasetID == DatasetCompileOnly:
		res.Outcomes = []*labs.Outcome{{LabID: lab.ID, DatasetID: -1,
			Compiled: true, WallTime: compileWall}}
	case job.DatasetID == DatasetAll:
		res.Outcomes = labs.RunAllCompiled(ctx, lab, prog, ctr.Devices, maxSteps)
	default:
		res.Outcomes = []*labs.Outcome{labs.RunCompiled(ctx, lab, prog, job.DatasetID, ctr.Devices, maxSteps)}
	}
	n.metrics.ObserveDuration("stage_exec_ms", time.Since(execStart))
	joinAnalysis()
	for _, o := range res.Outcomes {
		clamped, truncated := n.limits.ClampOutput(o.Trace)
		if truncated {
			o.Trace = clamped
		}
		if tr != nil && (o.Ran || o.Canceled) {
			attrs := map[string]string{
				"correct":  strconv.FormatBool(o.Correct),
				"canceled": strconv.FormatBool(o.Canceled),
				"sim_time": o.SimTime.String(),
			}
			if prog != nil {
				// Which execution engine ran the kernels, and how large
				// the lowered artifact was.
				switch prog.ArtifactKind() {
				case "bytecode-warp":
					attrs["engine"] = "warp"
					attrs["instructions"] = strconv.Itoa(prog.InstructionCount())
				case "bytecode":
					attrs["engine"] = "vm"
					attrs["instructions"] = strconv.Itoa(prog.InstructionCount())
				default:
					attrs["engine"] = "tree"
				}
			}
			tr.Add(trace.Span{
				Name:  fmt.Sprintf("exec[dataset=%d]", o.DatasetID),
				Start: execStart, Dur: o.WallTime,
				Attrs: attrs})
		}
		switch {
		case o.Canceled:
			res.Canceled = true
			n.metrics.Inc("outcomes_canceled", 1)
		case o.Correct:
			n.metrics.Inc("outcomes_correct", 1)
		default:
			n.metrics.Inc("outcomes_incorrect", 1)
		}
	}
	if res.Canceled {
		n.metrics.Inc("jobs_canceled", 1)
	}
	return res
}

// compileSubmission compiles through the node's program cache, enforcing
// the sandbox.Limits.CompileTimeout (§III-C: "time limits are placed ...
// on the duration of the compilation"). A timed-out or cancelled compile
// is abandoned; it still completes in the background and populates the
// cache.
func (n *Node) compileSubmission(ctx context.Context, src string, dialect minicuda.Dialect) (*minicuda.Program, progcache.Status, error) {
	if n.limits.CompileTimeout <= 0 && ctx.Done() == nil {
		return n.progs.CompileStatus(src, dialect)
	}
	type compiled struct {
		prog   *minicuda.Program
		status progcache.Status
		err    error
	}
	ch := make(chan compiled, 1)
	go func() {
		p, st, err := n.progs.CompileStatus(src, dialect)
		ch <- compiled{p, st, err}
	}()
	var timeout <-chan time.Time
	if n.limits.CompileTimeout > 0 {
		timer := time.NewTimer(n.limits.CompileTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case c := <-ch:
		return c.prog, c.status, c.err
	case <-ctx.Done():
		return nil, progcache.Miss, fmt.Errorf("sandbox: compilation abandoned: %w", ctx.Err())
	case <-timeout:
		n.metrics.Inc("compile_timeouts", 1)
		return nil, progcache.Miss,
			fmt.Errorf("sandbox: compilation exceeded the %v limit", n.limits.CompileTimeout)
	}
}

// analysisPolicyName normalizes the job's policy for trace attributes.
func analysisPolicyName(p string) string {
	if p == "" {
		return AnalysisWarn
	}
	return p
}

// analysisBlockedOutcomes reports a fail-fast analysis block in the same
// per-dataset shape a grading run produces: the submission compiled, but
// every dataset is marked failed with the blocking diagnostics.
func analysisBlockedOutcomes(lab *labs.Lab, datasetID int, diags []kernelcheck.Diagnostic, wall time.Duration) []*labs.Outcome {
	var sb []string
	for _, d := range diags {
		if d.Severity == kernelcheck.SevError {
			sb = append(sb, d.String())
		}
	}
	msg := fmt.Sprintf("kernelcheck: execution blocked by the fail-fast analysis policy (%d provable error(s)):\n%s",
		len(sb), strings.Join(sb, "\n"))
	mk := func(id int) *labs.Outcome {
		return &labs.Outcome{LabID: lab.ID, DatasetID: id, Compiled: true,
			RuntimeError: msg, WallTime: wall}
	}
	if datasetID == DatasetAll {
		outs := make([]*labs.Outcome, lab.NumDatasets)
		for i := range outs {
			outs[i] = mk(i)
		}
		return outs
	}
	if datasetID == DatasetCompileOnly {
		return []*labs.Outcome{mk(-1)}
	}
	return []*labs.Outcome{mk(datasetID)}
}

// compileErrorOutcomes reports a compile failure in the same per-dataset
// shape a successful grading run produces.
func compileErrorOutcomes(lab *labs.Lab, datasetID int, cerr error, wall time.Duration) []*labs.Outcome {
	mk := func(id int) *labs.Outcome {
		return &labs.Outcome{LabID: lab.ID, DatasetID: id,
			CompileError: cerr.Error(), WallTime: wall}
	}
	if datasetID == DatasetAll {
		outs := make([]*labs.Outcome, lab.NumDatasets)
		for i := range outs {
			outs[i] = mk(i)
		}
		return outs
	}
	if datasetID == DatasetCompileOnly {
		return []*labs.Outcome{mk(-1)}
	}
	return []*labs.Outcome{mk(datasetID)}
}

// CanServe reports whether the node satisfies every requirement of a job.
func (n *Node) CanServe(job *Job) bool {
	lab := labs.ByID(job.LabID)
	if lab == nil {
		return false
	}
	for _, r := range lab.Requirements {
		if !n.Tags[r] {
			return false
		}
	}
	if lab.NumGPUs > n.GPUs {
		return false
	}
	return true
}
