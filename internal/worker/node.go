package worker

import (
	"fmt"
	"sync/atomic"
	"time"

	"webgpu/internal/labs"
	"webgpu/internal/metrics"
	"webgpu/internal/minicuda"
	"webgpu/internal/progcache"
	"webgpu/internal/sandbox"
)

// Node is the execution core shared by the v1 (push) and v2 (poll)
// workers: it owns the GPUs, the container pool, the security scanner,
// the program cache, and the per-job pipeline.
type Node struct {
	ID      string
	GPUs    int
	Tags    map[string]bool
	pool    *Pool
	scanner *sandbox.Scanner
	limits  sandbox.Limits
	metrics *metrics.Registry
	progs   *progcache.Cache

	// Per-container admission: each pooled container owns its own
	// simulated device set, so up to cap(sem) jobs execute concurrently —
	// a node with k pooled containers runs k jobs at once instead of
	// serializing behind a node-wide mutex.
	sem        chan struct{}
	inflight   atomic.Int32
	inflightHW atomic.Int32 // high-water mark of concurrent jobs
}

// NodeConfig configures a worker node.
type NodeConfig struct {
	ID       string
	GPUs     int // simulated GPUs per container
	Images   []Image
	PerImage int // warm containers per image
	Tags     []string
	ScanMode sandbox.ScanMode
	Limits   sandbox.Limits

	// MaxConcurrent bounds jobs in flight; 0 sizes it to the warm-pool
	// capacity (PerImage × images, min 1) — the paper's container-pool
	// unit of worker concurrency.
	MaxConcurrent int

	// ProgCache is the compiled-program cache the node's pipeline uses;
	// nil uses the process-wide progcache.Default.
	ProgCache *progcache.Cache
}

// DefaultNodeConfig returns a single-GPU CUDA worker configuration.
func DefaultNodeConfig(id string) NodeConfig {
	return NodeConfig{
		ID:       id,
		GPUs:     1,
		Images:   DefaultImages(),
		PerImage: 2,
		Tags:     []string{"cuda", "opencl"},
		ScanMode: sandbox.ScanRaw,
		Limits:   sandbox.DefaultLimits(),
	}
}

// NewNode builds a node from its configuration.
func NewNode(cfg NodeConfig) *Node {
	gpus := cfg.GPUs
	if gpus <= 0 {
		gpus = 1
	}
	tags := map[string]bool{}
	for _, t := range cfg.Tags {
		tags[t] = true
	}
	if gpus > 1 {
		tags[labs.ReqMultiGPU] = true
	}
	// PerImage 0 defaults to one warm container; a negative value means
	// "no warm pool" (every acquisition is a cold start — the Figure 7
	// ablation).
	perImage := cfg.PerImage
	if perImage == 0 {
		perImage = 1
	}
	if perImage < 0 {
		perImage = 0
	}
	images := cfg.Images
	if images == nil {
		images = DefaultImages()
	}
	// A node advertises "mpi" when one of its images carries the MPI
	// toolchain.
	for _, img := range images {
		if img.Toolchains["mpi"] {
			tags["mpi"] = true
		}
	}
	limits := cfg.Limits
	if limits.MaxSteps == 0 {
		limits = sandbox.DefaultLimits()
	}
	maxConc := cfg.MaxConcurrent
	if maxConc <= 0 {
		maxConc = perImage * len(images)
	}
	if maxConc < 1 {
		maxConc = 1
	}
	progs := cfg.ProgCache
	if progs == nil {
		progs = progcache.Default
	}
	return &Node{
		ID:      cfg.ID,
		GPUs:    gpus,
		Tags:    tags,
		pool:    NewPool(images, gpus, perImage),
		scanner: sandbox.NewScanner(nil, cfg.ScanMode),
		limits:  limits,
		metrics: metrics.NewRegistry(),
		progs:   progs,
		sem:     make(chan struct{}, maxConc),
	}
}

// Capabilities returns the node's tag set (for broker polling).
func (n *Node) Capabilities() map[string]bool {
	caps := map[string]bool{}
	for t := range n.Tags {
		caps[t] = true
	}
	return caps
}

// Metrics exposes the node's registry (health dashboard).
func (n *Node) Metrics() *metrics.Registry { return n.metrics }

// Pool exposes the container pool (tests and the dashboard).
func (n *Node) Pool() *Pool { return n.pool }

// ProgCache exposes the node's program cache.
func (n *Node) ProgCache() *progcache.Cache { return n.progs }

// MaxConcurrent reports how many jobs the node admits at once.
func (n *Node) MaxConcurrent() int { return cap(n.sem) }

// InflightHighWater reports the largest number of jobs the node has
// executed concurrently.
func (n *Node) InflightHighWater() int { return int(n.inflightHW.Load()) }

// Execute runs one job through the full pipeline: admission, security
// scan, image selection, container acquisition, cached compile, run,
// container teardown. Result.QueueWait carries the time the job spent
// blocked on admission (a loaded node queues jobs at its semaphore the
// way the v1 web tier queued them behind busy workers).
func (n *Node) Execute(job *Job) *Result {
	res := &Result{JobID: job.ID, WorkerID: n.ID}
	enqueued := time.Now()
	n.sem <- struct{}{}
	defer func() { <-n.sem }()
	res.QueueWait = time.Since(enqueued)

	cur := n.inflight.Add(1)
	defer n.inflight.Add(-1)
	for {
		hw := n.inflightHW.Load()
		if cur <= hw || n.inflightHW.CompareAndSwap(hw, cur) {
			break
		}
	}

	start := time.Now()
	defer func() {
		res.ExecDuration = time.Since(start)
		res.CompletedAt = time.Now()
		n.metrics.Inc("jobs_total", 1)
		n.metrics.ObserveDuration("job_exec_ms", res.ExecDuration)
		n.metrics.ObserveDuration("job_queue_wait_ms", res.QueueWait)
	}()

	lab := labs.ByID(job.LabID)
	if lab == nil {
		res.Error = fmt.Sprintf("worker: unknown lab %q", job.LabID)
		n.metrics.Inc("jobs_unknown_lab", 1)
		return res
	}

	// Compile-time blacklist (§III-D).
	if err := n.scanner.Check(job.Source); err != nil {
		res.Rejected = true
		res.Error = err.Error()
		n.metrics.Inc("jobs_rejected", 1)
		return res
	}

	// Reject out-of-range datasets before any compile work is spent.
	if job.DatasetID != DatasetAll && job.DatasetID != DatasetCompileOnly &&
		(job.DatasetID < 0 || job.DatasetID >= lab.NumDatasets) {
		res.Outcomes = []*labs.Outcome{{LabID: lab.ID, DatasetID: job.DatasetID,
			RuntimeError: fmt.Sprintf("labs: dataset %d out of range [0,%d)", job.DatasetID, lab.NumDatasets)}}
		n.metrics.Inc("outcomes_incorrect", 1)
		return res
	}

	// Toolchain-based image selection (§VI-B).
	toolchains := []string{"cuda"}
	switch lab.Dialect.String() {
	case "OpenCL":
		toolchains = []string{"opencl"}
	case "OpenACC":
		toolchains = []string{"openacc"}
	}
	for _, r := range lab.Requirements {
		if r == labs.ReqMPI {
			toolchains = append(toolchains, "mpi")
		}
	}
	image, err := n.pool.SelectImage(toolchains)
	if err != nil {
		res.Error = err.Error()
		n.metrics.Inc("jobs_no_image", 1)
		return res
	}
	res.Image = image
	ctr, err := n.pool.Acquire(image)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	defer n.pool.Release(ctr)

	maxSteps := job.MaxSteps
	if maxSteps <= 0 {
		maxSteps = n.limits.MaxSteps
	}

	// Compile exactly once per job through the content-addressed program
	// cache — identical sources across jobs compile once per process.
	compileStart := time.Now()
	prog, status, cerr := n.compileSubmission(job.Source, lab.Dialect)
	compileWall := time.Since(compileStart)
	switch status {
	case progcache.Hit:
		n.metrics.Inc("progcache_hits", 1)
	case progcache.Coalesced:
		n.metrics.Inc("progcache_coalesced", 1)
	default:
		n.metrics.Inc("progcache_misses", 1)
	}

	switch {
	case cerr != nil:
		res.Outcomes = compileErrorOutcomes(lab, job.DatasetID, cerr, compileWall)
	case job.DatasetID == DatasetCompileOnly:
		res.Outcomes = []*labs.Outcome{{LabID: lab.ID, DatasetID: -1,
			Compiled: true, WallTime: compileWall}}
	case job.DatasetID == DatasetAll:
		res.Outcomes = labs.RunAllCompiled(lab, prog, ctr.Devices, maxSteps)
	default:
		res.Outcomes = []*labs.Outcome{labs.RunCompiled(lab, prog, job.DatasetID, ctr.Devices, maxSteps)}
	}
	for _, o := range res.Outcomes {
		clamped, truncated := n.limits.ClampOutput(o.Trace)
		if truncated {
			o.Trace = clamped
		}
		if o.Correct {
			n.metrics.Inc("outcomes_correct", 1)
		} else {
			n.metrics.Inc("outcomes_incorrect", 1)
		}
	}
	return res
}

// compileSubmission compiles through the node's program cache, enforcing
// the sandbox.Limits.CompileTimeout (§III-C: "time limits are placed ...
// on the duration of the compilation"). A timed-out compile is abandoned;
// it still completes in the background and populates the cache.
func (n *Node) compileSubmission(src string, dialect minicuda.Dialect) (*minicuda.Program, progcache.Status, error) {
	if n.limits.CompileTimeout <= 0 {
		return n.progs.CompileStatus(src, dialect)
	}
	type compiled struct {
		prog   *minicuda.Program
		status progcache.Status
		err    error
	}
	ch := make(chan compiled, 1)
	go func() {
		p, st, err := n.progs.CompileStatus(src, dialect)
		ch <- compiled{p, st, err}
	}()
	timer := time.NewTimer(n.limits.CompileTimeout)
	defer timer.Stop()
	select {
	case c := <-ch:
		return c.prog, c.status, c.err
	case <-timer.C:
		n.metrics.Inc("compile_timeouts", 1)
		return nil, progcache.Miss,
			fmt.Errorf("sandbox: compilation exceeded the %v limit", n.limits.CompileTimeout)
	}
}

// compileErrorOutcomes reports a compile failure in the same per-dataset
// shape a successful grading run produces.
func compileErrorOutcomes(lab *labs.Lab, datasetID int, cerr error, wall time.Duration) []*labs.Outcome {
	mk := func(id int) *labs.Outcome {
		return &labs.Outcome{LabID: lab.ID, DatasetID: id,
			CompileError: cerr.Error(), WallTime: wall}
	}
	if datasetID == DatasetAll {
		outs := make([]*labs.Outcome, lab.NumDatasets)
		for i := range outs {
			outs[i] = mk(i)
		}
		return outs
	}
	if datasetID == DatasetCompileOnly {
		return []*labs.Outcome{mk(-1)}
	}
	return []*labs.Outcome{mk(datasetID)}
}

// CanServe reports whether the node satisfies every requirement of a job.
func (n *Node) CanServe(job *Job) bool {
	lab := labs.ByID(job.LabID)
	if lab == nil {
		return false
	}
	for _, r := range lab.Requirements {
		if !n.Tags[r] {
			return false
		}
	}
	if lab.NumGPUs > n.GPUs {
		return false
	}
	return true
}
