package worker

import (
	"fmt"
	"sync"
	"time"

	"webgpu/internal/labs"
	"webgpu/internal/metrics"
	"webgpu/internal/sandbox"
)

// Node is the execution core shared by the v1 (push) and v2 (poll)
// workers: it owns the GPUs, the container pool, the security scanner,
// and the per-job pipeline.
type Node struct {
	ID      string
	GPUs    int
	Tags    map[string]bool
	pool    *Pool
	scanner *sandbox.Scanner
	limits  sandbox.Limits
	metrics *metrics.Registry

	// One job at a time per node: containers are bound to the node's
	// physical GPUs, so a second concurrent job would share (and, at
	// teardown, reset) the same devices.
	execMu sync.Mutex
}

// NodeConfig configures a worker node.
type NodeConfig struct {
	ID       string
	GPUs     int // simulated GPUs on the node
	Images   []Image
	PerImage int // warm containers per image
	Tags     []string
	ScanMode sandbox.ScanMode
	Limits   sandbox.Limits
}

// DefaultNodeConfig returns a single-GPU CUDA worker configuration.
func DefaultNodeConfig(id string) NodeConfig {
	return NodeConfig{
		ID:       id,
		GPUs:     1,
		Images:   DefaultImages(),
		PerImage: 2,
		Tags:     []string{"cuda", "opencl"},
		ScanMode: sandbox.ScanRaw,
		Limits:   sandbox.DefaultLimits(),
	}
}

// NewNode builds a node from its configuration.
func NewNode(cfg NodeConfig) *Node {
	gpus := cfg.GPUs
	if gpus <= 0 {
		gpus = 1
	}
	devices := labs.NewDeviceSet(gpus)
	tags := map[string]bool{}
	for _, t := range cfg.Tags {
		tags[t] = true
	}
	if gpus > 1 {
		tags[labs.ReqMultiGPU] = true
	}
	// PerImage 0 defaults to one warm container; a negative value means
	// "no warm pool" (every acquisition is a cold start — the Figure 7
	// ablation).
	perImage := cfg.PerImage
	if perImage == 0 {
		perImage = 1
	}
	if perImage < 0 {
		perImage = 0
	}
	images := cfg.Images
	if images == nil {
		images = DefaultImages()
	}
	// A node advertises "mpi" when one of its images carries the MPI
	// toolchain.
	for _, img := range images {
		if img.Toolchains["mpi"] {
			tags["mpi"] = true
		}
	}
	limits := cfg.Limits
	if limits.MaxSteps == 0 {
		limits = sandbox.DefaultLimits()
	}
	return &Node{
		ID:      cfg.ID,
		GPUs:    gpus,
		Tags:    tags,
		pool:    NewPool(images, devices, perImage),
		scanner: sandbox.NewScanner(nil, cfg.ScanMode),
		limits:  limits,
		metrics: metrics.NewRegistry(),
	}
}

// Capabilities returns the node's tag set (for broker polling).
func (n *Node) Capabilities() map[string]bool {
	caps := map[string]bool{}
	for t := range n.Tags {
		caps[t] = true
	}
	return caps
}

// Metrics exposes the node's registry (health dashboard).
func (n *Node) Metrics() *metrics.Registry { return n.metrics }

// Pool exposes the container pool (tests and the dashboard).
func (n *Node) Pool() *Pool { return n.pool }

// Execute runs one job through the full pipeline: security scan, image
// selection, container acquisition, compile/run, container teardown.
func (n *Node) Execute(job *Job) *Result {
	n.execMu.Lock()
	defer n.execMu.Unlock()
	start := time.Now()
	res := &Result{JobID: job.ID, WorkerID: n.ID}
	defer func() {
		res.ExecDuration = time.Since(start)
		res.CompletedAt = time.Now()
		n.metrics.Inc("jobs_total", 1)
		n.metrics.ObserveDuration("job_exec_ms", res.ExecDuration)
	}()

	lab := labs.ByID(job.LabID)
	if lab == nil {
		res.Error = fmt.Sprintf("worker: unknown lab %q", job.LabID)
		n.metrics.Inc("jobs_unknown_lab", 1)
		return res
	}

	// Compile-time blacklist (§III-D).
	if err := n.scanner.Check(job.Source); err != nil {
		res.Rejected = true
		res.Error = err.Error()
		n.metrics.Inc("jobs_rejected", 1)
		return res
	}

	// Toolchain-based image selection (§VI-B).
	toolchains := []string{"cuda"}
	switch lab.Dialect.String() {
	case "OpenCL":
		toolchains = []string{"opencl"}
	case "OpenACC":
		toolchains = []string{"openacc"}
	}
	for _, r := range lab.Requirements {
		if r == labs.ReqMPI {
			toolchains = append(toolchains, "mpi")
		}
	}
	image, err := n.pool.SelectImage(toolchains)
	if err != nil {
		res.Error = err.Error()
		n.metrics.Inc("jobs_no_image", 1)
		return res
	}
	res.Image = image
	ctr, err := n.pool.Acquire(image)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	defer n.pool.Release(ctr)

	maxSteps := job.MaxSteps
	if maxSteps <= 0 {
		maxSteps = n.limits.MaxSteps
	}

	switch job.DatasetID {
	case DatasetCompileOnly:
		res.Outcomes = []*labs.Outcome{labs.CompileOnly(lab, job.Source)}
	case DatasetAll:
		res.Outcomes = labs.RunAll(lab, job.Source, ctr.Devices, maxSteps)
	default:
		res.Outcomes = []*labs.Outcome{labs.Run(lab, job.Source, job.DatasetID, ctr.Devices, maxSteps)}
	}
	for _, o := range res.Outcomes {
		clamped, truncated := n.limits.ClampOutput(o.Trace)
		if truncated {
			o.Trace = clamped
		}
		if o.Correct {
			n.metrics.Inc("outcomes_correct", 1)
		} else {
			n.metrics.Inc("outcomes_incorrect", 1)
		}
	}
	return res
}

// CanServe reports whether the node satisfies every requirement of a job.
func (n *Node) CanServe(job *Job) bool {
	lab := labs.ByID(job.LabID)
	if lab == nil {
		return false
	}
	for _, r := range lab.Requirements {
		if !n.Tags[r] {
			return false
		}
	}
	if lab.NumGPUs > n.GPUs {
		return false
	}
	return true
}
