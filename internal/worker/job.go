// Package worker implements WebGPU's GPU worker nodes: the v1 design
// where the web server pushes jobs to registered workers that answer
// health checks (§III-C), and the v2 design where worker nodes poll a
// message broker for jobs matching their capabilities and run each job in
// a Docker-like container drawn from a pool mapped onto the node's GPUs
// (§VI-B). Job execution itself — blacklist scan, compile, run, check —
// is shared between the two.
package worker

import (
	"encoding/json"
	"time"

	"webgpu/internal/kernelcheck"
	"webgpu/internal/labs"
	"webgpu/internal/trace"
)

// Analysis policies for Job.AnalysisPolicy. The zero value behaves like
// AnalysisWarn, so existing jobs (and serialized jobs from older web
// tiers) grade exactly as before.
const (
	AnalysisWarn     = "warn"      // attach diagnostics, never block (default)
	AnalysisFailFast = "fail-fast" // provable (error-severity) bugs block execution
	AnalysisOff      = "off"       // skip static analysis entirely
)

// Dataset sentinels for Job.DatasetID.
const (
	DatasetAll         = -1 // run every dataset (final submission grading)
	DatasetCompileOnly = -2 // compile only (the editor's Compile button)
)

// ValidAnalysisPolicy reports whether p names a known analysis policy
// ("" counts as the warn default).
func ValidAnalysisPolicy(p string) bool {
	switch p {
	case "", AnalysisWarn, AnalysisFailFast, AnalysisOff:
		return true
	}
	return false
}

// Job is one unit of work: compile and/or run a student submission.
type Job struct {
	ID           string   `json:"id"`
	LabID        string   `json:"lab_id"`
	UserID       string   `json:"user_id"`
	SubmissionID string   `json:"submission_id"`
	Source       string   `json:"source"`
	DatasetID    int      `json:"dataset_id"`
	MaxSteps     int64    `json:"max_steps,omitempty"`
	Requirements []string `json:"requirements,omitempty"`

	// TraceID correlates the job with the web tier's end-to-end trace.
	// On the v2 path it also rides the broker message as a meta tag.
	TraceID string `json:"trace_id,omitempty"`

	// AnalysisPolicy selects what the worker does with kernelcheck
	// findings: AnalysisWarn (or "") attaches them to the result,
	// AnalysisFailFast additionally blocks execution on error-severity
	// diagnostics, AnalysisOff skips the analyzer. Instructors set this
	// per lab; the web tier stamps it onto each job.
	AnalysisPolicy string `json:"analysis_policy,omitempty"`
}

// Result is what a worker sends back to the web tier.
type Result struct {
	JobID        string          `json:"job_id"`
	WorkerID     string          `json:"worker_id"`
	Image        string          `json:"image,omitempty"`
	Outcomes     []*labs.Outcome `json:"outcomes,omitempty"`
	Rejected     bool            `json:"rejected,omitempty"` // failed the security scan
	Canceled     bool            `json:"canceled,omitempty"` // the job's context expired mid-pipeline
	Error        string          `json:"error,omitempty"`
	QueueWait    time.Duration   `json:"queue_wait,omitempty"`
	ExecDuration time.Duration   `json:"exec_duration,omitempty"`
	CompletedAt  time.Time       `json:"completed_at"`

	// Attempt is the broker delivery attempt that produced this result
	// (1-based on the v2 path; 0 on the in-process v1 path). A redelivered
	// job publishes a second result with a higher attempt — consumers
	// accept only the first result per job ID and use the attempt to
	// label the duplicates they drop.
	Attempt int `json:"attempt,omitempty"`

	// Diagnostics carries kernelcheck's static-analysis findings for the
	// submission, computed once per distinct source via the program
	// cache. AnalysisBlocked marks a fail-fast job whose execution was
	// skipped because the analyzer proved an error-severity bug.
	Diagnostics     []kernelcheck.Diagnostic `json:"diagnostics,omitempty"`
	AnalysisBlocked bool                     `json:"analysis_blocked,omitempty"`

	// Transient marks an infrastructure failure (worker crash, injected
	// fault) rather than a verdict on the submission: the job is safe to
	// retry. The v2 driver nacks transient results instead of publishing
	// them; the v1 registry retries the dispatch with backoff.
	Transient bool `json:"transient,omitempty"`

	// TraceID echoes Job.TraceID; Spans carries the worker-side spans
	// back across a process boundary (the v2 result topic) so the web
	// tier can merge them into the canonical trace. On the v1 in-process
	// path the node writes straight into the context's trace and Spans
	// stays empty.
	TraceID string       `json:"trace_id,omitempty"`
	Spans   []trace.Span `json:"spans,omitempty"`
}

// Correct reports whether every outcome passed.
func (r *Result) Correct() bool {
	if r.Error != "" || r.Rejected || len(r.Outcomes) == 0 {
		return false
	}
	for _, o := range r.Outcomes {
		if !o.Correct {
			return false
		}
	}
	return true
}

// EncodeJob serializes a job for the broker.
func EncodeJob(j *Job) []byte {
	b, _ := json.Marshal(j)
	return b
}

// DecodeJob deserializes a broker payload.
func DecodeJob(b []byte) (*Job, error) {
	var j Job
	if err := json.Unmarshal(b, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// EncodeResult serializes a result for the broker.
func EncodeResult(r *Result) []byte {
	b, _ := json.Marshal(r)
	return b
}

// DecodeResult deserializes a result payload.
func DecodeResult(b []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
