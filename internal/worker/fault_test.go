package worker

import (
	"context"
	"errors"
	"testing"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/queue"
)

func TestResultDedup(t *testing.T) {
	d := NewResultDedup(3)
	if !d.Accept("j1", 1) {
		t.Fatal("first result rejected")
	}
	if d.Accept("j1", 2) {
		t.Fatal("duplicate accepted")
	}
	if got := d.Duplicates(); got != 1 {
		t.Errorf("duplicates = %d", got)
	}
	if a, ok := d.AcceptedAttempt("j1"); !ok || a != 1 {
		t.Errorf("accepted attempt = %d, %v", a, ok)
	}
	// FIFO eviction at capacity: j1 falls out after three newer jobs.
	d.Accept("j2", 1)
	d.Accept("j3", 1)
	d.Accept("j4", 1)
	if d.Len() != 3 {
		t.Errorf("len = %d, want capacity 3", d.Len())
	}
	if _, ok := d.AcceptedAttempt("j1"); ok {
		t.Error("j1 should have been evicted")
	}
	if !d.Accept("j1", 5) {
		t.Error("post-eviction result should be accepted again")
	}
}

func TestNodeIDFormatting(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{1, "worker-001"},
		{42, "worker-042"},
		{999, "worker-999"},
		// The old per-digit rune arithmetic produced "worker-:00" here.
		{1000, "worker-1000"},
		{12345, "worker-12345"},
	}
	for _, tc := range cases {
		if got := nodeID(tc.n); got != tc.want {
			t.Errorf("nodeID(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestDispatchRetriesInjectedPushFault(t *testing.T) {
	reg := NewRegistry(time.Minute)
	reg.Register(NewNode(DefaultNodeConfig("w1")))
	faults := faultinject.New(1)
	reg.SetFaults(faults)
	reg.SetRetry(5, time.Microsecond)

	// The first two pushes fail; the third succeeds.
	faults.Enable(faultinject.PointV1Push, faultinject.Fault{Count: 2})
	res, err := reg.Dispatch(context.Background(), refJob("j1", "vector-add", 0))
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if !res.Correct() {
		t.Fatalf("result = %+v", res)
	}
	if got := reg.Retries(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

func TestDispatchRetriesTransientWorkerFault(t *testing.T) {
	faults := faultinject.New(1)
	cfg := DefaultNodeConfig("w1")
	cfg.Faults = faults
	reg := NewRegistry(time.Minute)
	reg.Register(NewNode(cfg))
	reg.SetFaults(faults)
	reg.SetRetry(5, time.Microsecond)

	// One transient exec failure on the worker; the retry runs clean.
	faults.Enable(faultinject.PointNodeExec, faultinject.Fault{Once: true})
	res, err := reg.Dispatch(context.Background(), refJob("j1", "vector-add", 0))
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if res.Transient || !res.Correct() {
		t.Fatalf("result = %+v", res)
	}
	if got := reg.Retries(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

func TestDispatchGivesUpWrappingLastError(t *testing.T) {
	reg := NewRegistry(time.Minute)
	reg.SetRetry(2, time.Microsecond)
	_, err := reg.Dispatch(context.Background(), refJob("j1", "vector-add", 0))
	if err == nil {
		t.Fatal("dispatch into an empty pool succeeded")
	}
	// The give-up error wraps the root cause so callers can still switch
	// on it.
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want wrapped ErrNoWorkers", err)
	}
	if errors.Is(ErrNoWorkers, err) && err.Error() == ErrNoWorkers.Error() {
		t.Fatalf("error was not wrapped with retry context: %v", err)
	}
	if got := reg.Retries(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

func TestDispatchGivesUpOnPersistentInjectedFault(t *testing.T) {
	reg := NewRegistry(time.Minute)
	reg.Register(NewNode(DefaultNodeConfig("w1")))
	faults := faultinject.New(1)
	reg.SetFaults(faults)
	reg.SetRetry(3, time.Microsecond)

	faults.Enable(faultinject.PointV1Push, faultinject.Fault{}) // always fires
	_, err := reg.Dispatch(context.Background(), refJob("j1", "vector-add", 0))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if got := faults.Fired(faultinject.PointV1Push); got != 4 {
		t.Errorf("push attempts = %d, want 1 + 3 retries", got)
	}
}

// TestDriverDuplicateResultCarriesAttempt exercises the at-least-once
// duplicate-result hole end to end: a driver that crashes after
// publishing its result (but before the ack) causes a redelivery, and
// BOTH results land on the results topic — distinguished by their
// attempt number, on the Result and as an attempt: meta tag, so a
// deduping consumer keeps exactly one.
func TestDriverDuplicateResultCarriesAttempt(t *testing.T) {
	b := queue.NewBroker()
	cs := NewConfigServer(Config{PollInterval: time.Millisecond, Visibility: 50 * time.Millisecond})
	faults := faultinject.New(1)
	faults.Enable(faultinject.PointDriverCrashAfterPublish, faultinject.Fault{Once: true})

	d := NewDriver(NewNode(DefaultNodeConfig("w1")), b, cs)
	d.SetFaults(faults)
	d.Start()
	defer d.Stop()

	_, _ = b.Publish(TopicJobs, EncodeJob(refJob("jdup", "vector-add", 0)))
	deadline := time.Now().Add(10 * time.Second)
	for b.Depth(TopicResults) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b.Depth(TopicResults); got != 2 {
		t.Fatalf("results depth = %d, want the duplicate too", got)
	}

	dedup := NewResultDedup(0)
	accepted := 0
	for i := 0; i < 2; i++ {
		del, ok, err := b.Poll(TopicResults, "web", map[string]bool{}, time.Minute)
		if !ok || err != nil {
			t.Fatalf("poll %d: %v %v", i, ok, err)
		}
		res, derr := DecodeResult(del.Msg.Payload)
		if derr != nil {
			t.Fatal(derr)
		}
		wantAttempt := i + 1 // FIFO: attempt 1's result precedes attempt 2's
		if res.Attempt != wantAttempt {
			t.Errorf("result %d: attempt = %d, want %d", i, res.Attempt, wantAttempt)
		}
		if got := queue.AttemptTag(del.Msg.Tags); got != wantAttempt {
			t.Errorf("result %d: attempt tag = %d, want %d", i, got, wantAttempt)
		}
		if res.JobID != "jdup" {
			t.Errorf("result %d: job = %q", i, res.JobID)
		}
		if dedup.Accept(res.JobID, res.Attempt) {
			accepted++
		}
		_ = del.Ack()
	}
	if accepted != 1 {
		t.Errorf("accepted %d results, want exactly 1", accepted)
	}
	if got := d.Crashes(); got != 1 {
		t.Errorf("crashes = %d, want 1", got)
	}
}
