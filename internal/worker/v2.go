package worker

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webgpu/internal/queue"
	"webgpu/internal/trace"
)

// v2 architecture (§VI, Figures 6-7): workers *poll* the message broker
// for jobs matching their capabilities, execute them in pooled
// containers, and publish results back. Each worker watches a remote
// configuration service; a config change restarts the main driver. This
// pull model is what lets the fleet autoscale freely — the web tier never
// needs to know which workers exist.

// Topics used on the broker.
const (
	TopicJobs    = "jobs"
	TopicResults = "results"
)

// DefaultVisibility is the job lease duration: a worker that dies
// mid-job loses its lease and the job is redelivered elsewhere.
const DefaultVisibility = 2 * time.Minute

// Config is the remote worker configuration (§VI-B: "a remote
// configuration system ... allows all worker nodes to be remotely
// configured uniformly. A change in the remote configuration triggers the
// worker node to restart the main driver").
type Config struct {
	PollInterval time.Duration
	Visibility   time.Duration
	Paused       bool
}

// DefaultConfig returns the standard driver configuration.
func DefaultConfig() Config {
	return Config{PollInterval: 5 * time.Millisecond, Visibility: DefaultVisibility}
}

// ConfigServer is the shared remote configuration endpoint.
type ConfigServer struct {
	mu      sync.Mutex
	cfg     Config
	version int64
}

// NewConfigServer creates a server with the given initial configuration.
func NewConfigServer(cfg Config) *ConfigServer {
	return &ConfigServer{cfg: cfg, version: 1}
}

// Get returns the current configuration and its version.
func (cs *ConfigServer) Get() (Config, int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.cfg, cs.version
}

// Update publishes a new configuration, bumping the version.
func (cs *ConfigServer) Update(cfg Config) int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.cfg = cfg
	cs.version++
	return cs.version
}

// Driver is the v2 worker main loop (Figure 7 item 4).
type Driver struct {
	node    *Node
	broker  *queue.Broker
	cfgSrv  *ConfigServer
	stopCh  chan struct{}
	doneCh  chan struct{}
	started atomic.Bool

	jobsDone atomic.Int64
	restarts atomic.Int64
	cfgVer   atomic.Int64
}

// NewDriver wires a node to a broker and configuration service.
func NewDriver(node *Node, broker *queue.Broker, cfgSrv *ConfigServer) *Driver {
	return &Driver{
		node:   node,
		broker: broker,
		cfgSrv: cfgSrv,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// Start launches the polling loop. The initial configuration is fetched
// synchronously so a later Update is always observed as a change.
func (d *Driver) Start() {
	if !d.started.CompareAndSwap(false, true) {
		return
	}
	cfg, ver := d.cfgSrv.Get()
	d.cfgVer.Store(ver)
	go d.loop(cfg)
}

// Stop terminates the loop and waits for it to exit.
func (d *Driver) Stop() {
	if !d.started.Load() {
		return
	}
	select {
	case <-d.stopCh:
	default:
		close(d.stopCh)
	}
	<-d.doneCh
}

// JobsDone reports how many jobs this driver completed.
func (d *Driver) JobsDone() int64 { return d.jobsDone.Load() }

// Restarts reports how many times a config change restarted the driver.
func (d *Driver) Restarts() int64 { return d.restarts.Load() }

func (d *Driver) loop(cfg Config) {
	defer close(d.doneCh)
	caps := d.node.Capabilities()
	for {
		select {
		case <-d.stopCh:
			return
		default:
		}
		// Config watch: a version change restarts the driver state.
		if ncfg, nver := d.cfgSrv.Get(); nver != d.cfgVer.Load() {
			cfg = ncfg
			d.cfgVer.Store(nver)
			d.restarts.Add(1)
			caps = d.node.Capabilities()
		}
		if cfg.Paused {
			if !sleepOrStop(d.stopCh, cfg.PollInterval) {
				return
			}
			continue
		}
		delivery, ok, err := d.broker.Poll(TopicJobs, d.node.ID, caps, cfg.Visibility)
		if err != nil {
			return // broker closed
		}
		if !ok {
			if !sleepOrStop(d.stopCh, cfg.PollInterval) {
				return
			}
			continue
		}
		job, derr := DecodeJob(delivery.Msg.Payload)
		if derr != nil {
			_ = delivery.Nack() // poison message heads to the DLQ
			continue
		}
		// Broker wait is measured at dequeue (not after execution, which
		// used to fold the run itself into the queue-wait figure); the
		// node adds its own admission wait inside Execute.
		brokerWait := time.Since(delivery.Msg.Enqueued)
		// The trace ID rides the job (and the message's meta tag as a
		// fallback); the driver collects the worker-side spans locally
		// and ships them back on the result for the web tier to merge.
		traceID := job.TraceID
		if traceID == "" {
			traceID = queue.TraceTag(delivery.Msg.Tags)
			job.TraceID = traceID
		}
		ctx := context.Background()
		var tr *trace.Trace
		if traceID != "" {
			tr = trace.New(traceID)
			tr.Add(trace.Span{Name: "queue_wait", Start: delivery.Msg.Enqueued,
				Dur: brokerWait, Attrs: map[string]string{"worker": d.node.ID, "arch": "v2",
					"attempts": strconv.Itoa(delivery.Msg.Attempts)}})
			ctx = trace.NewContext(ctx, tr)
		}
		res := d.node.Execute(ctx, job)
		res.QueueWait += brokerWait
		if tr != nil {
			res.Spans = tr.Spans()
		}
		if _, err := d.broker.Publish(TopicResults, EncodeResult(res)); err != nil {
			_ = delivery.Nack()
			continue
		}
		_ = delivery.Ack()
		d.jobsDone.Add(1)
		d.node.Metrics().Inc("driver_jobs", 1)
	}
}

func sleepOrStop(stop <-chan struct{}, d time.Duration) bool {
	select {
	case <-stop:
		return false
	case <-time.After(d):
		return true
	}
}

// Fleet manages a set of v2 drivers, the unit the autoscaler adds and
// removes.
type Fleet struct {
	mu      sync.Mutex
	broker  *queue.Broker
	cfgSrv  *ConfigServer
	nextID  int
	drivers map[string]*Driver
	mkNode  func(id string) *Node
}

// NewFleet creates an empty fleet; mkNode builds each new worker node
// (nil uses DefaultNodeConfig).
func NewFleet(broker *queue.Broker, cfgSrv *ConfigServer, mkNode func(id string) *Node) *Fleet {
	if mkNode == nil {
		mkNode = func(id string) *Node { return NewNode(DefaultNodeConfig(id)) }
	}
	return &Fleet{broker: broker, cfgSrv: cfgSrv, drivers: map[string]*Driver{}, mkNode: mkNode}
}

// Scale adjusts the fleet to n workers, starting or stopping drivers.
func (f *Fleet) Scale(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.drivers) < n {
		f.nextID++
		id := nodeID(f.nextID)
		d := NewDriver(f.mkNode(id), f.broker, f.cfgSrv)
		f.drivers[id] = d
		d.Start()
	}
	for id, d := range f.drivers {
		if len(f.drivers) <= n {
			break
		}
		d.Stop()
		delete(f.drivers, id)
	}
}

func nodeID(n int) string {
	return "worker-" + string(rune('0'+n/100%10)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
}

// Size reports the current fleet size.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.drivers)
}

// JobsDone sums completed jobs across current drivers.
func (f *Fleet) JobsDone() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, d := range f.drivers {
		n += d.JobsDone()
	}
	return n
}

// Stop stops every driver.
func (f *Fleet) Stop() { f.Scale(0) }
