package worker

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/queue"
	"webgpu/internal/trace"
)

// v2 architecture (§VI, Figures 6-7): workers *poll* the message broker
// for jobs matching their capabilities, execute them in pooled
// containers, and publish results back. Each worker watches a remote
// configuration service; a config change restarts the main driver. This
// pull model is what lets the fleet autoscale freely — the web tier never
// needs to know which workers exist.

// Topics used on the broker.
const (
	TopicJobs    = "jobs"
	TopicResults = "results"
)

// DefaultVisibility is the job lease duration: a worker that dies
// mid-job loses its lease and the job is redelivered elsewhere.
const DefaultVisibility = 2 * time.Minute

// Config is the remote worker configuration (§VI-B: "a remote
// configuration system ... allows all worker nodes to be remotely
// configured uniformly. A change in the remote configuration triggers the
// worker node to restart the main driver").
type Config struct {
	PollInterval time.Duration
	Visibility   time.Duration
	Paused       bool
}

// DefaultConfig returns the standard driver configuration.
func DefaultConfig() Config {
	return Config{PollInterval: 5 * time.Millisecond, Visibility: DefaultVisibility}
}

// ConfigServer is the shared remote configuration endpoint.
type ConfigServer struct {
	mu      sync.Mutex
	cfg     Config
	version int64
}

// NewConfigServer creates a server with the given initial configuration.
func NewConfigServer(cfg Config) *ConfigServer {
	return &ConfigServer{cfg: cfg, version: 1}
}

// Get returns the current configuration and its version.
func (cs *ConfigServer) Get() (Config, int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.cfg, cs.version
}

// Update publishes a new configuration, bumping the version.
func (cs *ConfigServer) Update(cfg Config) int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.cfg = cfg
	cs.version++
	return cs.version
}

// Driver is the v2 worker main loop (Figure 7 item 4).
type Driver struct {
	node    *Node
	broker  *queue.Broker
	standby *queue.Broker // mirror to fail over to when the primary closes
	faults  *faultinject.Registry
	cfgSrv  *ConfigServer
	stopCh  chan struct{}
	doneCh  chan struct{}
	started atomic.Bool

	jobsDone  atomic.Int64
	restarts  atomic.Int64
	crashes   atomic.Int64 // injected mid-job crashes (abandoned leases)
	failovers atomic.Int64
	cfgVer    atomic.Int64
}

// NewDriver wires a node to a broker and configuration service.
func NewDriver(node *Node, broker *queue.Broker, cfgSrv *ConfigServer) *Driver {
	return &Driver{
		node:   node,
		broker: broker,
		cfgSrv: cfgSrv,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// SetStandby attaches the mirror broker: when the primary reports closed,
// the driver switches its polling (and result publishing) to the standby
// instead of exiting — the §VI-A availability-zone failover. Must be
// called before Start.
func (d *Driver) SetStandby(standby *queue.Broker) { d.standby = standby }

// SetFaults attaches a fault-injection registry to the driver's own fault
// points (crashes around publish/ack). Must be called before Start.
func (d *Driver) SetFaults(r *faultinject.Registry) { d.faults = r }

// Start launches the polling loop. The initial configuration is fetched
// synchronously so a later Update is always observed as a change.
func (d *Driver) Start() {
	if !d.started.CompareAndSwap(false, true) {
		return
	}
	cfg, ver := d.cfgSrv.Get()
	d.cfgVer.Store(ver)
	go d.loop(cfg)
}

// Stop terminates the loop and waits for it to exit.
func (d *Driver) Stop() {
	if !d.started.Load() {
		return
	}
	select {
	case <-d.stopCh:
	default:
		close(d.stopCh)
	}
	<-d.doneCh
}

// JobsDone reports how many jobs this driver completed.
func (d *Driver) JobsDone() int64 { return d.jobsDone.Load() }

// Restarts reports how many times a config change restarted the driver.
func (d *Driver) Restarts() int64 { return d.restarts.Load() }

// Crashes reports how many injected crashes abandoned a leased job.
func (d *Driver) Crashes() int64 { return d.crashes.Load() }

// Failovers reports how many times the driver switched to the standby
// broker after the primary closed.
func (d *Driver) Failovers() int64 { return d.failovers.Load() }

func (d *Driver) loop(cfg Config) {
	defer close(d.doneCh)
	caps := d.node.Capabilities()
	broker := d.broker
	for {
		select {
		case <-d.stopCh:
			return
		default:
		}
		// Config watch: a version change restarts the driver state.
		if ncfg, nver := d.cfgSrv.Get(); nver != d.cfgVer.Load() {
			cfg = ncfg
			d.cfgVer.Store(nver)
			d.restarts.Add(1)
			caps = d.node.Capabilities()
		}
		if cfg.Paused {
			if !sleepOrStop(d.stopCh, cfg.PollInterval) {
				return
			}
			continue
		}
		delivery, ok, err := broker.Poll(TopicJobs, d.node.ID, caps, cfg.Visibility)
		if err != nil {
			if errors.Is(err, queue.ErrClosed) {
				// Primary gone: fail over to the mirrored standby, which
				// holds a copy of every publish (§VI-A). Without one, the
				// driver has nothing left to poll and exits.
				if d.standby != nil && broker != d.standby {
					broker = d.standby
					d.failovers.Add(1)
					d.node.Metrics().Inc("driver_failovers", 1)
					continue
				}
				return
			}
			// Transient poll failure (network blip, injected fault): back
			// off one interval and retry rather than dying.
			if !sleepOrStop(d.stopCh, cfg.PollInterval) {
				return
			}
			continue
		}
		if !ok {
			if !sleepOrStop(d.stopCh, cfg.PollInterval) {
				return
			}
			continue
		}
		job, derr := DecodeJob(delivery.Msg.Payload)
		if derr != nil {
			_ = delivery.Nack() // poison message heads to the DLQ
			continue
		}
		// Broker wait is measured at dequeue (not after execution, which
		// used to fold the run itself into the queue-wait figure); the
		// node adds its own admission wait inside Execute.
		brokerWait := time.Since(delivery.Msg.Enqueued)
		// The trace ID rides the job (and the message's meta tag as a
		// fallback); the driver collects the worker-side spans locally
		// and ships them back on the result for the web tier to merge.
		traceID := job.TraceID
		if traceID == "" {
			traceID = queue.TraceTag(delivery.Msg.Tags)
			job.TraceID = traceID
		}
		ctx := context.Background()
		var tr *trace.Trace
		if traceID != "" {
			tr = trace.New(traceID)
			tr.Add(trace.Span{Name: "queue_wait", Start: delivery.Msg.Enqueued,
				Dur: brokerWait, Attrs: map[string]string{"worker": d.node.ID, "arch": "v2",
					"attempts": strconv.Itoa(delivery.Msg.Attempts)}})
			ctx = trace.NewContext(ctx, tr)
		}
		res := d.node.Execute(ctx, job)
		res.QueueWait += brokerWait
		res.Attempt = delivery.Msg.Attempts
		if tr != nil {
			res.Spans = tr.Spans()
		}
		if res.Transient {
			// Infrastructure failure, not a verdict on the submission:
			// nack so a later attempt (possibly elsewhere) retries; the
			// broker dead-letters it after too many attempts.
			_ = delivery.Nack()
			d.node.Metrics().Inc("driver_transient_nacks", 1)
			continue
		}
		if d.faults.Fire(faultinject.PointDriverCrashBeforeAck) != nil {
			// Simulated crash with the result still local: the lease
			// expires unacked and the job is redelivered elsewhere.
			d.crashes.Add(1)
			continue
		}
		// The attempt rides the result message as a meta tag (and the
		// Result itself) so consumers can dedup a redelivered job's
		// second result.
		tags := []string{queue.MetaAttempt(res.Attempt)}
		if traceID != "" {
			tags = append(tags, queue.MetaTrace(traceID))
		}
		if err := d.faults.Fire(faultinject.PointDriverPublishResult); err != nil {
			_ = delivery.Nack()
			continue
		}
		if _, err := broker.Publish(TopicResults, EncodeResult(res), tags...); err != nil {
			_ = delivery.Nack()
			continue
		}
		if d.faults.Fire(faultinject.PointDriverCrashAfterPublish) != nil {
			// Simulated crash after the result publish but before the ack:
			// the job redelivers and a duplicate result will be published —
			// exactly the at-least-once hole result dedup exists to close.
			d.crashes.Add(1)
			continue
		}
		// A failed ack leaves the lease to expire; at-least-once delivery
		// turns that into a redelivery plus a duplicate result downstream.
		_ = delivery.Ack()
		d.jobsDone.Add(1)
		d.node.Metrics().Inc("driver_jobs", 1)
	}
}

func sleepOrStop(stop <-chan struct{}, d time.Duration) bool {
	select {
	case <-stop:
		return false
	case <-time.After(d):
		return true
	}
}

// Fleet manages a set of v2 drivers, the unit the autoscaler adds and
// removes.
type Fleet struct {
	mu      sync.Mutex
	broker  *queue.Broker
	standby *queue.Broker
	faults  *faultinject.Registry
	cfgSrv  *ConfigServer
	nextID  int
	drivers map[string]*Driver
	mkNode  func(id string) *Node
}

// NewFleet creates an empty fleet; mkNode builds each new worker node
// (nil uses DefaultNodeConfig).
func NewFleet(broker *queue.Broker, cfgSrv *ConfigServer, mkNode func(id string) *Node) *Fleet {
	if mkNode == nil {
		mkNode = func(id string) *Node { return NewNode(DefaultNodeConfig(id)) }
	}
	return &Fleet{broker: broker, cfgSrv: cfgSrv, drivers: map[string]*Driver{}, mkNode: mkNode}
}

// SetStandby attaches the mirror broker every driver fails over to when
// the primary closes. Applies to drivers started by later Scale calls.
func (f *Fleet) SetStandby(standby *queue.Broker) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.standby = standby
}

// SetFaults attaches a fault-injection registry to drivers started by
// later Scale calls.
func (f *Fleet) SetFaults(r *faultinject.Registry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = r
}

// Scale adjusts the fleet to n workers, starting or stopping drivers.
func (f *Fleet) Scale(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.drivers) < n {
		f.nextID++
		id := nodeID(f.nextID)
		d := NewDriver(f.mkNode(id), f.broker, f.cfgSrv)
		d.SetStandby(f.standby)
		d.SetFaults(f.faults)
		f.drivers[id] = d
		d.Start()
	}
	for id, d := range f.drivers {
		if len(f.drivers) <= n {
			break
		}
		d.Stop()
		delete(f.drivers, id)
	}
}

func nodeID(n int) string {
	// %03d, not per-digit rune arithmetic: the old encoding produced
	// garbage IDs ("worker-:00") once a long-lived fleet's counter
	// passed 999.
	return fmt.Sprintf("worker-%03d", n)
}

// Size reports the current fleet size.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.drivers)
}

// JobsDone sums completed jobs across current drivers.
func (f *Fleet) JobsDone() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, d := range f.drivers {
		n += d.JobsDone()
	}
	return n
}

// Stop stops every driver.
func (f *Fleet) Stop() { f.Scale(0) }
