package worker

import (
	"errors"
	"fmt"
	"sync"

	"webgpu/internal/gpusim"
)

// Container pool (§VI-B): the driver "maintains a pool of Docker
// containers which are mapped onto a fixed number of GPUs ... the
// containers are configured to have the essential tools required for the
// lab — a CUDA lab will not, for example, have the PGI OpenACC tools.
// Because we maintain a pool of containers, we can delete a container
// after a job completes and start a new container to replenish the pool."

// ErrNoImage is returned when no container image provides a job's
// required toolchains.
var ErrNoImage = errors.New("worker: no container image provides the required toolchain")

// Image describes a container image and the toolchains installed in it.
type Image struct {
	Name       string
	Toolchains map[string]bool // "cuda", "opencl", "mpi"
}

// DefaultImages is the image set a standard worker node carries. The
// PGI image provides the OpenACC toolchain, as on the paper's workers —
// "a CUDA lab will not, for example, have the PGI OpenACC tools" (§VI-B).
func DefaultImages() []Image {
	return []Image{
		{Name: "webgpu/cuda:7.0", Toolchains: map[string]bool{"cuda": true}},
		{Name: "webgpu/opencl:1.2", Toolchains: map[string]bool{"opencl": true}},
		{Name: "webgpu/pgi-openacc:15.7", Toolchains: map[string]bool{"openacc": true}},
		{Name: "webgpu/cuda-mpi:7.0", Toolchains: map[string]bool{"cuda": true, "mpi": true}},
	}
}

// Container is one sandboxed execution environment holding its own
// simulated GPU set for the duration of a job. Because each container
// owns its devices (rather than sharing the node's), pooled containers
// can execute jobs concurrently without one job's teardown resetting
// another job's device memory.
type Container struct {
	ID      string
	Image   string
	Devices []*gpusim.Device
	spent   bool
}

// Pool manages fresh containers per image.
type Pool struct {
	mu        sync.Mutex
	images    map[string]Image
	imageList []Image
	free      map[string][]*Container
	perImage  int
	nextID    int
	gpus      int // simulated GPUs per container
	created   int64
	destroyed int64
	coldStart int64 // acquisitions that had to create a container on demand
}

// NewPool builds a container pool whose containers each expose gpus
// simulated GPUs, pre-warming perImage containers per image.
func NewPool(images []Image, gpus, perImage int) *Pool {
	if gpus <= 0 {
		gpus = 1
	}
	p := &Pool{
		images:    map[string]Image{},
		imageList: images,
		free:      map[string][]*Container{},
		perImage:  perImage,
		gpus:      gpus,
	}
	for _, img := range images {
		p.images[img.Name] = img
		for i := 0; i < perImage; i++ {
			p.free[img.Name] = append(p.free[img.Name], p.createLocked(img.Name))
		}
	}
	return p
}

func (p *Pool) createLocked(image string) *Container {
	p.nextID++
	p.created++
	devs := make([]*gpusim.Device, p.gpus)
	for i := range devs {
		devs[i] = gpusim.NewDefaultDevice()
		devs[i].SetIndex(i)
	}
	return &Container{
		ID:      fmt.Sprintf("ctr-%06d", p.nextID),
		Image:   image,
		Devices: devs,
	}
}

// Capacity reports the warm-pool size — the number of jobs the node can
// hold in flight before acquisitions cold-start extra containers.
func (p *Pool) Capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.perImage * len(p.imageList)
}

// SelectImage returns the name of an image providing every required
// toolchain (a CUDA job needs "cuda", an OpenCL lab "opencl", ...).
func (p *Pool) SelectImage(toolchains []string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best string
	bestSize := 1 << 30
	for name, img := range p.images {
		ok := true
		for _, t := range toolchains {
			if !img.Toolchains[t] {
				ok = false
				break
			}
		}
		// Prefer the smallest image that satisfies the job, and break ties
		// by name for determinism.
		if ok && (len(img.Toolchains) < bestSize || (len(img.Toolchains) == bestSize && name < best)) {
			best = name
			bestSize = len(img.Toolchains)
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: need %v", ErrNoImage, toolchains)
	}
	return best, nil
}

// Acquire takes a container of the given image from the pool, creating one
// on demand (a cold start) when the pool is empty.
func (p *Pool) Acquire(image string) (*Container, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.images[image]; !ok {
		return nil, fmt.Errorf("%w: image %q not present", ErrNoImage, image)
	}
	frees := p.free[image]
	if len(frees) == 0 {
		p.coldStart++
		return p.createLocked(image), nil
	}
	c := frees[len(frees)-1]
	p.free[image] = frees[:len(frees)-1]
	return c, nil
}

// Release destroys a used container and replenishes the pool with a fresh
// one, so no job ever sees another job's container state.
func (p *Pool) Release(c *Container) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c.spent {
		return
	}
	c.spent = true
	p.destroyed++
	for _, d := range c.Devices {
		d.Reset() // free any leaked device memory
	}
	if len(p.free[c.Image]) < p.perImage {
		p.free[c.Image] = append(p.free[c.Image], p.createLocked(c.Image))
	}
}

// Stats reports container churn: total created, destroyed, and cold
// starts (acquisitions that could not be served from the warm pool).
func (p *Pool) Stats() (created, destroyed, coldStarts int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created, p.destroyed, p.coldStart
}

// FreeCount reports warm containers available for an image.
func (p *Pool) FreeCount(image string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free[image])
}
