package worker

import "sync"

// DefaultDedupCapacity bounds how many job IDs ResultDedup remembers.
const DefaultDedupCapacity = 4096

// ResultDedup is the platform-level guard against the at-least-once hole:
// a worker that crashes after publishing its result but before acking the
// job leaves the job to redeliver, and the re-execution publishes a second
// result. Consumers route every result through Accept and count only the
// first per job ID; later results for the same job are duplicates to drop.
//
// Memory is bounded: once capacity job IDs are tracked, the oldest are
// evicted FIFO. A duplicate arriving after its job ID was evicted slips
// through, so size the capacity above the number of jobs that can be
// in flight across redelivery windows (the default is generous for a
// single course offering's burst).
type ResultDedup struct {
	mu       sync.Mutex
	capacity int
	seen     map[string]int // job ID -> attempt of the accepted result
	order    []string       // FIFO eviction queue
	dups     int64
}

// NewResultDedup creates a dedup window remembering up to capacity job
// IDs (<= 0 uses DefaultDedupCapacity).
func NewResultDedup(capacity int) *ResultDedup {
	if capacity <= 0 {
		capacity = DefaultDedupCapacity
	}
	return &ResultDedup{capacity: capacity, seen: make(map[string]int)}
}

// Accept reports whether this is the first result seen for jobID,
// recording the attempt that produced it. Subsequent calls for the same
// job return false and count a duplicate.
func (d *ResultDedup) Accept(jobID string, attempt int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.seen[jobID]; ok {
		d.dups++
		return false
	}
	for len(d.order) >= d.capacity {
		delete(d.seen, d.order[0])
		d.order = d.order[1:]
	}
	d.seen[jobID] = attempt
	d.order = append(d.order, jobID)
	return true
}

// AcceptedAttempt returns the attempt of the accepted result for jobID,
// or 0 and false if none was accepted (or it has been evicted).
func (d *ResultDedup) AcceptedAttempt(jobID string) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.seen[jobID]
	return a, ok
}

// Duplicates reports how many results were rejected as duplicates.
func (d *ResultDedup) Duplicates() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dups
}

// Len reports how many job IDs are currently tracked.
func (d *ResultDedup) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.seen)
}
