package worker

import (
	"sync"
	"testing"
	"time"

	"webgpu/internal/faultinject"
	"webgpu/internal/queue"
)

// fakeClock is a mutex-guarded manual clock shared with the broker.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDriverPauseResume: pausing via the remote config stops the driver
// from taking work without killing it; unpausing resumes the backlog.
// Each config change counts as one restart (§VI-B).
func TestDriverPauseResume(t *testing.T) {
	b := queue.NewBroker()
	cfg := Config{PollInterval: time.Millisecond, Visibility: time.Minute}
	cs := NewConfigServer(cfg)
	d := NewDriver(NewNode(DefaultNodeConfig("w1")), b, cs)
	d.Start()
	defer d.Stop()

	_, _ = b.Publish(TopicJobs, EncodeJob(refJob("j1", "vector-add", 0)))
	waitFor(t, "first job", func() bool { return d.JobsDone() == 1 })

	cfg.Paused = true
	cs.Update(cfg)
	waitFor(t, "pause restart", func() bool { return d.Restarts() == 1 })

	_, _ = b.Publish(TopicJobs, EncodeJob(refJob("j2", "vector-add", 0)))
	time.Sleep(50 * time.Millisecond) // ample polling intervals to misbehave in
	if got := d.JobsDone(); got != 1 {
		t.Fatalf("paused driver took a job: done = %d", got)
	}
	if got := b.Backlog(TopicJobs); got != 1 {
		t.Fatalf("backlog = %d, want the job still queued", got)
	}

	cfg.Paused = false
	cs.Update(cfg)
	waitFor(t, "resumed job", func() bool { return d.JobsDone() == 2 })
	if got := d.Restarts(); got != 2 {
		t.Errorf("restarts = %d, want 2", got)
	}
}

// TestDriverVisibilityChangeMidFlight: shortening the lease via the
// remote config applies to future polls only — a lease already taken
// under the old visibility keeps its original deadline, and the job
// redelivers (and completes) once that expires.
func TestDriverVisibilityChangeMidFlight(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := queue.NewBroker()
	b.SetClock(clk.Now)

	reg := faultinject.New(1)
	reg.Enable(faultinject.PointDriverCrashBeforeAck, faultinject.Fault{Once: true})

	cfg := Config{PollInterval: time.Millisecond, Visibility: 60 * time.Second}
	cs := NewConfigServer(cfg)
	d := NewDriver(NewNode(DefaultNodeConfig("w1")), b, cs)
	d.SetFaults(reg)
	d.Start()
	defer d.Stop()

	// The first delivery crashes before its ack, leaving a 60s lease.
	_, _ = b.Publish(TopicJobs, EncodeJob(refJob("j1", "vector-add", 0)))
	waitFor(t, "injected crash", func() bool { return d.Crashes() == 1 })

	// Shorten the visibility mid-flight.
	cfg.Visibility = 5 * time.Second
	cs.Update(cfg)
	waitFor(t, "config restart", func() bool { return d.Restarts() == 1 })

	// 6 simulated seconds in: past the new 5s visibility but far inside
	// the original 60s lease — the abandoned job must NOT redeliver yet.
	clk.Advance(6 * time.Second)
	time.Sleep(50 * time.Millisecond)
	if got := d.JobsDone(); got != 0 {
		t.Fatalf("job redelivered before its original lease expired: done = %d", got)
	}

	// Past the original lease: redelivered and completed (the crash fault
	// was Once, so the retry runs clean).
	clk.Advance(60 * time.Second)
	waitFor(t, "redelivered job", func() bool { return d.JobsDone() == 1 })
	if got := b.Stats().Redelivered; got != 1 {
		t.Errorf("redelivered = %d, want 1", got)
	}
	if u := b.Unaccounted(); u != 0 {
		t.Errorf("unaccounted = %d", u)
	}
}
