package worker

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"webgpu/internal/labs"
	"webgpu/internal/minicuda"
	"webgpu/internal/progcache"
	"webgpu/internal/sandbox"
)

// uniqueSource returns the vector-add reference with a tag that changes
// its content hash without changing its meaning.
func uniqueSource(tag string) string {
	return labs.ByID("vector-add").Reference + "\n// variant " + tag + "\n"
}

// TestNodeExecutesConcurrently proves a node with a container pool of
// size k runs k jobs at once without serializing on a node-wide mutex:
// three jobs with distinct sources are held inside the compiler behind a
// gate, which only opens once all three are in flight simultaneously.
func TestNodeExecutesConcurrently(t *testing.T) {
	const k = 3
	cache := progcache.New(16, nil)
	ready := make(chan struct{}, k)
	release := make(chan struct{})
	cache.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		ready <- struct{}{}
		<-release
		return minicuda.Compile(src, d)
	})
	cfg := DefaultNodeConfig("stress")
	cfg.MaxConcurrent = k
	cfg.ProgCache = cache
	n := NewNode(cfg)

	results := make(chan *Result, k)
	for i := 0; i < k; i++ {
		job := refJob(fmt.Sprintf("j%d", i), "vector-add", 0)
		job.Source = uniqueSource(fmt.Sprintf("concurrent-%d", i))
		go func(job *Job) { results <- n.Execute(context.Background(), job) }(job)
	}
	// All k jobs must reach the compiler together; if execution were
	// serialized, the first job would block in the gate forever while the
	// other two wait on the mutex, and this loop would time out.
	for i := 0; i < k; i++ {
		select {
		case <-ready:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d jobs entered execution concurrently — node serialized", i, k)
		}
	}
	close(release)
	for i := 0; i < k; i++ {
		if res := <-results; !res.Correct() {
			t.Errorf("job failed: %+v", res)
		}
	}
	if hw := n.InflightHighWater(); hw != k {
		t.Errorf("inflight high-water = %d, want %d", hw, k)
	}
}

// TestNodeStressMixedSources drives concurrent Execute calls carrying
// identical and distinct sources (run with -race) and asserts the cache
// counters: every distinct source compiles exactly once, everything else
// is a hit or a coalesced wait.
func TestNodeStressMixedSources(t *testing.T) {
	cache := progcache.New(64, nil)
	cfg := DefaultNodeConfig("stress2")
	cfg.PerImage = 2
	cfg.ProgCache = cache
	n := NewNode(cfg)

	const goroutines = 6
	const iters = 5
	shared := uniqueSource("stress-shared")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				src := shared
				if i%2 == 1 {
					src = uniqueSource(fmt.Sprintf("stress-%d", g))
				}
				job := refJob(fmt.Sprintf("s%d-%d", g, i), "vector-add", 0)
				job.Source = src
				if res := n.Execute(context.Background(), job); !res.Correct() {
					t.Errorf("goroutine %d iter %d: %+v", g, i, res)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := cache.Stats()
	wantCompiles := int64(goroutines + 1) // one shared + one per goroutine
	if s.Compiles != wantCompiles {
		t.Errorf("compiles = %d, want %d (stats %+v)", s.Compiles, wantCompiles, s)
	}
	if total := s.Hits + s.Misses + s.Coalesced; total != goroutines*iters {
		t.Errorf("cache accesses = %d, want %d", total, goroutines*iters)
	}
	if hw := n.InflightHighWater(); hw > n.MaxConcurrent() {
		t.Errorf("high-water %d exceeded admission limit %d", hw, n.MaxConcurrent())
	}
	hits := n.Metrics().Counter("progcache_hits")
	misses := n.Metrics().Counter("progcache_misses")
	if misses != float64(wantCompiles) {
		t.Errorf("node metrics misses = %g, want %d", misses, wantCompiles)
	}
	if hits == 0 {
		t.Error("node metrics recorded no cache hits")
	}
}

// TestNodeRunAllCompileOnce: a grade-everything job compiles once, and a
// repeat submission of the same source compiles zero times.
func TestNodeRunAllCompileOnce(t *testing.T) {
	cache := progcache.New(16, nil)
	cfg := DefaultNodeConfig("once")
	cfg.ProgCache = cache
	n := NewNode(cfg)

	job := refJob("j1", "vector-add", DatasetAll)
	if res := n.Execute(context.Background(), job); !res.Correct() {
		t.Fatalf("grading run failed: %+v", res)
	}
	s := cache.Stats()
	if s.Compiles != 1 || s.Misses != 1 || s.Hits != 0 {
		t.Errorf("after RunAll: %+v (want exactly one compile)", s)
	}
	if res := n.Execute(context.Background(), refJob("j2", "vector-add", DatasetAll)); !res.Correct() {
		t.Fatalf("second grading run failed: %+v", res)
	}
	s = cache.Stats()
	if s.Compiles != 1 || s.Hits != 1 {
		t.Errorf("after repeat RunAll: %+v (want a pure cache hit)", s)
	}
}

// TestNodeCompileTimeout: the sandbox CompileTimeout is enforced in the
// job pipeline.
func TestNodeCompileTimeout(t *testing.T) {
	cache := progcache.New(16, nil)
	cache.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		time.Sleep(200 * time.Millisecond)
		return minicuda.Compile(src, d)
	})
	cfg := DefaultNodeConfig("slowc")
	cfg.Limits = sandbox.DefaultLimits()
	cfg.Limits.CompileTimeout = 10 * time.Millisecond
	cfg.ProgCache = cache
	n := NewNode(cfg)

	res := n.Execute(context.Background(), refJob("j1", "vector-add", 0))
	if len(res.Outcomes) != 1 {
		t.Fatalf("outcomes = %+v", res.Outcomes)
	}
	o := res.Outcomes[0]
	if o.Compiled || !strings.Contains(o.CompileError, "exceeded") {
		t.Errorf("outcome = %+v, want a compile-timeout error", o)
	}
	if got := n.Metrics().Counter("compile_timeouts"); got != 1 {
		t.Errorf("compile_timeouts = %g", got)
	}
}

// TestNodeRejectsDatasetBeforeCompile: an out-of-range dataset never
// reaches the compiler.
func TestNodeRejectsDatasetBeforeCompile(t *testing.T) {
	cache := progcache.New(16, nil)
	cfg := DefaultNodeConfig("range")
	cfg.ProgCache = cache
	n := NewNode(cfg)
	res := n.Execute(context.Background(), refJob("j1", "vector-add", 99))
	if len(res.Outcomes) != 1 || !strings.Contains(res.Outcomes[0].RuntimeError, "out of range") {
		t.Fatalf("result = %+v", res)
	}
	if s := cache.Stats(); s.Misses+s.Hits+s.Coalesced != 0 {
		t.Errorf("out-of-range dataset touched the program cache: %+v", s)
	}
}

// TestPerContainerDevices: pooled containers own disjoint device sets, so
// concurrent jobs cannot reset each other's GPU state.
func TestPerContainerDevices(t *testing.T) {
	p := NewPool(DefaultImages(), 2, 2)
	a, err := p.Acquire("webgpu/cuda:7.0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Acquire("webgpu/cuda:7.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Devices) != 2 || len(b.Devices) != 2 {
		t.Fatalf("device counts: %d, %d, want 2 each", len(a.Devices), len(b.Devices))
	}
	for i := range a.Devices {
		if a.Devices[i] == b.Devices[i] {
			t.Errorf("containers %s and %s share device %d", a.ID, b.ID, i)
		}
	}
	if p.Capacity() != 2*len(DefaultImages()) {
		t.Errorf("capacity = %d", p.Capacity())
	}
}

// TestV1DispatchQueueWait: the push path now reports how long a job
// queued behind a busy worker instead of leaving QueueWait zero.
func TestV1DispatchQueueWait(t *testing.T) {
	cache := progcache.New(16, nil)
	ready := make(chan struct{}, 1)
	release := make(chan struct{})
	var gateOnce sync.Once
	cache.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		gateOnce.Do(func() {
			ready <- struct{}{}
			<-release
		})
		return minicuda.Compile(src, d)
	})
	cfg := DefaultNodeConfig("busy")
	cfg.MaxConcurrent = 1
	cfg.ProgCache = cache
	reg := NewRegistry(time.Minute)
	reg.Register(NewNode(cfg))

	first := refJob("hold", "vector-add", 0)
	first.Source = uniqueSource("queuewait-hold")
	done := make(chan *Result, 1)
	go func() {
		res, err := reg.Dispatch(context.Background(), first)
		if err != nil {
			t.Errorf("dispatch: %v", err)
		}
		done <- res
	}()
	<-ready // the first job owns the node's single admission slot
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(release)
	}()

	second := refJob("wait", "vector-add", 0)
	second.Source = uniqueSource("queuewait-blocked")
	res, err := reg.Dispatch(context.Background(), second) // queues behind the held job
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct() {
		t.Fatalf("queued job failed: %+v", res)
	}
	if res.QueueWait < 20*time.Millisecond {
		t.Errorf("QueueWait = %v, want the ~60ms spent queued behind the busy worker", res.QueueWait)
	}
	<-done
}
