package worker

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"webgpu/internal/kernelcheck"
	"webgpu/internal/labs"
	"webgpu/internal/progcache"
)

// vecAddUnused grades correctly but declares a variable it never reads —
// a hygiene finding the analyzer should attach without affecting grading.
const vecAddUnused = `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int spare = len * 2;
  if (i < len) {
    out[i] = in1[i] + in2[i];
  }
}
`

// vecAddRacy carries a provable shared-memory race: every thread stores
// s[tx] and reads s[tx + 1] with no barrier in between. (No bounds
// guard: a guarded access only rates a may-race warning.)
const vecAddRacy = `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  __shared__ float s[257];
  int tx = threadIdx.x;
  int i = blockIdx.x * blockDim.x + tx;
  s[tx] = in1[i];
  out[i] = s[tx + 1] + in2[i];
}
`

func hasDiag(diags []kernelcheck.Diagnostic, id string) bool {
	for _, d := range diags {
		if d.ID == id {
			return true
		}
	}
	return false
}

// TestAnalysisWarnDefault: the default (empty) policy attaches
// diagnostics to the result without changing the grading verdict.
func TestAnalysisWarnDefault(t *testing.T) {
	cfg := DefaultNodeConfig("kc1")
	cfg.ProgCache = progcache.New(16, nil)
	n := NewNode(cfg)

	job := refJob("j1", "vector-add", DatasetAll)
	job.Source = vecAddUnused
	res := n.Execute(context.Background(), job)
	if !res.Correct() {
		t.Fatalf("warn-policy job should grade normally: %+v", res)
	}
	if res.AnalysisBlocked {
		t.Error("warn policy must never block execution")
	}
	if !hasDiag(res.Diagnostics, kernelcheck.RuleUnused) {
		t.Errorf("diagnostics missing %s: %+v", kernelcheck.RuleUnused, res.Diagnostics)
	}
	if got := n.Metrics().Counter(kernelcheck.MetricName(kernelcheck.RuleUnused)); got < 1 {
		t.Errorf("fire counter for %s = %g, want >= 1", kernelcheck.RuleUnused, got)
	}
}

// TestAnalysisFailFastBlocks: under the fail-fast policy a provable race
// blocks execution, and the per-dataset outcomes carry the diagnostics.
func TestAnalysisFailFastBlocks(t *testing.T) {
	cfg := DefaultNodeConfig("kc2")
	cfg.ProgCache = progcache.New(16, nil)
	n := NewNode(cfg)

	job := refJob("j1", "vector-add", DatasetAll)
	job.Source = vecAddRacy
	job.AnalysisPolicy = AnalysisFailFast
	res := n.Execute(context.Background(), job)
	if !res.AnalysisBlocked {
		t.Fatalf("fail-fast job with a provable race was not blocked: %+v", res.Diagnostics)
	}
	if res.Correct() {
		t.Error("blocked job must not grade as correct")
	}
	if !hasDiag(res.Diagnostics, kernelcheck.RuleRace) {
		t.Errorf("diagnostics missing %s: %+v", kernelcheck.RuleRace, res.Diagnostics)
	}
	lab := 5 // vector-add has five datasets
	if len(res.Outcomes) != lab {
		t.Fatalf("outcomes = %d, want %d (one per dataset)", len(res.Outcomes), lab)
	}
	for _, o := range res.Outcomes {
		if !o.Compiled || o.Ran {
			t.Errorf("blocked outcome should be compiled-but-not-run: %+v", o)
		}
		if !strings.Contains(o.RuntimeError, "fail-fast") || !strings.Contains(o.RuntimeError, kernelcheck.RuleRace) {
			t.Errorf("outcome error missing the blocking diagnostics: %q", o.RuntimeError)
		}
	}
	if got := n.Metrics().Counter("jobs_analysis_blocked"); got != 1 {
		t.Errorf("jobs_analysis_blocked = %g, want 1", got)
	}

	// The same racy source under the default policy still executes.
	warn := refJob("j2", "vector-add", DatasetAll)
	warn.Source = vecAddRacy
	wres := n.Execute(context.Background(), warn)
	if wres.AnalysisBlocked {
		t.Error("default policy blocked execution")
	}
	if len(wres.Outcomes) == 0 {
		t.Fatal("default-policy job produced no outcomes")
	}
	// The kernel actually executed (and trapped on its own) rather than
	// being stopped by the analyzer.
	if strings.Contains(wres.Outcomes[0].RuntimeError, "fail-fast") {
		t.Errorf("default-policy outcome carries the fail-fast block: %q", wres.Outcomes[0].RuntimeError)
	}
	if !hasDiag(wres.Diagnostics, kernelcheck.RuleRace) {
		t.Error("default-policy result lost the race diagnostic")
	}
}

// TestAnalysisFailFastCleanRuns: fail-fast does not block a clean
// submission — warnings and info findings are not blocking.
func TestAnalysisFailFastCleanRuns(t *testing.T) {
	cfg := DefaultNodeConfig("kc3")
	cfg.ProgCache = progcache.New(16, nil)
	n := NewNode(cfg)

	job := refJob("j1", "vector-add", DatasetAll)
	job.AnalysisPolicy = AnalysisFailFast
	res := n.Execute(context.Background(), job)
	if res.AnalysisBlocked {
		t.Fatalf("clean reference was blocked: %+v", res.Diagnostics)
	}
	if !res.Correct() {
		t.Fatalf("clean reference failed under fail-fast: %+v", res)
	}
}

// TestAnalysisOff: the off policy skips the analyzer entirely.
func TestAnalysisOff(t *testing.T) {
	cfg := DefaultNodeConfig("kc4")
	cache := progcache.New(16, nil)
	cfg.ProgCache = cache
	n := NewNode(cfg)

	job := refJob("j1", "vector-add", 0)
	job.Source = vecAddUnused
	job.AnalysisPolicy = AnalysisOff
	res := n.Execute(context.Background(), job)
	if !res.Correct() {
		t.Fatalf("off-policy job failed: %+v", res)
	}
	if res.Diagnostics != nil {
		t.Errorf("off policy still produced diagnostics: %+v", res.Diagnostics)
	}
	if s := cache.Stats(); s.Analyzes != 0 {
		t.Errorf("off policy ran the analyzer: %+v", s)
	}
}

// TestAnalysisDiagnosticsCached: repeat submissions of the same source
// analyze once and hit the cached diagnostics artifact after.
func TestAnalysisDiagnosticsCached(t *testing.T) {
	cfg := DefaultNodeConfig("kc5")
	cache := progcache.New(16, nil)
	cfg.ProgCache = cache
	n := NewNode(cfg)

	for i := 0; i < 3; i++ {
		job := refJob("j", "vector-add", 0)
		job.Source = vecAddUnused
		if res := n.Execute(context.Background(), job); !res.Correct() {
			t.Fatalf("iteration %d failed: %+v", i, res)
		}
	}
	s := cache.Stats()
	if s.Analyzes != 1 {
		t.Errorf("Analyzes = %d, want 1", s.Analyzes)
	}
	if s.HitsDiagnostics != 2 {
		t.Errorf("HitsDiagnostics = %d, want 2", s.HitsDiagnostics)
	}
	// The compile-hit split is untouched by the analysis stage: three
	// jobs mean one miss and two compile hits, not four.
	if s.Misses != 1 || s.Hits != 2 {
		t.Errorf("compile counters skewed by analysis stage: %+v", s)
	}
}

// TestAnalysisRuleCountersPreregistered: every rule's fire counter
// exists at node start, before any job runs.
func TestAnalysisRuleCountersPreregistered(t *testing.T) {
	n := NewNode(DefaultNodeConfig("kc6"))
	snap := n.Metrics().Snapshot()
	for _, r := range kernelcheck.Rules() {
		if !strings.Contains(snap, kernelcheck.MetricName(r.ID)) {
			t.Errorf("metric %s not pre-registered", kernelcheck.MetricName(r.ID))
		}
	}
}

// TestAnalysisOffCriticalPath is the acceptance backstop for "the
// analyzer adds <10% to cold job latency". Under the default warn policy
// the analysis overlaps dataset execution, so a cold submission with
// analysis enabled should cost about the same wall time as one with
// analysis off. The rounds interleave the two policies and compare
// medians with a generous margin: a trip here means the analyzer landed
// back on the job's critical path, not that the machine was busy.
func TestAnalysisOffCriticalPath(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	cfg := DefaultNodeConfig("kc7")
	cfg.ProgCache = progcache.New(64, nil)
	n := NewNode(cfg)
	l := labs.ByID("tiled-matmul")

	run := func(policy string, round int) time.Duration {
		job := refJob(fmt.Sprintf("j-%s-%d", policy, round), "tiled-matmul", DatasetAll)
		// A unique trailing comment defeats the program cache, so every
		// round pays the cold compile (and, under warn, a cold analysis).
		job.Source = l.Reference + fmt.Sprintf("// %s round %d\n", policy, round)
		job.AnalysisPolicy = policy
		start := time.Now()
		res := n.Execute(context.Background(), job)
		if !res.Correct() {
			t.Fatalf("%s round %d failed: %+v", policy, round, res)
		}
		return time.Since(start)
	}

	const rounds = 15
	off := make([]time.Duration, rounds)
	warn := make([]time.Duration, rounds)
	for i := 0; i < rounds; i++ {
		off[i] = run(AnalysisOff, i)
		warn[i] = run(AnalysisWarn, i)
	}
	offMed, warnMed := medianDur(off), medianDur(warn)
	t.Logf("cold job median: analysis off %v, warn %v (+%.1f%%)",
		offMed, warnMed, 100*float64(warnMed-offMed)/float64(offMed))
	if warnMed > offMed+offMed/2+2*time.Millisecond {
		t.Errorf("warn-policy cold job median %v far exceeds off-policy median %v", warnMed, offMed)
	}
}

func medianDur(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
