package labs

import (
	"context"
	"strings"
	"testing"

	"webgpu/internal/wb"
)

func TestCatalogComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("catalog has %d labs, want 15 (Table II)", len(all))
	}
	seen := map[int]bool{}
	for _, l := range all {
		if seen[l.Number] {
			t.Errorf("duplicate lab number %d", l.Number)
		}
		seen[l.Number] = true
		if l.Name == "" || l.Summary == "" || l.Description == "" {
			t.Errorf("lab %s missing documentation", l.ID)
		}
		if l.Skeleton == "" || l.Reference == "" {
			t.Errorf("lab %s missing skeleton or reference", l.ID)
		}
		if l.NumDatasets <= 0 {
			t.Errorf("lab %s has no datasets", l.ID)
		}
		if len(l.Courses) == 0 {
			t.Errorf("lab %s used by no course", l.ID)
		}
		if l.MaxPoints() <= 0 {
			t.Errorf("lab %s has non-positive max points", l.ID)
		}
	}
	for n := 1; n <= 15; n++ {
		if !seen[n] {
			t.Errorf("missing lab number %d", n)
		}
	}
}

func TestByIDAndCourses(t *testing.T) {
	if ByID("vector-add") == nil {
		t.Fatal("vector-add not found")
	}
	if ByID("no-such-lab") != nil {
		t.Fatal("bogus id resolved")
	}
	hpp := ForCourse(CourseHPP)
	if len(hpp) < 7 {
		t.Errorf("HPP uses %d labs, expected at least 7", len(hpp))
	}
	for _, l := range hpp {
		if !l.UsedBy(CourseHPP) {
			t.Errorf("ForCourse returned %s which is not an HPP lab", l.ID)
		}
	}
	if ByID("mpi-stencil").UsedBy(CourseHPP) {
		t.Error("mpi-stencil should not be an HPP lab")
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	for _, l := range All() {
		a, err := l.Generate(0)
		if err != nil {
			t.Fatalf("%s: %v", l.ID, err)
		}
		b, err := l.Generate(0)
		if err != nil {
			t.Fatalf("%s: %v", l.ID, err)
		}
		if string(a.Expected.Data) != string(b.Expected.Data) {
			t.Errorf("%s: dataset 0 not deterministic", l.ID)
		}
		if len(a.Inputs) == 0 {
			t.Errorf("%s: dataset has no inputs", l.ID)
		}
	}
}

// TestReferenceSolutionsPass is the heart of the catalog test: every lab's
// instructor reference solution must compile and pass every dataset. This
// exercises the full compiler + simulator + harness stack for all 15 labs.
func TestReferenceSolutionsPass(t *testing.T) {
	for _, l := range All() {
		l := l
		t.Run(l.ID, func(t *testing.T) {
			t.Parallel()
			devices := NewDeviceSet(maxI(l.NumGPUs, 1))
			for ds := 0; ds < l.NumDatasets; ds++ {
				o := Run(context.Background(), l, l.Reference, ds, devices, 0)
				if !o.Compiled {
					t.Fatalf("dataset %d: reference failed to compile: %s", ds, o.CompileError)
				}
				if o.RuntimeError != "" {
					t.Fatalf("dataset %d: runtime error: %s", ds, o.RuntimeError)
				}
				if !o.Correct {
					t.Fatalf("dataset %d: reference marked incorrect: %s", ds, o.CheckMessage)
				}
				if o.SimTime <= 0 {
					t.Errorf("dataset %d: no simulated GPU time recorded", ds)
				}
			}
		})
	}
}

// TestSkeletonsCompileButFail: the unmodified skeletons must compile (so
// students start from a green compile) but must not pass the datasets.
func TestSkeletonsCompileButFail(t *testing.T) {
	for _, l := range All() {
		l := l
		t.Run(l.ID, func(t *testing.T) {
			t.Parallel()
			o := CompileOnly(l, l.Skeleton)
			if !o.Compiled {
				t.Fatalf("skeleton does not compile: %s", o.CompileError)
			}
			if l.ID == "device-query" {
				return // the demo lab's skeleton is intentionally complete
			}
			devices := NewDeviceSet(maxI(l.NumGPUs, 1))
			run := Run(context.Background(), l, l.Skeleton, 0, devices, 0)
			if run.Correct {
				t.Errorf("empty skeleton passes dataset 0")
			}
		})
	}
}

func TestRunReportsCompileError(t *testing.T) {
	l := ByID("vector-add")
	o := Run(context.Background(), l, "__global__ void vecAdd(float *a { }", 0, NewDeviceSet(1), 0)
	if o.Compiled {
		t.Fatal("broken source compiled")
	}
	if o.CompileError == "" {
		t.Fatal("no compile error message")
	}
	if o.Ran || o.Correct {
		t.Fatal("broken source ran")
	}
}

func TestRunReportsRuntimeError(t *testing.T) {
	l := ByID("vector-add")
	src := `
__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = in1[i] + in2[i]; // missing bounds check
}
`
	o := Run(context.Background(), l, src, 0, NewDeviceSet(1), 0)
	if !o.Compiled {
		t.Fatalf("compile failed: %s", o.CompileError)
	}
	if o.RuntimeError == "" {
		t.Fatal("out-of-bounds access not reported")
	}
	if !strings.Contains(o.RuntimeError, "illegal memory access") {
		t.Errorf("error = %q", o.RuntimeError)
	}
}

func TestRunReportsWrongAnswer(t *testing.T) {
	l := ByID("vector-add")
	src := `
__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) out[i] = in1[i] - in2[i]; // subtract instead of add
}
`
	o := Run(context.Background(), l, src, 0, NewDeviceSet(1), 0)
	if !o.Ran {
		t.Fatalf("run failed: %s", o.RuntimeError)
	}
	if o.Correct {
		t.Fatal("wrong answer accepted")
	}
	if !strings.Contains(o.CheckMessage, "did not match") {
		t.Errorf("message = %q", o.CheckMessage)
	}
}

func TestRunStepLimit(t *testing.T) {
	l := ByID("vector-add")
	src := `
__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  float x = 0.0f;
  while (1) { x += 1.0f; }
  if (i < len) out[i] = x;
}
`
	o := Run(context.Background(), l, src, 0, NewDeviceSet(1), 50000)
	if o.RuntimeError == "" || !strings.Contains(o.RuntimeError, "time limit") {
		t.Errorf("spin loop not limited: %+v", o)
	}
}

func TestRunAllCountsDatasets(t *testing.T) {
	l := ByID("scatter-to-gather")
	outs := RunAll(context.Background(), l, l.Reference, NewDeviceSet(1), 0)
	if len(outs) != l.NumDatasets {
		t.Fatalf("RunAll returned %d outcomes, want %d", len(outs), l.NumDatasets)
	}
	for i, o := range outs {
		if !o.Correct {
			t.Errorf("dataset %d failed: %s %s", i, o.RuntimeError, o.CheckMessage)
		}
	}
}

func TestKeywordsPresent(t *testing.T) {
	l := ByID("tiled-matmul")
	got := KeywordsPresent(l, l.Reference)
	if len(got) != 2 {
		t.Errorf("reference keywords = %v, want both", got)
	}
	// Keywords inside comments do not count (preprocessed scan).
	commented := "__global__ void matrixMultiplyShared(float *A, float *B, float *C, int a, int b, int c) {\n// __shared__ __syncthreads\n}"
	if got := KeywordsPresent(l, commented); len(got) != 0 {
		t.Errorf("commented keywords counted: %v", got)
	}
}

func TestTraceVisibleInOutcome(t *testing.T) {
	l := ByID("vector-add")
	o := Run(context.Background(), l, l.Reference, 0, NewDeviceSet(1), 0)
	if !strings.Contains(o.Trace, "input length") {
		t.Errorf("trace missing wbLog output:\n%s", o.Trace)
	}
	if !strings.Contains(o.Trace, "Performing CUDA computation") {
		t.Errorf("trace missing compute timer:\n%s", o.Trace)
	}
}

func TestDeviceResetBetweenRuns(t *testing.T) {
	l := ByID("vector-add")
	devs := NewDeviceSet(1)
	_ = Run(context.Background(), l, l.Reference, 0, devs, 0)
	if devs[0].AllocCount() != 0 {
		t.Errorf("device leaked %d allocations after run", devs[0].AllocCount())
	}
}

func TestRubricMaxPoints(t *testing.T) {
	r := Rubric{CompilePoints: 10, DatasetPoints: 15, KeywordPoints: 5,
		Keywords: []string{"a", "b"}, QuestionPoints: 5}
	if got := r.MaxPoints(4, 2); got != 10+60+10+10 {
		t.Errorf("MaxPoints = %d", got)
	}
}

func TestMPIStencilRequirements(t *testing.T) {
	l := ByID("mpi-stencil")
	if l.NumGPUs != 2 {
		t.Errorf("NumGPUs = %d", l.NumGPUs)
	}
	found := map[string]bool{}
	for _, r := range l.Requirements {
		found[r] = true
	}
	if !found[ReqMPI] || !found[ReqMultiGPU] {
		t.Errorf("requirements = %v", l.Requirements)
	}
	// Running with one GPU must fail gracefully.
	o := Run(context.Background(), l, l.Reference, 0, NewDeviceSet(1), 0)
	if o.RuntimeError == "" || !strings.Contains(o.RuntimeError, "GPUs") {
		t.Errorf("single-GPU run not rejected: %+v", o)
	}
}

func TestDatasetRangeChecked(t *testing.T) {
	l := ByID("vector-add")
	o := Run(context.Background(), l, l.Reference, 99, NewDeviceSet(1), 0)
	if o.RuntimeError == "" {
		t.Error("out-of-range dataset accepted")
	}
}

func TestOpenCLLabUsesOpenCLDialect(t *testing.T) {
	l := ByID("opencl-vector-add")
	// CUDA-style source must fail to compile under this lab.
	o := CompileOnly(l, "__global__ void vadd(float *a, float *b, float *r, int n) {}")
	if o.Compiled {
		t.Error("CUDA source compiled under OpenCL lab")
	}
}

func TestEqualizeOracleProperties(t *testing.T) {
	pix := []byte{100, 100, 120, 140, 160, 160, 160, 180}
	out := equalizeOracle(pix)
	if len(out) != len(pix) {
		t.Fatal("length changed")
	}
	// Equalization is monotone: equal inputs map to equal outputs, and
	// ordering is preserved.
	for i := range pix {
		for j := range pix {
			if pix[i] < pix[j] && out[i] > out[j] {
				t.Errorf("monotonicity violated: %d->%d vs %d->%d", pix[i], out[i], pix[j], out[j])
			}
			if pix[i] == pix[j] && out[i] != out[j] {
				t.Errorf("equal pixels diverged")
			}
		}
	}
	// The maximum pixel maps to 255.
	maxIn, maxOut := byte(0), byte(0)
	for i := range pix {
		if pix[i] >= maxIn {
			maxIn = pix[i]
			maxOut = out[i]
		}
	}
	if maxOut != 255 {
		t.Errorf("max pixel maps to %d, want 255", maxOut)
	}
}

func TestTableIIMatrix(t *testing.T) {
	// Spot-check the course matrix against the paper's Table II pattern.
	checks := []struct {
		id     string
		course Course
		want   bool
	}{
		{"vector-add", CourseHPP, true},
		{"vector-add", CourseECE598, false},
		{"tiled-matmul", CourseECE408, true},
		{"opencl-vector-add", CourseHPP, true},
		{"opencl-vector-add", CourseECE408, false},
		{"sgemm", CourseECE598, true},
		{"sgemm", CourseHPP, false},
		{"spmv", CoursePUMPS, true},
		{"bfs-queuing", CourseECE598, true},
		{"mpi-stencil", CourseECE598, true},
		{"mpi-stencil", CoursePUMPS, false},
	}
	for _, c := range checks {
		if got := ByID(c.id).UsedBy(c.course); got != c.want {
			t.Errorf("%s used by %s = %v, want %v", c.id, c.course, got, c.want)
		}
	}
}

func TestBFSOracleHandlesUnreachable(t *testing.T) {
	// 3 nodes, only 0->1; node 2 unreachable.
	rowPtr := []int32{0, 1, 1, 1}
	colIdx := []int32{1}
	lv := bfsOracle(rowPtr, colIdx, 0)
	if lv[0] != 0 || lv[1] != 1 || lv[2] != -1 {
		t.Errorf("levels = %v", lv)
	}
}

func TestStencilOracleBoundary(t *testing.T) {
	in := []float32{1, 1, 1, 1}
	out := stencilOracle(in, 2, 2)
	// Corner cell: 0.5*1 + 0.125*(0+1+0+1) = 0.75.
	if out[0] != 0.75 {
		t.Errorf("corner = %v, want 0.75", out[0])
	}
}

func TestWBDatasetShapes(t *testing.T) {
	ds, err := ByID("spmv").Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wb.ParseCSR(ds.Input("matrix.csr"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 32 {
		t.Errorf("rows = %d", m.Rows)
	}
	if int(m.RowPtr[m.Rows]) != len(m.Vals) {
		t.Errorf("rowptr end %d != nnz %d", m.RowPtr[m.Rows], len(m.Vals))
	}
}
