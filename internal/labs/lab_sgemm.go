package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// SGEMM (Table II row 11): register tiling and thread coarsening on top of
// shared-memory tiling — each thread computes a 2x2 register block of C.

var labSGEMM = register(&Lab{
	ID:      "sgemm",
	Number:  11,
	Name:    "SGEMM",
	Summary: "Register tiling and thread-coarsening.",
	Description: `# SGEMM

Implement C = A x B with joint shared-memory and register tiling: each
8x8 thread block computes a 16x16 tile of C, with every thread owning a
2x2 register block (` + "`float creg[2][2]`" + `). Stage 16x16 tiles of A and B in
shared memory per iteration; each thread cooperatively loads four elements
of each tile.

Matrix dimensions are multiples of 16 in this lab so you can focus on the
tiling structure.
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `#define TILE 16
#define REG 2
__global__ void sgemm(float *A, float *B, float *C, int n) {
  __shared__ float tileA[TILE][TILE];
  __shared__ float tileB[TILE][TILE];
  float creg[REG][REG];
  //@@ register-tiled SGEMM: each thread computes a REGxREG block of C
}
`,
	Reference: `#define TILE 16
#define REG 2
__global__ void sgemm(float *A, float *B, float *C, int n) {
  __shared__ float tileA[TILE][TILE];
  __shared__ float tileB[TILE][TILE];
  float creg[REG][REG];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int rowBase = blockIdx.y * TILE + ty * REG;
  int colBase = blockIdx.x * TILE + tx * REG;
  for (int i = 0; i < REG; i++)
    for (int j = 0; j < REG; j++)
      creg[i][j] = 0.0f;
  for (int m = 0; m < n / TILE; m++) {
    for (int i = 0; i < REG; i++) {
      for (int j = 0; j < REG; j++) {
        tileA[ty * REG + i][tx * REG + j] = A[(rowBase + i) * n + m * TILE + tx * REG + j];
        tileB[ty * REG + i][tx * REG + j] = B[(m * TILE + ty * REG + i) * n + colBase + j];
      }
    }
    __syncthreads();
    for (int k = 0; k < TILE; k++) {
      float areg[REG];
      float breg[REG];
      for (int i = 0; i < REG; i++) {
        areg[i] = tileA[ty * REG + i][k];
        breg[i] = tileB[k][tx * REG + i];
      }
      for (int i = 0; i < REG; i++)
        for (int j = 0; j < REG; j++)
          creg[i][j] += areg[i] * breg[j];
    }
    __syncthreads();
  }
  for (int i = 0; i < REG; i++)
    for (int j = 0; j < REG; j++)
      C[(rowBase + i) * n + colBase + j] = creg[i][j];
}
`,
	Questions: []string{
		"How does register tiling raise the compute-to-load ratio over plain shared-memory tiling?",
		"Why does each thread load four elements of each shared tile in this configuration?",
	},
	Courses:     []Course{CourseECE598},
	NumDatasets: 3,
	Rubric:      defaultRubric("__shared__"),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		sizes := []int{16, 32, 48}
		n := sizes[datasetID%len(sizes)]
		r := rng("sgemm", datasetID)
		a := make([]float32, n*n)
		b := make([]float32, n*n)
		for i := range a {
			a[i] = float32(r.Intn(16)-8) / 4
			b[i] = float32(r.Intn(16)-8) / 4
		}
		want := make([]float32, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var acc float32
				for k := 0; k < n; k++ {
					acc += a[i*n+k] * b[k*n+j]
				}
				want[i*n+j] = acc
			}
		}
		return &wb.Dataset{
			ID:   datasetID,
			Name: "sgemm",
			Inputs: []wb.File{
				{Name: "input0.raw", Data: wb.MatrixBytes(a, n, n)},
				{Name: "input1.raw", Data: wb.MatrixBytes(b, n, n)},
			},
			Expected: wb.File{Name: "output.raw", Data: wb.MatrixBytes(want, n, n)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, "sgemm"); err != nil {
			return wb.CheckResult{}, err
		}
		a, n, _, err := loadMatrixInput(rc, "input0.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		b, _, _, err := loadMatrixInput(rc, "input1.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		aP, err := toDevice(rc, a)
		if err != nil {
			return wb.CheckResult{}, err
		}
		bP, err := toDevice(rc, b)
		if err != nil {
			return wb.CheckResult{}, err
		}
		cP, err := rc.Dev().Malloc(n * n * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "sgemm", gpusim.D2(n/16, n/16), gpusim.D2(8, 8),
			minicuda.FloatPtr(aP), minicuda.FloatPtr(bP), minicuda.FloatPtr(cP),
			minicuda.Int(n)); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := readBack(rc, cP, n*n)
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, _, _, err := wb.ParseMatrix(rc.Dataset.Expected.Data)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	},
})
