package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Vector Addition: the first CUDA kernel of the course (Table II row 2,
// and the lab shown in the paper's Figure 3 code-view screenshot).

var labVectorAdd = register(&Lab{
	ID:      "vector-add",
	Number:  2,
	Name:    "Vector Addition",
	Summary: "CUDA kernels.",
	Description: `# Vector Addition

Implement a CUDA kernel that performs element-wise addition of two input
vectors.

## Objectives

* allocate device memory and copy host memory to the device (done by the
  harness)
* write a kernel using the global thread index
* guard against out-of-bounds accesses when the vector length is not a
  multiple of the block size

## The kernel

Fill out the body of ` + "`vecAdd`" + ` in the code view. The harness launches it
with 256-thread blocks over ceil(len/256) blocks.
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `// wb.h is provided by the harness
__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  //@@ Insert code to implement vector addition here
}
`,
	Reference: `__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    out[i] = in1[i] + in2[i];
  }
}
`,
	Questions: []string{
		"How many floating point operations does your kernel perform per thread?",
		"Why is the boundary check `i < len` necessary?",
	},
	Courses:     []Course{CourseHPP, CourseECE408},
	NumDatasets: 5,
	Rubric:      defaultRubric("blockIdx", "threadIdx"),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		sizes := []int{16, 64, 100, 500, 1333}
		n := sizes[datasetID%len(sizes)]
		r := rng("vector-add", datasetID)
		a := make([]float32, n)
		b := make([]float32, n)
		want := make([]float32, n)
		for i := range a {
			a[i] = float32(r.Intn(200)-100) / 4
			b[i] = float32(r.Intn(200)-100) / 4
			want[i] = a[i] + b[i]
		}
		return &wb.Dataset{
			ID:   datasetID,
			Name: "vecadd",
			Inputs: []wb.File{
				{Name: "input0.raw", Data: wb.VectorBytes(a)},
				{Name: "input1.raw", Data: wb.VectorBytes(b)},
			},
			Expected: wb.File{Name: "output.raw", Data: wb.VectorBytes(want)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, "vecAdd"); err != nil {
			return wb.CheckResult{}, err
		}
		a, err := loadVectorInput(rc, "input0.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		b, err := loadVectorInput(rc, "input1.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		rc.Trace.Logf(wb.LevelTrace, "The input length is %d", len(a))
		aP, err := toDevice(rc, a)
		if err != nil {
			return wb.CheckResult{}, err
		}
		bP, err := toDevice(rc, b)
		if err != nil {
			return wb.CheckResult{}, err
		}
		outP, err := rc.Dev().Malloc(len(a) * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "vecAdd", gpusim.D1(ceilDiv(len(a), 256)), gpusim.D1(256),
			minicuda.FloatPtr(aP), minicuda.FloatPtr(bP), minicuda.FloatPtr(outP),
			minicuda.Int(len(a))); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := readBack(rc, outP, len(a))
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, err := expectedVector(rc)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	},
})
