package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// 2D Convolution (Table II row 5): constant memory for the mask and
// shared-memory input tiles with halo cells.

const convMaskWidth = 5

var labConvolution2D = register(&Lab{
	ID:      "convolution-2d",
	Number:  5,
	Name:    "2D Convolution",
	Summary: "Constant memory and shared memory.",
	Description: `# 2D Convolution

Implement a 2D convolution of an image with a 5x5 mask. The mask is placed
in ` + "`__constant__`" + ` memory by the harness; stage the input tile (with its
halo) in shared memory.

Ghost cells outside the image boundary are treated as zero.
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `#define MASK_WIDTH 5
#define MASK_RADIUS 2
#define TILE_WIDTH 8
__constant__ float M[MASK_WIDTH][MASK_WIDTH];
__global__ void convolution2D(float *in, float *out, int height, int width) {
  //@@ Insert code to implement 2D convolution with shared memory here
}
`,
	Reference: `#define MASK_WIDTH 5
#define MASK_RADIUS 2
#define TILE_WIDTH 8
__constant__ float M[MASK_WIDTH][MASK_WIDTH];
__global__ void convolution2D(float *in, float *out, int height, int width) {
  __shared__ float tile[12][12];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int col = blockIdx.x * TILE_WIDTH + tx;
  int row = blockIdx.y * TILE_WIDTH + ty;
  // Cooperative load of the TILE+halo region (12x12) by the 8x8 block.
  for (int dy = ty; dy < TILE_WIDTH + 2 * MASK_RADIUS; dy += TILE_WIDTH) {
    for (int dx = tx; dx < TILE_WIDTH + 2 * MASK_RADIUS; dx += TILE_WIDTH) {
      int r = blockIdx.y * TILE_WIDTH + dy - MASK_RADIUS;
      int c = blockIdx.x * TILE_WIDTH + dx - MASK_RADIUS;
      if (r >= 0 && r < height && c >= 0 && c < width)
        tile[dy][dx] = in[r * width + c];
      else
        tile[dy][dx] = 0.0f;
    }
  }
  __syncthreads();
  if (row < height && col < width) {
    float acc = 0.0f;
    for (int i = 0; i < MASK_WIDTH; i++)
      for (int j = 0; j < MASK_WIDTH; j++)
        acc += M[i][j] * tile[ty + i][tx + j];
    out[row * width + col] = acc;
  }
}
`,
	Questions: []string{
		"Why is the mask a good fit for constant memory?",
		"How many halo elements does each block load for an 8x8 tile and 5x5 mask?",
	},
	Courses:     []Course{CourseHPP, CourseECE408},
	NumDatasets: 4,
	Rubric:      defaultRubric("__constant__", "__shared__"),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		shapes := [][2]int{{8, 8}, {16, 12}, {23, 17}, {40, 32}}
		s := shapes[datasetID%len(shapes)]
		h, w := s[0], s[1]
		r := rng("convolution-2d", datasetID)
		img := make([]float32, h*w)
		for i := range img {
			img[i] = float32(r.Intn(256)) / 32
		}
		mask := make([]float32, convMaskWidth*convMaskWidth)
		var msum float32
		for i := range mask {
			mask[i] = float32(r.Intn(8)) / 16
			msum += mask[i]
		}
		if msum == 0 {
			mask[12] = 1
		}
		want := make([]float32, h*w)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				var acc float32
				for i := 0; i < convMaskWidth; i++ {
					for j := 0; j < convMaskWidth; j++ {
						ry := y + i - convMaskWidth/2
						rx := x + j - convMaskWidth/2
						if ry >= 0 && ry < h && rx >= 0 && rx < w {
							acc += mask[i*convMaskWidth+j] * img[ry*w+rx]
						}
					}
				}
				want[y*w+x] = acc
			}
		}
		return &wb.Dataset{
			ID:   datasetID,
			Name: "conv2d",
			Inputs: []wb.File{
				{Name: "input0.raw", Data: wb.MatrixBytes(img, h, w)},
				{Name: "mask.raw", Data: wb.MatrixBytes(mask, convMaskWidth, convMaskWidth)},
			},
			Expected: wb.File{Name: "output.raw", Data: wb.MatrixBytes(want, h, w)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, "convolution2D"); err != nil {
			return wb.CheckResult{}, err
		}
		img, h, w, err := loadMatrixInput(rc, "input0.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		mask, mh, mw, err := loadMatrixInput(rc, "mask.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		if mh != convMaskWidth || mw != convMaskWidth {
			return wb.CheckResult{}, errDims(mh, convMaskWidth)
		}
		rc.Trace.Logf(wb.LevelTrace, "The image is %d x %d", h, w)
		if err := rc.Program.LoadConstant(rc.Dev(), "M", gpusim.Float32Bytes(mask)); err != nil {
			return wb.CheckResult{}, err
		}
		inP, err := toDevice(rc, img)
		if err != nil {
			return wb.CheckResult{}, err
		}
		outP, err := rc.Dev().Malloc(h * w * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "convolution2D",
			gpusim.D2(ceilDiv(w, 8), ceilDiv(h, 8)), gpusim.D2(8, 8),
			minicuda.FloatPtr(inP), minicuda.FloatPtr(outP),
			minicuda.Int(h), minicuda.Int(w)); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := readBack(rc, outP, h*w)
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, _, _, err := wb.ParseMatrix(rc.Dataset.Expected.Data)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	},
})
