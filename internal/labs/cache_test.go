package labs

import (
	"context"
	"strings"
	"testing"

	"webgpu/internal/progcache"
)

// TestRunAllCompilesOnce asserts, via the program-cache counters, that a
// full grading run over every dataset of a multi-dataset lab performs
// exactly one compile.
func TestRunAllCompilesOnce(t *testing.T) {
	l := ByID("vector-add")
	if l.NumDatasets < 2 {
		t.Fatalf("need a multi-dataset lab, got %d datasets", l.NumDatasets)
	}
	// A source unique to this test so earlier tests cannot have warmed it.
	src := l.Reference + "\n// compile-once probe (TestRunAllCompilesOnce)\n"
	before := progcache.Default.Stats()
	outs := RunAll(context.Background(), l, src, NewDeviceSet(1), 0)
	after := progcache.Default.Stats()

	if got := after.Compiles - before.Compiles; got != 1 {
		t.Errorf("RunAll over %d datasets ran %d compiles, want exactly 1", l.NumDatasets, got)
	}
	if got := after.Misses - before.Misses; got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}
	if got := after.Hits - before.Hits; got != 0 {
		t.Errorf("cache hits = %d, want 0 (the program is reused, not re-fetched)", got)
	}
	for i, o := range outs {
		if !o.Correct {
			t.Errorf("dataset %d: %s %s", i, o.RuntimeError, o.CheckMessage)
		}
		if o.DatasetID != i {
			t.Errorf("outs[%d].DatasetID = %d (order must be deterministic)", i, o.DatasetID)
		}
	}

	// A second identical submission is a pure cache hit.
	RunAll(context.Background(), l, src, NewDeviceSet(1), 0)
	final := progcache.Default.Stats()
	if got := final.Compiles - after.Compiles; got != 0 {
		t.Errorf("repeat submission recompiled %d times", got)
	}
	if got := final.Hits - after.Hits; got != 1 {
		t.Errorf("repeat submission hits = %d, want 1", got)
	}
}

// TestDatasetCachedPerProcess asserts instructor datasets are generated
// once and served from the per-lab cache afterwards.
func TestDatasetCachedPerProcess(t *testing.T) {
	l := ByID("vector-add")
	d1, err := l.Dataset(0)
	if err != nil {
		t.Fatal(err)
	}
	gens := l.DatasetGenerations()
	d2, err := l.Dataset(0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("Dataset(0) returned different objects across calls")
	}
	if l.DatasetGenerations() != gens {
		t.Error("second Dataset(0) regenerated the data")
	}
	// Full grading runs must not regenerate anything once datasets exist.
	for i := 0; i < l.NumDatasets; i++ {
		if _, err := l.Dataset(i); err != nil {
			t.Fatal(err)
		}
	}
	gens = l.DatasetGenerations()
	RunAll(context.Background(), l, l.Reference, NewDeviceSet(1), 0)
	RunAll(context.Background(), l, l.Reference, NewDeviceSet(1), 0)
	if l.DatasetGenerations() != gens {
		t.Errorf("grading runs regenerated datasets: %d -> %d", gens, l.DatasetGenerations())
	}
	if _, err := l.Dataset(l.NumDatasets); err == nil {
		t.Error("out-of-range dataset id accepted")
	}
}

// TestRunValidatesDatasetBeforeCompile asserts the range check happens
// before compile time is spent: an out-of-range run with a unique source
// must not touch the program cache at all.
func TestRunValidatesDatasetBeforeCompile(t *testing.T) {
	l := ByID("vector-add")
	src := l.Reference + "\n// pre-compile validation probe\n"
	before := progcache.Default.Stats()
	o := Run(context.Background(), l, src, 99, NewDeviceSet(1), 0)
	after := progcache.Default.Stats()

	if o.Compiled {
		t.Error("out-of-range run reported Compiled")
	}
	if o.RuntimeError == "" || !strings.Contains(o.RuntimeError, "out of range") {
		t.Errorf("RuntimeError = %q", o.RuntimeError)
	}
	if after.Misses != before.Misses || after.Hits != before.Hits {
		t.Error("out-of-range dataset still reached the compiler")
	}
}

// TestRunAllParallelMatchesSerial runs the multi-dataset fan-out on a
// device set wide enough for four parallel slots and checks the outcomes
// are ordered and correct, identically to the single-slot path.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	l := ByID("vector-add")
	serial := RunAll(context.Background(), l, l.Reference, NewDeviceSet(1), 0)
	parallel := RunAll(context.Background(), l, l.Reference, NewDeviceSet(4), 0)
	if len(serial) != len(parallel) {
		t.Fatalf("outcome counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if parallel[i].DatasetID != i {
			t.Errorf("parallel outs[%d].DatasetID = %d", i, parallel[i].DatasetID)
		}
		if serial[i].Correct != parallel[i].Correct || serial[i].Ran != parallel[i].Ran {
			t.Errorf("dataset %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// TestRunAllCompileErrorShape: a compile failure is reported once per
// dataset, preserving the grading shape.
func TestRunAllCompileErrorShape(t *testing.T) {
	l := ByID("vector-add")
	outs := RunAll(context.Background(), l, "__global__ void vecAdd(float *a { nope", NewDeviceSet(1), 0)
	if len(outs) != l.NumDatasets {
		t.Fatalf("outcomes = %d, want %d", len(outs), l.NumDatasets)
	}
	for i, o := range outs {
		if o.Compiled || o.CompileError == "" {
			t.Errorf("dataset %d: %+v", i, o)
		}
		if o.DatasetID != i {
			t.Errorf("outs[%d].DatasetID = %d", i, o.DatasetID)
		}
	}
}
