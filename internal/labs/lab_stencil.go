package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Stencil (Table II row 10): register tiling and thread coarsening. Each
// thread computes a column of COARSEN output rows of a 5-point 2D stencil,
// keeping the three active input values of its column in registers as it
// marches down.

func stencilOracle(in []float32, h, w int) []float32 {
	out := make([]float32, h*w)
	at := func(y, x int) float32 {
		if y < 0 || y >= h || x < 0 || x >= w {
			return 0
		}
		return in[y*w+x]
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out[y*w+x] = 0.5*at(y, x) + 0.125*(at(y-1, x)+at(y+1, x)+at(y, x-1)+at(y, x+1))
		}
	}
	return out
}

var labStencil = register(&Lab{
	ID:      "stencil",
	Number:  10,
	Name:    "Stencil",
	Summary: "Register tiling and thread-coarsening.",
	Description: `# Stencil

Implement a 5-point 2D stencil

    out[y][x] = 0.5*in[y][x] + 0.125*(in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1])

with **thread coarsening**: launch one thread per column per COARSEN=4 row
strip; each thread marches down its strip keeping the previous, current,
and next row values of its column in registers (register tiling), so each
input element of the column is loaded exactly once. Out-of-range neighbours
are zero.
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `#define COARSEN 4
__global__ void stencil2D(float *in, float *out, int height, int width) {
  //@@ one thread per (column, 4-row strip); keep the column window in registers
}
`,
	Reference: `#define COARSEN 4
__global__ void stencil2D(float *in, float *out, int height, int width) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int yBase = (blockIdx.y * blockDim.y + threadIdx.y) * COARSEN;
  if (x >= width) return;
  float prev = 0.0f;
  float cur = 0.0f;
  float next = 0.0f;
  if (yBase - 1 >= 0 && yBase - 1 < height) prev = in[(yBase - 1) * width + x];
  if (yBase < height) cur = in[yBase * width + x];
  for (int k = 0; k < COARSEN; k++) {
    int y = yBase + k;
    if (y >= height) return;
    if (y + 1 < height) next = in[(y + 1) * width + x];
    else next = 0.0f;
    float left = 0.0f;
    float right = 0.0f;
    if (x > 0) left = in[y * width + x - 1];
    if (x < width - 1) right = in[y * width + x + 1];
    out[y * width + x] = 0.5f * cur + 0.125f * (prev + next + left + right);
    prev = cur;
    cur = next;
  }
}
`,
	Questions: []string{
		"How does thread coarsening reduce redundant global loads in the vertical direction?",
		"What is the register cost of increasing COARSEN, and when does it hurt occupancy?",
	},
	Courses:     []Course{CourseECE598},
	NumDatasets: 3,
	Rubric:      defaultRubric(),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		shapes := [][2]int{{8, 8}, {20, 16}, {33, 29}}
		s := shapes[datasetID%len(shapes)]
		h, w := s[0], s[1]
		r := rng("stencil", datasetID)
		in := make([]float32, h*w)
		for i := range in {
			in[i] = float32(r.Intn(128)) / 8
		}
		return &wb.Dataset{
			ID:       datasetID,
			Name:     "stencil",
			Inputs:   []wb.File{{Name: "input0.raw", Data: wb.MatrixBytes(in, h, w)}},
			Expected: wb.File{Name: "output.raw", Data: wb.MatrixBytes(stencilOracle(in, h, w), h, w)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, "stencil2D"); err != nil {
			return wb.CheckResult{}, err
		}
		in, h, w, err := loadMatrixInput(rc, "input0.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		inP, err := toDevice(rc, in)
		if err != nil {
			return wb.CheckResult{}, err
		}
		outP, err := rc.Dev().Malloc(h * w * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		const coarsen = 4
		grid := gpusim.D2(ceilDiv(w, 16), ceilDiv(ceilDiv(h, coarsen), 4))
		if err := launch(rc, "stencil2D", grid, gpusim.D2(16, 4),
			minicuda.FloatPtr(inP), minicuda.FloatPtr(outP),
			minicuda.Int(h), minicuda.Int(w)); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := readBack(rc, outP, h*w)
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, _, _, err := wb.ParseMatrix(rc.Dataset.Expected.Data)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	},
})
