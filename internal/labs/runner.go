package labs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/progcache"
	"webgpu/internal/wb"
)

// Outcome is the result of running one submission against one dataset —
// the payload a worker node returns to the web tier (§III-C).
type Outcome struct {
	LabID        string
	DatasetID    int
	Compiled     bool
	CompileError string
	Ran          bool
	RuntimeError string
	Correct      bool
	CheckMessage string
	Canceled     bool // the job's context expired before this dataset ran
	Trace        string
	SimTime      time.Duration // simulated GPU time across launches
	WallTime     time.Duration
	Kernels      []KernelStats // per-launch performance counters
}

// KernelStats summarizes one kernel launch for the feedback analyzer and
// the Attempts view's performance read-out.
type KernelStats struct {
	Name         string
	Blocks       int
	Threads      int
	GlobalLoads  int64
	GlobalStores int64
	GlobalTx     int64
	SharedOps    int64
	SharedTx     int64
	Atomics      int64
	Barriers     int64
	SimCycles    int64
}

// CompileOnly compiles a submission without running it (the "Compile"
// button of the code view, §IV-A action 2). Compilation goes through the
// process-wide program cache, so the deadline-spike pattern of repeated
// identical sources compiles once.
func CompileOnly(l *Lab, source string) *Outcome {
	o := &Outcome{LabID: l.ID, DatasetID: -1}
	start := time.Now()
	_, err := progcache.Default.Compile(source, l.Dialect)
	o.WallTime = time.Since(start)
	if err != nil {
		o.CompileError = err.Error()
		return o
	}
	o.Compiled = true
	return o
}

// canceledOutcome reports a dataset that was never run because the job's
// context expired first.
func canceledOutcome(l *Lab, datasetID int, err error) *Outcome {
	return &Outcome{LabID: l.ID, DatasetID: datasetID, Canceled: true,
		RuntimeError: "labs: " + err.Error()}
}

// Run compiles the submission (through the program cache) and executes
// the lab harness against the identified dataset on the given devices.
// maxSteps bounds per-thread execution (0 uses the platform default),
// implementing the per-lab time limits of §III-C. The dataset ID is
// validated before any compile work is spent.
func Run(ctx context.Context, l *Lab, source string, datasetID int, devices []*gpusim.Device, maxSteps int64) *Outcome {
	start := time.Now()
	if datasetID < 0 || datasetID >= l.NumDatasets {
		return &Outcome{LabID: l.ID, DatasetID: datasetID, WallTime: time.Since(start),
			RuntimeError: fmt.Sprintf("labs: dataset %d out of range [0,%d)", datasetID, l.NumDatasets)}
	}
	prog, err := progcache.Default.Compile(source, l.Dialect)
	if err != nil {
		return &Outcome{LabID: l.ID, DatasetID: datasetID, WallTime: time.Since(start),
			CompileError: err.Error()}
	}
	o := RunCompiled(ctx, l, prog, datasetID, devices, maxSteps)
	o.WallTime = time.Since(start)
	return o
}

// RunCompiled executes an already-compiled submission against one
// dataset. Programs are immutable after compilation, so the same program
// may be running on several device sets concurrently. A context that is
// already done short-circuits before any simulated-GPU time is burned.
func RunCompiled(ctx context.Context, l *Lab, prog *minicuda.Program, datasetID int, devices []*gpusim.Device, maxSteps int64) *Outcome {
	if err := ctx.Err(); err != nil {
		return canceledOutcome(l, datasetID, err)
	}
	o := &Outcome{LabID: l.ID, DatasetID: datasetID, Compiled: true}
	start := time.Now()
	defer func() { o.WallTime = time.Since(start) }()

	if datasetID < 0 || datasetID >= l.NumDatasets {
		o.RuntimeError = fmt.Sprintf("labs: dataset %d out of range [0,%d)", datasetID, l.NumDatasets)
		return o
	}
	ds, err := l.Dataset(datasetID)
	if err != nil {
		o.RuntimeError = err.Error()
		return o
	}
	if len(devices) == 0 {
		o.RuntimeError = "labs: no GPU available"
		return o
	}
	need := l.NumGPUs
	if need == 0 {
		need = 1
	}
	if len(devices) < need {
		o.RuntimeError = fmt.Sprintf("labs: lab needs %d GPUs, worker has %d", need, len(devices))
		return o
	}

	trace := wb.NewTrace()
	rc := &RunContext{Devices: devices[:need], Program: prog, Dataset: ds,
		Trace: trace, MaxSteps: maxSteps}

	before := make([]int, len(rc.Devices))
	for i, d := range rc.Devices {
		before[i] = d.LaunchCount()
	}

	check, err := l.Harness(rc)
	o.Trace = trace.String()
	for i, d := range rc.Devices {
		for _, s := range d.Launches()[before[i]:] {
			o.SimTime += s.SimTime
			o.Kernels = append(o.Kernels, KernelStats{
				Name:         s.Name,
				Blocks:       s.Blocks,
				Threads:      s.Threads,
				GlobalLoads:  s.GlobalLoads,
				GlobalStores: s.GlobalStores,
				GlobalTx:     s.GlobalTx,
				SharedOps:    s.SharedOps,
				SharedTx:     s.SharedTx,
				Atomics:      s.Atomics,
				Barriers:     s.Barriers,
				SimCycles:    s.SimCycles,
			})
		}
		d.Reset() // free the job's allocations, as the container teardown does
	}
	if err != nil {
		o.RuntimeError = err.Error()
		return o
	}
	o.Ran = true
	o.Correct = check.Correct
	o.CheckMessage = check.Message
	return o
}

// RunAll runs a submission against every dataset of the lab, as the final
// "Submit for grading" action does (§IV-A action 5). The submission is
// compiled exactly once and the program is reused across all datasets; a
// compile failure is reported against every dataset, matching the
// per-dataset grading shape.
func RunAll(ctx context.Context, l *Lab, source string, devices []*gpusim.Device, maxSteps int64) []*Outcome {
	start := time.Now()
	prog, err := progcache.Default.Compile(source, l.Dialect)
	if err != nil {
		outs := make([]*Outcome, l.NumDatasets)
		for i := range outs {
			outs[i] = &Outcome{LabID: l.ID, DatasetID: i, CompileError: err.Error(),
				WallTime: time.Since(start)}
		}
		return outs
	}
	return RunAllCompiled(ctx, l, prog, devices, maxSteps)
}

// RunAllCompiled runs a compiled submission against every dataset. When
// the device set holds more GPUs than one run needs, the datasets fan out
// in parallel across disjoint device slots — a container holding 2k GPUs
// grades a k-GPU lab's datasets two at a time. Output order is
// deterministic: outs[i] is always dataset i. Once ctx is done, no
// further dataset is launched; the remaining outcomes are marked
// Canceled so the grading shape stays per-dataset.
func RunAllCompiled(ctx context.Context, l *Lab, prog *minicuda.Program, devices []*gpusim.Device, maxSteps int64) []*Outcome {
	outs := make([]*Outcome, l.NumDatasets)
	need := l.NumGPUs
	if need == 0 {
		need = 1
	}
	slots := 0
	if len(devices) >= need {
		slots = len(devices) / need
	}
	if slots > l.NumDatasets {
		slots = l.NumDatasets
	}
	if slots <= 1 {
		// Not enough devices to parallelize (or nothing to run them on —
		// RunCompiled reports the per-dataset device errors).
		for i := 0; i < l.NumDatasets; i++ {
			if err := ctx.Err(); err != nil {
				outs[i] = canceledOutcome(l, i, err)
				continue
			}
			outs[i] = RunCompiled(ctx, l, prog, i, devices, maxSteps)
		}
		return outs
	}
	ids := make(chan int)
	var wg sync.WaitGroup
	for s := 0; s < slots; s++ {
		slot := devices[s*need : (s+1)*need]
		wg.Add(1)
		go func(devs []*gpusim.Device) {
			defer wg.Done()
			for i := range ids {
				outs[i] = RunCompiled(ctx, l, prog, i, devs, maxSteps)
			}
		}(slot)
	}
	for i := 0; i < l.NumDatasets; i++ {
		select {
		case ids <- i:
		case <-ctx.Done():
			outs[i] = canceledOutcome(l, i, ctx.Err())
		}
	}
	close(ids)
	wg.Wait()
	return outs
}

// KeywordsPresent reports which rubric keywords appear in the source,
// outside of comments (the preprocessed text is scanned, so commented-out
// keywords do not count — the same distinction §III-D draws for the
// security blacklist).
func KeywordsPresent(l *Lab, source string) []string {
	clean, err := minicuda.Preprocess(minicuda.StripComments(source))
	if err != nil {
		clean = minicuda.StripComments(source)
	}
	var present []string
	for _, kw := range l.Rubric.Keywords {
		if strings.Contains(clean, kw) {
			present = append(present, kw)
		}
	}
	return present
}

// NewDeviceSet builds the simulated GPUs a worker exposes to lab runs.
func NewDeviceSet(n int) []*gpusim.Device {
	devs := make([]*gpusim.Device, n)
	for i := range devs {
		devs[i] = gpusim.NewDefaultDevice()
		devs[i].SetIndex(i)
	}
	return devs
}
