// Package labs defines the WebGPU lab catalog: the fifteen labs of the
// paper's Table II, each with its markdown description, solution skeleton,
// instructor reference solution, deterministic dataset generators, grading
// rubric, course assignments, and the host-side harness that allocates
// device memory, launches the student's kernels, and checks the output
// against the expected dataset (§IV-B, §IV-E).
package labs

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Course identifies a course offering that uses WebGPU (Table II).
type Course string

// Courses from the paper: the Coursera MOOC, the UIUC undergraduate and
// graduate courses, and the UPC Barcelona summer school.
const (
	CourseHPP    Course = "HPP"   // Heterogeneous Parallel Programming (Coursera)
	CourseECE408 Course = "408"   // UIUC ECE 408
	CourseECE598 Course = "598"   // UIUC ECE 598 HK
	CoursePUMPS  Course = "PUMPS" // UPC Barcelona summer school
)

// AllCourses lists the four course columns of Table II, in paper order.
var AllCourses = []Course{CourseHPP, CourseECE408, CourseECE598, CoursePUMPS}

// Worker requirement tags (§VI-A): a lab tagged "mpi" or "multi-gpu" may
// only be dispatched to worker nodes advertising that capability.
const (
	ReqOpenCL   = "opencl"
	ReqMPI      = "mpi"
	ReqMultiGPU = "multi-gpu"
)

// Rubric describes how points are awarded (§IV-E: "Points are arbitrarily
// divided among datasets, short-answer questions, presence of keywords,
// and successful compilation").
type Rubric struct {
	CompilePoints  int      // awarded when the submission compiles
	DatasetPoints  int      // per passing dataset
	KeywordPoints  int      // per required keyword present in the source
	Keywords       []string // e.g. __shared__ for the tiled labs
	QuestionPoints int      // per answered short-answer question
}

// MaxPoints computes the rubric total for a lab.
func (r Rubric) MaxPoints(numDatasets, numQuestions int) int {
	return r.CompilePoints + r.DatasetPoints*numDatasets +
		r.KeywordPoints*len(r.Keywords) + r.QuestionPoints*numQuestions
}

// RunContext carries everything a lab harness needs for one run against
// one dataset.
type RunContext struct {
	Devices  []*gpusim.Device
	Program  *minicuda.Program
	Dataset  *wb.Dataset
	Trace    *wb.Trace
	MaxSteps int64
}

// Dev returns the primary GPU.
func (rc *RunContext) Dev() *gpusim.Device { return rc.Devices[0] }

// Opts builds launch options with the context's step budget.
func (rc *RunContext) Opts(grid, block gpusim.Dim3) minicuda.LaunchOpts {
	return minicuda.LaunchOpts{Grid: grid, Block: block, MaxSteps: rc.MaxSteps}
}

// Harness is the host-side driver of a lab: it stands in for the main()
// that libwb-based labs run around the student's kernels.
type Harness func(rc *RunContext) (wb.CheckResult, error)

// Lab is one catalog entry.
type Lab struct {
	ID           string
	Number       int
	Name         string
	Summary      string // the Table II description column
	Description  string // full markdown shown in the Description view
	Dialect      minicuda.Dialect
	Skeleton     string
	Reference    string // instructor solution, used for dataset generation checks
	Questions    []string
	Courses      []Course
	Requirements []string // worker capability tags
	NumDatasets  int
	NumGPUs      int // simulated GPUs the harness needs (Multi-GPU lab)
	Rubric       Rubric
	Generate     func(datasetID int) (*wb.Dataset, error)
	Harness      Harness

	// Dataset cache: generators are deterministic (seeded by
	// rng(labID, datasetID)) and datasets are immutable byte blobs the
	// harnesses only parse, so each instructor dataset is materialized
	// once per process and shared by every subsequent run.
	dsMu   sync.Mutex
	dsOnce map[int]*dsEntry
	dsGens int64
}

type dsEntry struct {
	ds  *wb.Dataset
	err error
}

// Dataset returns the lab's dataset with the given ID, generating it on
// first use and serving the cached copy afterwards.
func (l *Lab) Dataset(id int) (*wb.Dataset, error) {
	if id < 0 || id >= l.NumDatasets {
		return nil, fmt.Errorf("labs: dataset %d out of range [0,%d)", id, l.NumDatasets)
	}
	l.dsMu.Lock()
	defer l.dsMu.Unlock()
	if l.dsOnce == nil {
		l.dsOnce = make(map[int]*dsEntry, l.NumDatasets)
	}
	if e, ok := l.dsOnce[id]; ok {
		return e.ds, e.err
	}
	ds, err := l.Generate(id)
	l.dsGens++
	l.dsOnce[id] = &dsEntry{ds: ds, err: err}
	return ds, err
}

// DatasetGenerations reports how many times the underlying generator ran
// (cache effectiveness; tests assert each dataset is built once).
func (l *Lab) DatasetGenerations() int64 {
	l.dsMu.Lock()
	defer l.dsMu.Unlock()
	return l.dsGens
}

// UsedBy reports whether the lab is part of the given course (Table II).
func (l *Lab) UsedBy(c Course) bool {
	for _, x := range l.Courses {
		if x == c {
			return true
		}
	}
	return false
}

// MaxPoints returns the lab's rubric total.
func (l *Lab) MaxPoints() int { return l.Rubric.MaxPoints(l.NumDatasets, len(l.Questions)) }

// rng returns a deterministic random source for a lab/dataset pair so
// generated datasets are reproducible across worker nodes.
func rng(labID string, datasetID int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(labID))
	return rand.New(rand.NewSource(int64(h.Sum64()) ^ int64(datasetID)*int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)))
}

var registry = map[string]*Lab{}

func register(l *Lab) *Lab {
	if _, dup := registry[l.ID]; dup {
		panic(fmt.Sprintf("labs: duplicate lab id %q", l.ID))
	}
	registry[l.ID] = l
	return l
}

// Register adds an instructor-authored lab to the catalog (§IV-E). It
// validates the definition the way the deployment scripts did before a
// lab went live: the skeleton must compile, the reference must exist, and
// every dataset generator must produce data.
func Register(l *Lab) error {
	switch {
	case l.ID == "":
		return fmt.Errorf("labs: lab needs an ID")
	case registry[l.ID] != nil:
		return fmt.Errorf("labs: lab %q already exists", l.ID)
	case l.Name == "" || l.Description == "":
		return fmt.Errorf("labs: lab %q needs a name and description", l.ID)
	case l.Skeleton == "" || l.Reference == "":
		return fmt.Errorf("labs: lab %q needs a skeleton and a reference solution", l.ID)
	case l.NumDatasets <= 0 || l.Generate == nil:
		return fmt.Errorf("labs: lab %q needs datasets", l.ID)
	case l.Harness == nil:
		return fmt.Errorf("labs: lab %q needs a harness", l.ID)
	}
	for i := 0; i < l.NumDatasets; i++ {
		// Validation doubles as cache warm-up: the datasets built here are
		// the ones every future run is served from.
		if _, err := l.Dataset(i); err != nil {
			return fmt.Errorf("labs: lab %q dataset %d: %w", l.ID, i, err)
		}
	}
	if o := CompileOnly(l, l.Skeleton); !o.Compiled {
		return fmt.Errorf("labs: lab %q skeleton does not compile: %s", l.ID, o.CompileError)
	}
	register(l)
	return nil
}

// Unregister removes a lab (used by tests and lab-authoring examples).
func Unregister(id string) { delete(registry, id) }

// ByID returns the lab with the given ID, or nil.
func ByID(id string) *Lab { return registry[id] }

// All returns the catalog ordered by lab number (Table II row order).
func All() []*Lab {
	out := make([]*Lab, 0, len(registry))
	for _, l := range registry {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// ForCourse returns the labs a course uses, in catalog order.
func ForCourse(c Course) []*Lab {
	var out []*Lab
	for _, l := range All() {
		if l.UsedBy(c) {
			out = append(out, l)
		}
	}
	return out
}

// defaultRubric is the standard split most labs use.
func defaultRubric(keywords ...string) Rubric {
	return Rubric{
		CompilePoints:  10,
		DatasetPoints:  15,
		KeywordPoints:  5,
		Keywords:       keywords,
		QuestionPoints: 5,
	}
}
