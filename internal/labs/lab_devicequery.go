package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Device Query: the demo lab that introduces WebGPU to students (Table II
// row 1). The "computation" is reading back the device properties; its
// real purpose is walking students through the edit/compile/run/submit
// loop.

var labDeviceQuery = register(&Lab{
	ID:      "device-query",
	Number:  1,
	Name:    "Device Query",
	Summary: "Demo Lab to introduce WebGPU to students.",
	Description: `# Device Query

The purpose of this lab is to introduce you to the WebGPU submission
system. You will query the properties of the GPU your code runs on and
report them.

## Instructions

Edit the kernel in the code view so that every entry of the output vector
is set to the device ordinal (already done in the skeleton), compile, run
against the provided dataset, and submit. The harness prints the device
properties for you; study the output — later labs will ask you to reason
about shared memory sizes and block limits.
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `// Device Query — run me as-is, then read the output.
__global__ void deviceQuery(int *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    out[i] = 0; // the device ordinal this lab runs on
  }
}
`,
	Reference: `__global__ void deviceQuery(int *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    out[i] = 0;
  }
}
`,
	Questions: []string{
		"What is the compute capability of the device you queried?",
		"How much shared memory is available per block, and why does it matter?",
	},
	Courses:     []Course{CourseHPP, CourseECE408, CoursePUMPS},
	NumDatasets: 1,
	Rubric: Rubric{
		CompilePoints:  40,
		DatasetPoints:  40,
		QuestionPoints: 10,
	},
	Generate: func(datasetID int) (*wb.Dataset, error) {
		n := 16
		want := make([]int32, n) // device ordinal 0 everywhere
		return &wb.Dataset{
			ID:       datasetID,
			Name:     "query0",
			Inputs:   []wb.File{{Name: "input0.raw", Data: wb.IntVectorBytes(make([]int32, n))}},
			Expected: wb.File{Name: "output.raw", Data: wb.IntVectorBytes(want)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, "deviceQuery"); err != nil {
			return wb.CheckResult{}, err
		}
		in, err := wb.ParseIntVector(rc.Dataset.Input("input0.raw"))
		if err != nil {
			return wb.CheckResult{}, err
		}
		n := len(in)
		rc.Trace.Logf(wb.LevelTrace, "Querying device 0")
		rc.Trace.Logf(wb.LevelInfo, "%s", rc.Dev().QueryString())
		outP, err := rc.Dev().MallocInt32(n, nil)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "deviceQuery", gpusim.D1(ceilDiv(n, 64)), gpusim.D1(64),
			minicuda.IntPtr(outP), minicuda.Int(n)); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := rc.Dev().ReadInt32(outP, n)
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, err := wb.ParseIntVector(rc.Dataset.Expected.Data)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareInts(got, want), nil
	},
})
