package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Reduction and Scan (Table II row 6): floating-point, work-efficiency,
// tree-like structures. The lab has two kernels: a block reduction that
// accumulates into a single total, and a work-efficient (Blelloch) scan
// with a block-sum fixup pass.

var labReductionScan = register(&Lab{
	ID:      "reduction-scan",
	Number:  6,
	Name:    "Reduction and Scan",
	Summary: "Floating-point, work-efficiency, tree-like structures.",
	Description: `# Reduction and Scan

Part 1: implement ` + "`total`" + `, a tree reduction that sums the input vector.
Each 256-thread block reduces 512 elements in shared memory and the first
thread atomically accumulates the block total into ` + "`output[0]`" + `.

Part 2: implement ` + "`scan`" + `, a work-efficient inclusive prefix sum over one
512-element section per block, and ` + "`addScannedBlockSums`" + ` which adds the
scanned block sums to the following sections (the harness scans the block
sums on the host, as in the course lab).
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `#define BLOCK_SIZE 256
__global__ void total(float *input, float *output, int len) {
  //@@ Part 1: tree reduction with an atomic accumulation
}
__global__ void scan(float *input, float *output, float *blockSums, int len) {
  //@@ Part 2: work-efficient scan of one 2*BLOCK_SIZE section per block
}
__global__ void addScannedBlockSums(float *output, float *blockSums, int len) {
  //@@ Part 2: add blockSums[b-1] to every element of section b
}
`,
	Reference: `#define BLOCK_SIZE 256
__global__ void total(float *input, float *output, int len) {
  __shared__ float partial[BLOCK_SIZE];
  int t = threadIdx.x;
  int i = blockIdx.x * blockDim.x * 2 + threadIdx.x;
  float sum = 0.0f;
  if (i < len) sum += input[i];
  if (i + blockDim.x < len) sum += input[i + blockDim.x];
  partial[t] = sum;
  for (int stride = blockDim.x / 2; stride >= 1; stride /= 2) {
    __syncthreads();
    if (t < stride) partial[t] += partial[t + stride];
  }
  if (t == 0) atomicAdd(output, partial[0]);
}
__global__ void scan(float *input, float *output, float *blockSums, int len) {
  __shared__ float T[2 * BLOCK_SIZE];
  int t = threadIdx.x;
  int start = 2 * blockIdx.x * BLOCK_SIZE;
  T[2 * t] = (start + 2 * t < len) ? input[start + 2 * t] : 0.0f;
  T[2 * t + 1] = (start + 2 * t + 1 < len) ? input[start + 2 * t + 1] : 0.0f;
  int stride = 1;
  while (stride < 2 * BLOCK_SIZE) {
    __syncthreads();
    int index = (t + 1) * stride * 2 - 1;
    if (index < 2 * BLOCK_SIZE && index - stride >= 0)
      T[index] += T[index - stride];
    stride = stride * 2;
  }
  stride = BLOCK_SIZE / 2;
  while (stride > 0) {
    __syncthreads();
    int index = (t + 1) * stride * 2 - 1;
    if (index + stride < 2 * BLOCK_SIZE)
      T[index + stride] += T[index];
    stride = stride / 2;
  }
  __syncthreads();
  if (start + 2 * t < len) output[start + 2 * t] = T[2 * t];
  if (start + 2 * t + 1 < len) output[start + 2 * t + 1] = T[2 * t + 1];
  if (t == 0) blockSums[blockIdx.x] = T[2 * BLOCK_SIZE - 1];
}
__global__ void addScannedBlockSums(float *output, float *blockSums, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    int section = i / (2 * BLOCK_SIZE);
    if (section > 0) output[i] += blockSums[section - 1];
  }
}
`,
	Questions: []string{
		"Why does the work-efficient scan perform O(n) additions while the naive scan performs O(n log n)?",
		"Why can floating-point reduction give slightly different results than a sequential sum?",
	},
	Courses:     []Course{CourseHPP, CourseECE408},
	NumDatasets: 4,
	Rubric:      defaultRubric("__shared__", "atomicAdd"),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		sizes := []int{64, 512, 1000, 2048}
		n := sizes[datasetID%len(sizes)]
		r := rng("reduction-scan", datasetID)
		in := make([]float32, n)
		scanOut := make([]float32, n)
		var run float32
		var sum float32
		for i := range in {
			in[i] = float32(r.Intn(16)) / 4
			sum += in[i]
			run += in[i]
			scanOut[i] = run
		}
		// Expected output layout: element 0 is the reduction total, the
		// remaining n elements are the inclusive scan.
		want := append([]float32{sum}, scanOut...)
		return &wb.Dataset{
			ID:       datasetID,
			Name:     "reduction-scan",
			Inputs:   []wb.File{{Name: "input0.raw", Data: wb.VectorBytes(in)}},
			Expected: wb.File{Name: "output.raw", Data: wb.VectorBytes(want)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		for _, k := range []string{"total", "scan", "addScannedBlockSums"} {
			if err := requireKernel(rc, k); err != nil {
				return wb.CheckResult{}, err
			}
		}
		in, err := loadVectorInput(rc, "input0.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		n := len(in)
		rc.Trace.Logf(wb.LevelTrace, "The input length is %d", n)
		inP, err := toDevice(rc, in)
		if err != nil {
			return wb.CheckResult{}, err
		}
		const blockSize = 256
		sections := ceilDiv(n, 2*blockSize)

		// Part 1: reduction.
		totalP, err := rc.Dev().Malloc(4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "total", gpusim.D1(sections), gpusim.D1(blockSize),
			minicuda.FloatPtr(inP), minicuda.FloatPtr(totalP), minicuda.Int(n)); err != nil {
			return wb.CheckResult{}, err
		}
		totalV, err := rc.Dev().ReadFloat32(totalP, 1)
		if err != nil {
			return wb.CheckResult{}, err
		}

		// Part 2: scan with host-side block-sum scan (as the course lab's
		// harness does for the multi-block case).
		outP, err := rc.Dev().Malloc(n * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		sumsP, err := rc.Dev().Malloc(sections * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "scan", gpusim.D1(sections), gpusim.D1(blockSize),
			minicuda.FloatPtr(inP), minicuda.FloatPtr(outP), minicuda.FloatPtr(sumsP),
			minicuda.Int(n)); err != nil {
			return wb.CheckResult{}, err
		}
		sums, err := rc.Dev().ReadFloat32(sumsP, sections)
		if err != nil {
			return wb.CheckResult{}, err
		}
		for i := 1; i < len(sums); i++ {
			sums[i] += sums[i-1]
		}
		if err := rc.Dev().MemcpyHtoD(sumsP, gpusim.Float32Bytes(sums)); err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "addScannedBlockSums",
			gpusim.D1(ceilDiv(n, blockSize)), gpusim.D1(blockSize),
			minicuda.FloatPtr(outP), minicuda.FloatPtr(sumsP), minicuda.Int(n)); err != nil {
			return wb.CheckResult{}, err
		}
		scanned, err := readBack(rc, outP, n)
		if err != nil {
			return wb.CheckResult{}, err
		}

		got := append([]float32{totalV[0]}, scanned...)
		want, err := expectedVector(rc)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	},
})
