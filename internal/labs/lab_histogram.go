package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Image Equalization (Table II row 7): atomic operations. Students write a
// histogram kernel (global atomics) and an apply kernel that maps pixels
// through the CDF-based correction function; the CDF itself is computed on
// the host by the harness, matching the course lab's structure.

func equalizeOracle(pix []byte) []byte {
	hist := make([]int, 256)
	for _, p := range pix {
		hist[p]++
	}
	n := float64(len(pix))
	cdf := make([]float64, 256)
	run := 0.0
	for i := 0; i < 256; i++ {
		run += float64(hist[i]) / n
		cdf[i] = run
	}
	cdfMin := cdf[0]
	for i := 1; i < 256 && cdfMin == 0; i++ {
		if cdf[i] > 0 {
			cdfMin = cdf[i]
		}
	}
	out := make([]byte, len(pix))
	for i, p := range pix {
		v := 255 * (cdf[p] - cdfMin) / (1 - cdfMin)
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out[i] = byte(v)
	}
	return out
}

var labImageEqualization = register(&Lab{
	ID:      "image-equalization",
	Number:  7,
	Name:    "Image Equalization",
	Summary: "Atomic operations.",
	Description: `# Histogram Equalization

Equalize a grayscale image:

1. ` + "`histogram`" + `: build a 256-bin histogram of the pixel values using
   ` + "`atomicAdd`" + ` (use a grid-stride loop).
2. The harness computes the normalized CDF of the histogram on the host.
3. ` + "`equalize`" + `: map every pixel through the correction function
   ` + "`255 * (cdf[v] - cdfmin) / (1 - cdfmin)`" + `, clamped to [0, 255].
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `#define HISTOGRAM_LENGTH 256
__global__ void histogram(unsigned char *input, int *bins, int len) {
  //@@ grid-stride loop with atomicAdd
}
__global__ void equalize(unsigned char *input, unsigned char *output,
                         float *cdf, float cdfmin, int len) {
  //@@ apply the correction function
}
`,
	Reference: `#define HISTOGRAM_LENGTH 256
__global__ void histogram(unsigned char *input, int *bins, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int stride = blockDim.x * gridDim.x;
  while (i < len) {
    atomicAdd(&bins[(int)input[i]], 1);
    i += stride;
  }
}
__global__ void equalize(unsigned char *input, unsigned char *output,
                         float *cdf, float cdfmin, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    float v = 255.0f * (cdf[(int)input[i]] - cdfmin) / (1.0f - cdfmin);
    v = fminf(fmaxf(v, 0.0f), 255.0f);
    output[i] = (unsigned char)v;
  }
}
`,
	Questions: []string{
		"Why do we need atomicAdd in the histogram kernel?",
		"What is the effect of high contention on a single histogram bin?",
	},
	Courses:     []Course{CourseHPP, CourseECE408},
	NumDatasets: 3,
	Rubric:      defaultRubric("atomicAdd"),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		shapes := [][2]int{{16, 16}, {31, 17}, {64, 48}}
		s := shapes[datasetID%len(shapes)]
		w, h := s[0], s[1]
		r := rng("image-equalization", datasetID)
		pix := make([]byte, w*h)
		// A low-contrast image so equalization does something visible.
		for i := range pix {
			pix[i] = byte(90 + r.Intn(80))
		}
		return &wb.Dataset{
			ID:       datasetID,
			Name:     "equalize",
			Inputs:   []wb.File{{Name: "input0.ppm", Data: wb.ImageBytes(pix, w, h)}},
			Expected: wb.File{Name: "output.ppm", Data: wb.ImageBytes(equalizeOracle(pix), w, h)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		for _, k := range []string{"histogram", "equalize"} {
			if err := requireKernel(rc, k); err != nil {
				return wb.CheckResult{}, err
			}
		}
		pix, w, h, err := wb.ParseImage(rc.Dataset.Input("input0.ppm"))
		if err != nil {
			return wb.CheckResult{}, err
		}
		n := len(pix)
		rc.Trace.Logf(wb.LevelTrace, "The image is %d x %d", w, h)

		inP, err := rc.Dev().Malloc(n)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := rc.Dev().MemcpyHtoD(inP, pix); err != nil {
			return wb.CheckResult{}, err
		}
		binsP, err := rc.Dev().Malloc(256 * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "histogram", gpusim.D1(8), gpusim.D1(128),
			minicuda.UCharPtr(inP), minicuda.IntPtr(binsP), minicuda.Int(n)); err != nil {
			return wb.CheckResult{}, err
		}
		bins, err := rc.Dev().ReadInt32(binsP, 256)
		if err != nil {
			return wb.CheckResult{}, err
		}

		// Host-side CDF, as in the course harness.
		cdf := make([]float32, 256)
		run := float32(0)
		for i := 0; i < 256; i++ {
			run += float32(bins[i]) / float32(n)
			cdf[i] = run
		}
		cdfMin := cdf[0]
		for i := 1; i < 256 && cdfMin == 0; i++ {
			if cdf[i] > 0 {
				cdfMin = cdf[i]
			}
		}
		cdfP, err := rc.Dev().MallocFloat32(256, cdf)
		if err != nil {
			return wb.CheckResult{}, err
		}
		outP, err := rc.Dev().Malloc(n)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "equalize", gpusim.D1(ceilDiv(n, 256)), gpusim.D1(256),
			minicuda.UCharPtr(inP), minicuda.UCharPtr(outP), minicuda.FloatPtr(cdfP),
			minicuda.Float(cdfMin), minicuda.Int(n)); err != nil {
			return wb.CheckResult{}, err
		}
		got := make([]byte, n)
		if err := rc.Dev().MemcpyDtoH(got, outP); err != nil {
			return wb.CheckResult{}, err
		}
		want, _, _, err := wb.ParseImage(rc.Dataset.Expected.Data)
		if err != nil {
			return wb.CheckResult{}, err
		}
		// +-1 slack absorbs float32-vs-float64 CDF rounding.
		return wb.CompareBytes(got, want, 1), nil
	},
})
