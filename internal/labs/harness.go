package labs

import (
	"fmt"

	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Common harness plumbing shared by the lab drivers. Each helper mirrors a
// stretch of the libwb main() the paper's labs wrap around student code:
// import data, allocate GPU memory, copy, launch, copy back, check.

// ceilDiv is the grid-sizing helper every lab uses.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// loadVectorInput parses a named float-vector input of the dataset.
func loadVectorInput(rc *RunContext, name string) ([]float32, error) {
	data := rc.Dataset.Input(name)
	if data == nil {
		return nil, fmt.Errorf("labs: dataset %q missing input %s", rc.Dataset.Name, name)
	}
	return wb.ParseVector(data)
}

// loadMatrixInput parses a named float-matrix input of the dataset.
func loadMatrixInput(rc *RunContext, name string) ([]float32, int, int, error) {
	data := rc.Dataset.Input(name)
	if data == nil {
		return nil, 0, 0, fmt.Errorf("labs: dataset %q missing input %s", rc.Dataset.Name, name)
	}
	return wb.ParseMatrix(data)
}

// expectedVector parses the dataset's expected float-vector output.
func expectedVector(rc *RunContext) ([]float32, error) {
	return wb.ParseVector(rc.Dataset.Expected.Data)
}

// toDevice allocates and fills a float buffer on the primary GPU, timing
// the copy as the labs' wbTime(Copy) does.
func toDevice(rc *RunContext, xs []float32) (gpusim.Ptr, error) {
	rc.Trace.Start(wb.TimeCopy, "Copying input memory to the GPU")
	defer rc.Trace.Stop(wb.TimeCopy, "Copying input memory to the GPU")
	return rc.Dev().MallocFloat32(len(xs), xs)
}

// launch runs a kernel on the primary device and records its simulated
// time under the Compute timer.
func launch(rc *RunContext, kernel string, grid, block gpusim.Dim3, args ...minicuda.Arg) error {
	stats, err := rc.Program.Launch(rc.Dev(), kernel, rc.Opts(grid, block), args...)
	if stats != nil {
		rc.Trace.RecordSpan(wb.TimeCompute, "Performing CUDA computation ("+kernel+")", stats.SimTime)
	}
	if err != nil {
		return fmt.Errorf("kernel %s: %w", kernel, err)
	}
	return nil
}

// readBack copies a float result off the device under the Copy timer.
func readBack(rc *RunContext, p gpusim.Ptr, n int) ([]float32, error) {
	rc.Trace.Start(wb.TimeCopy, "Copying output memory to the CPU")
	defer rc.Trace.Stop(wb.TimeCopy, "Copying output memory to the CPU")
	return rc.Dev().ReadFloat32(p, n)
}

// requireKernel verifies the student's program defines the kernel the
// harness will launch, producing the diagnostic the course staff's
// harnesses print.
func requireKernel(rc *RunContext, name string) error {
	if rc.Program.Kernel(name) == nil {
		return fmt.Errorf("labs: solution must define a __global__ kernel named %q (found %v)",
			name, rc.Program.Kernels())
	}
	return nil
}

// vectorMapHarness builds a harness for the common one-input-vector,
// one-output-vector shape given the kernel name and a launcher callback.
func vectorMapHarness(kernel string, run func(rc *RunContext, in gpusim.Ptr, n int, out gpusim.Ptr) error) Harness {
	return func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, kernel); err != nil {
			return wb.CheckResult{}, err
		}
		in, err := loadVectorInput(rc, "input0.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		rc.Trace.Logf(wb.LevelTrace, "The input length is %d", len(in))
		inP, err := toDevice(rc, in)
		if err != nil {
			return wb.CheckResult{}, err
		}
		outP, err := rc.Dev().Malloc(len(in) * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := run(rc, inP, len(in), outP); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := readBack(rc, outP, len(in))
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, err := expectedVector(rc)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	}
}
