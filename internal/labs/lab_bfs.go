package labs

import (
	"fmt"

	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// BFS Queuing (Table II row 14): hierarchical queuing performance effects.
// Frontier-based breadth-first search where each level's kernel builds the
// next frontier in a block-level shared-memory queue that is flushed into
// the global queue — the hierarchical queue pattern from lecture.

func bfsOracle(rowPtr, colIdx []int32, src int) []int32 {
	n := len(rowPtr) - 1
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int32{int32(src)}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []int32
		for _, u := range frontier {
			for e := rowPtr[u]; e < rowPtr[u+1]; e++ {
				v := colIdx[e]
				if level[v] == -1 {
					level[v] = depth
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return level
}

var labBFS = register(&Lab{
	ID:      "bfs-queuing",
	Number:  14,
	Name:    "BFS Queuing",
	Summary: "Hierarchical queuing performance effects.",
	Description: `# BFS with Hierarchical Queues

Implement one level of frontier-based BFS: each thread takes a node from
the current frontier, marks unvisited neighbours (claim them with
` + "`atomicCAS`" + ` on the level array), and appends them to the next frontier.

Use a **hierarchical queue**: append first to a per-block queue in shared
memory; when the block finishes (or its queue fills), reserve a region of
the global queue with a single ` + "`atomicAdd`" + ` and flush. The harness loops
levels until the frontier is empty. Output is each node's BFS level
(-1 when unreachable).
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `#define BQ_CAP 64
__global__ void bfsLevel(int *rowPtr, int *colIdx, int *levels,
                         int *frontier, int frontierSize,
                         int *nextFrontier, int *nextSize, int depth) {
  __shared__ int blockQueue[BQ_CAP];
  __shared__ int blockCount;
  //@@ hierarchical-queue BFS level
}
`,
	Reference: `#define BQ_CAP 64
__global__ void bfsLevel(int *rowPtr, int *colIdx, int *levels,
                         int *frontier, int frontierSize,
                         int *nextFrontier, int *nextSize, int depth) {
  __shared__ int blockQueue[BQ_CAP];
  __shared__ int blockCount;
  __shared__ int globalBase;
  if (threadIdx.x == 0) blockCount = 0;
  __syncthreads();
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < frontierSize) {
    int u = frontier[i];
    for (int e = rowPtr[u]; e < rowPtr[u + 1]; e++) {
      int v = colIdx[e];
      if (atomicCAS(&levels[v], -1, depth) == -1) {
        int pos = atomicAdd(&blockCount, 1);
        if (pos < BQ_CAP) {
          blockQueue[pos] = v;
        } else {
          // Block queue overflow: spill directly to the global queue.
          int g = atomicAdd(nextSize, 1);
          nextFrontier[g] = v;
        }
      }
    }
  }
  __syncthreads();
  int produced = min(blockCount, BQ_CAP);
  if (threadIdx.x == 0) {
    globalBase = atomicAdd(nextSize, produced);
  }
  __syncthreads();
  for (int k = threadIdx.x; k < produced; k += blockDim.x) {
    nextFrontier[globalBase + k] = blockQueue[k];
  }
}
`,
	Questions: []string{
		"Why does the block-level queue reduce contention on the global queue pointer?",
		"Why is atomicCAS (not a plain write) needed when claiming a neighbour?",
	},
	Courses:     []Course{CourseECE598, CoursePUMPS},
	NumDatasets: 3,
	Rubric:      defaultRubric("atomicCAS", "__shared__"),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		sizes := []int{16, 64, 200}
		n := sizes[datasetID%len(sizes)]
		r := rng("bfs-queuing", datasetID)
		// Random sparse digraph: ~3 out-edges per node, plus a spanning
		// chain so most nodes are reachable.
		adj := make([][]int32, n)
		for u := 1; u < n; u++ {
			if r.Intn(4) > 0 { // most nodes chained in
				p := r.Intn(u)
				adj[p] = append(adj[p], int32(u))
			}
		}
		for u := 0; u < n; u++ {
			for k := 0; k < 2; k++ {
				adj[u] = append(adj[u], int32(r.Intn(n)))
			}
		}
		rowPtr := make([]int32, n+1)
		var colIdx []int32
		for u := 0; u < n; u++ {
			colIdx = append(colIdx, adj[u]...)
			rowPtr[u+1] = int32(len(colIdx))
		}
		want := bfsOracle(rowPtr, colIdx, 0)
		return &wb.Dataset{
			ID:   datasetID,
			Name: "bfs",
			Inputs: []wb.File{
				{Name: "rowptr.raw", Data: wb.IntVectorBytes(rowPtr)},
				{Name: "colidx.raw", Data: wb.IntVectorBytes(colIdx)},
			},
			Expected: wb.File{Name: "output.raw", Data: wb.IntVectorBytes(want)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, "bfsLevel"); err != nil {
			return wb.CheckResult{}, err
		}
		rowPtr, err := wb.ParseIntVector(rc.Dataset.Input("rowptr.raw"))
		if err != nil {
			return wb.CheckResult{}, err
		}
		colIdx, err := wb.ParseIntVector(rc.Dataset.Input("colidx.raw"))
		if err != nil {
			return wb.CheckResult{}, err
		}
		n := len(rowPtr) - 1
		rc.Trace.Logf(wb.LevelTrace, "The graph has %d nodes and %d edges", n, len(colIdx))
		dev := rc.Dev()
		rowP, err := dev.MallocInt32(len(rowPtr), rowPtr)
		if err != nil {
			return wb.CheckResult{}, err
		}
		colP, err := dev.MallocInt32(maxI(len(colIdx), 1), colIdx)
		if err != nil {
			return wb.CheckResult{}, err
		}
		levels := make([]int32, n)
		for i := range levels {
			levels[i] = -1
		}
		levels[0] = 0
		levP, err := dev.MallocInt32(n, levels)
		if err != nil {
			return wb.CheckResult{}, err
		}
		curP, err := dev.MallocInt32(n+1, []int32{0}) // frontier = {src}
		if err != nil {
			return wb.CheckResult{}, err
		}
		nextP, err := dev.MallocInt32(n+1, nil)
		if err != nil {
			return wb.CheckResult{}, err
		}
		sizeP, err := dev.Malloc(4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		frontierSize := 1
		for depth := 1; frontierSize > 0 && depth <= n+1; depth++ {
			if err := dev.Memset(sizeP, 0, 4); err != nil {
				return wb.CheckResult{}, err
			}
			if err := launch(rc, "bfsLevel",
				gpusim.D1(ceilDiv(frontierSize, 64)), gpusim.D1(64),
				minicuda.IntPtr(rowP), minicuda.IntPtr(colP), minicuda.IntPtr(levP),
				minicuda.IntPtr(curP), minicuda.Int(frontierSize),
				minicuda.IntPtr(nextP), minicuda.IntPtr(sizeP), minicuda.Int(depth)); err != nil {
				return wb.CheckResult{}, err
			}
			sz, err := dev.ReadInt32(sizeP, 1)
			if err != nil {
				return wb.CheckResult{}, err
			}
			if int(sz[0]) > n {
				return wb.CheckResult{}, fmt.Errorf("labs: bfs produced frontier of %d > %d nodes", sz[0], n)
			}
			frontierSize = int(sz[0])
			curP, nextP = nextP, curP
		}
		got, err := dev.ReadInt32(levP, n)
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, err := wb.ParseIntVector(rc.Dataset.Expected.Data)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareInts(got, want), nil
	},
})
