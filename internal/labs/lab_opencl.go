package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// OpenCL Vector Addition (Table II row 8): the same computation as the
// CUDA vector-add lab but in the OpenCL dialect, dispatched only to worker
// containers whose image carries the OpenCL toolchain (§VI-B).

var labOpenCLVecAdd = register(&Lab{
	ID:      "opencl-vector-add",
	Number:  8,
	Name:    "OpenCL Vector Addition",
	Summary: "OpenCL",
	Description: `# OpenCL Vector Addition

Re-implement vector addition as an OpenCL kernel. Note the differences
from CUDA:

* the entry point is marked ` + "`__kernel`" + ` and buffer parameters are
  ` + "`__global`" + `
* the global index comes from ` + "`get_global_id(0)`" + `
`,
	Dialect: minicuda.DialectOpenCL,
	Skeleton: `__kernel void vadd(__global const float *a, __global const float *b,
                   __global float *result, int len) {
  //@@ Insert OpenCL vector addition here
}
`,
	Reference: `__kernel void vadd(__global const float *a, __global const float *b,
                   __global float *result, int len) {
  int id = get_global_id(0);
  if (id < len) {
    result[id] = a[id] + b[id];
  }
}
`,
	Questions: []string{
		"What is the OpenCL equivalent of a CUDA thread block?",
	},
	Courses:      []Course{CourseHPP},
	Requirements: []string{ReqOpenCL},
	NumDatasets:  3,
	Rubric:       defaultRubric("get_global_id", "__kernel"),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		sizes := []int{32, 200, 777}
		n := sizes[datasetID%len(sizes)]
		r := rng("opencl-vector-add", datasetID)
		a := make([]float32, n)
		b := make([]float32, n)
		want := make([]float32, n)
		for i := range a {
			a[i] = float32(r.Intn(100)) / 2
			b[i] = float32(r.Intn(100)) / 2
			want[i] = a[i] + b[i]
		}
		return &wb.Dataset{
			ID:   datasetID,
			Name: "oclvadd",
			Inputs: []wb.File{
				{Name: "input0.raw", Data: wb.VectorBytes(a)},
				{Name: "input1.raw", Data: wb.VectorBytes(b)},
			},
			Expected: wb.File{Name: "output.raw", Data: wb.VectorBytes(want)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, "vadd"); err != nil {
			return wb.CheckResult{}, err
		}
		a, err := loadVectorInput(rc, "input0.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		b, err := loadVectorInput(rc, "input1.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		aP, err := toDevice(rc, a)
		if err != nil {
			return wb.CheckResult{}, err
		}
		bP, err := toDevice(rc, b)
		if err != nil {
			return wb.CheckResult{}, err
		}
		outP, err := rc.Dev().Malloc(len(a) * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "vadd", gpusim.D1(ceilDiv(len(a), 64)), gpusim.D1(64),
			minicuda.FloatPtr(aP), minicuda.FloatPtr(bP), minicuda.FloatPtr(outP),
			minicuda.Int(len(a))); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := readBack(rc, outP, len(a))
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, err := expectedVector(rc)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	},
})
