package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// SPMV (Table II row 12): sparse matrix formats and their performance
// effects. Students implement CSR sparse matrix-vector multiply, one row
// per thread.

var labSPMV = register(&Lab{
	ID:      "spmv",
	Number:  12,
	Name:    "SPMV",
	Summary: "Sparse matrix formats and performance effects.",
	Description: `# Sparse Matrix-Vector Multiplication (CSR)

Implement y = A x for a sparse matrix A stored in compressed sparse row
(CSR) format: ` + "`rowPtr`" + ` (length rows+1), ` + "`colIdx`" + ` and ` + "`vals`" + `
(length nnz). Assign one thread per row.

Think about why CSR rows of very different lengths cause load imbalance
and control divergence — the JDS format covered in lecture addresses this.
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `__global__ void spmvCSR(int *rowPtr, int *colIdx, float *vals,
                        float *x, float *y, int numRows) {
  //@@ one thread per row
}
`,
	Reference: `__global__ void spmvCSR(int *rowPtr, int *colIdx, float *vals,
                        float *x, float *y, int numRows) {
  int row = blockIdx.x * blockDim.x + threadIdx.x;
  if (row < numRows) {
    float acc = 0.0f;
    int start = rowPtr[row];
    int end = rowPtr[row + 1];
    for (int i = start; i < end; i++) {
      acc += vals[i] * x[colIdx[i]];
    }
    y[row] = acc;
  }
}
`,
	Questions: []string{
		"Why do rows of very different lengths hurt CSR SPMV performance on a GPU?",
		"Which accesses in your kernel are uncoalesced, and what does JDS change?",
	},
	Courses:     []Course{CourseECE598, CoursePUMPS},
	NumDatasets: 4,
	Rubric:      defaultRubric(),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		sizes := []int{8, 32, 100, 250}
		n := sizes[datasetID%len(sizes)]
		r := rng("spmv", datasetID)
		m := &wb.CSR{Rows: n, Cols: n, RowPtr: make([]int32, n+1)}
		for row := 0; row < n; row++ {
			nnzRow := r.Intn(5) // 0..4 entries per row: imbalance on purpose
			used := map[int]bool{}
			for k := 0; k < nnzRow; k++ {
				c := r.Intn(n)
				if used[c] {
					continue
				}
				used[c] = true
				m.ColIdx = append(m.ColIdx, int32(c))
				m.Vals = append(m.Vals, float32(r.Intn(16)-8)/4)
			}
			m.RowPtr[row+1] = int32(len(m.Vals))
		}
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(r.Intn(16)) / 4
		}
		want := m.MulVec(x)
		return &wb.Dataset{
			ID:   datasetID,
			Name: "spmv",
			Inputs: []wb.File{
				{Name: "matrix.csr", Data: wb.CSRBytes(m)},
				{Name: "vector.raw", Data: wb.VectorBytes(x)},
			},
			Expected: wb.File{Name: "output.raw", Data: wb.VectorBytes(want)},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, "spmvCSR"); err != nil {
			return wb.CheckResult{}, err
		}
		m, err := wb.ParseCSR(rc.Dataset.Input("matrix.csr"))
		if err != nil {
			return wb.CheckResult{}, err
		}
		x, err := loadVectorInput(rc, "vector.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		rc.Trace.Logf(wb.LevelTrace, "The matrix is %d x %d with %d non-zeros",
			m.Rows, m.Cols, len(m.Vals))
		dev := rc.Dev()
		rowP, err := dev.MallocInt32(len(m.RowPtr), m.RowPtr)
		if err != nil {
			return wb.CheckResult{}, err
		}
		colP, err := dev.MallocInt32(maxI(len(m.ColIdx), 1), m.ColIdx)
		if err != nil {
			return wb.CheckResult{}, err
		}
		valP, err := dev.MallocFloat32(maxI(len(m.Vals), 1), m.Vals)
		if err != nil {
			return wb.CheckResult{}, err
		}
		xP, err := toDevice(rc, x)
		if err != nil {
			return wb.CheckResult{}, err
		}
		yP, err := dev.Malloc(m.Rows * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "spmvCSR", gpusim.D1(ceilDiv(m.Rows, 128)), gpusim.D1(128),
			minicuda.IntPtr(rowP), minicuda.IntPtr(colP), minicuda.FloatPtr(valP),
			minicuda.FloatPtr(xP), minicuda.FloatPtr(yP), minicuda.Int(m.Rows)); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := readBack(rc, yP, m.Rows)
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, err := expectedVector(rc)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	},
})

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
