package labs

import (
	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Scatter to Gather (Table II row 9): transformation between scatter and
// gather. Students are given the scatter formulation of a force-spreading
// operation (each input i adds w0*in[i] to out[i-1], w1*in[i] to out[i],
// w2*in[i] to out[i+1]) and must write the gather version, where each
// output element pulls its three contributions — no atomics needed.

var labScatterToGather = register(&Lab{
	ID:      "scatter-to-gather",
	Number:  9,
	Name:    "Scatter to Gather",
	Summary: "Transformation between scatter and gather.",
	Description: `# Scatter to Gather

The sequential code spreads each input element into three output cells:

    out[i-1] += 0.25 * in[i];
    out[i]   += 0.50 * in[i];
    out[i+1] += 0.25 * in[i];

A direct CUDA port (one thread per *input*) needs atomics because several
threads write each output cell. Transform it into a **gather** kernel: one
thread per *output* element that reads the (up to three) inputs that
contribute to it. Boundary cells receive no contribution from outside the
array.
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `__global__ void gatherKernel(float *in, float *out, int len) {
  //@@ one thread per OUTPUT element; pull contributions, no atomics
}
`,
	Reference: `__global__ void gatherKernel(float *in, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    float acc = 0.50f * in[i];
    if (i > 0) acc += 0.25f * in[i - 1];
    if (i < len - 1) acc += 0.25f * in[i + 1];
    out[i] = acc;
  }
}
`,
	Questions: []string{
		"Why does the gather formulation avoid atomic operations?",
		"When can a scatter pattern NOT be converted to a gather pattern cheaply?",
	},
	Courses:     []Course{CourseECE598, CoursePUMPS},
	NumDatasets: 4,
	Rubric:      defaultRubric(),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		sizes := []int{16, 100, 511, 1024}
		n := sizes[datasetID%len(sizes)]
		r := rng("scatter-to-gather", datasetID)
		in := make([]float32, n)
		for i := range in {
			in[i] = float32(r.Intn(64)) / 4
		}
		want := make([]float32, n)
		for i := 0; i < n; i++ { // scatter oracle
			if i > 0 {
				want[i-1] += 0.25 * in[i]
			}
			want[i] += 0.50 * in[i]
			if i < n-1 {
				want[i+1] += 0.25 * in[i]
			}
		}
		return &wb.Dataset{
			ID:       datasetID,
			Name:     "gather",
			Inputs:   []wb.File{{Name: "input0.raw", Data: wb.VectorBytes(in)}},
			Expected: wb.File{Name: "output.raw", Data: wb.VectorBytes(want)},
		}, nil
	},
	Harness: vectorMapHarness("gatherKernel", func(rc *RunContext, in gpusim.Ptr, n int, out gpusim.Ptr) error {
		return launch(rc, "gatherKernel", gpusim.D1(ceilDiv(n, 128)), gpusim.D1(128),
			minicuda.FloatPtr(in), minicuda.FloatPtr(out), minicuda.Int(n))
	}),
})
