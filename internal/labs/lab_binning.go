package labs

import (
	"math"

	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Input Binning (Table II row 13): input binning and its performance
// effects. Points on [0,1) are binned into a uniform grid with atomics;
// a query kernel then finds each query's nearest input point by searching
// only the query's bin and its neighbours.

const binCount = 16

func binningOracle(points, queries []float32) []float32 {
	out := make([]float32, len(queries))
	for qi, q := range queries {
		best := float32(math.Inf(1))
		for _, p := range points {
			d := q - p
			if d < 0 {
				d = -d
			}
			if d < best {
				best = d
			}
		}
		out[qi] = best
	}
	return out
}

var labInputBinning = register(&Lab{
	ID:      "input-binning",
	Number:  13,
	Name:    "Input Binning",
	Summary: "Input Binning and performance effects.",
	Description: `# Input Binning

Given input points on [0, 1), build a uniform grid of 16 bins and use it
to answer nearest-neighbour queries without scanning all points.

1. ` + "`countBin`" + `: count the points per bin with ` + "`atomicAdd`" + `.
2. The harness exclusive-scans the counts into bin start offsets.
3. ` + "`scatterBin`" + `: write each point into its bin's region of the binned
   array, claiming slots with ` + "`atomicAdd`" + ` on a per-bin cursor.
4. ` + "`nearest`" + `: for each query, search the query's bin and the immediately
   adjacent bins, widening the radius until a neighbour is found, and
   output the distance to the nearest point.

The expected output is the nearest distance for each query (bins only
change *how fast* you find it, not the answer).
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `#define NUM_BINS 16
__global__ void countBin(float *points, int *counts, int n) {
  //@@ atomicAdd per point into its bin
}
__global__ void scatterBin(float *points, int *starts, int *cursors,
                           float *binned, int n) {
  //@@ claim a slot with atomicAdd(&cursors[b], 1) and write the point
}
__global__ void nearest(float *binned, int *starts, int *counts,
                        float *queries, float *out, int numQueries) {
  //@@ search outward from the query's bin
}
`,
	Reference: `#define NUM_BINS 16
__global__ void countBin(float *points, int *counts, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int b = (int)(points[i] * NUM_BINS);
    b = min(b, NUM_BINS - 1);
    atomicAdd(&counts[b], 1);
  }
}
__global__ void scatterBin(float *points, int *starts, int *cursors,
                           float *binned, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    int b = (int)(points[i] * NUM_BINS);
    b = min(b, NUM_BINS - 1);
    int slot = atomicAdd(&cursors[b], 1);
    binned[starts[b] + slot] = points[i];
  }
}
__global__ void nearest(float *binned, int *starts, int *counts,
                        float *queries, float *out, int numQueries) {
  int qi = blockIdx.x * blockDim.x + threadIdx.x;
  if (qi >= numQueries) return;
  float q = queries[qi];
  int home = (int)(q * NUM_BINS);
  home = min(home, NUM_BINS - 1);
  float best = 1.0e30f;
  float binWidth = 1.0f / NUM_BINS;
  for (int radius = 0; radius < NUM_BINS; radius++) {
    // A point in a bin at this ring is at least (radius-1)*binWidth away,
    // so once that bound exceeds the best distance we can stop.
    if ((float)(radius - 1) * binWidth > best) break;
    int lo = home - radius;
    int hi = home + radius;
    for (int b = lo; b <= hi; b++) {
      if (b < 0 || b >= NUM_BINS) continue;
      if (b != lo && b != hi) continue; // only the ring at this radius
      for (int k = 0; k < counts[b]; k++) {
        float d = fabsf(q - binned[starts[b] + k]);
        if (d < best) best = d;
      }
    }
  }
  out[qi] = best;
}
`,
	Questions: []string{
		"Why must the search continue one ring past the first non-empty bin?",
		"How does binning change the asymptotic cost of a nearest-neighbour query?",
	},
	Courses:     []Course{CourseECE598, CoursePUMPS},
	NumDatasets: 3,
	Rubric:      defaultRubric("atomicAdd"),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		sizes := [][2]int{{32, 8}, {128, 32}, {400, 64}}
		s := sizes[datasetID%len(sizes)]
		np, nq := s[0], s[1]
		r := rng("input-binning", datasetID)
		points := make([]float32, np)
		for i := range points {
			points[i] = float32(r.Float64())
		}
		queries := make([]float32, nq)
		for i := range queries {
			queries[i] = float32(r.Float64())
		}
		return &wb.Dataset{
			ID:   datasetID,
			Name: "binning",
			Inputs: []wb.File{
				{Name: "points.raw", Data: wb.VectorBytes(points)},
				{Name: "queries.raw", Data: wb.VectorBytes(queries)},
			},
			Expected: wb.File{Name: "output.raw", Data: wb.VectorBytes(binningOracle(points, queries))},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		for _, k := range []string{"countBin", "scatterBin", "nearest"} {
			if err := requireKernel(rc, k); err != nil {
				return wb.CheckResult{}, err
			}
		}
		points, err := loadVectorInput(rc, "points.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		queries, err := loadVectorInput(rc, "queries.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		dev := rc.Dev()
		n, nq := len(points), len(queries)
		rc.Trace.Logf(wb.LevelTrace, "%d points, %d queries, %d bins", n, nq, binCount)

		ptsP, err := toDevice(rc, points)
		if err != nil {
			return wb.CheckResult{}, err
		}
		countsP, err := dev.Malloc(binCount * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "countBin", gpusim.D1(ceilDiv(n, 128)), gpusim.D1(128),
			minicuda.FloatPtr(ptsP), minicuda.IntPtr(countsP), minicuda.Int(n)); err != nil {
			return wb.CheckResult{}, err
		}
		counts, err := dev.ReadInt32(countsP, binCount)
		if err != nil {
			return wb.CheckResult{}, err
		}
		starts := make([]int32, binCount)
		var run int32
		for i, c := range counts {
			starts[i] = run
			run += c
		}
		startsP, err := dev.MallocInt32(binCount, starts)
		if err != nil {
			return wb.CheckResult{}, err
		}
		cursorsP, err := dev.Malloc(binCount * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		binnedP, err := dev.Malloc(n * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "scatterBin", gpusim.D1(ceilDiv(n, 128)), gpusim.D1(128),
			minicuda.FloatPtr(ptsP), minicuda.IntPtr(startsP), minicuda.IntPtr(cursorsP),
			minicuda.FloatPtr(binnedP), minicuda.Int(n)); err != nil {
			return wb.CheckResult{}, err
		}
		qP, err := toDevice(rc, queries)
		if err != nil {
			return wb.CheckResult{}, err
		}
		outP, err := dev.Malloc(nq * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		if err := launch(rc, "nearest", gpusim.D1(ceilDiv(nq, 64)), gpusim.D1(64),
			minicuda.FloatPtr(binnedP), minicuda.IntPtr(startsP), minicuda.IntPtr(countsP),
			minicuda.FloatPtr(qP), minicuda.FloatPtr(outP), minicuda.Int(nq)); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := readBack(rc, outP, nq)
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, err := expectedVector(rc)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	},
})
