package labs

import (
	"fmt"

	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/wb"
)

// Basic and Tiled Matrix Multiplication (Table II rows 3-4): the basic
// version teaches 2D indexing and boundary checks; the tiled version
// introduces shared-memory tiling.

func genMatMulDataset(labID string, datasetID int) (*wb.Dataset, error) {
	shapes := [][3]int{{4, 4, 4}, {8, 12, 8}, {16, 16, 16}, {19, 13, 17}, {32, 24, 40}}
	s := shapes[datasetID%len(shapes)]
	ra, ca, cb := s[0], s[1], s[2]
	r := rng(labID, datasetID)
	a := make([]float32, ra*ca)
	b := make([]float32, ca*cb)
	for i := range a {
		a[i] = float32(r.Intn(40)-20) / 8
	}
	for i := range b {
		b[i] = float32(r.Intn(40)-20) / 8
	}
	want := make([]float32, ra*cb)
	for i := 0; i < ra; i++ {
		for j := 0; j < cb; j++ {
			var acc float32
			for k := 0; k < ca; k++ {
				acc += a[i*ca+k] * b[k*cb+j]
			}
			want[i*cb+j] = acc
		}
	}
	return &wb.Dataset{
		ID:   datasetID,
		Name: "matmul",
		Inputs: []wb.File{
			{Name: "input0.raw", Data: wb.MatrixBytes(a, ra, ca)},
			{Name: "input1.raw", Data: wb.MatrixBytes(b, ca, cb)},
		},
		Expected: wb.File{Name: "output.raw", Data: wb.MatrixBytes(want, ra, cb)},
	}, nil
}

func matMulHarness(kernel string, block int) Harness {
	return func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, kernel); err != nil {
			return wb.CheckResult{}, err
		}
		a, ra, ca, err := loadMatrixInput(rc, "input0.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		b, rb, cb, err := loadMatrixInput(rc, "input1.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		if ca != rb {
			return wb.CheckResult{}, errDims(ca, rb)
		}
		rc.Trace.Logf(wb.LevelTrace, "The dimensions of A are %d x %d", ra, ca)
		rc.Trace.Logf(wb.LevelTrace, "The dimensions of B are %d x %d", rb, cb)
		aP, err := toDevice(rc, a)
		if err != nil {
			return wb.CheckResult{}, err
		}
		bP, err := toDevice(rc, b)
		if err != nil {
			return wb.CheckResult{}, err
		}
		cP, err := rc.Dev().Malloc(ra * cb * 4)
		if err != nil {
			return wb.CheckResult{}, err
		}
		grid := gpusim.D2(ceilDiv(cb, block), ceilDiv(ra, block))
		if err := launch(rc, kernel, grid, gpusim.D2(block, block),
			minicuda.FloatPtr(aP), minicuda.FloatPtr(bP), minicuda.FloatPtr(cP),
			minicuda.Int(ra), minicuda.Int(ca), minicuda.Int(cb)); err != nil {
			return wb.CheckResult{}, err
		}
		got, err := readBack(rc, cP, ra*cb)
		if err != nil {
			return wb.CheckResult{}, err
		}
		want, _, _, err := wb.ParseMatrix(rc.Dataset.Expected.Data)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	}
}

func errDims(a, b int) error {
	return fmt.Errorf("labs: inner matrix dimensions disagree: %d vs %d", a, b)
}

var labBasicMatMul = register(&Lab{
	ID:      "basic-matmul",
	Number:  3,
	Name:    "Basic Matrix Multiplication",
	Summary: "Boundary checking and indexing.",
	Description: `# Basic Matrix Multiplication

Implement a dense matrix multiplication C = A x B where each thread
computes one element of C.

The matrices are not necessarily square and their dimensions are not
necessarily multiples of the block size, so boundary checks are required.
The harness launches ` + "`matrixMultiply`" + ` with 16x16 blocks.
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `__global__ void matrixMultiply(float *A, float *B, float *C,
                               int numARows, int numACols, int numBCols) {
  //@@ Insert code to implement basic matrix multiplication here
}
`,
	Reference: `__global__ void matrixMultiply(float *A, float *B, float *C,
                               int numARows, int numACols, int numBCols) {
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  if (row < numARows && col < numBCols) {
    float acc = 0.0f;
    for (int k = 0; k < numACols; k++) {
      acc += A[row * numACols + k] * B[k * numBCols + col];
    }
    C[row * numBCols + col] = acc;
  }
}
`,
	Questions: []string{
		"How many global memory reads does each thread perform?",
		"What limits the performance of this kernel: compute or memory bandwidth?",
	},
	Courses:     []Course{CourseHPP, CourseECE408},
	NumDatasets: 5,
	Rubric:      defaultRubric("blockIdx", "blockDim"),
	Generate: func(id int) (*wb.Dataset, error) {
		return genMatMulDataset("basic-matmul", id)
	},
	Harness: matMulHarness("matrixMultiply", 16),
})

var labTiledMatMul = register(&Lab{
	ID:      "tiled-matmul",
	Number:  4,
	Name:    "Tiled Matrix Multiplication",
	Summary: "Introduce shared memory tiling.",
	Description: `# Tiled Matrix Multiplication

Re-implement matrix multiplication using shared-memory tiling with
TILE_WIDTH = 16. Each block cooperatively stages a tile of A and a tile of
B into ` + "`__shared__`" + ` arrays, synchronizes, and accumulates partial dot
products from the tiles.

Remember:

* every thread in the block must reach the ` + "`__syncthreads()`" + ` calls —
  keep them outside divergent branches
* pad out-of-range tile elements with zero
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `#define TILE_WIDTH 16
__global__ void matrixMultiplyShared(float *A, float *B, float *C,
                                     int numARows, int numACols, int numBCols) {
  __shared__ float tileA[TILE_WIDTH][TILE_WIDTH];
  __shared__ float tileB[TILE_WIDTH][TILE_WIDTH];
  //@@ Insert code to implement tiled matrix multiplication here
}
`,
	Reference: `#define TILE_WIDTH 16
__global__ void matrixMultiplyShared(float *A, float *B, float *C,
                                     int numARows, int numACols, int numBCols) {
  __shared__ float tileA[TILE_WIDTH][TILE_WIDTH];
  __shared__ float tileB[TILE_WIDTH][TILE_WIDTH];
  int row = blockIdx.y * TILE_WIDTH + threadIdx.y;
  int col = blockIdx.x * TILE_WIDTH + threadIdx.x;
  float acc = 0.0f;
  int tiles = (numACols + TILE_WIDTH - 1) / TILE_WIDTH;
  for (int m = 0; m < tiles; m++) {
    if (row < numARows && m * TILE_WIDTH + threadIdx.x < numACols)
      tileA[threadIdx.y][threadIdx.x] = A[row * numACols + m * TILE_WIDTH + threadIdx.x];
    else
      tileA[threadIdx.y][threadIdx.x] = 0.0f;
    if (col < numBCols && m * TILE_WIDTH + threadIdx.y < numACols)
      tileB[threadIdx.y][threadIdx.x] = B[(m * TILE_WIDTH + threadIdx.y) * numBCols + col];
    else
      tileB[threadIdx.y][threadIdx.x] = 0.0f;
    __syncthreads();
    for (int k = 0; k < TILE_WIDTH; k++)
      acc += tileA[threadIdx.y][k] * tileB[k][threadIdx.x];
    __syncthreads();
  }
  if (row < numARows && col < numBCols)
    C[row * numBCols + col] = acc;
}
`,
	Questions: []string{
		"By what factor does tiling reduce global memory traffic compared to the basic kernel?",
		"What goes wrong if __syncthreads() is placed inside the boundary if-statement?",
	},
	Courses:     []Course{CourseHPP, CourseECE408},
	NumDatasets: 5,
	Rubric:      defaultRubric("__shared__", "__syncthreads"),
	Generate: func(id int) (*wb.Dataset, error) {
		return genMatMulDataset("tiled-matmul", id)
	},
	Harness: matMulHarness("matrixMultiplyShared", 16),
})
