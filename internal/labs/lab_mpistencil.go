package labs

import (
	"fmt"

	"webgpu/internal/gpusim"
	"webgpu/internal/minicuda"
	"webgpu/internal/mpi"
	"webgpu/internal/wb"
)

// Multi-GPU Stencil with MPI (Table II row 15): multi-GPU programming and
// MPI. A 1D diffusion stencil is iterated over a vector partitioned into
// strips, one strip per (simulated) GPU; after every iteration the strip
// owners exchange one-element halos over the MPI substrate. The lab is
// tagged so the broker only dispatches it to workers advertising both
// "mpi" and "multi-gpu" (§VI-A).

const (
	mpiStencilRanks = 2
	mpiStencilIters = 8
)

func mpiStencilOracle(in []float32, iters int) []float32 {
	cur := append([]float32(nil), in...)
	next := make([]float32, len(in))
	for it := 0; it < iters; it++ {
		for i := range cur {
			var l, r float32
			if i > 0 {
				l = cur[i-1]
			}
			if i < len(cur)-1 {
				r = cur[i+1]
			}
			next[i] = 0.25*l + 0.5*cur[i] + 0.25*r
		}
		cur, next = next, cur
	}
	return cur
}

var labMPIStencil = register(&Lab{
	ID:      "mpi-stencil",
	Number:  15,
	Name:    "Multi-GPU Stencil with MPI",
	Summary: "Multi-GPU programming and MPI.",
	Description: `# Multi-GPU Stencil with MPI

Iterate the diffusion stencil

    out[i] = 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1]

for 8 iterations over a vector split into two strips, one per GPU/MPI
rank. Each strip is stored with one halo cell on each side; after every
iteration the ranks exchange boundary values with their neighbours using
MPI send/recv before the next kernel launch.

Your kernel computes one strip given its halo-padded input. The MPI
choreography is in the harness — study it: the deadlock-free ordering of
sends and receives is the point of this lab.
`,
	Dialect: minicuda.DialectCUDA,
	Skeleton: `__global__ void stencilStrip(float *in, float *out, int n) {
  // in and out have n+2 elements: in[0] and in[n+1] are halo cells.
  //@@ compute out[1..n] from in
}
`,
	Reference: `__global__ void stencilStrip(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x + 1;
  if (i <= n) {
    out[i] = 0.25f * in[i - 1] + 0.5f * in[i] + 0.25f * in[i + 1];
  }
}
`,
	Questions: []string{
		"Why must halo exchange complete before the next kernel launch?",
		"How does the communication-to-computation ratio change with strip width?",
	},
	Courses:      []Course{CourseECE598},
	Requirements: []string{ReqMPI, ReqMultiGPU},
	NumDatasets:  3,
	NumGPUs:      mpiStencilRanks,
	Rubric:       defaultRubric(),
	Generate: func(datasetID int) (*wb.Dataset, error) {
		sizes := []int{32, 128, 512} // multiples of the rank count
		n := sizes[datasetID%len(sizes)]
		r := rng("mpi-stencil", datasetID)
		in := make([]float32, n)
		for i := range in {
			in[i] = float32(r.Intn(256)) / 16
		}
		return &wb.Dataset{
			ID:       datasetID,
			Name:     "mpistencil",
			Inputs:   []wb.File{{Name: "input0.raw", Data: wb.VectorBytes(in)}},
			Expected: wb.File{Name: "output.raw", Data: wb.VectorBytes(mpiStencilOracle(in, mpiStencilIters))},
		}, nil
	},
	Harness: func(rc *RunContext) (wb.CheckResult, error) {
		if err := requireKernel(rc, "stencilStrip"); err != nil {
			return wb.CheckResult{}, err
		}
		if len(rc.Devices) < mpiStencilRanks {
			return wb.CheckResult{}, fmt.Errorf("labs: mpi-stencil needs %d GPUs, worker has %d",
				mpiStencilRanks, len(rc.Devices))
		}
		in, err := loadVectorInput(rc, "input0.raw")
		if err != nil {
			return wb.CheckResult{}, err
		}
		n := len(in)
		if n%mpiStencilRanks != 0 {
			return wb.CheckResult{}, fmt.Errorf("labs: input length %d not divisible by %d ranks",
				n, mpiStencilRanks)
		}
		local := n / mpiStencilRanks
		rc.Trace.Logf(wb.LevelTrace, "%d elements over %d ranks (%d each), %d iterations",
			n, mpiStencilRanks, local, mpiStencilIters)

		world, err := mpi.NewWorld(mpiStencilRanks)
		if err != nil {
			return wb.CheckResult{}, err
		}
		results := make([][]float32, mpiStencilRanks)
		err = world.Run(func(c *mpi.Comm) error {
			rank := c.Rank()
			dev := rc.Devices[rank]
			strip := make([]float32, local+2) // halo-padded
			copy(strip[1:local+1], in[rank*local:(rank+1)*local])
			inP, err := dev.MallocFloat32(local+2, strip)
			if err != nil {
				return err
			}
			outP, err := dev.Malloc((local + 2) * 4)
			if err != nil {
				return err
			}
			for it := 0; it < mpiStencilIters; it++ {
				// Halo exchange: even ranks send right first; odd ranks
				// receive first — a deadlock-free ordering.
				edge, err := dev.ReadFloat32(inP, local+2)
				if err != nil {
					return err
				}
				leftVal, rightVal := float32(0), float32(0)
				exchange := func() error {
					if rank%2 == 0 {
						if rank+1 < c.Size() {
							if err := c.SendFloat32s(rank+1, it, edge[local:local+1]); err != nil {
								return err
							}
							h, err := c.RecvFloat32s(rank+1, it)
							if err != nil {
								return err
							}
							rightVal = h[0]
						}
						if rank-1 >= 0 {
							if err := c.SendFloat32s(rank-1, it, edge[1:2]); err != nil {
								return err
							}
							h, err := c.RecvFloat32s(rank-1, it)
							if err != nil {
								return err
							}
							leftVal = h[0]
						}
					} else {
						if rank-1 >= 0 {
							h, err := c.RecvFloat32s(rank-1, it)
							if err != nil {
								return err
							}
							leftVal = h[0]
							if err := c.SendFloat32s(rank-1, it, edge[1:2]); err != nil {
								return err
							}
						}
						if rank+1 < c.Size() {
							h, err := c.RecvFloat32s(rank+1, it)
							if err != nil {
								return err
							}
							rightVal = h[0]
							if err := c.SendFloat32s(rank+1, it, edge[local:local+1]); err != nil {
								return err
							}
						}
					}
					return nil
				}
				if err := exchange(); err != nil {
					return err
				}
				if err := dev.MemcpyHtoD(inP, gpusim.Float32Bytes([]float32{leftVal})); err != nil {
					return err
				}
				if err := dev.MemcpyHtoD(inP.Offset((local+1)*4),
					gpusim.Float32Bytes([]float32{rightVal})); err != nil {
					return err
				}
				stats, err := rc.Program.Launch(dev, "stencilStrip",
					minicuda.LaunchOpts{Grid: gpusim.D1(ceilDiv(local, 64)),
						Block: gpusim.D1(64), MaxSteps: rc.MaxSteps},
					minicuda.FloatPtr(inP), minicuda.FloatPtr(outP), minicuda.Int(local))
				if stats != nil {
					rc.Trace.RecordSpan(wb.TimeCompute,
						fmt.Sprintf("rank %d iteration %d", rank, it), stats.SimTime)
				}
				if err != nil {
					return err
				}
				inP, outP = outP, inP
			}
			final, err := dev.ReadFloat32(inP, local+2)
			if err != nil {
				return err
			}
			results[rank] = final[1 : local+1]
			return nil
		})
		if err != nil {
			return wb.CheckResult{}, err
		}
		var got []float32
		for _, part := range results {
			got = append(got, part...)
		}
		want, err := expectedVector(rc)
		if err != nil {
			return wb.CheckResult{}, err
		}
		return wb.CompareFloats(got, want, wb.DefaultTolerance), nil
	},
})
