// Package devsession is WebGPU's live development loop: the session-scoped
// streaming compile+analysis service behind POST /api/v1/labs/{lab}/session.
// VSC-WebGPU had to screen-scrape the platform with Selenium because no
// programmatic incremental API existed; this package is the real thing.
//
// A session is one student editing one lab. The client pushes
// keystroke-debounced source drafts; each draft runs an incremental
// recompile plus kernelcheck analysis through the shared content-addressed
// program cache (unchanged source is a pure cache hit, and per-entry
// artifact reuse skips re-analysis), and the results stream back as typed
// events (compile, diagnostics, status) over a server-sent-event stream.
//
// The loop is built for a chatty many-small-requests workload the batch
// job pipeline cannot serve, so robustness is part of the design:
//
//   - Coalescing: drafts arriving faster than analysis are latest-wins.
//     A short server-side debounce window batches a keystroke burst into
//     one pickup, and a draft that arrives while an analysis is in flight
//     cancels the stale analysis.
//   - Rate limits: per-user and per-session token buckets bound how fast
//     any client can push drafts, independent of coalescing.
//   - Bounded registry: the manager holds at most MaxSessions sessions
//     (MaxPerUser per student) and evicts idle ones.
//   - Cancellation: a dropped event stream cancels the in-flight analysis
//     and drops the pending draft — no work runs for a client that left.
//
// Sessions emit devsession_* metrics and per-draft "draft" trace spans on
// the shared registries.
package devsession

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"webgpu/internal/metrics"
	"webgpu/internal/minicuda"
	"webgpu/internal/progcache"
	"webgpu/internal/trace"
)

// Errors.
var (
	// ErrSessionLimit means the deployment-wide session bound is reached.
	ErrSessionLimit = errors.New("devsession: too many live sessions, retry later")
	// ErrUserSessionLimit means this user already holds MaxPerUser sessions.
	ErrUserSessionLimit = errors.New("devsession: per-user session limit reached")
	// ErrRateLimited means a draft push exceeded the user or session budget.
	ErrRateLimited = errors.New("devsession: draft rate limit exceeded")
	// ErrShed means the platform is under overload and draft analyses are
	// being shed to protect submission capacity (ROADMAP item 5: drafts
	// shed before the worker pool sheds submissions).
	ErrShed = errors.New("devsession: draft analysis shed under overload")
	// ErrClosed means the session was closed or evicted.
	ErrClosed = errors.New("devsession: session closed")
)

// Defaults. Rate limits are tuned for a human typing with a client-side
// debounce (tens of drafts per second is already faster than any editor
// sends), and the registry bound is per process, not per course.
const (
	DefaultMaxSessions   = 1024
	DefaultMaxPerUser    = 4
	DefaultIdleTimeout   = 10 * time.Minute
	DefaultDebounce      = 20 * time.Millisecond
	DefaultEventBuffer   = 256
	DefaultDraftBurst    = 30
	DefaultDraftInterval = 50 * time.Millisecond // sustained 20 drafts/s

	// DefaultShedAt matches the overload controller's draft threshold:
	// drafts shed at 75% pressure, while submissions keep admitting.
	DefaultShedAt = 0.75
)

// Config wires a Manager's dependencies and tuning knobs.
type Config struct {
	// Cache is the content-addressed program cache drafts compile and
	// analyze through; nil creates a private one. Deployments pass the
	// cache their workers share so a draft a student later submits is
	// already warm.
	Cache *progcache.Cache
	// Metrics receives devsession_* counters and histograms (nil: private).
	Metrics *metrics.Registry
	// Traces records one trace per analyzed draft (nil: private ring).
	Traces *trace.Store
	// Clock is the time source for rate limits and idle eviction (tests).
	Clock func() time.Time

	// MaxSessions bounds the registry deployment-wide; MaxPerUser bounds
	// one student's sessions. Zero means the default; negative disables.
	MaxSessions int
	MaxPerUser  int
	// IdleTimeout evicts sessions with no drafts and no subscribers.
	IdleTimeout time.Duration
	// Debounce is the server-side window a draft pickup waits, so a
	// keystroke burst coalesces into one analysis. Negative disables.
	Debounce time.Duration
	// EventBuffer is the per-session ring (and per-subscriber channel)
	// depth backing Last-Event-ID resume.
	EventBuffer int
	// DraftBurst/DraftInterval shape the per-user and per-session token
	// buckets: a bucket holds DraftBurst tokens and refills one every
	// DraftInterval. Zero means the default; negative disables rate
	// limiting.
	DraftBurst    int
	DraftInterval time.Duration

	// Pressure reports system pressure in [0, ∞) (the overload
	// controller's figure: broker backlog, submission queue fill). When
	// set, draft pushes at or above ShedAt are shed with ErrShed before
	// any bucket is charged — the live loop yields compute to graded
	// submissions under overload. Nil disables pressure shedding.
	Pressure func() float64
	// ShedAt is the pressure threshold for draft shedding; zero with a
	// non-nil Pressure selects DefaultShedAt.
	ShedAt float64
}

func (c Config) withDefaults() Config {
	if c.Cache == nil {
		c.Cache = progcache.New(progcache.DefaultCapacity, nil)
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Traces == nil {
		c.Traces = trace.NewStore(0)
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxPerUser == 0 {
		c.MaxPerUser = DefaultMaxPerUser
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.Debounce == 0 {
		c.Debounce = DefaultDebounce
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = DefaultEventBuffer
	}
	if c.DraftBurst <= 0 {
		c.DraftBurst = DefaultDraftBurst
	}
	if c.DraftInterval == 0 {
		c.DraftInterval = DefaultDraftInterval
	}
	if c.Pressure != nil && c.ShedAt <= 0 {
		c.ShedAt = DefaultShedAt
	}
	return c
}

// Manager is the bounded registry of live development sessions.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	perUser  map[string]int
	buckets  map[string]*bucket // per-user draft budgets
	closed   bool
}

// NewManager builds a manager from the config (zero fields take defaults).
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		sessions: map[string]*Session{},
		perUser:  map[string]int{},
		buckets:  map[string]*bucket{},
	}
	// Register the series at zero so dashboards scraping a fresh server
	// see the whole devsession_* set, not counters popping in on first use.
	for _, name := range []string{
		"devsession_opened", "devsession_closed", "devsession_evicted",
		"devsession_drafts", "devsession_draft_coalesced",
		"devsession_draft_cancelled", "devsession_rate_limited",
		"devsession_draft_shed",
		"kernelcheck_incremental_runs", "kernelcheck_incremental_analyzed",
		"kernelcheck_incremental_reused",
	} {
		m.cfg.Metrics.Inc(name, 0)
	}
	m.cfg.Metrics.Set("devsession_active", 0)
	return m
}

// Open creates a session for (userID, labID), evicting idle sessions
// first. The returned session is live: its draft loop is running.
func (m *Manager) Open(userID, labID string, dialect minicuda.Dialect) (*Session, error) {
	now := m.cfg.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.sweepLocked(now)
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		return nil, ErrSessionLimit
	}
	if m.cfg.MaxPerUser > 0 && m.perUser[userID] >= m.cfg.MaxPerUser {
		return nil, ErrUserSessionLimit
	}
	s := newSession(m, newSessionID(), userID, labID, dialect, now)
	m.sessions[s.ID] = s
	m.perUser[userID]++
	m.cfg.Metrics.Inc("devsession_opened", 1)
	m.cfg.Metrics.Set("devsession_active", float64(len(m.sessions)))
	go s.loop()
	s.emit(EventStatus, StatusPayload{State: "open"})
	return s, nil
}

// Get returns the session with the given ID, or nil.
func (m *Manager) Get(id string) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessions[id]
}

// Active reports the number of live sessions.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Close closes one session by ID (no-op on unknown IDs).
func (m *Manager) Close(id string) {
	m.mu.Lock()
	s := m.sessions[id]
	if s != nil {
		m.dropLocked(s, "closed")
	}
	m.mu.Unlock()
	if s != nil {
		s.close("closed")
	}
}

// CloseAll closes every session and refuses new ones (shutdown).
func (m *Manager) CloseAll() {
	m.mu.Lock()
	m.closed = true
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
		m.dropLocked(s, "closed")
	}
	m.mu.Unlock()
	for _, s := range all {
		s.close("closed")
	}
}

// Sweep evicts idle sessions now (also runs on every Open).
func (m *Manager) Sweep() {
	now := m.cfg.Clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(now)
}

// sweepLocked evicts sessions idle past the timeout with no subscribers.
func (m *Manager) sweepLocked(now time.Time) {
	if m.cfg.IdleTimeout <= 0 {
		return
	}
	for _, s := range m.sessions {
		if s.idleSince(now) > m.cfg.IdleTimeout {
			m.dropLocked(s, "evicted")
			// close must not run under m.mu (it takes s.mu and closes
			// subscriber channels); an evicted session has none anyway.
			go s.close("evicted")
		}
	}
}

// dropLocked removes a session from the registry and updates the gauges.
// Callers still close the session outside the lock.
func (m *Manager) dropLocked(s *Session, reason string) {
	if _, ok := m.sessions[s.ID]; !ok {
		return
	}
	delete(m.sessions, s.ID)
	if m.perUser[s.UserID]--; m.perUser[s.UserID] <= 0 {
		delete(m.perUser, s.UserID)
	}
	if reason == "evicted" {
		m.cfg.Metrics.Inc("devsession_evicted", 1)
	}
	m.cfg.Metrics.Inc("devsession_closed", 1)
	m.cfg.Metrics.Set("devsession_active", float64(len(m.sessions)))
}

// allowUser charges one draft against the user's token bucket.
func (m *Manager) allowUser(userID string, now time.Time) bool {
	if m.cfg.DraftInterval <= 0 {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.buckets[userID]
	if b == nil {
		b = newBucket(m.cfg.DraftBurst, m.cfg.DraftInterval, now)
		m.buckets[userID] = b
	}
	return b.allow(now)
}

// shedDraft reports whether draft analyses are currently shed: system
// pressure at or above the threshold. Checked before any bucket is
// charged, so a shed push costs the student no draft budget.
func (m *Manager) shedDraft() bool {
	return m.cfg.Pressure != nil && m.cfg.Pressure() >= m.cfg.ShedAt
}

func (m *Manager) now() time.Time { return m.cfg.Clock() }

// bucket is a deterministic token bucket driven by the manager's clock.
type bucket struct {
	tokens   float64
	burst    float64
	interval time.Duration // time to refill one token
	last     time.Time
}

func newBucket(burst int, interval time.Duration, now time.Time) *bucket {
	return &bucket{tokens: float64(burst), burst: float64(burst), interval: interval, last: now}
}

func (b *bucket) allow(now time.Time) bool {
	if b.interval <= 0 {
		return true
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += float64(dt) / float64(b.interval)
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func newSessionID() string {
	buf := make([]byte, 8)
	if _, err := rand.Read(buf); err != nil {
		panic(err)
	}
	return "ds-" + hex.EncodeToString(buf)
}
