package devsession

import "testing"

// BenchmarkWarmDraftCheck measures one warm incremental draft check: the
// student re-pushes source already in the program cache, and the loop
// serves compile + diagnostics as pure cache hits. This is the steady-state
// cost of the live development loop (and the benchgate-guarded budget
// backing TestWarmIncrementalLatencyBudget).
func BenchmarkWarmDraftCheck(b *testing.B) {
	l := refLab(b)
	m := NewManager(Config{Debounce: -1, DraftInterval: -1})
	defer m.CloseAll()
	s, err := m.Open("bench", l.ID, l.Dialect)
	if err != nil {
		b.Fatal(err)
	}
	_, ch, unsub, err := s.Subscribe(0)
	if err != nil {
		b.Fatal(err)
	}
	defer unsub()

	await := func(draft int64) {
		for ev := range ch {
			if dp, ok := ev.Data.(DiagnosticsPayload); ok && dp.Draft == draft {
				return
			}
		}
		b.Fatal("event channel closed")
	}

	// Warm the cache: the first draft compiles and analyzes for real.
	seq, _, err := s.PushDraft(l.Reference)
	if err != nil {
		b.Fatal(err)
	}
	await(seq)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq, _, err := s.PushDraft(l.Reference)
		if err != nil {
			b.Fatal(err)
		}
		await(seq)
	}
}
