package devsession

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"webgpu/internal/labs"
	"webgpu/internal/metrics"
	"webgpu/internal/minicuda"
	"webgpu/internal/progcache"
)

func refLab(t testing.TB) *labs.Lab {
	t.Helper()
	l := labs.ByID("vector-add")
	if l == nil {
		t.Fatal("vector-add lab missing")
	}
	return l
}

// waitFor reads events until the predicate matches (5s budget).
func waitFor(t testing.TB, ch <-chan Event, what string, want func(Event) bool) Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("event channel closed waiting for %s", what)
			}
			if want(ev) {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

// poll spins until cond holds (5s budget).
func poll(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out polling for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDraftFlowCompileThenDiagnostics(t *testing.T) {
	l := refLab(t)
	m := NewManager(Config{Debounce: -1, DraftInterval: -1})
	defer m.CloseAll()
	s, err := m.Open("u1", l.ID, l.Dialect)
	if err != nil {
		t.Fatal(err)
	}
	replay, ch, unsub, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	if len(replay) != 1 || replay[0].Type != EventStatus {
		t.Fatalf("replay = %+v, want the open status event", replay)
	}

	seq, coalesced, err := s.PushDraft(l.Reference)
	if err != nil || coalesced {
		t.Fatalf("PushDraft = %d, %v, %v", seq, coalesced, err)
	}
	ev := waitFor(t, ch, "compile event", func(e Event) bool { return e.Type == EventCompile })
	cp := ev.Data.(CompilePayload)
	if cp.Draft != seq || !cp.OK || cp.Error != "" {
		t.Fatalf("compile payload = %+v", cp)
	}
	dv := waitFor(t, ch, "diagnostics event", func(e Event) bool { return e.Type == EventDiagnostics })
	dp := dv.Data.(DiagnosticsPayload)
	if dp.Draft != seq || dp.Diagnostics == nil {
		t.Fatalf("diagnostics payload = %+v", dp)
	}
	if dv.Seq <= ev.Seq {
		t.Fatalf("diagnostics seq %d not after compile seq %d", dv.Seq, ev.Seq)
	}
}

func TestDraftCompileErrorEmitted(t *testing.T) {
	l := refLab(t)
	m := NewManager(Config{Debounce: -1, DraftInterval: -1})
	defer m.CloseAll()
	s, _ := m.Open("u1", l.ID, l.Dialect)
	_, ch, unsub, _ := s.Subscribe(0)
	defer unsub()
	seq, _, err := s.PushDraft("__global__ void broken( {")
	if err != nil {
		t.Fatal(err)
	}
	ev := waitFor(t, ch, "compile event", func(e Event) bool { return e.Type == EventCompile })
	cp := ev.Data.(CompilePayload)
	if cp.Draft != seq || cp.OK || cp.Error == "" {
		t.Fatalf("compile payload = %+v, want a compile error", cp)
	}
}

// TestCoalescingLatestWins is the core coalescing contract: a burst of
// drafts landing inside the debounce window produces exactly one analysis,
// of the newest source.
func TestCoalescingLatestWins(t *testing.T) {
	l := refLab(t)
	var mu sync.Mutex
	var compiled []string
	cache := progcache.New(16, nil)
	cache.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		mu.Lock()
		compiled = append(compiled, src)
		mu.Unlock()
		return minicuda.Compile(src, d)
	})
	reg := metrics.NewRegistry()
	m := NewManager(Config{Cache: cache, Metrics: reg, Debounce: 150 * time.Millisecond, DraftInterval: -1})
	defer m.CloseAll()
	s, _ := m.Open("u1", l.ID, l.Dialect)
	_, ch, unsub, _ := s.Subscribe(0)
	defer unsub()

	const n = 5
	var lastSeq int64
	var lastSrc string
	for i := 0; i < n; i++ {
		src := l.Reference + strings.Repeat("\n", i)
		seq, coalesced, err := s.PushDraft(src)
		if err != nil {
			t.Fatal(err)
		}
		if wantCo := i > 0; coalesced != wantCo {
			t.Fatalf("push %d coalesced = %v, want %v", i, coalesced, wantCo)
		}
		lastSeq, lastSrc = seq, src
	}

	ev := waitFor(t, ch, "compile event", func(e Event) bool { return e.Type == EventCompile })
	cp := ev.Data.(CompilePayload)
	if cp.Draft != lastSeq {
		t.Fatalf("analyzed draft %d, want the latest (%d)", cp.Draft, lastSeq)
	}
	waitFor(t, ch, "diagnostics event", func(e Event) bool { return e.Type == EventDiagnostics })

	mu.Lock()
	got := append([]string(nil), compiled...)
	mu.Unlock()
	if len(got) != 1 || got[0] != lastSrc {
		t.Fatalf("compiled %d sources, want only the latest once", len(got))
	}
	if c := reg.Counter("devsession_draft_coalesced"); c != n-1 {
		t.Fatalf("devsession_draft_coalesced = %v, want %d", c, n-1)
	}
	if c := reg.Counter("devsession_drafts"); c != n {
		t.Fatalf("devsession_drafts = %v, want %d", c, n)
	}
}

// TestUnsubscribeCancelsInflight: dropping the last subscriber cancels the
// analysis running on its behalf.
func TestUnsubscribeCancelsInflight(t *testing.T) {
	l := refLab(t)
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	cache := progcache.New(16, nil)
	cache.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		started <- struct{}{}
		<-release
		return minicuda.Compile(src, d)
	})
	defer close(release)
	reg := metrics.NewRegistry()
	m := NewManager(Config{Cache: cache, Metrics: reg, Debounce: -1, DraftInterval: -1})
	defer m.CloseAll()
	s, _ := m.Open("u1", l.ID, l.Dialect)
	_, _, unsub, _ := s.Subscribe(0)

	if _, _, err := s.PushDraft(l.Reference); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("compile never started")
	}
	unsub() // last subscriber leaves mid-analysis

	poll(t, "cancelled-draft counter", func() bool {
		return reg.Counter("devsession_draft_cancelled") >= 1
	})
	poll(t, "cancelled status event", func() bool {
		for _, ev := range s.History(0) {
			if sp, ok := ev.Data.(StatusPayload); ok && sp.State == "cancelled" {
				return true
			}
		}
		return false
	})
}

// TestStaleInflightCancelledByNewerDraft: a draft pushed while an analysis
// is running cancels that stale analysis; the newer draft still completes.
func TestStaleInflightCancelledByNewerDraft(t *testing.T) {
	l := refLab(t)
	started := make(chan struct{}, 4)
	gate := make(chan struct{}, 4)
	var calls int
	var mu sync.Mutex
	cache := progcache.New(16, nil)
	cache.SetCompileFunc(func(src string, d minicuda.Dialect) (*minicuda.Program, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			started <- struct{}{}
			<-gate // hold only the first compile
		}
		return minicuda.Compile(src, d)
	})
	reg := metrics.NewRegistry()
	m := NewManager(Config{Cache: cache, Metrics: reg, Debounce: -1, DraftInterval: -1})
	defer m.CloseAll()
	s, _ := m.Open("u1", l.ID, l.Dialect)
	_, ch, unsub, _ := s.Subscribe(0)
	defer unsub()

	if _, _, err := s.PushDraft(l.Reference); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first compile never started")
	}
	seq2, _, err := s.PushDraft(l.Reference + "\n")
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // let the (now stale) first compile finish

	ev := waitFor(t, ch, "second draft's compile", func(e Event) bool {
		cp, ok := e.Data.(CompilePayload)
		return ok && cp.Draft == seq2
	})
	if cp := ev.Data.(CompilePayload); !cp.OK {
		t.Fatalf("second draft failed: %+v", cp)
	}
	if c := reg.Counter("devsession_draft_cancelled"); c != 1 {
		t.Fatalf("devsession_draft_cancelled = %v, want 1", c)
	}
}

func TestSubscribeReplayAfterSeq(t *testing.T) {
	l := refLab(t)
	m := NewManager(Config{Debounce: -1, DraftInterval: -1})
	defer m.CloseAll()
	s, _ := m.Open("u1", l.ID, l.Dialect)

	if _, _, err := s.PushDraft(l.Reference); err != nil {
		t.Fatal(err)
	}
	// open status + compile + diagnostics
	poll(t, "three buffered events", func() bool { return len(s.History(0)) >= 3 })

	replay, _, unsub, err := s.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	if len(replay) < 2 {
		t.Fatalf("replay after seq 1 has %d events, want >= 2", len(replay))
	}
	for _, ev := range replay {
		if ev.Seq <= 1 {
			t.Fatalf("replay contains seq %d <= afterSeq 1", ev.Seq)
		}
	}
	if replay[0].Type != EventCompile || replay[1].Type != EventDiagnostics {
		t.Fatalf("replay order = %s, %s", replay[0].Type, replay[1].Type)
	}
}

func TestSessionLimits(t *testing.T) {
	l := refLab(t)
	m := NewManager(Config{MaxSessions: 2, MaxPerUser: 1, Debounce: -1})
	defer m.CloseAll()
	if _, err := m.Open("u1", l.ID, l.Dialect); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("u1", l.ID, l.Dialect); !errors.Is(err, ErrUserSessionLimit) {
		t.Fatalf("second u1 session err = %v, want ErrUserSessionLimit", err)
	}
	if _, err := m.Open("u2", l.ID, l.Dialect); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("u3", l.ID, l.Dialect); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("third session err = %v, want ErrSessionLimit", err)
	}
	if m.Active() != 2 {
		t.Fatalf("Active = %d, want 2", m.Active())
	}
}

func TestDraftRateLimit(t *testing.T) {
	l := refLab(t)
	now := time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	reg := metrics.NewRegistry()
	m := NewManager(Config{
		Clock: clock, Metrics: reg,
		DraftBurst: 2, DraftInterval: 100 * time.Millisecond, Debounce: -1,
	})
	defer m.CloseAll()
	s, _ := m.Open("u1", l.ID, l.Dialect)

	for i := 0; i < 2; i++ {
		if _, _, err := s.PushDraft(l.Reference); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if _, _, err := s.PushDraft(l.Reference); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst-exhausted push err = %v, want ErrRateLimited", err)
	}
	if c := reg.Counter("devsession_rate_limited"); c != 1 {
		t.Fatalf("devsession_rate_limited = %v, want 1", c)
	}

	mu.Lock()
	now = now.Add(time.Second) // refills both buckets
	mu.Unlock()
	if _, _, err := s.PushDraft(l.Reference); err != nil {
		t.Fatalf("post-refill push: %v", err)
	}
}

func TestIdleEviction(t *testing.T) {
	l := refLab(t)
	now := time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	reg := metrics.NewRegistry()
	m := NewManager(Config{Clock: clock, Metrics: reg, IdleTimeout: time.Minute, Debounce: -1, DraftInterval: -1})
	defer m.CloseAll()
	s, _ := m.Open("u1", l.ID, l.Dialect)

	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	m.Sweep()
	if m.Get(s.ID) != nil || m.Active() != 0 {
		t.Fatalf("session survived the sweep")
	}
	poll(t, "evicted session to reject drafts", func() bool {
		_, _, err := s.PushDraft(l.Reference)
		return errors.Is(err, ErrClosed)
	})
	if c := reg.Counter("devsession_evicted"); c != 1 {
		t.Fatalf("devsession_evicted = %v, want 1", c)
	}
	// Eviction freed the per-user slot.
	if _, err := m.Open("u1", l.ID, l.Dialect); err != nil {
		t.Fatalf("reopen after eviction: %v", err)
	}
}

func TestSubscriberKeepsSessionAlive(t *testing.T) {
	l := refLab(t)
	now := time.Date(2015, 2, 8, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	m := NewManager(Config{Clock: clock, IdleTimeout: time.Minute, Debounce: -1, DraftInterval: -1})
	defer m.CloseAll()
	s, _ := m.Open("u1", l.ID, l.Dialect)
	_, _, unsub, _ := s.Subscribe(0)
	defer unsub()

	mu.Lock()
	now = now.Add(time.Hour)
	mu.Unlock()
	m.Sweep()
	if m.Get(s.ID) == nil {
		t.Fatal("session with a live subscriber was evicted")
	}
}

func TestCloseAll(t *testing.T) {
	l := refLab(t)
	m := NewManager(Config{Debounce: -1, DraftInterval: -1})
	s, _ := m.Open("u1", l.ID, l.Dialect)
	m.CloseAll()
	if _, err := m.Open("u2", l.ID, l.Dialect); !errors.Is(err, ErrClosed) {
		t.Fatalf("Open after CloseAll err = %v, want ErrClosed", err)
	}
	if _, _, err := s.PushDraft(l.Reference); !errors.Is(err, ErrClosed) {
		t.Fatalf("PushDraft after CloseAll err = %v, want ErrClosed", err)
	}
	if _, _, _, err := s.Subscribe(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after CloseAll err = %v, want ErrClosed", err)
	}
}

// TestSlowSubscriberKicked: a subscriber that stops reading is kicked
// (channel closed) instead of blocking the analysis loop; the ring still
// holds the events for a Last-Event-ID resume.
func TestSlowSubscriberKicked(t *testing.T) {
	l := refLab(t)
	m := NewManager(Config{EventBuffer: 2, Debounce: -1, DraftInterval: -1})
	defer m.CloseAll()
	s, _ := m.Open("u1", l.ID, l.Dialect)
	_, ch, unsub, _ := s.Subscribe(0)
	defer unsub()

	// Never read ch: each draft emits 2 events into a 2-slot channel.
	for i := 0; i < 4; i++ {
		if _, _, err := s.PushDraft(l.Reference + strings.Repeat("\n", i)); err != nil {
			t.Fatal(err)
		}
		poll(t, "draft analyzed", func() bool {
			evs := s.History(0)
			for _, ev := range evs {
				if dp, ok := ev.Data.(DiagnosticsPayload); ok && dp.Draft == int64(i+1) {
					return true
				}
			}
			return false
		})
	}
	poll(t, "slow subscriber kicked", func() bool {
		select {
		case _, open := <-ch:
			return !open
		default:
			return false
		}
	})
	if s.Subscribers() != 0 {
		t.Fatalf("Subscribers = %d, want 0 after kick", s.Subscribers())
	}
}

// TestDevSessionSoak hammers the manager with concurrent sessions each
// pushing draft bursts while a reader drains events — the -race soak the
// CI matrix runs. Every session must end with its final draft analyzed.
func TestDevSessionSoak(t *testing.T) {
	l := refLab(t)
	m := NewManager(Config{DraftInterval: -1}) // default 20ms debounce
	defer m.CloseAll()

	const (
		sessions = 6
		drafts   = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", i)
			s, err := m.Open(user, l.ID, l.Dialect)
			if err != nil {
				errs <- err
				return
			}
			_, ch, unsub, err := s.Subscribe(0)
			if err != nil {
				errs <- err
				return
			}
			defer unsub()

			var last int64
			for d := 0; d < drafts; d++ {
				src := l.Reference + strings.Repeat("\n", d%4)
				seq, _, err := s.PushDraft(src)
				if err != nil {
					errs <- err
					return
				}
				last = seq
				time.Sleep(time.Millisecond)
			}
			// The final draft is never replaced, so it must be analyzed.
			deadline := time.After(10 * time.Second)
			for {
				select {
				case ev, open := <-ch:
					if !open {
						errs <- fmt.Errorf("session %s: channel closed early", s.ID)
						return
					}
					if cp, ok := ev.Data.(CompilePayload); ok && cp.Draft == last {
						return
					}
				case <-deadline:
					errs <- fmt.Errorf("session %s: final draft never analyzed", s.ID)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestIncrementalWorkSplit drives one session through an edit cycle and
// checks the diagnostics events report the incremental engine's work
// split: cold draft analyzes everything, a one-function edit re-analyzes
// only that function, and a revert to an already-analyzed source is
// served whole from the shared cache.
func TestIncrementalWorkSplit(t *testing.T) {
	const srcA = `__global__ void kA(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i] * 2.0f;
  }
}

__global__ void kB(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = in[i] + 1.0f;
  }
}
`
	srcB := strings.Replace(srcA, "in[i] + 1.0f", "in[i] + 3.0f", 1)

	reg := metrics.NewRegistry()
	m := NewManager(Config{Debounce: -1, DraftInterval: -1, Metrics: reg})
	defer m.CloseAll()
	if got := reg.Counter("kernelcheck_incremental_runs"); got != 0 {
		t.Fatalf("kernelcheck_incremental_runs pre-registered at %v, want 0", got)
	}
	s, err := m.Open("u1", "lab", minicuda.DialectCUDA)
	if err != nil {
		t.Fatal(err)
	}
	_, ch, unsub, err := s.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()

	push := func(src string) DiagnosticsPayload {
		t.Helper()
		seq, _, err := s.PushDraft(src)
		if err != nil {
			t.Fatal(err)
		}
		ev := waitFor(t, ch, "diagnostics event", func(e Event) bool {
			dp, ok := e.Data.(DiagnosticsPayload)
			return ok && dp.Draft == seq
		})
		return ev.Data.(DiagnosticsPayload)
	}

	if dp := push(srcA); dp.Analyzed != 2 || dp.Reused != 0 {
		t.Fatalf("cold draft: analyzed=%d reused=%d, want 2/0", dp.Analyzed, dp.Reused)
	}
	if dp := push(srcB); dp.Analyzed != 1 || dp.Reused != 1 {
		t.Fatalf("one-function edit: analyzed=%d reused=%d, want 1/1", dp.Analyzed, dp.Reused)
	}
	// Revert: srcA's entry already carries diagnostics in the shared
	// cache, so the draft is served without touching the engine.
	if dp := push(srcA); dp.Analyzed != 0 || dp.Reused != 2 {
		t.Fatalf("revert: analyzed=%d reused=%d, want 0/2", dp.Analyzed, dp.Reused)
	}

	if got := reg.Counter("kernelcheck_incremental_runs"); got != 3 {
		t.Errorf("kernelcheck_incremental_runs = %v, want 3", got)
	}
	if got := reg.Counter("kernelcheck_incremental_analyzed"); got != 3 {
		t.Errorf("kernelcheck_incremental_analyzed = %v, want 3", got)
	}
	if got := reg.Counter("kernelcheck_incremental_reused"); got != 3 {
		t.Errorf("kernelcheck_incremental_reused = %v, want 3", got)
	}
}
