package devsession

import (
	"context"
	"strconv"
	"sync"
	"time"

	"webgpu/internal/kernelcheck"
	"webgpu/internal/minicuda"
	"webgpu/internal/progcache"
)

// Event types, in the order a draft normally produces them.
const (
	EventStatus      = "status"      // lifecycle: open, cancelled, closed, evicted
	EventCompile     = "compile"     // one draft's compile verdict
	EventDiagnostics = "diagnostics" // one draft's kernelcheck findings
)

// Event is one typed message on a session's stream. Seq is the stream
// position SSE clients echo back as Last-Event-ID to resume.
type Event struct {
	Seq  int64       `json:"seq"`
	Type string      `json:"type"`
	At   time.Time   `json:"at"`
	Data interface{} `json:"data"`
}

// CompilePayload is the data of a "compile" event.
type CompilePayload struct {
	Draft     int64   `json:"draft"`
	Cache     string  `json:"cache"` // hit | miss | coalesced
	OK        bool    `json:"ok"`
	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// DiagnosticsPayload is the data of a "diagnostics" event. Diagnostics is
// never null so clients can always range over it. Analyzed and Reused
// report the incremental engine's work split for this draft: how many
// functions were re-analyzed versus spliced from the per-session cache
// (a draft served whole from the shared program cache reports every
// function as reused).
type DiagnosticsPayload struct {
	Draft       int64                    `json:"draft"`
	Diagnostics []kernelcheck.Diagnostic `json:"diagnostics"`
	Analyzed    int                      `json:"analyzed"`
	Reused      int                      `json:"reused"`
	ElapsedMS   float64                  `json:"elapsed_ms"`
}

// StatusPayload is the data of a "status" event.
type StatusPayload struct {
	State  string `json:"state"`
	Draft  int64  `json:"draft,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// draft is one pushed source revision waiting for (or under) analysis.
type draft struct {
	seq      int64
	source   string
	queuedAt time.Time
}

// Session is one student's live editing loop on one lab.
type Session struct {
	ID      string
	UserID  string
	LabID   string
	Dialect minicuda.Dialect

	m      *Manager
	ctx    context.Context // closed-session root; inflight ctxs derive from it
	cancel context.CancelFunc
	notify chan struct{} // draft-arrival signal, capacity 1
	inc    *kernelcheck.Incremental

	mu             sync.Mutex
	closed         bool
	seq            int64   // last event sequence number
	draftSeq       int64   // last draft number
	events         []Event // ring of the last EventBuffer events
	subs           map[int]chan Event
	nextSub        int
	latest         *draft // pending draft, replaced latest-wins
	inflightCancel context.CancelFunc
	lastActive     time.Time
	bucket         *bucket
}

func newSession(m *Manager, id, userID, labID string, dialect minicuda.Dialect, now time.Time) *Session {
	s := &Session{
		ID:         id,
		UserID:     userID,
		LabID:      labID,
		Dialect:    dialect,
		m:          m,
		notify:     make(chan struct{}, 1),
		inc:        kernelcheck.NewIncremental(),
		subs:       map[int]chan Event{},
		lastActive: now,
		bucket:     newBucket(m.cfg.DraftBurst, m.cfg.DraftInterval, now),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	return s
}

// PushDraft queues a source revision for analysis. Drafts are coalesced
// latest-wins: a push while another draft waits replaces it (coalesced =
// true), and a push while an analysis is in flight cancels that stale
// analysis. Returns the draft sequence number.
func (s *Session) PushDraft(source string) (seq int64, coalesced bool, err error) {
	now := s.m.now()
	if s.m.shedDraft() {
		// Overload: draft analyses yield to graded submissions. Shed
		// before charging any bucket, so retries after the spike still
		// have their full budget.
		s.m.cfg.Metrics.Inc("devsession_draft_shed", 1)
		return 0, false, ErrShed
	}
	if !s.m.allowUser(s.UserID, now) {
		s.m.cfg.Metrics.Inc("devsession_rate_limited", 1)
		return 0, false, ErrRateLimited
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, false, ErrClosed
	}
	if !s.bucket.allow(now) {
		s.mu.Unlock()
		s.m.cfg.Metrics.Inc("devsession_rate_limited", 1)
		return 0, false, ErrRateLimited
	}
	s.lastActive = now
	s.draftSeq++
	d := &draft{seq: s.draftSeq, source: source, queuedAt: now}
	coalesced = s.latest != nil
	s.latest = d
	stale := s.inflightCancel
	s.mu.Unlock()

	s.m.cfg.Metrics.Inc("devsession_drafts", 1)
	if coalesced {
		s.m.cfg.Metrics.Inc("devsession_draft_coalesced", 1)
	}
	if stale != nil {
		// Latest-draft-wins: the analysis running right now is for source
		// the student has already replaced.
		stale()
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return d.seq, coalesced, nil
}

// Subscribe attaches an event listener. Events already buffered with
// Seq > afterSeq are returned for replay (the Last-Event-ID contract);
// later events arrive on the channel, which closes when the session does
// or when the subscriber falls too far behind (reconnect to resume).
// The returned cancel is idempotent; dropping the last subscriber cancels
// any in-flight analysis and discards the pending draft.
func (s *Session) Subscribe(afterSeq int64) (replay []Event, ch <-chan Event, cancel func(), err error) {
	now := s.m.now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, nil, ErrClosed
	}
	s.lastActive = now
	id := s.nextSub
	s.nextSub++
	c := make(chan Event, s.m.cfg.EventBuffer)
	s.subs[id] = c
	for _, ev := range s.events {
		if ev.Seq > afterSeq {
			replay = append(replay, ev)
		}
	}
	s.mu.Unlock()

	cancel = func() {
		s.mu.Lock()
		cur, ok := s.subs[id]
		if ok {
			delete(s.subs, id)
		}
		s.lastActive = s.m.now()
		var stale context.CancelFunc
		if len(s.subs) == 0 && !s.closed {
			// Nobody is listening: stop the in-flight analysis and drop
			// the pending draft rather than burn compute for an empty room.
			stale = s.inflightCancel
			s.latest = nil
		}
		s.mu.Unlock()
		if ok {
			close(cur)
		}
		if stale != nil {
			stale()
		}
	}
	return replay, c, cancel, nil
}

// History returns the buffered events with Seq > afterSeq (newest last).
func (s *Session) History(afterSeq int64) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for _, ev := range s.events {
		if ev.Seq > afterSeq {
			out = append(out, ev)
		}
	}
	return out
}

// Subscribers reports the number of attached listeners.
func (s *Session) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// idleSince reports how long the session has been idle; a session with a
// live subscriber is never idle.
func (s *Session) idleSince(now time.Time) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.subs) > 0 {
		return 0
	}
	return now.Sub(s.lastActive)
}

// emit appends an event to the ring and fans it out. A subscriber whose
// channel is full is kicked (channel closed) — the SSE layer reconnects
// with Last-Event-ID and replays from the ring instead of blocking the
// analysis loop on a slow reader.
func (s *Session) emit(typ string, data interface{}) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.seq++
	ev := Event{Seq: s.seq, Type: typ, At: s.m.now(), Data: data}
	s.events = append(s.events, ev)
	if n := len(s.events) - s.m.cfg.EventBuffer; n > 0 {
		s.events = append(s.events[:0], s.events[n:]...)
	}
	var kicked []chan Event
	for id, c := range s.subs {
		select {
		case c <- ev:
		default:
			delete(s.subs, id)
			kicked = append(kicked, c)
		}
	}
	s.mu.Unlock()
	for _, c := range kicked {
		close(c)
	}
}

// close tears the session down: cancels the loop and any in-flight
// analysis, and closes every subscriber channel. Idempotent.
func (s *Session) close(reason string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	// Record the terminal event in the ring before flipping closed, so a
	// client that reconnects (to a dead session) at least sees why.
	s.seq++
	ev := Event{Seq: s.seq, Type: EventStatus, At: s.m.now(), Data: StatusPayload{State: reason}}
	s.events = append(s.events, ev)
	for id, c := range s.subs {
		select {
		case c <- ev:
		default:
		}
		delete(s.subs, id)
		defer close(c)
	}
	s.closed = true
	s.latest = nil
	s.mu.Unlock()
	s.cancel()
}

// loop is the per-session analysis worker: one draft signal → one
// debounce window → one latest-wins pickup. A draft pushed while an
// analysis runs re-arms notify (capacity 1), so the loop comes straight
// back around; every pickup passes through the debounce window, which is
// what turns a keystroke burst into a single analysis.
func (s *Session) loop() {
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.notify:
		}
		if d := s.m.cfg.Debounce; d > 0 {
			// Let the rest of a keystroke burst land; everything that
			// arrives in the window coalesces into one pickup.
			select {
			case <-s.ctx.Done():
				return
			case <-time.After(d):
			}
		}
		s.mu.Lock()
		d := s.latest
		s.latest = nil
		if d == nil {
			s.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(s.ctx)
		s.inflightCancel = cancel
		s.mu.Unlock()

		s.runDraft(ctx, d)

		s.mu.Lock()
		s.inflightCancel = nil
		s.mu.Unlock()
		cancel()
	}
}

// pipelineOut is what one draft's compile+analysis produces.
type pipelineOut struct {
	status   progcache.Status
	err      error
	diags    []kernelcheck.Diagnostic
	analyzed int
	reused   int
}

// runDraft runs one draft through the program cache: compile (content
// addressed, singleflighted) then kernelcheck through the session's
// incremental engine — only functions the student actually changed
// since the previous draft are re-analyzed, the rest splice from the
// per-session cache. A source the shared cache has already analyzed
// (a revert, or another student's identical draft) skips even that and
// reports every function reused; a fresh incremental result seeds the
// shared cache so a later submission of the same source is a pure hit
// (sound because the incremental output is byte-identical to a full
// run). The cache calls are not context-aware, so they run in a
// goroutine and the draft abandons the wait on cancellation — the
// compile keeps going and still warms the cache for the next draft or
// an eventual submission.
func (s *Session) runDraft(ctx context.Context, d *draft) {
	start := s.m.now()
	tr := s.m.cfg.Traces.NewTrace()
	sp := tr.StartSpan("draft",
		"session", s.ID, "lab", s.LabID, "draft", strconv.FormatInt(d.seq, 10))
	done := make(chan pipelineOut, 1)
	go func() {
		var out pipelineOut
		var prog *minicuda.Program
		prog, out.status, out.err = s.m.cfg.Cache.CompileStatus(d.source, s.Dialect)
		if out.err == nil {
			if diags, ok := s.m.cfg.Cache.CachedDiagnostics(d.source, s.Dialect); ok {
				out.diags = diags
				out.reused = len(prog.Funcs)
			} else {
				res := s.inc.Analyze(prog)
				out.diags = res.Diagnostics
				out.analyzed, out.reused = res.Analyzed, res.Reused
				s.m.cfg.Cache.PutDiagnostics(d.source, s.Dialect, res.Diagnostics)
			}
		}
		done <- out
	}()

	select {
	case <-ctx.Done():
		s.m.cfg.Metrics.Inc("devsession_draft_cancelled", 1)
		sp.EndAttrs("cancelled", "true")
		tr.Finish()
		s.emit(EventStatus, StatusPayload{State: "cancelled", Draft: d.seq})
		return
	case out := <-done:
		elapsed := s.m.now().Sub(start)
		ms := float64(elapsed) / float64(time.Millisecond)
		compile := CompilePayload{Draft: d.seq, Cache: out.status.String(), OK: out.err == nil, ElapsedMS: ms}
		if out.err != nil {
			compile.Error = out.err.Error()
		}
		s.emit(EventCompile, compile)
		if out.err == nil {
			diags := out.diags
			if diags == nil {
				diags = []kernelcheck.Diagnostic{}
			}
			s.emit(EventDiagnostics, DiagnosticsPayload{
				Draft:       d.seq,
				Diagnostics: diags,
				Analyzed:    out.analyzed,
				Reused:      out.reused,
				ElapsedMS:   float64(s.m.now().Sub(start)) / float64(time.Millisecond),
			})
			s.m.cfg.Metrics.Inc("kernelcheck_incremental_runs", 1)
			s.m.cfg.Metrics.Inc("kernelcheck_incremental_analyzed", float64(out.analyzed))
			s.m.cfg.Metrics.Inc("kernelcheck_incremental_reused", float64(out.reused))
		}
		s.m.cfg.Metrics.ObserveDuration("devsession_draft_ms", elapsed)
		if out.status == progcache.Hit {
			s.m.cfg.Metrics.ObserveDuration("devsession_draft_warm_ms", elapsed)
		}
		sp.EndAttrs("cache", out.status.String(), "diags", strconv.Itoa(len(out.diags)))
		tr.Finish()
	}
}
