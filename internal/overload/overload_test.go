package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"webgpu/internal/metrics"
)

// fakeClock is a mutex-guarded manual clock; every timing-sensitive test
// in this package advances it explicitly — no time.Sleep assertions.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBucketRefillDeterministic(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(3, time.Second, clk.Now())

	for i := 0; i < 3; i++ {
		if !b.allow(clk.Now()) {
			t.Fatalf("token %d: want allow within burst", i)
		}
	}
	if b.allow(clk.Now()) {
		t.Fatal("bucket dry: want deny")
	}
	if got := b.nextToken(clk.Now()); got != time.Second {
		t.Fatalf("nextToken = %v, want 1s", got)
	}

	clk.Advance(500 * time.Millisecond)
	if b.allow(clk.Now()) {
		t.Fatal("half a token refilled: want deny")
	}
	if got := b.nextToken(clk.Now()); got != 500*time.Millisecond {
		t.Fatalf("nextToken = %v, want 500ms", got)
	}

	clk.Advance(500 * time.Millisecond)
	if !b.allow(clk.Now()) {
		t.Fatal("one token refilled: want allow")
	}
	if b.allow(clk.Now()) {
		t.Fatal("token spent again: want deny")
	}

	// A long idle refills to burst, never beyond.
	clk.Advance(time.Hour)
	if !b.full(clk.Now()) {
		t.Fatal("want full after long idle")
	}
	for i := 0; i < 3; i++ {
		if !b.allow(clk.Now()) {
			t.Fatalf("token %d after refill-to-burst: want allow", i)
		}
	}
	if b.allow(clk.Now()) {
		t.Fatal("want capped at burst, got extra token")
	}
}

func TestTenantBucketShedAndRecovery(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Clock: clk.Now,
		Limits: map[Class]ClassLimit{
			ClassSubmission: {MaxConcurrent: 8, TenantBurst: 2, TenantInterval: time.Minute},
		},
	})

	for i := 0; i < 2; i++ {
		tk, err := c.Admit(context.Background(), ClassSubmission, "user:alice")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tk.Release()
	}
	_, err := c.Admit(context.Background(), ClassSubmission, "user:alice")
	if !errors.Is(err, ErrShed) {
		t.Fatalf("want shed after burst, got %v", err)
	}
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonRateLimited {
		t.Fatalf("want ReasonRateLimited shed, got %v", err)
	}
	if se.RetryAfter != time.Minute {
		t.Fatalf("RetryAfter = %v, want 1m (time to next token)", se.RetryAfter)
	}
	if got := RetryAfterSeconds(err); got != 60 {
		t.Fatalf("RetryAfterSeconds = %d, want 60", got)
	}

	// Another tenant has its own bucket.
	if tk, err := c.Admit(context.Background(), ClassSubmission, "user:bob"); err != nil {
		t.Fatalf("independent tenant: %v", err)
	} else {
		tk.Release()
	}

	// One interval refills one token for alice.
	clk.Advance(time.Minute)
	if tk, err := c.Admit(context.Background(), ClassSubmission, "user:alice"); err != nil {
		t.Fatalf("after refill: %v", err)
	} else {
		tk.Release()
	}
}

func TestShedBeforeQueueForLowClasses(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Clock: clk.Now,
		Limits: map[Class]ClassLimit{
			ClassRead: {MaxConcurrent: 2}, // MaxQueue 0: shed-before-queue
		},
	})

	t1, err := c.Admit(context.Background(), ClassRead)
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	t2, err := c.Admit(context.Background(), ClassRead)
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}

	// Saturated low class sheds synchronously — it must never block.
	_, err = c.Admit(context.Background(), ClassRead)
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonSaturated {
		t.Fatalf("want ReasonSaturated, got %v", err)
	}

	t1.Release()
	if tk, err := c.Admit(context.Background(), ClassRead); err != nil {
		t.Fatalf("after release: %v", err)
	} else {
		tk.Release()
	}
	t2.Release()
}

func TestSubmissionQueueGrantHandoff(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Clock: clk.Now,
		Limits: map[Class]ClassLimit{
			ClassSubmission: {MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: time.Minute},
		},
	})

	t1, err := c.Admit(context.Background(), ClassSubmission)
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}

	// Second submission queues; the grant arrives when t1 releases.
	type res struct {
		tk  *Ticket
		err error
	}
	done := make(chan res, 1)
	go func() {
		tk, err := c.Admit(context.Background(), ClassSubmission)
		done <- res{tk, err}
	}()

	// Wait for the waiter to be queued, then hand the slot over.
	waitFor(t, func() bool {
		g := c.gates[ClassSubmission]
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.waiters) == 1
	})
	t1.Release()

	r := <-done
	if r.err != nil {
		t.Fatalf("queued admit: %v", r.err)
	}
	g := c.gates[ClassSubmission]
	g.mu.Lock()
	inflight := g.inflight
	g.mu.Unlock()
	if inflight != 1 {
		t.Fatalf("inflight after handoff = %d, want 1 (slot transferred, not re-acquired)", inflight)
	}
	r.tk.Release()
	g.mu.Lock()
	inflight = g.inflight
	g.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("inflight after final release = %d, want 0", inflight)
	}
}

func TestQueueFullSheds(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Clock: clk.Now,
		Limits: map[Class]ClassLimit{
			ClassSubmission: {MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: time.Minute},
		},
	})
	tk, err := c.Admit(context.Background(), ClassSubmission)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, ClassSubmission)
		queued <- err
	}()
	waitFor(t, func() bool {
		g := c.gates[ClassSubmission]
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.waiters) == 1
	})

	// Queue is at MaxQueue: next submission sheds with queue_full.
	_, err = c.Admit(context.Background(), ClassSubmission)
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonQueueFull {
		t.Fatalf("want ReasonQueueFull, got %v", err)
	}

	// Cancelling the queued waiter sheds it with cancelled.
	cancel()
	if err := <-queued; !errors.As(err, &se) || se.Reason != ReasonCancelled {
		t.Fatalf("want ReasonCancelled, got %v", err)
	}
	g := c.gates[ClassSubmission]
	g.mu.Lock()
	nw := len(g.waiters)
	g.mu.Unlock()
	if nw != 0 {
		t.Fatalf("abandoned waiter still queued: %d", nw)
	}
}

func TestBackpressureShedsByClassThreshold(t *testing.T) {
	clk := newFakeClock()
	depth := 0
	c := New(Config{
		Clock:           clk.Now,
		QueueDepth:      func() int { return depth },
		QueueDepthLimit: 100,
	})

	// Pressure 0.6: reads (ShedAt 0.5) shed, drafts (0.75) and
	// submissions admit — the priority ordering in one number.
	depth = 60
	if p := c.Pressure(); p != 0.6 {
		t.Fatalf("Pressure = %v, want 0.6", p)
	}
	_, err := c.Admit(context.Background(), ClassRead)
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonBackpressure {
		t.Fatalf("read at 0.6: want backpressure shed, got %v", err)
	}
	if tk, err := c.Admit(context.Background(), ClassDraft); err != nil {
		t.Fatalf("draft at 0.6: %v", err)
	} else {
		tk.Release()
	}
	if tk, err := c.Admit(context.Background(), ClassSubmission); err != nil {
		t.Fatalf("submission at 0.6: %v", err)
	} else {
		tk.Release()
	}

	// Pressure 0.8: drafts shed too; submissions still admit.
	depth = 80
	if _, err := c.Admit(context.Background(), ClassDraft); !errors.Is(err, ErrShed) {
		t.Fatalf("draft at 0.8: want shed, got %v", err)
	}
	if tk, err := c.Admit(context.Background(), ClassSubmission); err != nil {
		t.Fatalf("submission at 0.8: %v", err)
	} else {
		tk.Release()
	}

	// Pressure recedes: everything admits again.
	depth = 10
	for _, cl := range Classes() {
		if tk, err := c.Admit(context.Background(), cl); err != nil {
			t.Fatalf("%s after recovery: %v", cl, err)
		} else {
			tk.Release()
		}
	}
}

func TestDraftLoadSignalFeedsPressure(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{Clock: clk.Now, DraftLoadLimit: 10})
	c.SetDraftLoad(func() int { return 8 })
	if p := c.Pressure(); p != 0.8 {
		t.Fatalf("Pressure = %v, want 0.8 from draft load", p)
	}
}

func TestBurnRateWindowsDeterministic(t *testing.T) {
	clk := newFakeClock()
	tr := newBurnTracker(SLOConfig{Target: 0.99, FastWindow: 5 * time.Minute, SlowWindow: time.Hour})

	// No traffic: no burn.
	if f, s := tr.burnRates(clk.Now()); f != 0 || s != 0 {
		t.Fatalf("idle burn = %v/%v, want 0/0", f, s)
	}

	// 10% sheds against a 1% budget: burn 10 in both windows.
	for i := 0; i < 100; i++ {
		tr.record(clk.Now(), i%10 != 0)
		clk.Advance(time.Second)
	}
	f, s := tr.burnRates(clk.Now())
	if f < 9.9 || f > 10.1 {
		t.Fatalf("fast burn = %v, want ~10", f)
	}
	if s < 9.9 || s > 10.1 {
		t.Fatalf("slow burn = %v, want ~10", s)
	}

	// Six minutes of silence: the 5m fast window has fully rolled off,
	// the 1h slow window still remembers the incident.
	clk.Advance(6 * time.Minute)
	f, s = tr.burnRates(clk.Now())
	if f != 0 {
		t.Fatalf("fast burn after window rolled off = %v, want 0", f)
	}
	if s < 9.9 || s > 10.1 {
		t.Fatalf("slow burn within window = %v, want ~10", s)
	}

	// After the slow window passes the incident is forgotten entirely.
	clk.Advance(time.Hour)
	if f, s := tr.burnRates(clk.Now()); f != 0 || s != 0 {
		t.Fatalf("burn after both windows = %v/%v, want 0/0", f, s)
	}
}

func TestBurnRateRecovery(t *testing.T) {
	clk := newFakeClock()
	tr := newBurnTracker(SLOConfig{Target: 0.9, FastWindow: time.Minute, SlowWindow: 10 * time.Minute})

	// All shed: burn = 1/(1-0.9) = 10.
	for i := 0; i < 30; i++ {
		tr.record(clk.Now(), false)
		clk.Advance(time.Second)
	}
	if f, _ := tr.burnRates(clk.Now()); f < 9.9 {
		t.Fatalf("fast burn under total shed = %v, want ~10", f)
	}

	// Healthy traffic dilutes the fast window back toward zero.
	for i := 0; i < 120; i++ {
		tr.record(clk.Now(), true)
		clk.Advance(time.Second)
	}
	f, s := tr.burnRates(clk.Now())
	if f != 0 {
		t.Fatalf("fast burn after a healthy minute = %v, want 0", f)
	}
	if s == 0 {
		t.Fatalf("slow burn should still remember the incident, got 0")
	}
}

func TestControllerCollectAndStatuses(t *testing.T) {
	clk := newFakeClock()
	reg := metrics.NewRegistry()
	c := New(Config{
		Clock:   clk.Now,
		Metrics: reg,
		Limits: map[Class]ClassLimit{
			ClassRead: {MaxConcurrent: 1},
		},
	})

	tk, err := c.Admit(context.Background(), ClassRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(context.Background(), ClassRead); !errors.Is(err, ErrShed) {
		t.Fatalf("want shed, got %v", err)
	}
	tk.Release()

	if got := reg.Counter("overload_admitted_read"); got != 1 {
		t.Fatalf("overload_admitted_read = %v, want 1", got)
	}
	if got := reg.Counter("overload_shed_read"); got != 1 {
		t.Fatalf("overload_shed_read = %v, want 1", got)
	}
	if got := reg.Counter("overload_shed_reason_saturated"); got != 1 {
		t.Fatalf("overload_shed_reason_saturated = %v, want 1", got)
	}

	c.Collect(reg)
	// 1 shed of 2 requests against a 5% read budget: burn = 0.5/0.05.
	if got := reg.Gauge("overload_burn_fast_read"); got < 9.99 || got > 10.01 {
		t.Fatalf("overload_burn_fast_read = %v, want ~10", got)
	}

	sts := c.SLOStatuses()
	if len(sts) != 3 {
		t.Fatalf("SLOStatuses len = %d, want 3", len(sts))
	}
	if sts[0].Name != "submission" || sts[1].Name != "draft" || sts[2].Name != "read" {
		t.Fatalf("SLOStatuses order = %s/%s/%s, want priority order",
			sts[0].Name, sts[1].Name, sts[2].Name)
	}
	if sts[2].Shed != 1 || sts[2].Admitted != 1 {
		t.Fatalf("read status = admitted %v shed %v, want 1/1", sts[2].Admitted, sts[2].Shed)
	}
}

func TestClassNoneAlwaysAdmits(t *testing.T) {
	c := New(Config{Clock: newFakeClock().Now})
	tk, err := c.Admit(context.Background(), ClassNone)
	if err != nil {
		t.Fatalf("ClassNone: %v", err)
	}
	tk.Release()
	tk.Release() // idempotent

	var nilCtrl *Controller
	if _, err := nilCtrl.Admit(context.Background(), ClassSubmission); err != nil {
		t.Fatalf("nil controller must admit: %v", err)
	}
}

func TestBucketSweepDropsIdleTenants(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Clock: clk.Now,
		Limits: map[Class]ClassLimit{
			ClassRead: {MaxConcurrent: 8, TenantBurst: 2, TenantInterval: time.Second},
		},
	})
	// Touch two tenants, drain one.
	for i := 0; i < 2; i++ {
		tk, _ := c.Admit(context.Background(), ClassRead, "user:drained")
		tk.Release()
	}
	tk, _ := c.Admit(context.Background(), ClassRead, "user:idle")
	tk.Release()

	// After refill both buckets are full and sweepable.
	clk.Advance(time.Minute)
	c.bkMu.Lock()
	c.sweepBucketsLocked(clk.Now())
	n := len(c.buckets)
	c.bkMu.Unlock()
	if n != 0 {
		t.Fatalf("sweep left %d full buckets, want 0", n)
	}
}

// waitFor polls a condition; it is used only to synchronize goroutine
// scheduling (queue membership), never to assert timing.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
