// Package overload is WebGPU's overload-survival layer: admission
// control with priority-class load-shedding at the web tier, per-tenant
// token-bucket rate limits, backpressure signals from the broker and the
// live-development loop, and burn-rate SLO tracking over the shared
// metrics registry.
//
// The paper's platform survived MOOC deadline spikes (>100k students per
// offering) by queueing everything; production scale means *graceful
// degradation* instead: when the system saturates, the requests that are
// cheapest to retry and least valuable to serve right now are rejected
// first, so the requests that matter — graded submissions — keep their
// latency bound. The priority order is
//
//	submissions > draft analyses > peer-review/history reads
//
// enforced three ways:
//
//   - Concurrency gates: each class holds at most MaxConcurrent requests
//     in flight. Submissions may additionally queue (bounded, with a
//     queue timeout); low classes are shed-before-queue — a saturated
//     class rejects immediately rather than building a latency bomb.
//   - Backpressure: the broker's job backlog, the live-session draft
//     load, and the submission queue's fill feed one pressure figure in
//     [0, ∞). Reads shed at lower pressure than drafts; submissions never
//     shed on pressure, only when their own bounded queue overflows.
//   - Per-tenant token buckets: a single user (or course) cannot consume
//     the whole admission budget during a spike. Buckets are driven by an
//     injectable clock, so tests are deterministic.
//
// Every decision is recorded: per-class admitted/shed counters, inflight
// and saturation gauges, queue-wait histograms, and fast/slow burn-rate
// windows against per-class availability SLOs — the signals the admin
// dashboard and /healthz surface.
package overload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"webgpu/internal/metrics"
)

// Class is a request priority class. Higher-value work has a lower shed
// priority: ClassSubmission is shed last, ClassRead first.
type Class int

// Priority classes, most to least important. ClassNone marks a route
// exempt from admission control.
const (
	ClassNone Class = iota
	ClassSubmission
	ClassDraft
	ClassRead
	numClasses
)

// String returns the class's metric/JSON name.
func (c Class) String() string {
	switch c {
	case ClassSubmission:
		return "submission"
	case ClassDraft:
		return "draft"
	case ClassRead:
		return "read"
	default:
		return "none"
	}
}

// Classes lists the admission-controlled classes in priority order.
func Classes() []Class { return []Class{ClassSubmission, ClassDraft, ClassRead} }

// Shed reasons, stable for metrics and error envelopes.
const (
	ReasonRateLimited  = "rate_limited" // a per-tenant token bucket ran dry
	ReasonBackpressure = "backpressure" // system pressure above the class threshold
	ReasonSaturated    = "saturated"    // class at MaxConcurrent, shed-before-queue
	ReasonQueueFull    = "queue_full"   // class queue already holds MaxQueue waiters
	ReasonQueueTimeout = "queue_timeout"
	ReasonCancelled    = "cancelled" // caller's context ended while queued
)

// ErrShed is the sentinel every shed decision wraps; callers detect a
// shed with errors.Is and read the details from the *ShedError.
var ErrShed = errors.New("overload: request shed")

// ShedError carries one shed decision: which class, why, and how long the
// client should wait before retrying (the Retry-After header).
type ShedError struct {
	Class      Class
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("overload: %s request shed (%s), retry in %s",
		e.Class, e.Reason, e.RetryAfter.Round(time.Second))
}

// Is reports ErrShed identity so errors.Is(err, ErrShed) works.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// RetryAfterSeconds extracts a Retry-After value (whole seconds, >= 1)
// from a shed error, or 0 when err is not a shed.
func RetryAfterSeconds(err error) int {
	var se *ShedError
	if !errors.As(err, &se) {
		return 0
	}
	s := int(math.Ceil(se.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// ClassLimit tunes one class's admission gates.
type ClassLimit struct {
	// MaxConcurrent bounds in-flight admitted requests. Zero selects the
	// class default; negative disables the concurrency gate.
	MaxConcurrent int

	// MaxQueue bounds how many callers may wait for a slot once the class
	// is at MaxConcurrent. Zero means shed-before-queue: a saturated
	// class rejects immediately (the right setting for sheddable classes,
	// where queueing only converts overload into latency).
	MaxQueue int

	// QueueTimeout bounds how long a queued caller waits before being
	// shed; zero selects DefaultQueueTimeout when MaxQueue > 0.
	QueueTimeout time.Duration

	// ShedAt is the pressure threshold at or above which the class sheds
	// on backpressure alone, before touching its gates. Zero disables
	// pressure shedding (submissions), so only explicit configuration
	// makes a class pressure-sheddable.
	ShedAt float64

	// TenantBurst/TenantInterval shape the per-tenant token buckets: a
	// bucket holds TenantBurst tokens and refills one every
	// TenantInterval. TenantBurst == 0 disables per-tenant limiting for
	// the class.
	TenantBurst    int
	TenantInterval time.Duration

	// RetryAfter is the hint returned on saturation/queue sheds; zero
	// selects a per-class default (longer for lower classes, so retries
	// re-arrive in priority order).
	RetryAfter time.Duration
}

// SLOConfig is one class's availability objective and burn windows.
type SLOConfig struct {
	// Target is the availability objective in (0, 1): the fraction of
	// requests that should be admitted, e.g. 0.999.
	Target float64
	// FastWindow and SlowWindow are the burn-rate windows (defaults 5m
	// and 1h). The fast window catches a sudden overload, the slow one a
	// smolder.
	FastWindow time.Duration
	SlowWindow time.Duration
}

// Defaults.
const (
	DefaultQueueTimeout    = 10 * time.Second
	DefaultQueueDepthLimit = 1024 // broker backlog at which pressure reads 1.0
	DefaultDraftLoadLimit  = 1024 // live sessions at which pressure reads 1.0
	DefaultFastWindow      = 5 * time.Minute
	DefaultSlowWindow      = time.Hour

	// DefaultReadShedAt / DefaultDraftShedAt order the degradation:
	// reads shed first, drafts second, submissions only when their own
	// bounded queue overflows.
	DefaultReadShedAt  = 0.5
	DefaultDraftShedAt = 0.75
)

// defaultLimit returns the built-in limit for a class. The bounds are
// deliberately generous: an unconfigured deployment should behave exactly
// as before except under genuine overload.
func defaultLimit(c Class) ClassLimit {
	switch c {
	case ClassSubmission:
		return ClassLimit{MaxConcurrent: 256, MaxQueue: 2048,
			QueueTimeout: DefaultQueueTimeout, RetryAfter: time.Second}
	case ClassDraft:
		return ClassLimit{MaxConcurrent: 128, MaxQueue: 0,
			ShedAt: DefaultDraftShedAt, RetryAfter: 2 * time.Second}
	default: // ClassRead
		return ClassLimit{MaxConcurrent: 256, MaxQueue: 0,
			ShedAt: DefaultReadShedAt, RetryAfter: 5 * time.Second}
	}
}

func defaultSLO(c Class) SLOConfig {
	switch c {
	case ClassSubmission:
		return SLOConfig{Target: 0.999, FastWindow: DefaultFastWindow, SlowWindow: DefaultSlowWindow}
	case ClassDraft:
		return SLOConfig{Target: 0.99, FastWindow: DefaultFastWindow, SlowWindow: DefaultSlowWindow}
	default:
		return SLOConfig{Target: 0.95, FastWindow: DefaultFastWindow, SlowWindow: DefaultSlowWindow}
	}
}

// Config wires a Controller.
type Config struct {
	// Clock is the time source for buckets and burn windows (tests
	// inject a fake); nil means time.Now.
	Clock func() time.Time
	// Metrics receives overload_* counters, gauges, and histograms;
	// nil creates a private registry.
	Metrics *metrics.Registry

	// Limits overrides per-class gates; classes absent from the map (or
	// with a zero MaxConcurrent) keep their defaults.
	Limits map[Class]ClassLimit
	// SLO overrides per-class objectives; absent classes keep defaults.
	SLO map[Class]SLOConfig

	// QueueDepth reports the broker's job backlog and DraftLoad the live
	// development sessions; both feed the pressure figure. Nil signals
	// contribute zero. Deployments wire them with SetQueueDepth /
	// SetDraftLoad after construction when the source outlives the
	// controller's build order.
	QueueDepth func() int
	DraftLoad  func() int
	// QueueDepthLimit / DraftLoadLimit normalize the signals: pressure
	// from each signal is value/limit. Zero selects the default.
	QueueDepthLimit int
	DraftLoadLimit  int
}

// Controller makes admission decisions. One controller guards one web
// tier; all methods are safe for concurrent use.
type Controller struct {
	clock   func() time.Time
	metrics *metrics.Registry

	queueDepthLimit int
	draftLoadLimit  int

	sigMu      sync.RWMutex
	queueDepth func() int
	draftLoad  func() int

	gates [numClasses]*gate
	slos  [numClasses]*burnTracker

	bkMu    sync.Mutex
	buckets map[bucketKey]*bucket
}

type bucketKey struct {
	class  Class
	tenant string
}

// maxTenantBuckets bounds the per-tenant bucket map; past it, fully
// refilled (idle) buckets are swept. A bucket at full burst is
// indistinguishable from a fresh one, so sweeping them is lossless.
const maxTenantBuckets = 16384

// New builds a controller. Zero-value Config fields take defaults; the
// result is usable immediately and pre-registers its metric series at
// zero so dashboards see the whole set from the first scrape.
func New(cfg Config) *Controller {
	c := &Controller{
		clock:           cfg.Clock,
		metrics:         cfg.Metrics,
		queueDepth:      cfg.QueueDepth,
		draftLoad:       cfg.DraftLoad,
		queueDepthLimit: cfg.QueueDepthLimit,
		draftLoadLimit:  cfg.DraftLoadLimit,
		buckets:         map[bucketKey]*bucket{},
	}
	if c.clock == nil {
		c.clock = time.Now
	}
	if c.metrics == nil {
		c.metrics = metrics.NewRegistry()
	}
	if c.queueDepthLimit <= 0 {
		c.queueDepthLimit = DefaultQueueDepthLimit
	}
	if c.draftLoadLimit <= 0 {
		c.draftLoadLimit = DefaultDraftLoadLimit
	}
	for _, cl := range Classes() {
		lim := defaultLimit(cl)
		if o, ok := cfg.Limits[cl]; ok && (o.MaxConcurrent != 0 || o.TenantBurst != 0 || o.ShedAt != 0) {
			lim = o
			if lim.MaxConcurrent == 0 {
				lim.MaxConcurrent = defaultLimit(cl).MaxConcurrent
			}
		}
		if lim.MaxQueue > 0 && lim.QueueTimeout <= 0 {
			lim.QueueTimeout = DefaultQueueTimeout
		}
		if lim.RetryAfter <= 0 {
			lim.RetryAfter = defaultLimit(cl).RetryAfter
		}
		c.gates[cl] = &gate{limit: lim}

		slo := defaultSLO(cl)
		if o, ok := cfg.SLO[cl]; ok && o.Target > 0 {
			slo = o
			if slo.FastWindow <= 0 {
				slo.FastWindow = DefaultFastWindow
			}
			if slo.SlowWindow <= 0 {
				slo.SlowWindow = DefaultSlowWindow
			}
		}
		c.slos[cl] = newBurnTracker(slo)

		// Register the series at zero (devsession-style) so a fresh
		// deployment exports the full overload_* set.
		name := cl.String()
		c.metrics.Inc("overload_admitted_"+name, 0)
		c.metrics.Inc("overload_shed_"+name, 0)
		c.metrics.Set("overload_inflight_"+name, 0)
		c.metrics.Set("overload_saturation_"+name, 0)
		c.metrics.Set("overload_burn_fast_"+name, 0)
		c.metrics.Set("overload_burn_slow_"+name, 0)
	}
	for _, reason := range []string{ReasonRateLimited, ReasonBackpressure,
		ReasonSaturated, ReasonQueueFull, ReasonQueueTimeout, ReasonCancelled} {
		c.metrics.Inc("overload_shed_reason_"+reason, 0)
	}
	c.metrics.Set("overload_pressure", 0)
	return c
}

// SetQueueDepth wires (or replaces) the broker-backlog pressure signal.
func (c *Controller) SetQueueDepth(fn func() int) {
	c.sigMu.Lock()
	c.queueDepth = fn
	c.sigMu.Unlock()
}

// SetDraftLoad wires (or replaces) the live-session pressure signal.
func (c *Controller) SetDraftLoad(fn func() int) {
	c.sigMu.Lock()
	c.draftLoad = fn
	c.sigMu.Unlock()
}

// Limit returns the class's effective limit.
func (c *Controller) Limit(cl Class) ClassLimit {
	if cl <= ClassNone || cl >= numClasses {
		return ClassLimit{}
	}
	return c.gates[cl].limit
}

// Pressure reports system pressure in [0, ∞): the max of the normalized
// broker backlog, the normalized live-session load, and the submission
// queue's fill fraction. 1.0 means a signal is at its limit. Low classes
// compare this against their ShedAt threshold; the submission class never
// sheds on pressure, it only *generates* it.
func (c *Controller) Pressure() float64 {
	c.sigMu.RLock()
	qd, dl := c.queueDepth, c.draftLoad
	c.sigMu.RUnlock()
	p := 0.0
	if qd != nil {
		p = math.Max(p, float64(qd())/float64(c.queueDepthLimit))
	}
	if dl != nil {
		p = math.Max(p, float64(dl())/float64(c.draftLoadLimit))
	}
	// Queued submissions are the most direct overload evidence: demand
	// already exceeds the worker pool's admitted concurrency.
	if g := c.gates[ClassSubmission]; g.limit.MaxQueue > 0 {
		g.mu.Lock()
		fill := float64(len(g.waiters)) / float64(g.limit.MaxQueue)
		g.mu.Unlock()
		p = math.Max(p, fill)
	}
	return p
}

// Ticket is one admitted request; Release returns its slot. Release is
// idempotent and must be called exactly when the request finishes.
type Ticket struct {
	once sync.Once
	free func()
}

// Release returns the admitted slot to the class gate.
func (t *Ticket) Release() {
	if t == nil {
		return
	}
	t.once.Do(t.free)
}

// Admit decides one request: every named tenant's token bucket is
// charged, backpressure and the class gates are consulted, and on success
// the returned Ticket holds a concurrency slot until Release. On shed it
// returns a *ShedError (wrapping ErrShed) carrying the Retry-After hint.
// ClassNone is always admitted with a no-op ticket.
func (c *Controller) Admit(ctx context.Context, cl Class, tenants ...string) (*Ticket, error) {
	if c == nil || cl <= ClassNone || cl >= numClasses {
		return &Ticket{free: func() {}}, nil
	}
	now := c.clock()
	g := c.gates[cl]

	// Backpressure first: it is the cheapest check and the whole point of
	// the layer — a sheddable class under pressure must not even queue.
	if g.limit.ShedAt > 0 {
		if p := c.Pressure(); p >= g.limit.ShedAt {
			return nil, c.shed(cl, ReasonBackpressure, c.backpressureRetry(g.limit, p))
		}
	}

	// Per-tenant token buckets: a spike from one tenant must not admit
	// its way past everyone else's budget.
	if g.limit.TenantBurst > 0 && g.limit.TenantInterval > 0 {
		for _, tenant := range tenants {
			if tenant == "" {
				continue
			}
			if wait, ok := c.chargeTenant(cl, tenant, now); !ok {
				return nil, c.shed(cl, ReasonRateLimited, wait)
			}
		}
	}

	// Concurrency gate.
	if g.limit.MaxConcurrent < 0 {
		c.admitted(cl, g, 0)
		return &Ticket{free: func() {}}, nil
	}
	g.mu.Lock()
	if g.inflight < g.limit.MaxConcurrent {
		g.inflight++
		g.mu.Unlock()
		c.admitted(cl, g, 0)
		return &Ticket{free: func() { c.release(cl, g) }}, nil
	}
	if g.limit.MaxQueue <= 0 {
		g.mu.Unlock()
		return nil, c.shed(cl, ReasonSaturated, g.limit.RetryAfter)
	}
	if len(g.waiters) >= g.limit.MaxQueue {
		g.mu.Unlock()
		return nil, c.shed(cl, ReasonQueueFull, g.limit.RetryAfter)
	}
	w := &waiter{ch: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	timer := time.NewTimer(g.limit.QueueTimeout)
	defer timer.Stop()
	if ctx == nil {
		ctx = context.Background()
	}
	start := now
	select {
	case <-w.ch:
		c.admitted(cl, g, c.clock().Sub(start))
		return &Ticket{free: func() { c.release(cl, g) }}, nil
	case <-ctx.Done():
		if g.abandon(w) {
			return nil, c.shed(cl, ReasonCancelled, g.limit.RetryAfter)
		}
		// Grant raced the cancellation: the slot is ours, hand it back.
		c.admitted(cl, g, c.clock().Sub(start))
		t := &Ticket{free: func() { c.release(cl, g) }}
		t.Release()
		return nil, c.shed(cl, ReasonCancelled, g.limit.RetryAfter)
	case <-timer.C:
		if g.abandon(w) {
			return nil, c.shed(cl, ReasonQueueTimeout, g.limit.RetryAfter)
		}
		c.admitted(cl, g, c.clock().Sub(start))
		return &Ticket{free: func() { c.release(cl, g) }}, nil
	}
}

// backpressureRetry scales the retry hint with pressure, clamped to
// [RetryAfter, 30s]: the deeper the overload, the longer clients back off.
func (c *Controller) backpressureRetry(lim ClassLimit, pressure float64) time.Duration {
	d := time.Duration(float64(lim.RetryAfter) * math.Max(1, pressure))
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// chargeTenant takes one token from (class, tenant)'s bucket, reporting
// the wait until the next token when the bucket is dry.
func (c *Controller) chargeTenant(cl Class, tenant string, now time.Time) (time.Duration, bool) {
	lim := c.gates[cl].limit
	key := bucketKey{class: cl, tenant: tenant}
	c.bkMu.Lock()
	defer c.bkMu.Unlock()
	b := c.buckets[key]
	if b == nil {
		if len(c.buckets) >= maxTenantBuckets {
			c.sweepBucketsLocked(now)
		}
		b = newBucket(lim.TenantBurst, lim.TenantInterval, now)
		c.buckets[key] = b
	}
	if b.allow(now) {
		return 0, true
	}
	return b.nextToken(now), false
}

// sweepBucketsLocked drops fully-refilled buckets (idle tenants).
func (c *Controller) sweepBucketsLocked(now time.Time) {
	for k, b := range c.buckets {
		if b.full(now) {
			delete(c.buckets, k)
		}
	}
}

// admitted records a successful admission.
func (c *Controller) admitted(cl Class, g *gate, queued time.Duration) {
	name := cl.String()
	c.metrics.Inc("overload_admitted_"+name, 1)
	if queued > 0 {
		c.metrics.ObserveDuration("overload_queue_wait_ms_"+name, queued)
	}
	g.mu.Lock()
	inflight := g.inflight
	g.mu.Unlock()
	c.setInflight(cl, g, inflight)
	c.slos[cl].record(c.clock(), true)
}

// release returns a slot, handing it to the oldest waiter if any.
func (c *Controller) release(cl Class, g *gate) {
	g.mu.Lock()
	if len(g.waiters) > 0 {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		w.granted = true
		close(w.ch) // inflight count transfers to the waiter
		inflight := g.inflight
		g.mu.Unlock()
		c.setInflight(cl, g, inflight)
		return
	}
	g.inflight--
	inflight := g.inflight
	g.mu.Unlock()
	c.setInflight(cl, g, inflight)
}

func (c *Controller) setInflight(cl Class, g *gate, inflight int) {
	name := cl.String()
	c.metrics.Set("overload_inflight_"+name, float64(inflight))
	if g.limit.MaxConcurrent > 0 {
		c.metrics.Set("overload_saturation_"+name,
			float64(inflight)/float64(g.limit.MaxConcurrent))
	}
}

// shed records and builds one shed decision.
func (c *Controller) shed(cl Class, reason string, retryAfter time.Duration) error {
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	c.metrics.Inc("overload_shed_"+cl.String(), 1)
	c.metrics.Inc("overload_shed_reason_"+reason, 1)
	c.slos[cl].record(c.clock(), false)
	return &ShedError{Class: cl, Reason: reason, RetryAfter: retryAfter}
}

// gate is one class's concurrency gate with a FIFO waiter queue.
type gate struct {
	limit    ClassLimit
	mu       sync.Mutex
	inflight int
	waiters  []*waiter
}

type waiter struct {
	ch      chan struct{}
	granted bool
}

// abandon removes a queued waiter; false means a grant raced the removal
// and the caller now owns a slot.
func (g *gate) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return false
	}
	for i, q := range g.waiters {
		if q == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return true
		}
	}
	return true // already removed (should not happen); treat as shed
}

// SLOStatus is one class's burn-rate snapshot.
type SLOStatus struct {
	Class    Class   `json:"-"`
	Name     string  `json:"class"`
	Target   float64 `json:"target"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Admitted float64 `json:"admitted"`
	Shed     float64 `json:"shed"`
	Inflight int     `json:"inflight"`
}

// SLOStatuses snapshots every class's burn rates and counters, in
// priority order.
func (c *Controller) SLOStatuses() []SLOStatus {
	now := c.clock()
	out := make([]SLOStatus, 0, len(Classes()))
	for _, cl := range Classes() {
		t := c.slos[cl]
		g := c.gates[cl]
		g.mu.Lock()
		inflight := g.inflight
		g.mu.Unlock()
		fast, slow := t.burnRates(now)
		out = append(out, SLOStatus{
			Class:    cl,
			Name:     cl.String(),
			Target:   t.cfg.Target,
			FastBurn: fast,
			SlowBurn: slow,
			Admitted: c.metrics.Counter("overload_admitted_" + cl.String()),
			Shed:     c.metrics.Counter("overload_shed_" + cl.String()),
			Inflight: inflight,
		})
	}
	return out
}

// Collect refreshes the lazily-computed gauges (burn rates, pressure) on
// a registry; wire it with Registry.AddCollector.
func (c *Controller) Collect(r *metrics.Registry) {
	now := c.clock()
	for _, cl := range Classes() {
		fast, slow := c.slos[cl].burnRates(now)
		r.Set("overload_burn_fast_"+cl.String(), fast)
		r.Set("overload_burn_slow_"+cl.String(), slow)
	}
	r.Set("overload_pressure", c.Pressure())
}

// bucket is a deterministic token bucket driven by the caller's clock.
type bucket struct {
	tokens   float64
	burst    float64
	interval time.Duration // time to refill one token
	last     time.Time
}

func newBucket(burst int, interval time.Duration, now time.Time) *bucket {
	return &bucket{tokens: float64(burst), burst: float64(burst), interval: interval, last: now}
}

func (b *bucket) refill(now time.Time) {
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += float64(dt) / float64(b.interval)
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

func (b *bucket) allow(now time.Time) bool {
	if b.interval <= 0 {
		return true
	}
	b.refill(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// nextToken reports how long until one token is available.
func (b *bucket) nextToken(now time.Time) time.Duration {
	b.refill(now)
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) * float64(b.interval))
}

func (b *bucket) full(now time.Time) bool {
	b.refill(now)
	return b.tokens >= b.burst
}
