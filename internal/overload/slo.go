package overload

import (
	"sync"
	"time"
)

// burnTracker measures how fast a class is burning its availability
// error budget, Google-SRE style: for each window,
//
//	burn = shedFraction / (1 - target)
//
// so burn 1.0 means the class is consuming its budget exactly at the
// rate that would exhaust it by the end of the SLO period; burn 10 means
// ten times faster. The fast window (default 5m) catches a sudden
// overload, the slow window (default 1h) a smolder that a single spike
// would not show.
//
// Each window is a ring of fixed-width buckets stamped with the epoch
// index they belong to, so advancing is O(1) per record and the clock is
// fully injectable — tests drive it with a fake time source and never
// sleep.
type burnTracker struct {
	cfg  SLOConfig
	mu   sync.Mutex
	fast *ring
	slow *ring
}

func newBurnTracker(cfg SLOConfig) *burnTracker {
	return &burnTracker{
		cfg:  cfg,
		fast: newRing(cfg.FastWindow),
		slow: newRing(cfg.SlowWindow),
	}
}

// record counts one admission decision at time now.
func (t *burnTracker) record(now time.Time, admitted bool) {
	t.mu.Lock()
	t.fast.record(now, admitted)
	t.slow.record(now, admitted)
	t.mu.Unlock()
}

// burnRates reports the fast and slow burn rates at time now. Windows
// with no traffic report zero burn — an idle class is not burning budget.
func (t *burnTracker) burnRates(now time.Time) (fast, slow float64) {
	budget := 1 - t.cfg.Target
	if budget <= 0 {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fast.shedFraction(now) / budget, t.slow.shedFraction(now) / budget
}

// ringBuckets fixes each window's resolution: window/ringBuckets per
// bucket, so a 5m fast window rolls off in 10s steps.
const ringBuckets = 30

// ring is a fixed-size bucket ring over one window. Bucket i holds the
// tallies for epoch e where e%ringBuckets == i; the stored epoch detects
// stale buckets lazily, so no background ticker is needed.
type ring struct {
	width   time.Duration // one bucket's span
	epochs  [ringBuckets]int64
	total   [ringBuckets]float64
	shed    [ringBuckets]float64
	anchor  time.Time // epoch 0 origin, set on first record
	started bool
}

func newRing(window time.Duration) *ring {
	w := window / ringBuckets
	if w <= 0 {
		w = time.Second
	}
	return &ring{width: w}
}

func (r *ring) epoch(now time.Time) int64 {
	return int64(now.Sub(r.anchor) / r.width)
}

func (r *ring) record(now time.Time, admitted bool) {
	if !r.started {
		r.anchor = now
		r.started = true
	}
	e := r.epoch(now)
	if e < 0 {
		return // clock went backwards past the anchor; drop rather than corrupt
	}
	i := int(e % ringBuckets)
	if r.epochs[i] != e {
		r.epochs[i] = e
		r.total[i] = 0
		r.shed[i] = 0
	}
	r.total[i]++
	if !admitted {
		r.shed[i]++
	}
}

// shedFraction reports shed/total over the buckets still inside the
// window ending at now.
func (r *ring) shedFraction(now time.Time) float64 {
	if !r.started {
		return 0
	}
	e := r.epoch(now)
	var total, shed float64
	for i := 0; i < ringBuckets; i++ {
		if age := e - r.epochs[i]; age >= 0 && age < ringBuckets && r.total[i] > 0 {
			total += r.total[i]
			shed += r.shed[i]
		}
	}
	if total == 0 {
		return 0
	}
	return shed / total
}
