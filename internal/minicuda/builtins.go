package minicuda

// Builtin function registry: the device intrinsics and math functions the
// course labs use. Each entry checks argument count; result types that
// depend on the arguments (atomics) are computed in resolveCall.

type builtinSig struct {
	name    string
	minArgs int
	maxArgs int
	ret     *Type // nil means computed from args
	special bool  // uses the SFU cost path
	opencl  bool  // OpenCL-only
	cuda    bool  // CUDA-only
}

var builtinTable = map[string]builtinSig{
	// Synchronization.
	"__syncthreads": {name: "__syncthreads", ret: TypeVoid, cuda: true},
	"barrier":       {name: "barrier", minArgs: 0, maxArgs: 1, ret: TypeVoid, opencl: true},
	"__threadfence": {name: "__threadfence", ret: TypeVoid, cuda: true},

	// Atomics (CUDA spellings; OpenCL's atomic_add maps onto the same).
	"atomicAdd":  {name: "atomicAdd", minArgs: 2, maxArgs: 2},
	"atomicSub":  {name: "atomicSub", minArgs: 2, maxArgs: 2},
	"atomicMax":  {name: "atomicMax", minArgs: 2, maxArgs: 2},
	"atomicMin":  {name: "atomicMin", minArgs: 2, maxArgs: 2},
	"atomicExch": {name: "atomicExch", minArgs: 2, maxArgs: 2},
	"atomicCAS":  {name: "atomicCAS", minArgs: 3, maxArgs: 3},
	"atomic_add": {name: "atomicAdd", minArgs: 2, maxArgs: 2, opencl: true},

	// OpenCL work-item functions.
	"get_global_id":   {name: "get_global_id", minArgs: 1, maxArgs: 1, ret: TypeInt, opencl: true},
	"get_local_id":    {name: "get_local_id", minArgs: 1, maxArgs: 1, ret: TypeInt, opencl: true},
	"get_group_id":    {name: "get_group_id", minArgs: 1, maxArgs: 1, ret: TypeInt, opencl: true},
	"get_local_size":  {name: "get_local_size", minArgs: 1, maxArgs: 1, ret: TypeInt, opencl: true},
	"get_num_groups":  {name: "get_num_groups", minArgs: 1, maxArgs: 1, ret: TypeInt, opencl: true},
	"get_global_size": {name: "get_global_size", minArgs: 1, maxArgs: 1, ret: TypeInt, opencl: true},

	// Math: single-precision intrinsics (SFU-costed where hardware uses it).
	"sqrtf":  {name: "sqrtf", minArgs: 1, maxArgs: 1, ret: TypeFloat, special: true},
	"sqrt":   {name: "sqrtf", minArgs: 1, maxArgs: 1, ret: TypeFloat, special: true},
	"rsqrtf": {name: "rsqrtf", minArgs: 1, maxArgs: 1, ret: TypeFloat, special: true},
	"expf":   {name: "expf", minArgs: 1, maxArgs: 1, ret: TypeFloat, special: true},
	"exp":    {name: "expf", minArgs: 1, maxArgs: 1, ret: TypeFloat, special: true},
	"logf":   {name: "logf", minArgs: 1, maxArgs: 1, ret: TypeFloat, special: true},
	"log":    {name: "logf", minArgs: 1, maxArgs: 1, ret: TypeFloat, special: true},
	"powf":   {name: "powf", minArgs: 2, maxArgs: 2, ret: TypeFloat, special: true},
	"pow":    {name: "powf", minArgs: 2, maxArgs: 2, ret: TypeFloat, special: true},
	"sinf":   {name: "sinf", minArgs: 1, maxArgs: 1, ret: TypeFloat, special: true},
	"cosf":   {name: "cosf", minArgs: 1, maxArgs: 1, ret: TypeFloat, special: true},
	"fabsf":  {name: "fabsf", minArgs: 1, maxArgs: 1, ret: TypeFloat},
	"fabs":   {name: "fabsf", minArgs: 1, maxArgs: 1, ret: TypeFloat},
	"floorf": {name: "floorf", minArgs: 1, maxArgs: 1, ret: TypeFloat},
	"floor":  {name: "floorf", minArgs: 1, maxArgs: 1, ret: TypeFloat},
	"ceilf":  {name: "ceilf", minArgs: 1, maxArgs: 1, ret: TypeFloat},
	"ceil":   {name: "ceilf", minArgs: 1, maxArgs: 1, ret: TypeFloat},
	"fminf":  {name: "fminf", minArgs: 2, maxArgs: 2, ret: TypeFloat},
	"fmaxf":  {name: "fmaxf", minArgs: 2, maxArgs: 2, ret: TypeFloat},
	"min":    {name: "min", minArgs: 2, maxArgs: 2},
	"max":    {name: "max", minArgs: 2, maxArgs: 2},
	"abs":    {name: "abs", minArgs: 1, maxArgs: 1, ret: TypeInt},
}

func (a *analyzer) call(x *Call) (*Type, error) {
	// User device function?
	if fn, ok := a.prog.functions[x.Name]; ok {
		if fn.IsKernel {
			return nil, errAt(x.Tok(), "kernel %q cannot be called from device code", x.Name)
		}
		if len(x.Args) != len(fn.Params) {
			return nil, errAt(x.Tok(), "function %q expects %d arguments, got %d",
				x.Name, len(fn.Params), len(x.Args))
		}
		for i, arg := range x.Args {
			t, err := a.expr(arg)
			if err != nil {
				return nil, err
			}
			if !convertible(t, fn.Params[i].Type) {
				return nil, errAt(arg.Tok(), "argument %d of %q: cannot convert %s to %s",
					i+1, x.Name, t, fn.Params[i].Type)
			}
		}
		x.Fn = fn
		x.typ = fn.Ret
		return fn.Ret, nil
	}

	sig, ok := builtinTable[x.Name]
	if !ok {
		return nil, errAt(x.Tok(), "call to undeclared function %q", x.Name)
	}
	if sig.opencl && a.prog.Dialect != DialectOpenCL {
		return nil, errAt(x.Tok(), "%q is an OpenCL builtin; this lab uses CUDA", x.Name)
	}
	if sig.cuda && a.prog.Dialect != DialectCUDA {
		return nil, errAt(x.Tok(), "%q is a CUDA builtin; this lab uses OpenCL", x.Name)
	}
	maxArgs := sig.maxArgs
	if maxArgs == 0 && sig.minArgs == 0 {
		// zero-arg builtin like __syncthreads
	}
	if len(x.Args) < sig.minArgs || len(x.Args) > maxArgs {
		return nil, errAt(x.Tok(), "builtin %q expects %d-%d arguments, got %d",
			x.Name, sig.minArgs, maxArgs, len(x.Args))
	}
	argTypes := make([]*Type, len(x.Args))
	for i, arg := range x.Args {
		t, err := a.expr(arg)
		if err != nil {
			return nil, err
		}
		argTypes[i] = t
	}
	x.Builtin = sig.name
	if sig.name == "__syncthreads" || sig.name == "barrier" {
		a.prog.usesBarrier = true
	}

	switch sig.name {
	case "atomicAdd", "atomicSub", "atomicMax", "atomicMin", "atomicExch", "atomicCAS":
		pt := argTypes[0]
		if pt.Kind != KPtr {
			return nil, errAt(x.Tok(), "first argument of %s must be a pointer, got %s", x.Name, pt)
		}
		elem := pt.Elem
		if !elem.IsScalar() {
			return nil, errAt(x.Tok(), "%s on unsupported element type %s", x.Name, elem)
		}
		if elem.Kind == KFloat && sig.name != "atomicAdd" && sig.name != "atomicExch" {
			return nil, errAt(x.Tok(), "%s does not support float operands", x.Name)
		}
		x.typ = elem
		return elem, nil
	case "min", "max":
		x.typ = commonType(argTypes[0], argTypes[1])
		return x.typ, nil
	}
	x.typ = sig.ret
	return sig.ret, nil
}
