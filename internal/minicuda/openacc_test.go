package minicuda

import (
	"strings"
	"testing"

	"webgpu/internal/gpusim"
)

const accVecAdd = `
void vecadd(float *a, float *b, float *c, int n) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    c[i] = a[i] + b[i];
  }
}
`

func TestTranslateOpenACCVecAdd(t *testing.T) {
	cuda, err := TranslateOpenACC(accVecAdd)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"__global__ void vecadd(", "blockIdx.x * blockDim.x + threadIdx.x",
		"if (i < (n))"} {
		if !strings.Contains(cuda, want) {
			t.Errorf("translation missing %q:\n%s", want, cuda)
		}
	}
}

func TestOpenACCExecutesCorrectly(t *testing.T) {
	prog, err := Compile(accVecAdd, DialectOpenACC)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Dialect != DialectOpenACC {
		t.Errorf("dialect = %v", prog.Dialect)
	}
	dev := gpusim.NewDefaultDevice()
	n := 100
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i)
		bv[i] = 2
	}
	a, _ := dev.MallocFloat32(n, av)
	b, _ := dev.MallocFloat32(n, bv)
	c, _ := dev.Malloc(n * 4)
	_, err = prog.Launch(dev, "vecadd",
		LaunchOpts{Grid: gpusim.D1((n + 63) / 64), Block: gpusim.D1(64)},
		FloatPtr(a), FloatPtr(b), FloatPtr(c), Int(n))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dev.ReadFloat32(c, n)
	for i := range got {
		if got[i] != av[i]+2 {
			t.Fatalf("c[%d] = %v", i, got[i])
		}
	}
}

func TestOpenACCClausesIgnored(t *testing.T) {
	src := `
void scale(float *x, int n) {
  #pragma acc kernels loop gang vector(128) copyin(x[0:n])
  for (int i = 0; i < n; i++) {
    x[i] = x[i] * 2.0f;
  }
}
`
	prog, err := Compile(src, DialectOpenACC)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Kernel("scale") == nil {
		t.Fatal("kernel scale not generated")
	}
}

func TestOpenACCMultipleLoops(t *testing.T) {
	src := `
void pipeline(float *x, float *y, int n) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    x[i] = x[i] + 1.0f;
  }
  #pragma acc parallel loop
  for (int j = 0; j < n; j++) {
    y[j] = x[j] * 2.0f;
  }
}
`
	prog, err := Compile(src, DialectOpenACC)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Kernel("pipeline") == nil || prog.Kernel("pipeline_loop2") == nil {
		t.Fatalf("kernels = %v", prog.Kernels())
	}
	dev := gpusim.NewDefaultDevice()
	n := 32
	x, _ := dev.MallocFloat32(n, make([]float32, n))
	y, _ := dev.Malloc(n * 4)
	opts := LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(32)}
	if _, err := prog.Launch(dev, "pipeline", opts, FloatPtr(x), FloatPtr(y), Int(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Launch(dev, "pipeline_loop2", opts, FloatPtr(x), FloatPtr(y), Int(n)); err != nil {
		t.Fatal(err)
	}
	got, _ := dev.ReadFloat32(y, n)
	for i := range got {
		if got[i] != 2 {
			t.Fatalf("y[%d] = %v, want 2", i, got[i])
		}
	}
}

func TestOpenACCLessEqualBound(t *testing.T) {
	src := `
void fill(int *x, int n) {
  #pragma acc parallel loop
  for (int i = 0; i <= n; i++) {
    x[i] = i;
  }
}
`
	prog, err := Compile(src, DialectOpenACC)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDefaultDevice()
	x, _ := dev.Malloc(11 * 4)
	if _, err := prog.Launch(dev, "fill",
		LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(16)},
		IntPtr(x), Int(10)); err != nil {
		t.Fatal(err)
	}
	got, _ := dev.ReadInt32(x, 11)
	if got[10] != 10 {
		t.Errorf("x[10] = %d", got[10])
	}
}

func TestOpenACCSingleStatementBody(t *testing.T) {
	src := `
void twice(float *x, int n) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++)
    x[i] = x[i] * 2.0f;
}
`
	if _, err := Compile(src, DialectOpenACC); err != nil {
		t.Fatalf("braceless body: %v", err)
	}
}

func TestOpenACCDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no pragma", `void f(float *x, int n) { }`, "no #pragma acc"},
		{"pragma without loop", "void f(float *x, int n) {\n#pragma acc parallel loop\nx[0] = 1.0f;\n}", "must be followed by a for loop"},
		{"non-canonical step", "void f(float *x, int n) {\n#pragma acc parallel loop\nfor (int i = 0; i < n; i += 2) { x[i] = 1.0f; }\n}", "canonical"},
		{"float loop var", "void f(float *x, int n) {\n#pragma acc parallel loop\nfor (float i = 0; i < n; i++) { }\n}", "canonical"},
		{"outside function", "#pragma acc parallel loop\nfor (int i = 0; i < 4; i++) { }\n", "not inside"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, DialectOpenACC)
		if err == nil {
			t.Errorf("%s: compiled unexpectedly", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestOpenACCMissingBoundStillGuarded(t *testing.T) {
	// The generated kernel must carry the boundary guard so extra threads
	// in the last block do not fault.
	prog, err := Compile(accVecAdd, DialectOpenACC)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpusim.NewDefaultDevice()
	n := 10 // 1 block of 64 threads: 54 must be masked off
	a, _ := dev.MallocFloat32(n, make([]float32, n))
	b, _ := dev.MallocFloat32(n, make([]float32, n))
	c, _ := dev.Malloc(n * 4)
	if _, err := prog.Launch(dev, "vecadd",
		LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(64)},
		FloatPtr(a), FloatPtr(b), FloatPtr(c), Int(n)); err != nil {
		t.Fatalf("masked threads faulted: %v", err)
	}
}
