package minicuda

import (
	"testing"

	"webgpu/internal/gpusim"
)

const benchSrc = `
#define TILE_WIDTH 16
__global__ void matrixMultiplyShared(float *A, float *B, float *C,
                                     int numARows, int numACols, int numBCols) {
  __shared__ float tileA[TILE_WIDTH][TILE_WIDTH];
  __shared__ float tileB[TILE_WIDTH][TILE_WIDTH];
  int row = blockIdx.y * TILE_WIDTH + threadIdx.y;
  int col = blockIdx.x * TILE_WIDTH + threadIdx.x;
  float acc = 0.0f;
  int tiles = (numACols + TILE_WIDTH - 1) / TILE_WIDTH;
  for (int m = 0; m < tiles; m++) {
    if (row < numARows && m * TILE_WIDTH + threadIdx.x < numACols)
      tileA[threadIdx.y][threadIdx.x] = A[row * numACols + m * TILE_WIDTH + threadIdx.x];
    else
      tileA[threadIdx.y][threadIdx.x] = 0.0f;
    if (col < numBCols && m * TILE_WIDTH + threadIdx.y < numACols)
      tileB[threadIdx.y][threadIdx.x] = B[(m * TILE_WIDTH + threadIdx.y) * numBCols + col];
    else
      tileB[threadIdx.y][threadIdx.x] = 0.0f;
    __syncthreads();
    for (int k = 0; k < TILE_WIDTH; k++)
      acc += tileA[threadIdx.y][k] * tileB[k][threadIdx.x];
    __syncthreads();
  }
  if (row < numARows && col < numBCols)
    C[row * numBCols + col] = acc;
}
`

func BenchmarkLex(b *testing.B) {
	pp, err := Preprocess(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pp)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lex(pp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSrc, DialectCUDA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	for i := 0; i < b.N; i++ {
		if _, err := Compile(benchSrc, DialectCUDA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpretTiledMatMul32(b *testing.B) {
	prog, err := Compile(benchSrc, DialectCUDA)
	if err != nil {
		b.Fatal(err)
	}
	d := gpusim.NewDefaultDevice()
	n := 32
	a, _ := d.Malloc(n * n * 4)
	bb, _ := d.Malloc(n * n * 4)
	c, _ := d.Malloc(n * n * 4)
	opts := LaunchOpts{Grid: gpusim.D2(n/16, n/16), Block: gpusim.D2(16, 16)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Launch(d, "matrixMultiplyShared", opts,
			FloatPtr(a), FloatPtr(bb), FloatPtr(c),
			Int(n), Int(n), Int(n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpretVecAdd4K(b *testing.B) {
	src := `__global__ void vecAdd(float *a, float *b, float *c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) c[i] = a[i] + b[i];
}`
	prog, err := Compile(src, DialectCUDA)
	if err != nil {
		b.Fatal(err)
	}
	d := gpusim.NewDefaultDevice()
	n := 4096
	a, _ := d.Malloc(n * 4)
	bb, _ := d.Malloc(n * 4)
	c, _ := d.Malloc(n * 4)
	opts := LaunchOpts{Grid: gpusim.D1(n / 256), Block: gpusim.D1(256)}
	b.SetBytes(int64(n * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Launch(d, "vecAdd", opts,
			FloatPtr(a), FloatPtr(bb), FloatPtr(c), Int(n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBytecodeVsTreeMatMul runs the same tiled matrix multiply under
// the register VM and the tree-walking interpreter, side by side.
func BenchmarkBytecodeVsTreeMatMul(b *testing.B) {
	prog, err := Compile(benchSrc, DialectCUDA)
	if err != nil {
		b.Fatal(err)
	}
	for _, sub := range []struct {
		name string
		eng  Engine
	}{{"vm", EngineVM}, {"tree", EngineTree}} {
		b.Run(sub.name, func(b *testing.B) {
			d := gpusim.NewDefaultDevice()
			n := 32
			a, _ := d.Malloc(n * n * 4)
			bb, _ := d.Malloc(n * n * 4)
			c, _ := d.Malloc(n * n * 4)
			opts := LaunchOpts{Grid: gpusim.D2(n/16, n/16), Block: gpusim.D2(16, 16), Engine: sub.eng}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prog.Launch(d, "matrixMultiplyShared", opts,
					FloatPtr(a), FloatPtr(bb), FloatPtr(c),
					Int(n), Int(n), Int(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWarpVsVMMatMul runs the tiled matrix multiply under the
// warp-vectorized engine and the per-thread register VM, side by side.
// This is the headline pair for the warp tier: a barrier-heavy,
// largely-uniform kernel where once-per-warp decode should win big.
func BenchmarkWarpVsVMMatMul(b *testing.B) {
	prog, err := Compile(benchSrc, DialectCUDA)
	if err != nil {
		b.Fatal(err)
	}
	for _, sub := range []struct {
		name string
		eng  Engine
	}{{"warp", EngineWarp}, {"vm", EngineVM}} {
		b.Run(sub.name, func(b *testing.B) {
			d := gpusim.NewDefaultDevice()
			n := 32
			a, _ := d.Malloc(n * n * 4)
			bb, _ := d.Malloc(n * n * 4)
			c, _ := d.Malloc(n * n * 4)
			opts := LaunchOpts{Grid: gpusim.D2(n/16, n/16), Block: gpusim.D2(16, 16), Engine: sub.eng}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prog.Launch(d, "matrixMultiplyShared", opts,
					FloatPtr(a), FloatPtr(bb), FloatPtr(c),
					Int(n), Int(n), Int(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWarpDivergent stresses the warp engine's worst case: a
// data-dependent loop (Collatz) where lanes diverge immediately and
// re-converge rarely, so strands shrink toward single lanes and the
// once-per-warp decode advantage evaporates. The warp engine should
// degrade toward VM speed here, not fall meaningfully below it.
func BenchmarkWarpDivergent(b *testing.B) {
	src := `__global__ void collatz(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  int v = i + 1;
  int steps = 0;
  while (v != 1 && steps < 200) {
    if (v & 1) { v = 3 * v + 1; } else { v = v / 2; }
    steps++;
  }
  out[i] = steps;
}`
	prog, err := Compile(src, DialectCUDA)
	if err != nil {
		b.Fatal(err)
	}
	for _, sub := range []struct {
		name string
		eng  Engine
	}{{"warp", EngineWarp}, {"vm", EngineVM}} {
		b.Run(sub.name, func(b *testing.B) {
			d := gpusim.NewDefaultDevice()
			n := 4096
			out, _ := d.Malloc(n * 4)
			opts := LaunchOpts{Grid: gpusim.D1(n / 256), Block: gpusim.D1(256), Engine: sub.eng}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prog.Launch(d, "collatz", opts, IntPtr(out), Int(n)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTranslateOpenACC(b *testing.B) {
	src := `
void vecadd(float *a, float *b, float *c, int n) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    c[i] = a[i] + b[i];
  }
}`
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := TranslateOpenACC(src); err != nil {
			b.Fatal(err)
		}
	}
}
