package minicuda

// Bytecode compiler: lowers the type-checked AST into a flat instruction
// stream over typed virtual registers (an int64 bank, a float64 bank and a
// Pointer bank). The register VM in vm.go executes the stream with a
// switch-dispatch loop; the tree-walking interpreter in interp.go remains
// the semantic oracle. Lowering preserves the oracle's observable behavior
// exactly: the same gpusim counter charges in the same order, the same
// step-budget accounting, and the same runtime trap messages.
//
// Step accounting uses a "pending steps" scheme: every AST node that the
// tree-walker charges a step for (each eval/execStmt entry, plus the
// per-iteration loop step) adds one pending step at lower time, and the
// next emitted instruction consumes all pending steps into its steps
// field. The VM charges an instruction's steps against the budget before
// performing its effect, so the budget trips between the same two
// observable effects as the tree-walker. Jump targets are always bound
// with zero pending steps (bind flushes through an opStep no-op placed
// before the label), which keeps the count path-independent.

type bcOp uint8

// Opcodes. Register operands live in a (dst), b, c; aux holds jump
// targets, comparison codes and side-table indices; k and f are immediate
// payloads; t is the result type where truncation semantics need it.
const (
	opStep bcOp = iota // consume pending steps only

	opLoadKI // ints[a] = k
	opLoadKF // floats[a] = f
	opMovI   // ints[a] = ints[b]
	opMovF   // floats[a] = floats[b]
	opMovP   // ptrs[a] = ptrs[b]
	opZeroP  // ptrs[a] = Pointer{}

	opLeaShared  // ptrs[a] = Pointer{Space: SpaceShared, Off: k}
	opLeaConst   // ptrs[a] = Pointer{Space: SpaceConst, Off: k}
	opAllocLocal // ptrs[a] = fresh local array buffer of type t

	opThreadDim // ints[a] = dim component aux (base*3+dim)
	opWorkItem  // ints[a] = OpenCL work-item fn aux of dim ints[b]

	opI2F    // floats[a] = float64(float32(ints[b]))   convert int->float
	opI2FRaw // floats[a] = float64(ints[b])            toF (no rounding)
	opF2I    // ints[a] = truncInt(t, int64(floats[b])) convert float->int
	opF2IRaw // ints[a] = int64(floats[b])              toI (no truncation)
	opF2F    // floats[a] = float64(float32(floats[b]))
	opTruncI // ints[a] = truncInt(t, ints[b])

	opAddI  // ints[a] = truncInt(t, ints[b] + ints[c])
	opSubI  // ...
	opMulI  //
	opDivI  // signed; ints[c] == 0 traps ErrDivByZero
	opModI  // signed
	opDivU  // uint32 division
	opModU  // uint32 modulo
	opAndI  //
	opOrI   //
	opXorI  //
	opShlI  // ints[b] << (uint(ints[c]) & 31)
	opShrI  // int64(int32(ints[b]) >> (uint(ints[c]) & 31))
	opShrU  // int64(uint32(ints[b]) >> (uint(ints[c]) & 31))
	opNegI  // truncInt(t, -ints[b])
	opNotI  // truncInt(t, ^ints[b])
	opAddKI // ints[a] = truncInt(t, ints[b] + k)
	opMinI  // truncInt(t, signed min)
	opMaxI  //
	opAbsI  // ints[a] = |ints[b]|

	opLNotI   // ints[a] = !(ints[b] != 0)
	opLNotF   // ints[a] = !(floats[b] != 0)
	opLNotP   // ints[a] = !truthy(ptrs[b])
	opTruthyI // ints[a] = ints[b] != 0
	opTruthyF // ints[a] = floats[b] != 0
	opTruthyP // ints[a] = truthy(ptrs[b])

	opAddF  // floats[a] = round32(floats[b] + floats[c])
	opSubF  //
	opMulF  //
	opDivF  //
	opNegF  // round32(-floats[b])
	opAddKF // floats[a] = round32(floats[b] + f)
	opMinF  // round32(math.Min(floats[b], floats[c]))
	opMaxF  //
	opFAbsF // round32(math.Abs(floats[b]))
	opFloor //
	opCeil  //
	opSqrt  // SFU-costed: charges CountSpecial(1) internally
	opRsqrt //
	opExp   //
	opLog   //
	opPow   // floats[a] = round32(math.Pow(floats[b], floats[c]))
	opSin   //
	opCos   //

	opCmpI // ints[a] = compareI(aux, ints[b], ints[c])
	opCmpU // ints[a] = compareU(aux, uint32(ints[b]), uint32(ints[c]))
	opCmpF // ints[a] = compareF(aux, floats[b], floats[c])
	opCmpP // ints[a] = comparePtrs(aux, ptrs[b], ptrs[c])

	opPAdd  // ptrs[a] = ptrs[b].offset(int(ints[c]) * int(k))
	opPAddK // ptrs[a] = ptrs[b].offset(int(k))
	opPDiff // ints[a] = int32-trunc(ptrDelta(ptrs[b], ptrs[c]) / int(k))

	opLoad   // bank[kind][a] = load t at ptrs[b] (k = t.Size())
	opStoreI // store ints[c] as t at ptrs[b]
	opStoreF // store floats[c] as t at ptrs[b]
	opStoreP // store ptrs[c] as t at ptrs[b]

	opJmp // pc = aux
	opJZ  // CountBranch; if !truthy(bank kind, reg b) pc = aux
	opJNZ // CountBranch; if truthy(bank kind, reg b) pc = aux

	opCheckDepth // trap ErrCallDepth when depth == maxCallDepth
	opCall       // invoke calls[aux]
	opRet        // return bank[kind][b] (bankNone: void); pop frame
	opSync       // tc.SyncThreads()
	opAtomic     // atomics[aux] on ptrs[b] with value reg c -> dst a
	opTrap       // return traps[aux]
)

// Register banks; instr.kind selects a bank for opJZ/opJNZ/opRet.
const (
	bankI uint8 = iota
	bankF
	bankP
	bankNone
)

// instr is one VM instruction.
type instr struct {
	op    bcOp
	kind  uint8  // bank selector (opJZ/opJNZ/opRet/opLoad)
	alu   uint8  // CountALU charge applied before the op's effect
	steps uint16 // step-budget charge applied first
	a     int32  // dst register
	b, c  int32  // src registers
	aux   int32  // jump target / cmp code / side-table index
	k     int64  // immediate / element size / static offset
	f     float64
	t     *Type // result type for truncation, load/store element type
}

// Comparison codes for opCmp*.
const (
	cmpEQ int32 = iota
	cmpNE
	cmpLT
	cmpLE
	cmpGT
	cmpGE
)

var cmpCodes = map[string]int32{
	"==": cmpEQ, "!=": cmpNE, "<": cmpLT, "<=": cmpLE, ">": cmpGT, ">=": cmpGE,
}

// bcFunc is one lowered function.
type bcFunc struct {
	name             string
	entry            int32
	numI, numF, numP int32 // window sizes (vars + temp watermark)
	params           []loc // home registers of the parameters, in order
	ret              *Type
	retBank          uint8

	// Lowering-time state (register assignment of locals).
	varRegs             []loc // by frame slot
	nVarI, nVarF, nVarP int32
}

// callSpec describes one static call site.
type callSpec struct {
	target *bcFunc
	moves  []argMove
	dst    loc // caller register receiving the return value (bankNone: none)
}

type argMove struct {
	bank     uint8
	src, dst int32 // src: caller window; dst: callee window
}

// atomSpec describes one atomic call site; the memory-space dispatch and
// trap messages are resolved at run time, exactly as the tree-walker does.
type atomSpec struct {
	tok  Token
	name string // canonical builtin name ("atomicAdd", ...)
	elem *Type
	val2 int32 // atomicCAS third operand (int bank)
}

// bytecodeProgram is the lowered artifact cached on a Program.
type bytecodeProgram struct {
	code        []instr
	funcs       map[*Function]*bcFunc
	calls       []*callSpec
	atomics     []*atomSpec
	traps       []error
	usesBarrier bool
}

// loc names a virtual register.
type loc struct {
	bank uint8
	reg  int32
	home bool // a variable's home register, not a single-assignment temp
}

func bankOf(t *Type) uint8 {
	switch t.Kind {
	case KFloat:
		return bankF
	case KPtr, KArray:
		return bankP
	}
	return bankI
}

// lowerAbort unwinds lowering on an unsupported construct; the program
// then falls back to the tree-walking engine.
type lowerAbort struct{ reason string }

type patch struct {
	at  int32
	lbl int
}

type lowerer struct {
	prog             *Program
	bc               *bytecodeProgram
	fn               *bcFunc
	pend             int
	tI, tF, tP       int32 // next free temp per bank
	maxI, maxF, maxP int32
	labels           []int32
	patches          []patch
	brk              []int // break label stack
	cont             []int // continue label stack
}

// lowerProgram compiles every function of an analyzed program. It returns
// nil when some construct cannot be lowered, in which case launches use
// the tree-walking interpreter.
func lowerProgram(p *Program) (bc *bytecodeProgram, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(lowerAbort); isAbort {
				bc, ok = nil, false
				return
			}
			panic(r)
		}
	}()
	bc = &bytecodeProgram{funcs: make(map[*Function]*bcFunc, len(p.Funcs))}
	// Create shells first so call sites can reference functions that are
	// lowered later (including recursive ones).
	for _, f := range p.Funcs {
		bc.funcs[f] = newShell(f)
	}
	lo := &lowerer{prog: p, bc: bc}
	for _, f := range p.Funcs {
		lo.lowerFunc(f, bc.funcs[f])
	}
	for _, pt := range lo.patches {
		tgt := lo.labels[pt.lbl]
		if tgt < 0 {
			panic("minicuda: internal: unbound bytecode label")
		}
		bc.code[pt.at].aux = tgt
	}
	for i := range bc.code {
		if bc.code[i].op == opSync {
			bc.usesBarrier = true
			break
		}
	}
	return bc, true
}

// newShell assigns home registers to every local symbol of f and records
// the parameter and return conventions.
func newShell(f *Function) *bcFunc {
	sh := &bcFunc{name: f.Name, ret: f.Ret, retBank: bankNone,
		varRegs: make([]loc, f.NumSlots)}
	if f.Ret.Kind != KVoid {
		sh.retBank = bankOf(f.Ret)
	}
	for _, s := range f.Syms {
		if s.Kind != SymLocal {
			continue
		}
		var r loc
		switch bankOf(s.Type) {
		case bankF:
			r = loc{bank: bankF, reg: sh.nVarF, home: true}
			sh.nVarF++
		case bankP:
			r = loc{bank: bankP, reg: sh.nVarP, home: true}
			sh.nVarP++
		default:
			r = loc{bank: bankI, reg: sh.nVarI, home: true}
			sh.nVarI++
		}
		sh.varRegs[s.Slot] = r
	}
	sh.params = make([]loc, len(f.Params))
	for i, pd := range f.Params {
		sh.params[i] = sh.varRegs[pd.Sym.Slot]
	}
	return sh
}

func (lo *lowerer) abort(reason string) {
	panic(lowerAbort{reason})
}

// ---- Emission helpers -------------------------------------------------------

func (lo *lowerer) takePend() uint16 {
	p := lo.pend
	lo.pend = 0
	for p > 0xFFFF {
		lo.bc.code = append(lo.bc.code, instr{op: opStep, steps: 0xFFFF})
		p -= 0xFFFF
	}
	return uint16(p)
}

func (lo *lowerer) emit(in instr) int32 {
	in.steps = lo.takePend()
	lo.bc.code = append(lo.bc.code, in)
	return int32(len(lo.bc.code) - 1)
}

func (lo *lowerer) newLabel() int {
	lo.labels = append(lo.labels, -1)
	return len(lo.labels) - 1
}

// bind places a label. Any pending steps are flushed through an opStep
// placed before the label, so jumps to the label never re-charge the
// fall-through path's steps.
func (lo *lowerer) bind(l int) {
	if lo.pend > 0 {
		lo.emit(instr{op: opStep})
	}
	lo.labels[l] = int32(len(lo.bc.code))
}

func (lo *lowerer) jump(op bcOp, bank uint8, cond int32, lbl int) {
	at := lo.emit(instr{op: op, kind: bank, b: cond})
	lo.patches = append(lo.patches, patch{at: at, lbl: lbl})
}

func (lo *lowerer) tempI() loc {
	r := lo.tI
	lo.tI++
	if lo.tI > lo.maxI {
		lo.maxI = lo.tI
	}
	return loc{bank: bankI, reg: r}
}

func (lo *lowerer) tempF() loc {
	r := lo.tF
	lo.tF++
	if lo.tF > lo.maxF {
		lo.maxF = lo.tF
	}
	return loc{bank: bankF, reg: r}
}

func (lo *lowerer) tempP() loc {
	r := lo.tP
	lo.tP++
	if lo.tP > lo.maxP {
		lo.maxP = lo.tP
	}
	return loc{bank: bankP, reg: r}
}

func (lo *lowerer) temp(bank uint8) loc {
	switch bank {
	case bankF:
		return lo.tempF()
	case bankP:
		return lo.tempP()
	}
	return lo.tempI()
}

func (lo *lowerer) resetTemps() {
	lo.tI, lo.tF, lo.tP = lo.fn.nVarI, lo.fn.nVarF, lo.fn.nVarP
}

var movOps = [3]bcOp{bankI: opMovI, bankF: opMovF, bankP: opMovP}

// mov copies src into dst (same bank).
func (lo *lowerer) mov(dst, src loc, alu uint8) {
	lo.emit(instr{op: movOps[src.bank], a: dst.reg, b: src.reg, alu: alu})
}

// toTemp materializes v into a fresh temp of the same bank.
func (lo *lowerer) toTemp(v loc) loc {
	d := lo.temp(v.bank)
	lo.mov(d, v, 0)
	return d
}

// operand lowers e; when hazard is set and the result lives in a variable's
// home register, it is copied to a temp so later sibling writes cannot
// retroactively change the value the tree-walker snapshotted here.
func (lo *lowerer) operand(e Expr, hazard bool) loc {
	v := lo.expr(e)
	if hazard && v.home {
		return lo.toTemp(v)
	}
	return v
}

// writesRegs reports whether evaluating e may write any register (the
// conservative hazard test: assignments and increments anywhere inside).
func writesRegs(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *IntLit, *FloatLit, *BoolLit, *VarRef, *BuiltinVarRef:
		return false
	case *Unary:
		if x.Op == "++" || x.Op == "--" {
			return true
		}
		return writesRegs(x.X)
	case *Postfix:
		return true
	case *Assign:
		return true
	case *Binary:
		return writesRegs(x.L) || writesRegs(x.R)
	case *Ternary:
		return writesRegs(x.Cond) || writesRegs(x.Then) || writesRegs(x.Else)
	case *Index:
		return writesRegs(x.Base) || writesRegs(x.Idx)
	case *Cast:
		return writesRegs(x.X)
	case *Call:
		// A user function body cannot touch caller registers; only the
		// argument expressions can.
		for _, a := range x.Args {
			if writesRegs(a) {
				return true
			}
		}
		return false
	}
	return true
}

func anyWritesRegs(es []Expr) bool {
	for _, e := range es {
		if writesRegs(e) {
			return true
		}
	}
	return false
}

// ---- Conversions ------------------------------------------------------------

// truncIdentity reports whether truncInt to kind `to` is a no-op for a
// register already holding a truncated value of kind `from`.
func truncIdentity(from, to Kind) bool {
	if from == to {
		return true
	}
	switch to {
	case KInt:
		return from == KBool || from == KChar || from == KUChar
	case KUInt:
		return from == KBool || from == KUChar
	case KChar, KUChar:
		return from == KBool
	}
	return false
}

// convertLoc emits the register form of convert(v, to). With alu == 0 and
// an identity conversion the source register is returned unchanged.
func (lo *lowerer) convertLoc(v loc, from, to *Type, alu uint8) loc {
	isPtrLike := from != nil && (from.Kind == KPtr || from.Kind == KArray)
	switch {
	case to.Kind == KPtr:
		if isPtrLike {
			if alu == 0 {
				return v
			}
			d := lo.tempP()
			lo.mov(d, v, alu)
			return d
		}
		d := lo.tempP()
		lo.emit(instr{op: opZeroP, a: d.reg, alu: alu})
		return d
	case to.Kind == KFloat:
		if from != nil && from.Kind == KFloat {
			if alu == 0 {
				return v
			}
			d := lo.tempF()
			lo.emit(instr{op: opF2F, a: d.reg, b: v.reg, alu: alu})
			return d
		}
		d := lo.tempF()
		if isPtrLike {
			// convert(ptr, float): the I payload of a pointer Value is 0.
			lo.emit(instr{op: opLoadKF, a: d.reg, f: 0, alu: alu})
			return d
		}
		lo.emit(instr{op: opI2F, a: d.reg, b: v.reg, alu: alu})
		return d
	default: // integer target (including bool/char and void)
		if from != nil && from.Kind == KFloat {
			d := lo.tempI()
			lo.emit(instr{op: opF2I, a: d.reg, b: v.reg, t: to, alu: alu})
			return d
		}
		if isPtrLike {
			d := lo.tempI()
			lo.emit(instr{op: opLoadKI, a: d.reg, k: 0, alu: alu})
			return d
		}
		if alu == 0 && from != nil && truncIdentity(from.Kind, to.Kind) {
			return v
		}
		d := lo.tempI()
		lo.emit(instr{op: opTruncI, a: d.reg, b: v.reg, t: to, alu: alu})
		return d
	}
}

// rawToI emits the register form of toI(v): int64(F) for floats with no
// 32-bit truncation; pointers read their zero I payload.
func (lo *lowerer) rawToI(v loc, from *Type) loc {
	if from != nil && from.Kind == KFloat {
		d := lo.tempI()
		lo.emit(instr{op: opF2IRaw, a: d.reg, b: v.reg})
		return d
	}
	if v.bank == bankP {
		d := lo.tempI()
		lo.emit(instr{op: opLoadKI, a: d.reg, k: 0})
		return d
	}
	return v
}

// rawToF emits the register form of toF(v): float64(I) exactly, with no
// float32 rounding.
func (lo *lowerer) rawToF(v loc, from *Type) loc {
	if from != nil && from.Kind == KFloat {
		return v
	}
	if v.bank == bankP {
		d := lo.tempF()
		lo.emit(instr{op: opLoadKF, a: d.reg, f: 0})
		return d
	}
	d := lo.tempF()
	lo.emit(instr{op: opI2FRaw, a: d.reg, b: v.reg})
	return d
}

// ---- Functions and statements ----------------------------------------------

func (lo *lowerer) lowerFunc(f *Function, sh *bcFunc) {
	lo.fn = sh
	lo.pend = 0
	lo.maxI, lo.maxF, lo.maxP = sh.nVarI, sh.nVarF, sh.nVarP
	lo.resetTemps()
	sh.entry = int32(len(lo.bc.code))
	// The function body block is entered directly (execBlock), without the
	// execStmt step that nested blocks pay.
	for _, s := range f.Body.Stmts {
		lo.stmt(s)
	}
	// Implicit void return; carries any trailing pending steps.
	lo.emit(instr{op: opRet, kind: bankNone})
	sh.numI, sh.numF, sh.numP = lo.maxI, lo.maxF, lo.maxP
}

func (lo *lowerer) stmt(s Stmt) {
	lo.resetTemps()
	lo.pend++ // the tree-walker's execStmt entry step
	switch st := s.(type) {
	case *Block:
		for _, c := range st.Stmts {
			lo.stmt(c)
		}
	case *EmptyStmt:
	case *DeclStmt:
		for _, d := range st.Decls {
			lo.decl(d)
		}
	case *ExprStmt:
		lo.expr(st.X)
	case *IfStmt:
		cond := lo.expr(st.Cond)
		lEnd := lo.newLabel()
		if st.Else != nil {
			lElse := lo.newLabel()
			lo.jump(opJZ, cond.bank, cond.reg, lElse)
			lo.stmt(st.Then)
			lo.jump(opJmp, 0, 0, lEnd)
			lo.bind(lElse)
			lo.stmt(st.Else)
		} else {
			lo.jump(opJZ, cond.bank, cond.reg, lEnd)
			lo.stmt(st.Then)
		}
		lo.bind(lEnd)
	case *ForStmt:
		if st.Init != nil {
			lo.stmt(st.Init)
		}
		lTop, lCont, lEnd := lo.newLabel(), lo.newLabel(), lo.newLabel()
		lo.bind(lTop)
		if st.Cond != nil {
			lo.resetTemps()
			cond := lo.expr(st.Cond)
			lo.jump(opJZ, cond.bank, cond.reg, lEnd)
		}
		lo.brk = append(lo.brk, lEnd)
		lo.cont = append(lo.cont, lCont)
		lo.stmt(st.Body)
		lo.brk = lo.brk[:len(lo.brk)-1]
		lo.cont = lo.cont[:len(lo.cont)-1]
		lo.bind(lCont)
		if st.Post != nil {
			lo.resetTemps()
			lo.expr(st.Post)
		}
		lo.pend++ // per-iteration loop step
		lo.jump(opJmp, 0, 0, lTop)
		lo.bind(lEnd)
	case *WhileStmt:
		if st.DoFirst {
			lo.lowerDoWhile(st)
			break
		}
		lTop, lCont, lEnd := lo.newLabel(), lo.newLabel(), lo.newLabel()
		lo.bind(lTop)
		lo.resetTemps()
		cond := lo.expr(st.Cond)
		lo.jump(opJZ, cond.bank, cond.reg, lEnd)
		lo.brk = append(lo.brk, lEnd)
		lo.cont = append(lo.cont, lCont)
		lo.stmt(st.Body)
		lo.brk = lo.brk[:len(lo.brk)-1]
		lo.cont = lo.cont[:len(lo.cont)-1]
		lo.bind(lCont)
		lo.pend++ // per-iteration loop step
		lo.jump(opJmp, 0, 0, lTop)
		lo.bind(lEnd)
	case *ReturnStmt:
		if st.X != nil {
			v := lo.expr(st.X)
			cv := lo.convertLoc(v, st.X.ResultType(), lo.fn.ret, 0)
			lo.emit(instr{op: opRet, kind: cv.bank, b: cv.reg})
		} else {
			lo.emit(instr{op: opRet, kind: bankNone})
		}
	case *BreakStmt:
		lo.jump(opJmp, 0, 0, lo.brk[len(lo.brk)-1])
	case *ContinueStmt:
		lo.jump(opJmp, 0, 0, lo.cont[len(lo.cont)-1])
	default:
		lo.abort("unknown statement")
	}
}

// lowerDoWhile flattens do/while. The tree-walker evaluates the condition
// at the loop bottom and again at the loop top of the next iteration (two
// branch charges per continuing iteration); the lowering mirrors that by
// emitting the condition twice.
func (lo *lowerer) lowerDoWhile(st *WhileStmt) {
	lBody, lCont, lEnd := lo.newLabel(), lo.newLabel(), lo.newLabel()
	lo.bind(lBody)
	lo.brk = append(lo.brk, lEnd)
	lo.cont = append(lo.cont, lCont)
	lo.stmt(st.Body)
	lo.brk = lo.brk[:len(lo.brk)-1]
	lo.cont = lo.cont[:len(lo.cont)-1]
	lo.bind(lCont)
	lo.resetTemps()
	cond := lo.expr(st.Cond)
	lo.jump(opJZ, cond.bank, cond.reg, lEnd)
	lo.pend++ // per-iteration loop step
	lo.resetTemps()
	cond2 := lo.expr(st.Cond)
	lo.jump(opJZ, cond2.bank, cond2.reg, lEnd)
	lo.jump(opJmp, 0, 0, lBody)
	lo.bind(lEnd)
}

func (lo *lowerer) decl(d *VarDecl) {
	sym := d.Sym
	if sym.Kind == SymShared {
		return // laid out at compile time
	}
	if sym.Kind != SymLocal {
		lo.abort("bad decl kind")
	}
	t := sym.Type
	home := lo.fn.varRegs[sym.Slot]
	if t.Kind == KArray {
		lo.emit(instr{op: opAllocLocal, a: home.reg, t: t})
		return
	}
	if d.Init != nil {
		v := lo.expr(d.Init)
		cv := lo.convertLoc(v, d.Init.ResultType(), t, 0)
		lo.mov(home, cv, 0)
		return
	}
	switch home.bank {
	case bankF:
		lo.emit(instr{op: opLoadKF, a: home.reg, f: 0})
	case bankP:
		lo.emit(instr{op: opZeroP, a: home.reg})
	default:
		lo.emit(instr{op: opLoadKI, a: home.reg, k: 0})
	}
}

// ---- Lvalues and addresses --------------------------------------------------

// lval mirrors the tree-walker's lvalue: either a home register or a
// pointer held in a register.
type lval struct {
	isReg bool
	reg   loc
	ptr   loc
}

func (lo *lowerer) lvalueOf(e Expr) lval {
	switch x := e.(type) {
	case *VarRef:
		sym := x.Sym
		switch sym.Kind {
		case SymLocal:
			if sym.Type.Kind == KArray {
				lo.abort("assign to array") // sema rejects; keep the oracle
			}
			return lval{isReg: true, reg: lo.fn.varRegs[sym.Slot]}
		case SymShared:
			d := lo.tempP()
			lo.emit(instr{op: opLeaShared, a: d.reg, k: int64(sym.Off)})
			return lval{ptr: d}
		case SymConst:
			d := lo.tempP()
			lo.emit(instr{op: opLeaConst, a: d.reg, k: int64(sym.Off)})
			return lval{ptr: d}
		}
	case *Index:
		base := lo.addr(x.Base)
		if base.home && writesRegs(x.Idx) {
			base = lo.toTemp(base)
		}
		idx := lo.expr(x.Idx)
		elem := x.ResultType()
		d := lo.tempP()
		lo.emit(instr{op: opPAdd, a: d.reg, b: base.reg, c: idx.reg,
			k: int64(elem.Size()), alu: 2})
		return lval{ptr: d}
	case *Unary:
		if x.Op == "*" {
			pv := lo.expr(x.X)
			return lval{ptr: pv}
		}
	}
	lo.abort("expression is not assignable")
	return lval{}
}

// addr mirrors evalAddr: computes the address designated by e. Address
// nodes themselves charge no step (only embedded index/rvalue expressions
// do), matching the tree-walker.
func (lo *lowerer) addr(e Expr) loc {
	t := e.ResultType()
	switch x := e.(type) {
	case *VarRef:
		sym := x.Sym
		switch sym.Kind {
		case SymShared:
			d := lo.tempP()
			lo.emit(instr{op: opLeaShared, a: d.reg, k: int64(sym.Off)})
			return d
		case SymConst:
			d := lo.tempP()
			lo.emit(instr{op: opLeaConst, a: d.reg, k: int64(sym.Off)})
			return d
		case SymLocal:
			if sym.Type.Kind == KArray || sym.Type.Kind == KPtr {
				return lo.fn.varRegs[sym.Slot]
			}
			// Register scalar: the tree-walker traps at run time; callers
			// (only unary &) emit the trap themselves.
			lo.abort("address of register variable")
		}
	case *Index:
		base := lo.addr(x.Base)
		if base.home && writesRegs(x.Idx) {
			base = lo.toTemp(base)
		}
		idx := lo.expr(x.Idx)
		d := lo.tempP()
		lo.emit(instr{op: opPAdd, a: d.reg, b: base.reg, c: idx.reg,
			k: int64(t.Size()), alu: 2})
		return d
	case *Unary:
		if x.Op == "*" {
			return lo.expr(x.X)
		}
	default:
		v := lo.expr(e)
		if v.bank == bankP {
			return v
		}
		lo.abort("expression does not designate storage")
	}
	lo.abort("expression does not designate storage")
	return loc{}
}

// trap emits an unconditional runtime trap carrying err.
func (lo *lowerer) trap(err error) {
	lo.bc.traps = append(lo.bc.traps, err)
	lo.emit(instr{op: opTrap, aux: int32(len(lo.bc.traps) - 1)})
}

// loadEmit loads the scalar of type t at the pointer register p.
func (lo *lowerer) loadEmit(p loc, t *Type) loc {
	d := lo.temp(bankOf(t))
	lo.emit(instr{op: opLoad, a: d.reg, b: p.reg, kind: d.bank, t: t,
		k: int64(t.Size())})
	return d
}

// storeEmit stores v (already converted to t) at the pointer register p.
func (lo *lowerer) storeEmit(p loc, t *Type, v loc) {
	op := opStoreI
	switch v.bank {
	case bankF:
		op = opStoreF
	case bankP:
		op = opStoreP
	}
	lo.emit(instr{op: op, b: p.reg, c: v.reg, t: t, k: int64(t.Size())})
}

// ---- Expressions ------------------------------------------------------------

// expr lowers one expression. Each call adds the eval-entry step the
// tree-walker charges for the node.
func (lo *lowerer) expr(e Expr) loc {
	lo.pend++
	switch x := e.(type) {
	case *IntLit:
		d := lo.tempI()
		lo.emit(instr{op: opLoadKI, a: d.reg, k: truncInt(x.ResultType(), x.Val)})
		return d
	case *FloatLit:
		d := lo.tempF()
		lo.emit(instr{op: opLoadKF, a: d.reg, f: float64(float32(x.Val))})
		return d
	case *BoolLit:
		d := lo.tempI()
		var k int64
		if x.Val {
			k = 1
		}
		lo.emit(instr{op: opLoadKI, a: d.reg, k: k})
		return d
	case *VarRef:
		sym := x.Sym
		switch sym.Kind {
		case SymLocal:
			return lo.fn.varRegs[sym.Slot]
		case SymShared, SymConst:
			op := opLeaShared
			if sym.Kind == SymConst {
				op = opLeaConst
			}
			p := lo.tempP()
			lo.emit(instr{op: op, a: p.reg, k: int64(sym.Off)})
			if sym.Type.Kind == KArray {
				return p
			}
			return lo.loadEmit(p, sym.Type)
		}
	case *BuiltinVarRef:
		d := lo.tempI()
		var base int32
		switch x.Base {
		case "threadIdx":
			base = 0
		case "blockIdx":
			base = 1
		case "blockDim":
			base = 2
		case "gridDim":
			base = 3
		}
		lo.emit(instr{op: opThreadDim, a: d.reg, aux: base*3 + int32(x.Dim)})
		return d
	case *Unary:
		return lo.unary(x)
	case *Postfix:
		return lo.incDec(x.X, x.Op, false)
	case *Binary:
		return lo.binary(x)
	case *Assign:
		return lo.assign(x)
	case *Ternary:
		return lo.ternary(x)
	case *Index:
		t := x.ResultType()
		p := lo.addr(x)
		if t.Kind == KArray {
			return p
		}
		return lo.loadEmit(p, t)
	case *Cast:
		v := lo.expr(x.X)
		return lo.convertLoc(v, x.X.ResultType(), x.To, 1)
	case *Call:
		if x.Fn != nil {
			return lo.userCall(x)
		}
		return lo.builtin(x)
	}
	lo.abort("unknown expression")
	return loc{}
}

func (lo *lowerer) unary(x *Unary) loc {
	t := x.ResultType()
	switch x.Op {
	case "+":
		v := lo.expr(x.X)
		return lo.convertLoc(v, x.X.ResultType(), t, 1)
	case "-":
		v := lo.expr(x.X)
		if t.Kind == KFloat {
			f := lo.rawToF(v, x.X.ResultType())
			d := lo.tempF()
			lo.emit(instr{op: opNegF, a: d.reg, b: f.reg, alu: 1})
			return d
		}
		i := lo.rawToI(v, x.X.ResultType())
		d := lo.tempI()
		lo.emit(instr{op: opNegI, a: d.reg, b: i.reg, t: t, alu: 1})
		return d
	case "!":
		v := lo.expr(x.X)
		d := lo.tempI()
		op := opLNotI
		switch v.bank {
		case bankF:
			op = opLNotF
		case bankP:
			op = opLNotP
		}
		lo.emit(instr{op: op, a: d.reg, b: v.reg, alu: 1})
		return d
	case "~":
		v := lo.expr(x.X)
		i := lo.rawToI(v, x.X.ResultType())
		d := lo.tempI()
		lo.emit(instr{op: opNotI, a: d.reg, b: i.reg, t: t, alu: 1})
		return d
	case "*":
		// Deref rvalue: evalAddr on the unary resolves to eval(x.X).
		p := lo.expr(x.X)
		if t.Kind == KArray {
			return p
		}
		return lo.loadEmit(p, t)
	case "&":
		if vr, isVar := x.X.(*VarRef); isVar && vr.Sym.Kind == SymLocal &&
			vr.Sym.Type.Kind != KArray && vr.Sym.Type.Kind != KPtr {
			// Address of a register scalar: the tree-walker's evalAddr
			// fails, the lvalue fallback is a slot, and it traps.
			lo.trap(errAt(x.Tok(), "cannot take the address of this expression"))
			return lo.tempP() // unreachable at run time
		}
		return lo.addr(x.X)
	case "++", "--":
		return lo.incDec(x.X, x.Op, true)
	}
	lo.abort("unsupported unary")
	return loc{}
}

// incDec lowers ++/-- (prefix returns the new value, postfix the old).
func (lo *lowerer) incDec(operand Expr, op string, prefix bool) loc {
	lv := lo.lvalueOf(operand)
	t := operand.ResultType()
	delta := int64(1)
	if op == "--" {
		delta = -1
	}
	if lv.isReg {
		home := lv.reg
		var oldCopy loc
		if !prefix {
			oldCopy = lo.toTemp(home)
		}
		switch t.Kind {
		case KFloat:
			lo.emit(instr{op: opAddKF, a: home.reg, b: home.reg,
				f: float64(delta), alu: 1})
		case KPtr:
			lo.emit(instr{op: opPAddK, a: home.reg, b: home.reg,
				k: delta * int64(t.Elem.Size()), alu: 1})
		default:
			lo.emit(instr{op: opAddKI, a: home.reg, b: home.reg,
				k: delta, t: t, alu: 1})
		}
		if prefix {
			return home
		}
		return oldCopy
	}
	old := lo.loadEmit(lv.ptr, t)
	nv := lo.temp(old.bank)
	switch t.Kind {
	case KFloat:
		lo.emit(instr{op: opAddKF, a: nv.reg, b: old.reg, f: float64(delta), alu: 1})
	case KPtr:
		lo.emit(instr{op: opPAddK, a: nv.reg, b: old.reg,
			k: delta * int64(t.Elem.Size()), alu: 1})
	default:
		lo.emit(instr{op: opAddKI, a: nv.reg, b: old.reg, k: delta, t: t, alu: 1})
	}
	lo.storeEmit(lv.ptr, t, nv)
	if prefix {
		return nv
	}
	return old
}

var intBinOps = map[string]bcOp{
	"+": opAddI, "-": opSubI, "*": opMulI, "&": opAndI, "|": opOrI,
	"^": opXorI, "<<": opShlI,
}

// intBinOp emits an integer arithmetic op with result type t (matching
// evalBinary's intValue(t, ...) truncation and signedness selection).
func (lo *lowerer) intBinOp(op string, t *Type, l, r loc, alu uint8) loc {
	unsigned := t.Kind == KUInt || t.Kind == KUChar
	var bop bcOp
	switch op {
	case "/":
		bop = opDivI
		if unsigned {
			bop = opDivU
		}
	case "%":
		bop = opModI
		if unsigned {
			bop = opModU
		}
	case ">>":
		bop = opShrI
		if unsigned {
			bop = opShrU
		}
	default:
		var known bool
		bop, known = intBinOps[op]
		if !known {
			lo.abort("invalid integer operator")
		}
	}
	d := lo.tempI()
	lo.emit(instr{op: bop, a: d.reg, b: l.reg, c: r.reg, t: t, alu: alu})
	return d
}

// compoundIntBinOp mirrors evalAssign's compound integer arithmetic, which
// is always-signed int64 for / and % (unlike plain binary operators) and a
// plain int64 shift for >> (equivalent to the unsigned selection only
// because stored unsigned values are non-negative and below 2^32).
func (lo *lowerer) compoundIntBinOp(op string, t *Type, l, r loc) loc {
	var bop bcOp
	switch op {
	case "/":
		bop = opDivI
	case "%":
		bop = opModI
	case ">>":
		bop = opShrI
		if t.Kind == KUInt {
			bop = opShrU
		}
	default:
		var known bool
		bop, known = intBinOps[op]
		if !known {
			lo.abort("invalid compound operator")
		}
	}
	d := lo.tempI()
	lo.emit(instr{op: bop, a: d.reg, b: l.reg, c: r.reg, t: t, alu: 1})
	return d
}

var floatBinOps = map[string]bcOp{"+": opAddF, "-": opSubF, "*": opMulF, "/": opDivF}

func (lo *lowerer) floatBinOp(op string, l, r loc, alu uint8) loc {
	bop, known := floatBinOps[op]
	if !known {
		lo.abort("invalid float operator")
	}
	d := lo.tempF()
	lo.emit(instr{op: bop, a: d.reg, b: l.reg, c: r.reg, alu: alu})
	return d
}

func (lo *lowerer) binary(x *Binary) loc {
	switch x.Op {
	case "&&":
		d := lo.tempI()
		l := lo.expr(x.L)
		lFalse, lEnd := lo.newLabel(), lo.newLabel()
		lo.jump(opJZ, l.bank, l.reg, lFalse)
		r := lo.expr(x.R)
		lo.emit(instr{op: truthyOp(r.bank), a: d.reg, b: r.reg})
		lo.jump(opJmp, 0, 0, lEnd)
		lo.bind(lFalse)
		lo.emit(instr{op: opLoadKI, a: d.reg, k: 0})
		lo.bind(lEnd)
		return d
	case "||":
		d := lo.tempI()
		l := lo.expr(x.L)
		lTrue, lEnd := lo.newLabel(), lo.newLabel()
		lo.jump(opJNZ, l.bank, l.reg, lTrue)
		r := lo.expr(x.R)
		lo.emit(instr{op: truthyOp(r.bank), a: d.reg, b: r.reg})
		lo.jump(opJmp, 0, 0, lEnd)
		lo.bind(lTrue)
		lo.emit(instr{op: opLoadKI, a: d.reg, k: 1})
		lo.bind(lEnd)
		return d
	case ",":
		lo.expr(x.L)
		return lo.expr(x.R)
	}

	l := lo.operand(x.L, writesRegs(x.R))
	r := lo.expr(x.R)
	lt, rt := x.L.ResultType(), x.R.ResultType()

	// Pointer arithmetic and comparison (dispatch on static types, as the
	// tree-walker dispatches on the evaluated types).
	if lt != nil && (lt.Kind == KPtr || lt.Kind == KArray) {
		switch x.Op {
		case "+", "-":
			if rt != nil && rt.Kind == KPtr {
				d := lo.tempI()
				lo.emit(instr{op: opPDiff, a: d.reg, b: l.reg, c: r.reg,
					k: int64(lt.Elem.Size()), alu: 1})
				return d
			}
			ri := lo.rawToI(r, rt)
			sz := int64(elemSizeOf(lt))
			if x.Op == "-" {
				sz = -sz
			}
			d := lo.tempP()
			lo.emit(instr{op: opPAdd, a: d.reg, b: l.reg, c: ri.reg, k: sz, alu: 1})
			return d
		case "==", "!=", "<", "<=", ">", ">=":
			d := lo.tempI()
			lo.emit(instr{op: opCmpP, a: d.reg, b: l.reg, c: r.reg,
				aux: cmpCodes[x.Op], alu: 1})
			return d
		}
	}
	if rt != nil && rt.Kind == KPtr && x.Op == "+" {
		li := lo.rawToI(l, lt)
		d := lo.tempP()
		lo.emit(instr{op: opPAdd, a: d.reg, b: r.reg, c: li.reg,
			k: int64(rt.Elem.Size()), alu: 1})
		return d
	}

	switch x.Op {
	case "==", "!=", "<", "<=", ">", ">=":
		ct := commonType(lt, rt)
		d := lo.tempI()
		if ct.Kind == KFloat {
			lf, rf := lo.rawToF(l, lt), lo.rawToF(r, rt)
			lo.emit(instr{op: opCmpF, a: d.reg, b: lf.reg, c: rf.reg,
				aux: cmpCodes[x.Op], alu: 1})
		} else if ct.Kind == KUInt {
			li, ri := lo.rawToI(l, lt), lo.rawToI(r, rt)
			lo.emit(instr{op: opCmpU, a: d.reg, b: li.reg, c: ri.reg,
				aux: cmpCodes[x.Op], alu: 1})
		} else {
			li, ri := lo.rawToI(l, lt), lo.rawToI(r, rt)
			lo.emit(instr{op: opCmpI, a: d.reg, b: li.reg, c: ri.reg,
				aux: cmpCodes[x.Op], alu: 1})
		}
		return d
	}

	t := x.ResultType()
	if t.Kind == KFloat {
		lf, rf := lo.rawToF(l, lt), lo.rawToF(r, rt)
		return lo.floatBinOp(x.Op, lf, rf, 1)
	}
	li, ri := lo.rawToI(l, lt), lo.rawToI(r, rt)
	return lo.intBinOp(x.Op, t, li, ri, 1)
}

func truthyOp(bank uint8) bcOp {
	switch bank {
	case bankF:
		return opTruthyF
	case bankP:
		return opTruthyP
	}
	return opTruthyI
}

func (lo *lowerer) assign(x *Assign) loc {
	lv := lo.lvalueOf(x.L)
	t := x.L.ResultType()
	rt := x.R.ResultType()
	if x.Op == "=" {
		r := lo.expr(x.R)
		cv := lo.convertLoc(r, rt, t, 0)
		if lv.isReg {
			if cv.bank != lv.reg.bank || cv.reg != lv.reg.reg {
				lo.mov(lv.reg, cv, 0)
			}
			return lv.reg
		}
		lo.storeEmit(lv.ptr, t, cv)
		return cv
	}
	// Compound assignment: load old, evaluate rhs, combine, store back.
	var old loc
	if lv.isReg {
		old = lv.reg
		if writesRegs(x.R) {
			old = lo.toTemp(old)
		}
	} else {
		old = lo.loadEmit(lv.ptr, t)
	}
	r := lo.expr(x.R)
	op := x.Op[:len(x.Op)-1]
	var nv loc
	switch t.Kind {
	case KPtr:
		ri := lo.rawToI(r, rt)
		sz := int64(t.Elem.Size())
		if op == "-" {
			sz = -sz
		}
		nv = lo.tempP()
		lo.emit(instr{op: opPAdd, a: nv.reg, b: old.reg, c: ri.reg, k: sz, alu: 1})
	case KFloat:
		rf := lo.rawToF(r, rt)
		nv = lo.floatBinOp(op, old, rf, 1)
	default:
		ri := lo.rawToI(r, rt)
		nv = lo.compoundIntBinOp(op, t, old, ri)
	}
	if lv.isReg {
		lo.mov(lv.reg, nv, 0)
		return lv.reg
	}
	lo.storeEmit(lv.ptr, t, nv)
	return nv
}

func (lo *lowerer) ternary(x *Ternary) loc {
	t := x.ResultType()
	d := lo.temp(bankOf(t))
	cond := lo.expr(x.Cond)
	lElse, lEnd := lo.newLabel(), lo.newLabel()
	lo.jump(opJZ, cond.bank, cond.reg, lElse)
	tv := lo.expr(x.Then)
	if t.IsScalar() {
		tv = lo.convertLoc(tv, x.Then.ResultType(), t, 0)
	}
	lo.mov(d, tv, 0)
	lo.jump(opJmp, 0, 0, lEnd)
	lo.bind(lElse)
	ev := lo.expr(x.Else)
	if t.IsScalar() {
		ev = lo.convertLoc(ev, x.Else.ResultType(), t, 0)
	}
	lo.mov(d, ev, 0)
	lo.bind(lEnd)
	return d
}

func (lo *lowerer) userCall(x *Call) loc {
	tgt := lo.bc.funcs[x.Fn]
	if tgt == nil {
		lo.abort("call target not lowered")
	}
	lo.emit(instr{op: opCheckDepth})
	moves := make([]argMove, len(x.Args))
	for i, a := range x.Args {
		hazard := anyWritesRegs(x.Args[i+1:])
		v := lo.operand(a, hazard)
		cv := lo.convertLoc(v, a.ResultType(), x.Fn.Params[i].Type, 0)
		moves[i] = argMove{bank: cv.bank, src: cv.reg, dst: tgt.params[i].reg}
	}
	dst := loc{bank: bankNone}
	if tgt.retBank != bankNone {
		dst = lo.temp(tgt.retBank)
	}
	lo.bc.calls = append(lo.bc.calls, &callSpec{target: tgt, moves: moves, dst: dst})
	lo.emit(instr{op: opCall, aux: int32(len(lo.bc.calls) - 1)})
	return dst
}

// Builtin ids for opWorkItem.
const (
	wiGlobalID int32 = iota
	wiLocalID
	wiGroupID
	wiLocalSize
	wiNumGroups
	wiGlobalSize
)

var workItemIDs = map[string]int32{
	"get_global_id": wiGlobalID, "get_local_id": wiLocalID,
	"get_group_id": wiGroupID, "get_local_size": wiLocalSize,
	"get_num_groups": wiNumGroups, "get_global_size": wiGlobalSize,
}

var specialOps = map[string]bcOp{
	"sqrtf": opSqrt, "rsqrtf": opRsqrt, "expf": opExp, "logf": opLog,
	"powf": opPow, "sinf": opSin, "cosf": opCos,
}

func (lo *lowerer) builtin(x *Call) loc {
	args := make([]loc, len(x.Args))
	for i, a := range x.Args {
		args[i] = lo.operand(a, anyWritesRegs(x.Args[i+1:]))
	}
	at := func(i int) *Type { return x.Args[i].ResultType() }
	switch x.Builtin {
	case "__syncthreads", "barrier":
		lo.emit(instr{op: opSync})
		return loc{bank: bankNone}
	case "__threadfence":
		return loc{bank: bankNone}
	case "atomicAdd", "atomicSub", "atomicMax", "atomicMin", "atomicExch", "atomicCAS":
		elem := x.ResultType()
		var val loc
		if elem.Kind == KFloat && (x.Builtin == "atomicAdd" || x.Builtin == "atomicSub" ||
			x.Builtin == "atomicExch") {
			val = lo.rawToF(args[1], at(1))
		} else {
			val = lo.rawToI(args[1], at(1))
		}
		spec := &atomSpec{tok: x.Tok(), name: x.Builtin, elem: elem}
		if x.Builtin == "atomicCAS" {
			v2 := lo.rawToI(args[2], at(2))
			spec.val2 = v2.reg
		}
		d := lo.temp(bankOf(elem))
		lo.bc.atomics = append(lo.bc.atomics, spec)
		lo.emit(instr{op: opAtomic, a: d.reg, b: args[0].reg, c: val.reg,
			kind: d.bank, aux: int32(len(lo.bc.atomics) - 1)})
		return d
	case "get_global_id", "get_local_id", "get_group_id",
		"get_local_size", "get_num_groups", "get_global_size":
		dim := lo.rawToI(args[0], at(0))
		d := lo.tempI()
		lo.emit(instr{op: opWorkItem, a: d.reg, b: dim.reg, aux: workItemIDs[x.Builtin]})
		return d
	case "min", "max":
		t := x.ResultType()
		if t.Kind == KFloat {
			a, b := lo.rawToF(args[0], at(0)), lo.rawToF(args[1], at(1))
			op := opMinF
			if x.Builtin == "max" {
				op = opMaxF
			}
			d := lo.tempF()
			lo.emit(instr{op: op, a: d.reg, b: a.reg, c: b.reg, alu: 1})
			return d
		}
		a, b := lo.rawToI(args[0], at(0)), lo.rawToI(args[1], at(1))
		op := opMinI
		if x.Builtin == "max" {
			op = opMaxI
		}
		d := lo.tempI()
		lo.emit(instr{op: op, a: d.reg, b: a.reg, c: b.reg, t: t, alu: 1})
		return d
	case "abs":
		v := lo.rawToI(args[0], at(0))
		d := lo.tempI()
		lo.emit(instr{op: opAbsI, a: d.reg, b: v.reg, alu: 1})
		return d
	case "fminf", "fmaxf":
		a, b := lo.rawToF(args[0], at(0)), lo.rawToF(args[1], at(1))
		op := opMinF
		if x.Builtin == "fmaxf" {
			op = opMaxF
		}
		d := lo.tempF()
		lo.emit(instr{op: op, a: d.reg, b: a.reg, c: b.reg, alu: 1})
		return d
	case "fabsf", "floorf", "ceilf":
		v := lo.rawToF(args[0], at(0))
		var op bcOp
		switch x.Builtin {
		case "fabsf":
			op = opFAbsF
		case "floorf":
			op = opFloor
		default:
			op = opCeil
		}
		d := lo.tempF()
		lo.emit(instr{op: op, a: d.reg, b: v.reg, alu: 1})
		return d
	case "sqrtf", "rsqrtf", "expf", "logf", "sinf", "cosf":
		v := lo.rawToF(args[0], at(0))
		d := lo.tempF()
		lo.emit(instr{op: specialOps[x.Builtin], a: d.reg, b: v.reg})
		return d
	case "powf":
		a, b := lo.rawToF(args[0], at(0)), lo.rawToF(args[1], at(1))
		d := lo.tempF()
		lo.emit(instr{op: opPow, a: d.reg, b: a.reg, c: b.reg})
		return d
	}
	lo.abort("unimplemented builtin")
	return loc{}
}
