package minicuda

// AST node definitions. The parser produces these; the semantic pass
// annotates them in place (resolved symbols, slot indices, computed
// types); the interpreter walks them directly.

import (
	"sync"
	"unsafe"
)

// Node is the common interface of AST nodes, carrying a source token for
// diagnostics.
type Node interface {
	Tok() Token
}

// ---- Expressions -----------------------------------------------------------

// Expr is an expression node. Type is filled in by the semantic pass.
type Expr interface {
	Node
	ResultType() *Type
}

type exprBase struct {
	tok Token
	typ *Type
}

func (e *exprBase) Tok() Token        { return e.tok }
func (e *exprBase) ResultType() *Type { return e.typ }

// IntLit is an integer literal. val is the boxed runtime value, computed
// once by sema so the interpreter's hot path returns it without re-boxing.
type IntLit struct {
	exprBase
	Val int64
	val Value
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Val float64
	val Value
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Val bool
	val Value
}

// VarRef is a resolved reference to a declared name.
type VarRef struct {
	exprBase
	Name string
	Sym  *Symbol // filled by sema
}

// BuiltinVarRef is threadIdx/blockIdx/blockDim/gridDim member access, e.g.
// threadIdx.x. Dim is 0, 1, or 2 for .x, .y, .z. baseID is the Base string
// resolved to a small index by sema so the interpreter's hot path avoids
// string comparison.
type BuiltinVarRef struct {
	exprBase
	Base   string // "threadIdx", ...
	Dim    int
	baseID uint8
}

// Base indices for BuiltinVarRef.baseID.
const (
	baseThreadIdx uint8 = iota
	baseBlockIdx
	baseBlockDim
	baseGridDim
)

// Unary is a prefix unary operation: + - ! ~ * (deref) & (addr) ++ --.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	exprBase
	Op string
	X  Expr
}

// Binary is a binary arithmetic/logical/comparison operation.
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is an assignment or compound assignment; Op is "=", "+=", etc.
type Assign struct {
	exprBase
	Op   string
	L, R Expr
}

// Ternary is cond ? a : b.
type Ternary struct {
	exprBase
	Cond, Then, Else Expr
}

// Index is a subscript expression base[idx].
type Index struct {
	exprBase
	Base Expr
	Idx  Expr
}

// Call is a function call; resolved to either a user function or a builtin
// by sema.
type Call struct {
	exprBase
	Name    string
	Args    []Expr
	Fn      *Function // user device function, or nil
	Builtin string    // builtin name, or ""
}

// Cast is an explicit C-style cast.
type Cast struct {
	exprBase
	To *Type
	X  Expr
}

// ---- Statements ------------------------------------------------------------

// Stmt is a statement node.
type Stmt interface{ Node }

type stmtBase struct{ tok Token }

func (s *stmtBase) Tok() Token { return s.tok }

// Block is { ... }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares one or more local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// VarDecl is a single declarator within a declaration.
type VarDecl struct {
	Name   string
	Type   *Type
	Init   Expr    // may be nil
	Shared bool    // declared __shared__ (or OpenCL __local)
	Sym    *Symbol // filled by sema
	tok    Token
}

// Tok returns the declarator's token.
func (d *VarDecl) Tok() Token { return d.tok }

// ExprStmt is an expression evaluated for side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	stmtBase
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
}

// WhileStmt is while or do-while (DoFirst).
type WhileStmt struct {
	stmtBase
	Cond    Expr
	Body    Stmt
	DoFirst bool
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	stmtBase
	X Expr // may be nil
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ stmtBase }

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{ stmtBase }

// ---- Declarations ----------------------------------------------------------

// SymKind classifies a resolved symbol.
type SymKind int

// Symbol kinds.
const (
	SymLocal  SymKind = iota // function local or parameter: a frame slot
	SymShared                // __shared__ variable: offset in the block arena
	SymConst                 // __constant__ variable: offset in constant memory
)

// Symbol is a resolved variable.
type Symbol struct {
	Name  string
	Kind  SymKind
	Type  *Type
	Slot  int // SymLocal: frame slot index
	Off   int // SymShared/SymConst: byte offset
	IsArg bool
}

// Function is a parsed (and after sema, resolved) function.
type Function struct {
	Name     string
	Ret      *Type
	Params   []*VarDecl
	Body     *Block
	IsKernel bool
	tok      Token

	// Filled by sema:
	NumSlots  int
	SharedUse int       // bytes of static __shared__ declared in this kernel
	Syms      []*Symbol // all locals, for debugging
}

// Tok returns the function's declaration token.
func (f *Function) Tok() Token { return f.tok }

// GlobalVar is a file-scope __constant__ (or const) variable.
type GlobalVar struct {
	Decl *VarDecl
	Qual string // "__constant__"
}

// Program is a parsed translation unit.
type Program struct {
	Funcs   []*Function
	Globals []*GlobalVar
	Dialect Dialect

	kernels     map[string]*Function
	functions   map[string]*Function
	constVars   map[string]*Symbol
	constSize   int
	usesBarrier bool

	// Lowered bytecode artifact (nil when some construct could not be
	// lowered and launches fall back to the tree-walking interpreter).
	bcOnce sync.Once
	bc     *bytecodeProgram

	// Fused warp-execution artifact derived from the bytecode (nil when
	// the program has no bytecode).
	wpOnce sync.Once
	wp     *warpProgram
}

// bytecode returns the program's lowered bytecode artifact, building it on
// first use. A nil result means the tree-walking interpreter is used.
func (p *Program) bytecode() *bytecodeProgram {
	p.bcOnce.Do(func() {
		p.bc, _ = lowerProgram(p)
	})
	return p.bc
}

// warpcode returns the program's fused warp-execution artifact, building
// it from the bytecode on first use. A nil result means warp launches
// fall back to the per-thread VM (or the tree walker).
func (p *Program) warpcode() *warpProgram {
	p.wpOnce.Do(func() {
		if bc := p.bytecode(); bc != nil {
			p.wp = buildWarpProgram(bc)
		}
	})
	return p.wp
}

// ArtifactKind reports which executable artifact a default launch of this
// program uses: "bytecode-warp" for the warp engine, "bytecode" for the
// per-thread register VM, "ast" for the tree walker.
func (p *Program) ArtifactKind() string {
	switch defaultEngine() {
	case EngineTree:
		return "ast"
	case EngineVM:
		if p.bytecode() != nil {
			return "bytecode"
		}
		return "ast"
	default:
		if p.warpcode() != nil {
			return "bytecode-warp"
		}
		if p.bytecode() != nil {
			return "bytecode"
		}
		return "ast"
	}
}

// InstructionCount reports the number of VM instructions in the lowered
// bytecode, or 0 when the program has no bytecode artifact.
func (p *Program) InstructionCount() int {
	if bc := p.bytecode(); bc != nil {
		return len(bc.code)
	}
	return 0
}

// BytecodeBytes estimates the in-memory size of the bytecode artifact.
func (p *Program) BytecodeBytes() int {
	bc := p.bytecode()
	if bc == nil {
		return 0
	}
	return len(bc.code) * int(unsafe.Sizeof(instr{}))
}

// UsesBarrier reports whether any function in the program calls
// __syncthreads (or OpenCL barrier); barrier-free programs launch on the
// simulator's faster serial-thread path.
func (p *Program) UsesBarrier() bool { return p.usesBarrier }

// Kernel returns the kernel function with the given name, or nil.
func (p *Program) Kernel(name string) *Function {
	return p.kernels[name]
}

// Kernels lists the kernel names defined by the program.
func (p *Program) Kernels() []string {
	var names []string
	for _, f := range p.Funcs {
		if f.IsKernel {
			names = append(names, f.Name)
		}
	}
	return names
}

// ConstSize returns the bytes of __constant__ memory the program declares.
func (p *Program) ConstSize() int { return p.constSize }

// ConstOffset returns the constant-memory byte offset of a __constant__
// variable, for host-side CopyToConst.
func (p *Program) ConstOffset(name string) (int, bool) {
	s, ok := p.constVars[name]
	if !ok {
		return 0, false
	}
	return s.Off, true
}

// Dialect selects the accepted language variant.
type Dialect int

// Dialects.
const (
	DialectCUDA Dialect = iota
	DialectOpenCL
)

func (d Dialect) String() string {
	switch d {
	case DialectOpenCL:
		return "OpenCL"
	case DialectOpenACC:
		return "OpenACC"
	}
	return "CUDA"
}
