package minicuda

// Warp engine: executes the lowered bytecode once per *warp* instead of
// once per thread. Each instruction is fetched and dispatched a single
// time, then applied across all active lanes of a strand through the
// struct-of-arrays register banks in warpstate.go. Divergence is handled
// by strand splitting: a non-uniform branch partitions the active lanes
// into two strands, and the scheduler (min-pc first) naturally brings
// split strands back together at the join point, where strands with
// identical control state merge. A fully-uniform branch never splits and
// stays a single jump, so convergent code pays no divergence tax.
//
// On top of the plain stream, buildWarpProgram fuses adjacent instruction
// pairs matching the idioms course kernels are made of (multiply-add,
// indexed load/store, compare-and-branch, increment-and-loop) into
// superinstructions executed with one dispatch, one budget check, and one
// batched ALU charge.
//
// Parity contract (enforced by the three-way oracle in diff_test.go):
// results, LaunchStats, and error strings match the tree walker and the
// register VM exactly for race-free kernels. Compute charges (ALU,
// special, branch, barrier) are batched per warp — only block-level sums
// are observable. Memory accesses are NEVER batched: each goes through
// the owning lane's ThreadCtx in ascending lane order, so gpusim's
// warp-synchronous coalescing model sees per-thread event logs identical
// to the per-thread engines. Step budgets are per-lane exact: a strand
// carries a shared counter plus per-lane offsets (rebased on merge), and
// fused superinstructions fall back to component-at-a-time replay when a
// budget trap could fire inside them. For single-lane launches the warp
// engine is instruction-for-instruction identical to the VM, including
// trap points; for multi-lane launches that trap mid-kernel, the set of
// partially-executed threads may differ from the serial engines (lockstep
// lanes run together), exactly as concurrent per-thread execution already
// differs from serial.

import (
	"math"

	"webgpu/internal/gpusim"
)

// maxWarpLanes bounds the lane count the warp engine supports (lane masks
// and scratch assume it); devices with wider warps fall back to the VM.
const maxWarpLanes = 64

// wOp tags a winstr with its fusion kind.
type wOp uint8

const (
	wPlain    wOp = iota // execute in alone
	wFMA                 // opMulF ; opAddF
	wLoadIdx             // opPAdd ; opLoad   (load through the just-formed pointer)
	wStoreIdx            // opPAdd ; opStoreI/opStoreF
	wCmpJZ               // opCmpI/U/F ; opJZ/opJNZ on the compare result
	wAddKJmp             // opAddKI ; opJmp   (loop-counter increment + back edge)
)

// winstr is one warp instruction: a bytecode instruction, or a fused pair.
// Charges are lifted out of the component instrs so the fast path applies
// them in one batch; the components keep their own copies for the
// near-budget replay path.
type winstr struct {
	fuse wOp
	// dead marks a fused pair whose intermediate register (the first
	// component's destination) is read by nothing in the program except the
	// second component: the fast path then skips materializing it. Registers
	// are never observable outside instruction reads, so the skip is exact.
	dead           bool
	alu1, alu2     uint8
	steps1, steps2 uint16
	in, in2        instr
}

// warpProgram is the warp-execution artifact derived from a lowered
// bytecodeProgram: the fused instruction stream plus pc-remapped entry
// points. It is immutable after construction and shared across launches.
type warpProgram struct {
	bc        *bytecodeProgram
	code      []winstr
	entry     map[*bcFunc]int32
	callEntry []int32 // per bc.calls index: fused-stream entry pc of the target
}

// fuseKind reports the superinstruction formed by the adjacent pair (a, b),
// or wPlain. Fused execution preserves every register write of both
// components, so the only legality conditions are the dataflow the fused
// executor assumes (the second op consuming the first's destination where
// the pattern requires it).
func fuseKind(a, b *instr) wOp {
	switch a.op {
	case opMulF:
		if b.op == opAddF {
			return wFMA
		}
	case opPAdd:
		switch b.op {
		case opLoad:
			if b.b == a.a {
				return wLoadIdx
			}
		case opStoreI, opStoreF:
			if b.b == a.a {
				return wStoreIdx
			}
		}
	case opCmpI, opCmpU, opCmpF:
		if (b.op == opJZ || b.op == opJNZ) && b.kind == bankI && b.b == a.a {
			return wCmpJZ
		}
	case opAddKI:
		if b.op == opJmp {
			return wAddKJmp
		}
	}
	return wPlain
}

// countReads scans every instruction of the program and counts how many
// static sites read each (window-relative) register number, per bank. The
// count is pooled across functions (registers of different functions that
// share a number alias in the count), which only costs missed dead-temp
// opportunities, never correctness.
func countReads(bc *bytecodeProgram) (readsI, readsF, readsP []int32) {
	var maxI, maxF, maxP int32
	for _, f := range bc.funcs {
		maxI, maxF, maxP = max(maxI, f.numI), max(maxF, f.numF), max(maxP, f.numP)
	}
	readsI = make([]int32, maxI)
	readsF = make([]int32, maxF)
	readsP = make([]int32, maxP)
	mark := func(bank uint8, reg int32) {
		switch bank {
		case bankI:
			readsI[reg]++
		case bankF:
			readsF[reg]++
		case bankP:
			readsP[reg]++
		}
	}
	for i := range bc.code {
		in := &bc.code[i]
		switch in.op {
		case opMovI, opTruncI, opNegI, opNotI, opAddKI, opAbsI, opLNotI,
			opTruthyI, opI2F, opI2FRaw, opWorkItem:
			mark(bankI, in.b)
		case opAddI, opSubI, opMulI, opDivI, opModI, opDivU, opModU,
			opAndI, opOrI, opXorI, opShlI, opShrI, opShrU,
			opMinI, opMaxI, opCmpI, opCmpU:
			mark(bankI, in.b)
			mark(bankI, in.c)
		case opMovF, opNegF, opAddKF, opFAbsF, opFloor, opCeil, opSqrt,
			opRsqrt, opExp, opLog, opSin, opCos, opF2F, opF2I, opF2IRaw,
			opLNotF, opTruthyF:
			mark(bankF, in.b)
		case opAddF, opSubF, opMulF, opDivF, opMinF, opMaxF, opPow, opCmpF:
			mark(bankF, in.b)
			mark(bankF, in.c)
		case opMovP, opPAddK, opLNotP, opTruthyP, opLoad:
			mark(bankP, in.b)
		case opCmpP, opPDiff:
			mark(bankP, in.b)
			mark(bankP, in.c)
		case opPAdd:
			mark(bankP, in.b)
			mark(bankI, in.c)
		case opStoreI:
			mark(bankP, in.b)
			mark(bankI, in.c)
		case opStoreF:
			mark(bankP, in.b)
			mark(bankF, in.c)
		case opStoreP:
			mark(bankP, in.b)
			mark(bankP, in.c)
		case opJZ, opJNZ, opRet:
			if in.kind != bankNone {
				mark(in.kind, in.b)
			}
		case opCall:
			for _, m := range bc.calls[in.aux].moves {
				mark(m.bank, m.src)
			}
		case opAtomic:
			spec := bc.atomics[in.aux]
			mark(bankP, in.b)
			if atomFloatVal(spec) {
				mark(bankF, in.c)
			} else {
				mark(bankI, in.c)
			}
			if spec.name == "atomicCAS" {
				mark(bankI, spec.val2)
			}
		}
	}
	return readsI, readsF, readsP
}

// buildWarpProgram lowers a bytecode program into the fused warp stream.
// Fusion never crosses an instruction that some jump, call return, or
// function entry can land on, so every control transfer still targets the
// start of a warp instruction; jump targets are remapped afterwards.
func buildWarpProgram(bc *bytecodeProgram) *warpProgram {
	n := len(bc.code)
	isTarget := make([]bool, n+1)
	for i := range bc.code {
		switch bc.code[i].op {
		case opJmp, opJZ, opJNZ:
			isTarget[bc.code[i].aux] = true
		case opCall:
			isTarget[i+1] = true // the call's return pc
		}
	}
	for _, f := range bc.funcs {
		isTarget[f.entry] = true
	}

	readsI, readsF, readsP := countReads(bc)
	old2new := make([]int32, n+1)
	code := make([]winstr, 0, n)
	// consumed counts, per register, the reads that are the adjacent
	// consuming read of a fused pair defining that register.
	consumedI := make([]int32, len(readsI))
	consumedF := make([]int32, len(readsF))
	consumedP := make([]int32, len(readsP))
	for i := 0; i < n; i++ {
		in := bc.code[i]
		w := winstr{fuse: wPlain, steps1: in.steps, alu1: in.alu, in: in}
		if i+1 < n && !isTarget[i+1] {
			if f := fuseKind(&bc.code[i], &bc.code[i+1]); f != wPlain {
				nx := bc.code[i+1]
				w.fuse, w.in2, w.steps2, w.alu2 = f, nx, nx.steps, nx.alu
				switch f {
				case wFMA:
					if nx.b == in.a {
						consumedF[in.a]++
					}
					if nx.c == in.a {
						consumedF[in.a]++
					}
				case wLoadIdx, wStoreIdx:
					consumedP[in.a]++
				case wCmpJZ:
					consumedI[in.a]++
				}
			}
		}
		old2new[i] = int32(len(code))
		code = append(code, w)
		if w.fuse != wPlain {
			old2new[i+1] = int32(len(code)) // never a target; keep monotone
			i++
		}
	}
	old2new[n] = int32(len(code))
	// A fused pair's intermediate is dead when every read of its register
	// anywhere in the program is the consuming read of some fused pair
	// defining it: then each dynamic instance's only observer is its own
	// adjacent consumer, and the fast path may skip materializing it.
	for i := range code {
		w := &code[i]
		switch w.fuse {
		case wFMA:
			w.dead = readsF[w.in.a] == consumedF[w.in.a]
		case wLoadIdx, wStoreIdx:
			w.dead = readsP[w.in.a] == consumedP[w.in.a]
		case wCmpJZ:
			w.dead = readsI[w.in.a] == consumedI[w.in.a]
		}
	}

	for i := range code {
		w := &code[i]
		switch {
		case w.fuse == wPlain && (w.in.op == opJmp || w.in.op == opJZ || w.in.op == opJNZ):
			w.in.aux = old2new[w.in.aux]
		case w.fuse == wCmpJZ || w.fuse == wAddKJmp:
			w.in2.aux = old2new[w.in2.aux]
		}
	}
	entry := make(map[*bcFunc]int32, len(bc.funcs))
	for _, f := range bc.funcs {
		entry[f] = old2new[f.entry]
	}
	callEntry := make([]int32, len(bc.calls))
	for i, cs := range bc.calls {
		callEntry[i] = entry[cs.target]
	}
	return &warpProgram{bc: bc, code: code, entry: entry, callEntry: callEntry}
}

// Strand control outcomes of executing an instruction / running a strand.
const (
	ctlNone  uint8 = iota
	ctlYield       // reached the scheduler watermark (merge opportunity)
	ctlSplit       // divergent branch: wx.split holds the taken-side strand
	ctlSync        // parked at a barrier; s.gen holds the generation token
	ctlExit        // the strand's lanes returned from the kernel
)

// warpExec is the per-run execution context of one warp.
type warpExec struct {
	wp       *warpProgram
	ws       *warpState
	wc       *gpusim.WarpCtx
	bound    []Value
	maxSteps int64

	split            *strand // strand produced by a divergent branch
	jumpBuf, stayBuf []int32 // branch partition scratch
}

// run executes kernel kfn across one warp.
func (wp *warpProgram) run(wc *gpusim.WarpCtx, kfn *bcFunc, bound []Value, maxSteps int64) error {
	ws := warpStatePool.Get().(*warpState)
	ws.init(wc)
	wx := &warpExec{wp: wp, ws: ws, wc: wc, bound: bound, maxSteps: maxSteps}
	err := wx.run(kfn)
	ws.flush()
	warpStatePool.Put(ws)
	return err
}

func (wx *warpExec) run(kfn *bcFunc) error {
	ws, wc := wx.ws, wx.wc
	W := ws.W
	ws.ints = grow(ws.ints, int(kfn.numI)*W)
	ws.floats = grow(ws.floats, int(kfn.numF)*W)
	ws.ptrs = grow(ws.ptrs, int(kfn.numP)*W)
	for i, p := range kfn.params {
		v := wx.bound[i]
		col := int(p.reg) * W
		switch p.bank {
		case bankI:
			for l := 0; l < W; l++ {
				ws.ints[col+l] = v.I
			}
		case bankF:
			for l := 0; l < W; l++ {
				ws.floats[col+l] = v.F
			}
		default:
			for l := 0; l < W; l++ {
				ws.ptrs[col+l] = v.P
			}
		}
	}

	root := ws.newStrand()
	root.fn = kfn
	root.pc = wx.wp.entry[kfn]
	for l := 0; l < W; l++ {
		root.lanes = append(root.lanes, int32(l))
		root.base[l] = 0
	}

	runnable := []*strand{root}
	var waiting []*strand
	for {
		// Unpark strands whose barrier released (possibly by our own
		// arrivals or lane exits).
		if len(waiting) > 0 {
			kept := waiting[:0]
			for _, s := range waiting {
				rel, err := wc.SyncPoll(s.gen)
				if err != nil {
					return err
				}
				if rel {
					runnable = append(runnable, s)
				} else {
					kept = append(kept, s)
				}
			}
			waiting = kept
		}
		if len(runnable) == 0 {
			if len(waiting) == 0 {
				return nil // every lane exited
			}
			// The whole warp is parked: progress depends on other warps.
			gmin := waiting[0].gen
			for _, s := range waiting[1:] {
				if s.gen < gmin {
					gmin = s.gen
				}
			}
			if err := wc.SyncWait(gmin); err != nil {
				return err
			}
			continue
		}

		// Pick the min-pc strand (ties by first lane, for determinism) and
		// merge every strand that reconverged with it.
		si := 0
		for i := 1; i < len(runnable); i++ {
			s, b := runnable[i], runnable[si]
			if s.pc < b.pc || (s.pc == b.pc && s.lanes[0] < b.lanes[0]) {
				si = i
			}
		}
		s := runnable[si]
		for i := len(runnable) - 1; i >= 0; i-- {
			if runnable[i] != s && sameFrame(s, runnable[i]) {
				ws.mergeInto(s, runnable[i])
				runnable[i] = runnable[len(runnable)-1]
				runnable = runnable[:len(runnable)-1]
			}
		}
		// Watermark: the next parked pc ahead of s. Running past it would
		// skip a merge opportunity, so the strand yields there.
		watermark := int32(math.MaxInt32)
		for _, o := range runnable {
			if o != s && o.pc > s.pc && o.pc < watermark {
				watermark = o.pc
			}
		}

		ctl, err := wx.runStrand(s, watermark)
		if err != nil {
			return err
		}
		switch ctl {
		case ctlSplit:
			runnable = append(runnable, wx.split)
			wx.split = nil
		case ctlSync:
			runnable = removeStrand(runnable, s)
			waiting = append(waiting, s)
		case ctlExit:
			wc.ExitLanes(len(s.lanes))
			runnable = removeStrand(runnable, s)
			ws.freeStrand(s)
		}
	}
}

func removeStrand(list []*strand, s *strand) []*strand {
	for i, o := range list {
		if o == s {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// runStrand executes s until it yields: watermark reached, divergent
// split, barrier park, kernel return, or a trap (returned as the error).
func (wx *warpExec) runStrand(s *strand, watermark int32) (uint8, error) {
	ws := wx.ws
	code := wx.wp.code
	maxSteps := wx.maxSteps
	for {
		if s.pc >= watermark {
			return ctlYield, nil
		}
		w := &code[s.pc]
		s.pc++
		if w.fuse == wPlain {
			if w.steps1 != 0 {
				s.steps += int64(w.steps1)
				if s.steps+s.maxBase > maxSteps {
					return 0, ErrStepLimit
				}
			}
			if w.alu1 != 0 {
				ws.acc.alu += int64(w.alu1) * int64(len(s.lanes))
			}
			ctl, err := wx.execInstr(s, &w.in)
			if err != nil {
				return 0, err
			}
			if ctl != ctlNone {
				return ctl, nil
			}
			continue
		}
		// Fused pair: when no budget trap can fire inside, charge both
		// components at once and run the combined fast path.
		total := int64(w.steps1) + int64(w.steps2)
		if s.steps+total+s.maxBase <= maxSteps {
			s.steps += total
			if a := int64(w.alu1) + int64(w.alu2); a != 0 {
				ws.acc.alu += a * int64(len(s.lanes))
			}
			ctl, err := wx.execFused(s, w)
			if err != nil {
				return 0, err
			}
			if ctl != ctlNone {
				return ctl, nil
			}
			continue
		}
		// Near the budget: replay the components one at a time so the trap
		// fires between the same two effects as the per-thread engines.
		if w.steps1 != 0 {
			s.steps += int64(w.steps1)
			if s.steps+s.maxBase > maxSteps {
				return 0, ErrStepLimit
			}
		}
		if w.alu1 != 0 {
			ws.acc.alu += int64(w.alu1) * int64(len(s.lanes))
		}
		if _, err := wx.execInstr(s, &w.in); err != nil {
			return 0, err
		}
		if w.steps2 != 0 {
			s.steps += int64(w.steps2)
			if s.steps+s.maxBase > maxSteps {
				return 0, ErrStepLimit
			}
		}
		if w.alu2 != 0 {
			ws.acc.alu += int64(w.alu2) * int64(len(s.lanes))
		}
		ctl, err := wx.execInstr(s, &w.in2)
		if err != nil {
			return 0, err
		}
		if ctl != ctlNone {
			return ctl, nil
		}
	}
}

// execFused runs a fused pair's combined fast path. Both components'
// register writes are preserved, so fusion is observationally identical
// to the unfused sequence.
func (wx *warpExec) execFused(s *strand, w *winstr) (uint8, error) {
	ws := wx.ws
	W := ws.W
	switch w.fuse {
	case wFMA:
		floats := ws.floats
		mb := int(s.bF+w.in.b) * W
		mc := int(s.bF+w.in.c) * W
		da := int(s.bF+w.in2.a) * W
		xb := int(s.bF+w.in2.b) * W
		yc := int(s.bF+w.in2.c) * W
		if w.dead {
			aliasB := w.in2.b == w.in.a
			aliasC := w.in2.c == w.in.a
			for _, l := range s.lanes {
				li := int(l)
				m := round32(floats[mb+li] * floats[mc+li])
				x, y := floats[xb+li], floats[yc+li]
				if aliasB {
					x = m
				}
				if aliasC {
					y = m
				}
				floats[da+li] = round32(x + y)
			}
			return ctlNone, nil
		}
		ta := int(s.bF+w.in.a) * W
		for _, l := range s.lanes {
			li := int(l)
			floats[ta+li] = round32(floats[mb+li] * floats[mc+li])
			floats[da+li] = round32(floats[xb+li] + floats[yc+li])
		}
		return ctlNone, nil
	case wLoadIdx:
		if w.dead {
			return wx.loadIdxFast(s, w)
		}
		ptrs := ws.ptrs
		pa := int(s.bP+w.in.a) * W
		pb := int(s.bP+w.in.b) * W
		ic := int(s.bI+w.in.c) * W
		ints := ws.ints
		for _, l := range s.lanes {
			li := int(l)
			p := ptrs[pb+li].offset(int(ints[ic+li]) * int(w.in.k))
			ptrs[pa+li] = p
			if err := wx.loadLane(s, &w.in2, li, p); err != nil {
				return 0, err
			}
		}
		return ctlNone, nil
	case wStoreIdx:
		if w.dead {
			return wx.storeIdxFast(s, w)
		}
		ptrs := ws.ptrs
		pa := int(s.bP+w.in.a) * W
		pb := int(s.bP+w.in.b) * W
		ic := int(s.bI+w.in.c) * W
		ints := ws.ints
		for _, l := range s.lanes {
			li := int(l)
			p := ptrs[pb+li].offset(int(ints[ic+li]) * int(w.in.k))
			ptrs[pa+li] = p
			if err := wx.storeLane(s, &w.in2, li, p); err != nil {
				return 0, err
			}
		}
		return ctlNone, nil
	case wCmpJZ:
		if w.dead {
			return wx.cmpJZFast(s, w)
		}
		if _, err := wx.execInstr(s, &w.in); err != nil {
			return 0, err
		}
		return wx.execInstr(s, &w.in2)
	default: // wAddKJmp: charge batching is the win; reuse the plain ops
		if _, err := wx.execInstr(s, &w.in); err != nil {
			return 0, err
		}
		return wx.execInstr(s, &w.in2)
	}
}

// loadIdxFast is the dead-temp path of a fused indexed load: the formed
// pointer is consumed only by this load, so it is never materialized —
// the lane's address arithmetic feeds the ThreadCtx entry point directly.
// Dispatch mirrors loadLane (and so vm.go's opLoad fast paths) exactly.
func (wx *warpExec) loadIdxFast(s *strand, w *winstr) (uint8, error) {
	ws := wx.ws
	W := ws.W
	ptrs, ints, floats := ws.ptrs, ws.ints, ws.floats
	pb := int(s.bP+w.in.b) * W
	ic := int(s.bI+w.in.c) * W
	elem := int(w.in.k)
	in2 := &w.in2
	switch {
	case in2.kind == bankF && in2.t.Kind == KFloat:
		da := int(s.bF+in2.a) * W
		for _, l := range s.lanes {
			li := int(l)
			bp := &ptrs[pb+li]
			off := int(ints[ic+li]) * elem
			switch bp.Space {
			case SpaceShared:
				f, err := ws.lanes[li].SharedLoadFloat32((bp.Off + off) / 4)
				if err != nil {
					return 0, err
				}
				floats[da+li] = float64(f)
			case SpaceGlobal:
				f, err := ws.lanes[li].LoadFloat32(bp.Glob.Offset(off), 0)
				if err != nil {
					return 0, err
				}
				floats[da+li] = float64(f)
			default:
				if err := wx.loadLane(s, in2, li, bp.offset(off)); err != nil {
					return 0, err
				}
			}
		}
	case in2.kind == bankI && in2.t.Kind != KFloat:
		size4 := in2.t.Size() == 4
		da := int(s.bI+in2.a) * W
		for _, l := range s.lanes {
			li := int(l)
			bp := &ptrs[pb+li]
			off := int(ints[ic+li]) * elem
			switch {
			case bp.Space == SpaceShared:
				iv, err := ws.lanes[li].SharedLoadInt32((bp.Off + off) / 4)
				if err != nil {
					return 0, err
				}
				ints[da+li] = truncInt(in2.t, int64(iv))
			case bp.Space == SpaceGlobal && size4:
				iv, err := ws.lanes[li].LoadInt32(bp.Glob.Offset(off), 0)
				if err != nil {
					return 0, err
				}
				ints[da+li] = truncInt(in2.t, int64(iv))
			default:
				if err := wx.loadLane(s, in2, li, bp.offset(off)); err != nil {
					return 0, err
				}
			}
		}
	default:
		for _, l := range s.lanes {
			li := int(l)
			bp := &ptrs[pb+li]
			if err := wx.loadLane(s, in2, li, bp.offset(int(ints[ic+li])*elem)); err != nil {
				return 0, err
			}
		}
	}
	return ctlNone, nil
}

// storeIdxFast is the dead-temp path of a fused indexed store, the mirror
// of loadIdxFast for opStoreI/opStoreF.
func (wx *warpExec) storeIdxFast(s *strand, w *winstr) (uint8, error) {
	ws := wx.ws
	W := ws.W
	ptrs, ints, floats := ws.ptrs, ws.ints, ws.floats
	pb := int(s.bP+w.in.b) * W
	ic := int(s.bI+w.in.c) * W
	elem := int(w.in.k)
	in2 := &w.in2
	switch {
	case in2.op == opStoreF && in2.t.Kind == KFloat:
		vc := int(s.bF+in2.c) * W
		for _, l := range s.lanes {
			li := int(l)
			bp := &ptrs[pb+li]
			off := int(ints[ic+li]) * elem
			fv := float32(floats[vc+li])
			switch bp.Space {
			case SpaceShared:
				if err := ws.lanes[li].SharedStoreFloat32((bp.Off+off)/4, fv); err != nil {
					return 0, err
				}
			case SpaceGlobal:
				if err := ws.lanes[li].StoreFloat32(bp.Glob.Offset(off), 0, fv); err != nil {
					return 0, err
				}
			default:
				if err := wx.storeLane(s, in2, li, bp.offset(off)); err != nil {
					return 0, err
				}
			}
		}
	case in2.op == opStoreI && in2.t.Kind != KFloat:
		size4 := in2.t.Size() == 4
		vc := int(s.bI+in2.c) * W
		for _, l := range s.lanes {
			li := int(l)
			bp := &ptrs[pb+li]
			off := int(ints[ic+li]) * elem
			iv := int32(ints[vc+li])
			switch {
			case bp.Space == SpaceShared:
				if err := ws.lanes[li].SharedStoreInt32((bp.Off+off)/4, iv); err != nil {
					return 0, err
				}
			case bp.Space == SpaceGlobal && size4:
				if err := ws.lanes[li].StoreInt32(bp.Glob.Offset(off), 0, iv); err != nil {
					return 0, err
				}
			default:
				if err := wx.storeLane(s, in2, li, bp.offset(off)); err != nil {
					return 0, err
				}
			}
		}
	default:
		for _, l := range s.lanes {
			li := int(l)
			bp := &ptrs[pb+li]
			if err := wx.storeLane(s, in2, li, bp.offset(int(ints[ic+li])*elem)); err != nil {
				return 0, err
			}
		}
	}
	return ctlNone, nil
}

// cmpJZFast is the dead-temp path of a fused compare-and-branch: the
// compare result register is consumed only by the jump, so each lane's
// branch direction is computed directly from the compared operands.
func (wx *warpExec) cmpJZFast(s *strand, w *winstr) (uint8, error) {
	ws := wx.ws
	W := ws.W
	ints, floats := ws.ints, ws.floats
	lanes := s.lanes
	ws.acc.branches += int64(len(lanes))
	wantTaken := w.in2.op == opJNZ
	jb, sb := wx.jumpBuf[:0], wx.stayBuf[:0]
	switch w.in.op {
	case opCmpI:
		b, c := int(s.bI+w.in.b)*W, int(s.bI+w.in.c)*W
		for _, l := range lanes {
			if (cmpIRes(w.in.aux, ints[b+int(l)], ints[c+int(l)]) != 0) == wantTaken {
				jb = append(jb, l)
			} else {
				sb = append(sb, l)
			}
		}
	case opCmpU:
		b, c := int(s.bI+w.in.b)*W, int(s.bI+w.in.c)*W
		for _, l := range lanes {
			if (cmpURes(w.in.aux, uint32(ints[b+int(l)]), uint32(ints[c+int(l)])) != 0) == wantTaken {
				jb = append(jb, l)
			} else {
				sb = append(sb, l)
			}
		}
	default: // opCmpF
		b, c := int(s.bF+w.in.b)*W, int(s.bF+w.in.c)*W
		for _, l := range lanes {
			if (cmpFRes(w.in.aux, floats[b+int(l)], floats[c+int(l)]) != 0) == wantTaken {
				jb = append(jb, l)
			} else {
				sb = append(sb, l)
			}
		}
	}
	wx.jumpBuf, wx.stayBuf = jb, sb
	return wx.finishBranch(s, w.in2.aux)
}

// finishBranch resolves a branch whose lanes have been partitioned into
// wx.jumpBuf (taken) and wx.stayBuf (fall-through). A uniform branch is a
// plain jump; a divergent one splits the strand: the fall-through lanes
// stay in s and the taken lanes continue in a fresh strand at target.
func (wx *warpExec) finishBranch(s *strand, target int32) (uint8, error) {
	jb, sb := wx.jumpBuf, wx.stayBuf
	if len(sb) == 0 { // uniform taken
		s.pc = target
		return ctlNone, nil
	}
	if len(jb) == 0 { // uniform not-taken
		return ctlNone, nil
	}
	ws := wx.ws
	ns := ws.newStrand()
	ns.pc = target
	ns.fn, ns.bI, ns.bF, ns.bP, ns.depth = s.fn, s.bI, s.bF, s.bP, s.depth
	ns.stack = append(ns.stack[:0], s.stack...)
	ns.steps = s.steps
	for _, l := range jb {
		ns.base[l] = s.base[l]
	}
	ns.lanes = append(ns.lanes[:0], jb...)
	ns.recomputeMaxBase()
	s.lanes = append(s.lanes[:0], sb...)
	s.recomputeMaxBase()
	wx.split = ns
	return ctlSplit, nil
}

// loadLane performs opLoad's per-lane effect with pointer p, mirroring the
// VM's fast paths exactly (vm.go opLoad).
func (wx *warpExec) loadLane(s *strand, in *instr, li int, p Pointer) error {
	ws := wx.ws
	W := ws.W
	tc := ws.lanes[li]
	if in.kind == bankF && in.t.Kind == KFloat {
		if p.Space == SpaceGlobal {
			f, err := tc.LoadFloat32(p.Glob, 0)
			if err != nil {
				return err
			}
			ws.floats[int(s.bF+in.a)*W+li] = float64(f)
			return nil
		}
		if p.Space == SpaceShared {
			f, err := tc.SharedLoadFloat32(p.Off / 4)
			if err != nil {
				return err
			}
			ws.floats[int(s.bF+in.a)*W+li] = float64(f)
			return nil
		}
	} else if in.kind == bankI && in.t.Kind != KFloat {
		if p.Space == SpaceGlobal && in.t.Size() == 4 {
			i, err := tc.LoadInt32(p.Glob, 0)
			if err != nil {
				return err
			}
			ws.ints[int(s.bI+in.a)*W+li] = truncInt(in.t, int64(i))
			return nil
		}
		if p.Space == SpaceShared {
			i, err := tc.SharedLoadInt32(p.Off / 4)
			if err != nil {
				return err
			}
			ws.ints[int(s.bI+in.a)*W+li] = truncInt(in.t, int64(i))
			return nil
		}
	}
	v, err := loadMem(tc, p, in.t)
	if err != nil {
		return err
	}
	switch in.kind {
	case bankI:
		ws.ints[int(s.bI+in.a)*W+li] = v.I
	case bankF:
		ws.floats[int(s.bF+in.a)*W+li] = v.F
	default:
		ws.ptrs[int(s.bP+in.a)*W+li] = v.P
	}
	return nil
}

// storeLane performs opStoreI/opStoreF's per-lane effect with pointer p,
// mirroring the VM's fast paths exactly.
func (wx *warpExec) storeLane(s *strand, in *instr, li int, p Pointer) error {
	ws := wx.ws
	W := ws.W
	tc := ws.lanes[li]
	if in.op == opStoreF {
		fv := ws.floats[int(s.bF+in.c)*W+li]
		if in.t.Kind == KFloat {
			if p.Space == SpaceGlobal {
				return tc.StoreFloat32(p.Glob, 0, float32(fv))
			}
			if p.Space == SpaceShared {
				return tc.SharedStoreFloat32(p.Off/4, float32(fv))
			}
		}
		return storeMem(tc, p, in.t, Value{T: in.t, F: fv})
	}
	iv := ws.ints[int(s.bI+in.c)*W+li]
	if in.t.Kind != KFloat {
		if p.Space == SpaceGlobal && in.t.Size() == 4 {
			return tc.StoreInt32(p.Glob, 0, int32(iv))
		}
		if p.Space == SpaceShared {
			return tc.SharedStoreInt32(p.Off/4, int32(iv))
		}
	}
	return storeMem(tc, p, in.t, Value{T: in.t, I: iv})
}

// execInstr applies one bytecode instruction across the active lanes of s.
// Step and ALU charges are the caller's responsibility; op-internal
// charges (special-function, branch, barrier) happen here, batched into
// the warp accumulator.
func (wx *warpExec) execInstr(s *strand, in *instr) (uint8, error) {
	ws := wx.ws
	W := ws.W
	ints, floats, ptrs := ws.ints, ws.floats, ws.ptrs
	lanes := s.lanes
	switch in.op {
	case opStep:
	case opLoadKI:
		a := int(s.bI+in.a) * W
		for _, l := range lanes {
			ints[a+int(l)] = in.k
		}
	case opLoadKF:
		a := int(s.bF+in.a) * W
		for _, l := range lanes {
			floats[a+int(l)] = in.f
		}
	case opMovI:
		a, b := int(s.bI+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			ints[a+int(l)] = ints[b+int(l)]
		}
	case opMovF:
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = floats[b+int(l)]
		}
	case opMovP:
		a, b := int(s.bP+in.a)*W, int(s.bP+in.b)*W
		for _, l := range lanes {
			ptrs[a+int(l)] = ptrs[b+int(l)]
		}
	case opZeroP:
		a := int(s.bP+in.a) * W
		for _, l := range lanes {
			ptrs[a+int(l)] = Pointer{}
		}
	case opLeaShared:
		a := int(s.bP+in.a) * W
		for _, l := range lanes {
			ptrs[a+int(l)] = Pointer{Space: SpaceShared, Off: int(in.k)}
		}
	case opLeaConst:
		a := int(s.bP+in.a) * W
		for _, l := range lanes {
			ptrs[a+int(l)] = Pointer{Space: SpaceConst, Off: int(in.k)}
		}
	case opAllocLocal:
		a := int(s.bP+in.a) * W
		t := in.t
		n := t.Size() / t.ElemBase().Size()
		for _, l := range lanes {
			buf := &localBuf{vals: make([]Value, n), elem: t.ElemBase()}
			for i := range buf.vals {
				buf.vals[i] = Value{T: buf.elem}
			}
			ptrs[a+int(l)] = Pointer{Space: SpaceLocal, Elem: t, Local: buf}
		}
	case opThreadDim:
		a := int(s.bI+in.a) * W
		for _, l := range lanes {
			ints[a+int(l)] = int64(ws.dims[l][in.aux])
		}
	case opWorkItem:
		a, b := int(s.bI+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			li := int(l)
			dim := ints[b+li]
			dims := &ws.dims[l]
			var v int
			switch in.aux {
			case wiGlobalID:
				v = dimPick(dims, 1, dim)*dimPick(dims, 2, dim) + dimPick(dims, 0, dim)
			case wiLocalID:
				v = dimPick(dims, 0, dim)
			case wiGroupID:
				v = dimPick(dims, 1, dim)
			case wiLocalSize:
				v = dimPick(dims, 2, dim)
			case wiNumGroups:
				v = dimPick(dims, 3, dim)
			case wiGlobalSize:
				v = dimPick(dims, 3, dim) * dimPick(dims, 2, dim)
			}
			ints[a+li] = int64(int32(v))
		}
	case opI2F:
		a, b := int(s.bF+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = float64(float32(ints[b+int(l)]))
		}
	case opI2FRaw:
		a, b := int(s.bF+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = float64(ints[b+int(l)])
		}
	case opF2I:
		a, b := int(s.bI+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, int64(floats[b+int(l)]))
		}
	case opF2IRaw:
		a, b := int(s.bI+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			ints[a+int(l)] = int64(floats[b+int(l)])
		}
	case opF2F:
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(floats[b+int(l)])
		}
	case opTruncI:
		a, b := int(s.bI+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)])
		}
	case opAddI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]+ints[c+int(l)])
		}
	case opSubI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]-ints[c+int(l)])
		}
	case opMulI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]*ints[c+int(l)])
		}
	case opDivI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			cv := ints[c+int(l)]
			if cv == 0 {
				return 0, ErrDivByZero
			}
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]/cv)
		}
	case opModI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			cv := ints[c+int(l)]
			if cv == 0 {
				return 0, ErrDivByZero
			}
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]%cv)
		}
	case opDivU:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			cv := uint32(ints[c+int(l)])
			if cv == 0 {
				return 0, ErrDivByZero
			}
			ints[a+int(l)] = truncInt(in.t, int64(uint32(ints[b+int(l)])/cv))
		}
	case opModU:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			cv := uint32(ints[c+int(l)])
			if cv == 0 {
				return 0, ErrDivByZero
			}
			ints[a+int(l)] = truncInt(in.t, int64(uint32(ints[b+int(l)])%cv))
		}
	case opAndI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]&ints[c+int(l)])
		}
	case opOrI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]|ints[c+int(l)])
		}
	case opXorI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]^ints[c+int(l)])
		}
	case opShlI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]<<(uint(ints[c+int(l)])&31))
		}
	case opShrI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, int64(int32(ints[b+int(l)])>>(uint(ints[c+int(l)])&31)))
		}
	case opShrU:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, int64(uint32(ints[b+int(l)])>>(uint(ints[c+int(l)])&31)))
		}
	case opNegI:
		a, b := int(s.bI+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, -ints[b+int(l)])
		}
	case opNotI:
		a, b := int(s.bI+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ^ints[b+int(l)])
		}
	case opAddKI:
		a, b := int(s.bI+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(in.t, ints[b+int(l)]+in.k)
		}
	case opMinI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			x, y := ints[b+int(l)], ints[c+int(l)]
			if y < x {
				x = y
			}
			ints[a+int(l)] = truncInt(in.t, x)
		}
	case opMaxI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			x, y := ints[b+int(l)], ints[c+int(l)]
			if y > x {
				x = y
			}
			ints[a+int(l)] = truncInt(in.t, x)
		}
	case opAbsI:
		a, b := int(s.bI+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			v := ints[b+int(l)]
			if v < 0 {
				v = -v
			}
			ints[a+int(l)] = truncInt(TypeInt, v)
		}
	case opLNotI:
		a, b := int(s.bI+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			if ints[b+int(l)] != 0 {
				ints[a+int(l)] = 0
			} else {
				ints[a+int(l)] = 1
			}
		}
	case opLNotF:
		a, b := int(s.bI+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			if floats[b+int(l)] != 0 {
				ints[a+int(l)] = 0
			} else {
				ints[a+int(l)] = 1
			}
		}
	case opLNotP:
		a, b := int(s.bI+in.a)*W, int(s.bP+in.b)*W
		for _, l := range lanes {
			if ptrTruthy(ptrs[b+int(l)]) {
				ints[a+int(l)] = 0
			} else {
				ints[a+int(l)] = 1
			}
		}
	case opTruthyI:
		a, b := int(s.bI+in.a)*W, int(s.bI+in.b)*W
		for _, l := range lanes {
			if ints[b+int(l)] != 0 {
				ints[a+int(l)] = 1
			} else {
				ints[a+int(l)] = 0
			}
		}
	case opTruthyF:
		a, b := int(s.bI+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			if floats[b+int(l)] != 0 {
				ints[a+int(l)] = 1
			} else {
				ints[a+int(l)] = 0
			}
		}
	case opTruthyP:
		a, b := int(s.bI+in.a)*W, int(s.bP+in.b)*W
		for _, l := range lanes {
			if ptrTruthy(ptrs[b+int(l)]) {
				ints[a+int(l)] = 1
			} else {
				ints[a+int(l)] = 0
			}
		}
	case opAddF:
		a, b, c := int(s.bF+in.a)*W, int(s.bF+in.b)*W, int(s.bF+in.c)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(floats[b+int(l)] + floats[c+int(l)])
		}
	case opSubF:
		a, b, c := int(s.bF+in.a)*W, int(s.bF+in.b)*W, int(s.bF+in.c)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(floats[b+int(l)] - floats[c+int(l)])
		}
	case opMulF:
		a, b, c := int(s.bF+in.a)*W, int(s.bF+in.b)*W, int(s.bF+in.c)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(floats[b+int(l)] * floats[c+int(l)])
		}
	case opDivF:
		a, b, c := int(s.bF+in.a)*W, int(s.bF+in.b)*W, int(s.bF+in.c)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(floats[b+int(l)] / floats[c+int(l)])
		}
	case opNegF:
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(-floats[b+int(l)])
		}
	case opAddKF:
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(floats[b+int(l)] + in.f)
		}
	case opMinF:
		a, b, c := int(s.bF+in.a)*W, int(s.bF+in.b)*W, int(s.bF+in.c)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Min(floats[b+int(l)], floats[c+int(l)]))
		}
	case opMaxF:
		a, b, c := int(s.bF+in.a)*W, int(s.bF+in.b)*W, int(s.bF+in.c)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Max(floats[b+int(l)], floats[c+int(l)]))
		}
	case opFAbsF:
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Abs(floats[b+int(l)]))
		}
	case opFloor:
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Floor(floats[b+int(l)]))
		}
	case opCeil:
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Ceil(floats[b+int(l)]))
		}
	case opSqrt:
		ws.acc.special += int64(len(lanes))
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Sqrt(floats[b+int(l)]))
		}
	case opRsqrt:
		ws.acc.special += int64(len(lanes))
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(1 / math.Sqrt(floats[b+int(l)]))
		}
	case opExp:
		ws.acc.special += int64(len(lanes))
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Exp(floats[b+int(l)]))
		}
	case opLog:
		ws.acc.special += int64(len(lanes))
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Log(floats[b+int(l)]))
		}
	case opPow:
		ws.acc.special += int64(len(lanes))
		a, b, c := int(s.bF+in.a)*W, int(s.bF+in.b)*W, int(s.bF+in.c)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Pow(floats[b+int(l)], floats[c+int(l)]))
		}
	case opSin:
		ws.acc.special += int64(len(lanes))
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Sin(floats[b+int(l)]))
		}
	case opCos:
		ws.acc.special += int64(len(lanes))
		a, b := int(s.bF+in.a)*W, int(s.bF+in.b)*W
		for _, l := range lanes {
			floats[a+int(l)] = round32(math.Cos(floats[b+int(l)]))
		}
	case opCmpI:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = cmpIRes(in.aux, ints[b+int(l)], ints[c+int(l)])
		}
	case opCmpU:
		a, b, c := int(s.bI+in.a)*W, int(s.bI+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = cmpURes(in.aux, uint32(ints[b+int(l)]), uint32(ints[c+int(l)]))
		}
	case opCmpF:
		a, b, c := int(s.bI+in.a)*W, int(s.bF+in.b)*W, int(s.bF+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = cmpFRes(in.aux, floats[b+int(l)], floats[c+int(l)])
		}
	case opCmpP:
		a, b, c := int(s.bI+in.a)*W, int(s.bP+in.b)*W, int(s.bP+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = cmpPRes(in.aux, ptrs[b+int(l)], ptrs[c+int(l)])
		}
	case opPAdd:
		// Open-coded Pointer.offset: writing through a destination pointer
		// copies the ~48-byte struct once instead of twice (arg + return),
		// and this is the hottest pointer op (2-D indexing leaves one
		// unfused opPAdd per access for the row pointer).
		a, b, c := int(s.bP+in.a)*W, int(s.bP+in.b)*W, int(s.bI+in.c)*W
		for _, l := range lanes {
			li := int(l)
			n := int(ints[c+li]) * int(in.k)
			p := &ptrs[a+li]
			*p = ptrs[b+li]
			if p.Space == SpaceGlobal {
				p.Glob = p.Glob.Offset(n)
			} else {
				p.Off += n
			}
		}
	case opPAddK:
		a, b := int(s.bP+in.a)*W, int(s.bP+in.b)*W
		for _, l := range lanes {
			li := int(l)
			p := &ptrs[a+li]
			*p = ptrs[b+li]
			if p.Space == SpaceGlobal {
				p.Glob = p.Glob.Offset(int(in.k))
			} else {
				p.Off += int(in.k)
			}
		}
	case opPDiff:
		a, b, c := int(s.bI+in.a)*W, int(s.bP+in.b)*W, int(s.bP+in.c)*W
		for _, l := range lanes {
			ints[a+int(l)] = truncInt(TypeInt, int64(ptrDelta(ptrs[b+int(l)], ptrs[c+int(l)])/int(in.k)))
		}
	case opLoad:
		b := int(s.bP+in.b) * W
		for _, l := range lanes {
			li := int(l)
			if err := wx.loadLane(s, in, li, ptrs[b+li]); err != nil {
				return 0, err
			}
		}
	case opStoreI, opStoreF:
		b := int(s.bP+in.b) * W
		for _, l := range lanes {
			li := int(l)
			if err := wx.storeLane(s, in, li, ptrs[b+li]); err != nil {
				return 0, err
			}
		}
	case opStoreP:
		b, c := int(s.bP+in.b)*W, int(s.bP+in.c)*W
		for _, l := range lanes {
			li := int(l)
			if err := storeMem(ws.lanes[li], ptrs[b+li], in.t, Value{T: in.t, P: ptrs[c+li]}); err != nil {
				return 0, err
			}
		}
	case opJmp:
		s.pc = in.aux
	case opJZ, opJNZ:
		ws.acc.branches += int64(len(lanes))
		jb, sb := wx.jumpBuf[:0], wx.stayBuf[:0]
		wantTaken := in.op == opJNZ
		switch in.kind {
		case bankI:
			b := int(s.bI+in.b) * W
			for _, l := range lanes {
				if (ints[b+int(l)] != 0) == wantTaken {
					jb = append(jb, l)
				} else {
					sb = append(sb, l)
				}
			}
		case bankF:
			b := int(s.bF+in.b) * W
			for _, l := range lanes {
				if (floats[b+int(l)] != 0) == wantTaken {
					jb = append(jb, l)
				} else {
					sb = append(sb, l)
				}
			}
		default:
			b := int(s.bP+in.b) * W
			for _, l := range lanes {
				if ptrTruthy(ptrs[b+int(l)]) == wantTaken {
					jb = append(jb, l)
				} else {
					sb = append(sb, l)
				}
			}
		}
		wx.jumpBuf, wx.stayBuf = jb, sb
		return wx.finishBranch(s, in.aux)
	case opCheckDepth:
		if s.depth >= maxCallDepth {
			return 0, ErrCallDepth
		}
	case opCall:
		cs := wx.wp.bc.calls[in.aux]
		tgt := cs.target
		nbI, nbF, nbP := s.bI+s.fn.numI, s.bF+s.fn.numF, s.bP+s.fn.numP
		ws.ints = grow(ws.ints, int(nbI+tgt.numI)*W)
		ws.floats = grow(ws.floats, int(nbF+tgt.numF)*W)
		ws.ptrs = grow(ws.ptrs, int(nbP+tgt.numP)*W)
		ints, floats, ptrs = ws.ints, ws.floats, ws.ptrs
		for _, m := range cs.moves {
			switch m.bank {
			case bankI:
				d, src := int(nbI+m.dst)*W, int(s.bI+m.src)*W
				for _, l := range lanes {
					ints[d+int(l)] = ints[src+int(l)]
				}
			case bankF:
				d, src := int(nbF+m.dst)*W, int(s.bF+m.src)*W
				for _, l := range lanes {
					floats[d+int(l)] = floats[src+int(l)]
				}
			default:
				d, src := int(nbP+m.dst)*W, int(s.bP+m.src)*W
				for _, l := range lanes {
					ptrs[d+int(l)] = ptrs[src+int(l)]
				}
			}
		}
		var dstAbs int32
		switch cs.dst.bank {
		case bankI:
			dstAbs = s.bI + cs.dst.reg
		case bankF:
			dstAbs = s.bF + cs.dst.reg
		case bankP:
			dstAbs = s.bP + cs.dst.reg
		}
		s.stack = append(s.stack, vmRet{pc: s.pc, bI: s.bI, bF: s.bF, bP: s.bP,
			fn: s.fn, dstBank: cs.dst.bank, dstReg: dstAbs})
		s.bI, s.bF, s.bP = nbI, nbF, nbP
		s.fn = tgt
		s.pc = wx.wp.callEntry[in.aux]
		s.depth++
	case opRet:
		if len(s.stack) == 0 {
			return ctlExit, nil
		}
		fr := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		switch fr.dstBank {
		case bankI:
			d := int(fr.dstReg) * W
			if in.kind == bankI {
				b := int(s.bI+in.b) * W
				for _, l := range lanes {
					ints[d+int(l)] = ints[b+int(l)]
				}
			} else {
				for _, l := range lanes {
					ints[d+int(l)] = 0
				}
			}
		case bankF:
			d := int(fr.dstReg) * W
			if in.kind == bankF {
				b := int(s.bF+in.b) * W
				for _, l := range lanes {
					floats[d+int(l)] = floats[b+int(l)]
				}
			} else {
				for _, l := range lanes {
					floats[d+int(l)] = 0
				}
			}
		case bankP:
			d := int(fr.dstReg) * W
			if in.kind == bankP {
				b := int(s.bP+in.b) * W
				for _, l := range lanes {
					ptrs[d+int(l)] = ptrs[b+int(l)]
				}
			} else {
				for _, l := range lanes {
					ptrs[d+int(l)] = Pointer{}
				}
			}
		}
		s.bI, s.bF, s.bP = fr.bI, fr.bF, fr.bP
		s.fn = fr.fn
		s.pc = fr.pc
		s.depth--
	case opSync:
		n := len(lanes)
		ws.acc.barriers += int64(n)
		gen, released, err := wx.wc.SyncArrive(n)
		if err != nil {
			return 0, err
		}
		if released {
			return ctlNone, nil
		}
		s.gen = gen
		return ctlSync, nil
	case opAtomic:
		spec := wx.wp.bc.atomics[in.aux]
		fval := atomFloatVal(spec)
		pb := int(s.bP+in.b) * W
		ic := int(s.bI+in.c) * W
		fc := int(s.bF+in.c) * W
		for _, l := range lanes {
			li := int(l)
			var iv, iv2 int64
			var fv float64
			if fval {
				fv = floats[fc+li]
			} else {
				iv = ints[ic+li]
			}
			if spec.name == "atomicCAS" {
				iv2 = ints[int(s.bI+spec.val2)*W+li]
			}
			v, err := vmAtomic(ws.lanes[li], spec, ptrs[pb+li], iv, fv, iv2)
			if err != nil {
				return 0, err
			}
			if in.kind == bankF {
				floats[int(s.bF+in.a)*W+li] = v.F
			} else {
				ints[int(s.bI+in.a)*W+li] = v.I
			}
		}
	case opTrap:
		return 0, wx.wp.bc.traps[in.aux]
	}
	return ctlNone, nil
}
