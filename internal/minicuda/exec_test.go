package minicuda

import (
	"errors"
	"math"
	"testing"

	"webgpu/internal/gpusim"
)

func run1D(t *testing.T, src, kernel string, grid, block int, args ...Arg) (*gpusim.Device, *gpusim.LaunchStats) {
	t.Helper()
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	stats, err := p.Launch(d, kernel, LaunchOpts{Grid: gpusim.D1(grid), Block: gpusim.D1(block)}, args...)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return d, stats
}

func TestExecVecAdd(t *testing.T) {
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, vecAddSrc)
	n := 300
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i) * 0.5
		bv[i] = float32(n - i)
	}
	a, _ := d.MallocFloat32(n, av)
	b, _ := d.MallocFloat32(n, bv)
	c, _ := d.Malloc(n * 4)
	_, err := p.Launch(d, "vecAdd",
		LaunchOpts{Grid: gpusim.D1((n + 127) / 128), Block: gpusim.D1(128)},
		FloatPtr(a), FloatPtr(b), FloatPtr(c), Int(n))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(c, n)
	for i := range got {
		want := av[i] + bv[i]
		if got[i] != want {
			t.Fatalf("c[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestExecTiledMatMul(t *testing.T) {
	src := `
#define TILE_WIDTH 8
__global__ void matrixMultiplyShared(float *A, float *B, float *C,
                                     int numARows, int numACols, int numBCols) {
  __shared__ float tileA[TILE_WIDTH][TILE_WIDTH];
  __shared__ float tileB[TILE_WIDTH][TILE_WIDTH];
  int row = blockIdx.y * TILE_WIDTH + threadIdx.y;
  int col = blockIdx.x * TILE_WIDTH + threadIdx.x;
  float acc = 0.0f;
  for (int m = 0; m < (numACols + TILE_WIDTH - 1) / TILE_WIDTH; m++) {
    if (row < numARows && m * TILE_WIDTH + threadIdx.x < numACols)
      tileA[threadIdx.y][threadIdx.x] = A[row * numACols + m * TILE_WIDTH + threadIdx.x];
    else
      tileA[threadIdx.y][threadIdx.x] = 0.0f;
    if (col < numBCols && m * TILE_WIDTH + threadIdx.y < numACols)
      tileB[threadIdx.y][threadIdx.x] = B[(m * TILE_WIDTH + threadIdx.y) * numBCols + col];
    else
      tileB[threadIdx.y][threadIdx.x] = 0.0f;
    __syncthreads();
    for (int k = 0; k < TILE_WIDTH; k++)
      acc += tileA[threadIdx.y][k] * tileB[k][threadIdx.x];
    __syncthreads();
  }
  if (row < numARows && col < numBCols)
    C[row * numBCols + col] = acc;
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	ra, ca, cb := 13, 9, 11 // deliberately non-multiple of tile
	av := make([]float32, ra*ca)
	bv := make([]float32, ca*cb)
	for i := range av {
		av[i] = float32(i%7) - 2
	}
	for i := range bv {
		bv[i] = float32(i%5) * 0.25
	}
	a, _ := d.MallocFloat32(len(av), av)
	b, _ := d.MallocFloat32(len(bv), bv)
	c, _ := d.Malloc(ra * cb * 4)
	_, err := p.Launch(d, "matrixMultiplyShared",
		LaunchOpts{Grid: gpusim.D2((cb+7)/8, (ra+7)/8), Block: gpusim.D2(8, 8)},
		FloatPtr(a), FloatPtr(b), FloatPtr(c), Int(ra), Int(ca), Int(cb))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(c, ra*cb)
	for r := 0; r < ra; r++ {
		for cc := 0; cc < cb; cc++ {
			var want float32
			for k := 0; k < ca; k++ {
				want += av[r*ca+k] * bv[k*cb+cc]
			}
			g := got[r*cb+cc]
			if diff := g - want; diff < -1e-3 || diff > 1e-3 {
				t.Fatalf("C[%d][%d] = %v, want %v", r, cc, g, want)
			}
		}
	}
}

func TestExecConstantMemoryConvolution(t *testing.T) {
	src := `
__constant__ float M[5];
__global__ void conv1d(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  float acc = 0.0f;
  for (int j = 0; j < 5; j++) {
    int k = i + j - 2;
    if (k >= 0 && k < n) acc += in[k] * M[j];
  }
  out[i] = acc;
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	mask := []float32{0.1, 0.2, 0.4, 0.2, 0.1}
	if err := p.LoadConstant(d, "M", gpusim.Float32Bytes(mask)); err != nil {
		t.Fatal(err)
	}
	n := 64
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i)
	}
	ip, _ := d.MallocFloat32(n, in)
	op, _ := d.Malloc(n * 4)
	_, err := p.Launch(d, "conv1d", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(64)},
		FloatPtr(ip), FloatPtr(op), Int(n))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(op, n)
	for i := 0; i < n; i++ {
		var want float32
		for j := 0; j < 5; j++ {
			k := i + j - 2
			if k >= 0 && k < n {
				want += in[k] * mask[j]
			}
		}
		if diff := got[i] - want; diff < -1e-4 || diff > 1e-4 {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestExecReductionWithAtomics(t *testing.T) {
	src := `
__global__ void total(float *input, float *output, int len) {
  __shared__ float partial[256];
  int t = threadIdx.x;
  int i = blockIdx.x * blockDim.x * 2 + threadIdx.x;
  float sum = 0.0f;
  if (i < len) sum += input[i];
  if (i + blockDim.x < len) sum += input[i + blockDim.x];
  partial[t] = sum;
  for (int stride = blockDim.x / 2; stride >= 1; stride /= 2) {
    __syncthreads();
    if (t < stride) partial[t] += partial[t + stride];
  }
  if (t == 0) atomicAdd(output, partial[0]);
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	n := 1000
	in := make([]float32, n)
	var want float64
	for i := range in {
		in[i] = float32(i%11) - 5
		want += float64(in[i])
	}
	ip, _ := d.MallocFloat32(n, in)
	op, _ := d.Malloc(4)
	blocks := (n + 511) / 512
	_, err := p.Launch(d, "total", LaunchOpts{Grid: gpusim.D1(blocks), Block: gpusim.D1(256)},
		FloatPtr(ip), FloatPtr(op), Int(n))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(op, 1)
	if math.Abs(float64(got[0])-want) > 1e-2 {
		t.Errorf("sum = %v, want %v", got[0], want)
	}
}

func TestExecHistogramUChar(t *testing.T) {
	src := `
__global__ void histo(unsigned char *input, int *bins, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int stride = blockDim.x * gridDim.x;
  while (i < len) {
    atomicAdd(&bins[input[i]], 1);
    i += stride;
  }
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	n := 4096
	data := make([]byte, n)
	want := make([]int32, 256)
	for i := range data {
		data[i] = byte((i * 31) % 256)
		want[data[i]]++
	}
	ip, _ := d.Malloc(n)
	if err := d.MemcpyHtoD(ip, data); err != nil {
		t.Fatal(err)
	}
	bp, _ := d.Malloc(256 * 4)
	_, err := p.Launch(d, "histo", LaunchOpts{Grid: gpusim.D1(8), Block: gpusim.D1(128)},
		UCharPtr(ip), IntPtr(bp), Int(n))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(bp, 256)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestExecDeviceFunctionAndMath(t *testing.T) {
	src := `
__device__ float dist2(float x1, float y1, float x2, float y2) {
  float dx = x1 - x2;
  float dy = y1 - y2;
  return dx * dx + dy * dy;
}
__global__ void k(float *out) {
  int i = threadIdx.x;
  out[i] = sqrtf(dist2((float)i, 0.0f, 0.0f, 3.0f)) + fmaxf(1.0f, 2.0f) + min(4, i);
}
`
	d, _ := run1DWithOut(t, src, "k", 8)
	got, _ := d.ReadFloat32(outOf(d), 8)
	for i := 0; i < 8; i++ {
		want := float32(math.Sqrt(float64(i*i+9))) + 2 + float32(minInt(4, i))
		if diff := got[i] - want; diff < -1e-4 || diff > 1e-4 {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// helpers: a device with one float32 out buffer as the only allocation.
var outPtrs = map[*gpusim.Device]gpusim.Ptr{}

func run1DWithOut(t *testing.T, src, kernel string, n int) (*gpusim.Device, *gpusim.LaunchStats) {
	t.Helper()
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	out, _ := d.Malloc(n * 4)
	outPtrs[d] = out
	stats, err := p.Launch(d, kernel, LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(n)}, FloatPtr(out))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	return d, stats
}

func outOf(d *gpusim.Device) gpusim.Ptr { return outPtrs[d] }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestExecLocalArrayRegisterTiling(t *testing.T) {
	src := `
__global__ void k(float *out) {
  float reg[4];
  int i = threadIdx.x;
  for (int j = 0; j < 4; j++) reg[j] = (float)(i + j);
  float acc = 0.0f;
  for (int j = 0; j < 4; j++) acc += reg[j] * reg[j];
  out[i] = acc;
}
`
	d, _ := run1DWithOut(t, src, "k", 16)
	got, _ := d.ReadFloat32(outOf(d), 16)
	for i := 0; i < 16; i++ {
		var want float32
		for j := 0; j < 4; j++ {
			v := float32(i + j)
			want += v * v
		}
		if got[i] != want {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestExecControlFlow(t *testing.T) {
	src := `
__global__ void k(float *out) {
  int i = threadIdx.x;
  int acc = 0;
  for (int j = 0; j < 100; j++) {
    if (j == 50) break;
    if (j % 2 == 1) continue;
    acc += j;
  }
  int w = 0;
  while (w < i) w++;
  int dw = 0;
  do { dw++; } while (dw < 3);
  out[i] = (float)(acc + w * 1000 + dw * 10000);
}
`
	d, _ := run1DWithOut(t, src, "k", 4)
	got, _ := d.ReadFloat32(outOf(d), 4)
	// acc = 0+2+...+48 = 600; dw = 3.
	for i := 0; i < 4; i++ {
		want := float32(600 + i*1000 + 30000)
		if got[i] != want {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestExecOperators(t *testing.T) {
	src := `
__global__ void k(float *out) {
  int a = 7, b = 2;
  out[0] = (float)(a / b);
  out[1] = (float)(a % b);
  out[2] = (float)(a << 2);
  out[3] = (float)(a >> 1);
  out[4] = (float)(a & b);
  out[5] = (float)(a | b);
  out[6] = (float)(a ^ b);
  out[7] = (float)(~a);
  out[8] = (float)(-a);
  out[9] = (float)(!a);
  out[10] = (float)(a > b ? 11 : 22);
  out[11] = a > b && b > 0 ? 1.0f : 0.0f;
  unsigned int u = 0xFFFFFFFFu;
  out[12] = (float)(u >> 28);
  int c = 5;
  c += 3; out[13] = (float)c;
  c *= 2; out[14] = (float)c;
  c--; out[15] = (float)c;
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	out, _ := d.Malloc(16 * 4)
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1)}, FloatPtr(out))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(out, 16)
	want := []float32{3, 1, 28, 3, 2, 7, 5, -8, -7, 0, 11, 1, 15, 8, 16, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExecPointerArithmetic(t *testing.T) {
	src := `
__global__ void k(float *data, int n) {
  float *p = data + threadIdx.x;
  *p = *p * 2.0f;
  if (threadIdx.x == 0) {
    float *q = &data[4];
    *q = 99.0f;
  }
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	vals := []float32{1, 2, 3, 4, 0, 0}
	dp, _ := d.MallocFloat32(6, vals)
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(4)},
		FloatPtr(dp), Int(6))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(dp, 6)
	want := []float32{2, 4, 6, 8, 99, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("data[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExecOpenCLVecAdd(t *testing.T) {
	src := `
__kernel void vadd(__global const float *a, __global const float *b,
                   __global float *c, const unsigned int n) {
  int i = get_global_id(0);
  if (i < n) c[i] = a[i] + b[i];
}
`
	d := gpusim.NewDefaultDevice()
	p, err := Compile(src, DialectOpenCL)
	if err != nil {
		t.Fatal(err)
	}
	n := 100
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i)
		bv[i] = 1
	}
	a, _ := d.MallocFloat32(n, av)
	b, _ := d.MallocFloat32(n, bv)
	c, _ := d.Malloc(n * 4)
	_, err = p.Launch(d, "vadd", LaunchOpts{Grid: gpusim.D1(2), Block: gpusim.D1(64)},
		FloatPtr(a), FloatPtr(b), FloatPtr(c), Int(n))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(c, n)
	for i := range got {
		if got[i] != av[i]+1 {
			t.Fatalf("c[%d] = %v", i, got[i])
		}
	}
}

func TestExecOpenCLLocalMemoryReduction(t *testing.T) {
	// A realistic OpenCL work-group reduction: __local memory plus
	// barrier(CLK_LOCAL_MEM_FENCE).
	src := `
__kernel void reduce(__global const float *in, __global float *out, int n) {
  __local float scratch[64];
  int lid = get_local_id(0);
  int gid = get_global_id(0);
  scratch[lid] = (gid < n) ? in[gid] : 0.0f;
  for (int stride = get_local_size(0) / 2; stride > 0; stride = stride / 2) {
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid < stride) {
      scratch[lid] = scratch[lid] + scratch[lid + stride];
    }
  }
  barrier(CLK_GLOBAL_MEM_FENCE);
  if (lid == 0) {
    out[get_group_id(0)] = scratch[0];
  }
}
`
	p, err := Compile(src, DialectOpenCL)
	if err != nil {
		t.Fatalf("OpenCL reduce compile: %v", err)
	}
	d := gpusim.NewDefaultDevice()
	n := 256
	in := make([]float32, n)
	var want [4]float32
	for i := range in {
		in[i] = float32(i%9) - 4
		want[i/64] += in[i]
	}
	ip, _ := d.MallocFloat32(n, in)
	op, _ := d.Malloc(4 * 4)
	_, err = p.Launch(d, "reduce", LaunchOpts{Grid: gpusim.D1(4), Block: gpusim.D1(64)},
		FloatPtr(ip), FloatPtr(op), Int(n))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(op, 4)
	for g := 0; g < 4; g++ {
		if diff := got[g] - want[g]; diff < -1e-3 || diff > 1e-3 {
			t.Errorf("group %d sum = %v, want %v", g, got[g], want[g])
		}
	}
}

func TestCLKConstantsOnlyInOpenCL(t *testing.T) {
	src := `__global__ void k(int *out) { out[0] = CLK_LOCAL_MEM_FENCE; }`
	if _, err := Compile(src, DialectCUDA); err == nil {
		t.Error("CLK_LOCAL_MEM_FENCE resolved in CUDA dialect")
	}
}

func TestExecStepLimit(t *testing.T) {
	src := `
__global__ void spin(float *out) {
  float x = 0.0f;
  while (1) { x += 1.0f; }
  out[0] = x;
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	out, _ := d.Malloc(4)
	_, err := p.Launch(d, "spin",
		LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1), MaxSteps: 10000}, FloatPtr(out))
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestExecDivByZero(t *testing.T) {
	src := `
__global__ void k(int *out) { out[0] = 1 / out[1]; }
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	out, _ := d.MallocInt32(2, []int32{0, 0})
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1)}, IntPtr(out))
	if !errors.Is(err, ErrDivByZero) {
		t.Errorf("err = %v, want ErrDivByZero", err)
	}
}

func TestExecOutOfBoundsReported(t *testing.T) {
	src := `
__global__ void k(float *a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  a[i] = 1.0f; // missing bounds check: classic student bug
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	a, _ := d.Malloc(10 * 4)
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(32)},
		FloatPtr(a), Int(10))
	if !errors.Is(err, gpusim.ErrIllegalAccess) {
		t.Errorf("err = %v, want ErrIllegalAccess", err)
	}
}

func TestExecBarrierDivergenceInSource(t *testing.T) {
	src := `
__global__ void k(float *a) {
  if (threadIdx.x < 16) __syncthreads();
  a[threadIdx.x] = 1.0f;
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	a, _ := d.Malloc(32 * 4)
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(32)}, FloatPtr(a))
	if !errors.Is(err, gpusim.ErrBarrierDivergence) {
		t.Errorf("err = %v, want ErrBarrierDivergence", err)
	}
}

func TestExecWrongArgTypeRejected(t *testing.T) {
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, vecAddSrc)
	a, _ := d.Malloc(16)
	if _, err := p.Launch(d, "vecAdd", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(4)},
		IntPtr(a), IntPtr(a), IntPtr(a), Int(4)); err == nil {
		t.Error("int* accepted where float* expected")
	}
	if _, err := p.Launch(d, "vecAdd", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(4)},
		FloatPtr(a), FloatPtr(a)); err == nil {
		t.Error("wrong arg count accepted")
	}
	if _, err := p.Launch(d, "nope", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(4)}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestExecUnsignedWraparound(t *testing.T) {
	src := `
__global__ void k(int *out) {
  unsigned int h = 2166136261u;
  h = h * 16777619u;
  out[0] = (int)(h % 97u);
  int big = 2147483647;
  out[1] = big + 1; // signed int32 wrap
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	out, _ := d.Malloc(8)
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1)}, IntPtr(out))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(out, 2)
	var h uint32 = 2166136261
	h *= 16777619
	wantHash := int32(h % 97)
	if got[0] != wantHash {
		t.Errorf("hash = %d, want %d", got[0], wantHash)
	}
	if got[1] != math.MinInt32 {
		t.Errorf("wrap = %d, want %d", got[1], math.MinInt32)
	}
}

func TestExecScanBlelloch(t *testing.T) {
	// Work-efficient exclusive scan within one block (the course's Scan lab
	// core), converted to inclusive on write-out.
	src := `
#define BLOCK_SIZE 64
__global__ void scan(float *input, float *output, int len) {
  __shared__ float T[128];
  int t = threadIdx.x;
  int start = 2 * blockIdx.x * BLOCK_SIZE;
  T[2 * t] = (start + 2 * t < len) ? input[start + 2 * t] : 0.0f;
  T[2 * t + 1] = (start + 2 * t + 1 < len) ? input[start + 2 * t + 1] : 0.0f;
  int stride = 1;
  while (stride < 2 * BLOCK_SIZE) {
    __syncthreads();
    int index = (t + 1) * stride * 2 - 1;
    if (index < 2 * BLOCK_SIZE && index - stride >= 0)
      T[index] += T[index - stride];
    stride = stride * 2;
  }
  stride = BLOCK_SIZE / 2;
  while (stride > 0) {
    __syncthreads();
    int index = (t + 1) * stride * 2 - 1;
    if (index + stride < 2 * BLOCK_SIZE)
      T[index + stride] += T[index];
    stride = stride / 2;
  }
  __syncthreads();
  if (start + 2 * t < len) output[start + 2 * t] = T[2 * t];
  if (start + 2 * t + 1 < len) output[start + 2 * t + 1] = T[2 * t + 1];
}
`
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	n := 128
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i%4) + 1
	}
	ip, _ := d.MallocFloat32(n, in)
	op, _ := d.Malloc(n * 4)
	_, err := p.Launch(d, "scan", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(64)},
		FloatPtr(ip), FloatPtr(op), Int(n))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(op, n)
	var run float32
	for i := 0; i < n; i++ {
		run += in[i]
		if diff := got[i] - run; diff < -1e-3 || diff > 1e-3 {
			t.Fatalf("scan[%d] = %v, want %v", i, got[i], run)
		}
	}
}

func TestExecStatsExposeTiling(t *testing.T) {
	// The interpreter's memory traffic must flow into the cost model: the
	// same matmul with shared-memory tiling issues fewer global transactions.
	naive := `
__global__ void mm(float *A, float *B, float *C, int n) {
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  if (row >= n || col >= n) return;
  float acc = 0.0f;
  for (int k = 0; k < n; k++) acc += A[row * n + k] * B[k * n + col];
  C[row * n + col] = acc;
}
`
	tiled := `
#define TW 8
__global__ void mm(float *A, float *B, float *C, int n) {
  __shared__ float tA[TW][TW];
  __shared__ float tB[TW][TW];
  int row = blockIdx.y * TW + threadIdx.y;
  int col = blockIdx.x * TW + threadIdx.x;
  float acc = 0.0f;
  for (int m = 0; m < n / TW; m++) {
    tA[threadIdx.y][threadIdx.x] = A[row * n + m * TW + threadIdx.x];
    tB[threadIdx.y][threadIdx.x] = B[(m * TW + threadIdx.y) * n + col];
    __syncthreads();
    for (int k = 0; k < TW; k++) acc += tA[threadIdx.y][k] * tB[k][threadIdx.x];
    __syncthreads();
  }
  C[row * n + col] = acc;
}
`
	n := 32
	runMM := func(src string) *gpusim.LaunchStats {
		d := gpusim.NewDefaultDevice()
		p := mustCompile(t, src)
		a, _ := d.Malloc(n * n * 4)
		b, _ := d.Malloc(n * n * 4)
		c, _ := d.Malloc(n * n * 4)
		s, err := p.Launch(d, "mm",
			LaunchOpts{Grid: gpusim.D2(n/8, n/8), Block: gpusim.D2(8, 8)},
			FloatPtr(a), FloatPtr(b), FloatPtr(c), Int(n))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sn := runMM(naive)
	st := runMM(tiled)
	if st.GlobalTx >= sn.GlobalTx {
		t.Errorf("tiled GlobalTx %d >= naive %d", st.GlobalTx, sn.GlobalTx)
	}
	if st.SimCycles >= sn.SimCycles {
		t.Errorf("tiled SimCycles %d >= naive %d", st.SimCycles, sn.SimCycles)
	}
}
