package minicuda

import "fmt"

// Analyze resolves names, checks types, assigns frame slots, and lays out
// __shared__ and __constant__ memory. On success the program is executable.
func Analyze(prog *Program) error {
	a := &analyzer{prog: prog}
	prog.kernels = map[string]*Function{}
	prog.functions = map[string]*Function{}
	prog.constVars = map[string]*Symbol{}

	for _, f := range prog.Funcs {
		if _, dup := prog.functions[f.Name]; dup {
			return errAt(f.Tok(), "redefinition of function %q", f.Name)
		}
		prog.functions[f.Name] = f
		if f.IsKernel {
			if f.Ret.Kind != KVoid {
				return errAt(f.Tok(), "kernel %q must return void", f.Name)
			}
			prog.kernels[f.Name] = f
		}
	}

	// Lay out file-scope __constant__ variables.
	off := 0
	for _, g := range prog.Globals {
		t := g.Decl.Type
		if t.Kind == KPtr {
			return errAt(g.Decl.Tok(), "__constant__ pointer variables are not supported")
		}
		off = align(off, 4)
		sym := &Symbol{Name: g.Decl.Name, Kind: SymConst, Type: markSpace(t, SpaceConst), Off: off}
		if _, dup := prog.constVars[g.Decl.Name]; dup {
			return errAt(g.Decl.Tok(), "redefinition of %q", g.Decl.Name)
		}
		prog.constVars[g.Decl.Name] = sym
		g.Decl.Sym = sym
		off += t.Size()
	}
	prog.constSize = off

	for _, f := range prog.Funcs {
		if err := a.analyzeFunc(f); err != nil {
			return err
		}
	}
	if len(prog.kernels) == 0 {
		return &CompileError{Line: 1, Col: 1,
			Msg: fmt.Sprintf("no %s entry point found", kernelWord(prog.Dialect))}
	}
	return nil
}

func kernelWord(d Dialect) string {
	if d == DialectOpenCL {
		return "__kernel function"
	}
	return "__global__ kernel"
}

func align(off, a int) int { return (off + a - 1) / a * a }

type analyzer struct {
	prog   *Program
	fn     *Function
	scopes []map[string]*Symbol
	loop   int
}

func (a *analyzer) push() { a.scopes = append(a.scopes, map[string]*Symbol{}) }
func (a *analyzer) pop()  { a.scopes = a.scopes[:len(a.scopes)-1] }

func (a *analyzer) declare(tok Token, sym *Symbol) error {
	top := a.scopes[len(a.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		return errAt(tok, "redeclaration of %q", sym.Name)
	}
	top[sym.Name] = sym
	a.fn.Syms = append(a.fn.Syms, sym)
	return nil
}

func (a *analyzer) lookup(name string) *Symbol {
	for i := len(a.scopes) - 1; i >= 0; i-- {
		if s, ok := a.scopes[i][name]; ok {
			return s
		}
	}
	if s, ok := a.prog.constVars[name]; ok {
		return s
	}
	return nil
}

// openclConstants are the predefined barrier-fence flags of OpenCL C;
// their values mirror cl.h. They resolve only in the OpenCL dialect.
var openclConstants = map[string]int64{
	"CLK_LOCAL_MEM_FENCE":  1 << 0,
	"CLK_GLOBAL_MEM_FENCE": 1 << 1,
}

func (a *analyzer) newSlot(name string, t *Type, isArg bool) *Symbol {
	s := &Symbol{Name: name, Kind: SymLocal, Type: t, Slot: a.fn.NumSlots, IsArg: isArg}
	a.fn.NumSlots++
	return s
}

func (a *analyzer) analyzeFunc(f *Function) error {
	a.fn = f
	a.scopes = nil
	a.loop = 0
	a.push()
	defer a.pop()
	for _, p := range f.Params {
		if p.Type.Kind == KArray {
			return errAt(p.Tok(), "array parameters are not supported; pass a pointer")
		}
		if p.Type.Kind == KVoid {
			return errAt(p.Tok(), "parameter %q has void type", p.Name)
		}
		sym := a.newSlot(p.Name, p.Type, true)
		p.Sym = sym
		if err := a.declare(p.Tok(), sym); err != nil {
			return err
		}
	}
	return a.stmt(f.Body)
}

func (a *analyzer) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		a.push()
		defer a.pop()
		for _, x := range st.Stmts {
			if err := a.stmt(x); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		for _, d := range st.Decls {
			if err := a.varDecl(d); err != nil {
				return err
			}
		}
		return nil
	case *ExprStmt:
		_, err := a.expr(st.X)
		return err
	case *IfStmt:
		if _, err := a.expr(st.Cond); err != nil {
			return err
		}
		if err := a.stmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return a.stmt(st.Else)
		}
		return nil
	case *ForStmt:
		a.push()
		defer a.pop()
		if st.Init != nil {
			if err := a.stmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if _, err := a.expr(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := a.expr(st.Post); err != nil {
				return err
			}
		}
		a.loop++
		defer func() { a.loop-- }()
		return a.stmt(st.Body)
	case *WhileStmt:
		if _, err := a.expr(st.Cond); err != nil {
			return err
		}
		a.loop++
		defer func() { a.loop-- }()
		return a.stmt(st.Body)
	case *ReturnStmt:
		if st.X == nil {
			if a.fn.Ret.Kind != KVoid {
				return errAt(st.Tok(), "non-void function %q must return a value", a.fn.Name)
			}
			return nil
		}
		if a.fn.Ret.Kind == KVoid {
			return errAt(st.Tok(), "void function %q cannot return a value", a.fn.Name)
		}
		t, err := a.expr(st.X)
		if err != nil {
			return err
		}
		if !convertible(t, a.fn.Ret) {
			return errAt(st.Tok(), "cannot return %s from function returning %s", t, a.fn.Ret)
		}
		return nil
	case *BreakStmt:
		if a.loop == 0 {
			return errAt(st.Tok(), "break outside of a loop")
		}
		return nil
	case *ContinueStmt:
		if a.loop == 0 {
			return errAt(st.Tok(), "continue outside of a loop")
		}
		return nil
	case *EmptyStmt:
		return nil
	}
	return errAt(s.Tok(), "internal: unknown statement")
}

func (a *analyzer) varDecl(d *VarDecl) error {
	t := d.Type
	if t.Kind == KVoid {
		return errAt(d.Tok(), "variable %q has void type", d.Name)
	}
	switch {
	case t.Kind == KArray && (t.Space == SpaceShared || d.Shared):
		a.fn.SharedUse = align(a.fn.SharedUse, 4)
		sym := &Symbol{Name: d.Name, Kind: SymShared, Type: t, Off: a.fn.SharedUse}
		a.fn.SharedUse += align(t.Size(), 4)
		d.Sym = sym
		if d.Init != nil {
			return errAt(d.Tok(), "__shared__ variables cannot have initializers")
		}
		return a.declare(d.Tok(), sym)
	case d.Shared && t.Kind != KArray && t.Kind != KPtr:
		// __shared__ scalar: lay out like a 1-element array.
		a.fn.SharedUse = align(a.fn.SharedUse, 4)
		sym := &Symbol{Name: d.Name, Kind: SymShared, Type: t, Off: a.fn.SharedUse}
		a.fn.SharedUse += 4
		d.Sym = sym
		if d.Init != nil {
			return errAt(d.Tok(), "__shared__ variables cannot have initializers")
		}
		return a.declare(d.Tok(), sym)
	default:
		sym := a.newSlot(d.Name, t, false)
		d.Sym = sym
		if d.Init != nil {
			it, err := a.expr(d.Init)
			if err != nil {
				return err
			}
			if !convertible(it, t) {
				return errAt(d.Tok(), "cannot initialize %s with %s", t, it)
			}
		}
		return a.declare(d.Tok(), sym)
	}
}

// convertible reports whether a value of type from may be implicitly
// converted to type to.
func convertible(from, to *Type) bool {
	if from == nil || to == nil {
		return false
	}
	if from.IsScalar() && to.IsScalar() {
		return true
	}
	if from.Kind == KPtr && to.Kind == KPtr {
		return from.Elem.Equal(to.Elem) || from.Elem.Kind == KVoid || to.Elem.Kind == KVoid
	}
	if from.Kind == KArray && to.Kind == KPtr {
		return from.Elem.Equal(to.Elem) // array decay
	}
	return false
}

func (a *analyzer) expr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *IntLit:
		x.val = intValue(x.ResultType(), x.Val)
		return e.ResultType(), nil
	case *FloatLit:
		x.val = floatValue(x.Val)
		return e.ResultType(), nil
	case *BoolLit:
		var i int64
		if x.Val {
			i = 1
		}
		x.val = intValue(TypeBool, i)
		return e.ResultType(), nil
	case *VarRef:
		if isBuiltinDim3(x.Name) {
			return nil, errAt(x.Tok(), "%s must be accessed with .x/.y/.z", x.Name)
		}
		sym := a.lookup(x.Name)
		if sym == nil {
			return nil, errAt(x.Tok(), "use of undeclared identifier %q", x.Name)
		}
		x.Sym = sym
		x.typ = sym.Type
		return sym.Type, nil
	case *BuiltinVarRef:
		x.typ = TypeInt
		switch x.Base {
		case "threadIdx":
			x.baseID = baseThreadIdx
		case "blockIdx":
			x.baseID = baseBlockIdx
		case "blockDim":
			x.baseID = baseBlockDim
		default:
			x.baseID = baseGridDim
		}
		return TypeInt, nil
	case *Unary:
		t, err := a.expr(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+", "-":
			if !t.IsScalar() {
				return nil, errAt(x.Tok(), "invalid operand type %s to unary %s", t, x.Op)
			}
			x.typ = promote(t)
		case "!":
			x.typ = TypeInt
		case "~":
			if !t.IsInteger() {
				return nil, errAt(x.Tok(), "operand of ~ must be an integer, got %s", t)
			}
			x.typ = promote(t)
		case "*":
			if t.Kind != KPtr {
				return nil, errAt(x.Tok(), "cannot dereference non-pointer type %s", t)
			}
			if !isLvalue(x.X) && !isPointerValued(x.X) {
				return nil, errAt(x.Tok(), "invalid dereference")
			}
			x.typ = t.Elem
		case "&":
			if !isLvalue(x.X) {
				return nil, errAt(x.Tok(), "cannot take the address of an rvalue")
			}
			x.typ = PtrTo(t, spaceOf(t, x.X))
		case "++", "--":
			if !isLvalue(x.X) {
				return nil, errAt(x.Tok(), "operand of %s must be an lvalue", x.Op)
			}
			x.typ = t
		default:
			return nil, errAt(x.Tok(), "unsupported unary operator %q", x.Op)
		}
		return x.typ, nil
	case *Postfix:
		t, err := a.expr(x.X)
		if err != nil {
			return nil, err
		}
		if !isLvalue(x.X) {
			return nil, errAt(x.Tok(), "operand of %s must be an lvalue", x.Op)
		}
		if !t.IsScalar() && t.Kind != KPtr {
			return nil, errAt(x.Tok(), "invalid operand type %s to %s", t, x.Op)
		}
		x.typ = t
		return t, nil
	case *Binary:
		lt, err := a.expr(x.L)
		if err != nil {
			return nil, err
		}
		rt, err := a.expr(x.R)
		if err != nil {
			return nil, err
		}
		return a.binaryType(x, lt, rt)
	case *Assign:
		lt, err := a.expr(x.L)
		if err != nil {
			return nil, err
		}
		if !isLvalue(x.L) || lt.Kind == KArray {
			return nil, errAt(x.Tok(), "left side of %s is not assignable", x.Op)
		}
		rt, err := a.expr(x.R)
		if err != nil {
			return nil, err
		}
		if x.Op == "=" {
			if !convertible(rt, lt) {
				return nil, errAt(x.Tok(), "cannot assign %s to %s", rt, lt)
			}
		} else {
			if lt.Kind == KPtr {
				if !(x.Op == "+=" || x.Op == "-=") || !rt.IsInteger() {
					return nil, errAt(x.Tok(), "invalid pointer compound assignment")
				}
			} else if !lt.IsScalar() || !rt.IsScalar() {
				return nil, errAt(x.Tok(), "invalid operands %s %s %s", lt, x.Op, rt)
			}
		}
		x.typ = lt
		return lt, nil
	case *Ternary:
		if _, err := a.expr(x.Cond); err != nil {
			return nil, err
		}
		tt, err := a.expr(x.Then)
		if err != nil {
			return nil, err
		}
		et, err := a.expr(x.Else)
		if err != nil {
			return nil, err
		}
		switch {
		case tt.IsScalar() && et.IsScalar():
			x.typ = commonType(tt, et)
		case tt.Kind == KPtr && et.Kind == KPtr:
			x.typ = tt
		default:
			return nil, errAt(x.Tok(), "incompatible ternary branches %s and %s", tt, et)
		}
		return x.typ, nil
	case *Index:
		bt, err := a.expr(x.Base)
		if err != nil {
			return nil, err
		}
		it, err := a.expr(x.Idx)
		if err != nil {
			return nil, err
		}
		if !it.IsInteger() {
			return nil, errAt(x.Tok(), "array subscript must be an integer, got %s", it)
		}
		switch bt.Kind {
		case KPtr, KArray:
			x.typ = bt.Elem
			return bt.Elem, nil
		}
		return nil, errAt(x.Tok(), "subscripted value %s is not a pointer or array", bt)
	case *Cast:
		if _, err := a.expr(x.X); err != nil {
			return nil, err
		}
		x.typ = x.To
		return x.To, nil
	case *Call:
		return a.call(x)
	}
	return nil, errAt(e.Tok(), "internal: unknown expression")
}

func promote(t *Type) *Type {
	switch t.Kind {
	case KBool, KChar, KInt:
		return TypeInt
	case KUChar, KUInt:
		if t.Kind == KUInt {
			return TypeUInt
		}
		return TypeInt
	}
	return t
}

func (a *analyzer) binaryType(x *Binary, lt, rt *Type) (*Type, error) {
	op := x.Op
	switch op {
	case ",":
		x.typ = rt
		return rt, nil
	case "==", "!=", "<", "<=", ">", ">=":
		if lt.Kind == KPtr && rt.Kind == KPtr {
			x.typ = TypeInt
			return TypeInt, nil
		}
		if !lt.IsScalar() || !rt.IsScalar() {
			return nil, errAt(x.Tok(), "invalid comparison between %s and %s", lt, rt)
		}
		x.typ = TypeInt
		return TypeInt, nil
	case "&&", "||":
		x.typ = TypeInt
		return TypeInt, nil
	case "&", "|", "^", "<<", ">>", "%":
		if !lt.IsInteger() || !rt.IsInteger() {
			return nil, errAt(x.Tok(), "operands of %s must be integers (%s, %s)", op, lt, rt)
		}
		x.typ = commonType(lt, rt)
		return x.typ, nil
	case "+", "-":
		if lt.Kind == KPtr && rt.IsInteger() {
			x.typ = lt
			return lt, nil
		}
		if op == "+" && lt.IsInteger() && rt.Kind == KPtr {
			x.typ = rt
			return rt, nil
		}
		if op == "-" && lt.Kind == KPtr && rt.Kind == KPtr {
			x.typ = TypeInt
			return TypeInt, nil
		}
		if lt.Kind == KArray && rt.IsInteger() {
			x.typ = PtrTo(lt.Elem, lt.Space)
			return x.typ, nil
		}
		fallthrough
	case "*", "/":
		if !lt.IsScalar() || !rt.IsScalar() {
			return nil, errAt(x.Tok(), "invalid operands to %s (%s and %s)", op, lt, rt)
		}
		x.typ = commonType(lt, rt)
		return x.typ, nil
	}
	return nil, errAt(x.Tok(), "unsupported operator %q", op)
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *VarRef:
		return true
	case *Index:
		return true
	case *Unary:
		return x.Op == "*"
	}
	return false
}

func isPointerValued(e Expr) bool {
	t := e.ResultType()
	return t != nil && t.Kind == KPtr
}

func spaceOf(t *Type, e Expr) MemSpace {
	if t.Kind == KArray || t.Kind == KPtr {
		return t.Space
	}
	if vr, ok := e.(*VarRef); ok && vr.Sym != nil {
		switch vr.Sym.Kind {
		case SymShared:
			return SpaceShared
		case SymConst:
			return SpaceConst
		}
	}
	return SpaceLocal
}
