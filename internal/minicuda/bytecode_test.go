package minicuda

import (
	"errors"
	"testing"
	"unsafe"

	"webgpu/internal/gpusim"
)

const bcTestVecAdd = `
__global__ void vecAdd(int *out, int *a, int *b, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { out[i] = a[i] + b[i]; }
}`

// TestBytecodeArtifactMetadata checks the artifact accessors the program
// cache and worker tracing rely on.
func TestBytecodeArtifactMetadata(t *testing.T) {
	prog, err := Compile(bcTestVecAdd, DialectCUDA)
	if err != nil {
		t.Fatal(err)
	}
	if prog.bytecode() == nil {
		t.Fatal("vecAdd should lower to bytecode")
	}
	n := prog.InstructionCount()
	if n <= 0 {
		t.Fatalf("InstructionCount = %d, want > 0", n)
	}
	if got, want := prog.BytecodeBytes(), n*int(unsafe.Sizeof(instr{})); got != want {
		t.Fatalf("BytecodeBytes = %d, want %d", got, want)
	}
	if k := prog.ArtifactKind(); k != "bytecode-warp" && k != "bytecode" && k != "ast" {
		t.Fatalf("ArtifactKind = %q", k)
	}
}

// TestBytecodeNoBarriersMatchesSema: the VM launch path derives NoBarriers
// from a static scan of the lowered code; it must agree with the semantic
// pass's answer so the simulator picks the same execution path under both
// engines.
func TestBytecodeNoBarriersMatchesSema(t *testing.T) {
	for _, src := range []string{
		bcTestVecAdd,
		`__global__ void k(float *s) {
  __shared__ float tile[32];
  tile[threadIdx.x] = s[threadIdx.x];
  __syncthreads();
  s[threadIdx.x] = tile[31 - threadIdx.x];
}`,
	} {
		prog, err := Compile(src, DialectCUDA)
		if err != nil {
			t.Fatal(err)
		}
		bc := prog.bytecode()
		if bc == nil {
			t.Fatal("program should lower to bytecode")
		}
		if bc.usesBarrier != prog.usesBarrier {
			t.Fatalf("usesBarrier: bytecode %v, sema %v\n%s",
				bc.usesBarrier, prog.usesBarrier, src)
		}
	}
}

// TestVMTrapSentinels: the VM must return the interpreter's sentinel errors
// (not lookalikes) so errors.Is-based handling in the worker keeps working.
func TestVMTrapSentinels(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		maxSteps int64
		sentinel error
	}{
		{"div-by-zero", `__global__ void k(int *o, int n) { o[0] = 1 / n; }`, 0, ErrDivByZero},
		{"step-limit", `__global__ void k(int *o, int n) { while (1) { n++; } o[0] = n; }`, 500, ErrStepLimit},
		{"call-depth", `__device__ int r(int n) { return r(n + 1); }
__global__ void k(int *o, int n) { o[0] = r(n); }`, 0, ErrCallDepth},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := Compile(c.src, DialectCUDA)
			if err != nil {
				t.Fatal(err)
			}
			if prog.bytecode() == nil {
				t.Fatal("kernel should lower to bytecode")
			}
			var msgs [3]string
			for i, eng := range []Engine{EngineVM, EngineTree, EngineWarp} {
				dev := gpusim.NewDefaultDevice()
				o, _ := dev.Malloc(4)
				_, lerr := prog.Launch(dev, "k",
					LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1),
						MaxSteps: c.maxSteps, Engine: eng},
					IntPtr(o), Int(0))
				if lerr == nil {
					t.Fatalf("engine %d: expected an error", i)
				}
				if !errors.Is(lerr, c.sentinel) {
					t.Fatalf("engine %d: error %v is not %v", i, lerr, c.sentinel)
				}
				msgs[i] = lerr.Error()
			}
			if msgs[0] != msgs[1] || msgs[0] != msgs[2] {
				t.Fatalf("trap message divergence:\nvm:   %q\ntree: %q\nwarp: %q",
					msgs[0], msgs[1], msgs[2])
			}
		})
	}
}

// TestEngineOverride: forcing either engine through LaunchOpts must work
// regardless of the process default and produce the same result.
func TestEngineOverride(t *testing.T) {
	prog, err := Compile(bcTestVecAdd, DialectCUDA)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var want []int32
	for _, eng := range []Engine{EngineVM, EngineTree, EngineWarp, EngineAuto} {
		dev := gpusim.NewDefaultDevice()
		out, _ := dev.Malloc(n * 4)
		av := make([]int32, n)
		bv := make([]int32, n)
		for i := range av {
			av[i] = int32(i * 3)
			bv[i] = int32(100 - i)
		}
		a, err := dev.MallocInt32(n, av)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dev.MallocInt32(n, bv)
		if err != nil {
			t.Fatal(err)
		}
		_, err = prog.Launch(dev, "vecAdd",
			LaunchOpts{Grid: gpusim.D1(2), Block: gpusim.D1(32), Engine: eng},
			IntPtr(out), IntPtr(a), IntPtr(b), Int(n))
		if err != nil {
			t.Fatalf("engine %d: %v", eng, err)
		}
		got, _ := dev.ReadInt32(out, n)
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("engine %d: out[%d] = %d, want %d", eng, i, got[i], want[i])
			}
		}
	}
}
