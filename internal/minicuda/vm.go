package minicuda

// Register VM: executes the bytecode produced by lowerProgram with a
// switch-dispatch loop over typed register banks. One vmState services a
// whole thread (and is pooled across threads of a launch), so the hot path
// performs no per-thread allocation beyond local-array buffers the
// semantics require. Observable behavior — gpusim counter charges, step
// budget trips, and trap errors — matches the tree-walking interpreter in
// interp.go instruction by instruction; the differential fuzz test in
// diff_test.go enforces that.

import (
	"math"
	"sync"

	"webgpu/internal/gpusim"
)

// vmRet is one saved frame on the call stack.
type vmRet struct {
	pc         int32
	bI, bF, bP int32
	fn         *bcFunc
	dstBank    uint8
	dstReg     int32 // absolute index in the caller's bank
}

// vmState holds the register banks and call stack for one thread. It is
// reused across threads via vmPool.
type vmState struct {
	ints   []int64
	floats []float64
	ptrs   []Pointer
	stack  []vmRet
}

var vmPool = sync.Pool{New: func() any { return &vmState{} }}

// grow returns s extended (preserving contents) to hold at least need
// elements, doubling to amortize regrowth. Shared by the VM's per-thread
// register banks and the warp engine's struct-of-arrays lane banks.
func grow[T any](s []T, need int) []T {
	if need <= len(s) {
		return s
	}
	n := make([]T, 2*need)
	copy(n, s)
	return n
}

func ptrTruthy(p Pointer) bool {
	return !p.Glob.IsNil() || p.Local != nil || p.Off != 0
}

func round32(f float64) float64 { return float64(float32(f)) }

func cmpIRes(code int32, a, b int64) int64 {
	var res bool
	switch code {
	case cmpEQ:
		res = a == b
	case cmpNE:
		res = a != b
	case cmpLT:
		res = a < b
	case cmpLE:
		res = a <= b
	case cmpGT:
		res = a > b
	default:
		res = a >= b
	}
	if res {
		return 1
	}
	return 0
}

func cmpURes(code int32, a, b uint32) int64 {
	var res bool
	switch code {
	case cmpEQ:
		res = a == b
	case cmpNE:
		res = a != b
	case cmpLT:
		res = a < b
	case cmpLE:
		res = a <= b
	case cmpGT:
		res = a > b
	default:
		res = a >= b
	}
	if res {
		return 1
	}
	return 0
}

func cmpFRes(code int32, a, b float64) int64 {
	var res bool
	switch code {
	case cmpEQ:
		res = a == b
	case cmpNE:
		res = a != b
	case cmpLT:
		res = a < b
	case cmpLE:
		res = a <= b
	case cmpGT:
		res = a > b
	default:
		res = a >= b
	}
	if res {
		return 1
	}
	return 0
}

func cmpPRes(code int32, a, b Pointer) int64 {
	d := ptrDelta(a, b)
	eq := d == 0 && a.Space == b.Space && a.Glob == b.Glob && a.Local == b.Local
	var res bool
	switch code {
	case cmpEQ:
		res = eq
	case cmpNE:
		res = !eq
	case cmpLT:
		res = d < 0
	case cmpLE:
		res = d <= 0
	case cmpGT:
		res = d > 0
	default:
		res = d >= 0
	}
	if res {
		return 1
	}
	return 0
}

// vmAtomic mirrors the tree-walker's evalAtomic: memory-space dispatch and
// trap messages are resolved at run time. iv/fv carry the raw-converted
// operand (one of them, per the lowering's bank choice); iv2 is the
// atomicCAS third operand.
func vmAtomic(tc *gpusim.ThreadCtx, spec *atomSpec, p Pointer, iv int64, fv float64, iv2 int64) (Value, error) {
	elem := spec.elem
	switch p.Space {
	case SpaceGlobal:
		switch spec.name {
		case "atomicAdd", "atomicSub":
			if elem.Kind == KFloat {
				d := fv
				if spec.name == "atomicSub" {
					d = -d
				}
				old, err := tc.AtomicAddFloat32(p.Glob, 0, float32(d))
				return Value{T: elem, F: float64(old)}, err
			}
			d := iv
			if spec.name == "atomicSub" {
				d = -d
			}
			old, err := tc.AtomicAddInt32(p.Glob, 0, int32(d))
			return intValue(elem, int64(old)), err
		case "atomicMax":
			old, err := tc.AtomicMaxInt32(p.Glob, 0, int32(iv))
			return intValue(elem, int64(old)), err
		case "atomicMin":
			old, err := tc.AtomicMinInt32(p.Glob, 0, int32(iv))
			return intValue(elem, int64(old)), err
		case "atomicExch":
			if elem.Kind == KFloat {
				old, err := tc.AtomicExchInt32(p.Glob, 0, int32(math.Float32bits(float32(fv))))
				return Value{T: elem, F: float64(math.Float32frombits(uint32(old)))}, err
			}
			old, err := tc.AtomicExchInt32(p.Glob, 0, int32(iv))
			return intValue(elem, int64(old)), err
		case "atomicCAS":
			old, err := tc.AtomicCASInt32(p.Glob, 0, int32(iv), int32(iv2))
			return intValue(elem, int64(old)), err
		}
	case SpaceShared:
		switch spec.name {
		case "atomicAdd", "atomicSub":
			if elem.Kind == KFloat {
				d := fv
				if spec.name == "atomicSub" {
					d = -d
				}
				old, err := tc.SharedAtomicAddFloat32(p.Off/4, float32(d))
				return Value{T: elem, F: float64(old)}, err
			}
			d := iv
			if spec.name == "atomicSub" {
				d = -d
			}
			old, err := tc.SharedAtomicAddInt32(p.Off/4, int32(d))
			return intValue(elem, int64(old)), err
		}
		return Value{}, errAt(spec.tok, "%s is not supported on shared memory", spec.name)
	}
	return Value{}, errAt(spec.tok, "atomic on unsupported memory space %s", p.Space)
}

// atomFloatVal reports whether the lowering placed the atomic's value
// operand in the float bank (must match the choice in lowerer.builtin).
func atomFloatVal(spec *atomSpec) bool {
	if spec.elem.Kind != KFloat {
		return false
	}
	switch spec.name {
	case "atomicAdd", "atomicSub", "atomicExch":
		return true
	}
	return false
}

func dimPick(dims *[12]int, base int32, dim int64) int {
	if dim >= 0 && dim < 3 {
		return dims[base*3+int32(dim)]
	}
	return 0
}

// run executes kernel function kfn for one thread.
func (bc *bytecodeProgram) run(st *vmState, tc *gpusim.ThreadCtx, kfn *bcFunc, bound []Value, maxSteps int64) error {
	var dims [12]int
	d := tc.ThreadIdx
	dims[0], dims[1], dims[2] = d.X, d.Y, d.Z
	d = tc.BlockIdx
	dims[3], dims[4], dims[5] = d.X, d.Y, d.Z
	d = tc.BlockDim
	dims[6], dims[7], dims[8] = d.X, d.Y, d.Z
	d = tc.GridDim
	dims[9], dims[10], dims[11] = d.X, d.Y, d.Z

	st.ints = grow(st.ints, int(kfn.numI))
	st.floats = grow(st.floats, int(kfn.numF))
	st.ptrs = grow(st.ptrs, int(kfn.numP))
	ints, floats, ptrs := st.ints, st.floats, st.ptrs
	stack := st.stack[:0]
	defer func() { st.stack = stack }()

	for i, p := range kfn.params {
		v := bound[i]
		switch p.bank {
		case bankI:
			ints[p.reg] = v.I
		case bankF:
			floats[p.reg] = v.F
		default:
			ptrs[p.reg] = v.P
		}
	}

	code := bc.code
	fn := kfn
	pc := fn.entry
	var bI, bF, bP int32
	var steps int64
	depth := 0

	for {
		in := &code[pc]
		pc++
		if in.steps != 0 {
			steps += int64(in.steps)
			if steps > maxSteps {
				return ErrStepLimit
			}
		}
		if in.alu != 0 {
			tc.CountALU(int(in.alu))
		}
		switch in.op {
		case opStep:
		case opLoadKI:
			ints[bI+in.a] = in.k
		case opLoadKF:
			floats[bF+in.a] = in.f
		case opMovI:
			ints[bI+in.a] = ints[bI+in.b]
		case opMovF:
			floats[bF+in.a] = floats[bF+in.b]
		case opMovP:
			ptrs[bP+in.a] = ptrs[bP+in.b]
		case opZeroP:
			ptrs[bP+in.a] = Pointer{}
		case opLeaShared:
			ptrs[bP+in.a] = Pointer{Space: SpaceShared, Off: int(in.k)}
		case opLeaConst:
			ptrs[bP+in.a] = Pointer{Space: SpaceConst, Off: int(in.k)}
		case opAllocLocal:
			t := in.t
			n := t.Size() / t.ElemBase().Size()
			buf := &localBuf{vals: make([]Value, n), elem: t.ElemBase()}
			for i := range buf.vals {
				buf.vals[i] = Value{T: buf.elem}
			}
			ptrs[bP+in.a] = Pointer{Space: SpaceLocal, Elem: t, Local: buf}
		case opThreadDim:
			ints[bI+in.a] = int64(dims[in.aux])
		case opWorkItem:
			dim := ints[bI+in.b]
			var v int
			switch in.aux {
			case wiGlobalID:
				v = dimPick(&dims, 1, dim)*dimPick(&dims, 2, dim) + dimPick(&dims, 0, dim)
			case wiLocalID:
				v = dimPick(&dims, 0, dim)
			case wiGroupID:
				v = dimPick(&dims, 1, dim)
			case wiLocalSize:
				v = dimPick(&dims, 2, dim)
			case wiNumGroups:
				v = dimPick(&dims, 3, dim)
			case wiGlobalSize:
				v = dimPick(&dims, 3, dim) * dimPick(&dims, 2, dim)
			}
			ints[bI+in.a] = int64(int32(v))
		case opI2F:
			floats[bF+in.a] = float64(float32(ints[bI+in.b]))
		case opI2FRaw:
			floats[bF+in.a] = float64(ints[bI+in.b])
		case opF2I:
			ints[bI+in.a] = truncInt(in.t, int64(floats[bF+in.b]))
		case opF2IRaw:
			ints[bI+in.a] = int64(floats[bF+in.b])
		case opF2F:
			floats[bF+in.a] = round32(floats[bF+in.b])
		case opTruncI:
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b])
		case opAddI:
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]+ints[bI+in.c])
		case opSubI:
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]-ints[bI+in.c])
		case opMulI:
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]*ints[bI+in.c])
		case opDivI:
			c := ints[bI+in.c]
			if c == 0 {
				return ErrDivByZero
			}
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]/c)
		case opModI:
			c := ints[bI+in.c]
			if c == 0 {
				return ErrDivByZero
			}
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]%c)
		case opDivU:
			c := uint32(ints[bI+in.c])
			if c == 0 {
				return ErrDivByZero
			}
			ints[bI+in.a] = truncInt(in.t, int64(uint32(ints[bI+in.b])/c))
		case opModU:
			c := uint32(ints[bI+in.c])
			if c == 0 {
				return ErrDivByZero
			}
			ints[bI+in.a] = truncInt(in.t, int64(uint32(ints[bI+in.b])%c))
		case opAndI:
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]&ints[bI+in.c])
		case opOrI:
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]|ints[bI+in.c])
		case opXorI:
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]^ints[bI+in.c])
		case opShlI:
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]<<(uint(ints[bI+in.c])&31))
		case opShrI:
			ints[bI+in.a] = truncInt(in.t, int64(int32(ints[bI+in.b])>>(uint(ints[bI+in.c])&31)))
		case opShrU:
			ints[bI+in.a] = truncInt(in.t, int64(uint32(ints[bI+in.b])>>(uint(ints[bI+in.c])&31)))
		case opNegI:
			ints[bI+in.a] = truncInt(in.t, -ints[bI+in.b])
		case opNotI:
			ints[bI+in.a] = truncInt(in.t, ^ints[bI+in.b])
		case opAddKI:
			ints[bI+in.a] = truncInt(in.t, ints[bI+in.b]+in.k)
		case opMinI:
			x, y := ints[bI+in.b], ints[bI+in.c]
			if y < x {
				x = y
			}
			ints[bI+in.a] = truncInt(in.t, x)
		case opMaxI:
			x, y := ints[bI+in.b], ints[bI+in.c]
			if y > x {
				x = y
			}
			ints[bI+in.a] = truncInt(in.t, x)
		case opAbsI:
			v := ints[bI+in.b]
			if v < 0 {
				v = -v
			}
			ints[bI+in.a] = truncInt(TypeInt, v)
		case opLNotI:
			if ints[bI+in.b] != 0 {
				ints[bI+in.a] = 0
			} else {
				ints[bI+in.a] = 1
			}
		case opLNotF:
			if floats[bF+in.b] != 0 {
				ints[bI+in.a] = 0
			} else {
				ints[bI+in.a] = 1
			}
		case opLNotP:
			if ptrTruthy(ptrs[bP+in.b]) {
				ints[bI+in.a] = 0
			} else {
				ints[bI+in.a] = 1
			}
		case opTruthyI:
			if ints[bI+in.b] != 0 {
				ints[bI+in.a] = 1
			} else {
				ints[bI+in.a] = 0
			}
		case opTruthyF:
			if floats[bF+in.b] != 0 {
				ints[bI+in.a] = 1
			} else {
				ints[bI+in.a] = 0
			}
		case opTruthyP:
			if ptrTruthy(ptrs[bP+in.b]) {
				ints[bI+in.a] = 1
			} else {
				ints[bI+in.a] = 0
			}
		case opAddF:
			floats[bF+in.a] = round32(floats[bF+in.b] + floats[bF+in.c])
		case opSubF:
			floats[bF+in.a] = round32(floats[bF+in.b] - floats[bF+in.c])
		case opMulF:
			floats[bF+in.a] = round32(floats[bF+in.b] * floats[bF+in.c])
		case opDivF:
			floats[bF+in.a] = round32(floats[bF+in.b] / floats[bF+in.c])
		case opNegF:
			floats[bF+in.a] = round32(-floats[bF+in.b])
		case opAddKF:
			floats[bF+in.a] = round32(floats[bF+in.b] + in.f)
		case opMinF:
			floats[bF+in.a] = round32(math.Min(floats[bF+in.b], floats[bF+in.c]))
		case opMaxF:
			floats[bF+in.a] = round32(math.Max(floats[bF+in.b], floats[bF+in.c]))
		case opFAbsF:
			floats[bF+in.a] = round32(math.Abs(floats[bF+in.b]))
		case opFloor:
			floats[bF+in.a] = round32(math.Floor(floats[bF+in.b]))
		case opCeil:
			floats[bF+in.a] = round32(math.Ceil(floats[bF+in.b]))
		case opSqrt:
			tc.CountSpecial(1)
			floats[bF+in.a] = round32(math.Sqrt(floats[bF+in.b]))
		case opRsqrt:
			tc.CountSpecial(1)
			floats[bF+in.a] = round32(1 / math.Sqrt(floats[bF+in.b]))
		case opExp:
			tc.CountSpecial(1)
			floats[bF+in.a] = round32(math.Exp(floats[bF+in.b]))
		case opLog:
			tc.CountSpecial(1)
			floats[bF+in.a] = round32(math.Log(floats[bF+in.b]))
		case opPow:
			tc.CountSpecial(1)
			floats[bF+in.a] = round32(math.Pow(floats[bF+in.b], floats[bF+in.c]))
		case opSin:
			tc.CountSpecial(1)
			floats[bF+in.a] = round32(math.Sin(floats[bF+in.b]))
		case opCos:
			tc.CountSpecial(1)
			floats[bF+in.a] = round32(math.Cos(floats[bF+in.b]))
		case opCmpI:
			ints[bI+in.a] = cmpIRes(in.aux, ints[bI+in.b], ints[bI+in.c])
		case opCmpU:
			ints[bI+in.a] = cmpURes(in.aux, uint32(ints[bI+in.b]), uint32(ints[bI+in.c]))
		case opCmpF:
			ints[bI+in.a] = cmpFRes(in.aux, floats[bF+in.b], floats[bF+in.c])
		case opCmpP:
			ints[bI+in.a] = cmpPRes(in.aux, ptrs[bP+in.b], ptrs[bP+in.c])
		case opPAdd:
			ptrs[bP+in.a] = ptrs[bP+in.b].offset(int(ints[bI+in.c]) * int(in.k))
		case opPAddK:
			ptrs[bP+in.a] = ptrs[bP+in.b].offset(int(in.k))
		case opPDiff:
			ints[bI+in.a] = truncInt(TypeInt, int64(ptrDelta(ptrs[bP+in.b], ptrs[bP+in.c])/int(in.k)))
		case opLoad:
			p := ptrs[bP+in.b]
			// 4-byte global and shared scalars take a direct path to the
			// same ThreadCtx entry points loadMem uses, skipping the Value
			// boxing; traps and truncation are identical.
			if in.kind == bankF && in.t.Kind == KFloat {
				if p.Space == SpaceGlobal {
					f, err := tc.LoadFloat32(p.Glob, 0)
					if err != nil {
						return err
					}
					floats[bF+in.a] = float64(f)
					break
				}
				if p.Space == SpaceShared {
					f, err := tc.SharedLoadFloat32(p.Off / 4)
					if err != nil {
						return err
					}
					floats[bF+in.a] = float64(f)
					break
				}
			} else if in.kind == bankI && in.t.Kind != KFloat {
				if p.Space == SpaceGlobal && in.t.Size() == 4 {
					i, err := tc.LoadInt32(p.Glob, 0)
					if err != nil {
						return err
					}
					ints[bI+in.a] = truncInt(in.t, int64(i))
					break
				}
				if p.Space == SpaceShared {
					i, err := tc.SharedLoadInt32(p.Off / 4)
					if err != nil {
						return err
					}
					ints[bI+in.a] = truncInt(in.t, int64(i))
					break
				}
			}
			v, err := loadMem(tc, p, in.t)
			if err != nil {
				return err
			}
			switch in.kind {
			case bankI:
				ints[bI+in.a] = v.I
			case bankF:
				floats[bF+in.a] = v.F
			default:
				ptrs[bP+in.a] = v.P
			}
		case opStoreI:
			p := ptrs[bP+in.b]
			if in.t.Kind != KFloat {
				if p.Space == SpaceGlobal && in.t.Size() == 4 {
					if err := tc.StoreInt32(p.Glob, 0, int32(ints[bI+in.c])); err != nil {
						return err
					}
					break
				}
				if p.Space == SpaceShared {
					if err := tc.SharedStoreInt32(p.Off/4, int32(ints[bI+in.c])); err != nil {
						return err
					}
					break
				}
			}
			if err := storeMem(tc, p, in.t, Value{T: in.t, I: ints[bI+in.c]}); err != nil {
				return err
			}
		case opStoreF:
			p := ptrs[bP+in.b]
			if in.t.Kind == KFloat {
				if p.Space == SpaceGlobal {
					if err := tc.StoreFloat32(p.Glob, 0, float32(floats[bF+in.c])); err != nil {
						return err
					}
					break
				}
				if p.Space == SpaceShared {
					if err := tc.SharedStoreFloat32(p.Off/4, float32(floats[bF+in.c])); err != nil {
						return err
					}
					break
				}
			}
			if err := storeMem(tc, p, in.t, Value{T: in.t, F: floats[bF+in.c]}); err != nil {
				return err
			}
		case opStoreP:
			if err := storeMem(tc, ptrs[bP+in.b], in.t, Value{T: in.t, P: ptrs[bP+in.c]}); err != nil {
				return err
			}
		case opJmp:
			pc = in.aux
		case opJZ:
			var tv bool
			switch in.kind {
			case bankI:
				tv = ints[bI+in.b] != 0
			case bankF:
				tv = floats[bF+in.b] != 0
			default:
				tv = ptrTruthy(ptrs[bP+in.b])
			}
			tc.CountBranch()
			if !tv {
				pc = in.aux
			}
		case opJNZ:
			var tv bool
			switch in.kind {
			case bankI:
				tv = ints[bI+in.b] != 0
			case bankF:
				tv = floats[bF+in.b] != 0
			default:
				tv = ptrTruthy(ptrs[bP+in.b])
			}
			tc.CountBranch()
			if tv {
				pc = in.aux
			}
		case opCheckDepth:
			if depth >= maxCallDepth {
				return ErrCallDepth
			}
		case opCall:
			cs := bc.calls[in.aux]
			tgt := cs.target
			nbI, nbF, nbP := bI+fn.numI, bF+fn.numF, bP+fn.numP
			st.ints = grow(st.ints, int(nbI+tgt.numI))
			st.floats = grow(st.floats, int(nbF+tgt.numF))
			st.ptrs = grow(st.ptrs, int(nbP+tgt.numP))
			ints, floats, ptrs = st.ints, st.floats, st.ptrs
			for _, m := range cs.moves {
				switch m.bank {
				case bankI:
					ints[nbI+m.dst] = ints[bI+m.src]
				case bankF:
					floats[nbF+m.dst] = floats[bF+m.src]
				default:
					ptrs[nbP+m.dst] = ptrs[bP+m.src]
				}
			}
			var dstAbs int32
			switch cs.dst.bank {
			case bankI:
				dstAbs = bI + cs.dst.reg
			case bankF:
				dstAbs = bF + cs.dst.reg
			case bankP:
				dstAbs = bP + cs.dst.reg
			}
			stack = append(stack, vmRet{pc: pc, bI: bI, bF: bF, bP: bP,
				fn: fn, dstBank: cs.dst.bank, dstReg: dstAbs})
			bI, bF, bP = nbI, nbF, nbP
			fn = tgt
			pc = tgt.entry
			depth++
		case opRet:
			if len(stack) == 0 {
				return nil
			}
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch fr.dstBank {
			case bankI:
				var v int64
				if in.kind == bankI {
					v = ints[bI+in.b]
				}
				ints[fr.dstReg] = v
			case bankF:
				var v float64
				if in.kind == bankF {
					v = floats[bF+in.b]
				}
				floats[fr.dstReg] = v
			case bankP:
				var v Pointer
				if in.kind == bankP {
					v = ptrs[bP+in.b]
				}
				ptrs[fr.dstReg] = v
			}
			bI, bF, bP = fr.bI, fr.bF, fr.bP
			fn = fr.fn
			pc = fr.pc
			depth--
		case opSync:
			if err := tc.SyncThreads(); err != nil {
				return err
			}
		case opAtomic:
			spec := bc.atomics[in.aux]
			var iv, iv2 int64
			var fv float64
			if atomFloatVal(spec) {
				fv = floats[bF+in.c]
			} else {
				iv = ints[bI+in.c]
			}
			if spec.name == "atomicCAS" {
				iv2 = ints[bI+spec.val2]
			}
			v, err := vmAtomic(tc, spec, ptrs[bP+in.b], iv, fv, iv2)
			if err != nil {
				return err
			}
			if in.kind == bankF {
				floats[bF+in.a] = v.F
			} else {
				ints[bI+in.a] = v.I
			}
		case opTrap:
			return bc.traps[in.aux]
		}
	}
}
