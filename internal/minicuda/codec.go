package minicuda

// Binary program codec: the durable-artifact serialization behind
// internal/castore. EncodeProgram flattens a compiled (parsed + analyzed)
// Program into a versioned, self-contained byte stream; DecodeProgram
// rebuilds an equivalent Program without re-running the lexer, parser, or
// semantic analyzer. The bytecode and fused warp streams are NOT
// serialized — they are riddled with AST-pointer-keyed maps, interned
// *Type pointers, and error values — instead the decoder re-runs the
// deterministic lowerer (exactly what Compile does after Analyze), so a
// decoded Program carries the same ast/bytecode/bytecode-warp artifact
// set as a freshly compiled one and launches on every engine tier.
//
// Format (all integers are varints unless noted):
//
//	magic "MCPG" | version | dialect | usesBarrier | constSize
//	string table: count, then len+bytes per entry
//	type table:   count, then kind [+ elem-index, len, space] per entry;
//	              scalar entries decode to the package singletons, and an
//	              entry's elem index always precedes it in the table
//	symbol table: count, then {name, kind, type, slot, off, isArg}
//	functions:    count, then header + params + Syms indices + body tree
//	globals:      count, then {qual, decl}
//
// Expressions and statements are tagged unions carrying their full
// source Token, so runtime traps and diagnostics on a decoded program
// format identically to the compiled original. Sema-computed scalar
// caches that are pure functions of encoded fields (literal value boxes,
// builtin-variable base IDs) are recomputed during decode rather than
// stored.
//
// The decoder trusts nothing: every index is bounds-checked, counts are
// sanity-capped against the input size, recursion is depth-limited, and
// any panic from rebuilding a structurally broken tree is converted to
// an error. Callers layering integrity on top (castore) additionally
// hash-verify payloads, so a decode error here means a codec version
// skew or corruption — and is always survivable.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// codecMagic and codecVersion identify the stream layout. Bump the
// version on any incompatible change; old entries then decode with an
// error and the caller falls back to compiling from source.
const (
	codecMagic   = "MCPG"
	codecVersion = 1
)

// ErrCodecVersion reports an artifact written by an incompatible codec
// version (or something that is not a program stream at all).
var ErrCodecVersion = errors.New("minicuda: unsupported program stream version")

// maxCodecDepth bounds expression/statement nesting during decode.
const maxCodecDepth = 4096

// Expression tags.
const (
	tagExprNil = iota
	tagIntLit
	tagFloatLit
	tagBoolLit
	tagVarRef
	tagBuiltinVarRef
	tagUnary
	tagPostfix
	tagBinary
	tagAssign
	tagTernary
	tagIndex
	tagCall
	tagCast
)

// Statement tags.
const (
	tagStmtNil = iota
	tagBlock
	tagDeclStmt
	tagExprStmt
	tagIfStmt
	tagForStmt
	tagWhileStmt
	tagReturnStmt
	tagBreakStmt
	tagContinueStmt
	tagEmptyStmt
)

// ---- Encoder ---------------------------------------------------------------

type typeRec struct {
	kind  Kind
	elem  uint64 // 1-based index into the type table; 0 = none
	n     int
	space MemSpace
}

type symRec struct {
	name  uint64
	kind  SymKind
	typ   uint64 // 1-based type ref; 0 = nil
	slot  int
	off   int
	isArg bool
}

type progEncoder struct {
	tree []byte

	strs   []string
	strIdx map[string]uint64

	typeRecs []typeRec
	typeIdx  map[*Type]uint64

	symRecs []symRec
	symIdx  map[*Symbol]uint64

	fnIdx map[*Function]uint64
}

// EncodeProgram serializes a compiled program. The program must have
// passed Analyze (Compile guarantees this); encoding a half-built parse
// tree is not supported.
func EncodeProgram(p *Program) ([]byte, error) {
	if p == nil {
		return nil, errors.New("minicuda: cannot encode nil program")
	}
	e := &progEncoder{
		strIdx:  map[string]uint64{},
		typeIdx: map[*Type]uint64{},
		symIdx:  map[*Symbol]uint64{},
		fnIdx:   map[*Function]uint64{},
	}
	// Pre-number every function so Call.Fn references resolve regardless
	// of definition order.
	for i, f := range p.Funcs {
		e.fnIdx[f] = uint64(i)
	}

	// Encode the tree first: it interns strings, types, and symbols into
	// the tables as a side effect, and the tables are emitted ahead of it
	// in the final stream so the decoder reads them up front.
	e.u(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		e.function(f)
	}
	e.u(uint64(len(p.Globals)))
	for _, g := range p.Globals {
		e.str(g.Qual)
		e.varDecl(g.Decl)
	}

	var out []byte
	out = append(out, codecMagic...)
	out = binary.AppendUvarint(out, codecVersion)
	out = binary.AppendUvarint(out, uint64(p.Dialect))
	out = appendBool(out, p.usesBarrier)
	out = binary.AppendUvarint(out, uint64(p.constSize))

	out = binary.AppendUvarint(out, uint64(len(e.strs)))
	for _, s := range e.strs {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	out = binary.AppendUvarint(out, uint64(len(e.typeRecs)))
	for _, t := range e.typeRecs {
		out = binary.AppendUvarint(out, uint64(t.kind))
		switch t.kind {
		case KPtr:
			out = binary.AppendUvarint(out, t.elem)
			out = binary.AppendUvarint(out, uint64(t.space))
		case KArray:
			out = binary.AppendUvarint(out, t.elem)
			out = binary.AppendUvarint(out, uint64(t.n))
			out = binary.AppendUvarint(out, uint64(t.space))
		}
	}
	out = binary.AppendUvarint(out, uint64(len(e.symRecs)))
	for _, s := range e.symRecs {
		out = binary.AppendUvarint(out, s.name)
		out = binary.AppendUvarint(out, uint64(s.kind))
		out = binary.AppendUvarint(out, s.typ)
		out = binary.AppendUvarint(out, uint64(s.slot))
		out = binary.AppendUvarint(out, uint64(s.off))
		out = appendBool(out, s.isArg)
	}
	out = append(out, e.tree...)
	return out, nil
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func (e *progEncoder) u(v uint64) { e.tree = binary.AppendUvarint(e.tree, v) }
func (e *progEncoder) i(v int64)  { e.tree = binary.AppendVarint(e.tree, v) }
func (e *progEncoder) b(v bool)   { e.tree = appendBool(e.tree, v) }
func (e *progEncoder) f64(v float64) {
	e.tree = binary.LittleEndian.AppendUint64(e.tree, math.Float64bits(v))
}

// str interns s and writes its table index.
func (e *progEncoder) str(s string) {
	idx, ok := e.strIdx[s]
	if !ok {
		idx = uint64(len(e.strs))
		e.strIdx[s] = idx
		e.strs = append(e.strs, s)
	}
	e.u(idx)
}

// typeRef interns t (by pointer — shared types share one entry, scalar
// singletons collapse at decode) and returns its 1-based ref; 0 is nil.
func (e *progEncoder) typeRef(t *Type) uint64 {
	if t == nil {
		return 0
	}
	if idx, ok := e.typeIdx[t]; ok {
		return idx
	}
	var elem uint64
	if t.Elem != nil {
		elem = e.typeRef(t.Elem) // interned first: elem index < own index
	}
	idx := uint64(len(e.typeRecs)) + 1
	e.typeIdx[t] = idx
	e.typeRecs = append(e.typeRecs, typeRec{kind: t.Kind, elem: elem, n: t.Len, space: t.Space})
	return idx
}

func (e *progEncoder) typ(t *Type) { e.u(e.typeRef(t)) }

// symRef interns sym and returns its 1-based ref; 0 is nil.
func (e *progEncoder) symRef(sym *Symbol) uint64 {
	if sym == nil {
		return 0
	}
	if idx, ok := e.symIdx[sym]; ok {
		return idx
	}
	typ := e.typeRef(sym.Type)
	nameIdx, ok := e.strIdx[sym.Name]
	if !ok {
		nameIdx = uint64(len(e.strs))
		e.strIdx[sym.Name] = nameIdx
		e.strs = append(e.strs, sym.Name)
	}
	idx := uint64(len(e.symRecs)) + 1
	e.symIdx[sym] = idx
	e.symRecs = append(e.symRecs, symRec{
		name: nameIdx, kind: sym.Kind, typ: typ,
		slot: sym.Slot, off: sym.Off, isArg: sym.IsArg,
	})
	return idx
}

func (e *progEncoder) sym(sym *Symbol) { e.u(e.symRef(sym)) }

func (e *progEncoder) token(t Token) {
	e.u(uint64(t.Kind))
	e.str(t.Text)
	e.u(uint64(t.Line))
	e.u(uint64(t.Col))
}

func (e *progEncoder) function(f *Function) {
	e.str(f.Name)
	e.typ(f.Ret)
	e.b(f.IsKernel)
	e.token(f.tok)
	e.u(uint64(f.NumSlots))
	e.u(uint64(f.SharedUse))
	e.u(uint64(len(f.Syms)))
	for _, s := range f.Syms {
		e.sym(s)
	}
	e.u(uint64(len(f.Params)))
	for _, p := range f.Params {
		e.varDecl(p)
	}
	e.stmt(f.Body)
}

func (e *progEncoder) varDecl(d *VarDecl) {
	e.str(d.Name)
	e.typ(d.Type)
	e.expr(d.Init)
	e.b(d.Shared)
	e.sym(d.Sym)
	e.token(d.tok)
}

func (e *progEncoder) expr(x Expr) {
	if x == nil {
		e.u(tagExprNil)
		return
	}
	switch n := x.(type) {
	case *IntLit:
		e.u(tagIntLit)
		e.exprBase(&n.exprBase)
		e.i(n.Val)
	case *FloatLit:
		e.u(tagFloatLit)
		e.exprBase(&n.exprBase)
		e.f64(n.Val)
	case *BoolLit:
		e.u(tagBoolLit)
		e.exprBase(&n.exprBase)
		e.b(n.Val)
	case *VarRef:
		e.u(tagVarRef)
		e.exprBase(&n.exprBase)
		e.str(n.Name)
		e.sym(n.Sym)
	case *BuiltinVarRef:
		e.u(tagBuiltinVarRef)
		e.exprBase(&n.exprBase)
		e.str(n.Base)
		e.u(uint64(n.Dim))
	case *Unary:
		e.u(tagUnary)
		e.exprBase(&n.exprBase)
		e.str(n.Op)
		e.expr(n.X)
	case *Postfix:
		e.u(tagPostfix)
		e.exprBase(&n.exprBase)
		e.str(n.Op)
		e.expr(n.X)
	case *Binary:
		e.u(tagBinary)
		e.exprBase(&n.exprBase)
		e.str(n.Op)
		e.expr(n.L)
		e.expr(n.R)
	case *Assign:
		e.u(tagAssign)
		e.exprBase(&n.exprBase)
		e.str(n.Op)
		e.expr(n.L)
		e.expr(n.R)
	case *Ternary:
		e.u(tagTernary)
		e.exprBase(&n.exprBase)
		e.expr(n.Cond)
		e.expr(n.Then)
		e.expr(n.Else)
	case *Index:
		e.u(tagIndex)
		e.exprBase(&n.exprBase)
		e.expr(n.Base)
		e.expr(n.Idx)
	case *Call:
		e.u(tagCall)
		e.exprBase(&n.exprBase)
		e.str(n.Name)
		e.str(n.Builtin)
		if n.Fn != nil {
			e.u(e.fnIdx[n.Fn] + 1)
		} else {
			e.u(0)
		}
		e.u(uint64(len(n.Args)))
		for _, a := range n.Args {
			e.expr(a)
		}
	case *Cast:
		e.u(tagCast)
		e.exprBase(&n.exprBase)
		e.typ(n.To)
		e.expr(n.X)
	default:
		// Unreachable for programs produced by Parse; a new node type
		// added without codec support must fail loudly in tests.
		panic(fmt.Sprintf("minicuda: codec: unknown expression %T", x))
	}
}

func (e *progEncoder) exprBase(b *exprBase) {
	e.token(b.tok)
	e.typ(b.typ)
}

func (e *progEncoder) stmt(s Stmt) {
	if s == nil {
		e.u(tagStmtNil)
		return
	}
	switch n := s.(type) {
	case *Block:
		e.u(tagBlock)
		e.token(n.tok)
		e.u(uint64(len(n.Stmts)))
		for _, st := range n.Stmts {
			e.stmt(st)
		}
	case *DeclStmt:
		e.u(tagDeclStmt)
		e.token(n.tok)
		e.u(uint64(len(n.Decls)))
		for _, d := range n.Decls {
			e.varDecl(d)
		}
	case *ExprStmt:
		e.u(tagExprStmt)
		e.token(n.tok)
		e.expr(n.X)
	case *IfStmt:
		e.u(tagIfStmt)
		e.token(n.tok)
		e.expr(n.Cond)
		e.stmt(n.Then)
		e.stmt(n.Else)
	case *ForStmt:
		e.u(tagForStmt)
		e.token(n.tok)
		e.stmt(n.Init)
		e.expr(n.Cond)
		e.expr(n.Post)
		e.stmt(n.Body)
	case *WhileStmt:
		e.u(tagWhileStmt)
		e.token(n.tok)
		e.expr(n.Cond)
		e.stmt(n.Body)
		e.b(n.DoFirst)
	case *ReturnStmt:
		e.u(tagReturnStmt)
		e.token(n.tok)
		e.expr(n.X)
	case *BreakStmt:
		e.u(tagBreakStmt)
		e.token(n.tok)
	case *ContinueStmt:
		e.u(tagContinueStmt)
		e.token(n.tok)
	case *EmptyStmt:
		e.u(tagEmptyStmt)
		e.token(n.tok)
	default:
		panic(fmt.Sprintf("minicuda: codec: unknown statement %T", s))
	}
}

// ---- Decoder ---------------------------------------------------------------

type progDecoder struct {
	data  []byte
	off   int
	depth int

	strs  []string
	types []*Type
	syms  []*Symbol
	funcs []*Function
}

// DecodeProgram rebuilds a program from an EncodeProgram stream and
// eagerly re-lowers it to bytecode and the fused warp stream (exactly
// what Compile does after analysis), so the decoded program is
// launch-ready on every engine tier. Any corruption — wrong version,
// truncation, dangling index — returns an error, never a panic: callers
// treat a decode failure as a cache miss and recompile from source.
func DecodeProgram(data []byte) (p *Program, err error) {
	defer func() {
		// The lowerer and validation walk a decoder-built tree; convert
		// any structural surprise into a decode error so a corrupt
		// artifact can only ever degrade to a recompile.
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("minicuda: decode program: %v", r)
		}
	}()
	d := &progDecoder{data: data}
	if len(data) < len(codecMagic) || string(data[:len(codecMagic)]) != codecMagic {
		return nil, ErrCodecVersion
	}
	d.off = len(codecMagic)
	if v := d.u(); v != codecVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrCodecVersion, v, codecVersion)
	}

	prog := &Program{
		Dialect:   Dialect(d.u()),
		kernels:   map[string]*Function{},
		functions: map[string]*Function{},
		constVars: map[string]*Symbol{},
	}
	prog.usesBarrier = d.b()
	prog.constSize = int(d.u())

	// String table.
	n := d.count()
	d.strs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		d.strs = append(d.strs, d.rawString())
	}
	// Type table: scalar kinds collapse onto the package singletons so
	// decoded programs share the same interned scalars as compiled ones.
	n = d.count()
	d.types = make([]*Type, 0, n)
	for i := 0; i < n; i++ {
		kind := Kind(d.u())
		switch kind {
		case KVoid:
			d.types = append(d.types, TypeVoid)
		case KBool:
			d.types = append(d.types, TypeBool)
		case KChar:
			d.types = append(d.types, TypeChar)
		case KUChar:
			d.types = append(d.types, TypeUChar)
		case KInt:
			d.types = append(d.types, TypeInt)
		case KUInt:
			d.types = append(d.types, TypeUInt)
		case KFloat:
			d.types = append(d.types, TypeFloat)
		case KPtr:
			elem := d.typeAt(d.u())
			space := MemSpace(d.u())
			d.types = append(d.types, &Type{Kind: KPtr, Elem: elem, Space: space})
		case KArray:
			elem := d.typeAt(d.u())
			ln := int(d.u())
			space := MemSpace(d.u())
			d.types = append(d.types, &Type{Kind: KArray, Elem: elem, Len: ln, Space: space})
		default:
			d.fail("unknown type kind %d", kind)
		}
	}
	// Symbol table.
	n = d.count()
	d.syms = make([]*Symbol, 0, n)
	for i := 0; i < n; i++ {
		d.syms = append(d.syms, &Symbol{
			Name:  d.str(),
			Kind:  SymKind(d.u()),
			Type:  d.typeRef(),
			Slot:  int(d.u()),
			Off:   int(d.u()),
			IsArg: d.b(),
		})
	}

	// Functions: allocate all headers first so calls resolve forward
	// references, then fill each in order.
	n = d.count()
	d.funcs = make([]*Function, n)
	for i := range d.funcs {
		d.funcs[i] = &Function{}
	}
	for _, f := range d.funcs {
		d.function(f)
	}
	prog.Funcs = d.funcs

	n = d.count()
	for i := 0; i < n; i++ {
		g := &GlobalVar{Qual: d.str(), Decl: d.varDecl()}
		prog.Globals = append(prog.Globals, g)
	}
	if d.off != len(d.data) {
		d.fail("%d trailing bytes", len(d.data)-d.off)
	}

	// Rebuild the name-resolution maps Analyze would have produced.
	for _, f := range prog.Funcs {
		if f.Name == "" || prog.functions[f.Name] != nil {
			d.fail("function table broken at %q", f.Name)
		}
		prog.functions[f.Name] = f
		if f.IsKernel {
			prog.kernels[f.Name] = f
		}
	}
	for _, g := range prog.Globals {
		if g.Decl == nil || g.Decl.Sym == nil {
			d.fail("global without a resolved symbol")
		}
		prog.constVars[g.Decl.Name] = g.Decl.Sym
	}
	if len(prog.kernels) == 0 {
		d.fail("no kernels")
	}

	// Re-derive the executable artifacts eagerly, like Compile: the
	// lowerer is deterministic over the (fully annotated) tree, so the
	// decoded program's bytecode and warp streams match the original's.
	prog.warpcode()
	return prog, nil
}

// fail aborts the decode via panic; DecodeProgram's recover converts it
// into the returned error.
func (d *progDecoder) fail(format string, args ...interface{}) {
	panic(fmt.Sprintf("offset %d: %s", d.off, fmt.Sprintf(format, args...)))
}

func (d *progDecoder) u() uint64 {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
	}
	d.off += n
	return v
}

func (d *progDecoder) i() int64 {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
	}
	d.off += n
	return v
}

func (d *progDecoder) b() bool {
	if d.off >= len(d.data) {
		d.fail("truncated bool")
	}
	v := d.data[d.off]
	d.off++
	return v != 0
}

func (d *progDecoder) f64() float64 {
	if d.off+8 > len(d.data) {
		d.fail("truncated float64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// count reads a table/sequence length, capped by the bytes remaining —
// every encoded element costs at least one byte, so a larger count is
// corruption, not a big program.
func (d *progDecoder) count() int {
	n := d.u()
	if n > uint64(len(d.data)-d.off) {
		d.fail("count %d exceeds input", n)
	}
	return int(n)
}

func (d *progDecoder) rawString() string {
	n := d.u()
	if n > uint64(len(d.data)-d.off) {
		d.fail("truncated string")
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *progDecoder) str() string {
	idx := d.u()
	if idx >= uint64(len(d.strs)) {
		d.fail("string index %d of %d", idx, len(d.strs))
	}
	return d.strs[idx]
}

// typeAt resolves a 1-based type ref against the table built so far
// (table entries may only reference earlier entries).
func (d *progDecoder) typeAt(ref uint64) *Type {
	if ref == 0 || ref > uint64(len(d.types)) {
		d.fail("type index %d of %d", ref, len(d.types))
	}
	return d.types[ref-1]
}

func (d *progDecoder) typeRef() *Type {
	ref := d.u()
	if ref == 0 {
		return nil
	}
	return d.typeAt(ref)
}

func (d *progDecoder) symRef() *Symbol {
	ref := d.u()
	if ref == 0 {
		return nil
	}
	if ref > uint64(len(d.syms)) {
		d.fail("symbol index %d of %d", ref, len(d.syms))
	}
	return d.syms[ref-1]
}

func (d *progDecoder) fnRef() *Function {
	ref := d.u()
	if ref == 0 {
		return nil
	}
	if ref > uint64(len(d.funcs)) {
		d.fail("function index %d of %d", ref, len(d.funcs))
	}
	return d.funcs[ref-1]
}

func (d *progDecoder) token() Token {
	return Token{
		Kind: TokKind(d.u()),
		Text: d.str(),
		Line: int(d.u()),
		Col:  int(d.u()),
	}
}

func (d *progDecoder) function(f *Function) {
	f.Name = d.str()
	f.Ret = d.typeRef()
	f.IsKernel = d.b()
	f.tok = d.token()
	f.NumSlots = int(d.u())
	f.SharedUse = int(d.u())
	n := d.count()
	f.Syms = make([]*Symbol, 0, n)
	for i := 0; i < n; i++ {
		f.Syms = append(f.Syms, d.symRef())
	}
	n = d.count()
	f.Params = make([]*VarDecl, 0, n)
	for i := 0; i < n; i++ {
		f.Params = append(f.Params, d.varDecl())
	}
	body, ok := d.stmt().(*Block)
	if !ok {
		d.fail("function %q body is not a block", f.Name)
	}
	f.Body = body
}

func (d *progDecoder) varDecl() *VarDecl {
	return &VarDecl{
		Name:   d.str(),
		Type:   d.typeRef(),
		Init:   d.expr(),
		Shared: d.b(),
		Sym:    d.symRef(),
		tok:    d.token(),
	}
}

func (d *progDecoder) enter() {
	d.depth++
	if d.depth > maxCodecDepth {
		d.fail("nesting exceeds %d", maxCodecDepth)
	}
}

func (d *progDecoder) expr() Expr {
	tag := d.u()
	if tag == tagExprNil {
		return nil
	}
	d.enter()
	defer func() { d.depth-- }()
	base := exprBase{tok: d.token(), typ: d.typeRef()}
	switch tag {
	case tagIntLit:
		n := &IntLit{exprBase: base, Val: d.i()}
		// Recomputed caches: sema boxes literals once so the hot path
		// avoids re-boxing; the formulas are pure over encoded fields.
		n.val = intValue(n.ResultType(), n.Val)
		return n
	case tagFloatLit:
		n := &FloatLit{exprBase: base, Val: d.f64()}
		n.val = floatValue(n.Val)
		return n
	case tagBoolLit:
		n := &BoolLit{exprBase: base, Val: d.b()}
		var i int64
		if n.Val {
			i = 1
		}
		n.val = intValue(TypeBool, i)
		return n
	case tagVarRef:
		n := &VarRef{exprBase: base, Name: d.str(), Sym: d.symRef()}
		if n.Sym == nil {
			d.fail("variable reference %q without a symbol", n.Name)
		}
		return n
	case tagBuiltinVarRef:
		n := &BuiltinVarRef{exprBase: base, Base: d.str(), Dim: int(d.u())}
		switch n.Base { // same resolution as sema
		case "threadIdx":
			n.baseID = baseThreadIdx
		case "blockIdx":
			n.baseID = baseBlockIdx
		case "blockDim":
			n.baseID = baseBlockDim
		default:
			n.baseID = baseGridDim
		}
		return n
	case tagUnary:
		return &Unary{exprBase: base, Op: d.str(), X: d.mustExpr()}
	case tagPostfix:
		return &Postfix{exprBase: base, Op: d.str(), X: d.mustExpr()}
	case tagBinary:
		return &Binary{exprBase: base, Op: d.str(), L: d.mustExpr(), R: d.mustExpr()}
	case tagAssign:
		return &Assign{exprBase: base, Op: d.str(), L: d.mustExpr(), R: d.mustExpr()}
	case tagTernary:
		return &Ternary{exprBase: base, Cond: d.mustExpr(), Then: d.mustExpr(), Else: d.mustExpr()}
	case tagIndex:
		return &Index{exprBase: base, Base: d.mustExpr(), Idx: d.mustExpr()}
	case tagCall:
		n := &Call{exprBase: base, Name: d.str(), Builtin: d.str(), Fn: d.fnRef()}
		argc := d.count()
		n.Args = make([]Expr, 0, argc)
		for i := 0; i < argc; i++ {
			n.Args = append(n.Args, d.mustExpr())
		}
		return n
	case tagCast:
		return &Cast{exprBase: base, To: d.typeRef(), X: d.mustExpr()}
	}
	d.fail("unknown expression tag %d", tag)
	return nil
}

// mustExpr decodes an expression that the grammar requires to be present.
func (d *progDecoder) mustExpr() Expr {
	x := d.expr()
	if x == nil {
		d.fail("missing required expression")
	}
	return x
}

func (d *progDecoder) stmt() Stmt {
	tag := d.u()
	if tag == tagStmtNil {
		return nil
	}
	d.enter()
	defer func() { d.depth-- }()
	base := stmtBase{tok: d.token()}
	switch tag {
	case tagBlock:
		n := &Block{stmtBase: base}
		cnt := d.count()
		n.Stmts = make([]Stmt, 0, cnt)
		for i := 0; i < cnt; i++ {
			n.Stmts = append(n.Stmts, d.mustStmt())
		}
		return n
	case tagDeclStmt:
		n := &DeclStmt{stmtBase: base}
		cnt := d.count()
		n.Decls = make([]*VarDecl, 0, cnt)
		for i := 0; i < cnt; i++ {
			n.Decls = append(n.Decls, d.varDecl())
		}
		return n
	case tagExprStmt:
		return &ExprStmt{stmtBase: base, X: d.mustExpr()}
	case tagIfStmt:
		return &IfStmt{stmtBase: base, Cond: d.mustExpr(), Then: d.mustStmt(), Else: d.stmt()}
	case tagForStmt:
		return &ForStmt{stmtBase: base, Init: d.stmt(), Cond: d.expr(), Post: d.expr(), Body: d.mustStmt()}
	case tagWhileStmt:
		return &WhileStmt{stmtBase: base, Cond: d.mustExpr(), Body: d.mustStmt(), DoFirst: d.b()}
	case tagReturnStmt:
		return &ReturnStmt{stmtBase: base, X: d.expr()}
	case tagBreakStmt:
		return &BreakStmt{stmtBase: base}
	case tagContinueStmt:
		return &ContinueStmt{stmtBase: base}
	case tagEmptyStmt:
		return &EmptyStmt{stmtBase: base}
	}
	d.fail("unknown statement tag %d", tag)
	return nil
}

func (d *progDecoder) mustStmt() Stmt {
	s := d.stmt()
	if s == nil {
		d.fail("missing required statement")
	}
	return s
}
