package minicuda

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse preprocesses, lexes, and parses source in the given dialect,
// returning an unresolved Program (run Analyze to complete compilation, or
// use Compile which does both).
func Parse(src string, dialect Dialect) (*Program, error) {
	pp, err := Preprocess(src)
	if err != nil {
		return nil, err
	}
	toks, err := Lex(pp)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, dialect: dialect}
	return p.parseProgram()
}

type parser struct {
	toks    []Token
	pos     int
	dialect Dialect
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.cur().Kind != TokEOF && p.cur().Text == text {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) (Token, error) {
	t := p.cur()
	if t.Text != text {
		return t, errAt(t, "expected %q, found %s", text, t)
	}
	p.next()
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// qualifier sets gathered before a declaration.
type quals struct {
	kernel   bool // __global__ (CUDA) or __kernel (OpenCL)
	device   bool
	shared   bool // __shared__ or __local
	constant bool // __constant__
	isConst  bool // const
}

var genericQualWords = map[string]string{
	"__restrict__": "restrict", "static": "static", "inline": "inline",
	"extern": "extern", "const": "const",
}

var cudaQualWords = map[string]string{
	"__global__": "kernel", "__device__": "device", "__host__": "host",
	"__shared__": "shared", "__constant__": "constant",
}

var openclQualWords = map[string]string{
	"__kernel": "kernel", "__global": "globalptr",
	"__local": "shared", "__constant": "constant", "__private": "private",
}

func (p *parser) qualWord(text string) (string, bool) {
	if w, ok := genericQualWords[text]; ok {
		return w, true
	}
	if p.dialect == DialectOpenCL {
		w, ok := openclQualWords[text]
		return w, ok
	}
	w, ok := cudaQualWords[text]
	return w, ok
}

func (p *parser) parseQuals() quals {
	var q quals
	for {
		w, ok := p.qualWord(p.cur().Text)
		if !ok {
			return q
		}
		switch w {
		case "kernel":
			q.kernel = true
		case "device":
			q.device = true
		case "shared":
			q.shared = true
		case "constant":
			q.constant = true
		case "const":
			q.isConst = true
		}
		p.next()
	}
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	switch p.cur().Text {
	case "void", "int", "unsigned", "float", "double", "bool", "char", "long",
		"short", "size_t":
		return true
	}
	return false
}

// parseBaseType parses a scalar type name (no pointers).
func (p *parser) parseBaseType() (*Type, error) {
	t := p.cur()
	switch t.Text {
	case "void":
		p.next()
		return TypeVoid, nil
	case "bool":
		p.next()
		return TypeBool, nil
	case "float", "double":
		// double is accepted and treated as float: course GPUs of the era
		// were taught with single precision.
		p.next()
		return TypeFloat, nil
	case "char":
		p.next()
		return TypeChar, nil
	case "size_t":
		p.next()
		return TypeUInt, nil
	case "int", "long", "short":
		p.next()
		return TypeInt, nil
	case "unsigned":
		p.next()
		switch p.cur().Text {
		case "char":
			p.next()
			return TypeUChar, nil
		case "int", "long", "short":
			p.next()
			return TypeUInt, nil
		}
		return TypeUInt, nil
	}
	return nil, errAt(t, "expected type, found %s", t)
}

// parsePtrSuffix wraps base in pointer types for each '*'.
func (p *parser) parsePtrSuffix(base *Type, space MemSpace) *Type {
	for p.accept("*") {
		base = PtrTo(base, space)
		// const after * (e.g. float* const) is accepted and ignored.
		for p.accept("const") || p.accept("__restrict__") {
		}
	}
	return base
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{Dialect: p.dialect}
	for p.cur().Kind != TokEOF {
		q := p.parseQuals()
		if !p.isTypeStart() {
			return nil, errAt(p.cur(), "expected declaration, found %s", p.cur())
		}
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		space := SpaceGlobal
		if q.constant {
			space = SpaceConst
		}
		typ := p.parsePtrSuffix(base, space)
		nameTok := p.cur()
		if nameTok.Kind != TokIdent {
			return nil, errAt(nameTok, "expected name, found %s", nameTok)
		}
		p.next()
		if p.cur().Text == "(" {
			fn, err := p.parseFunctionRest(q, typ, nameTok)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		// File-scope variable: only __constant__ (or const arrays used as
		// masks) are meaningful on the device.
		vd, err := p.parseDeclaratorRest(typ, nameTok, space)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		qual := "__constant__"
		if !q.constant {
			if !q.isConst {
				return nil, errAt(nameTok, "file-scope variable %q must be __constant__ or const", nameTok.Text)
			}
		}
		prog.Globals = append(prog.Globals, &GlobalVar{Decl: vd, Qual: qual})
	}
	return prog, nil
}

func (p *parser) parseFunctionRest(q quals, ret *Type, nameTok Token) (*Function, error) {
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &Function{Name: nameTok.Text, Ret: ret, IsKernel: q.kernel, tok: nameTok}
	if !p.accept(")") {
		for {
			if p.accept("void") && p.cur().Text == ")" {
				p.next()
				break
			}
			pq := p.parseQuals()
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			space := SpaceGlobal
			if pq.shared {
				space = SpaceShared
			}
			if pq.constant {
				space = SpaceConst
			}
			typ := p.parsePtrSuffix(base, space)
			pt := p.cur()
			if pt.Kind != TokIdent {
				return nil, errAt(pt, "expected parameter name, found %s", pt)
			}
			p.next()
			vd, err := p.parseDeclaratorRest(typ, pt, space)
			if err != nil {
				return nil, err
			}
			if vd.Init != nil {
				return nil, errAt(pt, "parameter %q cannot have a default value", pt.Text)
			}
			fn.Params = append(fn.Params, vd)
			if p.accept(",") {
				continue
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if p.accept(";") {
		return nil, errAt(nameTok, "function %q declared but not defined", nameTok.Text)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseDeclaratorRest parses array dimensions and an optional initializer
// after the declarator name has been consumed.
func (p *parser) parseDeclaratorRest(typ *Type, nameTok Token, space MemSpace) (*VarDecl, error) {
	var dims []int
	for p.accept("[") {
		dt := p.cur()
		dim, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		n, ok := foldConstInt(dim)
		if !ok || n <= 0 || n > 1<<24 {
			return nil, errAt(dt, "array dimension must be a positive integer constant")
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		dims = append(dims, int(n))
	}
	for i := len(dims) - 1; i >= 0; i-- {
		typ = ArrayOf(typ, dims[i], space)
	}
	vd := &VarDecl{Name: nameTok.Text, Type: typ, tok: nameTok}
	if p.accept("=") {
		if p.cur().Text == "{" {
			return nil, errAt(p.cur(), "aggregate initializers are not supported; initialize from the host")
		}
		init, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = init
	}
	return vd, nil
}

// ---- Statements -----------------------------------------------------------

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{tok: lb}}
	for !p.accept("}") {
		if p.cur().Kind == TokEOF {
			return nil, errAt(lb, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Text {
	case "{":
		return p.parseBlock()
	case ";":
		p.next()
		return &EmptyStmt{stmtBase{t}}, nil
	case "if":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept("else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{stmtBase{t}, cond, then, els}, nil
	case "for":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.accept(";") {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			init = s
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		var cond Expr
		if p.cur().Text != ";" {
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cond = c
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		var post Expr
		if p.cur().Text != ")" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			post = e
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{stmtBase{t}, init, cond, post, body}, nil
	case "while":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase{t}, cond, body, false}, nil
	case "do":
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("while"); err != nil {
			return nil, err
		}
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase{t}, cond, body, true}, nil
	case "return":
		p.next()
		var x Expr
		if p.cur().Text != ";" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			x = e
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{stmtBase{t}, x}, nil
	case "break":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{stmtBase{t}}, nil
	case "continue":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{stmtBase{t}}, nil
	case "switch", "goto":
		return nil, errAt(t, "%q statements are not supported", t.Text)
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses a declaration or an expression statement (no
// trailing semicolon), as allowed in a for-init clause.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	t := p.cur()
	if w, ok := p.qualWord(t.Text); ok && (w == "shared" || w == "constant" || w == "const" || w == "static") || p.isTypeStart() {
		q := p.parseQuals()
		if !p.isTypeStart() {
			return nil, errAt(p.cur(), "expected type after qualifier")
		}
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		space := SpaceLocal
		if q.shared {
			space = SpaceShared
		}
		if q.constant {
			space = SpaceConst
		}
		ds := &DeclStmt{stmtBase: stmtBase{tok: t}}
		for {
			typ := p.parsePtrSuffix(base, space)
			nt := p.cur()
			if nt.Kind != TokIdent {
				return nil, errAt(nt, "expected variable name, found %s", nt)
			}
			p.next()
			vd, err := p.parseDeclaratorRest(typ, nt, space)
			if err != nil {
				return nil, err
			}
			if space == SpaceShared {
				vd.Type = markSpace(vd.Type, SpaceShared)
				vd.Shared = true
			}
			ds.Decls = append(ds.Decls, vd)
			if !p.accept(",") {
				break
			}
		}
		return ds, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{stmtBase{t}, x}, nil
}

// foldConstInt evaluates an integer constant expression at parse time
// (array dimensions after macro expansion, e.g. [2 * 256]).
func foldConstInt(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, true
	case *Unary:
		v, ok := foldConstInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "+":
			return v, true
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Binary:
		l, ok := foldConstInt(x.L)
		if !ok {
			return 0, false
		}
		r, ok := foldConstInt(x.R)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case "%":
			if r == 0 {
				return 0, false
			}
			return l % r, true
		case "<<":
			return l << (uint(r) & 63), true
		case ">>":
			return l >> (uint(r) & 63), true
		case "&":
			return l & r, true
		case "|":
			return l | r, true
		case "^":
			return l ^ r, true
		case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
			var res bool
			switch x.Op {
			case "<":
				res = l < r
			case "<=":
				res = l <= r
			case ">":
				res = l > r
			case ">=":
				res = l >= r
			case "==":
				res = l == r
			case "!=":
				res = l != r
			case "&&":
				res = l != 0 && r != 0
			case "||":
				res = l != 0 || r != 0
			}
			if res {
				return 1, true
			}
			return 0, true
		}
	case *Ternary:
		c, ok := foldConstInt(x.Cond)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return foldConstInt(x.Then)
		}
		return foldConstInt(x.Else)
	}
	return 0, false
}

// markSpace rewrites the space of array/pointer layers.
func markSpace(t *Type, s MemSpace) *Type {
	if t.Kind != KArray && t.Kind != KPtr {
		return t
	}
	return &Type{Kind: t.Kind, Elem: markSpace(t.Elem, s), Len: t.Len, Space: s}
}

// ---- Expressions -----------------------------------------------------------

func (p *parser) parseExpr() (Expr, error) {
	x, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Text == "," {
		t := p.next()
		y, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{exprBase{tok: t}, ",", x, y}
	}
	return x, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssignExpr() (Expr, error) {
	x, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if assignOps[p.cur().Text] {
		t := p.next()
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase{tok: t}, t.Text, x, r}, nil
	}
	return x, nil
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.cur().Text != "?" {
		return cond, nil
	}
	t := p.next()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{exprBase{tok: t}, cond, then, els}, nil
}

// binary operator precedence levels, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.cur().Kind == TokPunct && p.cur().Text == op {
				t := p.next()
				y, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				x = &Binary{exprBase{tok: t}, op, x, y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Text {
	case "+", "-", "!", "~", "*", "&", "++", "--":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase{tok: t}, t.Text, x}, nil
	case "(":
		// Possible cast: "(" type ")" unary.
		save := p.pos
		p.next()
		if p.isTypeStart() || func() bool { _, ok := p.qualWord(p.cur().Text); return ok && p.cur().Text != "const" }() {
			p.parseQuals()
			if p.isTypeStart() {
				base, err := p.parseBaseType()
				if err == nil {
					typ := p.parsePtrSuffix(base, SpaceGlobal)
					if p.cur().Text == ")" {
						p.next()
						x, err := p.parseUnary()
						if err != nil {
							return nil, err
						}
						return &Cast{exprBase{tok: t}, typ, x}, nil
					}
				}
			}
		}
		p.pos = save
	case "sizeof":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var size int
		if p.isTypeStart() {
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			typ := p.parsePtrSuffix(base, SpaceGlobal)
			size = typ.Size()
		} else {
			return nil, errAt(t, "sizeof of an expression is not supported; use sizeof(type)")
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return &IntLit{exprBase: exprBase{tok: t, typ: TypeInt}, Val: int64(size)}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Text {
		case "[":
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase{tok: t}, x, idx}
		case "(":
			vr, ok := x.(*VarRef)
			if !ok {
				return nil, errAt(t, "called object is not a function")
			}
			p.next()
			call := &Call{exprBase: exprBase{tok: t}, Name: vr.Name}
			if !p.accept(")") {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(",") {
						continue
					}
					if _, err := p.expect(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			x = call
		case ".":
			p.next()
			mem := p.cur()
			if mem.Kind != TokIdent {
				return nil, errAt(mem, "expected member name")
			}
			p.next()
			vr, ok := x.(*VarRef)
			if !ok || !isBuiltinDim3(vr.Name) {
				return nil, errAt(t, "member access is only supported on threadIdx/blockIdx/blockDim/gridDim")
			}
			dim, ok := dimIndex(mem.Text)
			if !ok {
				return nil, errAt(mem, "unknown member %q (use .x, .y, .z)", mem.Text)
			}
			x = &BuiltinVarRef{exprBase: exprBase{tok: t, typ: TypeInt}, Base: vr.Name, Dim: dim}
		case "++", "--":
			p.next()
			x = &Postfix{exprBase{tok: t}, t.Text, x}
		default:
			return x, nil
		}
	}
}

func isBuiltinDim3(name string) bool {
	switch name {
	case "threadIdx", "blockIdx", "blockDim", "gridDim":
		return true
	}
	return false
}

func dimIndex(m string) (int, bool) {
	switch m {
	case "x":
		return 0, true
	case "y":
		return 1, true
	case "z":
		return 2, true
	}
	return 0, false
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		text := strings.TrimRight(t.Text, "uUlL")
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			// Out-of-range literals wrap like C unsigned constants.
			u, uerr := strconv.ParseUint(text, 0, 64)
			if uerr != nil {
				return nil, errAt(t, "invalid integer literal %q", t.Text)
			}
			v = int64(u)
		}
		typ := TypeInt
		if strings.ContainsAny(t.Text, "uU") {
			typ = TypeUInt
		}
		return &IntLit{exprBase: exprBase{tok: t, typ: typ}, Val: v}, nil
	case TokFloatLit:
		p.next()
		text := strings.TrimRight(t.Text, "fFlL")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, errAt(t, "invalid float literal %q", t.Text)
		}
		return &FloatLit{exprBase: exprBase{tok: t, typ: TypeFloat}, Val: v}, nil
	case TokCharLit:
		p.next()
		v, err := charValue(t.Text)
		if err != nil {
			return nil, errAt(t, "%v", err)
		}
		return &IntLit{exprBase: exprBase{tok: t, typ: TypeChar}, Val: v}, nil
	case TokIdent:
		p.next()
		if p.dialect == DialectOpenCL {
			if v, ok := openclConstants[t.Text]; ok {
				return &IntLit{exprBase: exprBase{tok: t, typ: TypeInt}, Val: v}, nil
			}
		}
		return &VarRef{exprBase: exprBase{tok: t}, Name: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "true":
			p.next()
			return &BoolLit{exprBase: exprBase{tok: t, typ: TypeBool}, Val: true}, nil
		case "false":
			p.next()
			return &BoolLit{exprBase: exprBase{tok: t, typ: TypeBool}, Val: false}, nil
		}
	case TokPunct:
		if t.Text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	case TokStringLit:
		return nil, errAt(t, "string literals are not supported in device code")
	}
	return nil, errAt(t, "expected expression, found %s", t)
}

func charValue(text string) (int64, error) {
	if len(text) == 1 {
		return int64(text[0]), nil
	}
	if len(text) == 2 && text[0] == '\\' {
		switch text[1] {
		case 'n':
			return '\n', nil
		case 't':
			return '\t', nil
		case '0':
			return 0, nil
		case '\\':
			return '\\', nil
		case '\'':
			return '\'', nil
		}
	}
	return 0, fmt.Errorf("invalid character literal '%s'", text)
}
