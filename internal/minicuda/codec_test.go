package minicuda

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"webgpu/internal/gpusim"
)

// Codec round-trip differential tests: every kernel in the diff corpus is
// compiled, serialized with EncodeProgram, decoded with DecodeProgram, and
// the decoded program is launched against the original (tree walker as
// oracle). Outputs, LaunchStats, and error strings must be identical —
// a decoded artifact served from the durable store must be
// indistinguishable from a fresh compile.

// roundTrip encodes and decodes prog, asserting encode determinism: the
// re-encoded decoded program must be byte-identical to the first stream,
// which pins down both directions of the codec at once.
func roundTrip(t *testing.T, prog *Program) *Program {
	t.Helper()
	data, err := EncodeProgram(prog)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeProgram(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	again, err := EncodeProgram(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoded stream differs: %d vs %d bytes", len(data), len(again))
	}
	return dec
}

// runCodecDiff compiles the case, round-trips it through the codec, and
// compares the decoded program's behaviour on every engine against the
// original under the tree walker.
func runCodecDiff(t *testing.T, c diffCase) {
	t.Helper()
	if c.grid == (gpusim.Dim3{}) {
		c.grid = gpusim.D1(1)
	}
	if c.block == (gpusim.Dim3{}) {
		c.block = gpusim.D1(1)
	}
	if c.nInt == 0 {
		c.nInt = 4
	}
	if c.nFloat == 0 {
		c.nFloat = 2
	}
	prog, err := Compile(c.src, DialectCUDA)
	if err != nil {
		t.Fatalf("compile failed:\n%s\nerror: %v", c.src, err)
	}
	dec := roundTrip(t, prog)

	// Structural invariants a decoded program must preserve.
	if !reflect.DeepEqual(dec.Kernels(), prog.Kernels()) {
		t.Fatalf("kernels diverge: %v vs %v", dec.Kernels(), prog.Kernels())
	}
	if dec.ConstSize() != prog.ConstSize() {
		t.Fatalf("const size diverges: %d vs %d", dec.ConstSize(), prog.ConstSize())
	}
	if dec.UsesBarrier() != prog.UsesBarrier() {
		t.Fatalf("usesBarrier diverges")
	}
	if dec.InstructionCount() != prog.InstructionCount() {
		t.Fatalf("instruction count diverges: %d vs %d",
			dec.InstructionCount(), prog.InstructionCount())
	}

	tree := runOnEngine(t, prog, c, EngineTree)
	for _, e := range []struct {
		name string
		eng  Engine
	}{{"vm", EngineVM}, {"tree", EngineTree}, {"warp", EngineWarp}} {
		got := runOnEngine(t, dec, c, e.eng)
		if got.errStr != tree.errStr {
			t.Fatalf("decoded error divergence:\n%s: %q\ntree: %q\nkernel:\n%s",
				e.name, got.errStr, tree.errStr, c.src)
		}
		if !reflect.DeepEqual(got.ints, tree.ints) {
			t.Fatalf("decoded int output divergence:\n%s: %v\ntree: %v\nkernel:\n%s",
				e.name, got.ints, tree.ints, c.src)
		}
		if !reflect.DeepEqual(got.floats, tree.floats) {
			t.Fatalf("decoded float output divergence:\n%s: %v\ntree: %v\nkernel:\n%s",
				e.name, got.floats, tree.floats, c.src)
		}
		// Same documented boundary as runDiff: a mid-kernel trap on a
		// multi-lane launch leaves the warp engine's lockstep lanes ahead
		// of where the serial engines stop.
		if e.eng == EngineWarp && tree.errStr != "" && c.grid.Count()*c.block.Count() > 1 {
			continue
		}
		if !reflect.DeepEqual(got.stats, tree.stats) {
			t.Fatalf("decoded stats divergence:\n%s: %+v\ntree: %+v\nkernel:\n%s",
				e.name, got.stats, tree.stats, c.src)
		}
	}
}

// TestCodecDiffRandomExpressions round-trips the 700-kernel random
// expression corpus (same seed as TestDiffRandomExpressions).
func TestCodecDiffRandomExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(771177))
	g := &exprGen{rng: rng}
	const trials = 700
	for trial := 0; trial < trials; trial++ {
		ie := g.intExpr(3 + rng.Intn(2))
		fe := g.floatExpr(3 + rng.Intn(2))
		e := randEnv(rng)
		src := fmt.Sprintf(`
__global__ void probe(int *iout, float *fout, int a, int b, float x, float y) {
  iout[0] = %s;
  fout[0] = %s;
}`, ie.src, fe.src)
		runCodecDiff(t, diffCase{src: src, kernel: "probe", extra: scalarArgs(e)})
	}
}

// TestCodecDiffRandomStatements round-trips the 300-kernel random
// statement corpus (same seed as TestDiffRandomStatements).
func TestCodecDiffRandomStatements(t *testing.T) {
	rng := rand.New(rand.NewSource(55004400))
	sg := &stmtGen{rng: rng, eg: &exprGen{rng: rng}}
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		e := randEnv(rng)
		body := sg.block(2+rng.Intn(2), false)
		src := fmt.Sprintf(`
__global__ void probe(int *iout, float *fout, int a, int b, float x, float y) {
  int v0 = a; int v1 = b; int v2 = a - b; int v3 = 1;
  float f0 = x; float f1 = y;
  int arr[8];
  for (int z = 0; z < 8; z++) { arr[z] = z * a + b; }
%s
  iout[0] = v0; iout[1] = v1; iout[2] = v2 * 3 + v3;
  iout[3] = 0;
  for (int z = 0; z < 8; z++) { iout[3] += arr[z]; }
  fout[0] = f0; fout[1] = f1;
}`, body)
		runCodecDiff(t, diffCase{src: src, kernel: "probe", extra: scalarArgs(e)})
	}
}

// TestCodecDiffEdgeCases round-trips the curated trap/barrier/atomic
// corpus — the kernels whose error strings and partial stats are most
// sensitive to token positions surviving serialization.
func TestCodecDiffEdgeCases(t *testing.T) {
	for i, c := range diffEdgeCases() {
		i, c := i, c
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) { runCodecDiff(t, c) })
	}
}

// TestCodecDiffWarpDivergence round-trips the divergence corpus.
func TestCodecDiffWarpDivergence(t *testing.T) {
	for _, c := range warpDivergenceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) { runCodecDiff(t, c.c) })
	}
}

// TestCodecOpenCLAndOpenACC round-trips programs from the other two
// dialects: the codec must preserve Dialect and the analyzed tree
// regardless of the front end that produced it.
func TestCodecOpenCLDialect(t *testing.T) {
	src := `__kernel void scale(__global int *iout, __global float *fout, int n) {
  int i = get_global_id(0);
  if (i < n) { iout[i] = i * 2; }
}`
	prog, err := Compile(src, DialectOpenCL)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	dec := roundTrip(t, prog)
	if dec.Dialect != prog.Dialect {
		t.Fatalf("dialect diverges: %v vs %v", dec.Dialect, prog.Dialect)
	}
	c := diffCase{src: src, kernel: "scale", block: gpusim.D1(8), nInt: 8,
		extra: []Arg{Int(8)}}
	tree := runOnEngine(t, prog, c, EngineTree)
	got := runOnEngine(t, dec, c, EngineWarp)
	if got.errStr != tree.errStr || !reflect.DeepEqual(got.ints, tree.ints) {
		t.Fatalf("opencl decoded divergence: %+v vs %+v", got, tree)
	}
}

// TestCodecRejectsCorruption feeds the decoder truncations of a valid
// stream at every offset plus seeded random byte flips: every mutation
// must yield an error (or, rarely, a well-formed program) — never a panic.
// The seed is replayable via CHAOS_SEED semantics used elsewhere; here a
// fixed seed keeps the corpus deterministic.
func TestCodecRejectsCorruption(t *testing.T) {
	src := `__constant__ int tab[4];
__device__ int helper(int n) { return n * 3; }
__global__ void k(int *iout, float *fout, int a) {
  __shared__ int s[8];
  s[threadIdx.x % 8] = helper(a);
  __syncthreads();
  for (int i = 0; i < 4; i++) { iout[0] += s[i] + tab[i]; }
  fout[0] = (float)a * 0.5f;
}`
	prog, err := Compile(src, DialectCUDA)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	data, err := EncodeProgram(prog)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Truncation at every prefix length.
	for n := 0; n < len(data); n++ {
		if _, err := DecodeProgram(data[:n]); err == nil {
			t.Fatalf("decode accepted %d-byte truncation of %d-byte stream", n, len(data))
		}
	}
	// Random single- and multi-byte flips.
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), data...)
		for f := 0; f <= rng.Intn(3); f++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		// Must not panic; an error (the common case) or a still-valid
		// program (flip in a string table entry, say) are both fine.
		p, err := DecodeProgram(mut)
		if err == nil && p == nil {
			t.Fatalf("trial %d: nil program without error", trial)
		}
	}
	// Version skew must be reported as such.
	bad := append([]byte(nil), data...)
	bad[len(codecMagic)] = 0x7f // version varint
	if _, err := DecodeProgram(bad); err == nil {
		t.Fatal("decode accepted bumped version")
	}
}
