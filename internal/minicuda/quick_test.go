package minicuda

import (
	"fmt"
	"math/rand"
	"testing"

	"webgpu/internal/gpusim"
)

// Differential testing: generate random integer and float expression
// trees, render them to CUDA-C, compile and execute them through the full
// lexer/parser/sema/interpreter/simulator stack, and compare against a Go
// oracle that applies the same int32-wraparound / float32-rounding
// semantics. Any divergence is a compiler or interpreter bug.

type exprGen struct {
	rng *rand.Rand
}

// env is the fixed variable environment the kernels declare.
type env struct {
	a, b int32
	x, y float32
}

// iExpr is a generated integer expression: C source + oracle.
type iExpr struct {
	src  string
	eval func(e env) int32
}

// fExpr is a generated float expression.
type fExpr struct {
	src  string
	eval func(e env) float32
}

func (g *exprGen) intExpr(depth int) iExpr {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			v := int32(g.rng.Intn(64) - 16)
			return iExpr{fmt.Sprintf("%d", v), func(env) int32 { return v }}
		case 1:
			return iExpr{"a", func(e env) int32 { return e.a }}
		case 2:
			return iExpr{"b", func(e env) int32 { return e.b }}
		default:
			// Cast of a float leaf keeps magnitudes tiny and exact.
			f := g.floatLeaf()
			return iExpr{fmt.Sprintf("(int)(%s)", f.src),
				func(e env) int32 { return int32(f.eval(e)) }}
		}
	}
	l := g.intExpr(depth - 1)
	r := g.intExpr(depth - 1)
	switch g.rng.Intn(12) {
	case 0:
		return iExpr{fmt.Sprintf("(%s + %s)", l.src, r.src),
			func(e env) int32 { return l.eval(e) + r.eval(e) }}
	case 1:
		return iExpr{fmt.Sprintf("(%s - %s)", l.src, r.src),
			func(e env) int32 { return l.eval(e) - r.eval(e) }}
	case 2:
		return iExpr{fmt.Sprintf("(%s * %s)", l.src, r.src),
			func(e env) int32 { return l.eval(e) * r.eval(e) }}
	case 3:
		// Division with a guaranteed non-zero divisor; avoid the single
		// overflowing case MinInt32 / -1 by forcing the divisor positive.
		return iExpr{fmt.Sprintf("(%s / ((%s & 7) + 1))", l.src, r.src),
			func(e env) int32 { return l.eval(e) / ((r.eval(e) & 7) + 1) }}
	case 4:
		return iExpr{fmt.Sprintf("(%s %% ((%s & 7) + 1))", l.src, r.src),
			func(e env) int32 { return l.eval(e) % ((r.eval(e) & 7) + 1) }}
	case 5:
		return iExpr{fmt.Sprintf("(%s & %s)", l.src, r.src),
			func(e env) int32 { return l.eval(e) & r.eval(e) }}
	case 6:
		return iExpr{fmt.Sprintf("(%s | %s)", l.src, r.src),
			func(e env) int32 { return l.eval(e) | r.eval(e) }}
	case 7:
		return iExpr{fmt.Sprintf("(%s ^ %s)", l.src, r.src),
			func(e env) int32 { return l.eval(e) ^ r.eval(e) }}
	case 8:
		return iExpr{fmt.Sprintf("(%s << (%s & 7))", l.src, r.src),
			func(e env) int32 { return l.eval(e) << (uint32(r.eval(e)) & 7) }}
	case 9:
		return iExpr{fmt.Sprintf("(%s >> (%s & 7))", l.src, r.src),
			func(e env) int32 { return l.eval(e) >> (uint32(r.eval(e)) & 7) }}
	case 10:
		op := []string{"<", "<=", ">", ">=", "==", "!="}[g.rng.Intn(6)]
		return iExpr{fmt.Sprintf("(%s %s %s)", l.src, op, r.src),
			func(e env) int32 {
				lv, rv := l.eval(e), r.eval(e)
				var res bool
				switch op {
				case "<":
					res = lv < rv
				case "<=":
					res = lv <= rv
				case ">":
					res = lv > rv
				case ">=":
					res = lv >= rv
				case "==":
					res = lv == rv
				case "!=":
					res = lv != rv
				}
				if res {
					return 1
				}
				return 0
			}}
	default:
		c := g.intExpr(depth - 1)
		return iExpr{fmt.Sprintf("(%s ? %s : %s)", c.src, l.src, r.src),
			func(e env) int32 {
				if c.eval(e) != 0 {
					return l.eval(e)
				}
				return r.eval(e)
			}}
	}
}

func (g *exprGen) floatLeaf() fExpr {
	switch g.rng.Intn(3) {
	case 0:
		v := float32(g.rng.Intn(64)-16) / 4
		return fExpr{fmt.Sprintf("%gf", v), func(env) float32 { return v }}
	case 1:
		return fExpr{"x", func(e env) float32 { return e.x }}
	default:
		return fExpr{"y", func(e env) float32 { return e.y }}
	}
}

func (g *exprGen) floatExpr(depth int) fExpr {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		if g.rng.Intn(5) == 0 {
			i := g.intExpr(0)
			return fExpr{fmt.Sprintf("(float)(%s)", i.src),
				func(e env) float32 { return float32(i.eval(e)) }}
		}
		return g.floatLeaf()
	}
	l := g.floatExpr(depth - 1)
	r := g.floatExpr(depth - 1)
	switch g.rng.Intn(5) {
	case 0:
		return fExpr{fmt.Sprintf("(%s + %s)", l.src, r.src),
			func(e env) float32 { return l.eval(e) + r.eval(e) }}
	case 1:
		return fExpr{fmt.Sprintf("(%s - %s)", l.src, r.src),
			func(e env) float32 { return l.eval(e) - r.eval(e) }}
	case 2:
		return fExpr{fmt.Sprintf("(%s * %s)", l.src, r.src),
			func(e env) float32 { return l.eval(e) * r.eval(e) }}
	case 3:
		// Division with a denominator bounded away from zero.
		return fExpr{fmt.Sprintf("(%s / (fabsf(%s) + 1.0f))", l.src, r.src),
			func(e env) float32 {
				d := r.eval(e)
				if d < 0 {
					d = -d
				}
				return l.eval(e) / (d + 1)
			}}
	default:
		c := g.intExpr(depth - 1)
		return fExpr{fmt.Sprintf("(%s ? %s : %s)", c.src, l.src, r.src),
			func(e env) float32 {
				if c.eval(e) != 0 {
					return l.eval(e)
				}
				return r.eval(e)
			}}
	}
}

func TestRandomExpressionsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20160523))
	g := &exprGen{rng: rng}
	dev := gpusim.NewDefaultDevice()

	const trials = 250
	for trial := 0; trial < trials; trial++ {
		ie := g.intExpr(3 + rng.Intn(2))
		fe := g.floatExpr(3 + rng.Intn(2))
		e := env{
			a: int32(rng.Intn(200) - 100),
			b: int32(rng.Intn(200) - 100),
			x: float32(rng.Intn(160)-80) / 8,
			y: float32(rng.Intn(160)-80) / 8,
		}
		src := fmt.Sprintf(`
__global__ void probe(int *iout, float *fout, int a, int b, float x, float y) {
  iout[0] = %s;
  fout[0] = %s;
}`, ie.src, fe.src)

		prog, err := Compile(src, DialectCUDA)
		if err != nil {
			t.Fatalf("trial %d: compile failed for\n%s\nerror: %v", trial, src, err)
		}
		iout, err := dev.Malloc(4)
		if err != nil {
			t.Fatal(err)
		}
		fout, err := dev.Malloc(4)
		if err != nil {
			t.Fatal(err)
		}
		_, err = prog.Launch(dev, "probe",
			LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1)},
			IntPtr(iout), FloatPtr(fout),
			Int(int(e.a)), Int(int(e.b)), Float(e.x), Float(e.y))
		if err != nil {
			t.Fatalf("trial %d: launch failed for\n%s\nerror: %v", trial, src, err)
		}
		gotI, _ := dev.ReadInt32(iout, 1)
		gotF, _ := dev.ReadFloat32(fout, 1)
		wantI := ie.eval(e)
		wantF := fe.eval(e)
		if gotI[0] != wantI {
			t.Fatalf("trial %d: int mismatch: got %d want %d\nenv %+v\nexpr %s",
				trial, gotI[0], wantI, e, ie.src)
		}
		if gotF[0] != wantF {
			t.Fatalf("trial %d: float mismatch: got %v want %v\nenv %+v\nexpr %s",
				trial, gotF[0], wantF, e, fe.src)
		}
		_ = dev.Free(iout)
		_ = dev.Free(fout)
	}
}

// The same generator exercised through compound-assignment and loop forms:
// the expression is accumulated in a loop so statement execution paths are
// also covered.
func TestRandomExpressionsInLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	g := &exprGen{rng: rng}
	dev := gpusim.NewDefaultDevice()

	for trial := 0; trial < 60; trial++ {
		ie := g.intExpr(2)
		e := env{a: int32(rng.Intn(40) - 20), b: int32(rng.Intn(40) - 20),
			x: float32(rng.Intn(40)-20) / 4, y: float32(rng.Intn(40)-20) / 4}
		iters := 1 + rng.Intn(6)
		src := fmt.Sprintf(`
__global__ void probe(int *iout, int a, int b, float x, float y, int iters) {
  int acc = 0;
  for (int k = 0; k < iters; k++) {
    acc += %s + k;
  }
  iout[0] = acc;
}`, ie.src)
		prog, err := Compile(src, DialectCUDA)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		iout, _ := dev.Malloc(4)
		_, err = prog.Launch(dev, "probe",
			LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1)},
			IntPtr(iout), Int(int(e.a)), Int(int(e.b)), Float(e.x), Float(e.y), Int(iters))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		var want int32
		for k := int32(0); k < int32(iters); k++ {
			want += ie.eval(e) + k
		}
		got, _ := dev.ReadInt32(iout, 1)
		if got[0] != want {
			t.Fatalf("trial %d: got %d want %d\n%s", trial, got[0], want, src)
		}
		_ = dev.Free(iout)
	}
}
