package minicuda

import (
	"fmt"
	"strings"
)

// Kind enumerates the scalar and composite type kinds the language
// supports.
type Kind int

// Type kinds.
const (
	KVoid Kind = iota
	KBool
	KChar  // signed 8-bit
	KUChar // unsigned 8-bit
	KInt   // signed 32-bit
	KUInt  // unsigned 32-bit
	KFloat // 32-bit IEEE
	KPtr
	KArray
)

// MemSpace identifies which memory space a pointer or array lives in.
type MemSpace int

// Memory spaces.
const (
	SpaceGlobal MemSpace = iota
	SpaceShared
	SpaceConst
	SpaceLocal // per-thread stack arrays (register tiling)
)

func (s MemSpace) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	case SpaceConst:
		return "constant"
	case SpaceLocal:
		return "local"
	}
	return "?"
}

// Type describes a minicuda type.
type Type struct {
	Kind  Kind
	Elem  *Type    // KPtr, KArray
	Len   int      // KArray: element count of the outermost dimension
	Space MemSpace // KPtr, KArray
}

// Singleton scalar types.
var (
	TypeVoid  = &Type{Kind: KVoid}
	TypeBool  = &Type{Kind: KBool}
	TypeChar  = &Type{Kind: KChar}
	TypeUChar = &Type{Kind: KUChar}
	TypeInt   = &Type{Kind: KInt}
	TypeUInt  = &Type{Kind: KUInt}
	TypeFloat = &Type{Kind: KFloat}
)

// PtrTo returns a pointer type to elem in the given space.
func PtrTo(elem *Type, space MemSpace) *Type {
	return &Type{Kind: KPtr, Elem: elem, Space: space}
}

// ArrayOf returns an array type of n elems in the given space.
func ArrayOf(elem *Type, n int, space MemSpace) *Type {
	return &Type{Kind: KArray, Elem: elem, Len: n, Space: space}
}

// IsScalar reports whether t is a non-void scalar.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case KBool, KChar, KUChar, KInt, KUInt, KFloat:
		return true
	}
	return false
}

// IsInteger reports whether t is an integer (or bool/char) scalar.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case KBool, KChar, KUChar, KInt, KUInt:
		return true
	}
	return false
}

// IsFloat reports whether t is the float scalar.
func (t *Type) IsFloat() bool { return t.Kind == KFloat }

// IsPtr reports whether t is a pointer.
func (t *Type) IsPtr() bool { return t.Kind == KPtr }

// Size returns the byte size of the type as laid out in device memory.
func (t *Type) Size() int {
	switch t.Kind {
	case KBool, KChar, KUChar:
		return 1
	case KInt, KUInt, KFloat:
		return 4
	case KPtr:
		return 8
	case KArray:
		return t.Len * t.Elem.Size()
	}
	return 0
}

// ElemBase returns the ultimate scalar element of nested array types.
func (t *Type) ElemBase() *Type {
	for t.Kind == KArray {
		t = t.Elem
	}
	return t
}

// Equal reports structural type equality, ignoring memory space.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind || t.Len != o.Len {
		return false
	}
	if t.Elem != nil || o.Elem != nil {
		return t.Elem.Equal(o.Elem)
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KBool:
		return "bool"
	case KChar:
		return "char"
	case KUChar:
		return "unsigned char"
	case KInt:
		return "int"
	case KUInt:
		return "unsigned int"
	case KFloat:
		return "float"
	case KPtr:
		return t.Elem.String() + "*"
	case KArray:
		var dims strings.Builder
		for a := t; a.Kind == KArray; a = a.Elem {
			fmt.Fprintf(&dims, "[%d]", a.Len)
		}
		return t.ElemBase().String() + dims.String()
	}
	return "?"
}

// commonType returns the usual-arithmetic-conversion result of a binary
// operation on types a and b (float dominates, then unsigned, then int).
func commonType(a, b *Type) *Type {
	if a.Kind == KFloat || b.Kind == KFloat {
		return TypeFloat
	}
	if a.Kind == KUInt || b.Kind == KUInt {
		return TypeUInt
	}
	return TypeInt
}
