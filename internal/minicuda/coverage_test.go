package minicuda

import (
	"strings"
	"testing"

	"webgpu/internal/gpusim"
)

// Tests targeting interpreter and helper paths not reached by the
// lab-shaped kernels: pointer comparisons, float comparisons driving
// branches, unsigned comparisons, math builtins, atomics variants,
// OpenCL work-item dimensions, constant folding, and String methods used
// in diagnostics.

func TestPointerComparisons(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  float *p = out + 2;
  float *q = out + 5;
  out[0] = (float)(p < q);
  out[1] = (float)(p == q);
  out[2] = (float)(p != q);
  out[3] = (float)(q - p);   // pointer difference in elements
  out[4] = (float)(p >= out);
  out[5] = (float)(q <= out);
}`, 6)
	want := []float32{1, 0, 1, 3, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFloatComparisonsAndLogic(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  float a = 1.5f;
  float b = 2.5f;
  out[0] = (float)(a < b);
  out[1] = (float)(a >= b);
  out[2] = (float)(a == 1.5f);
  out[3] = (float)(a != b);
  out[4] = (float)(a <= 1.5f);
  out[5] = (float)(b > 100.0f);
  out[6] = (a < b && b < 3.0f) ? 1.0f : 0.0f;
  out[7] = (a > b || b > 2.0f) ? 1.0f : 0.0f;
  out[8] = (float)(!(a < b));
}`, 9)
	want := []float32{1, 0, 1, 1, 1, 0, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnsignedComparisonSemantics(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  unsigned int big = 0xFFFFFFF0u; // huge as unsigned, -16 as signed
  unsigned int one = 1u;
  out[0] = (float)(big > one);   // unsigned compare: true
  int sbig = (int)big;
  out[1] = (float)(sbig > 1);    // signed compare: false
  out[2] = (float)(big >= 0u);
  out[3] = (float)(one != big);
  out[4] = (float)(one <= big);
  out[5] = (float)(big == big);
}`, 6)
	want := []float32{1, 0, 1, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMathBuiltins(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  out[0] = floorf(2.7f);
  out[1] = ceilf(2.2f);
  out[2] = fabsf(-3.5f);
  out[3] = powf(2.0f, 10.0f);
  out[4] = expf(0.0f);
  out[5] = logf(1.0f);
  out[6] = rsqrtf(4.0f);
  out[7] = (float)abs(-9);
  out[8] = fminf(1.0f, -2.0f);
  out[9] = sinf(0.0f);
  out[10] = cosf(0.0f);
  out[11] = (float)min(3, 7);
  out[12] = (float)max(3, 7);
  out[13] = fmaxf(1.5f, 0.5f);
}`, 14)
	want := []float32{2, 3, 3.5, 1024, 1, 0, 0.5, 9, -2, 0, 1, 3, 7, 1.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAtomicVariantsFromSource(t *testing.T) {
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, `
__global__ void k(int *v, float *f) {
  atomicSub(&v[0], 3);
  atomicMax(&v[1], (int)threadIdx.x);
  atomicMin(&v[2], (int)threadIdx.x);
  if (threadIdx.x == 0) {
    atomicExch(&v[3], 77);
    atomicCAS(&v[4], 5, 9);
    atomicExch(&f[0], 2.5f);
    atomicAdd(&f[1], -0.5f); // CUDA has no float atomicSub
  }
}`)
	v, _ := d.MallocInt32(5, []int32{100, -1, 1 << 30, 0, 5})
	f, _ := d.MallocFloat32(2, []float32{0, 8})
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(32)},
		IntPtr(v), FloatPtr(f))
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := d.ReadInt32(v, 5)
	fv, _ := d.ReadFloat32(f, 2)
	if iv[0] != 100-3*32 {
		t.Errorf("atomicSub = %d", iv[0])
	}
	if iv[1] != 31 || iv[2] != 0 {
		t.Errorf("max/min = %d %d", iv[1], iv[2])
	}
	if iv[3] != 77 || iv[4] != 9 {
		t.Errorf("exch/cas = %d %d", iv[3], iv[4])
	}
	if fv[0] != 2.5 || fv[1] != 7.5 {
		t.Errorf("float atomics = %v", fv)
	}
}

func TestSharedAtomicFloat(t *testing.T) {
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, `
__global__ void k(float *out) {
  __shared__ float acc;
  if (threadIdx.x == 0) acc = 0.0f;
  __syncthreads();
  atomicAdd(&acc, 0.5f);
  __syncthreads();
  if (threadIdx.x == 0) out[0] = acc;
}`)
	out, _ := d.Malloc(4)
	if _, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(64)},
		FloatPtr(out)); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(out, 1)
	if got[0] != 32 {
		t.Errorf("shared float atomic = %v, want 32", got[0])
	}
}

func TestOpenCLWorkItemDimensions(t *testing.T) {
	src := `
__kernel void probe(__global int *out) {
  if (get_local_id(0) == 0 && get_local_id(1) == 0) {
    int g = get_group_id(1);
    out[g * 6 + 0] = get_global_id(1);
    out[g * 6 + 1] = get_local_size(0);
    out[g * 6 + 2] = get_local_size(1);
    out[g * 6 + 3] = get_num_groups(1);
    out[g * 6 + 4] = get_global_size(0);
    out[g * 6 + 5] = get_global_size(1);
  }
}`
	p, err := Compile(src, DialectOpenCL)
	if err != nil {
		t.Fatal(err)
	}
	d := gpusim.NewDefaultDevice()
	out, _ := d.Malloc(12 * 4)
	_, err = p.Launch(d, "probe", LaunchOpts{Grid: gpusim.D2(1, 2), Block: gpusim.D2(4, 2)},
		IntPtr(out))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(out, 12)
	// Group 1 in dim 1: global id = 1*2+0 = 2, local sizes 4,2, groups 2,
	// global sizes 4, 4.
	if got[6] != 2 || got[7] != 4 || got[8] != 2 || got[9] != 2 || got[10] != 4 || got[11] != 4 {
		t.Errorf("work-item dims = %v", got)
	}
}

func TestThreadIdxYZ(t *testing.T) {
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, `
__global__ void k(int *out) {
  int idx = threadIdx.z * blockDim.y * blockDim.x + threadIdx.y * blockDim.x + threadIdx.x;
  out[idx] = blockIdx.z * 100 + threadIdx.z * 10 + threadIdx.y;
}`)
	out, _ := d.Malloc(8 * 4)
	if _, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D3(1, 1, 1), Block: gpusim.D3(2, 2, 2)},
		IntPtr(out)); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(out, 8)
	// thread (x=1,y=1,z=1) -> index 7, value 0*100 + 1*10 + 1 = 11.
	if got[7] != 11 {
		t.Errorf("out = %v", got)
	}
}

func TestConstantDimFolding(t *testing.T) {
	p := mustCompile(t, `
#define BS 32
__global__ void k(float *a) {
  __shared__ float t1[BS * 2];         // 64
  __shared__ float t2[(BS + 32) / 4];  // 16
  __shared__ float t3[1 << 3];         // 8
  __shared__ float t4[BS > 16 ? 4 : 2]; // 4
  t1[0] = 0.0f; t2[0] = 0.0f; t3[0] = 0.0f; t4[0] = 0.0f;
  a[0] = t1[0] + t2[0] + t3[0] + t4[0];
}`)
	fn := p.Kernel("k")
	if fn.SharedUse != (64+16+8+4)*4 {
		t.Errorf("SharedUse = %d, want %d", fn.SharedUse, (64+16+8+4)*4)
	}
}

func TestDiagnosticStrings(t *testing.T) {
	// Token/Type String methods are used in diagnostics; pin them.
	if TokIdent.String() != "identifier" || TokFloatLit.String() != "float literal" {
		t.Error("TokKind.String broken")
	}
	tok := Token{Kind: TokPunct, Text: "{", Line: 3, Col: 7}
	if tok.String() != `"{"` || tok.Pos() != "3:7" {
		t.Errorf("token string/pos = %s %s", tok.String(), tok.Pos())
	}
	cases := map[string]*Type{
		"unsigned char": TypeUChar,
		"float*":        PtrTo(TypeFloat, SpaceGlobal),
		"int[4][2]":     ArrayOf(ArrayOf(TypeInt, 2, SpaceShared), 4, SpaceShared),
		"void":          TypeVoid,
		"bool":          TypeBool,
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type.String = %q, want %q", got, want)
		}
	}
	if SpaceConst.String() != "constant" || SpaceLocal.String() != "local" {
		t.Error("MemSpace.String broken")
	}
	if DialectOpenACC.String() != "OpenACC" || DialectCUDA.String() != "CUDA" {
		t.Error("Dialect.String broken")
	}
}

func TestUsesBarrierFlag(t *testing.T) {
	with := mustCompile(t, `__global__ void k(float *a) { __syncthreads(); a[0] = 1.0f; }`)
	if !with.UsesBarrier() {
		t.Error("barrier program not flagged")
	}
	without := mustCompile(t, `__global__ void k(float *a) { a[0] = 1.0f; }`)
	if without.UsesBarrier() {
		t.Error("barrier-free program flagged")
	}
}

func TestCharLiteralForms(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  out[0] = (float)'\t';
  out[1] = (float)'\\';
  out[2] = (float)'\0';
  out[3] = (float)'\'';
}`, 4)
	want := []float32{9, 92, 0, 39}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBadCharLiteral(t *testing.T) {
	compileErr(t, `__global__ void k(int *o) { o[0] = '\q'; }`, "invalid character literal")
}

func TestStripCommentsPreservesStrings(t *testing.T) {
	// Comment markers inside string literals must survive.
	in := `x = "//not a comment"; // real comment
y = "/*also not*/";`
	out := StripComments(in)
	if !strings.Contains(out, `"//not a comment"`) {
		t.Errorf("string literal damaged: %q", out)
	}
	if strings.Contains(out, "real comment") {
		t.Errorf("line comment kept: %q", out)
	}
	if !strings.Contains(out, `"/*also not*/"`) {
		t.Errorf("block marker in string damaged: %q", out)
	}
}

func TestCommaExpressionStatement(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  int a = 0;
  int b = 0;
  a = 1, b = 2;
  out[0] = (float)(a + b);
}`, 1)
	if got[0] != 3 {
		t.Errorf("comma stmt = %v", got[0])
	}
}
