package minicuda

// Stable structural content hashing of resolved functions, for
// function-granular incremental analysis. The hash covers everything a
// per-function analysis result can depend on: the shape of the AST,
// names, operators, literal values, resolved types, symbol layout
// (slots, shared-arena offsets), and token positions — positions are
// included deliberately, so a cached diagnostic (which embeds "line:col"
// in both its Pos and its message text) is verbatim-valid whenever the
// hash matches.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"strconv"
)

type structHasher struct {
	h   hash.Hash
	buf [8]byte
}

func newStructHasher() *structHasher { return &structHasher{h: sha256.New()} }

func (s *structHasher) str(tag, v string) {
	s.h.Write([]byte(tag))
	s.int(int64(len(v)))
	s.h.Write([]byte(v))
}

func (s *structHasher) int(v int64) {
	binary.LittleEndian.PutUint64(s.buf[:], uint64(v))
	s.h.Write(s.buf[:])
}

func (s *structHasher) boolean(v bool) {
	if v {
		s.h.Write([]byte{1})
	} else {
		s.h.Write([]byte{0})
	}
}

func (s *structHasher) tok(t Token) {
	s.int(int64(t.Line)<<32 | int64(t.Col))
}

func (s *structHasher) typ(t *Type) {
	if t == nil {
		s.str("T", "<nil>")
		return
	}
	s.str("T", t.String())
	s.str("sp", spaceName(t))
}

// spaceName renders the memory-space chain of a type (String ignores it,
// but the analyzer's shared/global distinction depends on it).
func spaceName(t *Type) string {
	out := ""
	for ; t != nil; t = t.Elem {
		out += strconv.Itoa(int(t.Space)) + ","
	}
	return out
}

func (s *structHasher) sym(sy *Symbol) {
	if sy == nil {
		s.str("S", "<nil>")
		return
	}
	s.str("S", sy.Name)
	s.int(int64(sy.Kind))
	s.int(int64(sy.Slot))
	s.int(int64(sy.Off))
	s.boolean(sy.IsArg)
	s.typ(sy.Type)
}

func (s *structHasher) expr(e Expr) {
	if e == nil {
		s.str("E", "<nil>")
		return
	}
	s.tok(e.Tok())
	switch x := e.(type) {
	case *IntLit:
		s.str("E", "int")
		s.int(x.Val)
	case *FloatLit:
		s.str("E", "float")
		s.str("v", strconv.FormatFloat(x.Val, 'g', -1, 64))
	case *BoolLit:
		s.str("E", "bool")
		s.boolean(x.Val)
	case *VarRef:
		s.str("E", "var")
		s.sym(x.Sym)
	case *BuiltinVarRef:
		s.str("E", "builtin")
		s.str("b", x.Base)
		s.int(int64(x.Dim))
	case *Unary:
		s.str("E", "unary")
		s.str("op", x.Op)
		s.expr(x.X)
	case *Postfix:
		s.str("E", "postfix")
		s.str("op", x.Op)
		s.expr(x.X)
	case *Binary:
		s.str("E", "binary")
		s.str("op", x.Op)
		s.expr(x.L)
		s.expr(x.R)
	case *Assign:
		s.str("E", "assign")
		s.str("op", x.Op)
		s.expr(x.L)
		s.expr(x.R)
	case *Ternary:
		s.str("E", "ternary")
		s.expr(x.Cond)
		s.expr(x.Then)
		s.expr(x.Else)
	case *Index:
		s.str("E", "index")
		s.expr(x.Base)
		s.expr(x.Idx)
	case *Call:
		s.str("E", "call")
		s.str("n", x.Name)
		s.str("bi", x.Builtin)
		s.int(int64(len(x.Args)))
		for _, ar := range x.Args {
			s.expr(ar)
		}
	case *Cast:
		s.str("E", "cast")
		s.typ(x.To)
		s.expr(x.X)
	default:
		s.str("E", "other")
	}
}

func (s *structHasher) stmt(st Stmt) {
	if st == nil {
		s.str("St", "<nil>")
		return
	}
	s.tok(st.Tok())
	switch x := st.(type) {
	case *Block:
		s.str("St", "block")
		s.int(int64(len(x.Stmts)))
		for _, sub := range x.Stmts {
			s.stmt(sub)
		}
	case *DeclStmt:
		s.str("St", "decl")
		s.int(int64(len(x.Decls)))
		for _, d := range x.Decls {
			s.decl(d)
		}
	case *ExprStmt:
		s.str("St", "expr")
		s.expr(x.X)
	case *IfStmt:
		s.str("St", "if")
		s.expr(x.Cond)
		s.stmt(x.Then)
		s.stmt(x.Else)
	case *ForStmt:
		s.str("St", "for")
		s.stmt(x.Init)
		s.expr(x.Cond)
		s.expr(x.Post)
		s.stmt(x.Body)
	case *WhileStmt:
		s.str("St", "while")
		s.boolean(x.DoFirst)
		s.expr(x.Cond)
		s.stmt(x.Body)
	case *ReturnStmt:
		s.str("St", "return")
		s.expr(x.X)
	case *BreakStmt:
		s.str("St", "break")
	case *ContinueStmt:
		s.str("St", "continue")
	case *EmptyStmt:
		s.str("St", "empty")
	default:
		s.str("St", "other")
	}
}

func (s *structHasher) decl(d *VarDecl) {
	s.str("D", d.Name)
	s.tok(d.Tok())
	s.typ(d.Type)
	s.boolean(d.Shared)
	s.sym(d.Sym)
	s.expr(d.Init)
}

// StructuralHash returns a stable content hash of a resolved function:
// identical source (including position) hashes identically across
// compiles; any edit to the function's text, layout, or resolved types
// changes the hash. Callee bodies are NOT included — combine with the
// callees' own hashes to key interprocedural results.
func (f *Function) StructuralHash() string {
	s := newStructHasher()
	s.str("fn", f.Name)
	s.tok(f.Tok())
	s.boolean(f.IsKernel)
	s.typ(f.Ret)
	s.int(int64(f.NumSlots))
	s.int(int64(f.SharedUse))
	s.int(int64(len(f.Params)))
	for _, p := range f.Params {
		s.decl(p)
	}
	s.stmt(f.Body)
	return hex.EncodeToString(s.h.Sum(nil))
}

// PreludeHash hashes the program-level context a function analysis can
// observe besides its own body and callees: the dialect and the layout
// of file-scope (__constant__) globals.
func (p *Program) PreludeHash() string {
	s := newStructHasher()
	s.int(int64(p.Dialect))
	s.int(int64(len(p.Globals)))
	for _, g := range p.Globals {
		s.str("g", g.Qual)
		s.decl(g.Decl)
	}
	return hex.EncodeToString(s.h.Sum(nil))
}
