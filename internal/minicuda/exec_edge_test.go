package minicuda

import (
	"errors"
	"testing"

	"webgpu/internal/gpusim"
)

// Edge-case interpreter coverage beyond the lab-shaped kernels.

func runScalarKernel(t *testing.T, src string, nOut int) []float32 {
	t.Helper()
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, src)
	out, _ := d.Malloc(nOut * 4)
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1)}, FloatPtr(out))
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, _ := d.ReadFloat32(out, nOut)
	return got
}

func TestPrefixAndPostfixIncrement(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  int a = 5;
  out[0] = (float)(a++); // 5, a=6
  out[1] = (float)(++a); // 7, a=7
  out[2] = (float)(a--); // 7, a=6
  out[3] = (float)(--a); // 5, a=5
  out[4] = (float)a;
  float f = 1.5f;
  f++;
  out[5] = f;
}`, 6)
	want := []float32{5, 7, 7, 5, 5, 2.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPointerIncrementWalk(t *testing.T) {
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, `
__global__ void k(float *data, int n) {
  float *ptr = data;
  float sum = 0.0f;
  for (int i = 0; i < n; i++) {
    sum += *ptr;
    ptr++;
  }
  data[0] = sum;
  float *q = data + n - 1;
  q -= 1;           // compound pointer assignment
  data[1] = *q;
}`)
	vals := []float32{1, 2, 3, 4, 5}
	dp, _ := d.MallocFloat32(5, vals)
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1)},
		FloatPtr(dp), Int(5))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(dp, 5)
	if got[0] != 15 {
		t.Errorf("sum via pointer walk = %v", got[0])
	}
	if got[1] != 4 {
		t.Errorf("q points at %v, want 4", got[1])
	}
}

func TestCommaOperatorInFor(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  int s = 0;
  int i;
  int j;
  for (i = 0, j = 10; i < j; i++, j--) {
    s += 1;
  }
  out[0] = (float)s; // meets in the middle after 5 iterations
  out[1] = (float)i;
  out[2] = (float)j;
}`, 3)
	if got[0] != 5 || got[1] != 5 || got[2] != 5 {
		t.Errorf("got %v, want [5 5 5]", got)
	}
}

func TestNestedDeviceCalls(t *testing.T) {
	got := runScalarKernel(t, `
__device__ int twice(int x) { return x * 2; }
__device__ int addTwice(int a, int b) { return twice(a) + twice(b); }
__global__ void k(float *out) {
  out[0] = (float)addTwice(3, 4); // 14
}`, 1)
	if got[0] != 14 {
		t.Errorf("nested call = %v", got[0])
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, `
__device__ int down(int n) {
  if (n <= 0) return 0;
  return down(n - 1) + 1;
}
__global__ void k(int *out, int n) { out[0] = down(n); }`)
	out, _ := d.Malloc(4)
	// Shallow recursion works.
	if _, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1)},
		IntPtr(out), Int(20)); err != nil {
		t.Fatalf("shallow recursion: %v", err)
	}
	got, _ := d.ReadInt32(out, 1)
	if got[0] != 20 {
		t.Errorf("down(20) = %d", got[0])
	}
	// Deep recursion trips the device call-stack limit.
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(1)},
		IntPtr(out), Int(10000))
	if !errors.Is(err, ErrCallDepth) {
		t.Errorf("deep recursion err = %v, want ErrCallDepth", err)
	}
}

func TestDoWhileWithBreakContinue(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  int i = 0;
  int s = 0;
  do {
    i++;
    if (i == 3) continue;
    if (i >= 6) break;
    s += i;
  } while (i < 100);
  out[0] = (float)s; // 1+2+4+5 = 12
  out[1] = (float)i; // 6
}`, 2)
	if got[0] != 12 || got[1] != 6 {
		t.Errorf("got %v, want [12 6]", got)
	}
}

func TestAddressOfSharedScalar(t *testing.T) {
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, `
__global__ void k(int *out) {
  __shared__ int counter;
  if (threadIdx.x == 0) counter = 0;
  __syncthreads();
  atomicAdd(&counter, 1);
  __syncthreads();
  if (threadIdx.x == 0) out[0] = counter;
}`)
	out, _ := d.Malloc(4)
	_, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(96)}, IntPtr(out))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadInt32(out, 1)
	if got[0] != 96 {
		t.Errorf("shared counter = %d, want 96", got[0])
	}
}

func TestConstScalarGlobal(t *testing.T) {
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, `
__constant__ float scaleFactor;
__global__ void k(float *out) { out[threadIdx.x] = scaleFactor * (float)threadIdx.x; }`)
	if err := p.LoadConstant(d, "scaleFactor", gpusim.Float32Bytes([]float32{2.5})); err != nil {
		t.Fatal(err)
	}
	out, _ := d.Malloc(4 * 4)
	if _, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(1), Block: gpusim.D1(4)},
		FloatPtr(out)); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(out, 4)
	if got[3] != 7.5 {
		t.Errorf("out[3] = %v, want 7.5", got[3])
	}
}

func TestCharConversions(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  unsigned char u = (unsigned char)300; // 44
  char c = (char)200;                   // -56
  out[0] = (float)u;
  out[1] = (float)c;
  out[2] = (float)'A';
  out[3] = (float)'\n';
}`, 4)
	want := []float32{44, -56, 65, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNegativeModuloCSemantics(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  out[0] = (float)(-7 % 3);  // -1 in C
  out[1] = (float)(7 % -3);  // 1 in C
  out[2] = (float)(-7 / 2);  // -3 (truncation toward zero)
}`, 3)
	want := []float32{-1, 1, -3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTernaryChained(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  int x = 7;
  out[0] = x < 5 ? 1.0f : x < 10 ? 2.0f : 3.0f;
  out[1] = (float)(x > 0 ? x : -x);
}`, 2)
	if got[0] != 2 || got[1] != 7 {
		t.Errorf("got %v", got)
	}
}

func TestSizeofTypes(t *testing.T) {
	got := runScalarKernel(t, `
__global__ void k(float *out) {
  out[0] = (float)sizeof(int);
  out[1] = (float)sizeof(float);
  out[2] = (float)sizeof(char);
  out[3] = (float)sizeof(float*);
}`, 4)
	want := []float32{4, 4, 1, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sizeof case %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGridStrideLoopPattern(t *testing.T) {
	// The canonical grid-stride loop: fewer threads than elements.
	d := gpusim.NewDefaultDevice()
	p := mustCompile(t, `
__global__ void k(float *data, int n) {
  for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n; i += blockDim.x * gridDim.x) {
    data[i] = data[i] + 1.0f;
  }
}`)
	n := 1000
	dp, _ := d.MallocFloat32(n, make([]float32, n))
	if _, err := p.Launch(d, "k", LaunchOpts{Grid: gpusim.D1(2), Block: gpusim.D1(64)},
		FloatPtr(dp), Int(n)); err != nil {
		t.Fatal(err)
	}
	got, _ := d.ReadFloat32(dp, n)
	for i, v := range got {
		if v != 1 {
			t.Fatalf("data[%d] = %v", i, v)
		}
	}
}
