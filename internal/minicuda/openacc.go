package minicuda

import (
	"fmt"
	"strings"
)

// OpenACC support. The paper's platform served OpenACC labs alongside
// CUDA and OpenCL (§V: "Most courses are taught in the CUDA programming
// language, but WebGPU also supports OpenCL, OpenACC, and MPI"); on the
// real worker nodes the PGI compiler turned pragma-annotated loops into
// kernels. TranslateOpenACC performs the same source-to-source step for
// the subset the course materials use: a
//
//	#pragma acc parallel loop        (or: #pragma acc kernels loop)
//	for (int i = START; i < BOUND; i++) { BODY }
//
// inside a void host function is compiled into a __global__ kernel named
// after the host function, with one thread per iteration and the
// canonical boundary guard. Clauses (gang, vector, copyin, ...) are
// accepted and ignored, as a teaching compiler's default schedule would.

// DialectOpenACC routes Compile through the OpenACC translator.
const DialectOpenACC Dialect = 2

// TranslateOpenACC rewrites OpenACC-annotated host code into CUDA kernel
// source. Each `#pragma acc ... loop` + canonical for-loop becomes one
// kernel; the first takes the host function's name, later ones get a
// _loopN suffix.
func TranslateOpenACC(src string) (string, error) {
	clean := StripComments(src)
	lines := strings.Split(clean, "\n")

	var out strings.Builder
	out.WriteString("// translated from OpenACC\n")

	i := 0
	kernels := 0
	for i < len(lines) {
		trimmed := strings.TrimSpace(lines[i])
		if !isAccPragma(trimmed) {
			i++
			continue
		}
		pragmaLine := i + 1 // 1-based for diagnostics

		// The pragma must annotate a for loop.
		j := i + 1
		for j < len(lines) && strings.TrimSpace(lines[j]) == "" {
			j++
		}
		if j >= len(lines) || !strings.HasPrefix(strings.TrimSpace(lines[j]), "for") {
			return "", &CompileError{Line: pragmaLine, Col: 1,
				Msg: "#pragma acc loop must be followed by a for loop"}
		}

		// Find the enclosing function signature by scanning backwards.
		fnName, params, err := enclosingFunction(lines, i)
		if err != nil {
			return "", err
		}

		// Parse the canonical loop header.
		loopSrc := strings.Join(lines[j:], "\n")
		hdr, body, _, err := parseAccLoop(loopSrc, j+1)
		if err != nil {
			return "", err
		}

		name := fnName
		if kernels > 0 {
			name = fmt.Sprintf("%s_loop%d", fnName, kernels+1)
		}
		kernels++

		fmt.Fprintf(&out, "__global__ void %s(%s) {\n", name, params)
		fmt.Fprintf(&out, "  int %s = (%s) + blockIdx.x * blockDim.x + threadIdx.x;\n",
			hdr.varName, hdr.initExpr)
		fmt.Fprintf(&out, "  if (%s %s (%s)) {\n", hdr.varName, hdr.cmpOp, hdr.boundExpr)
		for _, bl := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
			fmt.Fprintf(&out, "    %s\n", strings.TrimSpace(bl))
		}
		out.WriteString("  }\n}\n\n")

		// Continue scanning after this pragma line; nested pragmas inside
		// the translated body are not supported.
		i = j + 1
	}
	if kernels == 0 {
		return "", &CompileError{Line: 1, Col: 1,
			Msg: "no #pragma acc parallel/kernels loop found"}
	}
	return out.String(), nil
}

func isAccPragma(line string) bool {
	if !strings.HasPrefix(line, "#pragma") {
		return false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, "#pragma"))
	if !strings.HasPrefix(rest, "acc") {
		return false
	}
	return strings.Contains(rest, "loop")
}

// enclosingFunction scans backwards from the pragma for `void name(params) {`.
func enclosingFunction(lines []string, pragmaIdx int) (name, params string, err error) {
	for k := pragmaIdx - 1; k >= 0; k-- {
		l := strings.TrimSpace(lines[k])
		open := strings.Index(l, "(")
		if open <= 0 || !strings.Contains(l, ")") {
			continue
		}
		head := strings.TrimSpace(l[:open])
		fields := strings.Fields(head)
		if len(fields) < 2 || fields[0] != "void" {
			continue
		}
		close := strings.LastIndex(l, ")")
		return fields[len(fields)-1], strings.TrimSpace(l[open+1 : close]), nil
	}
	return "", "", &CompileError{Line: pragmaIdx + 1, Col: 1,
		Msg: "#pragma acc loop is not inside a `void name(...)` function"}
}

type accLoopHeader struct {
	varName   string
	initExpr  string
	cmpOp     string
	boundExpr string
}

// parseAccLoop parses `for (int VAR = INIT; VAR < BOUND; VAR++) BODY`
// textually, returning the header parts, the body source, and the number
// of consumed bytes.
func parseAccLoop(src string, line int) (accLoopHeader, string, int, error) {
	var h accLoopHeader
	bad := func(msg string) (accLoopHeader, string, int, error) {
		return h, "", 0, &CompileError{Line: line, Col: 1,
			Msg: "OpenACC loop must be canonical (`for (int i = a; i < b; i++)`): " + msg}
	}
	open := strings.Index(src, "(")
	if open < 0 {
		return bad("missing (")
	}
	depth := 0
	closeIdx := -1
	for i := open; i < len(src); i++ {
		if src[i] == '(' {
			depth++
		}
		if src[i] == ')' {
			depth--
			if depth == 0 {
				closeIdx = i
				break
			}
		}
	}
	if closeIdx < 0 {
		return bad("missing )")
	}
	header := src[open+1 : closeIdx]
	parts := splitTop(header, ';')
	if len(parts) != 3 {
		return bad("expected three clauses")
	}

	// init: `int VAR = EXPR`
	init := strings.TrimSpace(parts[0])
	if !strings.HasPrefix(init, "int ") {
		return bad("loop variable must be declared `int`")
	}
	eq := strings.Index(init, "=")
	if eq < 0 {
		return bad("loop variable needs an initializer")
	}
	h.varName = strings.TrimSpace(init[4:eq])
	h.initExpr = strings.TrimSpace(init[eq+1:])

	// cond: `VAR < EXPR` or `VAR <= EXPR`
	cond := strings.TrimSpace(parts[1])
	switch {
	case strings.HasPrefix(cond, h.varName+" <= "), strings.HasPrefix(cond, h.varName+"<="):
		h.cmpOp = "<="
	case strings.HasPrefix(cond, h.varName+" < "), strings.HasPrefix(cond, h.varName+"<"):
		h.cmpOp = "<"
	default:
		return bad("condition must be `" + h.varName + " < bound`")
	}
	lt := strings.Index(cond, "<")
	bound := cond[lt+1:]
	bound = strings.TrimPrefix(bound, "=")
	h.boundExpr = strings.TrimSpace(bound)

	// step: VAR++ / ++VAR / VAR += 1
	step := strings.ReplaceAll(strings.TrimSpace(parts[2]), " ", "")
	if step != h.varName+"++" && step != "++"+h.varName && step != h.varName+"+=1" {
		return bad("step must be `" + h.varName + "++`")
	}

	// Body: either a braced block or a single statement.
	rest := src[closeIdx+1:]
	k := 0
	for k < len(rest) && (rest[k] == ' ' || rest[k] == '\n' || rest[k] == '\t' || rest[k] == '\r') {
		k++
	}
	if k < len(rest) && rest[k] == '{' {
		depth := 0
		for i := k; i < len(rest); i++ {
			if rest[i] == '{' {
				depth++
			}
			if rest[i] == '}' {
				depth--
				if depth == 0 {
					return h, rest[k+1 : i], closeIdx + 1 + i, nil
				}
			}
		}
		return bad("unterminated loop body")
	}
	semi := strings.Index(rest[k:], ";")
	if semi < 0 {
		return bad("missing loop body")
	}
	return h, rest[k : k+semi+1], closeIdx + 1 + k + semi + 1, nil
}

// splitTop splits s on sep at paren depth zero.
func splitTop(s string, sep byte) []string {
	var parts []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[last:i])
				last = i + 1
			}
		}
	}
	parts = append(parts, s[last:])
	return parts
}
