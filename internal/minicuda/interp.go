package minicuda

import (
	"errors"
	"fmt"
	"math"

	"webgpu/internal/gpusim"
)

// Runtime errors surfaced to students.
var (
	ErrStepLimit  = errors.New("minicuda: kernel execution time limit exceeded")
	ErrDivByZero  = errors.New("minicuda: integer division by zero")
	ErrBadAddress = errors.New("minicuda: invalid address operation")
	ErrCallDepth  = errors.New("minicuda: device call stack overflow")
)

// Value is a runtime value: one of a scalar (I or F by type kind) or a
// pointer.
type Value struct {
	T *Type
	I int64
	F float64
	P Pointer
}

// Pointer is a typed device address in one of the memory spaces.
type Pointer struct {
	Space MemSpace
	Elem  *Type
	Glob  gpusim.Ptr // SpaceGlobal: allocation handle + byte offset
	Off   int        // byte offset for SpaceShared/SpaceConst/SpaceLocal
	Local *localBuf  // SpaceLocal backing store
}

// localBuf backs a per-thread local array (register tiling arrays).
type localBuf struct {
	vals []Value
	elem *Type
}

// offset returns the pointer advanced by n bytes.
func (p Pointer) offset(n int) Pointer {
	q := p
	if p.Space == SpaceGlobal {
		q.Glob = p.Glob.Offset(n)
	} else {
		q.Off += n
	}
	return q
}

func intValue(t *Type, i int64) Value   { return Value{T: t, I: truncInt(t, i)} }
func floatValue(f float64) Value        { return Value{T: TypeFloat, F: float64(float32(f))} }
func ptrValue(t *Type, p Pointer) Value { return Value{T: t, P: p} }

// truncInt applies the width/signedness of t to i.
func truncInt(t *Type, i int64) int64 {
	switch t.Kind {
	case KBool:
		if i != 0 {
			return 1
		}
		return 0
	case KChar:
		return int64(int8(i))
	case KUChar:
		return int64(uint8(i))
	case KInt:
		return int64(int32(i))
	case KUInt:
		return int64(uint32(i))
	}
	return i
}

// convert coerces v to type to.
func convert(v Value, to *Type) Value {
	if to.Kind == KPtr {
		if v.T != nil && (v.T.Kind == KPtr || v.T.Kind == KArray) {
			p := v.P
			p.Elem = to.Elem
			return ptrValue(to, p)
		}
		return ptrValue(to, v.P)
	}
	if to.Kind == KFloat {
		if v.T != nil && v.T.Kind == KFloat {
			return Value{T: to, F: float64(float32(v.F))}
		}
		return Value{T: to, F: float64(float32(v.I))}
	}
	// integer target
	if v.T != nil && v.T.Kind == KFloat {
		return intValue(to, int64(v.F))
	}
	return intValue(to, v.I)
}

// truthy reports C truthiness.
func (v Value) truthy() bool {
	if v.T != nil {
		switch v.T.Kind {
		case KFloat:
			return v.F != 0
		case KPtr:
			return !v.P.Glob.IsNil() || v.P.Local != nil || v.P.Off != 0
		}
	}
	return v.I != 0
}

// lvalue designates an assignable location.
type lvalue struct {
	slot   int // frame slot, when ptr.Elem == nil and local == true
	isSlot bool
	ptr    Pointer // memory location of a scalar, when !isSlot
}

// control models non-local statement exits.
type ctlKind int

const (
	ctlNext ctlKind = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

type control struct {
	kind ctlKind
	val  Value
}

// thread interprets one simulated GPU thread.
type thread struct {
	prog     *Program
	tc       *gpusim.ThreadCtx
	steps    int64
	maxSteps int64
	depth    int
	dyn      int // dynamic shared bytes offset (static shared comes first)
}

func (th *thread) step() error {
	th.steps++
	if th.steps > th.maxSteps {
		return ErrStepLimit
	}
	return nil
}

// ---- Statement execution ----------------------------------------------------

func (th *thread) execBlock(fr []Value, b *Block) (control, error) {
	for _, s := range b.Stmts {
		c, err := th.execStmt(fr, s)
		if err != nil || c.kind != ctlNext {
			return c, err
		}
	}
	return control{}, nil
}

func (th *thread) execStmt(fr []Value, s Stmt) (control, error) {
	if err := th.step(); err != nil {
		return control{}, err
	}
	switch st := s.(type) {
	case *Block:
		return th.execBlock(fr, st)
	case *EmptyStmt:
		return control{}, nil
	case *DeclStmt:
		for _, d := range st.Decls {
			if err := th.execDecl(fr, d); err != nil {
				return control{}, err
			}
		}
		return control{}, nil
	case *ExprStmt:
		_, err := th.eval(fr, st.X)
		return control{}, err
	case *IfStmt:
		cond, err := th.eval(fr, st.Cond)
		if err != nil {
			return control{}, err
		}
		th.tc.CountBranch()
		if cond.truthy() {
			return th.execStmt(fr, st.Then)
		}
		if st.Else != nil {
			return th.execStmt(fr, st.Else)
		}
		return control{}, nil
	case *ForStmt:
		if st.Init != nil {
			if c, err := th.execStmt(fr, st.Init); err != nil || c.kind == ctlReturn {
				return c, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := th.eval(fr, st.Cond)
				if err != nil {
					return control{}, err
				}
				th.tc.CountBranch()
				if !cond.truthy() {
					return control{}, nil
				}
			}
			c, err := th.execStmt(fr, st.Body)
			if err != nil {
				return control{}, err
			}
			switch c.kind {
			case ctlReturn:
				return c, nil
			case ctlBreak:
				return control{}, nil
			}
			if st.Post != nil {
				if _, err := th.eval(fr, st.Post); err != nil {
					return control{}, err
				}
			}
			if err := th.step(); err != nil {
				return control{}, err
			}
		}
	case *WhileStmt:
		first := st.DoFirst
		for {
			if !first {
				cond, err := th.eval(fr, st.Cond)
				if err != nil {
					return control{}, err
				}
				th.tc.CountBranch()
				if !cond.truthy() {
					return control{}, nil
				}
			}
			first = false
			c, err := th.execStmt(fr, st.Body)
			if err != nil {
				return control{}, err
			}
			switch c.kind {
			case ctlReturn:
				return c, nil
			case ctlBreak:
				return control{}, nil
			}
			if st.DoFirst {
				cond, err := th.eval(fr, st.Cond)
				if err != nil {
					return control{}, err
				}
				th.tc.CountBranch()
				if !cond.truthy() {
					return control{}, nil
				}
			}
			if err := th.step(); err != nil {
				return control{}, err
			}
		}
	case *ReturnStmt:
		var v Value
		if st.X != nil {
			x, err := th.eval(fr, st.X)
			if err != nil {
				return control{}, err
			}
			v = x
		}
		return control{kind: ctlReturn, val: v}, nil
	case *BreakStmt:
		return control{kind: ctlBreak}, nil
	case *ContinueStmt:
		return control{kind: ctlContinue}, nil
	}
	return control{}, fmt.Errorf("minicuda: internal: unknown statement %T", s)
}

func (th *thread) execDecl(fr []Value, d *VarDecl) error {
	sym := d.Sym
	switch sym.Kind {
	case SymShared:
		return nil // laid out at compile time, nothing to do per thread
	case SymLocal:
		t := sym.Type
		if t.Kind == KArray {
			n := t.Size() / t.ElemBase().Size()
			buf := &localBuf{vals: make([]Value, n), elem: t.ElemBase()}
			for i := range buf.vals {
				buf.vals[i] = Value{T: buf.elem}
			}
			fr[sym.Slot] = ptrValue(t, Pointer{Space: SpaceLocal, Elem: t, Local: buf})
			return nil
		}
		if d.Init != nil {
			v, err := th.eval(fr, d.Init)
			if err != nil {
				return err
			}
			fr[sym.Slot] = convert(v, t)
		} else {
			fr[sym.Slot] = Value{T: t}
		}
		return nil
	}
	return fmt.Errorf("minicuda: internal: bad decl kind")
}

// ---- Memory -----------------------------------------------------------------

// loadMem loads the scalar of type t at pointer p. It is shared by the
// tree-walking interpreter and the register VM.
func loadMem(tc *gpusim.ThreadCtx, p Pointer, t *Type) (Value, error) {
	size := t.Size()
	switch p.Space {
	case SpaceGlobal:
		switch size {
		case 4:
			if t.Kind == KFloat {
				f, err := tc.LoadFloat32(p.Glob, 0)
				if err != nil {
					return Value{}, err
				}
				return Value{T: t, F: float64(f)}, nil
			}
			i, err := tc.LoadInt32(p.Glob, 0)
			if err != nil {
				return Value{}, err
			}
			return intValue(t, int64(i)), nil
		case 1:
			b, err := tc.LoadByte(p.Glob, 0)
			if err != nil {
				return Value{}, err
			}
			return intValue(t, int64(b)), nil
		}
	case SpaceShared:
		if t.Kind == KFloat {
			f, err := tc.SharedLoadFloat32(p.Off / 4)
			if err != nil {
				return Value{}, err
			}
			return Value{T: t, F: float64(f)}, nil
		}
		i, err := tc.SharedLoadInt32(p.Off / 4)
		if err != nil {
			return Value{}, err
		}
		return intValue(t, int64(i)), nil
	case SpaceConst:
		if t.Kind == KFloat {
			f, err := tc.ConstLoadFloat32(p.Off / 4)
			if err != nil {
				return Value{}, err
			}
			return Value{T: t, F: float64(f)}, nil
		}
		i, err := tc.ConstLoadInt32(p.Off / 4)
		if err != nil {
			return Value{}, err
		}
		return intValue(t, int64(i)), nil
	case SpaceLocal:
		idx := p.Off / p.Local.elem.Size()
		if idx < 0 || idx >= len(p.Local.vals) {
			return Value{}, fmt.Errorf("%w: local array index %d out of range [0,%d)",
				gpusim.ErrIllegalAccess, idx, len(p.Local.vals))
		}
		v := p.Local.vals[idx]
		v.T = t
		return v, nil
	}
	return Value{}, fmt.Errorf("%w: unsupported %d-byte access in %s memory",
		ErrBadAddress, size, p.Space)
}

// storeMem stores scalar v (already converted to t) at pointer p. It is
// shared by the tree-walking interpreter and the register VM.
func storeMem(tc *gpusim.ThreadCtx, p Pointer, t *Type, v Value) error {
	size := t.Size()
	switch p.Space {
	case SpaceGlobal:
		switch size {
		case 4:
			if t.Kind == KFloat {
				return tc.StoreFloat32(p.Glob, 0, float32(v.F))
			}
			return tc.StoreInt32(p.Glob, 0, int32(v.I))
		case 1:
			return tc.StoreByte(p.Glob, 0, byte(v.I))
		}
	case SpaceShared:
		if t.Kind == KFloat {
			return tc.SharedStoreFloat32(p.Off/4, float32(v.F))
		}
		return tc.SharedStoreInt32(p.Off/4, int32(v.I))
	case SpaceConst:
		return fmt.Errorf("%w: constant memory is read-only", gpusim.ErrIllegalAccess)
	case SpaceLocal:
		idx := p.Off / p.Local.elem.Size()
		if idx < 0 || idx >= len(p.Local.vals) {
			return fmt.Errorf("%w: local array index %d out of range [0,%d)",
				gpusim.ErrIllegalAccess, idx, len(p.Local.vals))
		}
		p.Local.vals[idx] = v
		return nil
	}
	return fmt.Errorf("%w: unsupported %d-byte store in %s memory", ErrBadAddress, size, p.Space)
}

// ---- Lvalues ------------------------------------------------------------------

func (th *thread) evalLvalue(fr []Value, e Expr) (lvalue, error) {
	switch x := e.(type) {
	case *VarRef:
		sym := x.Sym
		switch sym.Kind {
		case SymLocal:
			if sym.Type.Kind == KArray {
				return lvalue{}, errAt(x.Tok(), "cannot assign to array %q", x.Name)
			}
			return lvalue{isSlot: true, slot: sym.Slot}, nil
		case SymShared:
			return lvalue{ptr: Pointer{Space: SpaceShared, Elem: sym.Type, Off: sym.Off}}, nil
		case SymConst:
			return lvalue{ptr: Pointer{Space: SpaceConst, Elem: sym.Type, Off: sym.Off}}, nil
		}
	case *Index:
		p, err := th.evalAddr(fr, x.Base)
		if err != nil {
			return lvalue{}, err
		}
		idx, err := th.eval(fr, x.Idx)
		if err != nil {
			return lvalue{}, err
		}
		elem := x.ResultType()
		th.tc.CountALU(2)
		return lvalue{ptr: p.offset(int(idx.I) * elem.Size()).withElem(elem)}, nil
	case *Unary:
		if x.Op == "*" {
			pv, err := th.eval(fr, x.X)
			if err != nil {
				return lvalue{}, err
			}
			p := pv.P
			p.Elem = x.ResultType()
			return lvalue{ptr: p}, nil
		}
	}
	return lvalue{}, errAt(e.Tok(), "expression is not assignable")
}

func (p Pointer) withElem(t *Type) Pointer {
	p.Elem = t
	return p
}

// evalAddr computes the address of an expression that designates storage
// (array names, pointers, indexed arrays).
func (th *thread) evalAddr(fr []Value, e Expr) (Pointer, error) {
	t := e.ResultType()
	switch x := e.(type) {
	case *VarRef:
		sym := x.Sym
		switch sym.Kind {
		case SymShared:
			return Pointer{Space: SpaceShared, Elem: sym.Type, Off: sym.Off}, nil
		case SymConst:
			return Pointer{Space: SpaceConst, Elem: sym.Type, Off: sym.Off}, nil
		case SymLocal:
			v := fr[sym.Slot]
			if sym.Type.Kind == KArray || sym.Type.Kind == KPtr {
				return v.P, nil
			}
			return Pointer{}, errAt(x.Tok(), "cannot address register variable %q", x.Name)
		}
	case *Index:
		base, err := th.evalAddr(fr, x.Base)
		if err != nil {
			return Pointer{}, err
		}
		idx, err := th.eval(fr, x.Idx)
		if err != nil {
			return Pointer{}, err
		}
		th.tc.CountALU(2)
		return base.offset(int(idx.I) * t.Size()).withElem(t), nil
	case *Unary:
		if x.Op == "*" {
			pv, err := th.eval(fr, x.X)
			if err != nil {
				return Pointer{}, err
			}
			return pv.P.withElem(t), nil
		}
	default:
		// A pointer-valued expression (e.g. p + 4).
		v, err := th.eval(fr, e)
		if err != nil {
			return Pointer{}, err
		}
		if v.T != nil && (v.T.Kind == KPtr || v.T.Kind == KArray) {
			return v.P, nil
		}
	}
	return Pointer{}, errAt(e.Tok(), "expression does not designate storage")
}

func (th *thread) loadLvalue(fr []Value, lv lvalue, t *Type) (Value, error) {
	if lv.isSlot {
		return fr[lv.slot], nil
	}
	return loadMem(th.tc, lv.ptr, t)
}

func (th *thread) storeLvalue(fr []Value, lv lvalue, t *Type, v Value) error {
	cv := convert(v, t)
	if lv.isSlot {
		fr[lv.slot] = cv
		return nil
	}
	return storeMem(th.tc, lv.ptr, t, cv)
}

// ---- Expression evaluation ---------------------------------------------------

func (th *thread) eval(fr []Value, e Expr) (Value, error) {
	if err := th.step(); err != nil {
		return Value{}, err
	}
	switch x := e.(type) {
	case *IntLit:
		return x.val, nil
	case *FloatLit:
		return x.val, nil
	case *BoolLit:
		return x.val, nil
	case *VarRef:
		sym := x.Sym
		switch sym.Kind {
		case SymLocal:
			return fr[sym.Slot], nil
		case SymShared:
			if sym.Type.Kind == KArray {
				return ptrValue(sym.Type, Pointer{Space: SpaceShared, Elem: sym.Type, Off: sym.Off}), nil
			}
			return loadMem(th.tc, Pointer{Space: SpaceShared, Off: sym.Off}, sym.Type)
		case SymConst:
			if sym.Type.Kind == KArray {
				return ptrValue(sym.Type, Pointer{Space: SpaceConst, Elem: sym.Type, Off: sym.Off}), nil
			}
			return loadMem(th.tc, Pointer{Space: SpaceConst, Off: sym.Off}, sym.Type)
		}
	case *BuiltinVarRef:
		return intValue(TypeInt, int64(th.builtinDim(x.baseID, x.Dim))), nil
	case *Unary:
		return th.evalUnary(fr, x)
	case *Postfix:
		lv, err := th.evalLvalue(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		t := x.X.ResultType()
		old, err := th.loadLvalue(fr, lv, t)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		th.tc.CountALU(1)
		var nv Value
		if t.Kind == KFloat {
			nv = floatValue(old.F + float64(delta))
		} else if t.Kind == KPtr {
			nv = ptrValue(t, old.P.offset(int(delta)*t.Elem.Size()))
		} else {
			nv = intValue(t, old.I+delta)
		}
		if err := th.storeLvalue(fr, lv, t, nv); err != nil {
			return Value{}, err
		}
		return old, nil
	case *Binary:
		return th.evalBinary(fr, x)
	case *Assign:
		return th.evalAssign(fr, x)
	case *Ternary:
		cond, err := th.eval(fr, x.Cond)
		if err != nil {
			return Value{}, err
		}
		th.tc.CountBranch()
		var branch Expr
		if cond.truthy() {
			branch = x.Then
		} else {
			branch = x.Else
		}
		v, err := th.eval(fr, branch)
		if err != nil {
			return Value{}, err
		}
		if x.ResultType().IsScalar() {
			return convert(v, x.ResultType()), nil
		}
		return v, nil
	case *Index:
		t := x.ResultType()
		if t.Kind == KArray {
			// Indexing a multi-dim array yields a sub-array address.
			p, err := th.evalAddr(fr, x)
			if err != nil {
				return Value{}, err
			}
			return ptrValue(t, p), nil
		}
		p, err := th.evalAddr(fr, x)
		if err != nil {
			return Value{}, err
		}
		return loadMem(th.tc, p, t)
	case *Cast:
		v, err := th.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		th.tc.CountALU(1)
		return convert(v, x.To), nil
	case *Call:
		return th.evalCall(fr, x)
	}
	return Value{}, fmt.Errorf("minicuda: internal: unknown expression %T", e)
}

func (th *thread) builtinDim(base uint8, dim int) int {
	var d gpusim.Dim3
	switch base {
	case baseThreadIdx:
		d = th.tc.ThreadIdx
	case baseBlockIdx:
		d = th.tc.BlockIdx
	case baseBlockDim:
		d = th.tc.BlockDim
	case baseGridDim:
		d = th.tc.GridDim
	}
	switch dim {
	case 0:
		return d.X
	case 1:
		return d.Y
	case 2:
		return d.Z
	}
	return 0
}

func (th *thread) evalUnary(fr []Value, x *Unary) (Value, error) {
	switch x.Op {
	case "+", "-", "!", "~":
		v, err := th.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		th.tc.CountALU(1)
		t := x.ResultType()
		switch x.Op {
		case "+":
			return convert(v, t), nil
		case "-":
			if t.Kind == KFloat {
				return floatValue(-toF(v)), nil
			}
			return intValue(t, -toI(v)), nil
		case "!":
			if v.truthy() {
				return intValue(TypeInt, 0), nil
			}
			return intValue(TypeInt, 1), nil
		case "~":
			return intValue(t, ^toI(v)), nil
		}
	case "*":
		p, err := th.evalAddr(fr, x)
		if err != nil {
			return Value{}, err
		}
		t := x.ResultType()
		if t.Kind == KArray {
			return ptrValue(t, p), nil
		}
		return loadMem(th.tc, p, t)
	case "&":
		p, err := th.evalAddr(fr, x.X)
		if err != nil {
			// Address of a memory-resident scalar lvalue.
			lv, lerr := th.evalLvalue(fr, x.X)
			if lerr != nil || lv.isSlot {
				return Value{}, errAt(x.Tok(), "cannot take the address of this expression")
			}
			return ptrValue(x.ResultType(), lv.ptr), nil
		}
		return ptrValue(x.ResultType(), p), nil
	case "++", "--":
		lv, err := th.evalLvalue(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		t := x.X.ResultType()
		old, err := th.loadLvalue(fr, lv, t)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		th.tc.CountALU(1)
		var nv Value
		if t.Kind == KFloat {
			nv = floatValue(old.F + float64(delta))
		} else if t.Kind == KPtr {
			nv = ptrValue(t, old.P.offset(int(delta)*t.Elem.Size()))
		} else {
			nv = intValue(t, old.I+delta)
		}
		if err := th.storeLvalue(fr, lv, t, nv); err != nil {
			return Value{}, err
		}
		return nv, nil
	}
	return Value{}, errAt(x.Tok(), "unsupported unary %q", x.Op)
}

func toF(v Value) float64 {
	if v.T != nil && v.T.Kind == KFloat {
		return v.F
	}
	return float64(v.I)
}

func toI(v Value) int64 {
	if v.T != nil && v.T.Kind == KFloat {
		return int64(v.F)
	}
	return v.I
}

func (th *thread) evalBinary(fr []Value, x *Binary) (Value, error) {
	switch x.Op {
	case "&&":
		l, err := th.eval(fr, x.L)
		if err != nil {
			return Value{}, err
		}
		th.tc.CountBranch()
		if !l.truthy() {
			return intValue(TypeInt, 0), nil
		}
		r, err := th.eval(fr, x.R)
		if err != nil {
			return Value{}, err
		}
		if r.truthy() {
			return intValue(TypeInt, 1), nil
		}
		return intValue(TypeInt, 0), nil
	case "||":
		l, err := th.eval(fr, x.L)
		if err != nil {
			return Value{}, err
		}
		th.tc.CountBranch()
		if l.truthy() {
			return intValue(TypeInt, 1), nil
		}
		r, err := th.eval(fr, x.R)
		if err != nil {
			return Value{}, err
		}
		if r.truthy() {
			return intValue(TypeInt, 1), nil
		}
		return intValue(TypeInt, 0), nil
	case ",":
		if _, err := th.eval(fr, x.L); err != nil {
			return Value{}, err
		}
		return th.eval(fr, x.R)
	}

	l, err := th.eval(fr, x.L)
	if err != nil {
		return Value{}, err
	}
	r, err := th.eval(fr, x.R)
	if err != nil {
		return Value{}, err
	}
	th.tc.CountALU(1)

	lt, rt := x.L.ResultType(), x.R.ResultType()

	// Pointer arithmetic and comparison.
	if lt != nil && (lt.Kind == KPtr || lt.Kind == KArray) {
		switch x.Op {
		case "+", "-":
			if rt != nil && rt.Kind == KPtr {
				return intValue(TypeInt, int64((ptrDelta(l.P, r.P))/lt.Elem.Size())), nil
			}
			n := int(toI(r)) * elemSizeOf(lt)
			if x.Op == "-" {
				n = -n
			}
			return ptrValue(x.ResultType(), l.P.offset(n)), nil
		case "==", "!=", "<", "<=", ">", ">=":
			return comparePtrs(x.Op, l.P, r.P), nil
		}
	}
	if rt != nil && rt.Kind == KPtr && x.Op == "+" {
		n := int(toI(l)) * rt.Elem.Size()
		return ptrValue(x.ResultType(), r.P.offset(n)), nil
	}

	switch x.Op {
	case "==", "!=", "<", "<=", ">", ">=":
		ct := commonType(lt, rt)
		var res bool
		if ct.Kind == KFloat {
			a, b := toF(l), toF(r)
			res = compareF(x.Op, a, b)
		} else if ct.Kind == KUInt {
			a, b := uint32(toI(l)), uint32(toI(r))
			res = compareU(x.Op, a, b)
		} else {
			res = compareI(x.Op, toI(l), toI(r))
		}
		if res {
			return intValue(TypeInt, 1), nil
		}
		return intValue(TypeInt, 0), nil
	}

	t := x.ResultType()
	if t.Kind == KFloat {
		a, b := toF(l), toF(r)
		var f float64
		switch x.Op {
		case "+":
			f = a + b
		case "-":
			f = a - b
		case "*":
			f = a * b
		case "/":
			f = a / b
		default:
			return Value{}, errAt(x.Tok(), "invalid float operator %q", x.Op)
		}
		return floatValue(f), nil
	}

	a, b := toI(l), toI(r)
	unsigned := t.Kind == KUInt || t.Kind == KUChar
	var i int64
	switch x.Op {
	case "+":
		i = a + b
	case "-":
		i = a - b
	case "*":
		i = a * b
	case "/":
		if b == 0 {
			return Value{}, ErrDivByZero
		}
		if unsigned {
			i = int64(uint32(a) / uint32(b))
		} else {
			i = a / b
		}
	case "%":
		if b == 0 {
			return Value{}, ErrDivByZero
		}
		if unsigned {
			i = int64(uint32(a) % uint32(b))
		} else {
			i = a % b
		}
	case "&":
		i = a & b
	case "|":
		i = a | b
	case "^":
		i = a ^ b
	case "<<":
		i = a << (uint(b) & 31)
	case ">>":
		if unsigned {
			i = int64(uint32(a) >> (uint(b) & 31))
		} else {
			i = int64(int32(a) >> (uint(b) & 31))
		}
	default:
		return Value{}, errAt(x.Tok(), "invalid integer operator %q", x.Op)
	}
	return intValue(t, i), nil
}

func elemSizeOf(t *Type) int {
	if t.Elem != nil {
		return t.Elem.Size()
	}
	return 1
}

func ptrDelta(a, b Pointer) int {
	if a.Space == SpaceGlobal {
		return a.Glob.Off - b.Glob.Off
	}
	return a.Off - b.Off
}

func comparePtrs(op string, a, b Pointer) Value {
	d := ptrDelta(a, b)
	eq := d == 0 && a.Space == b.Space && a.Glob == b.Glob && a.Local == b.Local
	var res bool
	switch op {
	case "==":
		res = eq
	case "!=":
		res = !eq
	case "<":
		res = d < 0
	case "<=":
		res = d <= 0
	case ">":
		res = d > 0
	case ">=":
		res = d >= 0
	}
	if res {
		return intValue(TypeInt, 1)
	}
	return intValue(TypeInt, 0)
}

func compareF(op string, a, b float64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func compareI(op string, a, b int64) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func compareU(op string, a, b uint32) bool {
	switch op {
	case "==":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func (th *thread) evalAssign(fr []Value, x *Assign) (Value, error) {
	lv, err := th.evalLvalue(fr, x.L)
	if err != nil {
		return Value{}, err
	}
	t := x.L.ResultType()
	if x.Op == "=" {
		r, err := th.eval(fr, x.R)
		if err != nil {
			return Value{}, err
		}
		cv := convert(r, t)
		if err := th.storeLvalue(fr, lv, t, cv); err != nil {
			return Value{}, err
		}
		return cv, nil
	}
	old, err := th.loadLvalue(fr, lv, t)
	if err != nil {
		return Value{}, err
	}
	r, err := th.eval(fr, x.R)
	if err != nil {
		return Value{}, err
	}
	th.tc.CountALU(1)
	var nv Value
	op := x.Op[:len(x.Op)-1]
	if t.Kind == KPtr {
		n := int(toI(r)) * t.Elem.Size()
		if op == "-" {
			n = -n
		}
		nv = ptrValue(t, old.P.offset(n))
	} else if t.Kind == KFloat {
		a, b := old.F, toF(r)
		var f float64
		switch op {
		case "+":
			f = a + b
		case "-":
			f = a - b
		case "*":
			f = a * b
		case "/":
			f = a / b
		default:
			return Value{}, errAt(x.Tok(), "invalid float compound assignment %q", x.Op)
		}
		nv = floatValue(f)
	} else {
		a, b := old.I, toI(r)
		var i int64
		switch op {
		case "+":
			i = a + b
		case "-":
			i = a - b
		case "*":
			i = a * b
		case "/":
			if b == 0 {
				return Value{}, ErrDivByZero
			}
			i = a / b
		case "%":
			if b == 0 {
				return Value{}, ErrDivByZero
			}
			i = a % b
		case "&":
			i = a & b
		case "|":
			i = a | b
		case "^":
			i = a ^ b
		case "<<":
			i = a << (uint(b) & 31)
		case ">>":
			i = a >> (uint(b) & 31)
		}
		nv = intValue(t, i)
	}
	if err := th.storeLvalue(fr, lv, t, nv); err != nil {
		return Value{}, err
	}
	return nv, nil
}

// ---- Calls --------------------------------------------------------------------

const maxCallDepth = 64

func (th *thread) evalCall(fr []Value, x *Call) (Value, error) {
	if x.Fn != nil {
		if th.depth >= maxCallDepth {
			return Value{}, ErrCallDepth
		}
		nf := make([]Value, x.Fn.NumSlots)
		for i, arg := range x.Args {
			v, err := th.eval(fr, arg)
			if err != nil {
				return Value{}, err
			}
			nf[x.Fn.Params[i].Sym.Slot] = convert(v, x.Fn.Params[i].Type)
		}
		th.depth++
		c, err := th.execBlock(nf, x.Fn.Body)
		th.depth--
		if err != nil {
			return Value{}, err
		}
		if c.kind == ctlReturn {
			return convert(c.val, x.Fn.Ret), nil
		}
		return Value{T: x.Fn.Ret}, nil
	}
	return th.evalBuiltin(fr, x)
}

func (th *thread) evalBuiltin(fr []Value, x *Call) (Value, error) {
	// Builtins take at most three arguments (atomicCAS); evaluating into a
	// stack buffer keeps this hot path allocation-free.
	var buf [4]Value
	var args []Value
	if n := len(x.Args); n <= len(buf) {
		args = buf[:n]
	} else {
		args = make([]Value, n)
	}
	for i, a := range x.Args {
		v, err := th.eval(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch x.Builtin {
	case "__syncthreads", "barrier":
		return Value{T: TypeVoid}, th.tc.SyncThreads()
	case "__threadfence":
		return Value{T: TypeVoid}, nil
	case "atomicAdd", "atomicSub", "atomicMax", "atomicMin", "atomicExch", "atomicCAS":
		return th.evalAtomic(x, args)
	case "get_global_id", "get_local_id", "get_group_id",
		"get_local_size", "get_num_groups", "get_global_size":
		return th.evalWorkItem(x.Builtin, int(toI(args[0]))), nil
	case "min", "max":
		t := x.ResultType()
		if t.Kind == KFloat {
			a, b := toF(args[0]), toF(args[1])
			th.tc.CountALU(1)
			if x.Builtin == "min" {
				return floatValue(math.Min(a, b)), nil
			}
			return floatValue(math.Max(a, b)), nil
		}
		a, b := toI(args[0]), toI(args[1])
		th.tc.CountALU(1)
		if x.Builtin == "min" {
			if a < b {
				return intValue(t, a), nil
			}
			return intValue(t, b), nil
		}
		if a > b {
			return intValue(t, a), nil
		}
		return intValue(t, b), nil
	case "abs":
		v := toI(args[0])
		th.tc.CountALU(1)
		if v < 0 {
			v = -v
		}
		return intValue(TypeInt, v), nil
	case "fminf":
		th.tc.CountALU(1)
		return floatValue(math.Min(toF(args[0]), toF(args[1]))), nil
	case "fmaxf":
		th.tc.CountALU(1)
		return floatValue(math.Max(toF(args[0]), toF(args[1]))), nil
	case "fabsf":
		th.tc.CountALU(1)
		return floatValue(math.Abs(toF(args[0]))), nil
	case "floorf":
		th.tc.CountALU(1)
		return floatValue(math.Floor(toF(args[0]))), nil
	case "ceilf":
		th.tc.CountALU(1)
		return floatValue(math.Ceil(toF(args[0]))), nil
	case "sqrtf":
		th.tc.CountSpecial(1)
		return floatValue(math.Sqrt(toF(args[0]))), nil
	case "rsqrtf":
		th.tc.CountSpecial(1)
		return floatValue(1 / math.Sqrt(toF(args[0]))), nil
	case "expf":
		th.tc.CountSpecial(1)
		return floatValue(math.Exp(toF(args[0]))), nil
	case "logf":
		th.tc.CountSpecial(1)
		return floatValue(math.Log(toF(args[0]))), nil
	case "powf":
		th.tc.CountSpecial(1)
		return floatValue(math.Pow(toF(args[0]), toF(args[1]))), nil
	case "sinf":
		th.tc.CountSpecial(1)
		return floatValue(math.Sin(toF(args[0]))), nil
	case "cosf":
		th.tc.CountSpecial(1)
		return floatValue(math.Cos(toF(args[0]))), nil
	}
	return Value{}, errAt(x.Tok(), "unimplemented builtin %q", x.Builtin)
}

func (th *thread) evalWorkItem(name string, dim int) Value {
	tc := th.tc
	pick := func(d gpusim.Dim3) int {
		switch dim {
		case 0:
			return d.X
		case 1:
			return d.Y
		case 2:
			return d.Z
		}
		return 0
	}
	var v int
	switch name {
	case "get_global_id":
		v = pick(tc.BlockIdx)*pick(tc.BlockDim) + pick(tc.ThreadIdx)
	case "get_local_id":
		v = pick(tc.ThreadIdx)
	case "get_group_id":
		v = pick(tc.BlockIdx)
	case "get_local_size":
		v = pick(tc.BlockDim)
	case "get_num_groups":
		v = pick(tc.GridDim)
	case "get_global_size":
		v = pick(tc.GridDim) * pick(tc.BlockDim)
	}
	return intValue(TypeInt, int64(v))
}

func (th *thread) evalAtomic(x *Call, args []Value) (Value, error) {
	p := args[0].P
	elem := x.ResultType()
	switch p.Space {
	case SpaceGlobal:
		switch x.Builtin {
		case "atomicAdd", "atomicSub":
			if elem.Kind == KFloat {
				d := toF(args[1])
				if x.Builtin == "atomicSub" {
					d = -d
				}
				old, err := th.tc.AtomicAddFloat32(p.Glob, 0, float32(d))
				return Value{T: elem, F: float64(old)}, err
			}
			d := toI(args[1])
			if x.Builtin == "atomicSub" {
				d = -d
			}
			old, err := th.tc.AtomicAddInt32(p.Glob, 0, int32(d))
			return intValue(elem, int64(old)), err
		case "atomicMax":
			old, err := th.tc.AtomicMaxInt32(p.Glob, 0, int32(toI(args[1])))
			return intValue(elem, int64(old)), err
		case "atomicMin":
			old, err := th.tc.AtomicMinInt32(p.Glob, 0, int32(toI(args[1])))
			return intValue(elem, int64(old)), err
		case "atomicExch":
			if elem.Kind == KFloat {
				old, err := th.tc.AtomicExchInt32(p.Glob, 0, int32(math.Float32bits(float32(toF(args[1])))))
				return Value{T: elem, F: float64(math.Float32frombits(uint32(old)))}, err
			}
			old, err := th.tc.AtomicExchInt32(p.Glob, 0, int32(toI(args[1])))
			return intValue(elem, int64(old)), err
		case "atomicCAS":
			old, err := th.tc.AtomicCASInt32(p.Glob, 0, int32(toI(args[1])), int32(toI(args[2])))
			return intValue(elem, int64(old)), err
		}
	case SpaceShared:
		switch x.Builtin {
		case "atomicAdd", "atomicSub":
			if elem.Kind == KFloat {
				d := toF(args[1])
				if x.Builtin == "atomicSub" {
					d = -d
				}
				old, err := th.tc.SharedAtomicAddFloat32(p.Off/4, float32(d))
				return Value{T: elem, F: float64(old)}, err
			}
			d := toI(args[1])
			if x.Builtin == "atomicSub" {
				d = -d
			}
			old, err := th.tc.SharedAtomicAddInt32(p.Off/4, int32(d))
			return intValue(elem, int64(old)), err
		}
		return Value{}, errAt(x.Tok(), "%s is not supported on shared memory", x.Builtin)
	}
	return Value{}, errAt(x.Tok(), "atomic on unsupported memory space %s", p.Space)
}
