package minicuda

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"webgpu/internal/gpusim"
)

// Differential testing of the three execution engines: every kernel is
// compiled once and launched three times — through the bytecode register
// VM, the tree-walking interpreter, and the warp-vectorized engine — on
// separate devices. Outputs, LaunchStats (minus wall time), and error
// strings must match exactly; the tree walker is the oracle, so the
// generators only need to produce valid, terminating kernels, not predict
// their results.

// diffCase is one kernel to run under both engines.
type diffCase struct {
	src      string
	kernel   string
	grid     gpusim.Dim3
	block    gpusim.Dim3
	nInt     int   // length of the int *iout output buffer
	nFloat   int   // length of the float *fout output buffer
	extra    []Arg // scalar arguments after iout/fout
	maxSteps int64
	// constData, when set, is copied into the __constant__ variable named
	// constName before the launch.
	constName string
	constData []byte
}

// engineRun is the observable behaviour of one launch.
type engineRun struct {
	ints   []int32
	floats []float32
	stats  gpusim.LaunchStats
	errStr string
}

func runOnEngine(t *testing.T, prog *Program, c diffCase, eng Engine) engineRun {
	t.Helper()
	dev := gpusim.NewDefaultDevice()
	iout, err := dev.Malloc(c.nInt * 4)
	if err != nil {
		t.Fatal(err)
	}
	fout, err := dev.Malloc(c.nFloat * 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.constName != "" {
		if err := prog.LoadConstant(dev, c.constName, c.constData); err != nil {
			t.Fatalf("LoadConstant: %v", err)
		}
	}
	args := append([]Arg{IntPtr(iout), FloatPtr(fout)}, c.extra...)
	stats, lerr := prog.Launch(dev, c.kernel,
		LaunchOpts{Grid: c.grid, Block: c.block, MaxSteps: c.maxSteps, Engine: eng},
		args...)
	r := engineRun{}
	if lerr != nil {
		r.errStr = lerr.Error()
	}
	if stats != nil {
		r.stats = *stats
		r.stats.WallTime = 0
	}
	r.ints, _ = dev.ReadInt32(iout, c.nInt)
	r.floats, _ = dev.ReadFloat32(fout, c.nFloat)
	return r
}

// runDiff executes the case under both engines and fails on any divergence.
func runDiff(t *testing.T, c diffCase) {
	t.Helper()
	if c.grid == (gpusim.Dim3{}) {
		c.grid = gpusim.D1(1)
	}
	if c.block == (gpusim.Dim3{}) {
		c.block = gpusim.D1(1)
	}
	if c.nInt == 0 {
		c.nInt = 4
	}
	if c.nFloat == 0 {
		c.nFloat = 2
	}
	prog, err := Compile(c.src, DialectCUDA)
	if err != nil {
		t.Fatalf("compile failed:\n%s\nerror: %v", c.src, err)
	}
	tree := runOnEngine(t, prog, c, EngineTree)
	for _, e := range []struct {
		name string
		eng  Engine
	}{{"vm", EngineVM}, {"warp", EngineWarp}} {
		got := runOnEngine(t, prog, c, e.eng)
		if got.errStr != tree.errStr {
			t.Fatalf("error divergence:\n%s: %q\ntree: %q\nkernel:\n%s",
				e.name, got.errStr, tree.errStr, c.src)
		}
		if !reflect.DeepEqual(got.ints, tree.ints) {
			t.Fatalf("int output divergence:\n%s: %v\ntree: %v\nkernel:\n%s",
				e.name, got.ints, tree.ints, c.src)
		}
		if !reflect.DeepEqual(got.floats, tree.floats) {
			t.Fatalf("float output divergence:\n%s: %v\ntree: %v\nkernel:\n%s",
				e.name, got.floats, tree.floats, c.src)
		}
		// Stats are byte-identical except for one documented boundary: when a
		// multi-thread launch traps mid-kernel, the warp engine's lockstep
		// lanes have co-progressed to the trap point, while the serial
		// per-thread engines never start the threads after the trapping one.
		// Traps are exact at 1×1 (the whole random corpus) and on trap-free
		// multi-lane kernels.
		if e.eng == EngineWarp && tree.errStr != "" && c.grid.Count()*c.block.Count() > 1 {
			continue
		}
		if !reflect.DeepEqual(got.stats, tree.stats) {
			t.Fatalf("stats divergence:\n%s: %+v\ntree: %+v\nkernel:\n%s",
				e.name, got.stats, tree.stats, c.src)
		}
	}
}

// scalarArgs is the fixed argument tail the generated kernels declare.
func scalarArgs(e env) []Arg {
	return []Arg{Int(int(e.a)), Int(int(e.b)), Float(e.x), Float(e.y)}
}

func randEnv(rng *rand.Rand) env {
	return env{
		a: int32(rng.Intn(200) - 100),
		b: int32(rng.Intn(200) - 100),
		x: float32(rng.Intn(160)-80) / 8,
		y: float32(rng.Intn(160)-80) / 8,
	}
}

// TestDiffRandomExpressions reuses the expression generators from
// quick_test.go: each trial is one kernel evaluating a random int and a
// random float expression under both engines.
func TestDiffRandomExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(771177))
	g := &exprGen{rng: rng}
	const trials = 700
	for trial := 0; trial < trials; trial++ {
		ie := g.intExpr(3 + rng.Intn(2))
		fe := g.floatExpr(3 + rng.Intn(2))
		e := randEnv(rng)
		src := fmt.Sprintf(`
__global__ void probe(int *iout, float *fout, int a, int b, float x, float y) {
  iout[0] = %s;
  fout[0] = %s;
}`, ie.src, fe.src)
		runDiff(t, diffCase{src: src, kernel: "probe", extra: scalarArgs(e)})
	}
}

// stmtGen renders random statement lists: loops, branches, compound
// assignments, local arrays, and unsigned arithmetic over a fixed set of
// locals. All loops have constant bounds so every kernel terminates.
type stmtGen struct {
	rng   *rand.Rand
	eg    *exprGen
	depth int
	loops int // running loop-variable counter for unique names
}

func (s *stmtGen) iexpr() string { return s.eg.intExpr(1 + s.rng.Intn(2)).src }
func (s *stmtGen) fexpr() string { return s.eg.floatExpr(1 + s.rng.Intn(2)).src }

func (s *stmtGen) block(depth int, inLoop bool) string {
	n := 1 + s.rng.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(s.stmt(depth, inLoop))
	}
	return b.String()
}

func (s *stmtGen) stmt(depth int, inLoop bool) string {
	r := s.rng
	if depth <= 0 {
		switch r.Intn(8) {
		case 0:
			return fmt.Sprintf("v%d = %s;\n", r.Intn(4), s.iexpr())
		case 1:
			op := []string{"+=", "-=", "*=", "&=", "|=", "^="}[r.Intn(6)]
			return fmt.Sprintf("v%d %s %s;\n", r.Intn(4), op, s.iexpr())
		case 2:
			return fmt.Sprintf("v%d /= ((%s & 7) + 1);\n", r.Intn(4), s.iexpr())
		case 3:
			return fmt.Sprintf("f%d = %s;\n", r.Intn(2), s.fexpr())
		case 4:
			op := []string{"+=", "-=", "*="}[r.Intn(3)]
			return fmt.Sprintf("f%d %s %s;\n", r.Intn(2), op, s.fexpr())
		case 5:
			return fmt.Sprintf("arr[(%s) & 7] = %s;\n", s.iexpr(), s.iexpr())
		case 6:
			return fmt.Sprintf("v%d = arr[(%s) & 7];\n", r.Intn(4), s.iexpr())
		default:
			if r.Intn(2) == 0 {
				return fmt.Sprintf("v%d++;\n", r.Intn(4))
			}
			return fmt.Sprintf("--v%d;\n", r.Intn(4))
		}
	}
	switch r.Intn(7) {
	case 0:
		if r.Intn(2) == 0 {
			return fmt.Sprintf("if (%s) {\n%s}\n", s.iexpr(), s.block(depth-1, inLoop))
		}
		return fmt.Sprintf("if (%s) {\n%s} else {\n%s}\n",
			s.iexpr(), s.block(depth-1, inLoop), s.block(depth-1, inLoop))
	case 1:
		s.loops++
		i := fmt.Sprintf("i%d", s.loops)
		body := s.block(depth-1, true)
		if r.Intn(3) == 0 {
			body += fmt.Sprintf("if (%s == %d) continue;\n", i, r.Intn(4))
		}
		if r.Intn(3) == 0 {
			body += fmt.Sprintf("if (v%d > %d) break;\n", r.Intn(4), 50+r.Intn(100))
		}
		return fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {\n%s}\n",
			i, i, 2+r.Intn(5), i, body)
	case 2:
		s.loops++
		w := fmt.Sprintf("w%d", s.loops)
		return fmt.Sprintf("{ int %s = 0; while (%s < %d) { %s++;\n%s} }\n",
			w, w, 1+r.Intn(4), w, s.block(depth-1, true))
	case 3:
		s.loops++
		w := fmt.Sprintf("d%d", s.loops)
		return fmt.Sprintf("{ int %s = 0; do { %s++;\n%s} while (%s < %d); }\n",
			w, w, s.block(depth-1, true), w, 1+r.Intn(3))
	case 4:
		return fmt.Sprintf("v%d = (%s) ? (%s) : (%s);\n",
			r.Intn(4), s.iexpr(), s.iexpr(), s.iexpr())
	case 5:
		return fmt.Sprintf("{ unsigned int u = (unsigned int)(%s); v%d = (int)(u >> %d) + (int)(u %% %du); }\n",
			s.iexpr(), r.Intn(4), 1+r.Intn(8), 3+r.Intn(13))
	default:
		return s.stmt(0, inLoop)
	}
}

// TestDiffRandomStatements runs randomly generated statement-heavy kernels
// under both engines. The final writes fold every local into the outputs so
// any divergence in intermediate state is visible.
func TestDiffRandomStatements(t *testing.T) {
	rng := rand.New(rand.NewSource(55004400))
	sg := &stmtGen{rng: rng, eg: &exprGen{rng: rng}}
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		e := randEnv(rng)
		body := sg.block(2+rng.Intn(2), false)
		src := fmt.Sprintf(`
__global__ void probe(int *iout, float *fout, int a, int b, float x, float y) {
  int v0 = a; int v1 = b; int v2 = a - b; int v3 = 1;
  float f0 = x; float f1 = y;
  int arr[8];
  for (int z = 0; z < 8; z++) { arr[z] = z * a + b; }
%s
  iout[0] = v0; iout[1] = v1; iout[2] = v2 * 3 + v3;
  iout[3] = 0;
  for (int z = 0; z < 8; z++) { iout[3] += arr[z]; }
  fout[0] = f0; fout[1] = f1;
}`, body)
		runDiff(t, diffCase{src: src, kernel: "probe", extra: scalarArgs(e)})
	}
}

// diffEdgeCases returns the curated trap/barrier/atomic/device-function/
// pointer/constant-memory corpus. Shared between the engine differential
// tests and the codec round-trip tests in codec_test.go.
func diffEdgeCases() []diffCase {
	cases := []diffCase{
		// Runtime traps: identical error strings and partial stats required.
		{kernel: "k", src: `__global__ void k(int *iout, float *fout, int n) {
  iout[0] = 1; iout[1] = 5 / n; }`, extra: []Arg{Int(0)}},
		{kernel: "k", src: `__global__ void k(int *iout, float *fout, int n) {
  iout[0] = 7 % n; }`, extra: []Arg{Int(0)}},
		{kernel: "k", src: `__global__ void k(int *iout, float *fout) {
  iout[123456] = 1; }`},
		{kernel: "k", src: `__global__ void k(int *iout, float *fout) {
  iout[-3] = 1; }`},
		{kernel: "k", src: `__global__ void k(int *iout, float *fout) {
  int n = 0; while (1) { n++; } iout[0] = n; }`, maxSteps: 1000},
		{kernel: "k", src: `__device__ int rec(int n) { return rec(n + 1); }
__global__ void k(int *iout, float *fout) { iout[0] = rec(0); }`},
		// Shared memory, barriers, and a block-wide reduction.
		{kernel: "k", block: gpusim.D1(32), nInt: 1, src: `__global__ void k(int *iout, float *fout) {
  __shared__ int s[32];
  s[threadIdx.x] = threadIdx.x * 3;
  __syncthreads();
  if (threadIdx.x == 0) {
    int sum = 0;
    for (int i = 0; i < 32; i++) { sum += s[i]; }
    iout[0] = sum;
  }
}`},
		// Barrier divergence is an error in both engines.
		{kernel: "k", block: gpusim.D1(4), src: `__global__ void k(int *iout, float *fout) {
  if (threadIdx.x == 0) { __syncthreads(); }
  iout[threadIdx.x] = threadIdx.x;
}`},
		// Integer atomics from many threads (deterministic sum).
		{kernel: "k", grid: gpusim.D1(2), block: gpusim.D1(64), nInt: 2, src: `__global__ void k(int *iout, float *fout) {
  atomicAdd(&iout[0], 2);
  atomicMax(&iout[1], threadIdx.x);
}`},
		// Single-thread atomic zoo, including float atomicAdd.
		{kernel: "k", nInt: 6, src: `__global__ void k(int *iout, float *fout) {
  iout[0] = atomicAdd(&iout[0], 5);
  iout[1] = atomicSub(&iout[1], 3);
  iout[2] = atomicExch(&iout[2], 9);
  iout[3] = atomicMin(&iout[3], -4);
  iout[4] = atomicCAS(&iout[4], 0, 7);
  atomicAdd(&fout[0], 1.5f);
}`},
		// Shared-memory atomics.
		{kernel: "k", block: gpusim.D1(16), nInt: 1, src: `__global__ void k(int *iout, float *fout) {
  __shared__ int s;
  if (threadIdx.x == 0) { s = 0; }
  __syncthreads();
  atomicAdd(&s, threadIdx.x);
  __syncthreads();
  if (threadIdx.x == 0) { iout[0] = s; }
}`},
		// Device functions: arguments convert, returns convert, recursion up
		// to a modest depth.
		{kernel: "k", src: `__device__ float scale(float v, int k) { return v * k; }
__device__ int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
__global__ void k(int *iout, float *fout) {
  fout[0] = scale(1.25f, 3);
  iout[0] = fib(10);
  iout[1] = (int)scale(2.0f, 4);
}`},
		// Pointer arithmetic and pointer difference.
		{kernel: "k", nInt: 6, src: `__global__ void k(int *iout, float *fout) {
  int *p = iout + 2;
  p[0] = 77;
  *(p + 1) = 88;
  iout[0] = (int)(p - iout);
  iout[1] = *(iout + 2);
}`},
		// Narrow types: unsigned char buffers and truncation.
		{kernel: "k", src: `__global__ void k(int *iout, float *fout, int n) {
  unsigned char c = (unsigned char)(n);
  c += 200;
  iout[0] = (int)c;
  unsigned int u = (unsigned int)(-n);
  iout[1] = (int)(u / 7u);
  iout[2] = (int)(u >> 5);
}`, extra: []Arg{Int(300)}},
		// Special-function builtins and math builtins.
		{kernel: "k", nFloat: 8, src: `__global__ void k(int *iout, float *fout, float x) {
  fout[0] = sqrtf(x + 9.0f);
  fout[1] = expf(x * 0.25f);
  fout[2] = logf(x + 10.0f);
  fout[3] = powf(x + 2.0f, 2.0f);
  fout[4] = fminf(x, 1.5f) + fmaxf(x, -1.5f);
  fout[5] = fabsf(-x) + floorf(x) + ceilf(x);
  fout[6] = sinf(x) + cosf(x);
  fout[7] = rsqrtf(x + 4.0f);
  iout[0] = min(3, (int)x) + max(-3, (int)x) + abs((int)x - 2);
}`, extra: []Arg{Float(3.75)}},
	}

	more := []diffCase{
		// Constant memory.
		{kernel: "k", constName: "tab", constData: []byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0},
			src: `__constant__ int tab[4];
__global__ void k(int *iout, float *fout) {
  int s = 0;
  for (int i = 0; i < 4; i++) { s += tab[i]; }
  iout[0] = s;
}`},
		// Memory-side increment/decrement, prefix and postfix.
		{kernel: "k", src: `__global__ void k(int *iout, float *fout) {
  iout[0] = 10;
  iout[1] = iout[0]++;
  iout[2] = ++iout[0];
  iout[3] = --iout[0];
}`},
		// Grid/block builtins across a 2-D launch.
		{kernel: "k", grid: gpusim.D2(2, 2), block: gpusim.D2(4, 2), nInt: 32,
			src: `__global__ void k(int *iout, float *fout) {
  int id = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x * blockDim.y
         + threadIdx.y * blockDim.x + threadIdx.x;
  iout[id] = id * 2 + blockDim.y + gridDim.y;
}`},
		// Short-circuit evaluation guards a trapping divide.
		{kernel: "k", src: `__global__ void k(int *iout, float *fout, int n) {
  iout[0] = (n != 0 && 10 / n > 1) ? 1 : 0;
  iout[1] = (n == 0 || 10 / n > 1) ? 1 : 0;
}`, extra: []Arg{Int(0)}},
		// Comma operator and nested ternaries.
		{kernel: "k", src: `__global__ void k(int *iout, float *fout, int a) {
  int t = (iout[0] = a + 1, a * 2);
  iout[1] = t > 0 ? t < 10 ? 1 : 2 : 3;
}`, extra: []Arg{Int(6)}},
		// Casts in every direction.
		{kernel: "k", src: `__global__ void k(int *iout, float *fout, float x) {
  iout[0] = (int)x;
  iout[1] = (int)(unsigned char)(x * 100.0f);
  fout[0] = (float)(int)(x * 3.0f);
  fout[1] = (float)(unsigned int)(7);
}`, extra: []Arg{Float(-2.75)}},
		// Shared-memory out-of-bounds trap.
		{kernel: "k", block: gpusim.D1(2), src: `__global__ void k(int *iout, float *fout) {
  __shared__ int s[4];
  s[threadIdx.x + 100] = 1;
  iout[0] = s[0];
}`},
		// Step budget exhausted inside a device function call chain.
		{kernel: "k", maxSteps: 500, src: `__device__ int spin(int n) {
  int s = 0;
  for (int i = 0; i < 100000; i++) { s += i & n; }
  return s;
}
__global__ void k(int *iout, float *fout) { iout[0] = spin(3); }`},
	}
	return append(cases, more...)
}

// TestDiffEdgeCases pins down traps, barriers, atomics, device functions,
// pointer arithmetic, constant memory, and narrow types — the behaviours
// most likely to diverge between the engines.
func TestDiffEdgeCases(t *testing.T) {
	for i, c := range diffEdgeCases() {
		i, c := i, c
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) { runDiff(t, c) })
	}
}

// namedDiffCase pairs a diffCase with a subtest name.
type namedDiffCase struct {
	name string
	c    diffCase
}

// warpDivergenceCases returns divergence-heavy multi-lane kernels that
// stress the warp engine's strand splitting, reconvergence-by-merge, and
// the barrier arrive/wait split. All are race-free and trap-free so the
// three engines must agree bit-for-bit on outputs and stats. Shared with
// codec_test.go.
func warpDivergenceCases() []namedDiffCase {
	return []namedDiffCase{
		{"nested-divergent-branches", diffCase{kernel: "k", block: gpusim.D1(32), nInt: 32,
			src: `__global__ void k(int *iout, float *fout) {
  int t = threadIdx.x;
  int v = 0;
  if (t & 1) {
    if (t & 2) { v = t * 3; } else { v = t - 7; }
    if (t > 16) { v += 100; }
  } else {
    if (t & 4) { v = t * t; }
    else { if (t & 8) { v = -t; } else { v = t + 40; } }
  }
  iout[t] = v;
}`}},
		{"divergent-early-return", diffCase{kernel: "k", block: gpusim.D1(32), nInt: 32,
			src: `__global__ void k(int *iout, float *fout) {
  int t = threadIdx.x;
  iout[t] = -1;
  if (t % 3 == 0) { return; }
  iout[t] = t;
  if (t > 20) { return; }
  iout[t] = t * 2;
}`}},
		{"divergent-trip-counts", diffCase{kernel: "k", block: gpusim.D1(32), nInt: 32,
			src: `__global__ void k(int *iout, float *fout) {
  int t = threadIdx.x;
  int s = 0;
  for (int i = 0; i < t % 7 + 1; i++) { s += i * i + t; }
  while (s > 50) { s -= 13; }
  iout[t] = s;
}`}},
		{"barrier-inside-uniform-branch", diffCase{kernel: "k", block: gpusim.D1(32), nInt: 33,
			src: `__global__ void k(int *iout, float *fout) {
  __shared__ int tile[32];
  int t = threadIdx.x;
  tile[t] = t + 1;
  if (blockDim.x == 32) {
    __syncthreads();
    if (t == 0) {
      int sum = 0;
      for (int i = 0; i < 32; i++) { sum += tile[i]; }
      iout[32] = sum;
    }
  }
  iout[t] = tile[31 - t];
}`}},
		{"divergent-lanes-rejoin-at-barrier", diffCase{kernel: "k", block: gpusim.D1(32), nInt: 32,
			src: `__global__ void k(int *iout, float *fout) {
  __shared__ int tile[32];
  int t = threadIdx.x;
  if (t < 16) { tile[t] = t * 2; } else { tile[t] = 1000 - t; }
  __syncthreads();
  iout[t] = tile[(t + 5) % 32];
}`}},
		{"multi-warp-divergence", diffCase{kernel: "k", grid: gpusim.D1(2), block: gpusim.D1(64), nInt: 128,
			src: `__global__ void k(int *iout, float *fout) {
  int id = blockIdx.x * blockDim.x + threadIdx.x;
  int v;
  if (threadIdx.x < 32) {
    v = id * 3;
    if (threadIdx.x & 1) { v ^= 21; }
  } else {
    v = -id;
  }
  iout[id] = v;
}`}},
		{"divergent-device-calls", diffCase{kernel: "k", block: gpusim.D1(32), nInt: 32,
			src: `__device__ int collatz(int n) {
  int c = 0;
  while (n != 1 && c < 40) { n = (n & 1) ? 3 * n + 1 : n / 2; c++; }
  return c;
}
__global__ void k(int *iout, float *fout) {
  int t = threadIdx.x;
  if (t & 1) { iout[t] = collatz(t + 2); } else { iout[t] = collatz(27); }
}`}},
		{"divergent-float-accumulation", diffCase{kernel: "k", block: gpusim.D1(32), nFloat: 32,
			src: `__global__ void k(int *iout, float *fout) {
  int t = threadIdx.x;
  float acc = 0.0f;
  for (int i = 0; i <= t; i++) {
    if (i & 1) { acc += sqrtf((float)i); } else { acc -= 0.5f * i; }
  }
  fout[t] = acc;
}`}},
		{"partial-warp-tail", diffCase{kernel: "k", block: gpusim.D1(40), nInt: 40,
			src: `__global__ void k(int *iout, float *fout) {
  int t = threadIdx.x;
  int v = t;
  if (t >= 32) { v = v * v; } else { if (t % 5 == 0) { v += 77; } }
  iout[t] = v;
}`}},
		{"switchback-loop-divergence", diffCase{kernel: "k", block: gpusim.D1(32), nInt: 32,
			src: `__global__ void k(int *iout, float *fout) {
  int t = threadIdx.x;
  int v = 0;
  for (int i = 0; i < 8; i++) {
    if ((i + t) & 1) { v += i * t; continue; }
    if (v > 60) { break; }
    v += 2;
  }
  iout[t] = v;
}`}},
		{"divergent-atomics", diffCase{kernel: "k", block: gpusim.D1(32), nInt: 4,
			src: `__global__ void k(int *iout, float *fout) {
  int t = threadIdx.x;
  if (t & 1) { atomicAdd(&iout[0], t); } else { atomicAdd(&iout[1], 1); }
  atomicMax(&iout[2], (t * 7) % 31);
}`}},
	}
}

// TestDiffWarpDivergence runs the curated divergence corpus through all
// three engines with the tree walker as oracle.
func TestDiffWarpDivergence(t *testing.T) {
	for _, c := range warpDivergenceCases() {
		c := c
		t.Run(c.name, func(t *testing.T) { runDiff(t, c.c) })
	}
}
